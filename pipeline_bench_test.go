// End-to-end runtime data-path benchmark: LIS-side batches travel a
// real transport (in-process pipe or loopback TCP) into an ordered ISM
// and out to a subscriber. This is the throughput number the ISM work
// is judged by — records/sec through the full decode→stage→order→
// dispatch pipeline — alongside the per-op allocation count of the
// steady state. The TCP variants also report the achieved wire cost
// per record, the figure that separates columnar from flat framing.
package prism

import (
	"runtime"
	"testing"
	"time"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/ism"
	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// pipelineSources is the number of concurrent LIS sources feeding the
// manager, and pipelineBatch the records per data message — sized like
// a real LIS flush.
const (
	pipelineSources = 4
	pipelineBatch   = 256
)

// benchPipelineThroughput drives b.N batches round-robin across
// pipelineSources connections into an ordered ISM and waits for every
// record to be dispatched. One op = one batch of pipelineBatch records.
// When reg is non-nil it must carry the sender-side conn metrics, and
// the achieved wire bytes per record are reported from it.
func benchPipelineThroughput(b *testing.B, reg *metrics.Registry, mk func(m *ism.ISM) ([]tp.Conn, func())) {
	var clock event.VirtualClock
	m := ism.New(ism.Config{
		Buffering: ism.MISO,
		Ordered:   true,
		// Block keeps the measurement lossless: with a lossy policy a
		// fast sender overflows the input stage, the drops open
		// per-source sequence gaps, and the causal orderer holds every
		// later record — measuring pathology instead of throughput.
		Overflow: flow.Block,
		Shards:   runtime.GOMAXPROCS(0),
	}, &clock)
	var delivered int
	m.Subscribe("count", func(trace.Record) { delivered++ })

	conns, cleanup := mk(m)
	defer cleanup()
	defer m.Close()

	seqs := make([]uint64, pipelineSources)
	b.ReportAllocs()
	b.SetBytes(int64(pipelineBatch * trace.RecordSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := i % pipelineSources
		batch := flow.GetBatch(pipelineBatch)
		for j := 0; j < pipelineBatch; j++ {
			batch = append(batch, trace.Record{
				Node:    int32(src),
				Kind:    trace.KindUser,
				Tag:     uint16(j),
				Logical: seqs[src],
			})
			seqs[src]++
		}
		if err := conns[src].Send(tp.PooledDataMessage(int32(src), batch)); err != nil {
			b.Fatal(err)
		}
		// Bound the in-flight backlog so the measurement covers the
		// full pipeline rather than unbounded queue growth.
		if i%64 == 63 {
			m.Drain()
		}
	}
	m.Drain()
	b.StopTimer()
	b.ReportMetric(float64(b.N)*pipelineBatch/b.Elapsed().Seconds(), "records/s")
	if reg != nil {
		snap := reg.Snapshot()
		if recs := snap.Value("tp.recs_tx"); recs > 0 {
			b.ReportMetric(snap.Value("tp.bytes_tx")/recs, "wire-B/rec")
		}
	}
}

// dialPipelineConns dials pipelineSources client connections against
// ln, keeps each drained by a discard goroutine (negotiation and any
// server-side control traffic only advance inside Recv), and returns
// them with a combined cleanup.
func dialPipelineConns(b *testing.B, m *ism.ISM, ln *tp.Listener, opts ...tp.ConnOption) ([]tp.Conn, func()) {
	b.Helper()
	accepted := make([]tp.Conn, 0, pipelineSources)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < pipelineSources; i++ {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted = append(accepted, c)
			m.Serve(c)
		}
	}()
	conns := make([]tp.Conn, pipelineSources)
	for i := range conns {
		c, err := tp.Dial(ln.Addr(), opts...)
		if err != nil {
			b.Fatal(err)
		}
		conns[i] = c
		go func() {
			for {
				msg, err := c.Recv()
				if err != nil {
					return
				}
				tp.Recycle(&msg)
			}
		}()
	}
	<-done
	return conns, func() {
		for _, c := range conns {
			c.Close()
		}
		for _, c := range accepted {
			c.Close()
		}
		ln.Close()
	}
}

// waitColumnar blocks until every conn has negotiated columnar framing
// so the timed region measures the steady state, not the handshake.
func waitColumnar(b *testing.B, conns []tp.Conn) {
	b.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for _, c := range conns {
		for !tp.ColumnarActive(c) {
			if time.Now().After(deadline) {
				b.Fatal("columnar framing never negotiated")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
}

func BenchmarkPipelineThroughput(b *testing.B) {
	b.Run("pipe", func(b *testing.B) {
		benchPipelineThroughput(b, nil, func(m *ism.ISM) ([]tp.Conn, func()) {
			conns := make([]tp.Conn, pipelineSources)
			remotes := make([]tp.Conn, pipelineSources)
			for i := range conns {
				lisSide, ismSide := tp.Pipe(64)
				conns[i] = lisSide
				remotes[i] = ismSide
				m.Serve(ismSide)
			}
			return conns, func() {
				for _, c := range conns {
					c.Close()
				}
			}
		})
	})
	b.Run("tcp", func(b *testing.B) {
		reg := metrics.NewRegistry()
		benchPipelineThroughput(b, reg, func(m *ism.ISM) ([]tp.Conn, func()) {
			ln, err := tp.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			conns, cleanup := dialPipelineConns(b, m, ln, tp.WithConnMetrics(reg))
			waitColumnar(b, conns)
			return conns, cleanup
		})
	})
	b.Run("tcp-flat", func(b *testing.B) {
		reg := metrics.NewRegistry()
		benchPipelineThroughput(b, reg, func(m *ism.ISM) ([]tp.Conn, func()) {
			ln, err := tp.Listen("127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			return dialPipelineConns(b, m, ln,
				tp.WithConnMetrics(reg), tp.WithWireMode(tp.WireFlat))
		})
	})
}

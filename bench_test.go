// Top-level benchmark harness: one benchmark per paper table/figure
// (regenerating the artifact at reduced fidelity), plus
// microbenchmarks of the synthesized IS runtime's hot paths. Run with:
//
//	go test -bench=. -benchmem
package prism

import (
	"bytes"
	"io"
	"testing"

	"prism/internal/analyze"
	"prism/internal/cluster"
	"prism/internal/experiments"
	"prism/internal/isruntime/event"
	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/ism"
	"prism/internal/isruntime/lis"
	"prism/internal/isruntime/storage"
	"prism/internal/isruntime/tp"
	"prism/internal/paradyn"
	"prism/internal/picl"
	"prism/internal/queueing"
	rngpkg "prism/internal/rng"
	"prism/internal/rocc"
	"prism/internal/trace"
	"prism/internal/vista"
	"prism/internal/workload"
)

// benchArtifactAt regenerates one experiment artifact per iteration at
// the given replication parallelism (0 = all cores, 1 = serial). The
// Serial/Parallel benchmark pairs below quantify the replication
// engine's speedup; artifacts are byte-identical at every setting.
func benchArtifactAt(b *testing.B, id string, parallelism int) {
	b.Helper()
	suite := experiments.Suite(experiments.Options{Quick: true, Parallelism: parallelism})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suite.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// benchArtifact regenerates one experiment artifact per iteration at
// the default (all-core) parallelism.
func benchArtifact(b *testing.B, id string) { benchArtifactAt(b, id, 0) }

func BenchmarkTable1(b *testing.B)       { benchArtifact(b, "table1") }
func BenchmarkTable2(b *testing.B)       { benchArtifact(b, "table2") }
func BenchmarkTable3(b *testing.B)       { benchArtifact(b, "table3") }
func BenchmarkFig5a(b *testing.B)        { benchArtifact(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)        { benchArtifact(b, "fig5b") }
func BenchmarkFig5c(b *testing.B)        { benchArtifact(b, "fig5c") }
func BenchmarkTable4(b *testing.B)       { benchArtifact(b, "table4") }
func BenchmarkTable5(b *testing.B)       { benchArtifact(b, "table5") }
func BenchmarkFig9Left(b *testing.B)     { benchArtifact(b, "fig9left") }
func BenchmarkFig9Right(b *testing.B)    { benchArtifact(b, "fig9right") }
func BenchmarkTable6(b *testing.B)       { benchArtifact(b, "table6") }
func BenchmarkTable7(b *testing.B)       { benchArtifact(b, "table7") }
func BenchmarkFig11Latency(b *testing.B) { benchArtifact(b, "fig11latency") }
func BenchmarkFig11Buffer(b *testing.B)  { benchArtifact(b, "fig11buffer") }
func BenchmarkTable8(b *testing.B)       { benchArtifact(b, "table8") }

func BenchmarkValidationPICL(b *testing.B)    { benchArtifact(b, "valid-picl") }
func BenchmarkValidationVista(b *testing.B)   { benchArtifact(b, "valid-vista") }
func BenchmarkFactorialParadyn(b *testing.B)  { benchArtifact(b, "factorial-paradyn") }
func BenchmarkFactorialVista(b *testing.B)    { benchArtifact(b, "factorial-vista") }
func BenchmarkAdaptiveCostModel(b *testing.B) { benchArtifact(b, "adaptive-paradyn") }
func BenchmarkAblationQuantum(b *testing.B)   { benchArtifact(b, "abl-quantum") }
func BenchmarkAblationDisorder(b *testing.B)  { benchArtifact(b, "abl-disorder") }
func BenchmarkAblationFlushCost(b *testing.B) { benchArtifact(b, "abl-flushcost") }

// Serial counterparts of the most replication-bound artifacts: the
// ratio Serial/parallel is the replication engine's speedup on this
// machine (1.0 expected when GOMAXPROCS=1).
func BenchmarkFactorialVistaSerial(b *testing.B)   { benchArtifactAt(b, "factorial-vista", 1) }
func BenchmarkFactorialParadynSerial(b *testing.B) { benchArtifactAt(b, "factorial-paradyn", 1) }
func BenchmarkFig11LatencySerial(b *testing.B)     { benchArtifactAt(b, "fig11latency", 1) }
func BenchmarkValidationVistaSerial(b *testing.B)  { benchArtifactAt(b, "valid-vista", 1) }

// --- model kernels -------------------------------------------------

func BenchmarkPICLSimulateFOF(b *testing.B) {
	p := picl.Params{L: 50, Alpha: 0.1, P: 16, Cost: picl.DefaultFlushCost()}
	for i := 0; i < b.N; i++ {
		if _, err := picl.SimulateFOF(p, 100_000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPICLSimulateFAOF(b *testing.B) {
	p := picl.Params{L: 50, Alpha: 0.1, P: 16, Cost: picl.DefaultFlushCost()}
	for i := 0; i < b.N; i++ {
		if _, err := picl.SimulateFAOF(p, 50_000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkROCCRun(b *testing.B) {
	cfg := rocc.DefaultConfig()
	cfg.Horizon = 10_000
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		if _, err := rocc.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVistaRun(b *testing.B) {
	cfg := vista.DefaultConfig()
	cfg.Horizon = 50_000
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i) + 1
		if _, err := vista.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinErlangMean(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = queueing.MinErlangMean(16, 50, 0.007)
	}
	_ = sink
}

// --- runtime hot paths ---------------------------------------------

type nullConn struct{}

func (nullConn) Send(tp.Message) error     { return nil }
func (nullConn) Recv() (tp.Message, error) { select {} }
func (nullConn) Close() error              { return nil }

func BenchmarkSensorEmit(b *testing.B) {
	var clock event.VirtualClock
	sink := event.SinkFunc(func(trace.Record) {})
	s := event.NewSensor(0, 0, &clock, sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.User(1, 0)
	}
}

func BenchmarkBufferedCapture(b *testing.B) {
	l, err := lis.NewBuffered(0, 1024, nullConn{})
	if err != nil {
		b.Fatal(err)
	}
	r := trace.Record{Kind: trace.KindUser}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Capture(r)
	}
}

func BenchmarkForwardingCapture(b *testing.B) {
	l, err := lis.NewForwarding(0, nullConn{})
	if err != nil {
		b.Fatal(err)
	}
	r := trace.Record{Kind: trace.KindUser}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Capture(r)
	}
}

func BenchmarkISMPipeline(b *testing.B) {
	var clock event.VirtualClock
	m := ism.New(ism.Config{Buffering: ism.SISO, Ordered: true}, &clock)
	defer m.Close()
	m.Subscribe("null", func(trace.Record) {})
	batch := make([]trace.Record, 64)
	for i := range batch {
		batch[i] = trace.Record{Node: 0, Kind: trace.KindUser, Logical: uint64(i)}
	}
	b.ResetTimer()
	seq := uint64(0)
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j].Logical = seq
			seq++
		}
		m.Inject(tp.DataMessage(0, batch))
		// Bound the in-flight backlog so the measurement covers the
		// full pipeline rather than unbounded queue growth.
		if i%64 == 63 {
			m.Drain()
		}
	}
	m.Drain()
	b.SetBytes(int64(64 * trace.RecordSize))
}

func BenchmarkTraceEncode(b *testing.B) {
	w := trace.NewWriter(io.Discard)
	r := trace.Record{Node: 1, Kind: trace.KindSend, Tag: 9, Time: 12345, Payload: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(trace.RecordSize)
}

func BenchmarkTraceMerge(b *testing.B) {
	const nodes = 8
	const perNode = 1000
	traces := make([][]trace.Record, nodes)
	for n := range traces {
		traces[n] = make([]trace.Record, perNode)
		for i := range traces[n] {
			traces[n][i] = trace.Record{Node: int32(n), Time: int64(i*nodes + n)}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := trace.Merge(traces...)
		if len(out) != nodes*perNode {
			b.Fatal("merge lost records")
		}
	}
}

func BenchmarkOrderer(b *testing.B) {
	b.ReportAllocs()
	o := trace.NewOrderer()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Add(trace.Record{Node: 0, Kind: trace.KindUser}, uint64(i))
	}
}

func BenchmarkTPWireRoundTrip(b *testing.B) {
	msg := tp.DataMessage(0, make([]trace.Record, 32))
	var buf writableBuffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tp.WriteMessage(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := tp.ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(32 * trace.RecordSize))
}

func BenchmarkW3Search(b *testing.B) {
	search, err := paradyn.NewW3Search(map[paradyn.Why]float64{
		paradyn.CPUBound: 15, paradyn.SyncBound: 15, paradyn.IOBound: 15,
	}, 20)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		target := benchW3Target{noise: rngpkg.New(uint64(i) + 1)}
		if _, _, err := search.Run(target); err != nil {
			b.Fatal(err)
		}
	}
}

// benchW3Target is a minimal in-memory target: node 2 process 1 is
// sync-bound.
type benchW3Target struct{ noise *rngpkg.Stream }

func (t benchW3Target) Nodes() []int32                     { return []int32{0, 1, 2, 3} }
func (t benchW3Target) Processes(int32) []int32            { return []int32{0, 1, 2} }
func (t benchW3Target) Enable(paradyn.Why, paradyn.Focus)  {}
func (t benchW3Target) Disable(paradyn.Why, paradyn.Focus) {}
func (t benchW3Target) Sample(w paradyn.Why, f paradyn.Focus) float64 {
	base := t.noise.Uniform(0, 10)
	if w != paradyn.SyncBound {
		return base
	}
	switch {
	case f.Node < 0:
		return 20 + base
	case f.Node == 2 && f.Process < 0:
		return 30 + base
	case f.Node == 2 && f.Process == 1:
		return 80 + base
	}
	return base
}

func BenchmarkVistaAnalytic(b *testing.B) {
	cfg := vista.DefaultConfig()
	for i := 0; i < b.N; i++ {
		if _, err := vista.Analytic(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStorageSpill(b *testing.B) {
	h, err := storage.New(storage.Spill, 1024, io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	r := trace.Record{Kind: trace.KindUser}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(trace.RecordSize)
}

func BenchmarkAnalyzeTrace(b *testing.B) {
	// An 8-node trace with blocks and a message ring.
	var rs []trace.Record
	tm := int64(0)
	for round := 0; round < 200; round++ {
		for n := int32(0); n < 8; n++ {
			tm += 100
			rs = append(rs,
				trace.Record{Node: n, Kind: trace.KindBlockIn, Time: tm},
				trace.Record{Node: n, Kind: trace.KindBlockOut, Time: tm + 50},
				trace.Record{Node: n, Kind: trace.KindSend, Tag: uint16(round*8) + uint16(n), Time: tm + 60, Payload: int64((n + 1) % 8)},
				trace.Record{Node: (n + 1) % 8, Kind: trace.KindRecv, Tag: uint16(round*8) + uint16(n), Time: tm + 70, Payload: int64(n)},
			)
		}
	}
	trace.SortByTime(rs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analyze.Analyze(rs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterRing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := cluster.New(cluster.Config{
			Nodes: 4, ProcsPerNode: 2,
			Policy: cluster.BufferedFAOF, BufferCapacity: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.RunRing(20, 1000); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Trace(); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

func BenchmarkWorkloadCharacterize(b *testing.B) {
	st := rngpkg.New(1)
	gaps := make([]float64, 10_000)
	for i := range gaps {
		gaps[i] = st.Exp(0.1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Characterize(gaps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompensate(b *testing.B) {
	var rs []trace.Record
	tm := int64(0)
	for i := 0; i < 2000; i++ {
		tm += 1000
		kind := trace.KindUser
		payload := int64(0)
		if i%50 == 49 {
			kind = trace.KindFlush
			payload = 10_000
		}
		rs = append(rs, trace.Record{Node: int32(i % 4), Kind: kind, Time: tm, Payload: payload})
	}
	opt := trace.CompensateOptions{PerEventOverheadNs: 10, DropFlushRecords: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Compensate(rs, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// writableBuffer is a minimal growable read/write buffer avoiding
// bytes.Buffer's interface indirection in the benchmark loop.
type writableBuffer struct {
	data []byte
	off  int
}

func (w *writableBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

func (w *writableBuffer) Read(p []byte) (int, error) {
	if w.off >= len(w.data) {
		return 0, io.EOF
	}
	n := copy(p, w.data[w.off:])
	w.off += n
	return n, nil
}

func (w *writableBuffer) Reset() { w.data = w.data[:0]; w.off = 0 }

// --- pooled vs unpooled hot paths ----------------------------------

// recycleConn consumes messages and recycles pooled batches, as the
// ISM does after copying records into its input stage. Without the
// recycle the pool would stay empty and the pooled benchmark would
// degenerate into the unpooled one.
type recycleConn struct{}

func (recycleConn) Send(m tp.Message) error   { tp.Recycle(&m); return nil }
func (recycleConn) Recv() (tp.Message, error) { select {} }
func (recycleConn) Close() error              { return nil }

// BenchmarkCaptureFlush measures the LIS capture path including the
// flush that fires every `capacity` records, pooled batches against
// per-flush allocation.
func BenchmarkCaptureFlush(b *testing.B) {
	run := func(b *testing.B, opts ...lis.Option) {
		l, err := lis.NewBuffered(0, 64, recycleConn{}, opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		r := trace.Record{Kind: trace.KindUser}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.Capture(r)
		}
	}
	b.Run("pooled", func(b *testing.B) { run(b) })
	b.Run("unpooled", func(b *testing.B) { run(b, lis.WithUnpooledBatches()) })
}

// BenchmarkWireEncode measures TP frame encoding: the pooled
// WriteMessage path (reused encode buffer, batch returned to the pool)
// against building each frame in a fresh allocation.
func BenchmarkWireEncode(b *testing.B) {
	records := make([]trace.Record, 32)
	for i := range records {
		records[i] = trace.Record{Node: 1, Kind: trace.KindUser, Tag: uint16(i)}
	}
	b.Run("pooled", func(b *testing.B) {
		var buf writableBuffer
		b.ReportAllocs()
		b.SetBytes(int64(32 * trace.RecordSize))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			batch := flow.GetBatch(32)
			batch = append(batch, records...)
			if err := tp.WriteMessage(&buf, tp.PooledDataMessage(0, batch)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unpooled", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(32 * trace.RecordSize))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tp.AppendMessage(nil, tp.DataMessage(0, records)); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Columnar framing works on realistic streams: monotone timestamps,
	// a handful of kinds, small tag/payload deltas — the shape the
	// column encoders were built for.
	wireRecs := make([]trace.Record, 32)
	for i := range wireRecs {
		wireRecs[i] = trace.Record{
			Node: 1, Process: int32(i % 4), Kind: trace.KindUser,
			Tag: uint16(i % 8), Time: int64(1_000_000 + i*250),
			Logical: uint64(i + 1), Payload: int64(i),
		}
	}
	b.Run("columnar", func(b *testing.B) {
		var cc trace.ColumnCodec
		var buf []byte
		b.ReportAllocs()
		b.SetBytes(int64(32 * trace.RecordSize))
		b.ResetTimer()
		var frame int
		for i := 0; i < b.N; i++ {
			out, err := tp.AppendColumnarMessage(buf[:0], tp.DataMessage(0, wireRecs), &cc)
			if err != nil {
				b.Fatal(err)
			}
			buf, frame = out, len(out)
		}
		b.ReportMetric(float64(frame)/32, "wire-B/rec")
	})
	b.Run("columnar-decode", func(b *testing.B) {
		var cc trace.ColumnCodec
		frame, err := tp.AppendColumnarMessage(nil, tp.DataMessage(0, wireRecs), &cc)
		if err != nil {
			b.Fatal(err)
		}
		rd := bytes.NewReader(frame)
		b.ReportAllocs()
		b.SetBytes(int64(32 * trace.RecordSize))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset(frame)
			m, err := tp.ReadMessage(rd)
			if err != nil {
				b.Fatal(err)
			}
			tp.Recycle(&m)
		}
	})
}

// Top-level integration tests: run every registered experiment end to
// end (quick fidelity), render each artifact in both output formats,
// and exercise the full networked LIS -> TCP -> ISM -> tool pipeline
// that cmd/ismd and cmd/lisnode deploy as separate processes.
package prism

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"prism/internal/experiments"
	"prism/internal/isruntime/env"
	"prism/internal/isruntime/event"
	"prism/internal/isruntime/ism"
	"prism/internal/isruntime/lis"
	"prism/internal/isruntime/tp"
	"prism/internal/paradyn"
	"prism/internal/report"
	"prism/internal/trace"
)

func TestAllExperimentsRenderBothFormats(t *testing.T) {
	suite := experiments.Suite(experiments.Options{Quick: true})
	for _, id := range suite.IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			a, err := suite.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			var text, csv strings.Builder
			if err := report.Render(&text, a); err != nil {
				t.Fatalf("render: %v", err)
			}
			if err := report.CSV(&csv, a); err != nil {
				t.Fatalf("csv: %v", err)
			}
			if text.Len() == 0 || csv.Len() == 0 {
				t.Fatal("empty output")
			}
			if !strings.Contains(text.String(), a.Title) {
				t.Fatal("rendered output missing title")
			}
		})
	}
}

func TestSeedOffsetChangesStochasticArtifacts(t *testing.T) {
	a1, err := experiments.Suite(experiments.Options{Quick: true, Seed: 0}).Run("fig9left")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := experiments.Suite(experiments.Options{Quick: true, Seed: 1000}).Run("fig9left")
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a1.Series[0].Y {
		if a1.Series[0].Y[i] != a2.Series[0].Y[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seed offset had no effect")
	}
	// Same options -> identical artifact (regenerability).
	a3, err := experiments.Suite(experiments.Options{Quick: true, Seed: 0}).Run("fig9left")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.Series[0].Y {
		if a1.Series[0].Y[i] != a3.Series[0].Y[i] {
			t.Fatal("same seed did not regenerate identical artifact")
		}
	}
}

// TestNetworkedPipeline runs the full Figure 2 deployment in-process
// over real TCP: three LIS nodes (one per policy family) forwarding to
// one causally ordering ISM with a stats tool and a trace spool.
func TestNetworkedPipeline(t *testing.T) {
	clock := event.NewRealClock()
	var spool strings.Builder
	manager := ism.New(ism.Config{Buffering: ism.MISO, Ordered: true, Spool: nopWriter{&spool}}, clock)
	defer manager.Close()
	environment := env.New(manager)
	statsTool := env.NewStatsTool("stats")
	if err := environment.Attach(statsTool); err != nil {
		t.Fatal(err)
	}

	ln, err := tp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			manager.Serve(conn)
		}
	}()

	const perNode = 200
	run := func(node int32, mk func(tp.Conn) (lis.LIS, error)) {
		conn, err := tp.Dial(ln.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		server, err := mk(conn)
		if err != nil {
			t.Error(err)
			return
		}
		sensor := event.NewSensor(node, 0, clock, server)
		for i := 0; i < perNode; i++ {
			sensor.User(uint16(i), int64(node))
		}
		if err := server.Close(); err != nil {
			t.Error(err)
		}
	}
	run(0, func(c tp.Conn) (lis.LIS, error) { return lis.NewBuffered(0, 16, c) })
	run(1, func(c tp.Conn) (lis.LIS, error) { return lis.NewForwarding(1, c) })
	run(2, func(c tp.Conn) (lis.LIS, error) {
		d, err := lis.NewDaemon(2, c, 64, 8)
		if err == nil {
			d.AttachProcess(0)
		}
		return d, err
	})

	deadline := time.After(5 * time.Second)
	for manager.Stats().Dispatched < 3*perNode {
		select {
		case <-deadline:
			t.Fatalf("dispatched %d of %d", manager.Stats().Dispatched, 3*perNode)
		default:
			time.Sleep(time.Millisecond)
			manager.Drain()
		}
	}
	for node := int32(0); node < 3; node++ {
		if got := statsTool.Count(node, trace.KindUser); got != perNode {
			t.Fatalf("node %d: %d records", node, got)
		}
	}
	st := manager.Stats()
	if st.HoldBackRatio < 0 || st.HoldBackRatio > 1 {
		t.Fatalf("hold-back %v", st.HoldBackRatio)
	}
}

// nopWriter adapts a strings.Builder to io.Writer (Builder already is
// one, but through an interface so the spool sees a plain writer).
type nopWriter struct{ b *strings.Builder }

func (w nopWriter) Write(p []byte) (int, error) { return w.b.Write(p) }

// liveW3Target adapts the live instrumentation runtime to the W3
// search's Target interface: Enable turns a per-focus sensor on
// (dynamic instrumentation), Sample pumps one probe reading through
// the LIS -> ISM pipeline and reads the delivered value back, Disable
// turns the sensor off again.
type liveW3Target struct {
	t       *testing.T
	manager *ism.ISM
	nodes   []int32
	procs   map[int32][]int32
	sensors map[paradyn.Focus]*event.Sensor
	gauges  map[paradyn.Focus]*event.Gauge

	mu   sync.Mutex
	last map[string]int64 // delivered samples keyed by node/proc/metric
}

func newLiveW3Target(t *testing.T, hot paradyn.Focus, hotWhy paradyn.Why) *liveW3Target {
	var clock event.VirtualClock
	lt := &liveW3Target{
		t:       t,
		manager: ism.New(ism.Config{Buffering: ism.SISO}, &clock),
		nodes:   []int32{0, 1},
		procs:   map[int32][]int32{0: {0, 1}, 1: {0, 1}},
		sensors: map[paradyn.Focus]*event.Sensor{},
		gauges:  map[paradyn.Focus]*event.Gauge{},
		last:    map[string]int64{},
	}
	t.Cleanup(func() { lt.manager.Close() })
	lt.manager.Subscribe("w3", func(r trace.Record) {
		lt.mu.Lock()
		lt.last[fmt.Sprintf("%d/%d/%d", r.Node, r.Process, r.Tag)] = r.Payload
		lt.mu.Unlock()
	})
	for _, n := range lt.nodes {
		for _, p := range lt.procs[n] {
			f := paradyn.Focus{Node: n, Process: p}
			sink := event.SinkFunc(func(r trace.Record) {
				lt.manager.Inject(tp.DataMessage(r.Node, []trace.Record{r}))
			})
			s := event.NewSensor(n, p, &clock, sink)
			s.Enable(false) // no instrumentation until the search asks
			lt.sensors[f] = s
			g := &event.Gauge{}
			if f == hot {
				g.Set(90)
			} else {
				g.Set(3)
			}
			lt.gauges[f] = g
		}
	}
	_ = hotWhy
	return lt
}

func (lt *liveW3Target) Nodes() []int32            { return lt.nodes }
func (lt *liveW3Target) Processes(n int32) []int32 { return lt.procs[n] }

func (lt *liveW3Target) leaves(f paradyn.Focus) []paradyn.Focus {
	var out []paradyn.Focus
	for _, n := range lt.nodes {
		if f.Node >= 0 && n != f.Node {
			continue
		}
		for _, p := range lt.procs[n] {
			if f.Process >= 0 && p != f.Process {
				continue
			}
			out = append(out, paradyn.Focus{Node: n, Process: p})
		}
	}
	return out
}

func (lt *liveW3Target) Enable(w paradyn.Why, f paradyn.Focus) {
	for _, leaf := range lt.leaves(f) {
		lt.sensors[leaf].Enable(true)
	}
}

func (lt *liveW3Target) Disable(w paradyn.Why, f paradyn.Focus) {
	for _, leaf := range lt.leaves(f) {
		lt.sensors[leaf].Enable(false)
	}
}

func (lt *liveW3Target) Sample(w paradyn.Why, f paradyn.Focus) float64 {
	leaves := lt.leaves(f)
	for _, leaf := range leaves {
		lt.sensors[leaf].Sample(uint16(w), lt.gauges[leaf].Value())
	}
	lt.manager.Drain()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	sum := 0.0
	for _, leaf := range leaves {
		sum += float64(lt.last[fmt.Sprintf("%d/%d/%d", leaf.Node, leaf.Process, uint16(w))])
	}
	return sum / float64(len(leaves))
}

// TestW3LiveSearch runs the W3 bottleneck search against the live
// instrumentation runtime: instrumentation really is inserted and
// removed dynamically (sensor enable/disable), and every sample flows
// LIS -> TP -> ISM -> tool before the search reads it.
func TestW3LiveSearch(t *testing.T) {
	hot := paradyn.Focus{Node: 1, Process: 0}
	target := newLiveW3Target(t, hot, paradyn.CPUBound)
	search, err := paradyn.NewW3Search(map[paradyn.Why]float64{paradyn.CPUBound: 20}, 4)
	if err != nil {
		t.Fatal(err)
	}
	findings, stats, err := search.Run(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Focus != hot {
		t.Fatalf("findings %v", findings)
	}
	// All sensors disabled after the search (instrumentation removed).
	for f, s := range target.sensors {
		if s.Enabled() {
			t.Fatalf("sensor %v left enabled", f)
		}
	}
	if stats.Samples == 0 || stats.Samples >= stats.ExhaustiveSamples {
		t.Fatalf("instrumentation economy not realized: %+v", stats)
	}
}

// Package queueing provides the closed-form queueing-theory results
// behind the paper's analytical models: Erlang (Gamma with integer
// shape) first-passage distributions for buffer fill times, order
// statistics of Erlangs for the FAOF gang-flush stopping time
// (Table 3), and the standard M/M/1, M/G/1 (Pollaczek–Khinchine) and
// M/M/c formulas that the ISM models are sanity-checked against.
//
// "The concurrent LIS is modeled as a set of single-server (M/G/1)
// queues, one at each processor ... the inter-arrival times at each of
// these buffers are assumed independent and exponentially distributed
// with rate α" (§3.1.2). The time to accumulate l records is then
// Erlang(l, α), whose properties this package supplies.
package queueing

import (
	"errors"
	"math"
)

// PoissonPMF returns P[N = k] for N ~ Poisson(mean).
func PoissonPMF(k int, mean float64) float64 {
	if k < 0 || mean < 0 {
		return 0
	}
	if mean == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k + 1))
	return math.Exp(float64(k)*math.Log(mean) - mean - lg)
}

// PoissonCDF returns P[N <= k] for N ~ Poisson(mean), summing PMF
// terms with a recurrence for numerical robustness.
func PoissonCDF(k int, mean float64) float64 {
	if k < 0 {
		return 0
	}
	if mean <= 0 {
		return 1
	}
	term := math.Exp(-mean)
	sum := term
	for i := 1; i <= k; i++ {
		term *= mean / float64(i)
		sum += term
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// ErlangCDF returns P[T <= t] for T ~ Erlang(k, rate): the probability
// that at least k Poisson(rate) arrivals have occurred by time t.
func ErlangCDF(k int, rate, t float64) float64 {
	if k <= 0 {
		return 1
	}
	if t <= 0 {
		return 0
	}
	return 1 - PoissonCDF(k-1, rate*t)
}

// ErlangSurvival returns P[T > t] for T ~ Erlang(k, rate). This is the
// FOF trace-stopping-time distribution of Table 3: the i-th buffer of
// capacity l with arrival rate α stops tracing at τ ~ Erlang(l, α).
func ErlangSurvival(k int, rate, t float64) float64 {
	if k <= 0 {
		return 0
	}
	if t <= 0 {
		return 1
	}
	return PoissonCDF(k-1, rate*t)
}

// ErlangMean returns E[T] = k/rate, the paper's E[τ_l(i)] = l·(1/α).
func ErlangMean(k int, rate float64) float64 { return float64(k) / rate }

// ErlangPDF returns the density of Erlang(k, rate) at t.
func ErlangPDF(k int, rate, t float64) float64 {
	if t < 0 || k <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(float64(k))
	return math.Exp(float64(k)*math.Log(rate) + float64(k-1)*math.Log(t) - rate*t - lg)
}

// MinErlangSurvival returns P[min of p iid Erlang(k, rate) > t], the
// FAOF trace-stopping-time distribution of Table 3 ("the results for
// the FAOF policy are obtained under the assumption that the arrival
// rates at all nodes are identical"): with all P buffers filling
// independently, tracing stops when the first fills.
func MinErlangSurvival(p, k int, rate, t float64) float64 {
	if p <= 0 {
		panic("queueing: MinErlangSurvival with non-positive p")
	}
	return math.Pow(ErlangSurvival(k, rate, t), float64(p))
}

// MinErlangMean returns E[min of p iid Erlang(k, rate)] by integrating
// the survival function with adaptive Simpson quadrature. For p = 1 it
// reduces to k/rate; for all p it respects the paper's lower bound
// E[τ] >= l/(P·α) (the mean of the minimum can never drop below the
// time for the *total* arrival stream to produce l records).
func MinErlangMean(p, k int, rate float64) float64 {
	if p == 1 {
		return ErlangMean(k, rate)
	}
	surv := func(t float64) float64 { return MinErlangSurvival(p, k, rate, t) }
	// The survival function decays past a few means; integrate to a
	// generous upper limit with refinement. The tolerance is relative
	// to the integral's scale (the mean), not absolute: an absolute
	// tolerance would force pathological subdivision for large means.
	mean := ErlangMean(k, rate)
	upper := mean * 4
	for surv(upper) > 1e-12 {
		upper *= 2
	}
	return Integrate(surv, 0, upper, mean*1e-9)
}

// Integrate computes the integral of f over [a, b] by adaptive
// Simpson's rule with the given absolute tolerance.
func Integrate(f func(float64) float64, a, b, tol float64) float64 {
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := (b - a) / 6 * (fa + 4*fm + fb)
	return adaptiveSimpson(f, a, b, fa, fb, fm, whole, tol, 50)
}

func adaptiveSimpson(f func(float64) float64, a, b, fa, fb, fm, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := (m - a) / 6 * (fa + 4*flm + fm)
	right := (b - m) / 6 * (fm + 4*frm + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpson(f, a, m, fa, fm, flm, left, tol/2, depth-1) +
		adaptiveSimpson(f, m, b, fm, fb, frm, right, tol/2, depth-1)
}

// MM1 summarizes an M/M/1 queue with arrival rate lambda and service
// rate mu.
type MM1 struct{ Lambda, Mu float64 }

// Rho returns the offered load λ/μ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// Stable reports whether the queue is stable (ρ < 1).
func (q MM1) Stable() bool { return q.Rho() < 1 }

// MeanResponse returns E[W] = 1/(μ-λ), or +Inf if unstable.
func (q MM1) MeanResponse() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return 1 / (q.Mu - q.Lambda)
}

// MeanWait returns E[Wq] = ρ/(μ-λ).
func (q MM1) MeanWait() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.Rho() / (q.Mu - q.Lambda)
}

// MeanNumber returns E[L] = ρ/(1-ρ).
func (q MM1) MeanNumber() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.Rho() / (1 - q.Rho())
}

// MeanQueue returns E[Lq] = ρ²/(1-ρ).
func (q MM1) MeanQueue() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	r := q.Rho()
	return r * r / (1 - r)
}

// MG1 summarizes an M/G/1 queue with arrival rate Lambda and a general
// service distribution given by its first two moments.
type MG1 struct {
	Lambda float64
	MeanS  float64 // E[S]
	MeanS2 float64 // E[S²]
}

// Rho returns the offered load λ·E[S].
func (q MG1) Rho() float64 { return q.Lambda * q.MeanS }

// Stable reports whether the queue is stable.
func (q MG1) Stable() bool { return q.Rho() < 1 }

// MeanWait returns the Pollaczek–Khinchine mean waiting time
// λ·E[S²] / (2(1-ρ)).
func (q MG1) MeanWait() float64 {
	if !q.Stable() {
		return math.Inf(1)
	}
	return q.Lambda * q.MeanS2 / (2 * (1 - q.Rho()))
}

// MeanResponse returns E[W] = Wq + E[S].
func (q MG1) MeanResponse() float64 { return q.MeanWait() + q.MeanS }

// MeanQueue returns E[Lq] = λ·Wq (Little's law).
func (q MG1) MeanQueue() float64 { return q.Lambda * q.MeanWait() }

// MMc summarizes an M/M/c queue.
type MMc struct {
	Lambda, Mu float64
	C          int
}

// Rho returns the per-server load λ/(cμ).
func (q MMc) Rho() float64 { return q.Lambda / (float64(q.C) * q.Mu) }

// Stable reports whether the queue is stable.
func (q MMc) Stable() bool { return q.Rho() < 1 && q.C >= 1 }

// ErlangC returns the probability an arrival must wait (the Erlang-C
// formula).
func (q MMc) ErlangC() (float64, error) {
	if !q.Stable() {
		return 0, errors.New("queueing: unstable or invalid M/M/c")
	}
	a := q.Lambda / q.Mu // offered traffic in Erlangs
	c := q.C
	// Compute terms iteratively to avoid factorial overflow.
	sum := 0.0
	term := 1.0
	for k := 0; k < c; k++ {
		if k > 0 {
			term *= a / float64(k)
		}
		sum += term
	}
	term *= a / float64(c)
	last := term / (1 - q.Rho())
	return last / (sum + last), nil
}

// MeanWait returns E[Wq] = C(c,a)/(cμ-λ).
func (q MMc) MeanWait() (float64, error) {
	pc, err := q.ErlangC()
	if err != nil {
		return 0, err
	}
	return pc / (float64(q.C)*q.Mu - q.Lambda), nil
}

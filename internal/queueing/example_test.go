package queueing_test

import (
	"fmt"

	"prism/internal/queueing"
)

// Example shows the Erlang first-passage analytics behind the PICL
// stopping-time model: a buffer of 20 records filling from a Poisson
// stream of rate 0.1/ms.
func Example() {
	const l, alpha = 20, 0.1
	fmt.Printf("mean fill time: %.0f ms\n", queueing.ErlangMean(l, alpha))
	fmt.Printf("P[full by 150 ms]: %.3f\n", queueing.ErlangCDF(l, alpha, 150))
	fmt.Printf("P[full by 300 ms]: %.3f\n", queueing.ErlangCDF(l, alpha, 300))
	// With 16 such buffers, the first fills much sooner.
	fmt.Printf("mean first-fill of 16: %.0f ms\n", queueing.MinErlangMean(16, l, alpha))
	// Output:
	// mean fill time: 200 ms
	// P[full by 150 ms]: 0.125
	// P[full by 300 ms]: 0.978
	// mean first-fill of 16: 129 ms
}

// ExampleMG1 evaluates a Pollaczek–Khinchine mean wait, the formula
// the Vista ISM's analytic model rests on.
func ExampleMG1() {
	q := queueing.MG1{Lambda: 0.1, MeanS: 6, MeanS2: 6*6 + 1.5*1.5}
	fmt.Printf("rho = %.2f\n", q.Rho())
	fmt.Printf("mean wait = %.2f ms\n", q.MeanWait())
	fmt.Printf("mean response = %.2f ms\n", q.MeanResponse())
	// Output:
	// rho = 0.60
	// mean wait = 4.78 ms
	// mean response = 10.78 ms
}

package queueing

import (
	"math"
	"testing"

	"prism/internal/rng"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v ± %v", what, got, want, tol)
	}
}

func TestPoissonPMF(t *testing.T) {
	// Poisson(2): P[0] = e^-2, P[1] = 2e^-2, P[2] = 2e^-2.
	almost(t, PoissonPMF(0, 2), math.Exp(-2), 1e-12, "P[0]")
	almost(t, PoissonPMF(1, 2), 2*math.Exp(-2), 1e-12, "P[1]")
	almost(t, PoissonPMF(2, 2), 2*math.Exp(-2), 1e-12, "P[2]")
	if PoissonPMF(-1, 2) != 0 {
		t.Fatal("negative k")
	}
	if PoissonPMF(0, 0) != 1 || PoissonPMF(3, 0) != 0 {
		t.Fatal("zero-mean PMF")
	}
}

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, mean := range []float64{0.3, 1, 7, 60} {
		sum := 0.0
		for k := 0; k < int(mean)*4+50; k++ {
			sum += PoissonPMF(k, mean)
		}
		almost(t, sum, 1, 1e-9, "PMF sum")
	}
}

func TestPoissonCDFMatchesSum(t *testing.T) {
	for _, mean := range []float64{0.5, 4, 25} {
		sum := 0.0
		for k := 0; k <= 30; k++ {
			sum += PoissonPMF(k, mean)
			almost(t, PoissonCDF(k, mean), sum, 1e-9, "CDF")
		}
	}
	if PoissonCDF(-1, 5) != 0 {
		t.Fatal("negative k CDF")
	}
	if PoissonCDF(3, 0) != 1 {
		t.Fatal("zero-mean CDF")
	}
}

func TestErlangCDFEdges(t *testing.T) {
	if ErlangCDF(5, 1, 0) != 0 {
		t.Fatal("CDF at 0")
	}
	if ErlangCDF(0, 1, 3) != 1 {
		t.Fatal("k=0 degenerates to 1")
	}
	if ErlangSurvival(5, 1, 0) != 1 {
		t.Fatal("survival at 0")
	}
	// k=1 is exponential: CDF = 1 - e^{-rt}.
	almost(t, ErlangCDF(1, 0.5, 2), 1-math.Exp(-1), 1e-12, "Erlang-1 CDF")
}

func TestErlangCDFSurvivalComplement(t *testing.T) {
	for _, k := range []int{1, 3, 10, 50} {
		for _, tt := range []float64{0.1, 1, 5, 40} {
			c := ErlangCDF(k, 0.7, tt)
			s := ErlangSurvival(k, 0.7, tt)
			almost(t, c+s, 1, 1e-9, "CDF+survival")
		}
	}
}

func TestErlangCDFAgainstSimulation(t *testing.T) {
	st := rng.New(7)
	const k, rate = 6, 0.8
	const n = 100000
	tCheck := ErlangMean(k, rate) // check at the mean
	hits := 0
	for i := 0; i < n; i++ {
		if st.Erlang(k, rate) <= tCheck {
			hits++
		}
	}
	emp := float64(hits) / n
	almost(t, ErlangCDF(k, rate, tCheck), emp, 0.01, "Erlang CDF vs sim")
}

func TestErlangPDFIntegratesToCDF(t *testing.T) {
	const k, rate = 4, 1.2
	got := Integrate(func(x float64) float64 { return ErlangPDF(k, rate, x) }, 0, 5, 1e-10)
	almost(t, got, ErlangCDF(k, rate, 5), 1e-7, "∫pdf")
	if ErlangPDF(3, 1, -1) != 0 {
		t.Fatal("pdf at negative t")
	}
}

func TestMinErlangSurvival(t *testing.T) {
	// p=1 reduces to plain survival.
	almost(t, MinErlangSurvival(1, 5, 0.5, 4), ErlangSurvival(5, 0.5, 4), 1e-12, "p=1")
	// Larger p -> smaller survival (min fills sooner).
	s1 := MinErlangSurvival(2, 5, 0.5, 4)
	s2 := MinErlangSurvival(8, 5, 0.5, 4)
	if !(s2 < s1 && s1 < 1) {
		t.Fatalf("survival not decreasing in p: %v %v", s1, s2)
	}
}

func TestMinErlangSurvivalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=0 accepted")
		}
	}()
	MinErlangSurvival(0, 3, 1, 1)
}

func TestMinErlangMeanBounds(t *testing.T) {
	// Table 3: E[τ_min] >= l/(Pα) and <= l/α.
	const l = 20
	const alpha = 0.5
	for _, p := range []int{1, 2, 4, 16, 64} {
		m := MinErlangMean(p, l, alpha)
		lower := float64(l) / (float64(p) * alpha)
		upper := float64(l) / alpha
		if m < lower-1e-9 || m > upper+1e-9 {
			t.Fatalf("P=%d: mean %v outside [%v, %v]", p, m, lower, upper)
		}
	}
	// Monotone decreasing in p.
	prev := math.Inf(1)
	for _, p := range []int{1, 2, 4, 8} {
		m := MinErlangMean(p, l, alpha)
		if m >= prev {
			t.Fatalf("MinErlangMean not decreasing at p=%d", p)
		}
		prev = m
	}
}

func TestMinErlangMeanAgainstSimulation(t *testing.T) {
	st := rng.New(11)
	const p, l, alpha = 8, 25, 0.7
	const n = 20000
	sum := 0.0
	for i := 0; i < n; i++ {
		m := math.Inf(1)
		for j := 0; j < p; j++ {
			if v := st.Erlang(l, alpha); v < m {
				m = v
			}
		}
		sum += m
	}
	emp := sum / n
	analytic := MinErlangMean(p, l, alpha)
	if math.Abs(emp-analytic)/analytic > 0.01 {
		t.Fatalf("min-Erlang mean: sim %v vs analytic %v", emp, analytic)
	}
}

func TestIntegrate(t *testing.T) {
	got := Integrate(func(x float64) float64 { return x * x }, 0, 3, 1e-12)
	almost(t, got, 9, 1e-9, "∫x²")
	got = Integrate(math.Sin, 0, math.Pi, 1e-12)
	almost(t, got, 2, 1e-9, "∫sin")
}

func TestMM1Formulas(t *testing.T) {
	q := MM1{Lambda: 0.5, Mu: 1}
	almost(t, q.Rho(), 0.5, 1e-12, "rho")
	almost(t, q.MeanResponse(), 2, 1e-12, "W")
	almost(t, q.MeanWait(), 1, 1e-12, "Wq")
	almost(t, q.MeanNumber(), 1, 1e-12, "L")
	almost(t, q.MeanQueue(), 0.5, 1e-12, "Lq")
	if !q.Stable() {
		t.Fatal("should be stable")
	}
	// Little's law: L = λW.
	almost(t, q.MeanNumber(), q.Lambda*q.MeanResponse(), 1e-12, "Little")
}

func TestMM1Unstable(t *testing.T) {
	q := MM1{Lambda: 2, Mu: 1}
	if q.Stable() {
		t.Fatal("unstable queue reported stable")
	}
	if !math.IsInf(q.MeanResponse(), 1) || !math.IsInf(q.MeanWait(), 1) ||
		!math.IsInf(q.MeanNumber(), 1) || !math.IsInf(q.MeanQueue(), 1) {
		t.Fatal("unstable metrics should be +Inf")
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	// Exponential service: E[S]=1/μ, E[S²]=2/μ².
	mm1 := MM1{Lambda: 0.7, Mu: 1.4}
	mg1 := MG1{Lambda: 0.7, MeanS: 1 / 1.4, MeanS2: 2 / (1.4 * 1.4)}
	almost(t, mg1.MeanWait(), mm1.MeanWait(), 1e-12, "M/G/1 vs M/M/1 Wq")
	almost(t, mg1.MeanResponse(), mm1.MeanResponse(), 1e-12, "W")
}

func TestMG1Deterministic(t *testing.T) {
	// M/D/1 has half the M/M/1 waiting time.
	lambda, d := 0.5, 1.0
	md1 := MG1{Lambda: lambda, MeanS: d, MeanS2: d * d}
	mm1 := MG1{Lambda: lambda, MeanS: d, MeanS2: 2 * d * d}
	almost(t, md1.MeanWait(), mm1.MeanWait()/2, 1e-12, "M/D/1 halves Wq")
	// Little's law for the queue.
	almost(t, md1.MeanQueue(), lambda*md1.MeanWait(), 1e-12, "Little Lq")
}

func TestMG1Unstable(t *testing.T) {
	q := MG1{Lambda: 2, MeanS: 1, MeanS2: 2}
	if q.Stable() || !math.IsInf(q.MeanWait(), 1) {
		t.Fatal("unstable M/G/1")
	}
}

func TestMMcErlangC(t *testing.T) {
	// M/M/1 special case: C(1, a) = rho.
	q := MMc{Lambda: 0.6, Mu: 1, C: 1}
	pc, err := q.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, pc, 0.6, 1e-12, "Erlang-C c=1")
	// Known value: c=2, a=1 (rho=0.5): C = 1/3.
	q2 := MMc{Lambda: 1, Mu: 1, C: 2}
	pc2, err := q2.ErlangC()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, pc2, 1.0/3.0, 1e-12, "Erlang-C c=2 a=1")
	w, err := q2.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	almost(t, w, (1.0/3.0)/1.0, 1e-12, "M/M/2 Wq")
}

func TestMMcUnstable(t *testing.T) {
	q := MMc{Lambda: 5, Mu: 1, C: 2}
	if _, err := q.ErlangC(); err == nil {
		t.Fatal("unstable M/M/c accepted")
	}
	if _, err := q.MeanWait(); err == nil {
		t.Fatal("unstable M/M/c wait accepted")
	}
}

package rocc

import (
	"math"
	"testing"

	"prism/internal/rng"
	"prism/internal/sim"
	"prism/internal/workload"
)

func TestCPUSingleTask(t *testing.T) {
	s := sim.New()
	cpu := NewCPU(s, 10)
	done := false
	cpu.Submit("a", 25, func() { done = true })
	s.Run(-1)
	if !done {
		t.Fatal("task never completed")
	}
	if s.Now() != 25 {
		t.Fatalf("completion at %v", s.Now())
	}
	if got := cpu.Consumed("a"); math.Abs(got-25) > 1e-9 {
		t.Fatalf("consumed %v", got)
	}
	// 25ms at quantum 10 -> 3 slices.
	if cpu.ContextSwitches() != 3 {
		t.Fatalf("switches %d", cpu.ContextSwitches())
	}
}

func TestCPURoundRobinFairness(t *testing.T) {
	s := sim.New()
	cpu := NewCPU(s, 10)
	var endA, endB float64
	cpu.Submit("a", 50, func() { endA = s.Now() })
	cpu.Submit("b", 50, func() { endB = s.Now() })
	s.Run(-1)
	// Interleaved quanta: both finish near 100, neither at 50.
	if endA <= 55 || endB <= 55 {
		t.Fatalf("no interleaving: a=%v b=%v", endA, endB)
	}
	if math.Abs(endA-endB) > 10+1e-9 {
		t.Fatalf("unfair completion: a=%v b=%v", endA, endB)
	}
	if math.Abs(cpu.Consumed("a")-50) > 1e-9 || math.Abs(cpu.Consumed("b")-50) > 1e-9 {
		t.Fatal("consumption accounting wrong")
	}
}

func TestCPUShortTaskNotStarved(t *testing.T) {
	s := sim.New()
	cpu := NewCPU(s, 10)
	var shortEnd float64
	cpu.Submit("long", 1000, nil)
	cpu.Submit("short", 5, func() { shortEnd = s.Now() })
	s.Run(-1)
	// Short task runs in the second slice: ends by 15.
	if shortEnd > 15+1e-9 {
		t.Fatalf("short task starved until %v", shortEnd)
	}
}

func TestCPUZeroDemandImmediate(t *testing.T) {
	s := sim.New()
	cpu := NewCPU(s, 10)
	ran := false
	cpu.Submit("x", 0, func() { ran = true })
	if !ran {
		t.Fatal("zero-demand task deferred")
	}
}

func TestCPUQuantumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("quantum 0 accepted")
		}
	}()
	NewCPU(sim.New(), 0)
}

func TestCPUUtilizationAndQueue(t *testing.T) {
	s := sim.New()
	cpu := NewCPU(s, 10)
	cpu.Submit("a", 30, nil)
	s.Run(100)
	if got := cpu.Utilization(); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("utilization %v", got)
	}
	if cpu.TotalConsumed() != 30 {
		t.Fatalf("total %v", cpu.TotalConsumed())
	}
	if len(cpu.Owners()) != 1 || cpu.Owners()[0] != "a" {
		t.Fatalf("owners %v", cpu.Owners())
	}
	if cpu.AvgQueueLength() < 0 {
		t.Fatal("queue length negative")
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Quantum = 0 },
		func(c *Config) { c.AppProcesses = -1 },
		func(c *Config) { c.SamplingPeriod = 0 },
		func(c *Config) { c.App = workload.AppProfile{} },
		func(c *Config) { c.CollectCPU = nil },
		func(c *Config) { c.HousekeepPeriod = 0 },
	}
	for i, mod := range cases {
		c := DefaultConfig()
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestRunProducesSamples(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 10_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 processes sampling every 200ms over 10s: ~200 samples.
	if res.SamplesGenerated < 150 || res.SamplesGenerated > 250 {
		t.Fatalf("samples %d", res.SamplesGenerated)
	}
	if res.SamplesForwarded == 0 || res.SamplesForwarded > res.SamplesGenerated {
		t.Fatalf("forwarded %d of %d", res.SamplesForwarded, res.SamplesGenerated)
	}
	if res.InterferenceMs <= 0 {
		t.Fatal("no daemon CPU measured")
	}
	if res.UtilizationPct <= 0 || res.UtilizationPct >= 100 {
		t.Fatalf("utilization %v", res.UtilizationPct)
	}
	if res.MonitoringLatencyMs <= 0 {
		t.Fatal("no monitoring latency measured")
	}
	if res.CPUUtilization <= 0 || res.CPUUtilization > 1 {
		t.Fatalf("cpu utilization %v", res.CPUUtilization)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 5000
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 2
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds identical")
	}
}

// TestInterferenceDecreasesWithPeriod reproduces the Figure 9 (left)
// shape: daemon interference falls as the sampling period grows.
func TestInterferenceDecreasesWithPeriod(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 30_000
	var prev float64 = math.Inf(1)
	for _, period := range []float64{50, 150, 400} {
		cfg.SamplingPeriod = period
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.InterferenceMs >= prev {
			t.Fatalf("interference not decreasing at period %v: %v >= %v",
				period, res.InterferenceMs, prev)
		}
		prev = res.InterferenceMs
	}
}

// TestUtilizationDecreasesWithProcesses reproduces the Figure 9
// (right) shape: daemon CPU share falls as application processes grow.
func TestUtilizationDecreasesWithProcesses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 30_000
	var prev float64 = math.Inf(1)
	for _, n := range []int{1, 8, 32} {
		cfg.AppProcesses = n
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.UtilizationPct >= prev {
			t.Fatalf("utilization not decreasing at n=%d: %v >= %v",
				n, res.UtilizationPct, prev)
		}
		prev = res.UtilizationPct
	}
}

// TestBacklogGrowsWhenSaturated: with many processes and fast
// sampling, the daemon cannot keep up and its queue builds — the
// §3.2.3 bottleneck.
func TestBacklogGrowsWhenSaturated(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 20_000
	cfg.AppProcesses = 30
	cfg.SamplingPeriod = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	light := DefaultConfig()
	light.Horizon = 20_000
	light.AppProcesses = 2
	light.SamplingPeriod = 500
	lres, err := Run(light)
	if err != nil {
		t.Fatal(err)
	}
	if res.Backlog <= lres.Backlog {
		t.Fatalf("saturated backlog %v not above light backlog %v", res.Backlog, lres.Backlog)
	}
	if res.MonitoringLatencyMs <= lres.MonitoringLatencyMs {
		t.Fatalf("saturated latency %v not above light latency %v",
			res.MonitoringLatencyMs, lres.MonitoringLatencyMs)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestCPUOwnersSorted(t *testing.T) {
	s := sim.New()
	cpu := NewCPU(s, 5)
	cpu.Submit("z", 1, nil)
	cpu.Submit("a", 1, nil)
	s.Run(-1)
	owners := cpu.Owners()
	if len(owners) != 2 || owners[0] != "a" || owners[1] != "z" {
		t.Fatalf("owners %v", owners)
	}
}

// ioBoundConfig parameterizes the Gu et al. regime: lightly loaded
// CPU, heavy per-sample collect/forward costs, fast sampling — the
// daemon's serialized round-trip, not the CPU, is the bottleneck.
func ioBoundConfig(n, daemons int) Config {
	cfg := DefaultConfig()
	cfg.Horizon = 60_000
	cfg.AppProcesses = n
	cfg.SamplingPeriod = 50
	cfg.Daemons = daemons
	cfg.App = workload.AppProfile{
		CPUBurst:        rng.Exponential{Rate: 1.0 / 4.0},
		NetOp:           rng.Exponential{Rate: 1.0 / 2.0},
		CommProbability: 0.2,
		ThinkTime:       rng.Exponential{Rate: 1.0 / 200.0},
	}
	cfg.PerSampleCPU = 0.3
	cfg.PerSampleNet = 0.6
	return cfg
}

// TestMultipleDaemonsCrossover reproduces the §3.2.3 citation of Gu et
// al.: "multiple monitoring processes reduce the monitoring latency
// when the number of application processes is above a threshold."
func TestMultipleDaemonsCrossover(t *testing.T) {
	// Above the threshold: one daemon saturates, two keep up.
	one, err := Run(ioBoundConfig(32, 1))
	if err != nil {
		t.Fatal(err)
	}
	two, err := Run(ioBoundConfig(32, 2))
	if err != nil {
		t.Fatal(err)
	}
	if two.MonitoringLatencyMs >= one.MonitoringLatencyMs/5 {
		t.Fatalf("above threshold: 2 daemons latency %v not well below 1 daemon %v",
			two.MonitoringLatencyMs, one.MonitoringLatencyMs)
	}
	// Below the threshold: the second daemon buys nothing but costs
	// extra interference.
	oneLow, err := Run(ioBoundConfig(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	twoLow, err := Run(ioBoundConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if twoLow.InterferenceMs <= oneLow.InterferenceMs {
		t.Fatalf("below threshold: 2 daemons should cost more interference (%v vs %v)",
			twoLow.InterferenceMs, oneLow.InterferenceMs)
	}
	if twoLow.MonitoringLatencyMs < 0.5*oneLow.MonitoringLatencyMs {
		t.Fatalf("below threshold: latency gain implausible (%v vs %v)",
			twoLow.MonitoringLatencyMs, oneLow.MonitoringLatencyMs)
	}
}

func TestISMStage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 20_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ISMUtilization <= 0 || res.ISMUtilization > 1 {
		t.Fatalf("ISM utilization %v", res.ISMUtilization)
	}
	if res.ISMLatencyMs <= 0 {
		t.Fatal("ISM latency not measured")
	}
	// End-to-end covers node latency plus ISM path.
	if res.EndToEndLatencyMs <= res.MonitoringLatencyMs {
		t.Fatalf("end-to-end %v not above node latency %v",
			res.EndToEndLatencyMs, res.MonitoringLatencyMs)
	}
	// ISM latency at least net delay + service means.
	floor := cfg.NetDelay.Mean() + cfg.ISMService.Mean()
	if res.ISMLatencyMs < 0.8*floor {
		t.Fatalf("ISM latency %v below physical floor %v", res.ISMLatencyMs, floor)
	}
	// Disabled stage zeroes the metrics.
	cfg.ISMService = nil
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ISMUtilization != 0 || res2.ISMLatencyMs != 0 || res2.EndToEndLatencyMs != 0 {
		t.Fatalf("disabled ISM stage left metrics: %+v", res2)
	}
}

func TestISMUtilizationGrowsWithRate(t *testing.T) {
	fast := DefaultConfig()
	fast.Horizon = 20_000
	fast.SamplingPeriod = 50
	fres, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	slow := DefaultConfig()
	slow.Horizon = 20_000
	slow.SamplingPeriod = 500
	sres, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if fres.ISMUtilization <= sres.ISMUtilization {
		t.Fatalf("ISM utilization should grow with sampling rate: %v vs %v",
			fres.ISMUtilization, sres.ISMUtilization)
	}
}

func TestMoreDaemonsThanProcesses(t *testing.T) {
	// 4 daemons, 2 processes: only 2 daemons receive sweep work, the
	// others only housekeep; nothing is lost or double-counted.
	cfg := ioBoundConfig(2, 4)
	cfg.Horizon = 10_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SamplesForwarded == 0 {
		t.Fatal("no samples forwarded")
	}
	if res.SamplesForwarded > res.SamplesGenerated {
		t.Fatalf("forwarded %d > generated %d", res.SamplesForwarded, res.SamplesGenerated)
	}
	// All four daemons still housekeep, so interference exceeds a
	// single daemon's.
	one := ioBoundConfig(2, 1)
	one.Horizon = 10_000
	oneRes, err := Run(one)
	if err != nil {
		t.Fatal(err)
	}
	if res.InterferenceMs <= oneRes.InterferenceMs {
		t.Fatalf("4-daemon interference %v not above 1-daemon %v",
			res.InterferenceMs, oneRes.InterferenceMs)
	}
}

func TestDaemonsValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Daemons = -1
	if cfg.Validate() == nil {
		t.Fatal("negative daemons accepted")
	}
	cfg.Daemons = 0
	if cfg.daemons() != 1 {
		t.Fatal("zero daemons should mean one")
	}
}

func TestHousekeepingDominatesAtLongPeriods(t *testing.T) {
	// At very long sampling periods interference approaches the
	// housekeeping floor instead of zero — the "levels off" part of
	// the Figure 9 shape.
	cfg := DefaultConfig()
	cfg.Horizon = 30_000
	cfg.SamplingPeriod = 10_000 // nearly no samples
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	floor := cfg.HousekeepCPU.Mean() * cfg.Horizon / cfg.HousekeepPeriod
	if res.InterferenceMs < 0.5*floor {
		t.Fatalf("interference %v fell below housekeeping floor %v", res.InterferenceMs, floor)
	}
	_ = rng.New(1) // keep import if floors change
}

// Package rocc implements the Resource OCCupancy model of §3.2.2:
// "We have developed a Resource OCCupancy (ROCC) model for isolating
// the overheads due to non-deterministic sharing of resources between
// IS and application processes. The model consists of three
// components: 1. System Resources ... CPU, network, and I/O devices;
// 2. Requests ... demands from application processes, other users'
// processes, and IS processes to occupy the system resources; 3.
// Management Policies."
//
// The CPU is scheduled with preemptive round-robin quanta ("to ensure
// fair scheduling of processes, the operating system (Unix) can
// preempt a process that needs to occupy a system resource for a
// period of time longer than the specified quantum"); the network is
// FCFS and non-preemptive. Time is in milliseconds.
package rocc

import (
	"errors"
	"fmt"
	"sort"

	"prism/internal/rng"
	"prism/internal/sim"
	"prism/internal/workload"
)

// CPU is a single processor scheduled with preemptive round-robin
// quanta. Tasks are submitted with a total demand; the scheduler
// interleaves them in quantum-sized slices. The scheduling path is
// allocation-free in steady state: completed task records return to a
// free list, the ready queue reuses its backing array through a head
// index, and slice expiry is scheduled through the kernel's
// ScheduleFunc with one long-lived handler instead of a fresh closure
// per slice.
type CPU struct {
	sim     *sim.Sim
	quantum float64

	queue   []*cpuTask
	qhead   int
	running bool

	perOwner  map[string]float64
	busy      *sim.TimeWeighted
	qlen      *sim.TimeWeighted
	switches  uint64
	freeTasks []*cpuTask
	onSlice   sim.Func1
}

type cpuTask struct {
	owner     string
	remaining float64
	slice     float64
	done      func()
}

// NewCPU creates a round-robin CPU attached to s. It panics on a
// non-positive quantum, which would make the scheduler spin.
func NewCPU(s *sim.Sim, quantum float64) *CPU {
	if quantum <= 0 {
		panic("rocc: quantum must be positive")
	}
	c := &CPU{
		sim:      s,
		quantum:  quantum,
		perOwner: map[string]float64{},
		busy:     sim.NewTimeWeighted(s),
		qlen:     sim.NewTimeWeighted(s),
	}
	c.onSlice = c.sliceExpired
	return c
}

// queued returns the current ready-queue length.
func (c *CPU) queued() int { return len(c.queue) - c.qhead }

func (c *CPU) getTask() *cpuTask {
	if n := len(c.freeTasks); n > 0 {
		t := c.freeTasks[n-1]
		c.freeTasks = c.freeTasks[:n-1]
		return t
	}
	return &cpuTask{}
}

func (c *CPU) putTask(t *cpuTask) {
	t.done = nil
	c.freeTasks = append(c.freeTasks, t)
}

func (c *CPU) popTask() *cpuTask {
	t := c.queue[c.qhead]
	c.queue[c.qhead] = nil
	c.qhead++
	if c.qhead == len(c.queue) {
		c.queue = c.queue[:0]
		c.qhead = 0
	}
	return t
}

// Submit enqueues a CPU request of the given total demand for owner;
// done runs when the demand completes. Zero or negative demands
// complete immediately.
func (c *CPU) Submit(owner string, demand float64, done func()) {
	if demand <= 0 {
		if done != nil {
			done()
		}
		return
	}
	t := c.getTask()
	t.owner, t.remaining, t.done = owner, demand, done
	c.queue = append(c.queue, t)
	c.qlen.Set(float64(c.queued()))
	c.dispatch()
}

func (c *CPU) dispatch() {
	if c.running || c.queued() == 0 {
		return
	}
	c.running = true
	c.busy.Set(1)
	t := c.popTask()
	c.qlen.Set(float64(c.queued()))
	slice := c.quantum
	if t.remaining < slice {
		slice = t.remaining
	}
	t.slice = slice
	c.switches++
	c.sim.ScheduleFunc(slice, c.onSlice, t)
}

// sliceExpired is the single scheduling handler: it charges the slice
// to the task's owner and either requeues the task round-robin or
// completes it.
func (c *CPU) sliceExpired(arg any) {
	t := arg.(*cpuTask)
	c.perOwner[t.owner] += t.slice
	t.remaining -= t.slice
	c.running = false
	c.busy.Set(0)
	if t.remaining > 1e-12 {
		// Quantum expired: rejoin the tail (round-robin).
		c.queue = append(c.queue, t)
		c.qlen.Set(float64(c.queued()))
	} else {
		done := t.done
		c.putTask(t)
		if done != nil {
			done()
		}
	}
	c.dispatch()
}

// Consumed returns the CPU time consumed so far by owner.
func (c *CPU) Consumed(owner string) float64 { return c.perOwner[owner] }

// TotalConsumed returns total CPU time consumed by all owners. The
// sum runs in sorted owner order so results are bit-for-bit
// deterministic (map iteration order would perturb the last float
// bits between runs).
func (c *CPU) TotalConsumed() float64 {
	sum := 0.0
	for _, owner := range c.Owners() {
		sum += c.perOwner[owner]
	}
	return sum
}

// Utilization returns the time-average CPU busy fraction.
func (c *CPU) Utilization() float64 { return c.busy.Mean() }

// AvgQueueLength returns the time-average ready-queue length.
func (c *CPU) AvgQueueLength() float64 { return c.qlen.Mean() }

// ContextSwitches returns the number of scheduling slices executed.
func (c *CPU) ContextSwitches() uint64 { return c.switches }

// Owners returns the owners that consumed CPU, sorted.
func (c *CPU) Owners() []string {
	out := make([]string, 0, len(c.perOwner))
	for k := range c.perOwner {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Config parameterizes one ROCC simulation of the Paradyn IS node.
type Config struct {
	// Horizon is the simulated run length (ms).
	Horizon float64
	// Quantum is the round-robin CPU quantum (ms); Unix of the era
	// used ~10 ms.
	Quantum float64
	// AppProcesses is the number of instrumented application
	// processes on the node (the paper sweeps 1..35).
	AppProcesses int
	// OtherProcesses is the number of background user processes.
	OtherProcesses int
	// SamplingPeriod is the per-process metric sampling period (ms);
	// the paper sweeps 50..500.
	SamplingPeriod float64
	// App and Other are the workload profiles.
	App, Other workload.AppProfile

	// Daemon cost model. Once per sampling period the daemon sweeps
	// the pipes of all local application processes and forwards the
	// collected samples to the ISM as one batch.
	// CollectCPU is the fixed CPU demand of one sweep (wakeup,
	// select over pipes, batch assembly).
	CollectCPU rng.Dist
	// PerSampleCPU is the additional CPU demand per sample swept.
	PerSampleCPU float64
	// ForwardNet is the fixed network occupancy per forwarded batch.
	ForwardNet rng.Dist
	// PerSampleNet is the additional network occupancy per sample.
	PerSampleNet float64
	// HousekeepPeriod and HousekeepCPU model the daemon's fixed-rate
	// bookkeeping (timers, connection upkeep, shared-memory scans)
	// that runs regardless of sampling traffic.
	HousekeepPeriod float64
	HousekeepCPU    rng.Dist

	// Central ISM stage (the "main Paradyn process" of Figure 7):
	// forwarded batches cross the network with a random delay and are
	// served by a single-server ISM queue. ISMService nil disables
	// the stage (node-local model only).
	ISMService rng.Dist
	// NetDelay is the random propagation delay between a daemon's
	// forward completing and the batch arriving at the ISM.
	NetDelay rng.Dist

	// Daemons is the number of monitoring daemon processes sharing
	// the sweep load (round-robin). The paper's §3.2.3 cites Gu et
	// al.'s finding that "multiple monitoring processes reduce the
	// monitoring latency when the number of application processes is
	// above a threshold"; this knob reproduces that extension. Zero
	// means one.
	Daemons int

	Seed uint64
}

// DefaultConfig returns the baseline parameterization used by the
// Figure 9 experiments.
func DefaultConfig() Config {
	return Config{
		Horizon:         60_000, // one simulated minute
		Quantum:         10,
		AppProcesses:    4,
		OtherProcesses:  1,
		SamplingPeriod:  200,
		App:             workload.DefaultAppProfile(),
		Other:           workload.OtherUserProfile(),
		CollectCPU:      rng.Normal{Mu: 1.2, Sigma: 0.3, Floor: 0.1},
		PerSampleCPU:    0.15,
		ForwardNet:      rng.Normal{Mu: 0.8, Sigma: 0.2, Floor: 0.1},
		PerSampleNet:    0.05,
		HousekeepPeriod: 100,
		HousekeepCPU:    rng.Normal{Mu: 2.4, Sigma: 0.5, Floor: 0.2},
		ISMService:      rng.Normal{Mu: 1.5, Sigma: 0.4, Floor: 0.1},
		NetDelay:        rng.Exponential{Rate: 1.0 / 2.0},
		Seed:            1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Horizon <= 0 {
		return errors.New("rocc: horizon must be positive")
	}
	if c.Quantum <= 0 {
		return errors.New("rocc: quantum must be positive")
	}
	if c.AppProcesses < 0 || c.OtherProcesses < 0 {
		return errors.New("rocc: negative process count")
	}
	if c.SamplingPeriod <= 0 {
		return errors.New("rocc: sampling period must be positive")
	}
	if err := c.App.Validate(); err != nil {
		return fmt.Errorf("rocc: app profile: %w", err)
	}
	if c.OtherProcesses > 0 {
		if err := c.Other.Validate(); err != nil {
			return fmt.Errorf("rocc: other profile: %w", err)
		}
	}
	if c.CollectCPU == nil || c.ForwardNet == nil || c.HousekeepCPU == nil {
		return errors.New("rocc: daemon cost distributions required")
	}
	if c.PerSampleCPU < 0 || c.PerSampleNet < 0 {
		return errors.New("rocc: negative per-sample costs")
	}
	if c.HousekeepPeriod <= 0 {
		return errors.New("rocc: housekeeping period must be positive")
	}
	if c.Daemons < 0 {
		return errors.New("rocc: negative daemon count")
	}
	return nil
}

// daemons returns the effective daemon count.
func (c Config) daemons() int {
	if c.Daemons < 1 {
		return 1
	}
	return c.Daemons
}

// Result reports the metrics of one ROCC run (Table 5).
type Result struct {
	// InterferenceMs is the absolute CPU time consumed by the daemon
	// ("Pd interference ... corresponds to direct perturbation of the
	// program; lower is better").
	InterferenceMs float64
	// UtilizationPct is the daemon's share of all consumed CPU time,
	// in percent ("utilizationPd ... nominal is best").
	UtilizationPct float64
	// CPUUtilization is the overall CPU busy fraction.
	CPUUtilization float64
	// AppCPUMs is total CPU time received by application processes.
	AppCPUMs float64
	// SamplesGenerated and SamplesForwarded count sampling traffic.
	SamplesGenerated uint64
	SamplesForwarded uint64
	// Backlog is the time-average daemon work-queue length; a growing
	// backlog is the §3.2.3 bottleneck (full pipes, blocked apps).
	Backlog float64
	// MaxBacklog is the peak daemon queue length.
	MaxBacklog float64
	// MonitoringLatencyMs is the mean sample wait from generation to
	// forward completion (Falcon's "monitoring latency", §3.2.2).
	MonitoringLatencyMs float64
	// ContextSwitches counts CPU scheduling slices.
	ContextSwitches uint64
	// ISM-stage metrics (zero when the stage is disabled).
	// ISMUtilization is the main process's busy fraction.
	ISMUtilization float64
	// ISMQueueLength is its time-average queue length.
	ISMQueueLength float64
	// ISMLatencyMs is the mean batch time from daemon forward to ISM
	// service completion (network delay + queue + service).
	ISMLatencyMs float64
	// EndToEndLatencyMs is the mean sample time from generation to
	// ISM service completion.
	EndToEndLatencyMs float64
}

// Run executes one ROCC simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := sim.New()
	root := rng.New(cfg.Seed)
	cpu := NewCPU(s, cfg.Quantum)
	net := sim.NewResource(s, "network", 1)

	// Central ISM stage (optional). In-flight batches are pooled: each
	// batch carries its own embedded Request and a Done closure built
	// once per pooled batch, so a sweep's forward→ISM hop allocates
	// nothing in steady state.
	var ismRes *sim.Resource
	var ismLatency, endToEnd sim.Tally
	istream := root.Split()
	if cfg.ISMService != nil {
		ismRes = sim.NewResource(s, "ism", 1)
	}
	type ismBatch struct {
		req                  sim.Request
		forwarded, generated float64
	}
	var ismFree []*ismBatch
	onISMArrive := func(arg any) {
		b := arg.(*ismBatch)
		b.req.Service = cfg.ISMService.Sample(istream)
		ismRes.Request(&b.req)
	}
	// deliverToISM routes a completed forward to the central ISM.
	deliverToISM := func(forwarded, generated float64) {
		if ismRes == nil {
			return
		}
		var b *ismBatch
		if n := len(ismFree); n > 0 {
			b = ismFree[n-1]
			ismFree = ismFree[:n-1]
		} else {
			b = &ismBatch{}
			b.req.Done = func() {
				ismLatency.Add(s.Now() - b.forwarded)
				endToEnd.Add(s.Now() - b.generated)
				ismFree = append(ismFree, b)
			}
		}
		b.forwarded, b.generated = forwarded, generated
		delay := 0.0
		if cfg.NetDelay != nil {
			delay = cfg.NetDelay.Sample(istream)
		}
		s.ScheduleFunc(delay, onISMArrive, b)
	}

	// Application and background processes alternate CPU bursts,
	// network operations and think time. Each process's lifecycle is
	// strictly sequential (burst → maybe net op → think → burst), so
	// the completion closures are built once per process and one
	// Request per process is reused for every network operation.
	spawn := func(owner string, prof workload.AppProfile, stream *rng.Stream) {
		var burst func()
		think := func() {
			if prof.ThinkTime == nil {
				burst()
				return
			}
			s.Schedule(prof.ThinkTime.Sample(stream), burst)
		}
		netReq := &sim.Request{Done: think}
		afterBurst := func() {
			if stream.Bernoulli(prof.CommProbability) {
				netReq.Service = prof.NetOp.Sample(stream)
				net.Request(netReq)
				return
			}
			think()
		}
		burst = func() {
			demand := prof.CPUBurst.Sample(stream)
			cpu.Submit(owner, demand, afterBurst)
		}
		burst()
	}
	for i := 0; i < cfg.AppProcesses; i++ {
		spawn(fmt.Sprintf("app%d", i), cfg.App, root.Split())
	}
	for i := 0; i < cfg.OtherProcesses; i++ {
		spawn(fmt.Sprintf("other%d", i), cfg.Other, root.Split())
	}

	// Daemon: each sampling period every application process deposits
	// one sample into its pipe; the daemon sweeps all pipes, paying a
	// fixed wakeup cost plus a small per-sample cost on the CPU, then
	// forwards the batch over the network. Sweeps queue FIFO behind an
	// already-busy daemon, which is how backlog (full pipes, blocked
	// applications — §3.2.3) manifests.
	var res Result
	backlog := sim.NewTimeWeighted(s)
	type work struct {
		arrived      float64
		samples      int
		housekeeping bool
	}
	// Each daemon is ONE operating-system process: all of its work —
	// pipe sweeps and housekeeping alike — is serialized through a
	// single FIFO and at most one task per daemon is ever runnable.
	// This is what exposes it to round-robin starvation as the number
	// of application processes grows (§3.2.3). With Daemons > 1 the
	// sweep load is spread round-robin across independent daemon
	// processes (the Gu et al. multiple-monitoring-processes design).
	// A daemon serializes all of its work behind the busy flag, so each
	// daemon's completion closures are built once up front, its network
	// Request is a single reused struct, and the work FIFO recycles its
	// backing array through a head index — the sweep path allocates
	// nothing per period in steady state.
	nDaemons := cfg.daemons()
	type daemonState struct {
		name           string
		queue          []work
		qhead          int
		busy           bool
		cur            work // the in-flight non-housekeeping work item
		net            sim.Request
		afterHousekeep func()
		afterCollect   func()
	}
	daemons := make([]*daemonState, nDaemons)
	for i := range daemons {
		daemons[i] = &daemonState{name: fmt.Sprintf("daemon%d", i)}
	}
	dstream := root.Split()
	var latency sim.Tally

	queuedSamples := func() int {
		n := 0
		for _, d := range daemons {
			for _, w := range d.queue[d.qhead:] {
				n += w.samples
			}
		}
		return n
	}
	var serve func(d *daemonState)
	serve = func(d *daemonState) {
		if d.busy || d.qhead == len(d.queue) {
			return
		}
		d.busy = true
		w := d.queue[d.qhead]
		d.qhead++
		if d.qhead == len(d.queue) {
			d.queue = d.queue[:0]
			d.qhead = 0
		}
		backlog.Set(float64(queuedSamples()))
		if w.housekeeping {
			cpu.Submit(d.name, cfg.HousekeepCPU.Sample(dstream), d.afterHousekeep)
			return
		}
		d.cur = w
		collect := cfg.CollectCPU.Sample(dstream) + float64(w.samples)*cfg.PerSampleCPU
		cpu.Submit(d.name, collect, d.afterCollect)
	}
	for i := range daemons {
		d := daemons[i]
		d.afterHousekeep = func() {
			d.busy = false
			serve(d)
		}
		d.net.Done = func() {
			res.SamplesForwarded += uint64(d.cur.samples)
			latency.Add(s.Now() - d.cur.arrived)
			deliverToISM(s.Now(), d.cur.arrived)
			d.busy = false
			serve(d)
		}
		d.afterCollect = func() {
			d.net.Service = cfg.ForwardNet.Sample(dstream) + float64(d.cur.samples)*cfg.PerSampleNet
			net.Request(&d.net)
		}
	}
	// Periodic sweep generation with a random phase offset; sweeps of
	// the process population are partitioned across the daemons.
	if cfg.AppProcesses > 0 {
		pstream := root.Split()
		var tick func()
		tick = func() {
			res.SamplesGenerated += uint64(cfg.AppProcesses)
			// Partition this period's samples over the daemons.
			base := cfg.AppProcesses / nDaemons
			extra := cfg.AppProcesses % nDaemons
			for i, d := range daemons {
				n := base
				if i < extra {
					n++
				}
				if n == 0 {
					continue
				}
				d.queue = append(d.queue, work{arrived: s.Now(), samples: n})
				serve(d)
			}
			q := float64(queuedSamples())
			backlog.Set(q)
			if q > res.MaxBacklog {
				res.MaxBacklog = q
			}
			s.Schedule(cfg.SamplingPeriod, tick)
		}
		s.Schedule(pstream.Uniform(0, cfg.SamplingPeriod), tick)
	}
	// Housekeeping joins each daemon's own work queue.
	hstream := root.Split()
	for _, d := range daemons {
		d := d
		var housekeep func()
		housekeep = func() {
			d.queue = append(d.queue, work{arrived: s.Now(), housekeeping: true})
			serve(d)
			s.Schedule(cfg.HousekeepPeriod, housekeep)
		}
		s.Schedule(hstream.Uniform(0, cfg.HousekeepPeriod), housekeep)
	}

	if err := s.RunUntil(cfg.Horizon, 50_000_000); err != nil {
		return Result{}, err
	}

	for _, d := range daemons {
		res.InterferenceMs += cpu.Consumed(d.name)
	}
	total := cpu.TotalConsumed()
	if total > 0 {
		res.UtilizationPct = 100 * res.InterferenceMs / total
	}
	res.CPUUtilization = cpu.Utilization()
	res.AppCPUMs = total - res.InterferenceMs
	for i := 0; i < cfg.OtherProcesses; i++ {
		res.AppCPUMs -= cpu.Consumed(fmt.Sprintf("other%d", i))
	}
	res.Backlog = backlog.Mean()
	res.MonitoringLatencyMs = latency.Mean()
	res.ContextSwitches = cpu.ContextSwitches()
	if ismRes != nil {
		res.ISMUtilization = ismRes.Utilization()
		res.ISMQueueLength = ismRes.AvgQueueLength()
		res.ISMLatencyMs = ismLatency.Mean()
		res.EndToEndLatencyMs = endToEnd.Mean()
	}
	return res, nil
}

package rocc

import (
	"testing"

	"prism/internal/raceflag"
)

// Allocation budget for a full ROCC run. The scheduling hot path —
// CPU slices, daemon sweeps, network forwards, ISM batches — recycles
// its tasks, requests and batches, so a 10-second-horizon run costs a
// small fixed number of allocations (construction of the Sim, CPU,
// daemon states and result maps), not one per simulated event. The
// budget is ~2x the measured count (124) to absorb runtime and
// library drift without letting per-event allocation creep back in;
// the pre-rewrite kernel cost ~5,600 allocations on this workload.
func TestRunAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	cfg := DefaultConfig()
	cfg.Horizon = 10_000
	cfg.Seed = 1
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 256
	if allocs > budget {
		t.Fatalf("rocc.Run allocated %.0f objects, budget %d", allocs, budget)
	}
}

// Package analyze provides ParaGraph-style off-line analysis of
// merged instrumentation traces. PICL's instrumentation exists to feed
// exactly this kind of consumer: "when combined with a tool such as
// ParaGraph, it supports program performance analysis and animation"
// (§3.1). The analyses here are the classic ones: per-node activity
// profiles from block nesting, message statistics from matched
// send/receive pairs, and a space-time (Gantt) diagram of the
// execution.
package analyze

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"prism/internal/trace"
)

// NodeProfile summarizes one node's activity over the trace span.
type NodeProfile struct {
	Node     int32
	Events   int
	Sends    int
	Recvs    int
	Samples  int
	BusyNs   int64   // time inside instrumented blocks
	Busy     float64 // BusyNs / trace span
	MaxDepth int     // deepest block nesting observed
}

// MessageStat aggregates the messages on one (source, destination)
// edge.
type MessageStat struct {
	From, To  int32
	Count     int
	MeanLatNs float64
	MaxLatNs  int64
	Unmatched int // sends with no matching receive in the trace
}

// Report is the result of analyzing a merged trace.
type Report struct {
	SpanNs   int64
	Nodes    []NodeProfile
	Messages []MessageStat
	// start/end retained for the timeline renderer.
	startNs, endNs int64
	records        []trace.Record
}

// Analyze computes a Report from a time-sorted merged trace. Block
// in/out events define busy intervals per (node, process); send/recv
// pairs are matched FIFO per (from, to, tag).
func Analyze(rs []trace.Record) (*Report, error) {
	if len(rs) == 0 {
		return nil, errors.New("analyze: empty trace")
	}
	if err := trace.Validate(rs); err != nil {
		return nil, err
	}
	start, end := rs[0].Time, rs[0].Time
	for _, r := range rs {
		if r.Time < start {
			start = r.Time
		}
		if r.Time > end {
			end = r.Time
		}
	}
	span := end - start
	if span == 0 {
		span = 1
	}

	type procKey struct {
		node, proc int32
	}
	profiles := map[int32]*NodeProfile{}
	prof := func(node int32) *NodeProfile {
		p := profiles[node]
		if p == nil {
			p = &NodeProfile{Node: node}
			profiles[node] = p
		}
		return p
	}
	depth := map[procKey]int{}
	blockStart := map[procKey]int64{}

	type msgKey struct {
		from, to int32
		tag      uint16
	}
	pendingSends := map[msgKey][]int64{}
	msgAgg := map[[2]int32]*MessageStat{}
	edge := func(from, to int32) *MessageStat {
		k := [2]int32{from, to}
		m := msgAgg[k]
		if m == nil {
			m = &MessageStat{From: from, To: to}
			msgAgg[k] = m
		}
		return m
	}

	for _, r := range rs {
		p := prof(r.Node)
		p.Events++
		key := procKey{r.Node, r.Process}
		switch r.Kind {
		case trace.KindBlockIn:
			if depth[key] == 0 {
				blockStart[key] = r.Time
			}
			depth[key]++
			if depth[key] > p.MaxDepth {
				p.MaxDepth = depth[key]
			}
		case trace.KindBlockOut:
			depth[key]--
			if depth[key] == 0 {
				p.BusyNs += r.Time - blockStart[key]
			}
		case trace.KindSend:
			p.Sends++
			mk := msgKey{from: r.Node, to: int32(r.Payload), tag: r.Tag}
			pendingSends[mk] = append(pendingSends[mk], r.Time)
		case trace.KindRecv:
			p.Recvs++
			mk := msgKey{from: int32(r.Payload), to: r.Node, tag: r.Tag}
			q := pendingSends[mk]
			if len(q) == 0 {
				return nil, fmt.Errorf("analyze: receive at t=%d on node %d has no matching send", r.Time, r.Node)
			}
			sendT := q[0]
			pendingSends[mk] = q[1:]
			m := edge(mk.from, mk.to)
			lat := r.Time - sendT
			m.Count++
			m.MeanLatNs += (float64(lat) - m.MeanLatNs) / float64(m.Count)
			if lat > m.MaxLatNs {
				m.MaxLatNs = lat
			}
		case trace.KindSample:
			p.Samples++
		}
	}
	// Count unmatched sends on their edges.
	for mk, q := range pendingSends {
		if len(q) > 0 {
			edge(mk.from, mk.to).Unmatched += len(q)
		}
	}

	rep := &Report{SpanNs: end - start, startNs: start, endNs: end,
		records: append([]trace.Record(nil), rs...)}
	for _, p := range profiles {
		p.Busy = float64(p.BusyNs) / float64(span)
		rep.Nodes = append(rep.Nodes, *p)
	}
	sort.Slice(rep.Nodes, func(i, j int) bool { return rep.Nodes[i].Node < rep.Nodes[j].Node })
	for _, m := range msgAgg {
		rep.Messages = append(rep.Messages, *m)
	}
	sort.Slice(rep.Messages, func(i, j int) bool {
		if rep.Messages[i].From != rep.Messages[j].From {
			return rep.Messages[i].From < rep.Messages[j].From
		}
		return rep.Messages[i].To < rep.Messages[j].To
	})
	return rep, nil
}

// Node returns the profile for one node.
func (r *Report) Node(node int32) (NodeProfile, bool) {
	for _, p := range r.Nodes {
		if p.Node == node {
			return p, true
		}
	}
	return NodeProfile{}, false
}

// BusiestNode returns the node with the highest busy fraction.
func (r *Report) BusiestNode() NodeProfile {
	best := r.Nodes[0]
	for _, p := range r.Nodes[1:] {
		if p.Busy > best.Busy {
			best = p
		}
	}
	return best
}

// LoadImbalance returns max busy / mean busy across nodes (1 = perfect
// balance); 0 when no node was ever busy.
func (r *Report) LoadImbalance() float64 {
	var sum, max float64
	for _, p := range r.Nodes {
		sum += p.Busy
		if p.Busy > max {
			max = p.Busy
		}
	}
	if sum == 0 {
		return 0
	}
	mean := sum / float64(len(r.Nodes))
	return max / mean
}

// Timeline renders a space-time diagram: one row per node, buckets
// columns wide; '#' marks buckets where the node was inside an
// instrumented block, 's'/'r' mark sends/receives, '.' is idle.
func (r *Report) Timeline(buckets int) string {
	if buckets < 1 {
		buckets = 60
	}
	span := r.endNs - r.startNs
	if span == 0 {
		span = 1
	}
	bucketOf := func(t int64) int {
		b := int(float64(t-r.startNs) / float64(span) * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		return b
	}
	rows := map[int32][]byte{}
	for _, p := range r.Nodes {
		rows[p.Node] = []byte(strings.Repeat(".", buckets))
	}
	type procKey struct {
		node, proc int32
	}
	depth := map[procKey]int{}
	open := map[procKey]int64{}
	mark := func(node int32, from, to int64) {
		row := rows[node]
		for b := bucketOf(from); b <= bucketOf(to); b++ {
			if row[b] == '.' {
				row[b] = '#'
			}
		}
	}
	for _, rec := range r.records {
		key := procKey{rec.Node, rec.Process}
		switch rec.Kind {
		case trace.KindBlockIn:
			if depth[key] == 0 {
				open[key] = rec.Time
			}
			depth[key]++
		case trace.KindBlockOut:
			depth[key]--
			if depth[key] == 0 {
				mark(rec.Node, open[key], rec.Time)
			}
		case trace.KindSend:
			rows[rec.Node][bucketOf(rec.Time)] = 's'
		case trace.KindRecv:
			rows[rec.Node][bucketOf(rec.Time)] = 'r'
		}
	}
	var nodes []int32
	for n := range rows {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "space-time diagram (%d buckets over %.3f ms)\n", buckets, float64(span)/1e6)
	for _, n := range nodes {
		fmt.Fprintf(&b, "node %2d |%s|\n", n, rows[n])
	}
	b.WriteString("legend: # busy  s send  r recv  . idle\n")
	return b.String()
}

// Summary renders the report as text.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace span: %.3f ms, %d nodes\n", float64(r.SpanNs)/1e6, len(r.Nodes))
	for _, p := range r.Nodes {
		fmt.Fprintf(&b, "node %2d: %5d events, busy %5.1f%%, %d sends, %d recvs, %d samples\n",
			p.Node, p.Events, p.Busy*100, p.Sends, p.Recvs, p.Samples)
	}
	for _, m := range r.Messages {
		fmt.Fprintf(&b, "edge %d->%d: %d messages, mean latency %.3f ms (max %.3f), %d unmatched\n",
			m.From, m.To, m.Count, m.MeanLatNs/1e6, float64(m.MaxLatNs)/1e6, m.Unmatched)
	}
	fmt.Fprintf(&b, "load imbalance (max/mean busy): %.2f\n", r.LoadImbalance())
	return b.String()
}

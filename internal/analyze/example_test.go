package analyze_test

import (
	"fmt"

	"prism/internal/analyze"
	"prism/internal/trace"
)

// Example analyzes a tiny two-node trace: node 0 computes then sends a
// message that node 1 receives and processes.
func Example() {
	records := []trace.Record{
		{Node: 0, Kind: trace.KindBlockIn, Time: 0},
		{Node: 0, Kind: trace.KindBlockOut, Time: 4_000_000}, // 4 ms busy
		{Node: 0, Kind: trace.KindSend, Tag: 1, Payload: 1, Time: 4_500_000},
		{Node: 1, Kind: trace.KindRecv, Tag: 1, Payload: 0, Time: 5_000_000},
		{Node: 1, Kind: trace.KindBlockIn, Time: 5_000_000},
		{Node: 1, Kind: trace.KindBlockOut, Time: 10_000_000},
	}
	report, err := analyze.Analyze(records)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, p := range report.Nodes {
		fmt.Printf("node %d: busy %.0f%%, %d sends, %d recvs\n",
			p.Node, p.Busy*100, p.Sends, p.Recvs)
	}
	m := report.Messages[0]
	fmt.Printf("message 0->1 latency: %.1f ms\n", m.MeanLatNs/1e6)
	fmt.Printf("busiest: node %d\n", report.BusiestNode().Node)
	// Output:
	// node 0: busy 40%, 1 sends, 0 recvs
	// node 1: busy 50%, 0 sends, 1 recvs
	// message 0->1 latency: 0.5 ms
	// busiest: node 1
}

package analyze

import (
	"math"
	"strings"
	"testing"

	"prism/internal/trace"
)

// twoNodeTrace: node 0 busy [0,400] then sends; node 1 receives at 600
// and is busy [600, 1000]. Span 0..1000.
func twoNodeTrace() []trace.Record {
	return []trace.Record{
		{Node: 0, Kind: trace.KindBlockIn, Time: 0, Tag: 1},
		{Node: 0, Kind: trace.KindSample, Time: 100, Tag: 5, Payload: 42},
		{Node: 0, Kind: trace.KindBlockOut, Time: 400, Tag: 1},
		{Node: 0, Kind: trace.KindSend, Time: 500, Tag: 9, Payload: 1},
		{Node: 1, Kind: trace.KindRecv, Time: 600, Tag: 9, Payload: 0},
		{Node: 1, Kind: trace.KindBlockIn, Time: 600, Tag: 2},
		{Node: 1, Kind: trace.KindBlockOut, Time: 1000, Tag: 2},
	}
}

func TestAnalyzeProfiles(t *testing.T) {
	rep, err := Analyze(twoNodeTrace())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SpanNs != 1000 {
		t.Fatalf("span %d", rep.SpanNs)
	}
	n0, ok := rep.Node(0)
	if !ok {
		t.Fatal("node 0 missing")
	}
	if n0.BusyNs != 400 || math.Abs(n0.Busy-0.4) > 1e-9 {
		t.Fatalf("node 0 busy %+v", n0)
	}
	if n0.Sends != 1 || n0.Samples != 1 || n0.Events != 4 {
		t.Fatalf("node 0 counts %+v", n0)
	}
	n1, _ := rep.Node(1)
	if n1.BusyNs != 400 || n1.Recvs != 1 {
		t.Fatalf("node 1 %+v", n1)
	}
	if _, ok := rep.Node(9); ok {
		t.Fatal("phantom node")
	}
}

func TestAnalyzeMessages(t *testing.T) {
	rep, err := Analyze(twoNodeTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Messages) != 1 {
		t.Fatalf("edges %v", rep.Messages)
	}
	m := rep.Messages[0]
	if m.From != 0 || m.To != 1 || m.Count != 1 {
		t.Fatalf("edge %+v", m)
	}
	if m.MeanLatNs != 100 || m.MaxLatNs != 100 || m.Unmatched != 0 {
		t.Fatalf("latency %+v", m)
	}
}

func TestAnalyzeUnmatchedSend(t *testing.T) {
	rs := []trace.Record{
		{Node: 0, Kind: trace.KindSend, Time: 0, Tag: 1, Payload: 1},
		{Node: 0, Kind: trace.KindUser, Time: 10},
	}
	rep, err := Analyze(rs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Messages) != 1 || rep.Messages[0].Unmatched != 1 {
		t.Fatalf("unmatched not counted: %+v", rep.Messages)
	}
}

func TestAnalyzeOrphanReceive(t *testing.T) {
	rs := []trace.Record{
		{Node: 1, Kind: trace.KindRecv, Time: 5, Tag: 1, Payload: 0},
	}
	if _, err := Analyze(rs); err == nil {
		t.Fatal("orphan receive accepted")
	}
}

func TestAnalyzeRejectsBadTraces(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := Analyze([]trace.Record{{Time: 5}, {Time: 1}}); err == nil {
		t.Fatal("unsorted trace accepted")
	}
}

func TestNestedBlocks(t *testing.T) {
	rs := []trace.Record{
		{Node: 0, Kind: trace.KindBlockIn, Time: 0},
		{Node: 0, Kind: trace.KindBlockIn, Time: 100},
		{Node: 0, Kind: trace.KindBlockOut, Time: 200},
		{Node: 0, Kind: trace.KindBlockOut, Time: 300},
		{Node: 0, Kind: trace.KindUser, Time: 1000},
	}
	rep, err := Analyze(rs)
	if err != nil {
		t.Fatal(err)
	}
	n0, _ := rep.Node(0)
	// Nested blocks must not double-count: busy = 300, not 400.
	if n0.BusyNs != 300 {
		t.Fatalf("nested busy %d", n0.BusyNs)
	}
	if n0.MaxDepth != 2 {
		t.Fatalf("depth %d", n0.MaxDepth)
	}
}

func TestBusiestAndImbalance(t *testing.T) {
	rep, err := Analyze(twoNodeTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Both nodes busy 40%: perfectly balanced.
	if got := rep.LoadImbalance(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("imbalance %v", got)
	}
	b := rep.BusiestNode()
	if b.Busy != 0.4 {
		t.Fatalf("busiest %+v", b)
	}
	// Skewed case.
	rs := []trace.Record{
		{Node: 0, Kind: trace.KindBlockIn, Time: 0},
		{Node: 0, Kind: trace.KindBlockOut, Time: 900},
		{Node: 1, Kind: trace.KindBlockIn, Time: 900},
		{Node: 1, Kind: trace.KindBlockOut, Time: 1000},
	}
	rep2, err := Analyze(rs)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.BusiestNode().Node != 0 {
		t.Fatal("wrong busiest node")
	}
	if got := rep2.LoadImbalance(); got <= 1.5 {
		t.Fatalf("imbalance %v", got)
	}
}

func TestImbalanceNoBusy(t *testing.T) {
	rep, err := Analyze([]trace.Record{{Node: 0, Kind: trace.KindUser, Time: 0},
		{Node: 0, Kind: trace.KindUser, Time: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LoadImbalance() != 0 {
		t.Fatal("imbalance of idle trace should be 0")
	}
}

func TestTimeline(t *testing.T) {
	rep, err := Analyze(twoNodeTrace())
	if err != nil {
		t.Fatal(err)
	}
	tl := rep.Timeline(20)
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 4 { // header + 2 nodes + legend
		t.Fatalf("timeline lines: %v", lines)
	}
	if !strings.Contains(lines[1], "#") || !strings.Contains(lines[1], "s") {
		t.Fatalf("node 0 row missing marks: %q", lines[1])
	}
	if !strings.Contains(lines[2], "r") {
		t.Fatalf("node 1 row missing recv: %q", lines[2])
	}
	// Node 0 busy first half, node 1 second half: first buckets of
	// node 1 idle.
	row1 := lines[2][strings.Index(lines[2], "|")+1:]
	if row1[0] != '.' {
		t.Fatalf("node 1 should start idle: %q", row1)
	}
	// Default bucket clamp.
	if rep.Timeline(0) == "" {
		t.Fatal("default timeline empty")
	}
}

func TestSummary(t *testing.T) {
	rep, err := Analyze(twoNodeTrace())
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, want := range []string{"node  0", "node  1", "edge 0->1", "load imbalance"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

package paradyn

import (
	"errors"
	"fmt"
	"sort"
)

// The W3 search model (§3.2): "It provides data collection support for
// Paradyn's W3 search model, which analyzes program performance
// bottlenecks by measuring system resource utilization with
// appropriate metrics. When the search algorithm needs to analyze a
// particular metric, instrumentation is inserted dynamically in the
// program during runtime to generate samples of that metric value.
// Therefore, the W3 search methodology uses a minimal amount of
// instrumentation to provide a structured and automated way for a
// programmer to isolate performance bottlenecks."
//
// This file implements the why/where axes of that search: hypotheses
// about *why* the program is slow (CPU-, synchronization- or I/O-
// bound) are tested at the whole-program focus first; true hypotheses
// are refined along the *where* axis (machine -> node -> process),
// inserting instrumentation only for the hypotheses currently under
// test and removing it afterwards. The search's instrumentation
// economy — its whole point — is accounted and exposed.

// Why is the hypothesis axis: the candidate explanations for a
// performance problem.
type Why int

// Why hypotheses.
const (
	CPUBound Why = iota
	SyncBound
	IOBound
	numWhys
)

var whyNames = [...]string{"cpu-bound", "sync-bound", "io-bound"}

// String returns the hypothesis name.
func (w Why) String() string {
	if int(w) < len(whyNames) {
		return whyNames[w]
	}
	return fmt.Sprintf("why(%d)", int(w))
}

// Focus is a point on the where axis. Negative fields mean "all"
// (machine- or node-level foci).
type Focus struct {
	Node    int32
	Process int32
}

// MachineFocus is the whole-program focus.
var MachineFocus = Focus{Node: -1, Process: -1}

// String renders the focus.
func (f Focus) String() string {
	switch {
	case f.Node < 0:
		return "machine"
	case f.Process < 0:
		return fmt.Sprintf("node %d", f.Node)
	default:
		return fmt.Sprintf("node %d process %d", f.Node, f.Process)
	}
}

// Target is the instrumentable program under search. Enable inserts
// instrumentation for one (hypothesis, focus) pair; Sample reads one
// smoothed metric value while enabled; Disable removes it.
// Implementations must tolerate Disable after failed Enable counts.
type Target interface {
	// Nodes lists the target's nodes.
	Nodes() []int32
	// Processes lists the processes of a node.
	Processes(node int32) []int32
	// Enable inserts instrumentation for (why, focus).
	Enable(why Why, f Focus)
	// Sample returns one metric observation for (why, focus);
	// only called between Enable and Disable.
	Sample(why Why, f Focus) float64
	// Disable removes the instrumentation for (why, focus).
	Disable(why Why, f Focus)
}

// Finding is one refined bottleneck.
type Finding struct {
	Why   Why
	Focus Focus
	// Value is the mean metric value over the confirming window.
	Value float64
}

// SearchStats accounts the search's instrumentation economy.
type SearchStats struct {
	// Tests is the number of (hypothesis, focus) tests executed.
	Tests int
	// Samples is the total number of samples collected.
	Samples int
	// MaxConcurrent is the peak number of simultaneously enabled
	// instrumentation points.
	MaxConcurrent int
	// ExhaustiveSamples is what always-on instrumentation of every
	// (hypothesis, leaf-focus) pair would have cost over the same
	// search, for comparison.
	ExhaustiveSamples int
}

// W3Search is a configured searcher.
type W3Search struct {
	// Thresholds gives the per-hypothesis trigger level: a
	// (hypothesis, focus) is true when its windowed mean exceeds it.
	Thresholds map[Why]float64
	// Window is the number of samples per test.
	Window int
}

// NewW3Search builds a searcher.
func NewW3Search(thresholds map[Why]float64, window int) (*W3Search, error) {
	if window < 1 {
		return nil, errors.New("paradyn: window must be >= 1")
	}
	if len(thresholds) == 0 {
		return nil, errors.New("paradyn: no hypotheses to test")
	}
	th := make(map[Why]float64, len(thresholds))
	for w, v := range thresholds {
		if w < 0 || w >= numWhys {
			return nil, fmt.Errorf("paradyn: unknown hypothesis %d", w)
		}
		th[w] = v
	}
	return &W3Search{Thresholds: th, Window: window}, nil
}

// Run executes the search on target and returns the deepest true
// findings plus the instrumentation accounting.
func (s *W3Search) Run(target Target) ([]Finding, SearchStats, error) {
	if target == nil {
		return nil, SearchStats{}, errors.New("paradyn: nil target")
	}
	var stats SearchStats
	concurrent := 0
	test := func(why Why, f Focus) (float64, bool) {
		target.Enable(why, f)
		concurrent++
		if concurrent > stats.MaxConcurrent {
			stats.MaxConcurrent = concurrent
		}
		sum := 0.0
		for i := 0; i < s.Window; i++ {
			sum += target.Sample(why, f)
		}
		target.Disable(why, f)
		concurrent--
		stats.Tests++
		stats.Samples += s.Window
		mean := sum / float64(s.Window)
		return mean, mean > s.Thresholds[why]
	}

	// Stable hypothesis order.
	whys := make([]Why, 0, len(s.Thresholds))
	for w := range s.Thresholds {
		whys = append(whys, w)
	}
	sort.Slice(whys, func(i, j int) bool { return whys[i] < whys[j] })

	var findings []Finding
	leaves := 0
	for _, node := range target.Nodes() {
		leaves += len(target.Processes(node))
	}
	for _, why := range whys {
		// Why axis at machine focus.
		v, hot := test(why, MachineFocus)
		if !hot {
			continue
		}
		// Where axis: refine to nodes.
		machineFinding := Finding{Why: why, Focus: MachineFocus, Value: v}
		refined := false
		for _, node := range target.Nodes() {
			nv, nodeHot := test(why, Focus{Node: node, Process: -1})
			if !nodeHot {
				continue
			}
			nodeFinding := Finding{Why: why, Focus: Focus{Node: node, Process: -1}, Value: nv}
			nodeRefined := false
			for _, proc := range target.Processes(node) {
				pv, procHot := test(why, Focus{Node: node, Process: proc})
				if procHot {
					findings = append(findings, Finding{
						Why: why, Focus: Focus{Node: node, Process: proc}, Value: pv,
					})
					nodeRefined = true
				}
			}
			if !nodeRefined {
				// True at node level but no single guilty process:
				// report the node.
				findings = append(findings, nodeFinding)
			}
			refined = true
		}
		if !refined {
			findings = append(findings, machineFinding)
		}
	}
	// Exhaustive baseline: every hypothesis at every leaf focus,
	// sampled for every test the search ran (always-on).
	stats.ExhaustiveSamples = len(whys) * leaves * s.Window * totalLevels(target)
	return findings, stats, nil
}

// totalLevels counts the where-axis depth used by the exhaustive
// baseline (machine + node + process = 3 for non-empty targets).
func totalLevels(target Target) int {
	if len(target.Nodes()) == 0 {
		return 1
	}
	return 3
}

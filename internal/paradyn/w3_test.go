package paradyn

import (
	"fmt"
	"testing"

	"prism/internal/rng"
)

// syntheticTarget plants one bottleneck: (why, node, process) reads
// hot; everything else reads background noise. Enabled-state tracking
// verifies the search's instrumentation discipline.
type syntheticTarget struct {
	nodes    []int32
	procs    map[int32][]int32
	hotWhy   Why
	hotNode  int32
	hotProc  int32
	hotLevel float64
	noise    *rng.Stream

	enabled              map[string]bool
	samplesWhileDisabled int
}

func newSyntheticTarget(hotWhy Why, hotNode, hotProc int32) *syntheticTarget {
	t := &syntheticTarget{
		nodes:    []int32{0, 1, 2, 3},
		procs:    map[int32][]int32{},
		hotWhy:   hotWhy,
		hotNode:  hotNode,
		hotProc:  hotProc,
		hotLevel: 80,
		noise:    rng.New(5),
		enabled:  map[string]bool{},
	}
	for _, n := range t.nodes {
		t.procs[n] = []int32{0, 1, 2}
	}
	return t
}

func key(w Why, f Focus) string { return fmt.Sprintf("%d/%d/%d", w, f.Node, f.Process) }

func (t *syntheticTarget) Nodes() []int32            { return t.nodes }
func (t *syntheticTarget) Processes(n int32) []int32 { return t.procs[n] }
func (t *syntheticTarget) Enable(w Why, f Focus)     { t.enabled[key(w, f)] = true }
func (t *syntheticTarget) Disable(w Why, f Focus)    { delete(t.enabled, key(w, f)) }

func (t *syntheticTarget) Sample(w Why, f Focus) float64 {
	if !t.enabled[key(w, f)] {
		t.samplesWhileDisabled++
	}
	base := t.noise.Uniform(0, 10)
	if w != t.hotWhy {
		return base
	}
	// The hot signal shows through at every covering focus.
	switch {
	case f.Node < 0:
		return t.hotLevel/4 + base // diluted across 4 nodes
	case f.Node == t.hotNode && f.Process < 0:
		return t.hotLevel/3 + base // diluted across 3 processes
	case f.Node == t.hotNode && f.Process == t.hotProc:
		return t.hotLevel + base
	default:
		return base
	}
}

func TestW3Validation(t *testing.T) {
	if _, err := NewW3Search(nil, 5); err == nil {
		t.Fatal("no hypotheses accepted")
	}
	if _, err := NewW3Search(map[Why]float64{CPUBound: 1}, 0); err == nil {
		t.Fatal("window 0 accepted")
	}
	if _, err := NewW3Search(map[Why]float64{Why(99): 1}, 5); err == nil {
		t.Fatal("bogus hypothesis accepted")
	}
	s, _ := NewW3Search(map[Why]float64{CPUBound: 1}, 5)
	if _, _, err := s.Run(nil); err == nil {
		t.Fatal("nil target accepted")
	}
}

func TestWhyAndFocusStrings(t *testing.T) {
	if CPUBound.String() != "cpu-bound" || SyncBound.String() != "sync-bound" ||
		IOBound.String() != "io-bound" {
		t.Fatal("why names")
	}
	if Why(42).String() == "" {
		t.Fatal("unknown why should render")
	}
	if MachineFocus.String() != "machine" {
		t.Fatal("machine focus")
	}
	if (Focus{Node: 2, Process: -1}).String() != "node 2" {
		t.Fatal("node focus")
	}
	if (Focus{Node: 2, Process: 1}).String() != "node 2 process 1" {
		t.Fatal("process focus")
	}
}

func TestW3FindsPlantedBottleneck(t *testing.T) {
	target := newSyntheticTarget(SyncBound, 2, 1)
	search, err := NewW3Search(map[Why]float64{
		CPUBound: 15, SyncBound: 15, IOBound: 15,
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	findings, stats, err := search.Run(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings %v", findings)
	}
	f := findings[0]
	if f.Why != SyncBound || f.Focus.Node != 2 || f.Focus.Process != 1 {
		t.Fatalf("wrong bottleneck: %s at %s", f.Why, f.Focus)
	}
	if f.Value <= 15 {
		t.Fatalf("finding value %v below threshold", f.Value)
	}
	if stats.Tests == 0 || stats.Samples != stats.Tests*20 {
		t.Fatalf("accounting %+v", stats)
	}
	// Instrumentation economy: far cheaper than exhaustive always-on.
	if stats.Samples*3 > stats.ExhaustiveSamples {
		t.Fatalf("search not economical: %d vs exhaustive %d",
			stats.Samples, stats.ExhaustiveSamples)
	}
	// One instrumentation point at a time.
	if stats.MaxConcurrent != 1 {
		t.Fatalf("concurrent instrumentation %d", stats.MaxConcurrent)
	}
	// All instrumentation removed, and no sampling while disabled.
	if len(target.enabled) != 0 {
		t.Fatalf("instrumentation left enabled: %v", target.enabled)
	}
	if target.samplesWhileDisabled != 0 {
		t.Fatalf("%d samples taken without instrumentation", target.samplesWhileDisabled)
	}
}

func TestW3NoBottleneck(t *testing.T) {
	target := newSyntheticTarget(CPUBound, 0, 0)
	target.hotLevel = 0 // nothing hot
	search, _ := NewW3Search(map[Why]float64{CPUBound: 15, SyncBound: 15}, 10)
	findings, stats, err := search.Run(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("phantom findings %v", findings)
	}
	// Only the machine-level tests ran: no refinement without truth.
	if stats.Tests != 2 {
		t.Fatalf("tests %d, want 2 machine-level probes", stats.Tests)
	}
}

// TestW3NodeLevelFinding: a bottleneck spread evenly over a node's
// processes is reported at node granularity.
type spreadTarget struct{ *syntheticTarget }

func (t *spreadTarget) Sample(w Why, f Focus) float64 {
	base := t.noise.Uniform(0, 5)
	if w != t.hotWhy {
		return base
	}
	switch {
	case f.Node < 0:
		return 30 + base
	case f.Node == t.hotNode && f.Process < 0:
		return 60 + base
	case f.Node == t.hotNode:
		return 12 + base // each process individually below threshold
	default:
		return base
	}
}

func TestW3NodeLevelFinding(t *testing.T) {
	inner := newSyntheticTarget(CPUBound, 1, 0)
	target := &spreadTarget{inner}
	search, _ := NewW3Search(map[Why]float64{CPUBound: 20}, 15)
	findings, _, err := search.Run(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("findings %v", findings)
	}
	f := findings[0]
	if f.Focus.Node != 1 || f.Focus.Process >= 0 {
		t.Fatalf("expected node-level finding, got %s", f.Focus)
	}
}

// machineOnlyTarget is hot at machine level but no node stands out —
// the finding stays at machine granularity.
type machineOnlyTarget struct{ *syntheticTarget }

func (t *machineOnlyTarget) Sample(w Why, f Focus) float64 {
	if w == t.hotWhy && f.Node < 0 {
		return 100
	}
	return t.noise.Uniform(0, 5)
}

func TestW3MachineLevelFinding(t *testing.T) {
	inner := newSyntheticTarget(IOBound, 0, 0)
	target := &machineOnlyTarget{inner}
	search, _ := NewW3Search(map[Why]float64{IOBound: 20}, 10)
	findings, _, err := search.Run(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Focus != MachineFocus {
		t.Fatalf("findings %v", findings)
	}
}

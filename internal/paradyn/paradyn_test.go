package paradyn

import (
	"testing"

	"prism/internal/rocc"
)

func fastBase() rocc.Config {
	cfg := rocc.DefaultConfig()
	cfg.Horizon = 10_000
	return cfg
}

func TestFig9LeftShape(t *testing.T) {
	pts, err := Fig9Left(fastBase(), []float64{50, 150, 400}, Serial(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y.Mean >= pts[i-1].Y.Mean {
			t.Fatalf("interference not decreasing: %+v", pts)
		}
	}
	// Superlinear initially: drop from 50->150 exceeds drop 150->400
	// per unit period.
	d1 := (pts[0].Y.Mean - pts[1].Y.Mean) / 100
	d2 := (pts[1].Y.Mean - pts[2].Y.Mean) / 250
	if d1 <= d2 {
		t.Fatalf("initial drop not superlinear: %v vs %v", d1, d2)
	}
	for _, p := range pts {
		if p.Y.HalfWidth() < 0 {
			t.Fatal("bad CI")
		}
	}
}

func TestFig9RightShape(t *testing.T) {
	pts, err := Fig9Right(fastBase(), []int{1, 8, 32}, Serial(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y.Mean >= pts[i-1].Y.Mean {
			t.Fatalf("utilization not decreasing: %+v", pts)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := Fig9Left(fastBase(), []float64{100}, Serial(0)); err == nil {
		t.Fatal("zero reps accepted")
	}
	bad := fastBase()
	bad.Quantum = -1
	if _, err := Fig9Left(bad, []float64{100}, Serial(2)); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := Fig9Right(bad, []int{2}, Serial(2)); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestFactorial(t *testing.T) {
	base := fastBase()
	base.Horizon = 6_000
	fr, err := Factorial(base, 50, 400, 2, 24, Serial(8))
	if err != nil {
		t.Fatal(err)
	}
	// Interference is driven by the sampling period (more samples =
	// more daemon CPU): period must carry more variation than procs.
	pEff, ok := fr.Interference.EffectByName("period")
	if !ok {
		t.Fatal("missing period effect")
	}
	if pEff.Value >= 0 {
		t.Fatalf("longer period should reduce interference, effect %v", pEff.Value)
	}
	if fr.Interference.DominantFactor() != "period" {
		t.Fatalf("interference dominant factor %q", fr.Interference.DominantFactor())
	}
	// Utilization is driven by the process count.
	nEff, ok := fr.Utilization.EffectByName("procs")
	if !ok {
		t.Fatal("missing procs effect")
	}
	if nEff.Value >= 0 {
		t.Fatalf("more processes should reduce daemon share, effect %v", nEff.Value)
	}
	if fr.Utilization.DominantFactor() != "procs" {
		t.Fatalf("utilization dominant factor %q", fr.Utilization.DominantFactor())
	}
}

func TestFactorialPropagatesErrors(t *testing.T) {
	bad := fastBase()
	bad.Horizon = -5
	if _, err := Factorial(bad, 50, 400, 2, 8, Serial(2)); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestCostModelValidation(t *testing.T) {
	if _, err := NewCostModel(0); err == nil {
		t.Fatal("target 0 accepted")
	}
	if _, err := NewCostModel(100); err == nil {
		t.Fatal("target 100 accepted")
	}
}

func TestCostModelDirection(t *testing.T) {
	m, err := NewCostModel(5)
	if err != nil {
		t.Fatal(err)
	}
	// Overhead far above target: period must grow.
	next := m.Observe(100, 20)
	if next <= 100 {
		t.Fatalf("period should grow under excess overhead, got %v", next)
	}
	// Persistent low overhead: period must shrink.
	m2, _ := NewCostModel(5)
	next2 := m2.Observe(100, 1)
	if next2 >= 100 {
		t.Fatalf("period should shrink under low overhead, got %v", next2)
	}
	if m2.Smoothed() != 1 {
		t.Fatalf("first observation not seeded: %v", m2.Smoothed())
	}
}

func TestCostModelClamps(t *testing.T) {
	m, _ := NewCostModel(5)
	m.MinPeriod, m.MaxPeriod = 50, 200
	if got := m.Observe(100, 500); got != 200 {
		t.Fatalf("not clamped high: %v", got)
	}
	m2, _ := NewCostModel(50)
	m2.MinPeriod, m2.MaxPeriod = 50, 200
	if got := m2.Observe(60, 0.01); got != 50 {
		t.Fatalf("not clamped low: %v", got)
	}
}

func TestAdaptiveRunConverges(t *testing.T) {
	base := fastBase()
	base.SamplingPeriod = 60
	// Find a reachable target: overhead at period 60 is higher than
	// at period 1000 (housekeeping floor); target midway.
	hi, err := rocc.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	lo := base
	lo.SamplingPeriod = 1500
	loRes, err := rocc.Run(lo)
	if err != nil {
		t.Fatal(err)
	}
	if hi.UtilizationPct <= loRes.UtilizationPct {
		t.Skip("workload did not produce a monotone overhead range")
	}
	target := (hi.UtilizationPct + loRes.UtilizationPct) / 2
	model, err := NewCostModel(target)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := AdaptiveRun(base, model, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 12 {
		t.Fatalf("steps %d", len(steps))
	}
	// Final overhead closer to target than the initial one.
	first := steps[0].OverheadPct - target
	last := steps[len(steps)-1].OverheadPct - target
	if abs(last) >= abs(first) {
		t.Fatalf("no convergence: first err %v, last err %v (target %v)", first, last, target)
	}
}

func TestAdaptiveRunValidation(t *testing.T) {
	model, _ := NewCostModel(5)
	if _, err := AdaptiveRun(fastBase(), model, 0); err == nil {
		t.Fatal("zero segments accepted")
	}
	bad := fastBase()
	bad.Horizon = 0
	if _, err := AdaptiveRun(bad, model, 2); err == nil {
		t.Fatal("bad config accepted")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

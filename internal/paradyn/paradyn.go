// Package paradyn reproduces the Paradyn IS case study of §3.2: the
// Figure 9 parameter sweeps, the 2^k·r factorial experiment design
// ("for these experiments, k=2 factors and r=50 repetitions, and the
// mean values of the two metrics are derived within 90% confidence
// intervals"), and — as the paper's §4 extension — Paradyn's adaptive
// cost model (Hollingsworth & Miller, reference [10]) that "attempts
// to regulate the amount of IS overhead to the application program".
package paradyn

import (
	"errors"
	"fmt"

	"prism/internal/rocc"
	"prism/internal/stats"
)

// PointCI is one point of a sweep: the swept parameter value and the
// metric's mean with confidence interval over replications.
type PointCI struct {
	X float64
	Y stats.Interval
}

// sweep runs f over reps seeds and returns the 90% CI of its metric.
func sweep(base rocc.Config, reps int, metric func(rocc.Result) float64) (stats.Interval, error) {
	if reps < 1 {
		return stats.Interval{}, errors.New("paradyn: need at least one replication")
	}
	vals := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		cfg := base
		cfg.Seed = base.Seed + uint64(r)*101
		res, err := rocc.Run(cfg)
		if err != nil {
			return stats.Interval{}, err
		}
		vals = append(vals, metric(res))
	}
	return stats.MeanCI(vals, 0.90), nil
}

// Fig9Left computes the left panel of Figure 9: daemon (Pd)
// interference versus sampling period, at the base configuration's
// process count, with reps replications per point.
func Fig9Left(base rocc.Config, periods []float64, reps int) ([]PointCI, error) {
	out := make([]PointCI, 0, len(periods))
	for _, p := range periods {
		cfg := base
		cfg.SamplingPeriod = p
		iv, err := sweep(cfg, reps, func(r rocc.Result) float64 { return r.InterferenceMs })
		if err != nil {
			return nil, fmt.Errorf("paradyn: period %v: %w", p, err)
		}
		out = append(out, PointCI{X: p, Y: iv})
	}
	return out, nil
}

// Fig9Right computes the right panel of Figure 9: daemon CPU
// utilization (percent of consumed CPU) versus the number of
// application processes.
func Fig9Right(base rocc.Config, processCounts []int, reps int) ([]PointCI, error) {
	out := make([]PointCI, 0, len(processCounts))
	for _, n := range processCounts {
		cfg := base
		cfg.AppProcesses = n
		iv, err := sweep(cfg, reps, func(r rocc.Result) float64 { return r.UtilizationPct })
		if err != nil {
			return nil, fmt.Errorf("paradyn: n=%d: %w", n, err)
		}
		out = append(out, PointCI{X: float64(n), Y: iv})
	}
	return out, nil
}

// FactorialResult holds the 2^2·r analyses for both §3.2.2 metrics.
type FactorialResult struct {
	Interference *stats.Analysis2kr
	Utilization  *stats.Analysis2kr
}

// Factorial runs the paper's 2^k·r factorial design with k=2 factors —
// sampling period and number of application processes — and r
// replications per cell, analyzing both metrics at 90% confidence.
func Factorial(base rocc.Config, periodLow, periodHigh float64, procsLow, procsHigh, r int) (*FactorialResult, error) {
	design := &stats.Design2kr{
		Factors: []stats.Factor{
			{Name: "period", Low: periodLow, High: periodHigh},
			{Name: "procs", Low: float64(procsLow), High: float64(procsHigh)},
		},
		R: r,
	}
	interference := make([][]float64, design.Runs())
	utilization := make([][]float64, design.Runs())
	for run := 0; run < design.Runs(); run++ {
		vals := design.Values(run)
		cfg := base
		cfg.SamplingPeriod = vals[0]
		cfg.AppProcesses = int(vals[1])
		for rep := 0; rep < r; rep++ {
			cfg.Seed = base.Seed + uint64(run*10_000+rep)
			res, err := rocc.Run(cfg)
			if err != nil {
				return nil, err
			}
			interference[run] = append(interference[run], res.InterferenceMs)
			utilization[run] = append(utilization[run], res.UtilizationPct)
		}
	}
	ai, err := design.Analyze(interference, 0.90)
	if err != nil {
		return nil, err
	}
	au, err := design.Analyze(utilization, 0.90)
	if err != nil {
		return nil, err
	}
	return &FactorialResult{Interference: ai, Utilization: au}, nil
}

// CostModel is the adaptive instrumentation cost model extension: it
// observes the daemon's share of the CPU and retunes the sampling
// period so the overhead tracks a target, the mechanism the paper
// attributes to Paradyn ("this cost model is continuously updated in
// response to actual measurements as an instrumented program starts
// executing").
type CostModel struct {
	// TargetPct is the desired daemon share of consumed CPU (%).
	TargetPct float64
	// MinPeriod and MaxPeriod clamp the sampling period (ms).
	MinPeriod, MaxPeriod float64
	// Gain scales the multiplicative correction per observation.
	Gain float64
	// Smoothing is the EWMA weight on new overhead observations.
	Smoothing float64

	smoothed float64
	seen     bool
}

// NewCostModel returns a cost model with the given overhead target.
func NewCostModel(targetPct float64) (*CostModel, error) {
	if targetPct <= 0 || targetPct >= 100 {
		return nil, errors.New("paradyn: target percentage out of (0,100)")
	}
	return &CostModel{
		TargetPct: targetPct,
		MinPeriod: 10,
		MaxPeriod: 5000,
		Gain:      1.0,
		Smoothing: 0.5,
	}, nil
}

// Observe feeds one measured overhead percentage and returns the
// recommended next sampling period given the current one. Overheads
// above target lengthen the period proportionally; overheads below
// target shorten it (more detail for the same budget).
func (c *CostModel) Observe(currentPeriod, observedPct float64) float64 {
	if !c.seen {
		c.smoothed = observedPct
		c.seen = true
	} else {
		c.smoothed = c.Smoothing*observedPct + (1-c.Smoothing)*c.smoothed
	}
	ratio := c.smoothed / c.TargetPct
	next := currentPeriod * (1 + c.Gain*(ratio-1))
	if next < c.MinPeriod {
		next = c.MinPeriod
	}
	if next > c.MaxPeriod {
		next = c.MaxPeriod
	}
	return next
}

// Smoothed returns the current smoothed overhead estimate.
func (c *CostModel) Smoothed() float64 { return c.smoothed }

// AdaptiveStep is one segment of a closed-loop adaptive run.
type AdaptiveStep struct {
	Period      float64
	OverheadPct float64
}

// AdaptiveRun simulates the closed loop: run a ROCC segment, measure
// daemon overhead, let the cost model retune the period, repeat. It
// returns the trajectory; convergence means the final overheads
// straddle the target.
func AdaptiveRun(base rocc.Config, model *CostModel, segments int) ([]AdaptiveStep, error) {
	if segments < 1 {
		return nil, errors.New("paradyn: need at least one segment")
	}
	period := base.SamplingPeriod
	steps := make([]AdaptiveStep, 0, segments)
	for i := 0; i < segments; i++ {
		cfg := base
		cfg.SamplingPeriod = period
		cfg.Seed = base.Seed + uint64(i)*977
		res, err := rocc.Run(cfg)
		if err != nil {
			return nil, err
		}
		steps = append(steps, AdaptiveStep{Period: period, OverheadPct: res.UtilizationPct})
		period = model.Observe(period, res.UtilizationPct)
	}
	return steps, nil
}

// Package paradyn reproduces the Paradyn IS case study of §3.2: the
// Figure 9 parameter sweeps, the 2^k·r factorial experiment design
// ("for these experiments, k=2 factors and r=50 repetitions, and the
// mean values of the two metrics are derived within 90% confidence
// intervals"), and — as the paper's §4 extension — Paradyn's adaptive
// cost model (Hollingsworth & Miller, reference [10]) that "attempts
// to regulate the amount of IS overhead to the application program".
package paradyn

import (
	"errors"
	"fmt"

	"prism/internal/core"
	"prism/internal/rocc"
	"prism/internal/stats"
)

// PointCI is one point of a sweep: the swept parameter value and the
// metric's mean with confidence interval over replications.
type PointCI struct {
	X float64
	Y stats.Interval
}

// Replication controls how a replicated sweep or factorial design
// executes: how many replications per point/cell, how many may run
// concurrently, and how each replication's seed is derived.
type Replication struct {
	// Reps is the replication count r (the paper uses 50).
	Reps int
	// Parallelism bounds concurrent replications; <= 0 means
	// runtime.GOMAXPROCS(0), 1 forces the serial loop. Results are
	// identical either way: seeds are a pure function of (run, rep).
	Parallelism int
	// SeedFor derives the seed for replication rep of sweep point or
	// design cell run. Nil falls back to hashing the base config seed
	// under the "paradyn" experiment key.
	SeedFor func(run, rep int) uint64
}

// Serial is the Replication used by callers that want the paper's
// plain serial semantics with r replications.
func Serial(reps int) Replication { return Replication{Reps: reps, Parallelism: 1} }

func (rp Replication) seed(base uint64, run, rep int) uint64 {
	if rp.SeedFor != nil {
		return rp.SeedFor(run, rep)
	}
	return core.SeedFor(base, "paradyn", run, rep)
}

// sweep replicates the base configuration at sweep point run and
// returns the 90% CI of the metric over rp.Reps replications.
func sweep(base rocc.Config, run int, rp Replication, metric func(rocc.Result) float64) (stats.Interval, error) {
	if rp.Reps < 1 {
		return stats.Interval{}, errors.New("paradyn: need at least one replication")
	}
	vals := make([]float64, rp.Reps)
	err := core.Replicate(rp.Reps, rp.Parallelism, func(rep int) error {
		cfg := base
		cfg.Seed = rp.seed(base.Seed, run, rep)
		res, err := rocc.Run(cfg)
		if err != nil {
			return err
		}
		vals[rep] = metric(res)
		return nil
	})
	if err != nil {
		return stats.Interval{}, err
	}
	return stats.MeanCI(vals, 0.90), nil
}

// Fig9Left computes the left panel of Figure 9: daemon (Pd)
// interference versus sampling period, at the base configuration's
// process count, with rp.Reps replications per point.
func Fig9Left(base rocc.Config, periods []float64, rp Replication) ([]PointCI, error) {
	out := make([]PointCI, len(periods))
	err := core.Replicate(len(periods), rp.Parallelism, func(i int) error {
		cfg := base
		cfg.SamplingPeriod = periods[i]
		iv, err := sweep(cfg, i, rp, func(r rocc.Result) float64 { return r.InterferenceMs })
		if err != nil {
			return fmt.Errorf("paradyn: period %v: %w", periods[i], err)
		}
		out[i] = PointCI{X: periods[i], Y: iv}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig9Right computes the right panel of Figure 9: daemon CPU
// utilization (percent of consumed CPU) versus the number of
// application processes.
func Fig9Right(base rocc.Config, processCounts []int, rp Replication) ([]PointCI, error) {
	out := make([]PointCI, len(processCounts))
	err := core.Replicate(len(processCounts), rp.Parallelism, func(i int) error {
		cfg := base
		cfg.AppProcesses = processCounts[i]
		iv, err := sweep(cfg, i, rp, func(r rocc.Result) float64 { return r.UtilizationPct })
		if err != nil {
			return fmt.Errorf("paradyn: n=%d: %w", processCounts[i], err)
		}
		out[i] = PointCI{X: float64(processCounts[i]), Y: iv}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FactorialResult holds the 2^2·r analyses for both §3.2.2 metrics.
type FactorialResult struct {
	Interference *stats.Analysis2kr
	Utilization  *stats.Analysis2kr
}

// Factorial runs the paper's 2^k·r factorial design with k=2 factors —
// sampling period and number of application processes — and rp.Reps
// replications per cell, analyzing both metrics at 90% confidence.
func Factorial(base rocc.Config, periodLow, periodHigh float64, procsLow, procsHigh int, rp Replication) (*FactorialResult, error) {
	design := &stats.Design2kr{
		Factors: []stats.Factor{
			{Name: "period", Low: periodLow, High: periodHigh},
			{Name: "procs", Low: float64(procsLow), High: float64(procsHigh)},
		},
		R: rp.Reps,
	}
	interference := design.NewResponseMatrix()
	utilization := design.NewResponseMatrix()
	err := design.RunCells(rp.Parallelism, func(run, rep int) error {
		vals := design.Values(run)
		cfg := base
		cfg.SamplingPeriod = vals[0]
		cfg.AppProcesses = int(vals[1])
		cfg.Seed = rp.seed(base.Seed, run, rep)
		res, err := rocc.Run(cfg)
		if err != nil {
			return err
		}
		interference[run][rep] = res.InterferenceMs
		utilization[run][rep] = res.UtilizationPct
		return nil
	})
	if err != nil {
		return nil, err
	}
	ai, err := design.Analyze(interference, 0.90)
	if err != nil {
		return nil, err
	}
	au, err := design.Analyze(utilization, 0.90)
	if err != nil {
		return nil, err
	}
	return &FactorialResult{Interference: ai, Utilization: au}, nil
}

// CostModel is the adaptive instrumentation cost model extension: it
// observes the daemon's share of the CPU and retunes the sampling
// period so the overhead tracks a target, the mechanism the paper
// attributes to Paradyn ("this cost model is continuously updated in
// response to actual measurements as an instrumented program starts
// executing").
type CostModel struct {
	// TargetPct is the desired daemon share of consumed CPU (%).
	TargetPct float64
	// MinPeriod and MaxPeriod clamp the sampling period (ms).
	MinPeriod, MaxPeriod float64
	// Gain scales the multiplicative correction per observation.
	Gain float64
	// Smoothing is the EWMA weight on new overhead observations.
	Smoothing float64

	smoothed float64
	seen     bool
}

// NewCostModel returns a cost model with the given overhead target.
func NewCostModel(targetPct float64) (*CostModel, error) {
	if targetPct <= 0 || targetPct >= 100 {
		return nil, errors.New("paradyn: target percentage out of (0,100)")
	}
	return &CostModel{
		TargetPct: targetPct,
		MinPeriod: 10,
		MaxPeriod: 5000,
		Gain:      1.0,
		Smoothing: 0.5,
	}, nil
}

// Observe feeds one measured overhead percentage and returns the
// recommended next sampling period given the current one. Overheads
// above target lengthen the period proportionally; overheads below
// target shorten it (more detail for the same budget).
func (c *CostModel) Observe(currentPeriod, observedPct float64) float64 {
	if !c.seen {
		c.smoothed = observedPct
		c.seen = true
	} else {
		c.smoothed = c.Smoothing*observedPct + (1-c.Smoothing)*c.smoothed
	}
	ratio := c.smoothed / c.TargetPct
	next := currentPeriod * (1 + c.Gain*(ratio-1))
	if next < c.MinPeriod {
		next = c.MinPeriod
	}
	if next > c.MaxPeriod {
		next = c.MaxPeriod
	}
	return next
}

// Smoothed returns the current smoothed overhead estimate.
func (c *CostModel) Smoothed() float64 { return c.smoothed }

// AdaptiveStep is one segment of a closed-loop adaptive run.
type AdaptiveStep struct {
	Period      float64
	OverheadPct float64
}

// AdaptiveRun simulates the closed loop: run a ROCC segment, measure
// daemon overhead, let the cost model retune the period, repeat. It
// returns the trajectory; convergence means the final overheads
// straddle the target.
func AdaptiveRun(base rocc.Config, model *CostModel, segments int) ([]AdaptiveStep, error) {
	if segments < 1 {
		return nil, errors.New("paradyn: need at least one segment")
	}
	period := base.SamplingPeriod
	steps := make([]AdaptiveStep, 0, segments)
	for i := 0; i < segments; i++ {
		cfg := base
		cfg.SamplingPeriod = period
		// The closed loop is inherently sequential (each segment's
		// period depends on the previous measurement), but its seeds
		// still come from the collision-free derivation.
		cfg.Seed = core.SeedFor(base.Seed, "paradyn/adaptive", i, 0)
		res, err := rocc.Run(cfg)
		if err != nil {
			return nil, err
		}
		steps = append(steps, AdaptiveStep{Period: period, OverheadPct: res.UtilizationPct})
		period = model.Observe(period, res.UtilizationPct)
	}
	return steps, nil
}

package report

import (
	"strings"
	"testing"

	"prism/internal/core"
	"prism/internal/stats"
)

func tableArtifact() *core.Artifact {
	return &core.Artifact{
		ID: "t", Title: "A Table", Kind: core.Table,
		Headers: []string{"Col1", "Column Two"},
		Rows: [][]string{
			{"a", "b"},
			{"long cell value that definitely needs wrapping across several lines to fit", "c"},
		},
		Notes: []string{"a note"},
	}
}

func figureArtifact() *core.Artifact {
	return &core.Artifact{
		ID: "f", Title: "A Figure", Kind: core.Figure,
		XLabel: "x", YLabel: "y",
		Series: []core.Series{
			{Name: "FOF", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}},
			{Name: "FAOF", X: []float64{1, 2, 3}, Y: []float64{2, 1, 0.5},
				YLo: []float64{1.9, 0.9, 0.4}, YHi: []float64{2.1, 1.1, 0.6}},
		},
	}
}

func TestRenderTable(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, tableArtifact()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"A Table", "Col1", "Column Two", "note: a note", "+-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Wrapped cell: no output line should exceed a sane width.
	for _, line := range strings.Split(out, "\n") {
		if len(line) > 120 {
			t.Fatalf("line too long (%d): %q", len(line), line)
		}
	}
}

func TestRenderFigure(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, figureArtifact()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"A Figure", "+ FOF", "o FAOF", "x: x, y: y"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Both markers must appear in the plot body.
	if !strings.Contains(out, "+") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
}

func TestRenderEmptyFigure(t *testing.T) {
	var b strings.Builder
	a := &core.Artifact{ID: "f", Title: "Empty", Kind: core.Figure}
	if err := Render(&b, a); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "(no data)") {
		t.Fatal("empty figure not flagged")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	var b strings.Builder
	a := &core.Artifact{ID: "f", Title: "Flat", Kind: core.Figure,
		Series: []core.Series{{Name: "s", X: []float64{5}, Y: []float64{7}}}}
	if err := Render(&b, a); err != nil {
		t.Fatal(err)
	}
}

func TestRenderRejectsInvalid(t *testing.T) {
	var b strings.Builder
	bad := &core.Artifact{ID: "", Title: "", Kind: core.Table}
	if err := Render(&b, bad); err == nil {
		t.Fatal("invalid artifact rendered")
	}
}

func TestCSVTable(t *testing.T) {
	var b strings.Builder
	a := &core.Artifact{
		ID: "t", Title: "T", Kind: core.Table,
		Headers: []string{"a", "b,comma"},
		Rows:    [][]string{{`quote"inside`, "plain"}},
	}
	if err := CSV(&b, a); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"b,comma"`) {
		t.Fatalf("comma not quoted: %s", out)
	}
	if !strings.Contains(out, `"quote""inside"`) {
		t.Fatalf("quote not escaped: %s", out)
	}
}

func TestCSVFigure(t *testing.T) {
	var b strings.Builder
	if err := CSV(&b, figureArtifact()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "series,x,y,ylo,yhi" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 1+6 {
		t.Fatalf("rows %d", len(lines)-1)
	}
	if !strings.Contains(lines[4], "FAOF,1,2,1.9,2.1") {
		t.Fatalf("band row %q", lines[4])
	}
}

func TestCSVRejectsInvalid(t *testing.T) {
	var b strings.Builder
	if err := CSV(&b, &core.Artifact{}); err == nil {
		t.Fatal("invalid artifact accepted")
	}
}

func TestRenderDiagram(t *testing.T) {
	var b strings.Builder
	d := &core.Artifact{ID: "fig2", Title: "Figure 2", Kind: core.Diagram,
		Text: "\n[A]-->[B]", Notes: []string{"wiring"}}
	if err := Render(&b, d); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "[A]-->[B]") || !strings.Contains(out, "note: wiring") {
		t.Fatalf("diagram output:\n%s", out)
	}
	var c strings.Builder
	if err := CSV(&c, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "diagram,fig2") {
		t.Fatalf("diagram csv: %s", c.String())
	}
}

func TestHistogramRendering(t *testing.T) {
	h := stats.NewHistogram(0, 100, 4)
	for _, v := range []float64{5, 10, 30, 30, 30, 80, -2, 150} {
		h.Add(v)
	}
	var b strings.Builder
	if err := Histogram(&b, "latency (ms)", h); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "latency (ms) (n=8, under=1, over=1)") {
		t.Fatalf("header missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // header + 4 buckets
		t.Fatalf("lines %d", len(lines))
	}
	// The 25-50 bucket (3 hits) has the longest bar.
	if !strings.Contains(lines[2], "##################################################") {
		t.Fatalf("modal bucket bar wrong: %q", lines[2])
	}
	if !strings.Contains(lines[2], "3 (50.0%)") {
		t.Fatalf("modal bucket stats wrong: %q", lines[2])
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := stats.NewHistogram(0, 10, 2)
	var b strings.Builder
	if err := Histogram(&b, "empty", h); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "n=0") {
		t.Fatal("empty histogram header")
	}
}

func TestRenderTable8(t *testing.T) {
	var b strings.Builder
	if err := Render(&b, core.Table8()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Paradyn") {
		t.Fatal("table8 content missing")
	}
}

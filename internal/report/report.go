// Package report renders experiment artifacts — the regenerated
// tables and figures of the paper — as ASCII tables, ASCII line
// plots (with per-series markers, in the style of the paper's "+ FOF /
// o FAOF" plots), and CSV for external plotting.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"prism/internal/core"
	"prism/internal/stats"
)

// Render writes an artifact in human-readable form.
func Render(w io.Writer, a *core.Artifact) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n%s\n", a.Title, strings.Repeat("=", min(len(a.Title), 100))); err != nil {
		return err
	}
	switch a.Kind {
	case core.Table:
		if err := renderTable(w, a.Headers, a.Rows); err != nil {
			return err
		}
	case core.Figure:
		if err := renderFigure(w, a); err != nil {
			return err
		}
	case core.Diagram:
		if _, err := fmt.Fprintln(w, strings.TrimLeft(a.Text, "\n")); err != nil {
			return err
		}
	}
	for _, n := range a.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// renderTable prints a boxed ASCII table with wrapped cells.
func renderTable(w io.Writer, headers []string, rows [][]string) error {
	const maxCell = 36
	wrap := func(s string) []string {
		if len(s) <= maxCell {
			return []string{s}
		}
		var lines []string
		words := strings.Fields(s)
		cur := ""
		for _, word := range words {
			if cur == "" {
				cur = word
			} else if len(cur)+1+len(word) <= maxCell {
				cur += " " + word
			} else {
				lines = append(lines, cur)
				cur = word
			}
		}
		if cur != "" {
			lines = append(lines, cur)
		}
		if len(lines) == 0 {
			lines = []string{""}
		}
		return lines
	}

	widths := make([]int, len(headers))
	for i, h := range headers {
		for _, l := range wrap(h) {
			if len(l) > widths[i] {
				widths[i] = len(l)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			for _, l := range wrap(cell) {
				if len(l) > widths[i] {
					widths[i] = len(l)
				}
			}
		}
	}
	sep := "+"
	for _, wd := range widths {
		sep += strings.Repeat("-", wd+2) + "+"
	}
	printRow := func(cells []string) error {
		wrapped := make([][]string, len(cells))
		height := 1
		for i, c := range cells {
			wrapped[i] = wrap(c)
			if len(wrapped[i]) > height {
				height = len(wrapped[i])
			}
		}
		for line := 0; line < height; line++ {
			out := "|"
			for i := range cells {
				cell := ""
				if line < len(wrapped[i]) {
					cell = wrapped[i][line]
				}
				out += fmt.Sprintf(" %-*s |", widths[i], cell)
			}
			if _, err := fmt.Fprintln(w, out); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := fmt.Fprintln(w, sep); err != nil {
		return err
	}
	if err := printRow(headers); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, sep); err != nil {
		return err
	}
	for _, row := range rows {
		if err := printRow(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, sep)
	return err
}

var markers = []byte{'+', 'o', '*', 'x', '#', '@'}

// renderFigure prints a multi-series ASCII line plot with a legend.
func renderFigure(w io.Writer, a *core.Artifact) error {
	const width, height = 68, 20
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range a.Series {
		for i := range s.X {
			points++
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if points == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range a.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			cx := int((s.X[i] - xMin) / (xMax - xMin) * float64(width-1))
			cy := int((s.Y[i] - yMin) / (yMax - yMin) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = m
			}
		}
	}
	for i, row := range grid {
		label := "          "
		if i == 0 {
			label = fmt.Sprintf("%10.4g", yMax)
		} else if i == height-1 {
			label = fmt.Sprintf("%10.4g", yMin)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %-10.4g%s%10.4g\n", strings.Repeat(" ", 10),
		xMin, strings.Repeat(" ", width-20), xMax); err != nil {
		return err
	}
	if a.XLabel != "" || a.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%s x: %s, y: %s\n", strings.Repeat(" ", 10), a.XLabel, a.YLabel); err != nil {
			return err
		}
	}
	for si, s := range a.Series {
		if _, err := fmt.Fprintf(w, "%s %c %s\n", strings.Repeat(" ", 10), markers[si%len(markers)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes an artifact's data in CSV form: tables as header+rows,
// figures as long format (series,x,y,ylo,yhi).
func CSV(w io.Writer, a *core.Artifact) error {
	if err := a.Validate(); err != nil {
		return err
	}
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		for i, c := range cells {
			cells[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(cells, ","))
		return err
	}
	switch a.Kind {
	case core.Table:
		if err := writeRow(append([]string(nil), a.Headers...)); err != nil {
			return err
		}
		for _, row := range a.Rows {
			if err := writeRow(append([]string(nil), row...)); err != nil {
				return err
			}
		}
	case core.Diagram:
		// Diagrams have no tabular data; emit the title as a record.
		if err := writeRow([]string{"diagram", a.ID, a.Title}); err != nil {
			return err
		}
	case core.Figure:
		if err := writeRow([]string{"series", "x", "y", "ylo", "yhi"}); err != nil {
			return err
		}
		for _, s := range a.Series {
			for i := range s.X {
				lo, hi := "", ""
				if s.YLo != nil {
					lo = fmt.Sprintf("%g", s.YLo[i])
					hi = fmt.Sprintf("%g", s.YHi[i])
				}
				if err := writeRow([]string{s.Name,
					fmt.Sprintf("%g", s.X[i]), fmt.Sprintf("%g", s.Y[i]), lo, hi}); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Histogram renders a stats.Histogram as horizontal ASCII bars, one
// row per bucket, with counts and in-range fractions.
func Histogram(w io.Writer, title string, h *stats.Histogram) error {
	if _, err := fmt.Fprintf(w, "%s (n=%d, under=%d, over=%d)\n", title, h.N(), h.Under, h.Over); err != nil {
		return err
	}
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	const barWidth = 50
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * barWidth / maxCount
		}
		if _, err := fmt.Fprintf(w, "%10.4g |%-*s| %d (%.1f%%)\n",
			h.BucketMid(i), barWidth, strings.Repeat("#", bar), c, h.Fraction(i)*100); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package report

import (
	"strings"
	"testing"

	"prism/internal/isruntime/metrics"
)

func TestRenderMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Scope("lis.node0").Counter("captured").Add(128)
	reg.Scope("ism").Gauge("held").Set(4)
	reg.Scope("ism").Histogram("latency_ns").Observe(1000)

	var b strings.Builder
	if err := RenderMetrics(&b, "IS runtime metrics", reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "IS runtime metrics") {
		t.Fatalf("title missing:\n%s", out)
	}
	for _, want := range []string{
		"lis.node0.captured", "128", "counter",
		"ism.held", "gauge",
		"ism.latency_ns", "histogram", "n=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderMetricsEmpty(t *testing.T) {
	var b strings.Builder
	if err := RenderMetrics(&b, "empty", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "metric") {
		t.Fatal("header row missing")
	}
}

package report

import (
	"fmt"
	"io"
	"strings"

	"prism/internal/isruntime/metrics"
)

// RenderMetrics prints a runtime metrics snapshot as a boxed table —
// the IS reporting on itself (counters like lis.node0.captured,
// ism.out_of_order, tp.bytes_tx). Histogram rows include their
// observation count, mean and max.
func RenderMetrics(w io.Writer, title string, snap metrics.Snapshot) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", min(len(title), 100))); err != nil {
		return err
	}
	rows := make([][]string, 0, len(snap))
	for _, m := range snap {
		var value string
		switch m.Kind {
		case metrics.KindHistogram:
			value = fmt.Sprintf("n=%d mean=%.1f max=%d", m.Count, m.Value, m.Max)
		default:
			value = fmt.Sprintf("%g", m.Value)
		}
		rows = append(rows, []string{m.Name, m.Kind.String(), value})
	}
	if err := renderTable(w, []string{"metric", "kind", "value"}, rows); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

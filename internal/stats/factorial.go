package stats

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strings"

	"prism/internal/core"
)

// The paper evaluates the Paradyn and Vista instrumentation systems
// with "a 2^k·r factorial design technique ... where k is the number of
// factors of interest and r is the number of repetitions of each
// experiment" (§3.2.2, §3.3.2, citing Jain [11]). This file implements
// that design: sign-table effect estimation, allocation of variation,
// and confidence intervals on effects derived from replication error.

// Factor describes one two-level factor of a 2^k design.
type Factor struct {
	Name string
	Low  float64 // value encoded as level -1
	High float64 // value encoded as level +1
}

// Design2kr is a full-factorial 2^k design with r replications.
type Design2kr struct {
	Factors []Factor
	R       int
}

// Runs returns 2^k.
func (d *Design2kr) Runs() int { return 1 << len(d.Factors) }

// Levels returns the -1/+1 level of factor f in run index (the i-th
// bit of index selects the level of factor i).
func (d *Design2kr) Levels(index int) []int {
	lv := make([]int, len(d.Factors))
	for i := range d.Factors {
		if index&(1<<i) != 0 {
			lv[i] = 1
		} else {
			lv[i] = -1
		}
	}
	return lv
}

// Values returns the factor values (Low/High) for run index.
func (d *Design2kr) Values(index int) []float64 {
	vals := make([]float64, len(d.Factors))
	for i, l := range d.Levels(index) {
		if l > 0 {
			vals[i] = d.Factors[i].High
		} else {
			vals[i] = d.Factors[i].Low
		}
	}
	return vals
}

// Effect is one estimated effect of a 2^k·r analysis: the grand mean
// (I), a main effect, or an interaction.
type Effect struct {
	// Name is "I" for the grand mean, a factor name for a main
	// effect, or names joined with "x" for interactions (e.g. "AxB").
	Name string
	// Value is the effect estimate q_i (half the average response
	// change when moving the factor from low to high).
	Value float64
	// VariationShare is the fraction of total response variation
	// explained by this effect (zero for "I").
	VariationShare float64
	// CI is the confidence interval on the effect, available when
	// r > 1 (otherwise degenerate).
	CI Interval
}

// Analysis2kr is the result of analyzing a 2^k·r experiment.
type Analysis2kr struct {
	Design  *Design2kr
	Effects []Effect
	// ErrorShare is the fraction of variation attributed to
	// experimental (replication) error.
	ErrorShare float64
	// CellMeans[i] is the mean response of run i.
	CellMeans []float64
	// CellCIs[i] is the confidence interval on run i's mean.
	CellCIs []Interval
}

// DominantFactor returns the name of the non-interaction effect with
// the largest variation share, mirroring the paper's "the inter-arrival
// rate is the dominant factor" conclusion.
func (a *Analysis2kr) DominantFactor() string {
	best, bestShare := "", -1.0
	for _, e := range a.Effects {
		if e.Name == "I" || strings.Contains(e.Name, "x") {
			continue
		}
		if e.VariationShare > bestShare {
			best, bestShare = e.Name, e.VariationShare
		}
	}
	return best
}

// EffectByName returns the effect with the given name.
func (a *Analysis2kr) EffectByName(name string) (Effect, bool) {
	for _, e := range a.Effects {
		if e.Name == name {
			return e, true
		}
	}
	return Effect{}, false
}

// Analyze performs the 2^k·r analysis on responses, a matrix with
// Runs() rows (indexed as by Levels) and R columns of replicated
// observations. The confidence parameter sets the CI level on effects
// and cell means (the paper uses 0.90).
func (d *Design2kr) Analyze(responses [][]float64, confidence float64) (*Analysis2kr, error) {
	k := len(d.Factors)
	runs := d.Runs()
	if len(responses) != runs {
		return nil, fmt.Errorf("stats: 2^%d design needs %d response rows, got %d", k, runs, len(responses))
	}
	if d.R < 1 {
		return nil, errors.New("stats: 2^k·r design needs r >= 1")
	}
	for i, row := range responses {
		if len(row) != d.R {
			return nil, fmt.Errorf("stats: run %d has %d replications, want %d", i, len(row), d.R)
		}
	}

	an := &Analysis2kr{Design: d}
	an.CellMeans = make([]float64, runs)
	an.CellCIs = make([]Interval, runs)
	for i, row := range responses {
		an.CellMeans[i] = Summarize(row).Mean
		an.CellCIs[i] = MeanCI(row, confidence)
	}

	// Sign table over all 2^k effect columns: column mask m has sign
	// prod_{i in m} level_i for each run.
	nEff := runs // including I at mask 0
	qs := make([]float64, nEff)
	for mask := 0; mask < nEff; mask++ {
		sum := 0.0
		for run := 0; run < runs; run++ {
			sign := 1.0
			lv := d.Levels(run)
			for i := 0; i < k; i++ {
				if mask&(1<<i) != 0 && lv[i] < 0 {
					sign = -sign
				}
			}
			sum += sign * an.CellMeans[run]
		}
		qs[mask] = sum / float64(runs)
	}

	// Sums of squares. SSE from replication scatter around cell means.
	sse := 0.0
	for i, row := range responses {
		for _, y := range row {
			dlt := y - an.CellMeans[i]
			sse += dlt * dlt
		}
	}
	ssEffect := make([]float64, nEff)
	ssTotal := sse
	for mask := 1; mask < nEff; mask++ {
		ssEffect[mask] = float64(runs*d.R) * qs[mask] * qs[mask]
		ssTotal += ssEffect[mask]
	}

	// Standard error of an effect: s_e / sqrt(2^k * r), with
	// s_e^2 = SSE / (2^k (r-1)).
	var seEffect float64
	dfErr := runs * (d.R - 1)
	if dfErr > 0 {
		seEffect = mathSqrt(sse/float64(dfErr)) / mathSqrt(float64(runs*d.R))
	}

	for mask := 0; mask < nEff; mask++ {
		e := Effect{Name: d.effectName(mask), Value: qs[mask]}
		if mask != 0 && ssTotal > 0 {
			e.VariationShare = ssEffect[mask] / ssTotal
		}
		e.CI = Interval{Mean: qs[mask], Lo: qs[mask], Hi: qs[mask], Confidence: confidence}
		if dfErr > 0 {
			h := TQuantile(dfErr, 1-(1-confidence)/2) * seEffect
			e.CI.Lo, e.CI.Hi = qs[mask]-h, qs[mask]+h
		}
		an.Effects = append(an.Effects, e)
	}
	if ssTotal > 0 {
		an.ErrorShare = sse / ssTotal
	}

	// Order: I, main effects, then interactions by ascending order.
	slices.SortStableFunc(an.Effects, func(a, b Effect) int {
		if oa, ob := effectOrder(a.Name), effectOrder(b.Name); oa != ob {
			return oa - ob
		}
		return strings.Compare(a.Name, b.Name)
	})
	return an, nil
}

// RunCells executes body once for every (run, rep) cell of the design
// with bounded parallelism (see core.Replicate for the semantics of
// parallelism and error propagation). Cells are identified run-major:
// body must write its observation to per-cell storage indexed by
// (run, rep) — e.g. responses[run][rep] — so the filled matrix is
// independent of completion order and can be handed straight to
// Analyze. Seeds should come from core.SeedFor(base, experiment, run,
// rep) so every cell replays the same stochastic path regardless of
// which worker claims it.
func (d *Design2kr) RunCells(parallelism int, body func(run, rep int) error) error {
	if d.R < 1 {
		return errors.New("stats: 2^k·r design needs r >= 1")
	}
	if body == nil {
		return errors.New("stats: RunCells needs a body")
	}
	return core.Replicate(d.Runs()*d.R, parallelism, func(i int) error {
		return body(i/d.R, i%d.R)
	})
}

// NewResponseMatrix allocates the Runs() x R response matrix that
// RunCells fills and Analyze consumes, pre-sized so concurrent cell
// writes land in disjoint slots without reallocation.
func (d *Design2kr) NewResponseMatrix() [][]float64 {
	m := make([][]float64, d.Runs())
	for i := range m {
		m[i] = make([]float64, d.R)
	}
	return m
}

func (d *Design2kr) effectName(mask int) string {
	if mask == 0 {
		return "I"
	}
	var parts []string
	for i, f := range d.Factors {
		if mask&(1<<i) != 0 {
			parts = append(parts, f.Name)
		}
	}
	return strings.Join(parts, "x")
}

func effectOrder(name string) int {
	if name == "I" {
		return 0
	}
	return 1 + strings.Count(name, "x")
}

func mathSqrt(v float64) float64 {
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

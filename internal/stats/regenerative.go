package stats

import (
	"errors"
	"math"
)

// Regenerative-process analysis. The paper's PICL evaluation (§3.1.3)
// rests on "the observation that the process of filling and flushing a
// buffer is a regenerative process ... the proportion of time spent by
// the instrumentation system in the 'flushing state' throughout program
// execution is the same as the proportion of time spent in this state
// during one cycle (Smith's theorem)". This file provides the
// renewal-reward estimator used to turn simulated cycles into long-run
// rates with confidence intervals.

// Cycle is one regeneration cycle: its Length (total cycle time or
// arrivals, depending on the chosen denominator) and the Reward
// accumulated during it (e.g. number of flushes, or time in the
// flushing state).
type Cycle struct {
	Length float64
	Reward float64
}

// RenewalReward estimates the long-run reward rate E[R]/E[L] of a
// regenerative process from observed cycles, with a confidence
// interval computed by the classical regenerative (ratio) estimator
// using the delta method.
func RenewalReward(cycles []Cycle, confidence float64) (Interval, error) {
	n := len(cycles)
	if n < 2 {
		return Interval{}, errors.New("stats: renewal-reward needs >= 2 cycles")
	}
	var sumR, sumL float64
	for _, c := range cycles {
		sumR += c.Reward
		sumL += c.Length
	}
	if sumL <= 0 {
		return Interval{}, errors.New("stats: renewal-reward with non-positive total length")
	}
	meanR := sumR / float64(n)
	meanL := sumL / float64(n)
	rate := meanR / meanL

	// Variance of Z_i = R_i - rate * L_i.
	var s2 float64
	for _, c := range cycles {
		z := c.Reward - rate*c.Length
		s2 += z * z
	}
	s2 /= float64(n - 1)
	se := math.Sqrt(s2/float64(n)) / meanL

	h := TQuantile(n-1, 1-(1-confidence)/2) * se
	return Interval{Mean: rate, Lo: rate - h, Hi: rate + h, Confidence: confidence}, nil
}

// TimeAverage computes the time-average of a piecewise-constant
// process described by (time, value) change points over the horizon
// [start, end]. The value holds from its change point until the next.
// It is the estimator behind "average buffer length" style metrics.
func TimeAverage(times, values []float64, start, end float64) (float64, error) {
	if len(times) != len(values) {
		return 0, errors.New("stats: TimeAverage length mismatch")
	}
	if end <= start {
		return 0, errors.New("stats: TimeAverage with empty horizon")
	}
	area := 0.0
	cur := 0.0
	last := start
	for i, t := range times {
		if t < last {
			if t < start {
				// Change point before the horizon establishes the
				// initial value.
				cur = values[i]
				continue
			}
			return 0, errors.New("stats: TimeAverage times not sorted")
		}
		if t > end {
			break
		}
		area += cur * (t - last)
		cur = values[i]
		last = t
	}
	area += cur * (end - last)
	return area / (end - start), nil
}

// Histogram is a fixed-width bucket histogram over [Lo, Hi); values
// outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int
	Over    int
	samples int
}

// NewHistogram creates a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.samples++
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard fp edge
			i--
		}
		h.Counts[i]++
	}
}

// N returns the number of observations recorded.
func (h *Histogram) N() int { return h.samples }

// BucketMid returns the midpoint of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of in-range observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	in := h.samples - h.Under - h.Over
	if in == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(in)
}

package stats_test

import (
	"fmt"

	"prism/internal/stats"
)

// Example runs the paper's 2^k·r factorial methodology on a textbook
// dataset: two factors, one replication, effect estimation with
// allocation of variation (Jain [11], the paper's §3.2.2 technique).
func Example() {
	design := &stats.Design2kr{
		Factors: []stats.Factor{
			{Name: "period", Low: 50, High: 500},
			{Name: "procs", Low: 2, High: 32},
		},
		R: 1,
	}
	// Responses indexed by the design's run order: (-,-), (+,-), (-,+), (+,+).
	responses := [][]float64{{15}, {45}, {25}, {75}}
	analysis, err := design.Analyze(responses, 0.90)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, e := range analysis.Effects {
		fmt.Printf("%-13s estimate %5.1f  variation %4.1f%%\n",
			e.Name, e.Value, e.VariationShare*100)
	}
	fmt.Printf("dominant factor: %s\n", analysis.DominantFactor())
	// Output:
	// I             estimate  40.0  variation  0.0%
	// period        estimate  20.0  variation 76.2%
	// procs         estimate  10.0  variation 19.0%
	// periodxprocs  estimate   5.0  variation  4.8%
	// dominant factor: period
}

// ExampleMeanCI computes the 90% Student-t confidence interval the
// paper reports its metric means with.
func ExampleMeanCI() {
	samples := []float64{12.1, 11.8, 12.5, 12.0, 11.9, 12.3}
	iv := stats.MeanCI(samples, 0.90)
	fmt.Printf("mean %.2f, interval [%.2f, %.2f]\n", iv.Mean, iv.Lo, iv.Hi)
	fmt.Printf("contains 12: %v\n", iv.Contains(12))
	// Output:
	// mean 12.10, interval [11.89, 12.31]
	// contains 12: true
}

// ExampleRenewalReward estimates a long-run flushing frequency from
// regeneration cycles (Smith's theorem, §3.1.3).
func ExampleRenewalReward() {
	// Ten cycles of fill(40ms) + flush(10ms), one flush each.
	var cycles []stats.Cycle
	for i := 0; i < 10; i++ {
		cycles = append(cycles, stats.Cycle{Length: 50, Reward: 1})
	}
	iv, err := stats.RenewalReward(cycles, 0.90)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("flush rate: %.3f per ms\n", iv.Mean)
	// Output:
	// flush rate: 0.020 per ms
}

package stats

import (
	"math"
	"testing"

	"prism/internal/rng"
)

func design2(r int) *Design2kr {
	return &Design2kr{
		Factors: []Factor{
			{Name: "A", Low: 10, High: 20},
			{Name: "B", Low: 1, High: 5},
		},
		R: r,
	}
}

func TestDesignRunsAndLevels(t *testing.T) {
	d := design2(3)
	if d.Runs() != 4 {
		t.Fatalf("2^2 runs = %d", d.Runs())
	}
	if lv := d.Levels(0); lv[0] != -1 || lv[1] != -1 {
		t.Fatalf("levels(0) = %v", lv)
	}
	if lv := d.Levels(3); lv[0] != 1 || lv[1] != 1 {
		t.Fatalf("levels(3) = %v", lv)
	}
	if v := d.Values(1); v[0] != 20 || v[1] != 1 {
		t.Fatalf("values(1) = %v", v)
	}
}

// TestAnalyzeTextbook reproduces the classic memory-cache 2^2 example
// from Jain (Table 17.3-ish): y = 15, 45, 25, 75 for runs
// (-1,-1), (+1,-1), (-1,+1), (+1,+1).
func TestAnalyzeTextbook(t *testing.T) {
	d := design2(1)
	resp := [][]float64{{15}, {45}, {25}, {75}}
	an, err := d.Analyze(resp, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	get := func(name string) float64 {
		e, ok := an.EffectByName(name)
		if !ok {
			t.Fatalf("missing effect %s", name)
		}
		return e.Value
	}
	almost(t, get("I"), 40, 1e-9, "grand mean")
	almost(t, get("A"), 20, 1e-9, "qA")
	almost(t, get("B"), 10, 1e-9, "qB")
	almost(t, get("AxB"), 5, 1e-9, "qAB")

	// Variation shares: SSA:SSB:SSAB = 400:100:25.
	eA, _ := an.EffectByName("A")
	eB, _ := an.EffectByName("B")
	eAB, _ := an.EffectByName("AxB")
	almost(t, eA.VariationShare, 400.0/525.0, 1e-9, "A share")
	almost(t, eB.VariationShare, 100.0/525.0, 1e-9, "B share")
	almost(t, eAB.VariationShare, 25.0/525.0, 1e-9, "AB share")
	if an.DominantFactor() != "A" {
		t.Fatalf("dominant = %s", an.DominantFactor())
	}
}

func TestAnalyzeWithReplication(t *testing.T) {
	// Known additive model: y = 100 + 12*A + 3*B + noise.
	st := rng.New(5)
	d := design2(50)
	resp := make([][]float64, 4)
	for run := 0; run < 4; run++ {
		lv := d.Levels(run)
		base := 100 + 12*float64(lv[0]) + 3*float64(lv[1])
		for rep := 0; rep < d.R; rep++ {
			resp[run] = append(resp[run], base+st.Normal(0, 2))
		}
	}
	an, err := d.Analyze(resp, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	eI, _ := an.EffectByName("I")
	eA, _ := an.EffectByName("A")
	eB, _ := an.EffectByName("B")
	eAB, _ := an.EffectByName("AxB")
	almost(t, eI.Value, 100, 0.5, "I")
	almost(t, eA.Value, 12, 0.5, "A")
	almost(t, eB.Value, 3, 0.5, "B")
	almost(t, eAB.Value, 0, 0.5, "AB")
	if !eA.CI.Contains(12) {
		t.Fatalf("A CI %v misses 12", eA.CI)
	}
	if !eAB.CI.Contains(0) {
		t.Fatalf("AB CI %v should contain 0", eAB.CI)
	}
	if an.DominantFactor() != "A" {
		t.Fatalf("dominant factor = %s", an.DominantFactor())
	}
	if an.ErrorShare <= 0 || an.ErrorShare > 0.2 {
		t.Fatalf("error share %v out of expected band", an.ErrorShare)
	}
	// Shares plus error should sum to ~1.
	total := an.ErrorShare
	for _, e := range an.Effects {
		total += e.VariationShare
	}
	almost(t, total, 1, 1e-9, "variation decomposition")
}

func TestAnalyzeShapeErrors(t *testing.T) {
	d := design2(2)
	if _, err := d.Analyze([][]float64{{1, 2}}, 0.9); err == nil {
		t.Fatal("wrong row count accepted")
	}
	if _, err := d.Analyze([][]float64{{1}, {2}, {3}, {4}}, 0.9); err == nil {
		t.Fatal("wrong replication count accepted")
	}
	bad := &Design2kr{Factors: d.Factors, R: 0}
	if _, err := bad.Analyze(nil, 0.9); err == nil {
		t.Fatal("r=0 accepted")
	}
}

func TestThreeFactorNames(t *testing.T) {
	d := &Design2kr{Factors: []Factor{{Name: "A"}, {Name: "B"}, {Name: "C"}}, R: 1}
	resp := make([][]float64, 8)
	for i := range resp {
		resp[i] = []float64{float64(i)}
	}
	an, err := d.Analyze(resp, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"I": true, "A": true, "B": true, "C": true,
		"AxB": true, "AxC": true, "BxC": true, "AxBxC": true}
	if len(an.Effects) != 8 {
		t.Fatalf("got %d effects", len(an.Effects))
	}
	for _, e := range an.Effects {
		if !want[e.Name] {
			t.Fatalf("unexpected effect name %q", e.Name)
		}
	}
	// y = i means y = 3.5 + 0.5A + 1B + 2C exactly; check C dominant.
	if an.DominantFactor() != "C" {
		t.Fatalf("dominant = %s", an.DominantFactor())
	}
}

func TestEffectOrdering(t *testing.T) {
	d := design2(1)
	an, err := d.Analyze([][]float64{{1}, {2}, {3}, {4}}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if an.Effects[0].Name != "I" {
		t.Fatalf("first effect %q, want I", an.Effects[0].Name)
	}
	if an.Effects[3].Name != "AxB" {
		t.Fatalf("last effect %q, want AxB", an.Effects[3].Name)
	}
}

func TestCellMeansAndCIs(t *testing.T) {
	d := design2(3)
	resp := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}
	an, err := d.Analyze(resp, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	wantMeans := []float64{2, 5, 8, 11}
	for i, m := range wantMeans {
		almost(t, an.CellMeans[i], m, 1e-12, "cell mean")
		if !an.CellCIs[i].Contains(m) {
			t.Fatalf("cell CI %v misses mean %v", an.CellCIs[i], m)
		}
	}
}

func TestDominantFactorSkipsInteractions(t *testing.T) {
	// Construct responses where the interaction is the largest
	// effect; DominantFactor must still report a main effect.
	d := design2(1)
	// y = 10*AB pattern: (+, -, -, +).
	resp := [][]float64{{10}, {-10}, {-10}, {10}}
	an, err := d.Analyze(resp, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if df := an.DominantFactor(); df != "A" && df != "B" {
		t.Fatalf("dominant reported interaction: %s", df)
	}
}

func TestMathSqrtGuard(t *testing.T) {
	if mathSqrt(-1) != 0 {
		t.Fatal("mathSqrt(-1) should clamp to 0")
	}
	if math.Abs(mathSqrt(9)-3) > 1e-12 {
		t.Fatal("mathSqrt(9) != 3")
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"prism/internal/rng"
)

// Property-based invariants on the statistical substrate, via
// testing/quick.

func TestSummaryInvariantsProperty(t *testing.T) {
	st := rng.New(71)
	check := func(n uint8) bool {
		size := int(n%100) + 1
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = st.Normal(0, 100)
		}
		s := Summarize(xs)
		if s.N != size {
			return false
		}
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		if s.Variance < 0 {
			return false
		}
		// Shifting by a constant shifts the mean, keeps the variance.
		shifted := make([]float64, size)
		for i := range xs {
			shifted[i] = xs[i] + 1000
		}
		s2 := Summarize(shifted)
		return math.Abs(s2.Mean-(s.Mean+1000)) < 1e-6 &&
			math.Abs(s2.Variance-s.Variance) < 1e-4
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTQuantileMonotoneProperty(t *testing.T) {
	st := rng.New(72)
	check := func(dfRaw uint8) bool {
		df := int(dfRaw%60) + 1
		p1 := st.Uniform(0.01, 0.98)
		p2 := p1 + st.Uniform(0.001, 0.99-p1)
		return TQuantile(df, p1) < TQuantile(df, p2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCIWidthShrinksProperty(t *testing.T) {
	// More data -> narrower interval (same underlying distribution).
	st := rng.New(73)
	for trial := 0; trial < 20; trial++ {
		small := make([]float64, 10)
		large := make([]float64, 400)
		for i := range large {
			v := st.Normal(50, 5)
			if i < len(small) {
				small[i] = v
			}
			large[i] = v
		}
		ws := MeanCI(small, 0.90).HalfWidth()
		wl := MeanCI(large, 0.90).HalfWidth()
		if wl >= ws {
			t.Fatalf("trial %d: CI did not shrink (%v -> %v)", trial, ws, wl)
		}
	}
}

func TestFactorialEffectsRecoverAdditiveModelProperty(t *testing.T) {
	// For any additive response y = c + a*A + b*B (no noise), the
	// factorial analysis must recover the coefficients exactly and
	// attribute zero variation to the interaction.
	st := rng.New(74)
	check := func() bool {
		c := st.Uniform(-100, 100)
		a := st.Uniform(-50, 50)
		b := st.Uniform(-50, 50)
		d := &Design2kr{Factors: []Factor{{Name: "A"}, {Name: "B"}}, R: 1}
		resp := make([][]float64, 4)
		for run := 0; run < 4; run++ {
			lv := d.Levels(run)
			resp[run] = []float64{c + a*float64(lv[0]) + b*float64(lv[1])}
		}
		an, err := d.Analyze(resp, 0.9)
		if err != nil {
			return false
		}
		eI, _ := an.EffectByName("I")
		eA, _ := an.EffectByName("A")
		eB, _ := an.EffectByName("B")
		eAB, _ := an.EffectByName("AxB")
		return math.Abs(eI.Value-c) < 1e-9 && math.Abs(eA.Value-a) < 1e-9 &&
			math.Abs(eB.Value-b) < 1e-9 && math.Abs(eAB.Value) < 1e-9
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBetaMonotoneProperty(t *testing.T) {
	st := rng.New(75)
	check := func() bool {
		a := st.Uniform(0.5, 20)
		b := st.Uniform(0.5, 20)
		x1 := st.Uniform(0.01, 0.5)
		x2 := x1 + st.Uniform(0.01, 0.49)
		return RegIncBeta(a, b, x1) <= RegIncBeta(a, b, x2)+1e-12
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

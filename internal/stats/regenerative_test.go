package stats

import (
	"testing"

	"prism/internal/rng"
)

func TestRenewalRewardExact(t *testing.T) {
	// Deterministic cycles: reward 1 per length 4 -> rate 0.25.
	var cycles []Cycle
	for i := 0; i < 10; i++ {
		cycles = append(cycles, Cycle{Length: 4, Reward: 1})
	}
	iv, err := RenewalReward(cycles, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, iv.Mean, 0.25, 1e-12, "rate")
	almost(t, iv.HalfWidth(), 0, 1e-12, "deterministic half width")
}

func TestRenewalRewardStochastic(t *testing.T) {
	// Cycle length ~ Exp(rate 0.5) (mean 2), reward ~ 1 per cycle:
	// long-run rate = 1/2.
	st := rng.New(77)
	var cycles []Cycle
	for i := 0; i < 2000; i++ {
		cycles = append(cycles, Cycle{Length: st.Exp(0.5), Reward: 1})
	}
	iv, err := RenewalReward(cycles, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(0.5) && (iv.Mean < 0.45 || iv.Mean > 0.55) {
		t.Fatalf("renewal rate %v not near 0.5", iv)
	}
}

func TestRenewalRewardCoverage(t *testing.T) {
	// Empirical CI coverage of the ratio estimator.
	st := rng.New(78)
	const trials = 200
	covered := 0
	for tr := 0; tr < trials; tr++ {
		var cycles []Cycle
		for i := 0; i < 100; i++ {
			l := st.Exp(1)
			cycles = append(cycles, Cycle{Length: l + 1, Reward: l})
		}
		// E[reward]/E[length] = 1/(1+1) = 0.5.
		iv, err := RenewalReward(cycles, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if iv.Contains(0.5) {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.82 || frac > 0.97 {
		t.Fatalf("renewal-reward CI coverage %v", frac)
	}
}

func TestRenewalRewardErrors(t *testing.T) {
	if _, err := RenewalReward([]Cycle{{Length: 1, Reward: 1}}, 0.9); err == nil {
		t.Fatal("single cycle accepted")
	}
	if _, err := RenewalReward([]Cycle{{Length: 0}, {Length: 0}}, 0.9); err == nil {
		t.Fatal("zero total length accepted")
	}
}

func TestTimeAverage(t *testing.T) {
	// Value 0 on [0,1), 2 on [1,3), 1 on [3,4): average = (0+4+1)/4.
	times := []float64{0, 1, 3}
	values := []float64{0, 2, 1}
	avg, err := TimeAverage(times, values, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, avg, 1.25, 1e-12, "time average")
}

func TestTimeAverageInitialValueBeforeHorizon(t *testing.T) {
	// A change point before start establishes the initial value.
	times := []float64{-5, 2}
	values := []float64{3, 7}
	avg, err := TimeAverage(times, values, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 3 on [0,2), 7 on [2,4) -> 5.
	almost(t, avg, 5, 1e-12, "time average with prefix")
}

func TestTimeAverageErrors(t *testing.T) {
	if _, err := TimeAverage([]float64{1}, []float64{1, 2}, 0, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := TimeAverage(nil, nil, 3, 3); err == nil {
		t.Fatal("empty horizon accepted")
	}
	if _, err := TimeAverage([]float64{2, 1}, []float64{1, 1}, 0, 3); err == nil {
		t.Fatal("unsorted times accepted")
	}
}

func TestTimeAverageTailTruncation(t *testing.T) {
	// Change points after end are ignored.
	times := []float64{0, 10}
	values := []float64{4, 100}
	avg, err := TimeAverage(times, values, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, avg, 4, 1e-12, "tail truncation")
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(v)
	}
	if h.N() != 8 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bucket 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	almost(t, h.BucketMid(0), 1, 1e-12, "bucket mid")
	almost(t, h.Fraction(0), 2.0/5.0, 1e-12, "fraction")
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram accepted")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestSmithTheoremConsistency(t *testing.T) {
	// Smith's theorem check used by the PICL analysis: the long-run
	// fraction of time in the "flushing" state equals
	// E[flush]/E[cycle]. Simulate fill(Erlang) + flush(const) cycles.
	st := rng.New(80)
	const l = 20
	const alpha = 0.5
	const flush = 3.0
	var cycles []Cycle
	for i := 0; i < 3000; i++ {
		fill := st.Erlang(l, alpha)
		cycles = append(cycles, Cycle{Length: fill + flush, Reward: flush})
	}
	iv, err := RenewalReward(cycles, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	want := flush / (l/alpha + flush)
	if !iv.Contains(want) {
		almost(t, iv.Mean, want, 0.002, "flushing-state fraction")
	}
}

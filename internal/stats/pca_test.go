package stats

import (
	"math"
	"testing"

	"prism/internal/rng"
)

func TestJacobiEigenDiagonal(t *testing.T) {
	m := [][]float64{{3, 0}, {0, 1}}
	vals, vecs := JacobiEigen(m)
	// Eigenvalues 3 and 1 in some order.
	got := []float64{vals[0], vals[1]}
	if !(almostEq(got[0], 3) && almostEq(got[1], 1)) && !(almostEq(got[0], 1) && almostEq(got[1], 3)) {
		t.Fatalf("eigenvalues %v", vals)
	}
	// Eigenvectors of a diagonal matrix are axis-aligned.
	for j := 0; j < 2; j++ {
		n := math.Hypot(vecs[0][j], vecs[1][j])
		if math.Abs(n-1) > 1e-9 {
			t.Fatalf("eigenvector %d not unit: %v", j, n)
		}
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestJacobiEigenSymmetric(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := [][]float64{{2, 1}, {1, 2}}
	vals, vecs := JacobiEigen(m)
	hi, lo := math.Max(vals[0], vals[1]), math.Min(vals[0], vals[1])
	if !almostEq(hi, 3) || !almostEq(lo, 1) {
		t.Fatalf("eigenvalues %v", vals)
	}
	// Verify A v = lambda v for each column.
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			av := m[i][0]*vecs[0][j] + m[i][1]*vecs[1][j]
			if math.Abs(av-vals[j]*vecs[i][j]) > 1e-8 {
				t.Fatalf("A v != lambda v for column %d", j)
			}
		}
	}
}

func TestJacobiEigenTraceInvariant(t *testing.T) {
	m := [][]float64{
		{4, 1, 0.5},
		{1, 3, 0.2},
		{0.5, 0.2, 2},
	}
	vals, _ := JacobiEigen(m)
	sum := vals[0] + vals[1] + vals[2]
	almost(t, sum, 9, 1e-9, "trace")
}

func TestPCACorrelatedData(t *testing.T) {
	// x2 = 2*x1 + small noise: first PC should explain nearly all
	// variance with balanced loadings.
	st := rng.New(21)
	var data [][]float64
	for i := 0; i < 500; i++ {
		x := st.Normal(0, 1)
		data = append(data, []float64{x, 2*x + st.Normal(0, 0.01)})
	}
	res, err := PCA([]string{"x1", "x2"}, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.VarianceExplained[0] < 0.99 {
		t.Fatalf("first PC explains %v", res.VarianceExplained[0])
	}
	if math.Abs(math.Abs(res.Components[0][0])-math.Abs(res.Components[0][1])) > 0.02 {
		t.Fatalf("correlation-PCA loadings should be balanced: %v", res.Components[0])
	}
}

func TestPCADominantVariable(t *testing.T) {
	// y strongly driven by a, weakly by b -> on PC1, a and y load
	// heavily, b lightly; dominant among {a,b} must be a. Include
	// only the factor columns plus response as the paper does when
	// attributing influence.
	st := rng.New(22)
	var data [][]float64
	for i := 0; i < 800; i++ {
		a := st.Normal(0, 1)
		b := st.Normal(0, 1)
		y := 5*a + 0.3*b + st.Normal(0, 0.2)
		data = append(data, []float64{a, b, y})
	}
	res, err := PCA([]string{"a", "b", "latency"}, data)
	if err != nil {
		t.Fatal(err)
	}
	pc1 := res.Components[0]
	absA := math.Abs(pc1[0])
	absB := math.Abs(pc1[1])
	if absA <= absB {
		t.Fatalf("a should dominate b on PC1: |a|=%v |b|=%v", absA, absB)
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := PCA([]string{"x"}, [][]float64{{1}}); err == nil {
		t.Fatal("too few observations accepted")
	}
	if _, err := PCA(nil, [][]float64{{}, {}}); err == nil {
		t.Fatal("zero variables accepted")
	}
	if _, err := PCA([]string{"x"}, [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("row width mismatch accepted")
	}
	if _, err := PCA([]string{"x", "y"}, [][]float64{{1, 1}, {2, 1}, {3, 1}}); err == nil {
		t.Fatal("zero-variance column accepted")
	}
}

func TestPCAEigenvalueSum(t *testing.T) {
	st := rng.New(23)
	var data [][]float64
	for i := 0; i < 300; i++ {
		data = append(data, []float64{st.Float64(), st.Normal(3, 2), st.Exp(1)})
	}
	res, err := PCA([]string{"u", "n", "e"}, data)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.Eigenvalues {
		sum += v
	}
	almost(t, sum, 3, 1e-6, "eigenvalue sum (correlation PCA)")
	// Eigenvalues sorted decreasing.
	for i := 1; i < len(res.Eigenvalues); i++ {
		if res.Eigenvalues[i] > res.Eigenvalues[i-1]+1e-12 {
			t.Fatal("eigenvalues not sorted")
		}
	}
}

func TestLinearFit(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3.1, 5.0, 7.1, 8.9, 11.0}
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, a, 1.06, 0.15, "intercept")
	almost(t, b, 1.97, 0.1, "slope")
	if r2 < 0.99 {
		t.Fatalf("R² = %v", r2)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{5, 7, 9}
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, a, 5, 1e-10, "a")
	almost(t, b, 2, 1e-10, "b")
	almost(t, r2, 1, 1e-10, "r2")
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{2}); err == nil {
		t.Fatal("short input accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("constant x accepted")
	}
	if _, _, _, err := LinearFit([]float64{1, 2}, []float64{2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	a, b, r2, err := LinearFit([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	almost(t, a, 4, 1e-10, "a")
	almost(t, b, 0, 1e-10, "b")
	almost(t, r2, 1, 1e-10, "r2 for constant y")
}

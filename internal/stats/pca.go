package stats

import (
	"errors"
	"math"
	"sort"
)

// Principal component analysis. The paper (§3.3.2) analyzes the Vista
// ISM simulation results "using principal component analysis
// techniques [11] and found that the inter-arrival rate is the
// dominant factor that affects data processing latency and average
// buffer length". We implement PCA on the correlation matrix via a
// Jacobi eigenvalue sweep, which is exact enough for the handful of
// variables these experiments use.

// PCAResult describes the principal components of a data matrix.
type PCAResult struct {
	// Names are the column (variable) names.
	Names []string
	// Eigenvalues in decreasing order; their sum equals the number
	// of variables (correlation-matrix PCA).
	Eigenvalues []float64
	// Components[i] is the unit-length loading vector of the i-th
	// principal component (same order as Eigenvalues), with entries
	// aligned to Names.
	Components [][]float64
	// VarianceExplained[i] is Eigenvalues[i] / sum(Eigenvalues).
	VarianceExplained []float64
}

// DominantVariable returns the name of the variable with the largest
// absolute loading on the first principal component.
func (r *PCAResult) DominantVariable() string {
	if len(r.Components) == 0 {
		return ""
	}
	first := r.Components[0]
	best, bestAbs := "", -1.0
	for i, v := range first {
		if a := math.Abs(v); a > bestAbs {
			best, bestAbs = r.Names[i], a
		}
	}
	return best
}

// PCA performs correlation-matrix principal component analysis on
// data, a row-major matrix of observations (rows) by variables
// (columns). Columns with zero variance are rejected.
func PCA(names []string, data [][]float64) (*PCAResult, error) {
	if len(data) < 2 {
		return nil, errors.New("stats: PCA needs at least 2 observations")
	}
	p := len(names)
	if p == 0 {
		return nil, errors.New("stats: PCA needs at least 1 variable")
	}
	for _, row := range data {
		if len(row) != p {
			return nil, errors.New("stats: PCA row width mismatch")
		}
	}
	n := len(data)

	// Standardize columns.
	means := make([]float64, p)
	sds := make([]float64, p)
	for j := 0; j < p; j++ {
		col := make([]float64, n)
		for i := range data {
			col[i] = data[i][j]
		}
		s := Summarize(col)
		if s.Variance == 0 {
			return nil, errors.New("stats: PCA variable " + names[j] + " has zero variance")
		}
		means[j], sds[j] = s.Mean, s.StdDev()
	}

	// Correlation matrix.
	corr := make([][]float64, p)
	for j := range corr {
		corr[j] = make([]float64, p)
	}
	for a := 0; a < p; a++ {
		for b := a; b < p; b++ {
			sum := 0.0
			for i := 0; i < n; i++ {
				sum += (data[i][a] - means[a]) / sds[a] * (data[i][b] - means[b]) / sds[b]
			}
			c := sum / float64(n-1)
			corr[a][b], corr[b][a] = c, c
		}
	}

	vals, vecs := JacobiEigen(corr)

	// Sort by decreasing eigenvalue.
	idx := make([]int, p)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] > vals[idx[b]] })

	res := &PCAResult{Names: append([]string(nil), names...)}
	total := 0.0
	for _, v := range vals {
		total += v
	}
	for _, i := range idx {
		res.Eigenvalues = append(res.Eigenvalues, vals[i])
		comp := make([]float64, p)
		for j := 0; j < p; j++ {
			comp[j] = vecs[j][i]
		}
		res.Components = append(res.Components, comp)
		if total > 0 {
			res.VarianceExplained = append(res.VarianceExplained, vals[i]/total)
		} else {
			res.VarianceExplained = append(res.VarianceExplained, 0)
		}
	}
	return res, nil
}

// JacobiEigen computes the eigenvalues and eigenvectors of a real
// symmetric matrix using cyclic Jacobi rotations. It returns the
// eigenvalues and a matrix whose columns are the corresponding
// eigenvectors. The input is not modified.
func JacobiEigen(m [][]float64) (values []float64, vectors [][]float64) {
	p := len(m)
	a := make([][]float64, p)
	v := make([][]float64, p)
	for i := 0; i < p; i++ {
		a[i] = append([]float64(nil), m[i]...)
		v[i] = make([]float64, p)
		v[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				if math.Abs(a[i][j]) < 1e-18 {
					continue
				}
				// Rotation angle.
				theta := (a[j][j] - a[i][i]) / (2 * a[i][j])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation to a and v.
				for k := 0; k < p; k++ {
					aik, ajk := a[i][k], a[j][k]
					a[i][k] = c*aik - s*ajk
					a[j][k] = s*aik + c*ajk
				}
				for k := 0; k < p; k++ {
					aki, akj := a[k][i], a[k][j]
					a[k][i] = c*aki - s*akj
					a[k][j] = s*aki + c*akj
				}
				for k := 0; k < p; k++ {
					vki, vkj := v[k][i], v[k][j]
					v[k][i] = c*vki - s*vkj
					v[k][j] = s*vki + c*vkj
				}
			}
		}
	}
	values = make([]float64, p)
	for i := 0; i < p; i++ {
		values[i] = a[i][i]
	}
	return values, v
}

// LinearFit fits y = a + b·x by ordinary least squares, returning the
// intercept a, slope b and the coefficient of determination R².
// It is used for the linear flush-cost model f(l) of the PICL case
// study and for workload characterization.
func LinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, 0, errors.New("stats: LinearFit needs two equal-length samples of size >= 2")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, 0, errors.New("stats: LinearFit with constant x")
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot == 0 {
		return a, b, 1, nil
	}
	ssRes := 0.0
	for i := range xs {
		e := ys[i] - (a + b*xs[i])
		ssRes += e * e
	}
	r2 = 1 - ssRes/ssTot
	return a, b, r2, nil
}

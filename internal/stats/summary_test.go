package stats

import (
	"math"
	"testing"
	"testing/quick"

	"prism/internal/rng"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v ± %v", what, got, want, tol)
	}
}

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	almost(t, s.Mean, 5, 1e-12, "mean")
	almost(t, s.Variance, 32.0/7.0, 1e-12, "variance")
	if s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Fatalf("bad min/max/n: %+v", s)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Variance != 0 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestSummarizeMatchesNaive(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		size := int(n%64) + 2
		st := rng.New(seed)
		xs := make([]float64, size)
		var sum float64
		for i := range xs {
			xs[i] = st.Normal(5, 20)
			sum += xs[i]
		}
		mean := sum / float64(size)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(size-1)
		s := Summarize(xs)
		return math.Abs(s.Mean-mean) < 1e-9 && math.Abs(s.Variance-naiveVar) < 1e-6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTQuantileKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		df   int
		p    float64
		want float64
	}{
		{1, 0.95, 6.3138},
		{5, 0.95, 2.0150},
		{10, 0.975, 2.2281},
		{30, 0.95, 1.6973},
		{49, 0.95, 1.6766},
		{100, 0.975, 1.9840},
	}
	for _, c := range cases {
		got := TQuantile(c.df, c.p)
		almost(t, got, c.want, 0.002, "TQuantile")
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []int{2, 7, 29} {
		hi := TQuantile(df, 0.9)
		lo := TQuantile(df, 0.1)
		almost(t, hi+lo, 0, 1e-6, "t quantile symmetry")
	}
	if v := TQuantile(10, 0.5); v != 0 {
		t.Fatalf("median of t should be 0, got %v", v)
	}
}

func TestTCDFInvertsQuantile(t *testing.T) {
	for _, df := range []int{3, 12, 60} {
		for _, p := range []float64{0.05, 0.3, 0.7, 0.99} {
			x := TQuantile(df, p)
			almost(t, TCDF(df, x), p, 1e-6, "TCDF(TQuantile)")
		}
	}
}

func TestNormalCDF(t *testing.T) {
	almost(t, NormalCDF(0), 0.5, 1e-12, "Phi(0)")
	almost(t, NormalCDF(1.6449), 0.95, 1e-4, "Phi(1.645)")
	almost(t, NormalCDF(-1.96), 0.025, 1e-4, "Phi(-1.96)")
}

func TestRegIncBetaEdges(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("RegIncBeta edge values wrong")
	}
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		almost(t, RegIncBeta(1, 1, x), x, 1e-10, "I_x(1,1)")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	almost(t, RegIncBeta(2.5, 4, 0.3), 1-RegIncBeta(4, 2.5, 0.7), 1e-10, "beta symmetry")
}

func TestMeanCICoverage(t *testing.T) {
	// With 90% CIs over repeated normal samples, roughly 90% of
	// intervals should contain the true mean.
	st := rng.New(99)
	const trials = 400
	const trueMean = 7.0
	covered := 0
	for i := 0; i < trials; i++ {
		xs := make([]float64, 20)
		for j := range xs {
			xs[j] = st.Normal(trueMean, 2)
		}
		if MeanCI(xs, 0.90).Contains(trueMean) {
			covered++
		}
	}
	frac := float64(covered) / trials
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("90%% CI empirical coverage %v", frac)
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	iv := MeanCI([]float64{5}, 0.9)
	if iv.Lo != 5 || iv.Hi != 5 || iv.Mean != 5 {
		t.Fatalf("single-sample CI should be degenerate: %+v", iv)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Mean: 10, Lo: 8, Hi: 12, Confidence: 0.9}
	if !iv.Contains(9) || iv.Contains(13) {
		t.Fatal("Contains wrong")
	}
	almost(t, iv.HalfWidth(), 2, 1e-12, "half width")
	if iv.String() == "" {
		t.Fatal("empty interval string")
	}
}

func TestQuantileAndMedian(t *testing.T) {
	xs := []float64{9, 1, 3, 7, 5}
	m, err := Median(xs)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, m, 5, 1e-12, "median")
	q, err := Quantile(xs, 0)
	if err != nil || q != 1 {
		t.Fatalf("q0 = %v err %v", q, err)
	}
	q, err = Quantile(xs, 1)
	if err != nil || q != 9 {
		t.Fatalf("q1 = %v err %v", q, err)
	}
	q, err = Quantile(xs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, q, 3, 1e-12, "q25")
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("quantile of empty should error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Fatal("quantile out of range should error")
	}
}

func TestSummaryDerived(t *testing.T) {
	s := Summarize([]float64{4, 4, 4, 4})
	if s.StdDev() != 0 || s.StdErr() != 0 || s.CV() != 0 {
		t.Fatalf("constant-sample derived stats should be 0: %+v", s)
	}
	var empty Summary
	if empty.StdErr() != 0 {
		t.Fatal("empty StdErr should be 0")
	}
	s2 := Summarize([]float64{1, 3})
	almost(t, s2.CV(), math.Sqrt(2)/2, 1e-12, "CV")
}

// Package stats implements the statistical machinery the paper's
// evaluation methodology relies on (Jain, "The Art of Computer Systems
// Performance Analysis", which the paper cites as [11]):
//
//   - sample summaries and Student-t confidence intervals, used to
//     report metric means "within 90% confidence intervals" (§3.2.2,
//     §3.3.2);
//   - 2^k·r factorial experiment designs with effect estimation and
//     allocation of variation (§3.2.2, §3.3.2);
//   - principal component analysis, used in §3.3.2 to identify the
//     inter-arrival rate as the dominant factor;
//   - regenerative-process analysis (Smith's theorem), used in §3.1.3
//     to derive long-run flushing frequencies;
//   - histograms and simple linear regression for workload
//     characterization (§5, on-going work item 3).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Summary holds moment statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // unbiased (n-1) sample variance
	Min, Max float64
}

// Summarize computes a Summary of xs using a numerically stable
// single-pass (Welford) algorithm. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	if len(xs) == 0 {
		return s
	}
	s.N = len(xs)
	s.Min, s.Max = xs[0], xs[0]
	mean, m2 := 0.0, 0.0
	for i, x := range xs {
		d := x - mean
		mean += d / float64(i+1)
		m2 += d * (x - mean)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = mean
	if s.N > 1 {
		s.Variance = m2 / float64(s.N-1)
	}
	return s
}

// StdDev returns the sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance) }

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.N == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.N))
}

// CV returns the coefficient of variation (stddev/mean), or 0 for a
// zero mean.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev() / math.Abs(s.Mean)
}

// Interval is a two-sided confidence interval for a mean.
type Interval struct {
	Mean       float64
	Lo, Hi     float64
	Confidence float64 // e.g. 0.90
}

// Contains reports whether v lies within the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// HalfWidth returns the half-width of the interval.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// String renders the interval in the "m ± h (c%)" form used by the
// experiment reports.
func (iv Interval) String() string {
	return fmt.Sprintf("%.4g ± %.3g (%.0f%%)", iv.Mean, iv.HalfWidth(), iv.Confidence*100)
}

// MeanCI returns the Student-t confidence interval for the mean of xs
// at the given confidence level (e.g. 0.90 for the paper's 90%
// intervals). Samples of size < 2 yield a degenerate interval.
func MeanCI(xs []float64, confidence float64) Interval {
	s := Summarize(xs)
	iv := Interval{Mean: s.Mean, Lo: s.Mean, Hi: s.Mean, Confidence: confidence}
	if s.N < 2 {
		return iv
	}
	h := TQuantile(s.N-1, 1-(1-confidence)/2) * s.StdErr()
	iv.Lo, iv.Hi = s.Mean-h, s.Mean+h
	return iv
}

// TQuantile returns the quantile function (inverse CDF) of Student's t
// distribution with df degrees of freedom at probability p in (0, 1).
// It inverts the regularized incomplete beta function by bisection on
// the CDF, which is plenty accurate for confidence-interval use.
func TQuantile(df int, p float64) float64 {
	if df <= 0 {
		panic("stats: TQuantile with non-positive df")
	}
	if p <= 0 || p >= 1 {
		panic("stats: TQuantile probability out of (0,1)")
	}
	if p == 0.5 {
		return 0
	}
	// The CDF is monotone; bracket then bisect.
	lo, hi := -1e3, 1e3
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(df, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// TCDF returns the CDF of Student's t distribution with df degrees of
// freedom evaluated at x, via the regularized incomplete beta function.
func TCDF(df int, x float64) float64 {
	if x == 0 {
		return 0.5
	}
	v := float64(df)
	ib := RegIncBeta(v/2, 0.5, v/(v+x*x))
	if x > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// NormalCDF returns the standard normal CDF at x.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b), computed with the standard continued-fraction expansion
// (Lentz's algorithm).
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	// Use the symmetry relation for faster convergence.
	if x > (a+1)/(a+b+2) {
		return 1 - RegIncBeta(b, a, 1-x)
	}
	const eps = 1e-14
	const tiny = 1e-300
	c := 1.0
	d := 1 - (a+b)*x/(a+1)
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	result := d
	for m := 1; m <= 500; m++ {
		fm := float64(m)
		// Even step.
		num := fm * (b - fm) * x / ((a + 2*fm - 1) * (a + 2*fm))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		result *= d * c
		// Odd step.
		num = -(a + fm) * (a + b + fm) * x / ((a + 2*fm) * (a + 2*fm + 1))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		delta := d * c
		result *= delta
		if math.Abs(delta-1) < eps {
			break
		}
	}
	return front * result
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It sorts a copy.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1], nil
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac, nil
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

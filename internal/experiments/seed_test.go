package experiments

import (
	"fmt"
	"testing"
)

// seedKeys enumerates every experiment key the suite derives seeds
// under (the first argument of each o.seedFor call). New stochastic
// experiments must be added here so the collision audit covers them.
var seedKeys = []string{
	"table3", "fig5a", "fig5b", "fig5c", "valid-picl",
	"paradyn-base", "fig9left", "fig9right", "factorial-paradyn",
	"adaptive-paradyn", "paradyn/adaptive", "abl-quantum",
	"ext-latency", "ext-ism", "ext-avail",
	"vista-base", "fig11", "factorial-vista", "valid-vista", "abl-disorder",
}

// TestSuiteSeedsCollisionFree asserts that no two (experiment, run,
// rep) triples in the full suite map to the same seed — the hazard the
// old run*1000+rep arithmetic had, where different experiments' seed
// blocks could overlap and replay identical stochastic paths. The
// index ranges cover full fidelity (r=50) with generous headroom on
// the run dimension (the widest experiment uses 18 runs).
func TestSuiteSeedsCollisionFree(t *testing.T) {
	o := Options{}
	const (
		maxRuns = 64
		maxReps = 50
	)
	seen := make(map[uint64]string, len(seedKeys)*maxRuns*maxReps)
	for _, key := range seedKeys {
		for run := 0; run < maxRuns; run++ {
			for rep := 0; rep < maxReps; rep++ {
				s := o.seedFor(key, run, rep)
				triple := fmt.Sprintf("%s/run%d/rep%d", key, run, rep)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s both derive %d", prev, triple, s)
				}
				seen[s] = triple
			}
		}
	}
}

// TestSeedOffsetPermeatesDerivation asserts the Options.Seed offset
// reaches every derived seed (the -seed flag must perturb the whole
// suite, not an additive prefix of it).
func TestSeedOffsetPermeatesDerivation(t *testing.T) {
	a := Options{Seed: 0}
	b := Options{Seed: 1}
	for _, key := range seedKeys {
		if a.seedFor(key, 3, 4) == b.seedFor(key, 3, 4) {
			t.Fatalf("seed offset ignored for %s", key)
		}
	}
}

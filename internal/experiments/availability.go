package experiments

// ext-avail: the availability experiment of the fault-injection
// subsystem. The paper's method asks for IS evaluation under explicit
// metrics (§2.1); this extension measures the delivery metrics of the
// resilient transfer protocol — delivered / duplicated / lost records
// and connection re-establishments — as the injected fault rate grows,
// for the two management policies the runtime offers: session replay
// over a blocking transport (exactly-once accounting) and a bare
// reconnecting transport (counted loss). Each cell is the mean of r
// deterministic lockstep chaos runs (fault.Simulate), so the artifact
// replicates bit-for-bit at any parallelism.

import (
	"fmt"

	"prism/internal/core"
	"prism/internal/isruntime/fault"
	"prism/internal/stats"
)

// availBasePlan is the fault mix at rate 1.0, scaled down by the sweep
// knob: mostly disconnects and silent drops, a tail of frame
// corruption/truncation, plus latency spikes that perturb timing but
// not delivery.
func availBasePlan() fault.Plan {
	return fault.Plan{
		PDrop: 0.3, PDisconnect: 0.3, PCorrupt: 0.15, PTruncate: 0.05,
		PDelay: 0.2,
	}
}

// extAvail sweeps the fault rate for both delivery policies and
// tabulates the availability metrics.
func extAvail(o Options) (*core.Artifact, error) {
	rates := []float64{0, 0.002, 0.005, 0.01, 0.02, 0.05}
	policies := []struct {
		name   string
		replay bool
	}{
		{"block+replay", true},
		{"no-replay", false},
	}
	reps := o.reps()
	batches := 400
	if o.Quick {
		batches = 120
	}

	type cellStats struct {
		delivered, lost, dups, redials, faults []float64
	}
	cells := make([]cellStats, len(rates)*len(policies))
	for i := range cells {
		cells[i] = cellStats{
			delivered: make([]float64, reps), lost: make([]float64, reps),
			dups: make([]float64, reps), redials: make([]float64, reps),
			faults: make([]float64, reps),
		}
	}

	err := core.Replicate(len(cells)*reps, o.parallelism(), func(task int) error {
		cell := task / reps
		rep := task % reps
		ri := cell / len(policies)
		pi := cell % len(policies)
		res, err := fault.Simulate(fault.SimConfig{
			Seed:         o.seedFor("ext-avail", cell, rep),
			Nodes:        4,
			Batches:      batches,
			BatchRecords: 8,
			Plan:         availBasePlan().Scale(rates[ri]),
			Window:       64,
			Replay:       policies[pi].replay,
		})
		if err != nil {
			return err
		}
		captured := float64(res.Captured)
		cs := &cells[cell]
		cs.delivered[rep] = 100 * float64(res.Delivered) / captured
		cs.lost[rep] = 100 * float64(res.Lost) / captured
		cs.dups[rep] = float64(res.DupBatches)
		cs.redials[rep] = float64(res.Redials)
		cs.faults[rep] = float64(res.Faults)
		return nil
	})
	if err != nil {
		return nil, err
	}

	mean := func(xs []float64) float64 { return stats.MeanCI(xs, 0.90).Mean }
	rows := make([][]string, 0, len(cells))
	for ri, rate := range rates {
		for pi, pol := range policies {
			cs := &cells[ri*len(policies)+pi]
			rows = append(rows, []string{
				fmt.Sprintf("%.3f", rate),
				pol.name,
				fmt.Sprintf("%.3f", mean(cs.delivered)),
				fmt.Sprintf("%.1f", mean(cs.dups)),
				fmt.Sprintf("%.3f", mean(cs.lost)),
				fmt.Sprintf("%.1f", mean(cs.redials)),
				fmt.Sprintf("%.1f", mean(cs.faults)),
			})
		}
	}
	return &core.Artifact{
		ID:    "ext-avail",
		Title: "Extension: IS availability under injected faults (4 nodes, mean of r chaos runs)",
		Kind:  core.Table,
		Headers: []string{
			"Fault rate", "Policy", "Delivered (%)", "Dup batches (wire)",
			"Lost (%)", "Redials", "Faults injected",
		},
		Rows: rows,
		Notes: []string{
			"block+replay: sequenced session with reconnect replay over a blocking transport — delivered stays 100% (exactly-once accounting) at every fault rate; wire duplicates are absorbed by the ISM session table.",
			"no-replay: bare reconnecting transport — loss grows with the fault rate but every lost record is counted, never silent.",
			"Faults follow a seeded per-operation schedule (fault.Plan scaled by the rate); identical seeds replay identical injection traces.",
		},
	}, nil
}

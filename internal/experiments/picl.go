package experiments

import (
	"fmt"

	"prism/internal/core"
	"prism/internal/picl"
)

// piclParams is the reference configuration of the §3.1 case study:
// P = 16 processors (a small nCUBE partition), default flush cost.
func piclParams(l int, alpha float64) picl.Params {
	return picl.Params{L: l, Alpha: alpha, P: 16, Cost: picl.DefaultFlushCost()}
}

func piclSpecTable() *core.Artifact {
	return core.SpecTable("table1",
		"Table 1: Specifications characterizing the PICL instrumentation system",
		core.ISSpec{
			Name:     "PICL",
			Analysis: core.OffLine,
			Platform: "Multicomputer system (e.g., nCUBE); here: simulated distributed-memory machine",
			LIS:      "Instrumentation library with trace data buffers at each node",
			ISM:      "Instrumentation library merging distributed buffers as a trace file",
			TP:       "Parallel I/O",
			ManagementPolicy: "Static management policy implemented by the programmer " +
				"(FOF or FAOF buffer flushing)",
		})
}

func piclMetricTable() *core.Artifact {
	return core.MetricTable("table2",
		"Table 2: Metrics for evaluating the PICL IS management policies",
		[]core.MetricSpec{
			{
				Name:           "Trace stopping time",
				Calculation:    "Stochastic analysis of arrivals to local buffers (Erlang first-passage times)",
				Interpretation: "A higher value is desirable",
			},
			{
				Name:           "Flushing frequency",
				Calculation:    "Regenerative nature of buffer filling stochastic process (Smith's theorem)",
				Interpretation: "A higher value indicates greater overhead to the user program",
			},
		})
}

// table3 regenerates the Table 3 policy summary for a reference
// configuration, showing the closed forms alongside simulated values.
func table3(o Options) (*core.Artifact, error) {
	p := piclParams(50, 0.007)
	horizon := o.horizon(40_000_000)
	var fof, faof picl.SimResult
	err := core.Replicate(2, o.parallelism(), func(i int) error {
		var err error
		if i == 0 {
			fof, err = picl.SimulateFOF(p, horizon, o.seedFor("table3", 0, 0))
		} else {
			faof, err = picl.SimulateFAOF(p, horizon/4, o.seedFor("table3", 1, 0))
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	f := func(v float64) string { return fmt.Sprintf("%.5g", v) }
	a := &core.Artifact{
		ID:    "table3",
		Title: "Table 3: Summary of management policies (l=50, alpha=0.007/ms, P=16, f(l)=180+1.5l ms)",
		Kind:  core.Table,
		Headers: []string{
			"Performance metric", "FOF policy (analytic)", "FOF (simulated)",
			"FAOF policy (analytic)", "FAOF (simulated)",
		},
		Rows: [][]string{
			{
				"Stopping-time distribution",
				"P[tau<=t] = Erlang(l, alpha) CDF",
				"—",
				"P[tau>t] = (P[Erlang>t])^P",
				"—",
			},
			{
				"Expected trace stopping time (ms)",
				f(p.FOFStoppingTimeMean()),
				fof.StoppingTime.String(),
				f(p.FAOFStoppingTimeMean()) + " (bound >= " + f(p.FAOFStoppingTimeLowerBound()) + ")",
				faof.StoppingTime.String(),
			},
			{
				"Long-term flushing frequency (per arrival)",
				f(p.FOFFrequency()),
				fof.FrequencyCI.String(),
				f(p.FAOFFrequency()) + " (bound <= " + f(p.FAOFFrequencyUpperBound()) + ")",
				faof.FrequencyCI.String(),
			},
		},
		Notes: []string{
			"FOF: tau_l(i) ~ Erlang(l, alpha), E = l/alpha; omega_o = 1/(l + alpha f(l)).",
			"FAOF: tau_l = min of P iid Erlang(l, alpha), E >= l/(P alpha); omega_a = 1/(P alpha (E[tau]+f(l))) <= 1/(l + P alpha f(l)).",
			"Simulated columns carry 90% confidence intervals (regenerative estimator).",
		},
	}
	return a, nil
}

// fig5Panel regenerates one panel of Figure 5: FOF and FAOF flushing
// frequency against buffer capacity at a fixed arrival rate, analytic
// curves plus simulated points.
func fig5Panel(o Options, id string, alpha float64) (*core.Artifact, error) {
	capacities := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	n := len(capacities)
	var (
		xs                           = make([]float64, n)
		fofAn, faofAn, faofBound     = make([]float64, n), make([]float64, n), make([]float64, n)
		fofSim, faofSim              = make([]float64, n), make([]float64, n)
		fofLo, fofHi, faofLo, faofHi = make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
	)
	// Two simulations per capacity (FOF and FAOF), each its own
	// replication slot; the analytic curves ride along in slot 0.
	// Simulation horizon: long enough for >=100 cycles at the largest
	// capacity and smallest rate.
	err := core.Replicate(2*n, o.parallelism(), func(task int) error {
		li, which := task/2, task%2
		l := capacities[li]
		p := piclParams(l, alpha)
		if which == 0 {
			xs[li] = float64(l)
			fofAn[li] = p.FOFFrequency()
			faofAn[li] = p.FAOFFrequency()
			faofBound[li] = p.FAOFFrequencyUpperBound()
			cycle := p.FOFStoppingTimeMean() + p.Cost.Of(l)
			fof, err := picl.SimulateFOF(p, o.horizon(cycle*1000), o.seedFor(id, li, 0))
			if err != nil {
				return err
			}
			fofSim[li] = fof.Frequency
			fofLo[li] = fof.FrequencyCI.Lo
			fofHi[li] = fof.FrequencyCI.Hi
			return nil
		}
		gangCycle := p.FAOFStoppingTimeMean() + p.Cost.Of(l)
		faof, err := picl.SimulateFAOF(p, o.horizon(gangCycle*1000), o.seedFor(id, li, 1))
		if err != nil {
			return err
		}
		faofSim[li] = faof.Frequency
		faofLo[li] = faof.FrequencyCI.Lo
		faofHi[li] = faof.FrequencyCI.Hi
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &core.Artifact{
		ID:     id,
		Title:  fmt.Sprintf("Figure 5: FOF vs FAOF flushing frequency, alpha=%g/ms, P=16", alpha),
		Kind:   core.Figure,
		XLabel: "Buffer capacity l (records)",
		YLabel: "Flushing frequency (flushes per arrival)",
		Series: []core.Series{
			{Name: "FOF analytic", X: xs, Y: fofAn},
			{Name: "FAOF analytic", X: xs, Y: faofAn},
			{Name: "FOF simulated", X: xs, Y: fofSim, YLo: fofLo, YHi: fofHi},
			{Name: "FAOF simulated", X: xs, Y: faofSim, YLo: faofLo, YHi: faofHi},
			{Name: "FAOF paper bound", X: xs, Y: faofBound},
		},
		Notes: []string{
			"Shape to match the paper: frequency falls with l, FAOF below FOF, gap widens with alpha.",
		},
	}, nil
}

// validPICL regenerates the §3.1.3 validation: analytic, simulated and
// live-runtime frequencies side by side (live runtime has f(l)=0).
func validPICL(o Options) (*core.Artifact, error) {
	type cfg struct {
		l     int
		alpha float64
	}
	cases := []cfg{{25, 0.1}, {50, 0.02}, {80, 0.5}}
	a := &core.Artifact{
		ID:    "valid-picl",
		Title: "PICL validation: analytic vs simulated vs measured (live Go LIS, f(l)=0)",
		Kind:  core.Table,
		Headers: []string{
			"l", "alpha", "policy", "analytic freq", "simulated freq", "measured freq (live)",
		},
	}
	events := 200_000
	if o.Quick {
		events = 40_000
	}
	// Four independent measurements per case: simulated and live-
	// measured, FOF and FAOF. Each writes a distinct field of its
	// case's slot, so all 4*len(cases) tasks run concurrently.
	results := make([]struct {
		simFOF, simFAOF   picl.SimResult
		measFOF, measFAOF picl.MeasureResult
	}, len(cases))
	err := core.Replicate(4*len(cases), o.parallelism(), func(task int) error {
		i, op := task/4, task%4
		c := cases[i]
		zero := picl.Params{L: c.l, Alpha: c.alpha, P: 8, Cost: picl.FlushCost{}}
		horizon := o.horizon(zero.FOFStoppingTimeMean() * 2000)
		var err error
		switch op {
		case 0:
			results[i].simFOF, err = picl.SimulateFOF(zero, horizon, o.seedFor("valid-picl", i, 0))
		case 1:
			results[i].measFOF, err = picl.MeasureFOF(zero, events, o.seedFor("valid-picl", i, 1))
		case 2:
			results[i].simFAOF, err = picl.SimulateFAOF(zero, horizon/4, o.seedFor("valid-picl", i, 2))
		case 3:
			results[i].measFAOF, err = picl.MeasureFAOF(zero, events, o.seedFor("valid-picl", i, 3))
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cases {
		zero := picl.Params{L: c.l, Alpha: c.alpha, P: 8, Cost: picl.FlushCost{}}
		a.Rows = append(a.Rows, []string{
			fmt.Sprint(c.l), fmt.Sprint(c.alpha), "FOF",
			fmt.Sprintf("%.5g", zero.FOFFrequency()),
			fmt.Sprintf("%.5g", results[i].simFOF.Frequency),
			fmt.Sprintf("%.5g", results[i].measFOF.Frequency),
		})
		a.Rows = append(a.Rows, []string{
			fmt.Sprint(c.l), fmt.Sprint(c.alpha), "FAOF",
			fmt.Sprintf("%.5g", zero.FAOFFrequency()),
			fmt.Sprintf("%.5g", results[i].simFAOF.Frequency),
			fmt.Sprintf("%.5g", results[i].measFAOF.Frequency),
		})
	}
	a.Notes = append(a.Notes,
		"Live measurement drives the concurrent Go LIS runtime (isruntime/lis) and counts real flushes; with zero flush cost FOF expects exactly 1/l.")
	return a, nil
}

// stoppingDist regenerates the "Distribution" row of Table 3 as a
// figure: the FOF stopping-time CDF (Erlang) and the FAOF stopping-
// time CDF (1 minus the min-of-Erlangs survival) over time, at the
// Table 3 reference configuration.
func stoppingDist(o Options) (*core.Artifact, error) {
	p := piclParams(50, 0.007)
	upper := p.FOFStoppingTimeMean() * 2
	const points = 60
	var xs, fof, faof []float64
	for i := 0; i <= points; i++ {
		t := upper * float64(i) / points
		xs = append(xs, t)
		fof = append(fof, p.FOFStoppingTimeCDF(t))
		faof = append(faof, 1-p.FAOFStoppingTimeSurvival(t))
	}
	return &core.Artifact{
		ID:     "dist-stopping",
		Title:  "Table 3 distributions: trace stopping time CDFs, FOF vs FAOF (l=50, alpha=0.007, P=16)",
		Kind:   core.Figure,
		XLabel: "Time t (ms)",
		YLabel: "P[stopping time <= t]",
		Series: []core.Series{
			{Name: "FOF: Erlang(l, alpha)", X: xs, Y: fof},
			{Name: "FAOF: min of P Erlangs", X: xs, Y: faof},
		},
		Notes: []string{
			"FAOF stochastically dominates: its CDF rises earlier because the first of P buffers fills before any given one.",
		},
	}, nil
}

// ablFlushCost sweeps the flush-cost parameters, the design-choice
// ablation for the f(l) calibration.
func ablFlushCost(o Options) (*core.Artifact, error) {
	a := &core.Artifact{
		ID:      "abl-flushcost",
		Title:   "Ablation: flushing frequency sensitivity to f(l) = c0 + c1*l (l=50, alpha=0.007, P=16)",
		Kind:    core.Table,
		Headers: []string{"c0 (ms)", "c1 (ms/record)", "FOF freq", "FAOF freq", "FOF/FAOF ratio"},
	}
	for _, c0 := range []float64{0, 90, 180, 360} {
		for _, c1 := range []float64{0, 1.5, 3} {
			p := picl.Params{L: 50, Alpha: 0.007, P: 16, Cost: picl.FlushCost{C0: c0, C1: c1}}
			fof := p.FOFFrequency()
			faof := p.FAOFFrequency()
			a.Rows = append(a.Rows, []string{
				fmt.Sprint(c0), fmt.Sprint(c1),
				fmt.Sprintf("%.5g", fof), fmt.Sprintf("%.5g", faof),
				fmt.Sprintf("%.3f", fof/faof),
			})
		}
	}
	a.Notes = append(a.Notes,
		"FAOF's advantage grows with flush cost; at f(l)=0 the policies differ only through the min-fill stopping time.")
	return a, nil
}

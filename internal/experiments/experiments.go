// Package experiments assembles every table and figure of the paper's
// evaluation into a runnable suite keyed by experiment id (see the
// per-experiment index in DESIGN.md). Each experiment regenerates one
// artifact; cmd/isrepro renders them, the root-level tests assert
// their qualitative shapes, and bench_test.go times them.
package experiments

import (
	"fmt"
	"runtime"

	"prism/internal/core"
	"prism/internal/paradyn"
)

// Options tunes experiment fidelity.
type Options struct {
	// Quick shrinks horizons and replication counts so the whole
	// suite runs in seconds; full fidelity uses the paper's r=50
	// replications and long horizons.
	Quick bool
	// Seed offsets all experiment seeds for sensitivity checks.
	Seed uint64
	// Parallelism bounds how many replications of one experiment may
	// run concurrently (and how many experiments Suite.RunAll runs at
	// once). 0 means runtime.GOMAXPROCS(0); 1 forces serial
	// execution. Artifacts are byte-identical at every setting: each
	// replication's seed is a pure function of its identity
	// (core.SeedFor), and results are collected by replication index,
	// so completion order never leaks into the output.
	Parallelism int
}

// reps returns the replication count: the paper's 50, or a quick 5.
func (o Options) reps() int {
	if o.Quick {
		return 5
	}
	return 50
}

// horizon scales a full-fidelity horizon down in quick mode.
func (o Options) horizon(full float64) float64 {
	if o.Quick {
		return full / 10
	}
	return full
}

// parallelism resolves the effective worker bound.
func (o Options) parallelism() int {
	if o.Parallelism != 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// seedFor derives the seed for replication rep of run (sweep point,
// design cell, case index, ...) of the named experiment. All
// randomness in the suite flows through this single derivation; see
// core.SeedFor for the collision and determinism guarantees.
func (o Options) seedFor(experiment string, run, rep int) uint64 {
	return core.SeedFor(o.Seed, experiment, run, rep)
}

// replication bundles the replication-engine parameters handed to the
// paradyn sweeps and factorial designs for the named experiment.
func (o Options) replication(experiment string) paradyn.Replication {
	return paradyn.Replication{
		Reps:        o.reps(),
		Parallelism: o.parallelism(),
		SeedFor: func(run, rep int) uint64 {
			return o.seedFor(experiment, run, rep)
		},
	}
}

// Suite builds the full experiment registry.
func Suite(o Options) *core.Suite {
	s := core.NewSuite()
	register := func(id, title string, run func() (*core.Artifact, error)) {
		if err := s.Register(core.Experiment{ID: id, Title: title, Run: run}); err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
	}

	// PICL case study (§3.1).
	register("table1", "Table 1: PICL IS specification", func() (*core.Artifact, error) {
		return piclSpecTable(), nil
	})
	register("table2", "Table 2: PICL metrics", func() (*core.Artifact, error) {
		return piclMetricTable(), nil
	})
	register("table3", "Table 3: FOF/FAOF management policy summary", func() (*core.Artifact, error) {
		return table3(o)
	})
	register("fig5a", "Figure 5(a): flushing frequency, alpha=0.0008", func() (*core.Artifact, error) {
		return fig5Panel(o, "fig5a", 0.0008)
	})
	register("fig5b", "Figure 5(b): flushing frequency, alpha=0.007", func() (*core.Artifact, error) {
		return fig5Panel(o, "fig5b", 0.007)
	})
	register("fig5c", "Figure 5(c): flushing frequency, alpha=2", func() (*core.Artifact, error) {
		return fig5Panel(o, "fig5c", 2)
	})
	register("valid-picl", "PICL validation: analytic vs simulated vs measured", func() (*core.Artifact, error) {
		return validPICL(o)
	})
	register("abl-flushcost", "Ablation: PICL flush-cost model f(l)", func() (*core.Artifact, error) {
		return ablFlushCost(o)
	})
	register("dist-stopping", "Table 3 distributions: stopping-time CDFs", func() (*core.Artifact, error) {
		return stoppingDist(o)
	})

	// Paradyn case study (§3.2).
	register("table4", "Table 4: Paradyn IS specification", func() (*core.Artifact, error) {
		return paradynSpecTable(), nil
	})
	register("table5", "Table 5: Paradyn metrics", func() (*core.Artifact, error) {
		return paradynMetricTable(), nil
	})
	register("fig9left", "Figure 9 (left): Pd interference vs sampling period", func() (*core.Artifact, error) {
		return fig9Left(o)
	})
	register("fig9right", "Figure 9 (right): daemon CPU utilization vs #processes", func() (*core.Artifact, error) {
		return fig9Right(o)
	})
	register("factorial-paradyn", "Paradyn 2^k*r factorial analysis", func() (*core.Artifact, error) {
		return factorialParadyn(o)
	})
	register("adaptive-paradyn", "Extension: Paradyn adaptive cost model", func() (*core.Artifact, error) {
		return adaptiveParadyn(o)
	})
	register("abl-quantum", "Ablation: ROCC round-robin quantum", func() (*core.Artifact, error) {
		return ablQuantum(o)
	})
	register("ext-latency", "Extension: monitoring latency with multiple daemons", func() (*core.Artifact, error) {
		return extLatency(o)
	})
	register("ext-ism", "Figure 7 end-to-end: central ISM stage", func() (*core.Artifact, error) {
		return extISM(o)
	})
	register("ext-avail", "Extension: availability under injected faults", func() (*core.Artifact, error) {
		return extAvail(o)
	})

	// Vista case study (§3.3).
	register("table6", "Table 6: Vista IS specification", func() (*core.Artifact, error) {
		return vistaSpecTable(), nil
	})
	register("table7", "Table 7: Vista metrics", func() (*core.Artifact, error) {
		return vistaMetricTable(), nil
	})
	register("fig11latency", "Figure 11 (left): data processing latency", func() (*core.Artifact, error) {
		return fig11(o, true)
	})
	register("fig11buffer", "Figure 11 (right): average input buffer length", func() (*core.Artifact, error) {
		return fig11(o, false)
	})
	register("factorial-vista", "Vista 2^k*r factorial + PCA analysis", func() (*core.Artifact, error) {
		return factorialVista(o)
	})
	register("valid-vista", "Vista design decision: SISO vs MISO", func() (*core.Artifact, error) {
		return validVista(o)
	})
	register("abl-disorder", "Ablation: Vista network-skew sensitivity", func() (*core.Artifact, error) {
		return ablDisorder(o)
	})

	// Classification (§2.4, §4).
	register("table8", "Table 8: IS features of representative tools", func() (*core.Artifact, error) {
		return core.Table8(), nil
	})

	// Architecture figures (1-4, 6-8, 10) as diagrams.
	for _, d := range core.Diagrams() {
		d := d
		register(d.ID, d.Title, func() (*core.Artifact, error) { return d, nil })
	}
	return s
}

// Groups maps composite ids (as the paper numbers them) to the
// concrete experiment ids, so `isrepro fig5` runs all three panels.
func Groups() map[string][]string {
	return map[string][]string{
		"fig5":  {"fig5a", "fig5b", "fig5c"},
		"fig9":  {"fig9left", "fig9right"},
		"fig11": {"fig11latency", "fig11buffer"},
		"tables": {"table1", "table2", "table3", "table4", "table5",
			"table6", "table7", "table8"},
		"validation": {"valid-picl", "valid-vista", "factorial-paradyn", "factorial-vista"},
		"ablations":  {"abl-flushcost", "abl-quantum", "abl-disorder"},
		"extensions": {"adaptive-paradyn", "ext-latency", "ext-ism", "ext-avail"},
		"diagrams":   {"fig1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig10"},
	}
}

// Resolve expands an id (or group id, or "all") into experiment ids.
func Resolve(s *core.Suite, id string) ([]string, error) {
	if id == "all" {
		return s.IDs(), nil
	}
	if ids, ok := Groups()[id]; ok {
		return ids, nil
	}
	if _, ok := s.Get(id); ok {
		return []string{id}, nil
	}
	return nil, fmt.Errorf("experiments: unknown experiment or group %q", id)
}

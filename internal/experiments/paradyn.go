package experiments

import (
	"fmt"

	"prism/internal/core"
	"prism/internal/paradyn"
	"prism/internal/rng"
	"prism/internal/rocc"
	"prism/internal/stats"
	"prism/internal/workload"
)

// ioBoundProfile is the lightly-loaded-CPU application mix of the
// ext-latency experiment.
func ioBoundProfile() workload.AppProfile {
	return workload.AppProfile{
		CPUBurst:        rng.Exponential{Rate: 1.0 / 4.0},
		NetOp:           rng.Exponential{Rate: 1.0 / 2.0},
		CommProbability: 0.2,
		ThinkTime:       rng.Exponential{Rate: 1.0 / 200.0},
	}
}

// meanCI is a small local helper for 90% intervals.
func meanCI(vals []float64) stats.Interval { return stats.MeanCI(vals, 0.90) }

// paradynBase returns the shared ROCC configuration. The base seed is
// a placeholder: every stochastic call site overrides cfg.Seed through
// o.seedFor with its own experiment key.
func paradynBase(o Options) rocc.Config {
	cfg := rocc.DefaultConfig()
	cfg.Horizon = o.horizon(60_000)
	cfg.Seed = o.seedFor("paradyn-base", 0, 0)
	return cfg
}

func paradynSpecTable() *core.Artifact {
	return core.SpecTable("table4",
		"Table 4: Specifications characterizing the Paradyn instrumentation system",
		core.ISSpec{
			Name:     "Paradyn",
			Analysis: core.OnLine,
			Platform: "Cluster of workstations; here: ROCC-simulated shared workstation node",
			LIS: "Local daemon process for each node that collects samples from " +
				"application processes and forwards data",
			ISM:              "Main Paradyn process that accepts data from daemons and uses data for analysis",
			TP:               "Unix-based interprocess communication (pipes)",
			ManagementPolicy: "Adaptive management policy implemented by the tool developers",
		})
}

func paradynMetricTable() *core.Artifact {
	return core.MetricTable("table5",
		"Table 5: Metrics for evaluating the Paradyn IS management policies",
		[]core.MetricSpec{
			{
				Name:           "Pd interference",
				Calculation:    "Resource occupancy (ROCC) model",
				Interpretation: "Corresponds to direct perturbation of the program; lower is better",
			},
			{
				Name:           "Utilization of Pd",
				Calculation:    "Resource occupancy (ROCC) model",
				Interpretation: "Nominal is best",
			},
		})
}

func pointsToSeries(name string, pts []paradyn.PointCI) core.Series {
	s := core.Series{Name: name}
	for _, p := range pts {
		s.X = append(s.X, p.X)
		s.Y = append(s.Y, p.Y.Mean)
		s.YLo = append(s.YLo, p.Y.Lo)
		s.YHi = append(s.YHi, p.Y.Hi)
	}
	return s
}

// fig9Left regenerates Figure 9 (left): Pd interference vs sampling
// period, 50..500 ms, mean of r replications within 90% CIs.
func fig9Left(o Options) (*core.Artifact, error) {
	periods := []float64{50, 100, 150, 200, 250, 300, 350, 400, 450, 500}
	pts, err := paradyn.Fig9Left(paradynBase(o), periods, o.replication("fig9left"))
	if err != nil {
		return nil, err
	}
	return &core.Artifact{
		ID:     "fig9left",
		Title:  "Figure 9 (left): Pd interference vs sampling period (ROCC model, 2^k*r design, 90% CI)",
		Kind:   core.Figure,
		XLabel: "Sampling period (ms)",
		YLabel: "Interference (ms of daemon CPU over the run)",
		Series: []core.Series{pointsToSeries("interference", pts)},
		Notes: []string{
			"Shape to match the paper: decreasing, superlinear drop at small periods, levels off at the daemon's housekeeping floor.",
		},
	}, nil
}

// fig9Right regenerates Figure 9 (right): daemon CPU utilization vs
// number of application processes, 1..35.
func fig9Right(o Options) (*core.Artifact, error) {
	counts := []int{1, 2, 4, 8, 12, 16, 20, 25, 30, 35}
	pts, err := paradyn.Fig9Right(paradynBase(o), counts, o.replication("fig9right"))
	if err != nil {
		return nil, err
	}
	return &core.Artifact{
		ID:     "fig9right",
		Title:  "Figure 9 (right): CPU utilization by the daemon vs number of application processes",
		Kind:   core.Figure,
		XLabel: "Number of application processes",
		YLabel: "Daemon share of consumed CPU (%)",
		Series: []core.Series{pointsToSeries("utilizationPd", pts)},
		Notes: []string{
			"Shape to match the paper: monotone decrease — round-robin scheduling starves the daemon as processes multiply (§3.2.3).",
		},
	}, nil
}

// factorialParadyn runs the paper's 2^2*r factorial design on the ROCC
// model and reports effects and allocation of variation.
func factorialParadyn(o Options) (*core.Artifact, error) {
	base := paradynBase(o)
	fr, err := paradyn.Factorial(base, 50, 500, 2, 32, o.replication("factorial-paradyn"))
	if err != nil {
		return nil, err
	}
	a := &core.Artifact{
		ID:    "factorial-paradyn",
		Title: fmt.Sprintf("Paradyn 2^2*%d factorial design: effects on interference and utilization (90%% CI)", o.reps()),
		Kind:  core.Table,
		Headers: []string{
			"Effect", "Interference estimate", "Interference variation",
			"Utilization estimate", "Utilization variation",
		},
	}
	for _, ei := range fr.Interference.Effects {
		eu, _ := fr.Utilization.EffectByName(ei.Name)
		a.Rows = append(a.Rows, []string{
			ei.Name,
			ei.CI.String(), fmt.Sprintf("%.1f%%", ei.VariationShare*100),
			eu.CI.String(), fmt.Sprintf("%.1f%%", eu.VariationShare*100),
		})
	}
	a.Rows = append(a.Rows, []string{
		"(error)",
		"", fmt.Sprintf("%.1f%%", fr.Interference.ErrorShare*100),
		"", fmt.Sprintf("%.1f%%", fr.Utilization.ErrorShare*100),
	})
	a.Notes = append(a.Notes,
		fmt.Sprintf("Dominant factor: interference <- %s, utilization <- %s.",
			fr.Interference.DominantFactor(), fr.Utilization.DominantFactor()))
	return a, nil
}

// adaptiveParadyn exercises the adaptive cost model extension: a
// closed loop retuning the sampling period toward a target overhead.
func adaptiveParadyn(o Options) (*core.Artifact, error) {
	base := paradynBase(o)
	base.SamplingPeriod = 60
	base.Seed = o.seedFor("adaptive-paradyn", 0, 0)
	// Establish a reachable target midway between the overheads at a
	// fast and a slow period; the two probe runs are independent.
	var hi, lo rocc.Result
	err := core.Replicate(2, o.parallelism(), func(i int) error {
		cfg := base
		cfg.Seed = o.seedFor("adaptive-paradyn", 1+i, 0)
		if i == 1 {
			cfg.SamplingPeriod = 1500
		}
		res, err := rocc.Run(cfg)
		if err != nil {
			return err
		}
		if i == 0 {
			hi = res
		} else {
			lo = res
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	target := (hi.UtilizationPct + lo.UtilizationPct) / 2
	model, err := paradyn.NewCostModel(target)
	if err != nil {
		return nil, err
	}
	segments := 15
	if o.Quick {
		segments = 8
	}
	steps, err := paradyn.AdaptiveRun(base, model, segments)
	if err != nil {
		return nil, err
	}
	var xs, periods, overheads []float64
	for i, st := range steps {
		xs = append(xs, float64(i))
		periods = append(periods, st.Period)
		overheads = append(overheads, st.OverheadPct)
	}
	targetLine := make([]float64, len(xs))
	for i := range targetLine {
		targetLine[i] = target
	}
	return &core.Artifact{
		ID:     "adaptive-paradyn",
		Title:  fmt.Sprintf("Adaptive cost model: overhead converging to the %.2f%% target", target),
		Kind:   core.Figure,
		XLabel: "Control segment",
		YLabel: "Daemon overhead (%) / sampling period (ms/100)",
		Series: []core.Series{
			{Name: "overhead %", X: xs, Y: overheads},
			{Name: "target %", X: xs, Y: targetLine},
			{Name: "period/100", X: xs, Y: scale(periods, 0.01)},
		},
		Notes: []string{
			"Implements the paper's §4 description of Paradyn's cost model: measured overhead feeds back into the sampling rate.",
		},
	}, nil
}

// ablQuantum sweeps the round-robin quantum, the scheduling
// design-choice ablation of the ROCC model.
func ablQuantum(o Options) (*core.Artifact, error) {
	a := &core.Artifact{
		ID:    "abl-quantum",
		Title: "Ablation: ROCC metrics vs round-robin quantum (n=8 processes, period 200 ms)",
		Kind:  core.Table,
		Headers: []string{
			"Quantum (ms)", "Interference (ms)", "Daemon utilization (%)",
			"Monitoring latency (ms)", "Context switches",
		},
	}
	quanta := []float64{1, 5, 10, 50}
	a.Rows = make([][]string, len(quanta))
	err := core.Replicate(len(quanta), o.parallelism(), func(qi int) error {
		cfg := paradynBase(o)
		cfg.Quantum = quanta[qi]
		cfg.AppProcesses = 8
		cfg.Seed = o.seedFor("abl-quantum", qi, 0)
		res, err := rocc.Run(cfg)
		if err != nil {
			return err
		}
		a.Rows[qi] = []string{
			fmt.Sprint(quanta[qi]),
			fmt.Sprintf("%.1f", res.InterferenceMs),
			fmt.Sprintf("%.2f", res.UtilizationPct),
			fmt.Sprintf("%.2f", res.MonitoringLatencyMs),
			fmt.Sprint(res.ContextSwitches),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	a.Notes = append(a.Notes,
		"Smaller quanta reduce the daemon's wait per CPU visit (lower monitoring latency) at the price of more context switches.")
	return a, nil
}

// extLatency regenerates the §3.2.3 extension: monitoring latency
// versus the number of application processes for 1 vs 2 vs 4 daemons,
// in the Gu et al. regime (daemon round-trip-bound, CPU lightly
// loaded). The expected shape: below a process-count threshold the
// curves coincide (extra daemons only add interference); above it the
// single daemon saturates and multiple daemons win by a large factor.
func extLatency(o Options) (*core.Artifact, error) {
	counts := []int{2, 8, 16, 24, 32, 40}
	daemons := []int{1, 2, 4}
	reps := o.reps()
	// One sweep point per (daemon count, process count) pair, reps
	// replications each, all flattened into a single replication pool.
	vals := make([][]float64, len(daemons)*len(counts))
	for i := range vals {
		vals[i] = make([]float64, reps)
	}
	err := core.Replicate(len(vals)*reps, o.parallelism(), func(task int) error {
		run, rep := task/reps, task%reps
		cfg := ioBound(o, counts[run%len(counts)], daemons[run/len(counts)])
		cfg.Seed = o.seedFor("ext-latency", run, rep)
		res, err := rocc.Run(cfg)
		if err != nil {
			return err
		}
		vals[run][rep] = res.MonitoringLatencyMs
		return nil
	})
	if err != nil {
		return nil, err
	}
	series := make([]core.Series, 0, len(daemons))
	for di, d := range daemons {
		s := core.Series{Name: fmt.Sprintf("%d daemon(s)", d)}
		for ni, n := range counts {
			iv := meanCI(vals[di*len(counts)+ni])
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, iv.Mean)
			s.YLo = append(s.YLo, iv.Lo)
			s.YHi = append(s.YHi, iv.Hi)
		}
		series = append(series, s)
	}
	return &core.Artifact{
		ID:     "ext-latency",
		Title:  "Extension (Gu et al., cited in §3.2.3): monitoring latency vs processes, 1/2/4 daemons",
		Kind:   core.Figure,
		XLabel: "Number of application processes",
		YLabel: "Monitoring latency (ms)",
		Series: series,
		Notes: []string{
			"Multiple monitoring daemons reduce monitoring latency only above a process-count threshold; below it they just add interference.",
		},
	}, nil
}

// extISM regenerates the full Figure 7 path: daemons forward sample
// batches across the network to the central "main Paradyn process",
// modeled as a single-server queue. The artifact sweeps the sampling
// period and reports the ISM's utilization and the end-to-end sample
// latency (generation -> central service completion).
func extISM(o Options) (*core.Artifact, error) {
	periods := []float64{50, 100, 200, 300, 400, 500}
	util := core.Series{Name: "ISM utilization (%)"}
	e2e := core.Series{Name: "end-to-end latency (ms)"}
	reps := o.reps()
	utils := make([][]float64, len(periods))
	lats := make([][]float64, len(periods))
	for i := range utils {
		utils[i] = make([]float64, reps)
		lats[i] = make([]float64, reps)
	}
	err := core.Replicate(len(periods)*reps, o.parallelism(), func(task int) error {
		run, rep := task/reps, task%reps
		cfg := paradynBase(o)
		cfg.SamplingPeriod = periods[run]
		cfg.Seed = o.seedFor("ext-ism", run, rep)
		res, err := rocc.Run(cfg)
		if err != nil {
			return err
		}
		utils[run][rep] = res.ISMUtilization * 100
		lats[run][rep] = res.EndToEndLatencyMs
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range periods {
		u := meanCI(utils[i])
		l := meanCI(lats[i])
		util.X = append(util.X, p)
		util.Y = append(util.Y, u.Mean)
		util.YLo = append(util.YLo, u.Lo)
		util.YHi = append(util.YHi, u.Hi)
		e2e.X = append(e2e.X, p)
		e2e.Y = append(e2e.Y, l.Mean)
		e2e.YLo = append(e2e.YLo, l.Lo)
		e2e.YHi = append(e2e.YHi, l.Hi)
	}
	return &core.Artifact{
		ID:     "ext-ism",
		Title:  "Figure 7 end-to-end: central ISM utilization and sample latency vs sampling period",
		Kind:   core.Figure,
		XLabel: "Sampling period (ms)",
		YLabel: "ISM utilization (%) / end-to-end latency (ms)",
		Series: []core.Series{util, e2e},
		Notes: []string{
			"The central main-process stage of Figure 7: batches cross the network after the daemon forwards them and queue at a single server.",
		},
	}, nil
}

// ioBound parameterizes the round-trip-bound daemon regime.
func ioBound(o Options, n, daemons int) rocc.Config {
	cfg := rocc.DefaultConfig()
	cfg.Horizon = o.horizon(60_000)
	cfg.AppProcesses = n
	cfg.SamplingPeriod = 50
	cfg.Daemons = daemons
	cfg.App = ioBoundProfile()
	cfg.PerSampleCPU = 0.3
	cfg.PerSampleNet = 0.6
	return cfg
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

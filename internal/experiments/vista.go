package experiments

import (
	"fmt"

	"prism/internal/core"
	"prism/internal/stats"
	"prism/internal/vista"
)

func vistaBase(o Options) vista.Config {
	cfg := vista.DefaultConfig()
	cfg.Horizon = o.horizon(400_000)
	cfg.Seed = o.seed(1)
	return cfg
}

func vistaSpecTable() *core.Artifact {
	return core.SpecTable("table6",
		"Table 6: Specifications characterizing the Vista instrumentation system",
		core.ISSpec{
			Name:     "Vista",
			Analysis: core.OnAndOffLine,
			Platform: "Cluster of workstations; here: queueing-simulated ISM node",
			LIS:      "Instrumentation library with event forwarding and no local buffers",
			ISM: "Instrumentation data processing (causal ordering with logical " +
				"time-stamps), forwarding to tools, and storing to disk",
			TP:               "Unix-based library functions for interprocess communication",
			ManagementPolicy: "Static management policy implemented by the developers",
		})
}

func vistaMetricTable() *core.Artifact {
	return core.MetricTable("table7",
		"Table 7: Metrics for evaluating the Vista IS management policies",
		[]core.MetricSpec{
			{
				Name:           "Data processing latency",
				Calculation:    "Queuing model evaluation and simulation",
				Interpretation: "Longer latency may be undesirable for the tools",
			},
			{
				Name:           "Average buffer length (hold back ratio)",
				Calculation:    "Queuing model evaluation and simulation",
				Interpretation: "Higher value indicates a potential bottleneck in the IS",
			},
		})
}

// fig11 regenerates a panel of Figure 11: SISO vs MISO over mean
// inter-arrival times 10..100 ms, r replications within 90% CIs.
// latency=true yields the left panel; false the right (buffer length).
func fig11(o Options, latency bool) (*core.Artifact, error) {
	interArrivals := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	reps := o.reps()
	mkSeries := func(b vista.Buffering) (core.Series, error) {
		s := core.Series{Name: b.String()}
		for _, ia := range interArrivals {
			vals := make([]float64, 0, reps)
			for r := 0; r < reps; r++ {
				cfg := vistaBase(o)
				cfg.Buffering = b
				cfg.MeanInterArrival = ia
				cfg.Seed = o.seed(uint64(r)*97 + uint64(ia))
				res, err := vista.Run(cfg)
				if err != nil {
					return s, err
				}
				if latency {
					vals = append(vals, res.MeanLatencyMs)
				} else {
					vals = append(vals, res.MeanInputOccupancy)
				}
			}
			iv := stats.MeanCI(vals, 0.90)
			s.X = append(s.X, ia)
			s.Y = append(s.Y, iv.Mean)
			s.YLo = append(s.YLo, iv.Lo)
			s.YHi = append(s.YHi, iv.Hi)
		}
		return s, nil
	}
	siso, err := mkSeries(vista.SISO)
	if err != nil {
		return nil, err
	}
	miso, err := mkSeries(vista.MISO)
	if err != nil {
		return nil, err
	}
	id, title, ylabel := "fig11latency",
		"Figure 11 (left): average data processing latency, SISO vs MISO",
		"Average data processing latency (ms)"
	if !latency {
		id, title, ylabel = "fig11buffer",
			"Figure 11 (right): average input buffer length, SISO vs MISO",
			"Average input buffer length (records)"
	}
	return &core.Artifact{
		ID: id, Title: title, Kind: core.Figure,
		XLabel: "Mean inter-arrival time (ms)",
		YLabel: ylabel,
		Series: []core.Series{siso, miso},
		Notes: []string{
			"Shape to match the paper: SISO lower latency at short inter-arrival times; curves converge (and noise grows) at long ones.",
		},
	}, nil
}

// factorialVista runs the 2^2*r design with factors {configuration,
// inter-arrival time} on both metrics, then the PCA the paper uses to
// identify the dominant factor.
func factorialVista(o Options) (*core.Artifact, error) {
	design := &stats.Design2kr{
		Factors: []stats.Factor{
			{Name: "config", Low: 0, High: 1}, // 0=SISO, 1=MISO
			{Name: "interarrival", Low: 10, High: 100},
		},
		R: o.reps(),
	}
	latResp := make([][]float64, design.Runs())
	bufResp := make([][]float64, design.Runs())
	var pcaRows [][]float64
	for run := 0; run < design.Runs(); run++ {
		vals := design.Values(run)
		for rep := 0; rep < design.R; rep++ {
			cfg := vistaBase(o)
			if vals[0] > 0.5 {
				cfg.Buffering = vista.MISO
			}
			cfg.MeanInterArrival = vals[1]
			cfg.Seed = o.seed(uint64(run*1000+rep) + 7)
			res, err := vista.Run(cfg)
			if err != nil {
				return nil, err
			}
			latResp[run] = append(latResp[run], res.MeanLatencyMs)
			bufResp[run] = append(bufResp[run], res.AvgBufferLength)
			pcaRows = append(pcaRows, []float64{
				vals[0], vals[1], res.MeanLatencyMs, res.AvgBufferLength,
			})
		}
	}
	lat, err := design.Analyze(latResp, 0.90)
	if err != nil {
		return nil, err
	}
	buf, err := design.Analyze(bufResp, 0.90)
	if err != nil {
		return nil, err
	}
	pca, err := stats.PCA([]string{"config", "interarrival", "latency", "bufferlen"}, pcaRows)
	if err != nil {
		return nil, err
	}
	a := &core.Artifact{
		ID:    "factorial-vista",
		Title: fmt.Sprintf("Vista 2^2*%d factorial + PCA (90%% CI)", o.reps()),
		Kind:  core.Table,
		Headers: []string{
			"Effect", "Latency estimate", "Latency variation",
			"Buffer-length estimate", "Buffer-length variation",
		},
	}
	for _, el := range lat.Effects {
		eb, _ := buf.EffectByName(el.Name)
		a.Rows = append(a.Rows, []string{
			el.Name,
			el.CI.String(), fmt.Sprintf("%.1f%%", el.VariationShare*100),
			eb.CI.String(), fmt.Sprintf("%.1f%%", eb.VariationShare*100),
		})
	}
	a.Rows = append(a.Rows, []string{
		"(error)", "", fmt.Sprintf("%.1f%%", lat.ErrorShare*100),
		"", fmt.Sprintf("%.1f%%", buf.ErrorShare*100),
	})
	a.Notes = append(a.Notes,
		fmt.Sprintf("Dominant factor (factorial): latency <- %s, buffer length <- %s.",
			lat.DominantFactor(), buf.DominantFactor()),
		fmt.Sprintf("PCA first component explains %.0f%% of variance; loadings: %s.",
			pca.VarianceExplained[0]*100, pcaLoadingString(pca)),
		"Paper's conclusion reproduced when 'interarrival' dominates 'config' on both metrics (§3.3.2).",
	)
	return a, nil
}

func pcaLoadingString(p *stats.PCAResult) string {
	out := ""
	for i, n := range p.Names {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%.2f", n, p.Components[0][i])
	}
	return out
}

// validVista regenerates the §3.3.3 design decision: compare the
// configurations at moderate and high arrival rates and state the
// conclusion that led Vista to adopt SISO.
func validVista(o Options) (*core.Artifact, error) {
	a := &core.Artifact{
		ID:    "valid-vista",
		Title: "Vista design decision: SISO vs MISO at moderate and high arrival rates",
		Kind:  core.Table,
		Headers: []string{
			"Mean inter-arrival (ms)", "Config", "Latency (ms, 90% CI)",
			"Buffer length (ooo/s, 90% CI)", "Hold-back ratio",
		},
	}
	reps := o.reps()
	for _, ia := range []float64{10, 50, 100} {
		for _, b := range []vista.Buffering{vista.SISO, vista.MISO} {
			var lats, bufs, hbs []float64
			for r := 0; r < reps; r++ {
				cfg := vistaBase(o)
				cfg.Buffering = b
				cfg.MeanInterArrival = ia
				cfg.Seed = o.seed(uint64(r)*13 + uint64(ia))
				res, err := vista.Run(cfg)
				if err != nil {
					return nil, err
				}
				lats = append(lats, res.MeanLatencyMs)
				bufs = append(bufs, res.AvgBufferLength)
				hbs = append(hbs, res.HoldBackRatio)
			}
			a.Rows = append(a.Rows, []string{
				fmt.Sprint(ia), b.String(),
				stats.MeanCI(lats, 0.90).String(),
				stats.MeanCI(bufs, 0.90).String(),
				fmt.Sprintf("%.3f", stats.Summarize(hbs).Mean),
			})
		}
	}
	a.Notes = append(a.Notes,
		"The paper's decision: SISO 'performs equally well at moderate arrival rates and marginally better at higher arrival rates'; with event-driven surges in mind, Vista adopted SISO (§3.3.3).")
	return a, nil
}

// ablDisorder sweeps the network-skew mean, the knob that controls how
// out-of-order the arrival stream is.
func ablDisorder(o Options) (*core.Artifact, error) {
	a := &core.Artifact{
		ID:    "abl-disorder",
		Title: "Ablation: effect of network skew on out-of-order buffering (SISO, inter-arrival 20 ms)",
		Kind:  core.Table,
		Headers: []string{
			"Skew mean (ms)", "Hold-back ratio", "Mean held records", "Latency (ms)",
		},
	}
	for _, skew := range []float64{0, 5, 15, 40, 100} {
		cfg := vistaBase(o)
		cfg.MeanInterArrival = 20
		cfg.SkewMean = skew
		res, err := vista.Run(cfg)
		if err != nil {
			return nil, err
		}
		a.Rows = append(a.Rows, []string{
			fmt.Sprint(skew),
			fmt.Sprintf("%.3f", res.HoldBackRatio),
			fmt.Sprintf("%.3f", res.MeanHeld),
			fmt.Sprintf("%.2f", res.MeanLatencyMs),
		})
	}
	a.Notes = append(a.Notes,
		"Zero skew yields zero hold-back; growing skew inflates input buffering and latency, the §3.3 motivation for efficient event ordering.")
	return a, nil
}

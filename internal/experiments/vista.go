package experiments

import (
	"fmt"

	"prism/internal/core"
	"prism/internal/stats"
	"prism/internal/vista"
)

// vistaBase returns the shared queueing configuration. The base seed
// is a placeholder: every stochastic call site overrides cfg.Seed
// through o.seedFor with its own experiment key.
func vistaBase(o Options) vista.Config {
	cfg := vista.DefaultConfig()
	cfg.Horizon = o.horizon(400_000)
	cfg.Seed = o.seedFor("vista-base", 0, 0)
	return cfg
}

func vistaSpecTable() *core.Artifact {
	return core.SpecTable("table6",
		"Table 6: Specifications characterizing the Vista instrumentation system",
		core.ISSpec{
			Name:     "Vista",
			Analysis: core.OnAndOffLine,
			Platform: "Cluster of workstations; here: queueing-simulated ISM node",
			LIS:      "Instrumentation library with event forwarding and no local buffers",
			ISM: "Instrumentation data processing (causal ordering with logical " +
				"time-stamps), forwarding to tools, and storing to disk",
			TP:               "Unix-based library functions for interprocess communication",
			ManagementPolicy: "Static management policy implemented by the developers",
		})
}

func vistaMetricTable() *core.Artifact {
	return core.MetricTable("table7",
		"Table 7: Metrics for evaluating the Vista IS management policies",
		[]core.MetricSpec{
			{
				Name:           "Data processing latency",
				Calculation:    "Queuing model evaluation and simulation",
				Interpretation: "Longer latency may be undesirable for the tools",
			},
			{
				Name:           "Average buffer length (hold back ratio)",
				Calculation:    "Queuing model evaluation and simulation",
				Interpretation: "Higher value indicates a potential bottleneck in the IS",
			},
		})
}

// fig11 regenerates a panel of Figure 11: SISO vs MISO over mean
// inter-arrival times 10..100 ms, r replications within 90% CIs.
// latency=true yields the left panel; false the right (buffer length).
func fig11(o Options, latency bool) (*core.Artifact, error) {
	interArrivals := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	reps := o.reps()
	// Both panels of Figure 11 come from the same runs in the paper,
	// so the seed key is "fig11" for the latency and buffer variants
	// alike: run index = buffering * len(interArrivals) + point.
	bufferings := []vista.Buffering{vista.SISO, vista.MISO}
	vals := make([][]float64, len(bufferings)*len(interArrivals))
	for i := range vals {
		vals[i] = make([]float64, reps)
	}
	err := core.Replicate(len(vals)*reps, o.parallelism(), func(task int) error {
		run, rep := task/reps, task%reps
		cfg := vistaBase(o)
		cfg.Buffering = bufferings[run/len(interArrivals)]
		cfg.MeanInterArrival = interArrivals[run%len(interArrivals)]
		cfg.Seed = o.seedFor("fig11", run, rep)
		res, err := vista.Run(cfg)
		if err != nil {
			return err
		}
		if latency {
			vals[run][rep] = res.MeanLatencyMs
		} else {
			vals[run][rep] = res.MeanInputOccupancy
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	mkSeries := func(bi int) core.Series {
		s := core.Series{Name: bufferings[bi].String()}
		for xi, ia := range interArrivals {
			iv := stats.MeanCI(vals[bi*len(interArrivals)+xi], 0.90)
			s.X = append(s.X, ia)
			s.Y = append(s.Y, iv.Mean)
			s.YLo = append(s.YLo, iv.Lo)
			s.YHi = append(s.YHi, iv.Hi)
		}
		return s
	}
	siso, miso := mkSeries(0), mkSeries(1)
	id, title, ylabel := "fig11latency",
		"Figure 11 (left): average data processing latency, SISO vs MISO",
		"Average data processing latency (ms)"
	if !latency {
		id, title, ylabel = "fig11buffer",
			"Figure 11 (right): average input buffer length, SISO vs MISO",
			"Average input buffer length (records)"
	}
	return &core.Artifact{
		ID: id, Title: title, Kind: core.Figure,
		XLabel: "Mean inter-arrival time (ms)",
		YLabel: ylabel,
		Series: []core.Series{siso, miso},
		Notes: []string{
			"Shape to match the paper: SISO lower latency at short inter-arrival times; curves converge (and noise grows) at long ones.",
		},
	}, nil
}

// factorialVista runs the 2^2*r design with factors {configuration,
// inter-arrival time} on both metrics, then the PCA the paper uses to
// identify the dominant factor.
func factorialVista(o Options) (*core.Artifact, error) {
	design := &stats.Design2kr{
		Factors: []stats.Factor{
			{Name: "config", Low: 0, High: 1}, // 0=SISO, 1=MISO
			{Name: "interarrival", Low: 10, High: 100},
		},
		R: o.reps(),
	}
	latResp := design.NewResponseMatrix()
	bufResp := design.NewResponseMatrix()
	pcaRows := make([][]float64, design.Runs()*design.R)
	err := design.RunCells(o.parallelism(), func(run, rep int) error {
		vals := design.Values(run)
		cfg := vistaBase(o)
		if vals[0] > 0.5 {
			cfg.Buffering = vista.MISO
		}
		cfg.MeanInterArrival = vals[1]
		cfg.Seed = o.seedFor("factorial-vista", run, rep)
		res, err := vista.Run(cfg)
		if err != nil {
			return err
		}
		latResp[run][rep] = res.MeanLatencyMs
		bufResp[run][rep] = res.AvgBufferLength
		pcaRows[run*design.R+rep] = []float64{
			vals[0], vals[1], res.MeanLatencyMs, res.AvgBufferLength,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	lat, err := design.Analyze(latResp, 0.90)
	if err != nil {
		return nil, err
	}
	buf, err := design.Analyze(bufResp, 0.90)
	if err != nil {
		return nil, err
	}
	pca, err := stats.PCA([]string{"config", "interarrival", "latency", "bufferlen"}, pcaRows)
	if err != nil {
		return nil, err
	}
	a := &core.Artifact{
		ID:    "factorial-vista",
		Title: fmt.Sprintf("Vista 2^2*%d factorial + PCA (90%% CI)", o.reps()),
		Kind:  core.Table,
		Headers: []string{
			"Effect", "Latency estimate", "Latency variation",
			"Buffer-length estimate", "Buffer-length variation",
		},
	}
	for _, el := range lat.Effects {
		eb, _ := buf.EffectByName(el.Name)
		a.Rows = append(a.Rows, []string{
			el.Name,
			el.CI.String(), fmt.Sprintf("%.1f%%", el.VariationShare*100),
			eb.CI.String(), fmt.Sprintf("%.1f%%", eb.VariationShare*100),
		})
	}
	a.Rows = append(a.Rows, []string{
		"(error)", "", fmt.Sprintf("%.1f%%", lat.ErrorShare*100),
		"", fmt.Sprintf("%.1f%%", buf.ErrorShare*100),
	})
	a.Notes = append(a.Notes,
		fmt.Sprintf("Dominant factor (factorial): latency <- %s, buffer length <- %s.",
			lat.DominantFactor(), buf.DominantFactor()),
		fmt.Sprintf("PCA first component explains %.0f%% of variance; loadings: %s.",
			pca.VarianceExplained[0]*100, pcaLoadingString(pca)),
		"Paper's conclusion reproduced when 'interarrival' dominates 'config' on both metrics (§3.3.2).",
	)
	return a, nil
}

func pcaLoadingString(p *stats.PCAResult) string {
	out := ""
	for i, n := range p.Names {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%.2f", n, p.Components[0][i])
	}
	return out
}

// validVista regenerates the §3.3.3 design decision: compare the
// configurations at moderate and high arrival rates and state the
// conclusion that led Vista to adopt SISO.
func validVista(o Options) (*core.Artifact, error) {
	a := &core.Artifact{
		ID:    "valid-vista",
		Title: "Vista design decision: SISO vs MISO at moderate and high arrival rates",
		Kind:  core.Table,
		Headers: []string{
			"Mean inter-arrival (ms)", "Config", "Latency (ms, 90% CI)",
			"Buffer length (ooo/s, 90% CI)", "Hold-back ratio",
		},
	}
	reps := o.reps()
	interArrivals := []float64{10, 50, 100}
	bufferings := []vista.Buffering{vista.SISO, vista.MISO}
	type cellVals struct{ lats, bufs, hbs []float64 }
	cells := make([]cellVals, len(interArrivals)*len(bufferings))
	for i := range cells {
		cells[i] = cellVals{
			lats: make([]float64, reps),
			bufs: make([]float64, reps),
			hbs:  make([]float64, reps),
		}
	}
	err := core.Replicate(len(cells)*reps, o.parallelism(), func(task int) error {
		run, rep := task/reps, task%reps
		cfg := vistaBase(o)
		cfg.Buffering = bufferings[run%len(bufferings)]
		cfg.MeanInterArrival = interArrivals[run/len(bufferings)]
		cfg.Seed = o.seedFor("valid-vista", run, rep)
		res, err := vista.Run(cfg)
		if err != nil {
			return err
		}
		cells[run].lats[rep] = res.MeanLatencyMs
		cells[run].bufs[rep] = res.AvgBufferLength
		cells[run].hbs[rep] = res.HoldBackRatio
		return nil
	})
	if err != nil {
		return nil, err
	}
	for run, c := range cells {
		a.Rows = append(a.Rows, []string{
			fmt.Sprint(interArrivals[run/len(bufferings)]),
			bufferings[run%len(bufferings)].String(),
			stats.MeanCI(c.lats, 0.90).String(),
			stats.MeanCI(c.bufs, 0.90).String(),
			fmt.Sprintf("%.3f", stats.Summarize(c.hbs).Mean),
		})
	}
	a.Notes = append(a.Notes,
		"The paper's decision: SISO 'performs equally well at moderate arrival rates and marginally better at higher arrival rates'; with event-driven surges in mind, Vista adopted SISO (§3.3.3).")
	return a, nil
}

// ablDisorder sweeps the network-skew mean, the knob that controls how
// out-of-order the arrival stream is.
func ablDisorder(o Options) (*core.Artifact, error) {
	a := &core.Artifact{
		ID:    "abl-disorder",
		Title: "Ablation: effect of network skew on out-of-order buffering (SISO, inter-arrival 20 ms)",
		Kind:  core.Table,
		Headers: []string{
			"Skew mean (ms)", "Hold-back ratio", "Mean held records", "Latency (ms)",
		},
	}
	skews := []float64{0, 5, 15, 40, 100}
	a.Rows = make([][]string, len(skews))
	err := core.Replicate(len(skews), o.parallelism(), func(si int) error {
		cfg := vistaBase(o)
		cfg.MeanInterArrival = 20
		cfg.SkewMean = skews[si]
		cfg.Seed = o.seedFor("abl-disorder", si, 0)
		res, err := vista.Run(cfg)
		if err != nil {
			return err
		}
		a.Rows[si] = []string{
			fmt.Sprint(skews[si]),
			fmt.Sprintf("%.3f", res.HoldBackRatio),
			fmt.Sprintf("%.3f", res.MeanHeld),
			fmt.Sprintf("%.2f", res.MeanLatencyMs),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	a.Notes = append(a.Notes,
		"Zero skew yields zero hold-back; growing skew inflates input buffering and latency, the §3.3 motivation for efficient event ordering.")
	return a, nil
}

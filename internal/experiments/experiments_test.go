package experiments

import (
	"strings"
	"testing"

	"prism/internal/core"
)

func quickSuite(t *testing.T) *core.Suite {
	t.Helper()
	return Suite(Options{Quick: true})
}

func TestSuiteRegistersEverything(t *testing.T) {
	s := quickSuite(t)
	want := []string{
		"table1", "table2", "table3", "fig5a", "fig5b", "fig5c",
		"valid-picl", "abl-flushcost",
		"table4", "table5", "fig9left", "fig9right",
		"factorial-paradyn", "adaptive-paradyn", "abl-quantum",
		"table6", "table7", "fig11latency", "fig11buffer",
		"factorial-vista", "valid-vista", "abl-disorder", "table8",
		"ext-latency", "ext-ism", "ext-avail", "dist-stopping",
		"fig1", "fig2", "fig3", "fig4", "fig6", "fig7", "fig8", "fig10",
	}
	got := map[string]bool{}
	for _, id := range s.IDs() {
		got[id] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if len(s.IDs()) != len(want) {
		t.Fatalf("unexpected experiment count %d, want %d", len(s.IDs()), len(want))
	}
}

func TestResolve(t *testing.T) {
	s := quickSuite(t)
	ids, err := Resolve(s, "fig5")
	if err != nil || len(ids) != 3 {
		t.Fatalf("fig5 group: %v %v", ids, err)
	}
	ids, err = Resolve(s, "table3")
	if err != nil || len(ids) != 1 {
		t.Fatalf("single: %v %v", ids, err)
	}
	ids, err = Resolve(s, "all")
	if err != nil || len(ids) != len(s.IDs()) {
		t.Fatalf("all: %v %v", ids, err)
	}
	if _, err := Resolve(s, "bogus"); err == nil {
		t.Fatal("bogus id accepted")
	}
}

func TestSpecTablesRun(t *testing.T) {
	s := quickSuite(t)
	for _, id := range []string{"table1", "table2", "table4", "table5", "table6", "table7", "table8"} {
		a, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.Kind != core.Table || len(a.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
	}
}

func TestTable3QualitativeContent(t *testing.T) {
	a, err := quickSuite(t).Run("table3")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("rows %d", len(a.Rows))
	}
	// The frequency row must show FAOF below FOF; parse loosely by
	// checking the notes mention the bound relation.
	joined := strings.Join(a.Notes, " ")
	if !strings.Contains(joined, "omega_a") || !strings.Contains(joined, "omega_o") {
		t.Fatalf("notes lack formulas: %v", a.Notes)
	}
}

func TestFig5PanelShapes(t *testing.T) {
	s := quickSuite(t)
	for _, id := range []string{"fig5a", "fig5b", "fig5c"} {
		a, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		series := map[string]core.Series{}
		for _, sr := range a.Series {
			series[sr.Name] = sr
		}
		fof := series["FOF analytic"]
		faof := series["FAOF analytic"]
		if len(fof.Y) != 10 || len(faof.Y) != 10 {
			t.Fatalf("%s: missing analytic series", id)
		}
		for i := range fof.Y {
			if faof.Y[i] >= fof.Y[i] {
				t.Fatalf("%s: FAOF not below FOF at l=%v", id, fof.X[i])
			}
			if i > 0 && fof.Y[i] >= fof.Y[i-1] {
				t.Fatalf("%s: FOF not decreasing", id)
			}
		}
		// Simulated series should track analytic within 15% (quick mode).
		sim := series["FOF simulated"]
		for i := range sim.Y {
			rel := (sim.Y[i] - fof.Y[i]) / fof.Y[i]
			if rel > 0.15 || rel < -0.15 {
				t.Fatalf("%s: sim/analytic FOF divergence %.2f at l=%v", id, rel, sim.X[i])
			}
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	s := quickSuite(t)
	left, err := s.Run("fig9left")
	if err != nil {
		t.Fatal(err)
	}
	ys := left.Series[0].Y
	if ys[0] <= ys[len(ys)-1] {
		t.Fatalf("interference not decreasing overall: %v", ys)
	}
	right, err := s.Run("fig9right")
	if err != nil {
		t.Fatal(err)
	}
	ys = right.Series[0].Y
	for i := 1; i < len(ys); i++ {
		if ys[i] >= ys[i-1]*1.1 { // allow small noise, forbid growth
			t.Fatalf("utilization grows at point %d: %v", i, ys)
		}
	}
	if ys[0] < 2*ys[len(ys)-1] {
		t.Fatalf("utilization decline too weak: %v", ys)
	}
}

func TestFig11Shapes(t *testing.T) {
	s := quickSuite(t)
	lat, err := s.Run("fig11latency")
	if err != nil {
		t.Fatal(err)
	}
	var siso, miso core.Series
	for _, sr := range lat.Series {
		if sr.Name == "SISO" {
			siso = sr
		} else {
			miso = sr
		}
	}
	// At the fastest arrivals (x=10) SISO must be lower.
	if siso.Y[0] >= miso.Y[0] {
		t.Fatalf("SISO %v not below MISO %v at inter-arrival 10", siso.Y[0], miso.Y[0])
	}
	// Gap shrinks at x=100.
	gapFast := miso.Y[0] - siso.Y[0]
	gapSlow := miso.Y[len(miso.Y)-1] - siso.Y[len(siso.Y)-1]
	if gapSlow >= gapFast {
		t.Fatalf("gap did not shrink: fast %v slow %v", gapFast, gapSlow)
	}

	buf, err := s.Run("fig11buffer")
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range buf.Series {
		if sr.Y[0] <= sr.Y[len(sr.Y)-1] {
			t.Fatalf("%s buffer length not decreasing: %v", sr.Name, sr.Y)
		}
	}
}

func TestFactorialVistaDominantFactor(t *testing.T) {
	a, err := quickSuite(t).Run("factorial-vista")
	if err != nil {
		t.Fatal(err)
	}
	notes := strings.Join(a.Notes, " ")
	if !strings.Contains(notes, "latency <- interarrival") {
		t.Fatalf("inter-arrival not dominant for latency: %v", a.Notes)
	}
	if !strings.Contains(notes, "buffer length <- interarrival") {
		t.Fatalf("inter-arrival not dominant for buffer length: %v", a.Notes)
	}
}

func TestFactorialParadynDominantFactors(t *testing.T) {
	a, err := quickSuite(t).Run("factorial-paradyn")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claims are directional: utilization falls with the
	// number of processes (procs dominates it), and interference
	// falls as the sampling period grows. Check the signs from the
	// rendered effect rows.
	notes := strings.Join(a.Notes, " ")
	if !strings.Contains(notes, "utilization <- procs") {
		t.Fatalf("procs not dominant for utilization: %v", a.Notes)
	}
	var periodRow []string
	for _, row := range a.Rows {
		if row[0] == "period" {
			periodRow = row
		}
	}
	if periodRow == nil {
		t.Fatal("missing period effect row")
	}
	if !strings.HasPrefix(periodRow[1], "-") {
		t.Fatalf("period effect on interference should be negative: %v", periodRow)
	}
}

func TestExtISM(t *testing.T) {
	a, err := quickSuite(t).Run("ext-ism")
	if err != nil {
		t.Fatal(err)
	}
	util := a.Series[0]
	// ISM utilization falls as sampling slows.
	if util.Y[0] <= util.Y[len(util.Y)-1] {
		t.Fatalf("ISM utilization not decreasing: %v", util.Y)
	}
	e2e := a.Series[1]
	for _, v := range e2e.Y {
		if v <= 0 {
			t.Fatalf("end-to-end latency missing: %v", e2e.Y)
		}
	}
}

func TestStoppingDistribution(t *testing.T) {
	a, err := quickSuite(t).Run("dist-stopping")
	if err != nil {
		t.Fatal(err)
	}
	fof, faof := a.Series[0], a.Series[1]
	for i := range fof.Y {
		// CDFs in [0,1], monotone, FAOF dominating FOF.
		if fof.Y[i] < 0 || fof.Y[i] > 1 || faof.Y[i] < 0 || faof.Y[i] > 1 {
			t.Fatalf("CDF out of range at %d", i)
		}
		// Allow last-bit float jitter in the deep tails.
		const eps = 1e-9
		if i > 0 && (fof.Y[i] < fof.Y[i-1]-eps || faof.Y[i] < faof.Y[i-1]-eps) {
			t.Fatalf("CDF not monotone at %d", i)
		}
		if faof.Y[i]+1e-12 < fof.Y[i] {
			t.Fatalf("FAOF CDF below FOF at %d: %v < %v", i, faof.Y[i], fof.Y[i])
		}
	}
}

func TestValidationTables(t *testing.T) {
	s := quickSuite(t)
	for _, id := range []string{"valid-picl", "valid-vista"} {
		a, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(a.Rows) < 4 {
			t.Fatalf("%s: too few rows", id)
		}
	}
}

func TestAblations(t *testing.T) {
	s := quickSuite(t)
	for _, id := range []string{"abl-flushcost", "abl-quantum", "abl-disorder"} {
		a, err := s.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(a.Rows) < 3 {
			t.Fatalf("%s: too few rows", id)
		}
	}
}

func TestExtLatencyCrossover(t *testing.T) {
	a, err := quickSuite(t).Run("ext-latency")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != 3 {
		t.Fatalf("series %d", len(a.Series))
	}
	one, two := a.Series[0], a.Series[1]
	last := len(one.Y) - 1
	if two.Y[last] >= one.Y[last] {
		t.Fatalf("above threshold, 2 daemons (%v) should beat 1 (%v)", two.Y[last], one.Y[last])
	}
	// At the smallest process count the curves are comparable.
	if two.Y[0] > one.Y[0]*3 {
		t.Fatalf("below threshold, 2 daemons should not be much worse: %v vs %v", two.Y[0], one.Y[0])
	}
}

func TestAdaptiveParadyn(t *testing.T) {
	a, err := quickSuite(t).Run("adaptive-paradyn")
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != core.Figure || len(a.Series) != 3 {
		t.Fatalf("artifact shape: %+v", a)
	}
}

// Package raceflag reports at compile time whether the race detector
// is active. Allocation-budget tests use it to skip themselves under
// `go test -race` (make check), where the instrumentation itself
// allocates and testing.AllocsPerRun counts are meaningless.
package raceflag

//go:build !race

package raceflag

// Enabled reports that this binary was built with -race.
const Enabled = false

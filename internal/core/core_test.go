package core

import (
	"errors"
	"strings"
	"testing"
)

func validSpec() ISSpec {
	return ISSpec{
		Name:             "test",
		Analysis:         OffLine,
		Platform:         "simulated multicomputer",
		LIS:              "library with local buffers",
		ISM:              "trace file merger",
		TP:               "parallel I/O",
		ManagementPolicy: "static",
	}
}

func TestClassificationStrings(t *testing.T) {
	if OffLine.String() != "Off-line" || OnLine.String() != "On-line" || OnAndOffLine.String() != "On-/Off-line" {
		t.Fatal("analysis names")
	}
	if HardCoded.String() != "Hard-coded" || ApplicationSpecific.String() != "Application-specific" {
		t.Fatal("synthesis names")
	}
	if Static.String() != "Static" || Adaptive.String() != "Adaptive" || AppSpecificManagement.String() != "Application-specific" {
		t.Fatal("management names")
	}
}

func TestISSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	s := validSpec()
	s.TP = ""
	if s.Validate() == nil {
		t.Fatal("incomplete spec accepted")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseRequirements.String() != "requirements" || PhaseSynthesis.String() != "synthesis" {
		t.Fatal("phase names")
	}
	if Phase(99).String() == "" {
		t.Fatal("unknown phase should render")
	}
}

func TestCycleFlow(t *testing.T) {
	c := NewCycle("picl")
	// Spec before requirements is rejected.
	if err := c.Specify(validSpec()); err == nil {
		t.Fatal("spec accepted before requirements")
	}
	c.Require("R1", "off-line trace analysis with bounded perturbation")
	if err := c.Specify(validSpec()); err != nil {
		t.Fatal(err)
	}
	// Later phases require specification.
	if err := c.Note(PhaseModeling, "M/G/1 buffer model"); err != nil {
		t.Fatal(err)
	}
	if err := c.Note(PhaseParameterization, "l=10..100, alpha in {0.0008,0.007,2}"); err != nil {
		t.Fatal(err)
	}
	if c.ReadyForSynthesis() {
		t.Fatal("ready without evaluation")
	}
	if err := c.Note(PhaseEvaluation, "FAOF preferable on flushing frequency"); err != nil {
		t.Fatal(err)
	}
	if !c.ReadyForSynthesis() {
		t.Fatal("not ready after all phases")
	}
	if err := c.Note(PhaseFeedback, "choose FAOF"); err != nil {
		t.Fatal(err)
	}
	if got := c.Notes(PhaseModeling); len(got) != 1 || got[0] != "M/G/1 buffer model" {
		t.Fatalf("notes %v", got)
	}
	if !strings.Contains(c.Summary(), "picl") {
		t.Fatal("summary missing system name")
	}
	if err := c.Note(Phase(42), "x"); err == nil {
		t.Fatal("invalid phase accepted")
	}
}

func TestCycleGateBlocksEarlyModeling(t *testing.T) {
	c := NewCycle("x")
	if err := c.Note(PhaseModeling, "premature"); err == nil {
		t.Fatal("modeling accepted before requirements/spec")
	}
}

func TestArtifactValidate(t *testing.T) {
	good := &Artifact{
		ID: "t", Title: "T", Kind: Table,
		Headers: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Artifact{ID: "t", Title: "T", Kind: Table,
		Headers: []string{"a"}, Rows: [][]string{{"1", "2"}}}
	if bad.Validate() == nil {
		t.Fatal("ragged table accepted")
	}
	if (&Artifact{Title: "x", Kind: Table}).Validate() == nil {
		t.Fatal("missing id accepted")
	}
	fig := &Artifact{ID: "f", Title: "F", Kind: Figure,
		Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1, 2}}}}
	if fig.Validate() == nil {
		t.Fatal("mismatched series accepted")
	}
	fig2 := &Artifact{ID: "f", Title: "F", Kind: Figure,
		Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{1},
			YLo: []float64{0}, YHi: []float64{2, 3}}}}
	if fig2.Validate() == nil {
		t.Fatal("mismatched bands accepted")
	}
	if (&Artifact{ID: "x", Title: "x", Kind: ArtifactKind(9)}).Validate() == nil {
		t.Fatal("unknown kind accepted")
	}
	if (&Artifact{ID: "d", Title: "D", Kind: Diagram}).Validate() == nil {
		t.Fatal("empty diagram accepted")
	}
	if err := (&Artifact{ID: "d", Title: "D", Kind: Diagram, Text: "x"}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDiagrams(t *testing.T) {
	ds := Diagrams()
	if len(ds) != 8 {
		t.Fatalf("diagrams %d", len(ds))
	}
	wantIDs := map[string]bool{"fig1": true, "fig2": true, "fig3": true, "fig4": true,
		"fig6": true, "fig7": true, "fig8": true, "fig10": true}
	for _, d := range ds {
		if !wantIDs[d.ID] {
			t.Fatalf("unexpected diagram %s", d.ID)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", d.ID, err)
		}
		if d.Kind != Diagram || len(d.Notes) == 0 {
			t.Fatalf("%s: bad shape", d.ID)
		}
	}
}

func TestSuite(t *testing.T) {
	s := NewSuite()
	ok := Experiment{ID: "e1", Title: "E1", Run: func() (*Artifact, error) {
		return &Artifact{ID: "e1", Title: "E1", Kind: Table}, nil
	}}
	if err := s.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(ok); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := s.Register(Experiment{ID: "", Run: ok.Run}); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, found := s.Get("e1"); !found {
		t.Fatal("Get failed")
	}
	if ids := s.IDs(); len(ids) != 1 || ids[0] != "e1" {
		t.Fatalf("ids %v", ids)
	}
	a, err := s.Run("e1")
	if err != nil || a.ID != "e1" {
		t.Fatalf("run: %v %v", a, err)
	}
	if _, err := s.Run("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
	// Failing experiment propagates.
	s.Register(Experiment{ID: "bad", Title: "B", Run: func() (*Artifact, error) {
		return nil, errors.New("boom")
	}})
	if _, err := s.Run("bad"); err == nil {
		t.Fatal("error swallowed")
	}
	// Invalid artifact rejected.
	s.Register(Experiment{ID: "ragged", Title: "R", Run: func() (*Artifact, error) {
		return &Artifact{ID: "ragged", Title: "R", Kind: Table,
			Headers: []string{"a"}, Rows: [][]string{{"1", "2"}}}, nil
	}})
	if _, err := s.Run("ragged"); err == nil {
		t.Fatal("invalid artifact accepted")
	}
}

func TestRegistryMatchesPaper(t *testing.T) {
	reg := Registry()
	if len(reg) != 10 {
		t.Fatalf("registry rows %d", len(reg))
	}
	byName := map[string]ToolProfile{}
	for _, p := range reg {
		byName[p.Tool] = p
	}
	picl := byName["PICL"]
	if picl.Analysis != OffLine || picl.Synthesis != HardCoded || picl.Management != Static {
		t.Fatalf("PICL row %+v", picl)
	}
	paradyn := byName["Paradyn"]
	if paradyn.Analysis != OnLine || paradyn.Management != Adaptive ||
		paradyn.Evaluation != "Adaptive cost model" {
		t.Fatalf("Paradyn row %+v", paradyn)
	}
	falcon := byName["Falcon/Issos/ChaosMON"]
	if falcon.Management != AppSpecificManagement {
		t.Fatalf("Falcon row %+v", falcon)
	}
	if _, ok := byName["PRISM (this repository)"]; !ok {
		t.Fatal("PRISM row missing")
	}
}

func TestTable8Artifact(t *testing.T) {
	a := Table8()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.ID != "table8" || len(a.Rows) != 10 || len(a.Headers) != 7 {
		t.Fatalf("table8 shape: %d rows %d headers", len(a.Rows), len(a.Headers))
	}
}

func TestSpecAndMetricTables(t *testing.T) {
	st := SpecTable("table1", "Table 1", validSpec())
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(st.Rows) != 1 || st.Rows[0][0] != "Off-line" {
		t.Fatalf("spec table %v", st.Rows)
	}
	mt := MetricTable("table2", "Table 2", []MetricSpec{
		{Name: "m", Calculation: "c", Interpretation: "i"},
	})
	if err := mt.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(mt.Rows) != 1 || mt.Rows[0][2] != "i" {
		t.Fatalf("metric table %v", mt.Rows)
	}
}

package core

// ASCII renderings of the paper's architecture figures, so every
// numbered figure — not only the data plots — is regenerable by the
// experiment suite. The structure of each diagram mirrors the
// corresponding package layout of this repository; see the per-diagram
// note.

// Diagrams returns the architecture-figure artifacts keyed by id.
func Diagrams() []*Artifact {
	return []*Artifact{
		{
			ID:    "fig1",
			Title: "Figure 1: Two levels of a structured IS development approach",
			Kind:  Diagram,
			Text: `
  Higher-level qualitative considerations
  +------------------+        feedback from the evaluation process
  | IS Requirements  | <--------------------------------------------+
  +--------+---------+                                              |
           v                                                        |
  +------------------+                                     +--------+------+
  | System           |                                     | IS Evaluation |
  | Specifications   |                                     +--------^------+
  +--------+---------+                                              |
  ---------|--------------------------------------------------------|------
           v      Lower-level quantitative considerations           |
  +------------------+     +-------------------+     +--------------+-----+
  | IS Model         | --> | Parameterization  | --> | Model Calculations |
  +--------+---------+     +-------------------+     +--------------------+
           |
           v
  +------------------+
  | IS Synthesis     |
  +------------------+`,
			Notes: []string{
				"Implemented by core.Cycle: Require -> Specify -> Note(modeling/parameterization/evaluation) -> ReadyForSynthesis.",
			},
		},
		{
			ID:    "fig2",
			Title: "Figure 2: Components of a typical instrumentation system supporting an integrated tool environment",
			Kind:  Diagram,
			Text: `
  Target parallel/distributed system          Integrated parallel tool environment
  +--------------------------------+   +---------------------------------------------+
  | concurrent system nodes        |   | Instrumentation System Manager (ISM)        |
  |  +------+  +------+  +------+  |   |  +--------+   +---------------+   +-------+ |
  |  | app  |  | app  |  | app  |  |   |  | input  |-->| instrumentation|-->|output | |
  |  |procs |  |procs |  |procs |  |   |  | buffers|   | data processor |   |buffers| |
  |  +--+---+  +--+---+  +--+---+  |   |  +---^----+   +-------+-------+   +---+---+ |
  |     v         v         v      |   |      |                |               |     |
  |  +------+  +------+  +------+  | TP|      |         +------v------+        v     |
  |  | LIS  |  | LIS  |  | LIS  |--+-->|------+         | storage     |   +-------+  |
  |  +------+  +------+  +------+  |   |                | hierarchy   |   | tools |  |
  |   local interconnection network|   |                +-------------+   +---+---+  |
  +--------------------------------+   |   control <------------------- user interactions
                                       +---------------------------------------------+`,
			Notes: []string{
				"Implemented by isruntime: event (sensors) -> lis -> tp -> ism (input stages, orderer, spool/storage) -> env (tools).",
			},
		},
		{
			ID:    "fig3",
			Title: "Figure 3: Basic components and technologies for a typical integrated parallel tool environment",
			Kind:  Diagram,
			Text: `
  concurrent processes --- instrumentation data ---> [ integration technology ] --- data ---> tools
        ^                                              (centralized location)                  |
        +----------------------- control --------------------------------------- control <----+

  capture mechanisms     transfer mechanisms     presentation        types of tools
  - debugger based       - RPC                   - X/Motif           - performance evaluation
  - OS based             - sockets               - Tcl/Tk            - debugging
  - compiler based       - pipes                 - OpenGL            - steering
  - library based                                                    - visualization`,
			Notes: []string{
				"This repository's capture is library based, the TP offers channel (pipe) and TCP (socket) transports, and env provides the four tool classes.",
			},
		},
		{
			ID:    "fig4",
			Title: "Figure 4: Model for a concurrent LIS and ISM developed from the PICL IS",
			Kind:  Diagram,
			Text: `
  Concurrent computer system (P processors)
   p0        p1        p2   ...   pP-1        <- instrumented programs
    |         |         |           |            events ~ Poisson(alpha)
    v         v         v           v
  [l recs] [l recs] [l recs]    [l recs]      <- local buffers, capacity l
    \         |         |          /             (distributed service facility)
     \        |         |         /   flush = f(l) = c0 + c1*l
      v       v         v        v
  +---------------------------------------+
  | main instrumentation data buffer      |   <- front-end host (host service facility)
  +-------------------+-------------------+
                      v
              [ disk-based buffer ]           <- next storage-hierarchy level`,
			Notes: []string{
				"Analytics in internal/picl + internal/queueing; the host levels in isruntime/storage.",
			},
		},
		{
			ID:    "fig6",
			Title: "Figure 6: An overview of the Paradyn IS",
			Kind:  Diagram,
			Text: `
  Node 0                        Node P-1
  +--------------------+        +--------------------+
  | p0 p1 ... pn-1     |  ...   | p0 p1 ... pn-1     |   <- application processes
  |  \  |      /       |        |  \  |      /       |
  |   v v     v        |        |   v v     v        |
  |  [ Paradyn daemon ]|        |  [ Paradyn daemon ]|   <- LIS, one per node
  +---------+----------+        +---------+----------+
            \                             /
             v                           v
        +---------------------------------------+
        |      main Paradyn process (ISM)       |   <- host workstation
        +---------------------------------------+`,
			Notes: []string{
				"Live counterpart: isruntime/lis.Daemon per node serving bounded pipes, forwarding to one ism.ISM.",
			},
		},
		{
			ID:    "fig7",
			Title: "Figure 7: Paradyn instrumentation system model in terms of the LIS components and the ISM",
			Kind:  Diagram,
			Text: `
  node i:   p0   p1  ...  pn-1        <- application processes
             |    |        |
             v    v        v
           [====][====]  [====]       <- per-process kernel pipes (bounded buffers)
             \    |        /
              v   v       v
            (  Pd_i daemon  )         <- one server per node (LIS)
                   |
                   v      network delays (random arrival sequence)
              \ \  |  / /
               v v v v v
            ( main Paradyn )          <- single-server ISM queue
               process`,
			Notes: []string{
				"Simulated by internal/rocc (queueing of sweeps through CPU and network).",
			},
		},
		{
			ID:    "fig8",
			Title: "Figure 8: The resource occupancy (ROCC) model for the Paradyn IS",
			Kind:  Diagram,
			Text: `
  processes generating requests             system resources
  +--------------------------+         +----------------------+
  | instrumented application |--CPU--->|  [ CPU ]  quantum q  |--+
  | processes                |         |   round-robin queue  |  |
  +--------------------------+         +----------------------+  |
  | instrumentation system   |--CPU--->|                      |  | time out /
  | process (daemon)         |--net--->|  [ Network ] FCFS    |  | completion
  +--------------------------+         |    queue             |  |
  | other user processes     |--CPU--->|                      |  |
  +--------------------------+         +----------------------+  |
        ^                                                        |
        +---- triggering of subsequent request ------------------+`,
			Notes: []string{
				"internal/rocc.CPU implements the preemptive round-robin resource; sim.Resource the FCFS network.",
			},
		},
		{
			ID:    "fig10",
			Title: "Figure 10: Models for the SISO and MISO configurations of the Vista ISM",
			Kind:  Diagram,
			Text: `
  SISO                                        MISO
  from all processes                          from process 0 ... P-1
        |                                        |   |   |
        v                                        v   v   v
  [ single input (priority) queue ]          [q0] [q1] ... [qP-1]   <- per-process
        |                                        \   |   /             input queues
        v                                         v  v  v
  ( data processor )  service ~ Normal        ( data processor )
        |                                            |
        v                                            v
  [ output FIFO queue ] --> tool              [ output FIFO queue ] --> tool`,
			Notes: []string{
				"Simulated by internal/vista; the live counterparts are ism's SISO/MISO input stages.",
			},
		},
	}
}

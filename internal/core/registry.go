package core

// The representative-tool registry behind Table 8: "Summary of IS
// features of some representative parallel tools" (§4). Each profile
// records the classification of one published instrumentation system
// along the §2.4 dimensions. PRISM (this repository's synthesized IS)
// is included as a tenth row, classified by the same scheme.

// ToolProfile classifies one parallel tool's instrumentation system.
type ToolProfile struct {
	Tool       string
	Analysis   AnalysisSupport
	LIS        string
	ISM        string
	Synthesis  SynthesisApproach
	Management ManagementApproach
	Evaluation string // evaluation approach; "—" when none documented
}

// Registry returns the Table 8 tool profiles in the paper's row order,
// with PRISM appended.
func Registry() []ToolProfile {
	return []ToolProfile{
		{
			Tool:       "PICL",
			Analysis:   OffLine,
			LIS:        "Local buffers using runtime library",
			ISM:        "Trace file",
			Synthesis:  HardCoded,
			Management: Static,
			Evaluation: "—",
		},
		{
			Tool:       "AIMS",
			Analysis:   OffLine,
			LIS:        "Library",
			ISM:        "Trace file",
			Synthesis:  HardCoded,
			Management: Static,
			Evaluation: "—",
		},
		{
			Tool:       "Pablo",
			Analysis:   OffLine,
			LIS:        "Library",
			ISM:        "Trace file",
			Synthesis:  HardCoded,
			Management: Adaptive,
			Evaluation: "—",
		},
		{
			Tool:       "Paradyn",
			Analysis:   OnLine,
			LIS:        "Local daemon",
			ISM:        "Main Paradyn process",
			Synthesis:  ApplicationSpecific,
			Management: Adaptive,
			Evaluation: "Adaptive cost model",
		},
		{
			Tool:       "Falcon/Issos/ChaosMON",
			Analysis:   OnAndOffLine,
			LIS:        "Resident monitor",
			ISM:        "Central monitor",
			Synthesis:  ApplicationSpecific,
			Management: AppSpecificManagement,
			Evaluation: "Evaluation of the factors that affect perturbation",
		},
		{
			Tool:       "ParAide (TAM)",
			Analysis:   OnAndOffLine,
			LIS:        "Library",
			ISM:        "Event trace server",
			Synthesis:  HardCoded,
			Management: Static,
			Evaluation: "Accountable invasiveness",
		},
		{
			Tool:       "SPI",
			Analysis:   OnAndOffLine,
			LIS:        "Library",
			ISM:        "Event-Action machines",
			Synthesis:  ApplicationSpecific,
			Management: AppSpecificManagement,
			Evaluation: "Accountable invasiveness",
		},
		{
			Tool:       "VIZIR",
			Analysis:   OnAndOffLine,
			LIS:        "Library",
			ISM:        "VIZIR front-end",
			Synthesis:  HardCoded,
			Management: Static,
			Evaluation: "—",
		},
		{
			Tool:       "Vista (P'RISM)",
			Analysis:   OnAndOffLine,
			LIS:        "Library with event forwarding, no local buffers",
			ISM:        "Data processor with causal ordering",
			Synthesis:  ApplicationSpecific,
			Management: Static,
			Evaluation: "Structured modeling and evaluation (this paper)",
		},
		{
			Tool:       "PRISM (this repository)",
			Analysis:   OnAndOffLine,
			LIS:        "Buffered (FOF/FAOF), daemon, or forwarding",
			ISM:        "SISO/MISO manager with causal ordering and spooling",
			Synthesis:  ApplicationSpecific,
			Management: Adaptive,
			Evaluation: "Structured modeling, simulation and live measurement",
		},
	}
}

// Table8 renders the registry as the Table 8 artifact.
func Table8() *Artifact {
	a := &Artifact{
		ID:    "table8",
		Title: "Table 8: Summary of IS features of some representative parallel tools",
		Kind:  Table,
		Headers: []string{
			"Tool", "Analysis/Visualization", "LIS", "ISM",
			"Synthesis", "Management", "Evaluation",
		},
	}
	for _, p := range Registry() {
		a.Rows = append(a.Rows, []string{
			p.Tool, p.Analysis.String(), p.LIS, p.ISM,
			p.Synthesis.String(), p.Management.String(), p.Evaluation,
		})
	}
	a.Notes = append(a.Notes,
		"Rows 1-9 transcribe the paper's Table 8; the PRISM row classifies this repository's synthesized IS by the same scheme.")
	return a
}

// SpecTable renders an ISSpec as a Tables 1/4/6-style artifact.
func SpecTable(id, title string, spec ISSpec) *Artifact {
	return &Artifact{
		ID:    id,
		Title: title,
		Kind:  Table,
		Headers: []string{
			"Analysis Requirements", "Platform", "LIS", "ISM", "TP", "Management Policy",
		},
		Rows: [][]string{{
			spec.Analysis.String(), spec.Platform, spec.LIS, spec.ISM,
			spec.TP, spec.ManagementPolicy,
		}},
	}
}

// MetricTable renders metric specifications as a Tables 2/5/7-style
// artifact.
func MetricTable(id, title string, metrics []MetricSpec) *Artifact {
	a := &Artifact{
		ID:      id,
		Title:   title,
		Kind:    Table,
		Headers: []string{"Metric", "Calculation", "Interpretation"},
	}
	for _, m := range metrics {
		a.Rows = append(a.Rows, []string{m.Name, m.Calculation, m.Interpretation})
	}
	return a
}

package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The parallel replication engine. The paper's evaluation method is
// replication-heavy by construction — every stochastic table and
// figure is the mean of r independent simulation replications — and
// the replications are embarrassingly parallel once their seeds are
// derived per-identity (SeedFor) instead of from loop state. Replicate
// is the single execution primitive the whole suite funnels through:
// a bounded worker pool whose observable behavior (which function runs
// with which index, where the result lands) is identical to the serial
// loop it replaces.

// Replicate runs fn(i) for every i in [0, n), at most parallelism at
// a time. parallelism <= 0 means runtime.GOMAXPROCS(0); parallelism 1
// degenerates to the plain serial loop.
//
// Callers collect results by writing to pre-sized, per-index slots
// (vals[i] = ...), which keeps aggregation order independent of
// completion order: the engine guarantees each index is claimed by
// exactly one worker, so no synchronization is needed on the slots.
//
// On error the engine cancels: no new indices are claimed, in-flight
// calls finish, and the error from the lowest-indexed failed
// replication observed is returned.
func Replicate(n, parallelism int, fn func(i int) error) error {
	if fn == nil {
		return errors.New("core: Replicate needs a function")
	}
	if n <= 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		wg      sync.WaitGroup

		mu       sync.Mutex
		errIndex = n // lowest failed index seen so far
		firstErr error
	)
	worker := func() {
		defer wg.Done()
		for !stopped.Load() {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				mu.Lock()
				if i < errIndex {
					errIndex, firstErr = i, err
				}
				mu.Unlock()
				stopped.Store(true)
				return
			}
		}
	}
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go worker()
	}
	wg.Wait()
	return firstErr
}

// RunResult is the outcome of one experiment in a RunAll batch,
// including the wall-clock time the experiment took. Wall time lives
// here rather than in the Artifact so that artifacts stay byte-
// identical across runs — timing is an observation about the run, not
// part of the reproduced result.
type RunResult struct {
	ID       string
	Artifact *Artifact
	Elapsed  time.Duration
	Err      error
}

// RunAll executes the named experiments, at most parallelism at a
// time (parallelism <= 0 means runtime.GOMAXPROCS(0)), and returns
// one result per id in input order. Unlike Run it does not stop at
// the first failure: independent experiments keep running and each
// result carries its own error.
func (s *Suite) RunAll(ids []string, parallelism int) []RunResult {
	out := make([]RunResult, len(ids))
	// fn never returns an error: failures are recorded per-result so
	// one broken experiment cannot cancel its siblings.
	_ = Replicate(len(ids), parallelism, func(i int) error {
		start := time.Now()
		a, err := s.Run(ids[i])
		out[i] = RunResult{ID: ids[i], Artifact: a, Elapsed: time.Since(start), Err: err}
		return nil
	})
	return out
}

// Package core implements the paper's primary contribution: the
// structured approach to instrumentation system development and
// evaluation (Figure 1), together with the IS classification scheme of
// §2.4 and the machine-readable specification tables the case studies
// are described by (Tables 1, 4 and 6), the metric tables (Tables 2, 5
// and 7), and the representative-tool feature registry (Table 8).
//
// The approach is two-level: "on a higher-level, requirements of the
// IS are either determined by the developer or specified by the tool
// users. These requirements are transformed to detailed lower-level
// system specifications, which are subsequently mapped to a model
// representing the structure and dynamics of the IS. This model is
// parameterized and evaluated with respect to chosen performance
// metrics ... The evaluation results are then translated back to the
// higher-level ... Finally, the model becomes the blueprint for actual
// synthesis of the IS."
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// AnalysisSupport classifies when tools consume instrumentation data
// (§2.4: off-line versus on-line tool usage).
type AnalysisSupport int

// Analysis-support classes.
const (
	OffLine AnalysisSupport = iota
	OnLine
	OnAndOffLine
)

// String returns the class name as Table 8 prints it.
func (a AnalysisSupport) String() string {
	switch a {
	case OffLine:
		return "Off-line"
	case OnLine:
		return "On-line"
	default:
		return "On-/Off-line"
	}
}

// SynthesisApproach classifies how the IS software comes to be
// ("hard-coded into the rest of the environment or as a customizable
// application-specific module", §1).
type SynthesisApproach int

// Synthesis classes.
const (
	HardCoded SynthesisApproach = iota
	ApplicationSpecific
)

// String returns the class name.
func (s SynthesisApproach) String() string {
	if s == HardCoded {
		return "Hard-coded"
	}
	return "Application-specific"
}

// ManagementApproach classifies the data-management policy regime
// ("static, adaptive, or application-specific", §2.4).
type ManagementApproach int

// Management classes.
const (
	Static ManagementApproach = iota
	Adaptive
	AppSpecificManagement
)

// String returns the class name.
func (m ManagementApproach) String() string {
	switch m {
	case Static:
		return "Static"
	case Adaptive:
		return "Adaptive"
	default:
		return "Application-specific"
	}
}

// ISSpec is the lower-level system specification of an IS, the schema
// of the paper's Tables 1, 4 and 6.
type ISSpec struct {
	Name             string
	Analysis         AnalysisSupport
	Platform         string
	LIS              string
	ISM              string
	TP               string
	ManagementPolicy string
}

// Validate checks that the specification is complete.
func (s ISSpec) Validate() error {
	if s.Name == "" || s.Platform == "" || s.LIS == "" || s.ISM == "" ||
		s.TP == "" || s.ManagementPolicy == "" {
		return errors.New("core: incomplete IS specification")
	}
	return nil
}

// MetricSpec describes one evaluation metric, the schema of Tables 2,
// 5 and 7: what it is, how it is calculated, how to read it.
type MetricSpec struct {
	Name           string
	Calculation    string
	Interpretation string
}

// Requirement is a higher-level qualitative requirement that the
// structured approach starts from.
type Requirement struct {
	ID   string
	Text string
}

// Phase names one stage of the Figure 1 development cycle.
type Phase int

// Development phases in order.
const (
	PhaseRequirements Phase = iota
	PhaseSpecification
	PhaseModeling
	PhaseParameterization
	PhaseEvaluation
	PhaseFeedback
	PhaseSynthesis
	numPhases
)

var phaseNames = [...]string{
	"requirements", "specification", "modeling", "parameterization",
	"evaluation", "feedback", "synthesis",
}

// String returns the phase name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Cycle records one pass through the structured development approach:
// the artifacts and notes produced at each phase, including feedback
// iterations. It is deliberately a record, not an engine — the phases
// are carried out by the case-study packages; Cycle keeps the audit
// trail that makes the process inspectable.
type Cycle struct {
	System       string
	Requirements []Requirement
	Spec         ISSpec
	notes        map[Phase][]string
	completed    map[Phase]bool
}

// NewCycle starts a development cycle for the named system.
func NewCycle(system string) *Cycle {
	return &Cycle{
		System:    system,
		notes:     map[Phase][]string{},
		completed: map[Phase]bool{},
	}
}

// Require adds a higher-level requirement.
func (c *Cycle) Require(id, text string) {
	c.Requirements = append(c.Requirements, Requirement{ID: id, Text: text})
	c.completed[PhaseRequirements] = true
}

// Specify records the lower-level specification. Requirements must
// exist first: the approach flows downward.
func (c *Cycle) Specify(spec ISSpec) error {
	if !c.completed[PhaseRequirements] {
		return errors.New("core: specify before requirements are stated")
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	c.Spec = spec
	c.completed[PhaseSpecification] = true
	return nil
}

// Note records a free-form artifact note at a phase (model
// description, parameter choice, evaluation conclusion, feedback).
func (c *Cycle) Note(p Phase, text string) error {
	if p < 0 || p >= numPhases {
		return fmt.Errorf("core: invalid phase %d", p)
	}
	order := []Phase{PhaseRequirements, PhaseSpecification}
	for _, pre := range order {
		if p > PhaseSpecification && !c.completed[pre] {
			return fmt.Errorf("core: phase %s before %s is complete", p, pre)
		}
	}
	c.notes[p] = append(c.notes[p], text)
	c.completed[p] = true
	return nil
}

// Notes returns the notes recorded at a phase.
func (c *Cycle) Notes(p Phase) []string { return append([]string(nil), c.notes[p]...) }

// Complete reports whether a phase has at least one artifact.
func (c *Cycle) Complete(p Phase) bool { return c.completed[p] }

// ReadyForSynthesis reports whether every phase preceding synthesis
// has artifacts — the gate the structured approach exists to enforce
// ("rapid prototyping and preliminary evaluation ... prior to the
// investment in programming effort").
func (c *Cycle) ReadyForSynthesis() bool {
	for p := PhaseRequirements; p < PhaseSynthesis; p++ {
		if p == PhaseFeedback {
			continue // feedback is optional on a first pass
		}
		if !c.completed[p] {
			return false
		}
	}
	return true
}

// Summary renders the cycle state, one phase per line.
func (c *Cycle) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "development cycle: %s\n", c.System)
	for p := PhaseRequirements; p < numPhases; p++ {
		mark := " "
		if c.completed[p] {
			mark = "x"
		}
		fmt.Fprintf(&b, "  [%s] %-16s (%d notes)\n", mark, p.String(), len(c.notes[p]))
	}
	return b.String()
}

// Artifact is the evaluated output of one experiment: a table or a
// figure's data, ready for rendering by package report.
type Artifact struct {
	ID    string // experiment id, e.g. "fig5", "table3"
	Title string
	Kind  ArtifactKind
	// Table content (Kind == Table).
	Headers []string
	Rows    [][]string
	// Figure content (Kind == Figure).
	XLabel, YLabel string
	Series         []Series
	// Diagram content (Kind == Diagram): preformatted ASCII art for
	// the paper's architecture figures.
	Text string
	// Notes carry interpretation, calibration and caveats.
	Notes []string
}

// ArtifactKind discriminates tables, data figures and architecture
// diagrams.
type ArtifactKind int

// Artifact kinds.
const (
	Table ArtifactKind = iota
	Figure
	Diagram
)

// Series is one named curve of a figure, with optional confidence
// bands.
type Series struct {
	Name     string
	X, Y     []float64
	YLo, YHi []float64 // optional, same length as Y when present
}

// Validate checks internal consistency of an artifact.
func (a *Artifact) Validate() error {
	if a.ID == "" || a.Title == "" {
		return errors.New("core: artifact needs id and title")
	}
	switch a.Kind {
	case Table:
		for i, row := range a.Rows {
			if len(row) != len(a.Headers) {
				return fmt.Errorf("core: artifact %s row %d has %d cells, want %d",
					a.ID, i, len(row), len(a.Headers))
			}
		}
	case Figure:
		for _, s := range a.Series {
			if len(s.X) != len(s.Y) {
				return fmt.Errorf("core: artifact %s series %q x/y length mismatch", a.ID, s.Name)
			}
			if s.YLo != nil && (len(s.YLo) != len(s.Y) || len(s.YHi) != len(s.Y)) {
				return fmt.Errorf("core: artifact %s series %q band length mismatch", a.ID, s.Name)
			}
		}
	case Diagram:
		if a.Text == "" {
			return fmt.Errorf("core: artifact %s diagram is empty", a.ID)
		}
	default:
		return fmt.Errorf("core: artifact %s has unknown kind", a.ID)
	}
	return nil
}

// Experiment binds an experiment id to the function that regenerates
// its artifact. Suite collects them per study.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Artifact, error)
}

// Suite is a registry of experiments keyed by id.
type Suite struct {
	exps map[string]Experiment
	ids  []string
}

// NewSuite returns an empty suite.
func NewSuite() *Suite { return &Suite{exps: map[string]Experiment{}} }

// Register adds an experiment; duplicate ids are an error.
func (s *Suite) Register(e Experiment) error {
	if e.ID == "" || e.Run == nil {
		return errors.New("core: experiment needs id and runner")
	}
	if _, dup := s.exps[e.ID]; dup {
		return fmt.Errorf("core: duplicate experiment %q", e.ID)
	}
	s.exps[e.ID] = e
	s.ids = append(s.ids, e.ID)
	return nil
}

// IDs returns the registered experiment ids in registration order.
func (s *Suite) IDs() []string { return append([]string(nil), s.ids...) }

// Get returns the experiment with the given id.
func (s *Suite) Get(id string) (Experiment, bool) {
	e, ok := s.exps[id]
	return e, ok
}

// Run executes one experiment and validates its artifact.
func (s *Suite) Run(id string) (*Artifact, error) {
	e, ok := s.exps[id]
	if !ok {
		known := append([]string(nil), s.ids...)
		sort.Strings(known)
		return nil, fmt.Errorf("core: unknown experiment %q (known: %s)",
			id, strings.Join(known, ", "))
	}
	a, err := e.Run()
	if err != nil {
		return nil, fmt.Errorf("core: experiment %s: %w", id, err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

package core

// Seed derivation for the replication engine.
//
// Every stochastic experiment in the suite draws its randomness from a
// seed derived here. The derivation must satisfy two properties the
// old ad-hoc arithmetic (seed = run*1000 + rep + offset) did not:
//
//  1. Injectivity in practice: no two (experiment, run, rep) triples
//     used anywhere in the suite may map to the same seed, or two
//     nominally independent replications would replay identical
//     stochastic paths and silently narrow the confidence intervals.
//     Linear formulas collide as soon as two experiments pick
//     overlapping strides; hashing makes collisions vanishingly rare
//     and the suite test asserts there are none.
//
//  2. Order independence: the seed depends only on the identity of the
//     replication, never on when or where it executes. That is what
//     makes the parallel engine bit-identical to serial execution —
//     workers may claim replications in any order, but each one
//     regenerates exactly the stream it would have seen in the loop.

// SeedFor derives the RNG seed for replication rep of run (sweep
// point, design cell, ...) of the named experiment. base is the
// caller's global seed offset (Options.Seed); different bases yield
// statistically unrelated suites, the sensitivity-check mechanism.
//
// The derivation is an FNV-1a absorption of the experiment name
// followed by SplitMix64 finalizer rounds over base, run and rep, so
// nearby inputs (rep vs rep+1, "fig5a" vs "fig5b") produce unrelated
// 64-bit outputs. It is pure and stable: the same inputs produce the
// same seed on every platform and release, which is what keeps
// artifacts byte-identical across serial and parallel runs.
func SeedFor(base uint64, experiment string, run, rep int) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(experiment); i++ {
		h ^= uint64(experiment[i])
		h *= fnvPrime
	}
	for _, v := range [...]uint64{base, uint64(int64(run)), uint64(int64(rep))} {
		h ^= v
		h = mix64(h)
	}
	return h
}

// mix64 is the SplitMix64 step: add the golden-gamma increment and
// finalize with xor-shift-multiply avalanching (Steele et al., the
// same finalizer package rng uses for stream seeding).
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

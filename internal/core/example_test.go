package core_test

import (
	"fmt"

	"prism/internal/core"
)

// Example walks the Figure 1 development cycle for a hypothetical IS:
// requirements first, then specification, then the lower-level phases;
// synthesis is gated on evaluation having happened — the discipline
// the structured approach exists to enforce.
func Example() {
	cycle := core.NewCycle("my-tracer")
	cycle.Require("R1", "off-line trace analysis with bounded perturbation")
	cycle.Require("R2", "support 64-node runs")

	err := cycle.Specify(core.ISSpec{
		Name:             "my-tracer",
		Analysis:         core.OffLine,
		Platform:         "simulated multicomputer",
		LIS:              "instrumentation library with local buffers",
		ISM:              "trace-file merger",
		TP:               "parallel I/O",
		ManagementPolicy: "static FAOF",
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("ready for synthesis after spec: %v\n", cycle.ReadyForSynthesis())

	cycle.Note(core.PhaseModeling, "M/G/1 queues per node buffer")
	cycle.Note(core.PhaseParameterization, "l=10..100, alpha from workload study")
	cycle.Note(core.PhaseEvaluation, "FAOF halves flushing frequency at alpha=0.007")
	fmt.Printf("ready for synthesis after evaluation: %v\n", cycle.ReadyForSynthesis())
	// Output:
	// ready for synthesis after spec: false
	// ready for synthesis after evaluation: true
}

// ExampleRegistry queries the Table 8 classification registry.
func ExampleRegistry() {
	for _, p := range core.Registry() {
		if p.Management == core.Adaptive {
			fmt.Println(p.Tool)
		}
	}
	// Output:
	// Pablo
	// Paradyn
	// PRISM (this repository)
}

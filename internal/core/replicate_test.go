package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestReplicateCoversEveryIndexOnce(t *testing.T) {
	for _, par := range []int{0, 1, 2, 7, 64} {
		n := 100
		counts := make([]atomic.Int32, n)
		if err := Replicate(n, par, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("par=%d: index %d ran %d times", par, i, got)
			}
		}
	}
}

func TestReplicateResultsIndependentOfCompletionOrder(t *testing.T) {
	n := 64
	serial := make([]int, n)
	if err := Replicate(n, 1, func(i int) error { serial[i] = i * i; return nil }); err != nil {
		t.Fatal(err)
	}
	parallel := make([]int, n)
	if err := Replicate(n, 8, func(i int) error { parallel[i] = i * i; return nil }); err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("index %d: serial %d parallel %d", i, serial[i], parallel[i])
		}
	}
}

func TestReplicateErrorCancels(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	err := Replicate(10_000, 4, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := ran.Load(); got == 10_000 {
		t.Fatal("error did not cancel remaining replications")
	}
}

func TestReplicateReportsLowestIndexedError(t *testing.T) {
	// Serial execution must deterministically return the first error.
	err := Replicate(10, 1, func(i int) error {
		if i >= 2 {
			return fmt.Errorf("rep %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "rep 2 failed" {
		t.Fatalf("err = %v", err)
	}
}

func TestReplicateEdgeCases(t *testing.T) {
	if err := Replicate(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := Replicate(-3, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("n<0: %v", err)
	}
	if err := Replicate(1, 4, nil); err == nil {
		t.Fatal("nil fn accepted")
	}
}

func TestSeedForProperties(t *testing.T) {
	// Golden values lock the derivation: changing it silently would
	// change every stochastic artifact in the repository.
	if got := SeedFor(0, "fig5a", 3, 4); got != 14397985881815499587 {
		t.Fatalf("SeedFor(0, fig5a, 3, 4) = %d", got)
	}
	if got := SeedFor(7, "factorial-vista", 0, 49); got != 17110247007460799444 {
		t.Fatalf("SeedFor(7, factorial-vista, 0, 49) = %d", got)
	}

	// Each coordinate must matter.
	base := SeedFor(0, "exp", 1, 2)
	if SeedFor(1, "exp", 1, 2) == base {
		t.Fatal("base offset ignored")
	}
	if SeedFor(0, "exp2", 1, 2) == base {
		t.Fatal("experiment name ignored")
	}
	if SeedFor(0, "exp", 2, 2) == base {
		t.Fatal("run ignored")
	}
	if SeedFor(0, "exp", 1, 3) == base {
		t.Fatal("rep ignored")
	}

	// The old linear scheme collided whenever run*1000+rep overlapped;
	// the hash must keep a dense block of triples collision-free.
	seen := map[uint64]string{}
	for _, exp := range []string{"a", "b", "ab", "ba"} {
		for run := 0; run < 100; run++ {
			for rep := 0; rep < 100; rep++ {
				s := SeedFor(0, exp, run, rep)
				key := fmt.Sprintf("%s/%d/%d", exp, run, rep)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: %s and %s -> %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
}

func TestRunAllMatchesRunAndRecordsTiming(t *testing.T) {
	s := NewSuite()
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("e%d", i)
		i := i
		err := s.Register(Experiment{ID: id, Title: id, Run: func() (*Artifact, error) {
			if i == 3 {
				return nil, errors.New("experiment 3 fails")
			}
			return &Artifact{ID: id, Title: id, Kind: Diagram, Text: fmt.Sprintf("art %d", i)}, nil
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	ids := s.IDs()
	results := s.RunAll(ids, 4)
	if len(results) != len(ids) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.ID != ids[i] {
			t.Fatalf("result %d out of order: %s", i, r.ID)
		}
		if i == 3 {
			if r.Err == nil {
				t.Fatal("experiment 3 error lost")
			}
			continue
		}
		if r.Err != nil || r.Artifact == nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.Artifact.Text != fmt.Sprintf("art %d", i) {
			t.Fatalf("result %d artifact mismatch", i)
		}
		if r.Elapsed < 0 {
			t.Fatalf("result %d has negative elapsed", i)
		}
	}
}

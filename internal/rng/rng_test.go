package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seeds diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling substreams produced identical first values")
	}
}

func TestZeroStateAvoided(t *testing.T) {
	s := New(0)
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		t.Fatal("all-zero xoshiro state")
	}
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("stream from seed 0 looks degenerate")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("Intn(10) never produced %d", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMoments(t *testing.T) {
	s := New(6)
	const rate = 0.25
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(rate)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.05 {
		t.Fatalf("exp mean %v, want ~4", mean)
	}
	variance := sumSq/n - mean*mean
	if math.Abs(variance-16) > 0.6 {
		t.Fatalf("exp variance %v, want ~16", variance)
	}
}

func TestExpMean(t *testing.T) {
	s := New(61)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.ExpMean(7.5)
	}
	if mean := sum / n; math.Abs(mean-7.5) > 0.12 {
		t.Fatalf("ExpMean(7.5) sample mean %v", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(8)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean %v, want ~10", mean)
	}
	if math.Abs(sd-3) > 0.05 {
		t.Fatalf("normal sd %v, want ~3", sd)
	}
}

func TestTruncNormalFloor(t *testing.T) {
	s := New(9)
	for i := 0; i < 50000; i++ {
		if v := s.TruncNormal(1, 5, 0.5); v < 0.5 {
			t.Fatalf("TruncNormal below floor: %v", v)
		}
	}
}

func TestErlangMean(t *testing.T) {
	s := New(10)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Erlang(4, 2)
	}
	if mean := sum / n; math.Abs(mean-2) > 0.03 {
		t.Fatalf("Erlang(4,2) mean %v, want ~2", mean)
	}
}

func TestErlangCoefficientOfVariation(t *testing.T) {
	// Erlang-k has CV = 1/sqrt(k); check k=4 gives CV ~ 0.5.
	s := New(11)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Erlang(4, 1)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	cv := math.Sqrt(sumSq/n-mean*mean) / mean
	if math.Abs(cv-0.5) > 0.02 {
		t.Fatalf("Erlang-4 CV %v, want ~0.5", cv)
	}
}

func TestPoissonMean(t *testing.T) {
	s := New(12)
	for _, mean := range []float64{0.5, 4, 40, 800} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) mean %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	s := New(13)
	if got := s.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d", got)
	}
	if got := s.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d", got)
	}
}

func TestParetoBounds(t *testing.T) {
	s := New(14)
	for i := 0; i < 50000; i++ {
		if v := s.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below scale: %v", v)
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	s := New(15)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.3) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %v", f)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(16)
	check := func(n uint8) bool {
		size := int(n%50) + 1
		p := s.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(17)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestHyperExpMean(t *testing.T) {
	s := New(18)
	d := HyperExpDist{P: 0.7, R1: 1, R2: 0.1}
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(s)
	}
	want := d.Mean()
	if got := sum / n; math.Abs(got-want) > 0.06*want {
		t.Fatalf("hyperexp mean %v, want ~%v", got, want)
	}
}

func TestDistMeans(t *testing.T) {
	s := New(19)
	dists := []Dist{
		Constant{Value: 3},
		Exponential{Rate: 0.5},
		Normal{Mu: 12, Sigma: 2},
		UniformDist{A: 2, B: 6},
		ErlangDist{K: 3, Rate: 1.5},
		HyperExpDist{P: 0.4, R1: 2, R2: 0.25},
	}
	const n = 100000
	for _, d := range dists {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += d.Sample(s)
		}
		got := sum / n
		want := d.Mean()
		if math.Abs(got-want) > 0.05*want+0.01 {
			t.Errorf("%T: sample mean %v, analytic mean %v", d, got, want)
		}
	}
}

func TestParetoDistMeanDivergence(t *testing.T) {
	d := ParetoDist{Xm: 5, Alpha: 0.8}
	if got := d.Mean(); got != 5 {
		t.Fatalf("divergent Pareto mean should fall back to scale, got %v", got)
	}
	d2 := ParetoDist{Xm: 2, Alpha: 3}
	if got := d2.Mean(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Pareto(2,3) mean %v, want 3", got)
	}
}

func TestExpPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(-1) did not panic")
		}
	}()
	New(1).Exp(-1)
}

func TestErlangPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Erlang(0, 1) did not panic")
		}
	}()
	New(1).Erlang(0, 1)
}

func TestUniformRange(t *testing.T) {
	s := New(20)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-3, 9)
		if v < -3 || v >= 9 {
			t.Fatalf("Uniform(-3,9) out of range: %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = s.Uint64()
	}
	_ = sink
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Exp(1)
	}
	_ = sink
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = s.Normal(0, 1)
	}
	_ = sink
}

// Package rng provides deterministic, splittable pseudo-random number
// streams and the random-variate generators used by the PRISM simulation
// substrates.
//
// All experiments in this repository take explicit seeds so that every
// table and figure is exactly regenerable. The generator is a
// xoshiro256** core seeded through SplitMix64, which is independent of
// the Go runtime's math/rand so results are stable across Go releases.
//
// A Stream is not safe for concurrent use; derive one stream per
// simulated entity with Split, which produces statistically independent
// substreams (the standard trick for reproducible parallel simulation).
package rng

import "math"

// Stream is a deterministic pseudo-random number stream.
// The zero value is not usable; construct streams with New or Split.
type Stream struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next value.
// It is used for seeding so that nearby seeds yield unrelated streams.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from seed. Two streams created with the
// same seed produce identical sequences.
func New(seed uint64) *Stream {
	var st Stream
	sm := seed
	for i := range st.s {
		st.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start in the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

// Split derives a new, statistically independent Stream from s.
// The parent stream advances; repeated Splits yield distinct children.
func (s *Stream) Split() *Stream {
	return New(s.Uint64() ^ 0xa5a5a5a5deadbeef)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Stream) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Float64 returns a uniform value in the half-open interval [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// positive returns a uniform value in (0, 1], suitable for logarithms.
func (s *Stream) positive() float64 {
	return 1.0 - s.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// simple rejection keeps the stream reproducible and unbiased.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := s.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Uniform returns a uniform value in [a, b).
func (s *Stream) Uniform(a, b float64) float64 {
	return a + (b-a)*s.Float64()
}

// Exp returns an exponentially distributed variate with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	return -math.Log(s.positive()) / rate
}

// ExpMean returns an exponentially distributed variate with the given mean.
func (s *Stream) ExpMean(mean float64) float64 {
	return s.Exp(1 / mean)
}

// Normal returns a normally distributed variate with mean mu and
// standard deviation sigma, using the Marsaglia polar method.
func (s *Stream) Normal(mu, sigma float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return mu + sigma*u*math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// TruncNormal returns a normal variate truncated below at lo, by
// resampling. It is used for service times that must be positive.
func (s *Stream) TruncNormal(mu, sigma, lo float64) float64 {
	for i := 0; i < 1000; i++ {
		if v := s.Normal(mu, sigma); v >= lo {
			return v
		}
	}
	return lo
}

// Erlang returns an Erlang-k variate with the given per-stage rate
// (the sum of k independent exponentials). It panics if k <= 0.
func (s *Stream) Erlang(k int, rate float64) float64 {
	if k <= 0 {
		panic("rng: Erlang with non-positive k")
	}
	prod := 1.0
	for i := 0; i < k; i++ {
		prod *= s.positive()
	}
	return -math.Log(prod) / rate
}

// HyperExp returns a two-phase hyperexponential variate: with
// probability p the rate is r1, otherwise r2. Useful for bursty
// (high-variance) instrumentation traffic.
func (s *Stream) HyperExp(p, r1, r2 float64) float64 {
	if s.Float64() < p {
		return s.Exp(r1)
	}
	return s.Exp(r2)
}

// Pareto returns a Pareto variate with scale xm and shape alpha,
// used for heavy-tailed compute bursts. It panics if alpha <= 0.
func (s *Stream) Pareto(xm, alpha float64) float64 {
	if alpha <= 0 {
		panic("rng: Pareto with non-positive alpha")
	}
	return xm / math.Pow(s.positive(), 1/alpha)
}

// Poisson returns a Poisson variate with the given mean, using
// Knuth's method for small means and normal approximation above 500.
func (s *Stream) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Bernoulli reports true with probability p.
func (s *Stream) Bernoulli(p float64) bool {
	return s.Float64() < p
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes indices [0, n) via the provided swap function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

package rng

// Dist is a random-variate distribution bound to no particular stream.
// Workload and model parameter files describe demands as Dists; the
// simulator draws from them with a per-entity Stream, which keeps the
// experiment configuration declarative and the sampling reproducible.
type Dist interface {
	// Sample draws one variate using the given stream.
	Sample(s *Stream) float64
	// Mean returns the distribution's expected value.
	Mean() float64
}

// Constant is a degenerate distribution that always yields Value.
type Constant struct{ Value float64 }

// Sample implements Dist.
func (c Constant) Sample(*Stream) float64 { return c.Value }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.Value }

// Exponential is an exponential distribution with the given Rate.
type Exponential struct{ Rate float64 }

// Sample implements Dist.
func (e Exponential) Sample(s *Stream) float64 { return s.Exp(e.Rate) }

// Mean implements Dist.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Normal is a normal distribution truncated below at Floor (variates
// below Floor are resampled), matching the paper's use of normally
// distributed service times that must remain positive.
type Normal struct {
	Mu, Sigma float64
	Floor     float64
}

// Sample implements Dist.
func (n Normal) Sample(s *Stream) float64 { return s.TruncNormal(n.Mu, n.Sigma, n.Floor) }

// Mean implements Dist. The truncation bias is negligible for the
// parameterizations used in this repository (Mu >> Sigma).
func (n Normal) Mean() float64 { return n.Mu }

// UniformDist is a uniform distribution on [A, B).
type UniformDist struct{ A, B float64 }

// Sample implements Dist.
func (u UniformDist) Sample(s *Stream) float64 { return s.Uniform(u.A, u.B) }

// Mean implements Dist.
func (u UniformDist) Mean() float64 { return (u.A + u.B) / 2 }

// ErlangDist is an Erlang-K distribution with per-stage rate Rate.
type ErlangDist struct {
	K    int
	Rate float64
}

// Sample implements Dist.
func (e ErlangDist) Sample(s *Stream) float64 { return s.Erlang(e.K, e.Rate) }

// Mean implements Dist.
func (e ErlangDist) Mean() float64 { return float64(e.K) / e.Rate }

// HyperExpDist is a two-phase hyperexponential distribution: phase one
// (rate R1) is chosen with probability P, otherwise phase two (rate R2).
type HyperExpDist struct {
	P      float64
	R1, R2 float64
}

// Sample implements Dist.
func (h HyperExpDist) Sample(s *Stream) float64 { return s.HyperExp(h.P, h.R1, h.R2) }

// Mean implements Dist.
func (h HyperExpDist) Mean() float64 { return h.P/h.R1 + (1-h.P)/h.R2 }

// ParetoDist is a Pareto distribution with scale Xm and shape Alpha.
type ParetoDist struct{ Xm, Alpha float64 }

// Sample implements Dist.
func (p ParetoDist) Sample(s *Stream) float64 { return s.Pareto(p.Xm, p.Alpha) }

// Mean implements Dist. It returns +Inf-free approximations: for
// Alpha <= 1 the theoretical mean diverges and the scale is returned,
// which callers treat as "undefined, use scale".
func (p ParetoDist) Mean() float64 {
	if p.Alpha <= 1 {
		return p.Xm
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

package vista

import (
	"math"
	"testing"
)

func TestAnalyticValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Sources = 0
	if _, err := Analytic(bad); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestAnalyticZeroSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkewMean = 0
	res, err := Analytic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutOfOrderProb != 0 || res.HoldMs != 0 {
		t.Fatalf("zero skew: %+v", res)
	}
	// Latency reduces to M/G/1 wait + service.
	if math.Abs(res.MeanLatencyMs-(res.QueueWaitMs+res.MeanServiceMs)) > 1e-12 {
		t.Fatalf("latency decomposition: %+v", res)
	}
}

func TestAnalyticStability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 5 // rho > 1 under MISO overhead
	cfg.Buffering = MISO
	res, err := Analytic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rho <= 1 {
		t.Fatalf("expected overload, rho = %v", res.Rho)
	}
	if !math.IsInf(res.QueueWaitMs, 1) {
		t.Fatalf("overloaded queue wait should be +Inf, got %v", res.QueueWaitMs)
	}
}

// TestAnalyticMatchesSimulation compares the closed-form approximation
// against long simulations across both configurations and a range of
// rates — Table 7's "queuing model evaluation and simulation" pairing.
func TestAnalyticMatchesSimulation(t *testing.T) {
	for _, b := range []Buffering{SISO, MISO} {
		for _, ia := range []float64{10, 25, 50, 100} {
			cfg := DefaultConfig()
			cfg.Buffering = b
			cfg.MeanInterArrival = ia
			cfg.Horizon = 2_000_000
			an, err := Analytic(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			relLat := math.Abs(an.MeanLatencyMs-sim.MeanLatencyMs) / sim.MeanLatencyMs
			if relLat > 0.12 {
				t.Fatalf("%s ia=%v: analytic latency %.3f vs sim %.3f (%.1f%% off)",
					b, ia, an.MeanLatencyMs, sim.MeanLatencyMs, relLat*100)
			}
			relOOO := math.Abs(an.OutOfOrderProb - sim.HoldBackRatio)
			if relOOO > 0.02 {
				t.Fatalf("%s ia=%v: analytic OOO %.4f vs sim hold-back %.4f",
					b, ia, an.OutOfOrderProb, sim.HoldBackRatio)
			}
		}
	}
}

func TestAnalyticOrderingClaims(t *testing.T) {
	// SISO latency below MISO for the same parameters.
	cfg := DefaultConfig()
	cfg.MeanInterArrival = 10
	siso, err := Analytic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Buffering = MISO
	miso, err := Analytic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if siso.MeanLatencyMs >= miso.MeanLatencyMs {
		t.Fatalf("analytic SISO %v not below MISO %v", siso.MeanLatencyMs, miso.MeanLatencyMs)
	}
	// Buffer rate decreases with inter-arrival time.
	cfg = DefaultConfig()
	cfg.MeanInterArrival = 10
	hi, _ := Analytic(cfg)
	cfg.MeanInterArrival = 100
	lo, _ := Analytic(cfg)
	if hi.BufferRatePerSec <= lo.BufferRatePerSec {
		t.Fatalf("buffer rate not decreasing: %v vs %v", hi.BufferRatePerSec, lo.BufferRatePerSec)
	}
}

package vista

import (
	"testing"

	"prism/internal/raceflag"
)

// Allocation budget for a full Vista run. Event generation pools its
// in-flight records, the processor reuses one completion closure, and
// the ready queue reuses its backing array, so a 50-second-horizon run
// (≈1,000 arrivals) costs a small fixed number of allocations rather
// than several per record. The budget is ~2.5x the measured count (66)
// to absorb drift; the pre-rewrite kernel cost ~7,000 allocations on
// this workload.
func TestRunAllocBudget(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	cfg := DefaultConfig()
	cfg.Horizon = 50_000
	cfg.Seed = 1
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 160
	if allocs > budget {
		t.Fatalf("vista.Run allocated %.0f objects, budget %d", allocs, budget)
	}
}

package vista

import (
	"math"

	"prism/internal/queueing"
)

// Analytic approximation of the Vista ISM model. Table 7 lists the
// metric calculation as "queuing model evaluation and simulation":
// this file supplies the evaluation half. The data processor is
// approximated as an M/G/1 queue (Poisson aggregate arrivals, general
// service from the truncated normal plus the configuration's overhead
// term), and the causal hold-back time is added as an independent
// resequencing delay.
//
// The approximation is accurate when the out-of-order fraction is
// moderate (holding delays roughly independent of queueing delays);
// the simulation remains the reference.

// AnalyticResult is the closed-form counterpart of Result.
type AnalyticResult struct {
	// Rho is the data processor's offered load.
	Rho float64
	// MeanServiceMs is the effective mean service time including the
	// configuration overhead.
	MeanServiceMs float64
	// QueueWaitMs is the Pollaczek–Khinchine mean wait in the
	// processor queue.
	QueueWaitMs float64
	// HoldMs is the expected causal hold-back time per arrival.
	HoldMs float64
	// MeanLatencyMs approximates the data-processing latency:
	// hold + queue wait + service.
	MeanLatencyMs float64
	// OutOfOrderProb is the probability an arrival is out of causal
	// order.
	OutOfOrderProb float64
	// BufferRatePerSec approximates the paper's average-buffer-length
	// metric: out-of-order arrivals per second.
	BufferRatePerSec float64
}

// Analytic evaluates the closed-form model for cfg.
func Analytic(cfg Config) (AnalyticResult, error) {
	var res AnalyticResult
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	lambda := 1 / cfg.MeanInterArrival // per ms, aggregate

	// Effective service moments. The truncated-normal base is
	// approximated by the untruncated moments (mu >> sigma in all
	// configurations used here).
	overhead := 0.0
	switch cfg.Buffering {
	case MISO:
		overhead = cfg.MISOPerBufferCost * float64(cfg.Sources)
	default:
		// SISO's scan term depends on held records; approximate with
		// the cost at the expected held count, computed below, via a
		// first pass at zero overhead. One fixed-point refinement is
		// plenty at these loads.
		overhead = 0
	}
	meanHold, pOOO := holdBack(cfg, lambda)
	if cfg.Buffering == SISO {
		expHeld := lambda * meanHold // Little's law on the hold stage
		overhead = cfg.SISOScanCost * math.Log2(1+expHeld)
	}
	meanS := cfg.ServiceMu + overhead
	varS := cfg.ServiceSigma * cfg.ServiceSigma
	mg1 := queueing.MG1{Lambda: lambda, MeanS: meanS, MeanS2: varS + meanS*meanS}
	res.Rho = mg1.Rho()
	res.MeanServiceMs = meanS
	res.QueueWaitMs = mg1.MeanWait()
	res.HoldMs = meanHold
	res.OutOfOrderProb = pOOO
	res.MeanLatencyMs = meanHold + res.QueueWaitMs + meanS
	res.BufferRatePerSec = pOOO * lambda * 1000
	return res, nil
}

// holdBack returns the expected causal hold time per arrival and the
// out-of-order probability under the exponential-skew model.
//
// Consider two consecutive events of one source, generated Δ apart
// (Δ ~ Exp(λ/P) for a uniformly split aggregate stream) with iid
// skews S1, S2 ~ Exp(1/m). The second arrives before the first —
// out of order — iff S1 > Δ + S2, which for exponentials gives
// P = (1/2)·m/(m + PΔmean)... computed exactly below; its expected
// residual wait is the memoryless mean skew m scaled by the same
// probability structure. Rather than chase the full order-statistics
// algebra for all predecessor chains, we use the two-event
// approximation, which is tight for moderate skew (hold chains longer
// than one predecessor are rare).
func holdBack(cfg Config, lambda float64) (meanHold, pOOO float64) {
	if cfg.SkewMean <= 0 {
		return 0, 0
	}
	m := cfg.SkewMean
	perSource := lambda / float64(cfg.Sources) // rate per source
	// Δ ~ Exp(perSource); S1, S2 ~ Exp(1/m).
	// P[out of order] = P[S1 - S2 > Δ]; D = S1 - S2 is Laplace with
	// P[D > x] = (1/2)e^{-x/m} for x >= 0.
	// P = E[(1/2)e^{-Δ/m}] with Δ ~ Exp(perSource):
	//   = (1/2) · perSource/(perSource + 1/m) = a/(2(1+a)), a = perSource·m.
	a := perSource * m
	pOOO = a / (2 * (1 + a))
	// Given out of order, the residual hold is the remaining skew of
	// the predecessor beyond the follower's arrival; by memorylessness
	// of S1 this residual is Exp(1/m): mean m. Unconditionally:
	meanHold = pOOO * m
	return meanHold, pOOO
}

// Package vista models the Vista (P´RISM) instrumentation system
// manager of §3.3: a network of two single-server queues (Figure 10)
// in which event records arrive from application processes, possibly
// out of causal order, are held in input buffer(s) until causally
// dispatchable, served by a data processor with normally distributed
// service times, and placed into an output buffer for tools.
//
// Two configurations are compared (§3.3.2): SISO — "one input buffer
// to store out-of-order instrumentation data from all the processes" —
// and MISO — "one buffer per each application process" (the Falcon
// arrangement). The configurations differ in their buffer-maintenance
// overhead: "maintenance of multiple buffers should incur more
// overhead, especially in accessing memory (including virtual memory),
// under high arrival rate conditions."
package vista

import (
	"errors"
	"math"

	"prism/internal/rng"
	"prism/internal/sim"
)

// Buffering selects the ISM input configuration of the model.
type Buffering int

// Configurations of §3.3.2.
const (
	SISO Buffering = iota
	MISO
)

// String returns the configuration mnemonic.
func (b Buffering) String() string {
	if b == SISO {
		return "SISO"
	}
	return "MISO"
}

// Config parameterizes one Vista ISM simulation.
type Config struct {
	// Buffering is the ISM configuration under test.
	Buffering Buffering
	// Sources is the number of application processes P.
	Sources int
	// MeanInterArrival is the aggregate mean inter-arrival time of
	// instrumentation data at the ISM (ms); the paper sweeps 10–100.
	MeanInterArrival float64
	// SkewMean is the mean of the exponential network skew each
	// event suffers between generation and ISM arrival (ms); the
	// skew is what produces out-of-causal-order arrivals.
	SkewMean float64
	// ServiceMu and ServiceSigma parameterize the data processor's
	// normally distributed service time (ms).
	ServiceMu, ServiceSigma float64
	// MISOPerBufferCost is the extra service cost per maintained
	// input buffer under MISO (ms); scales with Sources.
	MISOPerBufferCost float64
	// SISOScanCost is the extra service cost under SISO per log2 of
	// held records (shared priority-buffer management, ms).
	SISOScanCost float64
	// Horizon is the simulated time (ms).
	Horizon float64
	Seed    uint64
}

// DefaultConfig is the baseline parameterization of the Figure 11
// experiments.
func DefaultConfig() Config {
	return Config{
		Buffering:         SISO,
		Sources:           8,
		MeanInterArrival:  50,
		SkewMean:          15,
		ServiceMu:         6,
		ServiceSigma:      1.5,
		MISOPerBufferCost: 0.25,
		SISOScanCost:      0.3,
		Horizon:           200_000,
		Seed:              1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Sources < 1:
		return errors.New("vista: need at least one source")
	case c.MeanInterArrival <= 0:
		return errors.New("vista: mean inter-arrival must be positive")
	case c.SkewMean < 0:
		return errors.New("vista: negative skew")
	case c.ServiceMu <= 0 || c.ServiceSigma < 0:
		return errors.New("vista: bad service parameters")
	case c.MISOPerBufferCost < 0 || c.SISOScanCost < 0:
		return errors.New("vista: negative overhead costs")
	case c.Horizon <= 0:
		return errors.New("vista: horizon must be positive")
	}
	return nil
}

// Result reports the §3.3.2 metrics for one run (Table 7).
type Result struct {
	// Arrivals is the number of records that reached the ISM.
	Arrivals uint64
	// Dispatched is the number of records that reached the output
	// buffer.
	Dispatched uint64
	// OutOfOrder counts arrivals that had to be buffered because
	// they were not in causal order.
	OutOfOrder uint64
	// MeanLatencyMs is the mean data-processing latency: "the amount
	// of time between the arrival of instrumentation data at the ISM
	// and its arrival (after processing) at the output buffer".
	MeanLatencyMs float64
	// LatencyVariance is the sample variance of that latency.
	LatencyVariance float64
	// AvgBufferLength is the paper's metric: "the ratio of the total
	// number of instrumentation data records that arrive out of
	// order (and hence need to be buffered) to the total observation
	// time", here in records per second.
	AvgBufferLength float64
	// HoldBackRatio is Falcon's variant: out-of-order arrivals over
	// total arrivals.
	HoldBackRatio float64
	// MeanHeld is the time-average number of records held in input
	// buffers awaiting causal predecessors.
	MeanHeld float64
	// MeanInputOccupancy is the time-average number of records in the
	// input stage altogether — held back OR queued for the data
	// processor. This is the physical "average input buffer length"
	// of Figure 11's right panel: a slower processor (MISO's
	// buffer-maintenance overhead) keeps records in the input buffers
	// longer, so at high arrival rates SISO's occupancy is lower.
	MeanInputOccupancy float64
	// ProcessorUtilization is the data processor's busy fraction.
	ProcessorUtilization float64
}

type vistaEvent struct {
	src     int
	seq     uint64
	arrival float64
}

// Run executes one Vista ISM simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := sim.New()
	root := rng.New(cfg.Seed)
	arrStream := root.Split()
	skewStream := root.Split()
	svcStream := root.Split()
	srcStream := root.Split()

	var res Result
	var latency sim.Tally
	heldTW := sim.NewTimeWeighted(s)
	occupancyTW := sim.NewTimeWeighted(s)

	nextGenSeq := make([]uint64, cfg.Sources) // per-source generation counter
	nextArrive := make([]uint64, cfg.Sources) // next seq that is in causal order
	held := make([]map[uint64]vistaEvent, cfg.Sources)
	for i := range held {
		held[i] = map[uint64]vistaEvent{}
	}
	heldCount := 0
	// ready is the causally ordered FIFO awaiting service; the head
	// index lets the backing array be reused whenever it drains.
	var ready []vistaEvent
	readyHead := 0
	busy := false
	busyTW := sim.NewTimeWeighted(s)

	serviceTime := func() float64 {
		base := svcStream.TruncNormal(cfg.ServiceMu, cfg.ServiceSigma, 0.05)
		switch cfg.Buffering {
		case MISO:
			return base + cfg.MISOPerBufferCost*float64(cfg.Sources)
		default:
			return base + cfg.SISOScanCost*math.Log2(1+float64(heldCount))
		}
	}

	// The processor serves one record at a time, so one completion
	// closure built here serves every record; the in-service arrival
	// time rides in inService.
	var serve func()
	var inService float64
	finishService := func() {
		// Event reaches the output buffer.
		res.Dispatched++
		latency.Add(s.Now() - inService)
		busy = false
		busyTW.Set(0)
		serve()
	}
	serve = func() {
		if busy || readyHead == len(ready) {
			return
		}
		busy = true
		busyTW.Set(1)
		ev := ready[readyHead]
		readyHead++
		if readyHead == len(ready) {
			ready = ready[:0]
			readyHead = 0
		}
		occupancyTW.Add(-1)
		inService = ev.arrival
		s.Schedule(serviceTime(), finishService)
	}

	arrive := func(ev vistaEvent) {
		res.Arrivals++
		occupancyTW.Add(1)
		if ev.seq != nextArrive[ev.src] {
			// Out of causal order: a logically earlier event of this
			// source has not arrived yet; hold in the input buffer.
			res.OutOfOrder++
			held[ev.src][ev.seq] = ev
			heldCount++
			heldTW.Set(float64(heldCount))
			return
		}
		// In causal order: to the processor queue, then drain any
		// held successors this arrival unblocks.
		ready = append(ready, ev)
		nextArrive[ev.src]++
		for {
			nxt, ok := held[ev.src][nextArrive[ev.src]]
			if !ok {
				break
			}
			delete(held[ev.src], nextArrive[ev.src])
			heldCount--
			heldTW.Set(float64(heldCount))
			ready = append(ready, nxt)
			nextArrive[ev.src]++
		}
		serve()
	}

	// Generation: an aggregate Poisson stream; each event belongs to
	// a uniformly chosen source and suffers an exponential skew
	// before arriving at the ISM. In-flight events are pooled and the
	// skew hop is scheduled through ScheduleFunc, so generation→arrival
	// allocates nothing in steady state.
	var evFree []*vistaEvent
	onArrive := func(arg any) {
		e := arg.(*vistaEvent)
		e.arrival = s.Now()
		arrive(*e)
		evFree = append(evFree, e)
	}
	var generate func()
	generate = func() {
		src := srcStream.Intn(cfg.Sources)
		var e *vistaEvent
		if n := len(evFree); n > 0 {
			e = evFree[n-1]
			evFree = evFree[:n-1]
		} else {
			e = new(vistaEvent)
		}
		e.src, e.seq, e.arrival = src, nextGenSeq[src], 0
		nextGenSeq[src]++
		skew := 0.0
		if cfg.SkewMean > 0 {
			skew = skewStream.ExpMean(cfg.SkewMean)
		}
		s.ScheduleFunc(skew, onArrive, e)
		s.Schedule(arrStream.ExpMean(cfg.MeanInterArrival), generate)
	}
	s.Schedule(arrStream.ExpMean(cfg.MeanInterArrival), generate)

	if err := s.RunUntil(cfg.Horizon, 50_000_000); err != nil {
		return Result{}, err
	}

	res.MeanLatencyMs = latency.Mean()
	res.LatencyVariance = latency.Variance()
	res.AvgBufferLength = float64(res.OutOfOrder) / (cfg.Horizon / 1000)
	if res.Arrivals > 0 {
		res.HoldBackRatio = float64(res.OutOfOrder) / float64(res.Arrivals)
	}
	res.MeanHeld = heldTW.Mean()
	res.MeanInputOccupancy = occupancyTW.Mean()
	res.ProcessorUtilization = busyTW.Mean()
	return res, nil
}

package vista

import (
	"math"
	"testing"
)

func TestBufferingString(t *testing.T) {
	if SISO.String() != "SISO" || MISO.String() != "MISO" {
		t.Fatal("names")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mods := []func(*Config){
		func(c *Config) { c.Sources = 0 },
		func(c *Config) { c.MeanInterArrival = 0 },
		func(c *Config) { c.SkewMean = -1 },
		func(c *Config) { c.ServiceMu = 0 },
		func(c *Config) { c.ServiceSigma = -1 },
		func(c *Config) { c.MISOPerBufferCost = -1 },
		func(c *Config) { c.Horizon = 0 },
	}
	for i, mod := range mods {
		c := DefaultConfig()
		mod(&c)
		if c.Validate() == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	bad := DefaultConfig()
	bad.Horizon = -1
	if _, err := Run(bad); err == nil {
		t.Fatal("Run accepted bad config")
	}
}

func TestRunConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 50_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrivals == 0 {
		t.Fatal("no arrivals")
	}
	// ~50_000/50 = 1000 arrivals expected.
	if res.Arrivals < 700 || res.Arrivals > 1300 {
		t.Fatalf("arrivals %d", res.Arrivals)
	}
	if res.Dispatched > res.Arrivals {
		t.Fatalf("dispatched %d > arrivals %d", res.Dispatched, res.Arrivals)
	}
	// Nearly everything should eventually dispatch (small tail in flight).
	if float64(res.Dispatched) < 0.95*float64(res.Arrivals) {
		t.Fatalf("only %d of %d dispatched", res.Dispatched, res.Arrivals)
	}
	if res.MeanLatencyMs < cfg.ServiceMu {
		t.Fatalf("latency %v below service mean", res.MeanLatencyMs)
	}
	if res.HoldBackRatio < 0 || res.HoldBackRatio > 1 {
		t.Fatalf("hold-back ratio %v", res.HoldBackRatio)
	}
	if res.ProcessorUtilization <= 0 || res.ProcessorUtilization > 1 {
		t.Fatalf("utilization %v", res.ProcessorUtilization)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 20_000
	a, _ := Run(cfg)
	b, _ := Run(cfg)
	if a != b {
		t.Fatalf("same seed diverged")
	}
	cfg.Seed = 99
	c, _ := Run(cfg)
	if a == c {
		t.Fatal("different seeds identical")
	}
}

func TestSkewProducesOutOfOrder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 100_000
	cfg.MeanInterArrival = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OutOfOrder == 0 {
		t.Fatal("skewed arrivals produced no out-of-order events")
	}
	// Without skew everything from the aggregate stream arrives in
	// generation order per source: no holding.
	cfg.SkewMean = 0
	res0, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res0.OutOfOrder != 0 {
		t.Fatalf("zero skew still out of order: %d", res0.OutOfOrder)
	}
}

// TestFig11LatencyShape: at short inter-arrival times SISO has lower
// latency than MISO; the gap closes at long inter-arrival times.
func TestFig11LatencyShape(t *testing.T) {
	run := func(b Buffering, ia float64, seed uint64) Result {
		cfg := DefaultConfig()
		cfg.Buffering = b
		cfg.MeanInterArrival = ia
		cfg.Horizon = 300_000
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	avg := func(b Buffering, ia float64) float64 {
		sum := 0.0
		const reps = 5
		for seed := uint64(1); seed <= reps; seed++ {
			sum += run(b, ia, seed).MeanLatencyMs
		}
		return sum / reps
	}
	fastSISO, fastMISO := avg(SISO, 10), avg(MISO, 10)
	if fastSISO >= fastMISO {
		t.Fatalf("at high rate SISO (%v) should beat MISO (%v)", fastSISO, fastMISO)
	}
	slowSISO, slowMISO := avg(SISO, 100), avg(MISO, 100)
	gapFast := fastMISO - fastSISO
	gapSlow := slowMISO - slowSISO
	if gapSlow >= gapFast {
		t.Fatalf("gap should shrink at low rate: fast %v vs slow %v", gapFast, gapSlow)
	}
}

// TestFig11BufferLengthShape: average input buffer length decreases
// with inter-arrival time, and SISO is strictly better than MISO at
// high rates (the paper's right panel).
func TestFig11BufferLengthShape(t *testing.T) {
	measure := func(b Buffering, ia float64) (ooo, occ float64) {
		const reps = 5
		for seed := uint64(1); seed <= reps; seed++ {
			cfg := DefaultConfig()
			cfg.Buffering = b
			cfg.MeanInterArrival = ia
			cfg.Horizon = 300_000
			cfg.Seed = seed
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ooo += res.AvgBufferLength
			occ += res.MeanInputOccupancy
		}
		return ooo / reps, occ / reps
	}
	hiOOO, hiOcc := measure(SISO, 10)
	loOOO, loOcc := measure(SISO, 100)
	if hiOOO <= loOOO {
		t.Fatalf("ooo rate not decreasing with inter-arrival: %v <= %v", hiOOO, loOOO)
	}
	if hiOcc <= loOcc {
		t.Fatalf("occupancy not decreasing with inter-arrival: %v <= %v", hiOcc, loOcc)
	}
	misoHiOOO, misoHiOcc := measure(MISO, 10)
	if hiOOO > misoHiOOO*1.05 {
		t.Fatalf("SISO ooo rate %v materially worse than MISO %v at high rate", hiOOO, misoHiOOO)
	}
	if hiOcc >= misoHiOcc {
		t.Fatalf("SISO occupancy %v not below MISO %v at high rate", hiOcc, misoHiOcc)
	}
	// At low rates the configurations converge.
	_, misoLoOcc := measure(MISO, 100)
	gapHi := misoHiOcc - hiOcc
	gapLo := misoLoOcc - loOcc
	if gapLo >= gapHi {
		t.Fatalf("occupancy gap did not shrink at low rates: %v vs %v", gapLo, gapHi)
	}
}

// TestLatencyVarianceGrowsWithInterArrival reproduces "the data
// processing latency exhibits higher variance at longer inter-arrival
// times" — with a fixed horizon, slower streams also estimate from
// fewer events, so compare per-event variance directly.
func TestLatencyVarianceGrowsWithInterArrival(t *testing.T) {
	varAt := func(ia float64) float64 {
		cfg := DefaultConfig()
		cfg.MeanInterArrival = ia
		cfg.Horizon = 400_000
		sum := 0.0
		const reps = 5
		for seed := uint64(1); seed <= reps; seed++ {
			cfg.Seed = seed
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Relative variance: CV^2 of latency.
			sum += res.LatencyVariance / (res.MeanLatencyMs * res.MeanLatencyMs)
		}
		return sum / reps
	}
	fast := varAt(10)
	slow := varAt(100)
	if math.IsNaN(fast) || math.IsNaN(slow) {
		t.Fatal("NaN variance")
	}
	if slow <= 0 {
		t.Fatal("no variance at slow rate")
	}
}

func TestProcessorBusierAtHighRate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Horizon = 200_000
	cfg.MeanInterArrival = 10
	fast, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MeanInterArrival = 100
	slow, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fast.ProcessorUtilization <= slow.ProcessorUtilization {
		t.Fatalf("utilization should grow with rate: %v vs %v",
			fast.ProcessorUtilization, slow.ProcessorUtilization)
	}
}

package picl_test

import (
	"fmt"

	"prism/internal/picl"
)

// Example reproduces the core Table 3 comparison for one
// configuration: under FAOF the program is interrupted far less often
// per captured event than under FOF.
func Example() {
	p := picl.Params{
		L:     50,    // local buffer capacity (records)
		Alpha: 0.007, // per-buffer arrival rate (records/ms)
		P:     16,    // processors
		Cost:  picl.DefaultFlushCost(),
	}
	fmt.Printf("E[stopping time] FOF:  %.0f ms\n", p.FOFStoppingTimeMean())
	fmt.Printf("FOF  frequency: %.6f flushes/arrival\n", p.FOFFrequency())
	fmt.Printf("FAOF frequency: %.6f flushes/arrival\n", p.FAOFFrequency())
	fmt.Printf("FAOF within paper bound: %v\n", p.FAOFFrequency() <= p.FAOFFrequencyUpperBound())
	// Output:
	// E[stopping time] FOF:  7143 ms
	// FOF  frequency: 0.019311 flushes/arrival
	// FAOF frequency: 0.001558 flushes/arrival
	// FAOF within paper bound: true
}

// ExampleSimulateFOF validates an analytic frequency with the
// regenerative simulator.
func ExampleSimulateFOF() {
	p := picl.Params{L: 20, Alpha: 0.1, P: 16, Cost: picl.DefaultFlushCost()}
	res, err := picl.SimulateFOF(p, 500_000, 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	analytic := p.FOFFrequency()
	within := res.Frequency > 0.9*analytic && res.Frequency < 1.1*analytic
	fmt.Printf("simulated within 10%% of analytic: %v\n", within)
	// Output:
	// simulated within 10% of analytic: true
}

package picl

import (
	"sync"

	"prism/internal/isruntime/lis"
	"prism/internal/isruntime/tp"
	"prism/internal/rng"
	"prism/internal/trace"
)

// Measurement of the live Go LIS runtime — the third leg of the
// §3.1.3 validation triangle (analysis, simulation, measurement). The
// live runtime has no artificial flush stall, so its frequencies are
// compared against the analytic formulas with f(l) = 0: FOF expects
// exactly 1/l flushes per buffer arrival; FAOF expects one gang sweep
// per "system arrivals until the first buffer fills" (P·α·E[τ_min]
// with zero flush cost).
//
// With identical Poisson rates at every node, the sequence of node
// labels of successive system arrivals is iid uniform, so driving the
// live buffers with uniformly random node picks reproduces the same
// counting process the analytic model describes.

// MeasureResult reports a live-runtime measurement.
type MeasureResult struct {
	Flushes   uint64
	Arrivals  uint64
	Frequency float64 // flushes per arrival, normalized like SimResult
	Records   uint64  // records actually delivered to the sink
}

// countingConn is a tp.Conn that counts records sent into it.
type countingConn struct {
	mu      sync.Mutex
	records uint64
}

func (c *countingConn) Send(m tp.Message) error {
	c.mu.Lock()
	c.records += uint64(len(m.Records))
	c.mu.Unlock()
	return nil
}

func (c *countingConn) Recv() (tp.Message, error) { select {} }
func (c *countingConn) Close() error              { return nil }

func (c *countingConn) count() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.records
}

// MeasureFOF drives the live buffered LIS runtime under FOF with the
// given total number of system arrivals and returns per-buffer flush
// frequency.
func MeasureFOF(p Params, events int, seed uint64) (MeasureResult, error) {
	if err := p.Validate(); err != nil {
		return MeasureResult{}, err
	}
	st := rng.New(seed)
	conns := make([]*countingConn, p.P)
	buffers := make([]*lis.Buffered, p.P)
	for i := range buffers {
		conns[i] = &countingConn{}
		b, err := lis.NewBuffered(int32(i), p.L, conns[i])
		if err != nil {
			return MeasureResult{}, err
		}
		buffers[i] = b
	}
	var res MeasureResult
	for e := 0; e < events; e++ {
		node := st.Intn(p.P)
		buffers[node].Capture(trace.Record{Node: int32(node), Kind: trace.KindUser})
		res.Arrivals++
	}
	for i, b := range buffers {
		res.Flushes += b.Stats().Flushes
		res.Records += conns[i].count()
	}
	// Per-buffer frequency: each buffer saw ~events/P arrivals.
	if res.Arrivals > 0 {
		res.Frequency = float64(res.Flushes) / float64(res.Arrivals)
	}
	return res, nil
}

// MeasureFAOF drives the live runtime with a Gang coordinator (FAOF)
// and returns gang-sweep frequency per system arrival.
func MeasureFAOF(p Params, events int, seed uint64) (MeasureResult, error) {
	if err := p.Validate(); err != nil {
		return MeasureResult{}, err
	}
	st := rng.New(seed)
	conns := make([]*countingConn, p.P)
	buffers := make([]*lis.Buffered, p.P)
	for i := range buffers {
		conns[i] = &countingConn{}
		b, err := lis.NewBuffered(int32(i), p.L, conns[i])
		if err != nil {
			return MeasureResult{}, err
		}
		buffers[i] = b
	}
	gang := lis.NewGang(buffers...)
	var res MeasureResult
	for e := 0; e < events; e++ {
		node := st.Intn(p.P)
		buffers[node].Capture(trace.Record{Node: int32(node), Kind: trace.KindUser})
		res.Arrivals++
	}
	res.Flushes = gang.GangFlushes()
	for _, c := range conns {
		res.Records += c.count()
	}
	if res.Arrivals > 0 {
		res.Frequency = float64(res.Flushes) / float64(res.Arrivals)
	}
	return res, nil
}

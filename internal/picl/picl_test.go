package picl

import (
	"math"
	"testing"
)

func params(l int, alpha float64) Params {
	return Params{L: l, Alpha: alpha, P: 16, Cost: DefaultFlushCost()}
}

func TestValidate(t *testing.T) {
	if err := params(50, 0.007).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{L: 0, Alpha: 1, P: 1},
		{L: 1, Alpha: 0, P: 1},
		{L: 1, Alpha: 1, P: 0},
		{L: 10, Alpha: 1, P: 1, Cost: FlushCost{C0: -100}},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestFlushCost(t *testing.T) {
	f := FlushCost{C0: 180, C1: 1.5}
	if got := f.Of(10); math.Abs(got-195) > 1e-12 {
		t.Fatalf("f(10) = %v", got)
	}
	if DefaultFlushCost() != f {
		t.Fatal("default cost changed; update EXPERIMENTS.md calibration")
	}
}

func TestTable3StoppingTimes(t *testing.T) {
	p := params(50, 0.007)
	// E[τ(i)] = l/α.
	want := 50 / 0.007
	if got := p.FOFStoppingTimeMean(); math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("FOF stopping mean %v", got)
	}
	// FAOF mean within [l/(Pα), l/α].
	m := p.FAOFStoppingTimeMean()
	if m < p.FAOFStoppingTimeLowerBound() || m > p.FOFStoppingTimeMean() {
		t.Fatalf("FAOF mean %v outside [%v, %v]",
			m, p.FAOFStoppingTimeLowerBound(), p.FOFStoppingTimeMean())
	}
}

func TestStoppingTimeDistributions(t *testing.T) {
	p := params(20, 0.1)
	// CDF monotone in t, and FAOF survival below FOF survival.
	var prev float64 = -1
	for _, tt := range []float64{10, 100, 200, 300, 500} {
		c := p.FOFStoppingTimeCDF(tt)
		if c < prev {
			t.Fatal("CDF not monotone")
		}
		prev = c
		sFOF := 1 - c
		sFAOF := p.FAOFStoppingTimeSurvival(tt)
		if sFAOF > sFOF+1e-12 {
			t.Fatalf("FAOF survival %v above FOF %v at t=%v", sFAOF, sFOF, tt)
		}
	}
}

// TestFig5FrequencyProperties asserts the qualitative content of
// Figure 5 analytically: frequency decreases with buffer capacity,
// FAOF is below FOF everywhere, and the FOF/FAOF gap widens with the
// arrival rate.
func TestFig5FrequencyProperties(t *testing.T) {
	alphas := []float64{0.0008, 0.007, 2}
	var prevRatio float64
	for ai, alpha := range alphas {
		var prevFOF, prevFAOF float64 = math.Inf(1), math.Inf(1)
		var ratioAtL50 float64
		for l := 10; l <= 100; l += 10 {
			p := params(l, alpha)
			fof := p.FOFFrequency()
			faof := p.FAOFFrequency()
			bound := p.FAOFFrequencyUpperBound()
			if fof >= prevFOF || faof >= prevFAOF {
				t.Fatalf("α=%v l=%d: frequency not decreasing", alpha, l)
			}
			prevFOF, prevFAOF = fof, faof
			if faof >= fof {
				t.Fatalf("α=%v l=%d: FAOF %v not below FOF %v", alpha, l, faof, fof)
			}
			if faof > bound+1e-12 {
				t.Fatalf("α=%v l=%d: FAOF %v exceeds paper bound %v", alpha, l, faof, bound)
			}
			if l == 50 {
				ratioAtL50 = fof / faof
			}
		}
		if ai > 0 && ratioAtL50 <= prevRatio {
			t.Fatalf("FOF/FAOF gap did not widen with α: %v then %v", prevRatio, ratioAtL50)
		}
		prevRatio = ratioAtL50
	}
}

// TestFig5AxisScales pins the y-axis magnitudes of the three panels:
// ω(l=10) ≈ 0.1 at α=0.0008, ≈ 0.09 at α=0.007, ≈ 2.5e-3 at α=2.
func TestFig5AxisScales(t *testing.T) {
	cases := []struct {
		alpha float64
		want  float64
		tol   float64
	}{
		{0.0008, 0.1, 0.01},
		{0.007, 0.09, 0.01},
		{2, 0.0025, 0.0004},
	}
	for _, c := range cases {
		p := params(10, c.alpha)
		got := p.FOFFrequency()
		if math.Abs(got-c.want) > c.tol {
			t.Fatalf("α=%v: ω(10) = %v, want ≈ %v", c.alpha, got, c.want)
		}
	}
}

func TestSimulateFOFMatchesAnalytic(t *testing.T) {
	p := params(20, 0.1)
	res, err := SimulateFOF(p, 2_000_000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flushes < 100 {
		t.Fatalf("too few cycles: %d", res.Flushes)
	}
	want := p.FOFFrequency()
	if math.Abs(res.Frequency-want)/want > 0.05 {
		t.Fatalf("simulated FOF frequency %v vs analytic %v", res.Frequency, want)
	}
	// Stopping time CI should cover l/α.
	if !res.StoppingTime.Contains(p.FOFStoppingTimeMean()) {
		if math.Abs(res.StoppingTime.Mean-p.FOFStoppingTimeMean())/p.FOFStoppingTimeMean() > 0.05 {
			t.Fatalf("stopping time %v vs %v", res.StoppingTime, p.FOFStoppingTimeMean())
		}
	}
	// Regenerative CI should cover the analytic frequency.
	if !res.FrequencyCI.Contains(want) {
		if math.Abs(res.FrequencyCI.Mean-want)/want > 0.05 {
			t.Fatalf("frequency CI %v misses %v", res.FrequencyCI, want)
		}
	}
}

func TestSimulateFAOFMatchesAnalytic(t *testing.T) {
	p := params(20, 0.1)
	res, err := SimulateFAOF(p, 1_000_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flushes < 100 {
		t.Fatalf("too few cycles: %d", res.Flushes)
	}
	want := p.FAOFFrequency()
	if math.Abs(res.Frequency-want)/want > 0.06 {
		t.Fatalf("simulated FAOF frequency %v vs analytic %v", res.Frequency, want)
	}
	// Stopping times should match the min-Erlang mean.
	wantStop := p.FAOFStoppingTimeMean()
	if math.Abs(res.StoppingTime.Mean-wantStop)/wantStop > 0.05 {
		t.Fatalf("FAOF stopping time %v vs analytic %v", res.StoppingTime.Mean, wantStop)
	}
	// And respect the paper's bound.
	if res.Frequency > p.FAOFFrequencyUpperBound()*1.02 &&
		res.Frequency > p.FAOFFrequencyUpperBound()+1e-9 {
		// The bound is on the analytic mean; simulated noise allowed 2%.
		t.Fatalf("simulated FAOF frequency %v above bound %v",
			res.Frequency, p.FAOFFrequencyUpperBound())
	}
}

func TestSimulateRejectsBadParams(t *testing.T) {
	if _, err := SimulateFOF(Params{}, 100, 1); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := SimulateFAOF(Params{}, 100, 1); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestSimulateFAOFBelowFOF(t *testing.T) {
	p := params(30, 0.05)
	fof, err := SimulateFOF(p, 3_000_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	faof, err := SimulateFAOF(p, 1_500_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if faof.Frequency >= fof.Frequency {
		t.Fatalf("simulated FAOF %v not below FOF %v", faof.Frequency, fof.Frequency)
	}
}

func TestMeasureFOFLiveRuntime(t *testing.T) {
	// With zero flush cost, analytic FOF frequency is exactly 1/l.
	p := Params{L: 25, Alpha: 0.1, P: 8, Cost: FlushCost{}}
	res, err := MeasureFOF(p, 40_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 25
	if math.Abs(res.Frequency-want)/want > 0.02 {
		t.Fatalf("live FOF frequency %v, want ~%v", res.Frequency, want)
	}
	// No records lost (modulo partial buffers).
	if res.Records > res.Arrivals || res.Arrivals-res.Records > uint64(p.P*p.L) {
		t.Fatalf("record accounting: %d forwarded of %d", res.Records, res.Arrivals)
	}
}

func TestMeasureFAOFLiveRuntime(t *testing.T) {
	p := Params{L: 25, Alpha: 0.1, P: 8, Cost: FlushCost{}}
	res, err := MeasureFAOF(p, 40_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Frequency must respect the zero-cost paper bound 1/l and be
	// below the live FOF frequency.
	if res.Frequency > 1.0/25+1e-9 {
		t.Fatalf("live FAOF frequency %v above bound %v", res.Frequency, 1.0/25)
	}
	fof, err := MeasureFOF(p, 40_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frequency >= fof.Frequency {
		t.Fatalf("live FAOF %v not below FOF %v", res.Frequency, fof.Frequency)
	}
	// Analytic counterpart with zero cost: one sweep per PαE[τmin]
	// system arrivals.
	want := p.FAOFFrequency()
	if math.Abs(res.Frequency-want)/want > 0.05 {
		t.Fatalf("live FAOF %v vs analytic %v", res.Frequency, want)
	}
}

func TestMeasureRejectsBadParams(t *testing.T) {
	if _, err := MeasureFOF(Params{}, 10, 1); err == nil {
		t.Fatal("bad params accepted")
	}
	if _, err := MeasureFAOF(Params{}, 10, 1); err == nil {
		t.Fatal("bad params accepted")
	}
}

package picl

import (
	"prism/internal/rng"
	"prism/internal/sim"
	"prism/internal/stats"
)

// Regenerative simulation of the two policies, used in §3.1.3 to
// validate the analytical results ("these results were compared and
// validated with simulation and measurement results").

// SimResult reports one simulated run.
type SimResult struct {
	// Flushes is the number of flush operations (gang sweeps count
	// once under FAOF).
	Flushes uint64
	// Arrivals is the number of records captured into local buffers.
	Arrivals uint64
	// ElapsedMs is the simulated time.
	ElapsedMs float64
	// Frequency is flushes per arrival, normalized as the analytic
	// formulas are: flushes / (α·T) for FOF (per buffer) and
	// flushes / (P·α·T) for FAOF (per system).
	Frequency float64
	// StoppingTime is the confidence interval on the mean trace
	// stopping time (buffer fill time) observed across cycles.
	StoppingTime stats.Interval
	// FrequencyCI is the regenerative (renewal-reward) confidence
	// interval on the frequency.
	FrequencyCI stats.Interval
}

// SimulateFOF runs the FOF policy for one buffer (cycles are iid
// across buffers, so one long-run buffer suffices) until horizon.
func SimulateFOF(p Params, horizon float64, seed uint64) (SimResult, error) {
	if err := p.Validate(); err != nil {
		return SimResult{}, err
	}
	s := sim.New()
	st := rng.New(seed)
	var res SimResult
	var stopping []float64
	var cycles []stats.Cycle

	count := 0
	cycleStart := 0.0
	flushing := false
	// endFlush is built once: the flush completion captures nothing
	// per-flush, so the arrival→flush loop allocates no closures.
	endFlush := func() {
		cycles = append(cycles, stats.Cycle{
			Length: s.Now() - cycleStart,
			Reward: 1,
		})
		cycleStart = s.Now()
		count = 0
		flushing = false
	}
	var arrive func()
	arrive = func() {
		if !flushing {
			count++
			res.Arrivals++
			if count >= p.L {
				// Buffer full: flush for f(l); collection stops.
				stopping = append(stopping, s.Now()-cycleStart)
				flushing = true
				res.Flushes++
				s.Schedule(p.Cost.Of(p.L), endFlush)
			}
		}
		s.Schedule(st.Exp(p.Alpha), arrive)
	}
	s.Schedule(st.Exp(p.Alpha), arrive)
	if err := s.RunUntil(horizon, 100_000_000); err != nil {
		return SimResult{}, err
	}
	res.ElapsedMs = s.Now()
	res.Frequency = float64(res.Flushes) / (p.Alpha * res.ElapsedMs)
	finishSim(&res, stopping, cycles, p.Alpha, 1)
	return res, nil
}

// SimulateFAOF runs the FAOF policy across all P buffers until
// horizon. When any buffer reaches capacity, all buffers gang-flush
// for f(l) with collection stopped, then restart empty.
func SimulateFAOF(p Params, horizon float64, seed uint64) (SimResult, error) {
	if err := p.Validate(); err != nil {
		return SimResult{}, err
	}
	s := sim.New()
	root := rng.New(seed)
	var res SimResult
	var stopping []float64
	var cycles []stats.Cycle

	counts := make([]int, p.P)
	cycleStart := 0.0
	flushing := false
	endFlush := func() {
		cycles = append(cycles, stats.Cycle{Length: s.Now() - cycleStart, Reward: 1})
		cycleStart = s.Now()
		for i := range counts {
			counts[i] = 0
		}
		flushing = false
	}
	gangFlush := func() {
		stopping = append(stopping, s.Now()-cycleStart)
		flushing = true
		res.Flushes++
		s.Schedule(p.Cost.Of(p.L), endFlush)
	}
	for i := 0; i < p.P; i++ {
		i := i
		st := root.Split()
		var arrive func()
		arrive = func() {
			if !flushing {
				counts[i]++
				res.Arrivals++
				if counts[i] >= p.L {
					gangFlush()
				}
			}
			s.Schedule(st.Exp(p.Alpha), arrive)
		}
		s.Schedule(st.Exp(p.Alpha), arrive)
	}
	if err := s.RunUntil(horizon, 100_000_000); err != nil {
		return SimResult{}, err
	}
	res.ElapsedMs = s.Now()
	res.Frequency = float64(res.Flushes) / (float64(p.P) * p.Alpha * res.ElapsedMs)
	finishSim(&res, stopping, cycles, p.Alpha, p.P)
	return res, nil
}

func finishSim(res *SimResult, stopping []float64, cycles []stats.Cycle, alpha float64, procs int) {
	if len(stopping) >= 2 {
		res.StoppingTime = stats.MeanCI(stopping, 0.90)
	} else if len(stopping) == 1 {
		res.StoppingTime = stats.Interval{Mean: stopping[0], Lo: stopping[0], Hi: stopping[0], Confidence: 0.90}
	}
	if iv, err := stats.RenewalReward(cycles, 0.90); err == nil {
		// RenewalReward yields flushes per ms; convert to per arrival.
		scale := 1 / (float64(procs) * alpha)
		res.FrequencyCI = stats.Interval{
			Mean:       iv.Mean * scale,
			Lo:         iv.Lo * scale,
			Hi:         iv.Hi * scale,
			Confidence: iv.Confidence,
		}
	}
}

// Package picl models the PICL instrumentation system of §3.1: P
// processors, each with a local trace buffer of capacity l filling
// from an independent Poisson event stream of rate α, managed under
// one of two flush policies —
//
//   - FOF, "Flush One buffer when it Fills": the filling buffer alone
//     flushes, stalling its node for the message-passing time f(l);
//   - FAOF, "Flush All the buffers when One Fills": all P buffers are
//     gang-flushed as soon as the first fills (the Pablo/TAM policy).
//
// Table 3 of the paper gives the stopping-time distributions and the
// long-run flushing frequencies; Figure 5 plots frequency against
// buffer capacity for three arrival rates. Both are reproduced here
// analytically (via package queueing), by regenerative simulation (via
// package sim + stats), and by measurement of the live Go LIS runtime
// (via package isruntime/lis).
//
// Frequencies are normalized per arrival, as the paper's metric
// prescribes ("ratio of the number of flushes to the number of
// arrivals for a local buffer"): FOF per single-buffer arrival stream,
// FAOF per the whole system's arrival stream, since one gang flush is
// a single synchronized interruption of all P nodes. Message-passing
// time is "a linear function of l ... represented by the function
// f(l)".
package picl

import (
	"errors"

	"prism/internal/queueing"
)

// FlushCost is the linear flush (message-passing) cost model
// f(l) = C0 + C1·l, in milliseconds.
type FlushCost struct {
	C0, C1 float64
}

// Of evaluates f(l).
func (f FlushCost) Of(l int) float64 { return f.C0 + f.C1*float64(l) }

// DefaultFlushCost is calibrated so the analytic curves land on the
// y-axis scales of the paper's Figure 5 (see EXPERIMENTS.md):
// f(l) = 180 + 1.5·l ms.
func DefaultFlushCost() FlushCost { return FlushCost{C0: 180, C1: 1.5} }

// Params describes one PICL IS configuration.
type Params struct {
	// L is the local buffer capacity in records (the paper's l).
	L int
	// Alpha is the per-buffer Poisson arrival rate (records/ms).
	Alpha float64
	// P is the number of processors.
	P int
	// Cost is the flush cost model f(l).
	Cost FlushCost
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.L < 1:
		return errors.New("picl: buffer capacity must be >= 1")
	case p.Alpha <= 0:
		return errors.New("picl: arrival rate must be positive")
	case p.P < 1:
		return errors.New("picl: need at least one processor")
	case p.Cost.Of(p.L) < 0:
		return errors.New("picl: negative flush cost")
	}
	return nil
}

// FOFStoppingTimeMean returns E[τ_l(i)] = l·(1/α), the expected time
// for one buffer to fill under FOF (Table 3, FOF column).
func (p Params) FOFStoppingTimeMean() float64 {
	return queueing.ErlangMean(p.L, p.Alpha)
}

// FOFStoppingTimeCDF returns P[τ_l(i) <= t]: the Erlang(l, α) CDF
// (Table 3 "Distribution", FOF column).
func (p Params) FOFStoppingTimeCDF(t float64) float64 {
	return queueing.ErlangCDF(p.L, p.Alpha, t)
}

// FAOFStoppingTimeMean returns E[τ_l] = E[min of P Erlang(l, α)], the
// expected time until the first of the P buffers fills.
func (p Params) FAOFStoppingTimeMean() float64 {
	return queueing.MinErlangMean(p.P, p.L, p.Alpha)
}

// FAOFStoppingTimeLowerBound returns the paper's bound
// E[τ_l] >= l/(P·α) (Table 3): the total arrival stream of rate Pα
// must produce at least l records before any buffer can fill.
func (p Params) FAOFStoppingTimeLowerBound() float64 {
	return float64(p.L) / (float64(p.P) * p.Alpha)
}

// FAOFStoppingTimeSurvival returns P[τ_l > t] = (P[Erlang > t])^P
// (Table 3 "Distribution", FAOF column).
func (p Params) FAOFStoppingTimeSurvival(t float64) float64 {
	return queueing.MinErlangSurvival(p.P, p.L, p.Alpha, t)
}

// FOFFrequency returns ω_o = 1/(l + α·f(l)), the long-run number of
// flushes per arrival at one buffer under FOF (Table 3). Derivation:
// filling and flushing is a regenerative process (Smith's theorem,
// §3.1.3) with cycle time l/α + f(l); the flush rate 1/(l/α + f(l))
// divided by the arrival rate α gives 1/(l + α·f(l)).
func (p Params) FOFFrequency() float64 {
	return 1 / (float64(p.L) + p.Alpha*p.Cost.Of(p.L))
}

// FAOFFrequency returns ω_a: gang flushes per system arrival,
// 1/(Pα·(E[τ_min] + f(l))), using the exact mean of the minimum fill
// time.
func (p Params) FAOFFrequency() float64 {
	cycle := p.FAOFStoppingTimeMean() + p.Cost.Of(p.L)
	return 1 / (float64(p.P) * p.Alpha * cycle)
}

// FAOFFrequencyUpperBound returns the paper's closed-form bound
// ω_a <= 1/(l + P·α·f(l)) (Table 3), obtained by substituting the
// stopping-time lower bound l/(Pα) for E[τ_min].
func (p Params) FAOFFrequencyUpperBound() float64 {
	return 1 / (float64(p.L) + float64(p.P)*p.Alpha*p.Cost.Of(p.L))
}

package trace

// Batch-column codec: the per-column encoders and decoders shared by
// the columnar segment format (segment.go) and the transfer protocol's
// columnar wire frames (internal/isruntime/tp). Both encode a record
// run as seven concatenated columns:
//
//	0 time     delta-of-delta zigzag varints
//	1 logical  delta-of-delta zigzag varints (ingest ticks)
//	2 node     run-length (len uvarint, value zigzag varint)
//	3 process  run-length (len uvarint, value zigzag varint)
//	4 kind     dictionary (size uvarint, kinds) + RLE indexes
//	5 tag      delta zigzag varints
//	6 payload  delta zigzag varints
//
// Segments wrap the columns with a footer index (per-column offsets,
// time ranges, per-source spans) for query skipping; wire frames ship
// them bare behind a short header, since a frame is decoded whole or
// not at all. Keeping one implementation means a record stream costs
// the same bytes per record on the wire as it does at rest.
//
// Delta arithmetic is two's-complement wrapping in both directions, so
// every int64/uint64 bit pattern round-trips exactly. Decoders never
// panic on hostile input; structural failures wrap ErrBadSegment.

import (
	"encoding/binary"
	"fmt"
)

const numColumns = 7

var colNames = [numColumns]string{"time", "logical", "node", "process", "kind", "tag", "payload"}

// zigzag maps signed values to unsigned so small-magnitude deltas of
// either sign encode in few varint bytes.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// MaxColumnsSize bounds the encoded size of AppendColumns for n
// records: the worst case per record is two 10-byte delta-of-delta
// varints, two singleton RLE runs (1+5 bytes each), a 2-byte kind run,
// a 3-byte tag delta and a 10-byte payload delta, plus the kind
// dictionary and slack. Decoders use it to reject absurd length claims
// before buffering.
func MaxColumnsSize(n int) int { return 48*n + 320 }

// ColumnCodec encodes record batches as concatenated columns, reusing
// its scratch across calls so steady-state encoding performs no
// allocation beyond output growth. The zero value is ready. It is not
// safe for concurrent use; give each goroutine its own.
type ColumnCodec struct {
	kinds []byte
}

// AppendColumns appends the seven-column encoding of rs to dst and
// returns the extended slice. Decode with DecodeColumns and the same
// record count.
//
// The loops are specialized per field rather than routed through the
// closure-taking helpers segment projection uses: this is the per-batch
// wire path, and the indirect call per record per column is what the
// specialization removes.
func (cc *ColumnCodec) AppendColumns(dst []byte, rs []Record) []byte {
	var prev, prevDelta int64
	for i := range rs {
		v := rs[i].Time
		delta := v - prev
		dst = appendUvarint(dst, zigzag(delta-prevDelta))
		prev, prevDelta = v, delta
	}
	prev, prevDelta = 0, 0
	for i := range rs {
		v := int64(rs[i].Logical)
		delta := v - prev
		dst = appendUvarint(dst, zigzag(delta-prevDelta))
		prev, prevDelta = v, delta
	}
	for i := 0; i < len(rs); {
		v := rs[i].Node
		j := i + 1
		for j < len(rs) && rs[j].Node == v {
			j++
		}
		dst = appendUvarint(dst, uint64(j-i))
		dst = appendUvarint(dst, zigzag(int64(v)))
		i = j
	}
	for i := 0; i < len(rs); {
		v := rs[i].Process
		j := i + 1
		for j < len(rs) && rs[j].Process == v {
			j++
		}
		dst = appendUvarint(dst, uint64(j-i))
		dst = appendUvarint(dst, zigzag(int64(v)))
		i = j
	}
	dst, cc.kinds = appendKindsCol(dst, rs, cc.kinds)
	prev = 0
	for i := range rs {
		v := int64(rs[i].Tag)
		dst = appendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	prev = 0
	for i := range rs {
		v := rs[i].Payload
		dst = appendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	return dst
}

// DecodeColumns decodes exactly len(out) records from the concatenated
// column encoding in buf. The whole buffer must be consumed; trailing
// bytes, truncation, and malformed runs all fail with an error wrapping
// ErrBadSegment, and out is left in an unspecified state on failure.
// With out sized by the caller the decode performs no allocation.
//
// Like AppendColumns, the loops are specialized per field: the wire
// receive path decodes every batch through here, so the closure
// indirection the segment projections tolerate is removed, and the
// dominant one-byte varint case is resolved without a call (uvarint
// itself exceeds the inlining budget).
func DecodeColumns(buf []byte, out []Record) error {
	var prev, prevDelta int64
	for i := range out {
		var u uint64
		if len(buf) > 0 && buf[0] < 0x80 {
			u, buf = uint64(buf[0]), buf[1:]
		} else {
			var err error
			if u, buf, err = uvarintSlow(buf, colNames[0]); err != nil {
				return err
			}
		}
		delta := prevDelta + unzigzag(u)
		v := prev + delta
		out[i].Time = v
		prev, prevDelta = v, delta
	}
	prev, prevDelta = 0, 0
	for i := range out {
		var u uint64
		if len(buf) > 0 && buf[0] < 0x80 {
			u, buf = uint64(buf[0]), buf[1:]
		} else {
			var err error
			if u, buf, err = uvarintSlow(buf, colNames[1]); err != nil {
				return err
			}
		}
		delta := prevDelta + unzigzag(u)
		v := prev + delta
		out[i].Logical = uint64(v)
		prev, prevDelta = v, delta
	}
	for i := 0; i < len(out); {
		runLen, v, rest, err := rleRun(buf, colNames[2], len(out)-i)
		if err != nil {
			return err
		}
		buf = rest
		n := int32(v)
		for j := 0; j < runLen; j++ {
			out[i+j].Node = n
		}
		i += runLen
	}
	for i := 0; i < len(out); {
		runLen, v, rest, err := rleRun(buf, colNames[3], len(out)-i)
		if err != nil {
			return err
		}
		buf = rest
		p := int32(v)
		for j := 0; j < runLen; j++ {
			out[i+j].Process = p
		}
		i += runLen
	}
	buf, err := decodeKindsCol(buf, out)
	if err != nil {
		return err
	}
	prev = 0
	for i := range out {
		var u uint64
		if len(buf) > 0 && buf[0] < 0x80 {
			u, buf = uint64(buf[0]), buf[1:]
		} else {
			var err error
			if u, buf, err = uvarintSlow(buf, colNames[5]); err != nil {
				return err
			}
		}
		v := prev + unzigzag(u)
		out[i].Tag = uint16(v)
		prev = v
	}
	prev = 0
	for i := range out {
		var u uint64
		if len(buf) > 0 && buf[0] < 0x80 {
			u, buf = uint64(buf[0]), buf[1:]
		} else {
			var err error
			if u, buf, err = uvarintSlow(buf, colNames[6]); err != nil {
				return err
			}
		}
		v := prev + unzigzag(u)
		out[i].Payload = v
		prev = v
	}
	if len(buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes after columns", ErrBadSegment, len(buf))
	}
	return nil
}

// rleRun decodes one (runLength, value) pair, bounds-checking the run
// against the records remaining.
func rleRun(col []byte, name string, remaining int) (int, int64, []byte, error) {
	runLen, rest, err := uvarint(col, name)
	if err != nil {
		return 0, 0, nil, err
	}
	u, rest, err := uvarint(rest, name)
	if err != nil {
		return 0, 0, nil, err
	}
	if runLen == 0 || runLen > uint64(remaining) {
		return 0, 0, nil, fmt.Errorf("%w: %s run of %d exceeds remaining %d records", ErrBadSegment, name, runLen, remaining)
	}
	return int(runLen), unzigzag(u), rest, nil
}

// appendUvarint is binary.AppendUvarint with the dominant one-byte
// case inlined: well-shaped columns emit mostly sub-128 deltas and run
// lengths.
func appendUvarint(dst []byte, u uint64) []byte {
	if u < 0x80 {
		return append(dst, byte(u))
	}
	return binary.AppendUvarint(dst, u)
}

// appendDoD encodes a column as zigzag varints of second differences:
// near-monotone sequences (timestamps, ingest ticks) have near-zero
// curvature and cost one byte per record.
func appendDoD(dst []byte, rs []Record, get func(*Record) int64) []byte {
	var prev, prevDelta int64
	for i := range rs {
		v := get(&rs[i])
		delta := v - prev
		dst = appendUvarint(dst, zigzag(delta-prevDelta))
		prev, prevDelta = v, delta
	}
	return dst
}

// appendDelta encodes a column as zigzag varints of first differences.
func appendDelta(dst []byte, rs []Record, get func(*Record) int64) []byte {
	var prev int64
	for i := range rs {
		v := get(&rs[i])
		dst = appendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	return dst
}

// appendRLE encodes a column as (runLength uvarint, value zigzag
// varint) pairs — constant runs of any length cost a handful of bytes.
func appendRLE(dst []byte, rs []Record, get func(*Record) int64) []byte {
	for i := 0; i < len(rs); {
		v := get(&rs[i])
		j := i + 1
		for j < len(rs) && get(&rs[j]) == v {
			j++
		}
		dst = appendUvarint(dst, uint64(j-i))
		dst = appendUvarint(dst, zigzag(v))
		i = j
	}
	return dst
}

// appendKindsCol encodes the kind column as a first-appearance
// dictionary followed by run-length encoded dictionary indexes. The
// scratch slice is the caller's reusable dictionary buffer; the
// (possibly grown) slice is returned for reuse.
func appendKindsCol(dst []byte, rs []Record, scratch []byte) ([]byte, []byte) {
	var idx [256]int16
	for i := range idx {
		idx[i] = -1
	}
	scratch = scratch[:0]
	for i := range rs {
		k := byte(rs[i].Kind)
		if idx[k] < 0 {
			idx[k] = int16(len(scratch))
			scratch = append(scratch, k)
		}
	}
	dst = appendUvarint(dst, uint64(len(scratch)))
	dst = append(dst, scratch...)
	for i := 0; i < len(rs); {
		k := rs[i].Kind
		j := i + 1
		for j < len(rs) && rs[j].Kind == k {
			j++
		}
		dst = appendUvarint(dst, uint64(j-i))
		dst = append(dst, byte(idx[byte(k)]))
		i = j
	}
	return dst, scratch
}

// uvarint reads one varint from col, returning the remaining bytes.
// The one-byte case is resolved inline for the same reason
// appendUvarint special-cases it; uvarintSlow keeps the multi-byte and
// error handling out of the inlining budget.
func uvarint(col []byte, what string) (uint64, []byte, error) {
	if len(col) > 0 && col[0] < 0x80 {
		return uint64(col[0]), col[1:], nil
	}
	return uvarintSlow(col, what)
}

func uvarintSlow(col []byte, what string) (uint64, []byte, error) {
	u, n := binary.Uvarint(col)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated or overlong varint in %s column", ErrBadSegment, what)
	}
	return u, col[n:], nil
}

// decodeDoDCol decodes len(out) delta-of-delta values from the front
// of col, returning the remaining bytes.
func decodeDoDCol(col []byte, name string, out []Record, set func(*Record, int64)) ([]byte, error) {
	var prev, prevDelta int64
	for i := range out {
		u, rest, err := uvarint(col, name)
		if err != nil {
			return nil, err
		}
		col = rest
		delta := prevDelta + unzigzag(u)
		v := prev + delta
		set(&out[i], v)
		prev, prevDelta = v, delta
	}
	return col, nil
}

// decodeDeltaCol decodes len(out) first-difference values from the
// front of col, returning the remaining bytes.
func decodeDeltaCol(col []byte, name string, out []Record, set func(*Record, int64)) ([]byte, error) {
	var prev int64
	for i := range out {
		u, rest, err := uvarint(col, name)
		if err != nil {
			return nil, err
		}
		col = rest
		v := prev + unzigzag(u)
		set(&out[i], v)
		prev = v
	}
	return col, nil
}

// decodeRLECol decodes len(out) run-length encoded values from the
// front of col, returning the remaining bytes.
func decodeRLECol(col []byte, name string, out []Record, set func(*Record, int64)) ([]byte, error) {
	i := 0
	for i < len(out) {
		runLen, rest, err := uvarint(col, name)
		if err != nil {
			return nil, err
		}
		u, rest, err := uvarint(rest, name)
		if err != nil {
			return nil, err
		}
		col = rest
		if runLen == 0 || runLen > uint64(len(out)-i) {
			return nil, fmt.Errorf("%w: %s run of %d exceeds remaining %d records", ErrBadSegment, name, runLen, len(out)-i)
		}
		v := unzigzag(u)
		for j := 0; j < int(runLen); j++ {
			set(&out[i+j], v)
		}
		i += int(runLen)
	}
	return col, nil
}

// decodeKindsCol decodes len(out) dictionary-coded kinds from the
// front of col, returning the remaining bytes.
func decodeKindsCol(col []byte, out []Record) ([]byte, error) {
	dictLen, col, err := uvarint(col, "kind")
	if err != nil {
		return nil, err
	}
	if dictLen > 256 || dictLen > uint64(len(col)) {
		return nil, fmt.Errorf("%w: kind dictionary of %d entries in %d bytes", ErrBadSegment, dictLen, len(col))
	}
	dict := col[:dictLen]
	col = col[dictLen:]
	i := 0
	for i < len(out) {
		runLen, rest, err := uvarint(col, "kind")
		if err != nil {
			return nil, err
		}
		if len(rest) == 0 {
			return nil, fmt.Errorf("%w: kind run missing dictionary index", ErrBadSegment)
		}
		idx := rest[0]
		col = rest[1:]
		if runLen == 0 || runLen > uint64(len(out)-i) {
			return nil, fmt.Errorf("%w: kind run of %d exceeds remaining %d records", ErrBadSegment, runLen, len(out)-i)
		}
		if uint64(idx) >= dictLen {
			return nil, fmt.Errorf("%w: kind dictionary index %d out of %d", ErrBadSegment, idx, dictLen)
		}
		k := Kind(dict[idx])
		for j := 0; j < int(runLen); j++ {
			out[i+j].Kind = k
		}
		i += int(runLen)
	}
	return col, nil
}

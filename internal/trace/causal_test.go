package trace

import (
	"testing"

	"prism/internal/rng"
)

func TestOrdererInOrderPassThrough(t *testing.T) {
	o := NewOrderer()
	var all []Record
	for i := 0; i < 5; i++ {
		out := o.Add(Record{Node: 0, Kind: KindUser, Time: int64(i)}, uint64(i))
		all = append(all, out...)
	}
	if len(all) != 5 {
		t.Fatalf("dispatched %d", len(all))
	}
	for i, r := range all {
		if r.Logical != uint64(i+1) {
			t.Fatalf("logical stamps %v", all)
		}
	}
	if o.Held() != 0 {
		t.Fatalf("held %d", o.Held())
	}
	if err := CheckCausal(all); err != nil {
		t.Fatal(err)
	}
}

func TestOrdererReordersProgramOrder(t *testing.T) {
	o := NewOrderer()
	// Arrivals out of order: seq 2, 0, 1.
	if out := o.Add(Record{Node: 0, Kind: KindUser, Tag: 2}, 2); len(out) != 0 {
		t.Fatalf("seq 2 dispatched early: %v", out)
	}
	if o.Held() != 1 {
		t.Fatalf("held %d", o.Held())
	}
	out := o.Add(Record{Node: 0, Kind: KindUser, Tag: 0}, 0)
	if len(out) != 1 || out[0].Tag != 0 {
		t.Fatalf("seq 0 dispatch: %v", out)
	}
	out = o.Add(Record{Node: 0, Kind: KindUser, Tag: 1}, 1)
	if len(out) != 2 || out[0].Tag != 1 || out[1].Tag != 2 {
		t.Fatalf("release chain: %v", out)
	}
	if o.Held() != 0 || o.MaxHeld() != 1 {
		t.Fatalf("held %d maxHeld %d", o.Held(), o.MaxHeld())
	}
}

func TestOrdererRecvWaitsForSend(t *testing.T) {
	o := NewOrderer()
	// Recv on node 1 arrives before the matching send from node 0.
	recv := Record{Node: 1, Kind: KindRecv, Tag: 42, Payload: 0}
	if out := o.Add(recv, 0); len(out) != 0 {
		t.Fatalf("recv dispatched before send: %v", out)
	}
	if o.Held() != 1 {
		t.Fatalf("held %d", o.Held())
	}
	send := Record{Node: 0, Kind: KindSend, Tag: 42, Payload: 1}
	out := o.Add(send, 0)
	if len(out) != 2 {
		t.Fatalf("send should release both: %v", out)
	}
	if out[0].Kind != KindSend || out[1].Kind != KindRecv {
		t.Fatalf("order wrong: %v", out)
	}
	if out[0].Logical >= out[1].Logical {
		t.Fatal("send must precede recv logically")
	}
	if err := CheckCausal(out); err != nil {
		t.Fatal(err)
	}
}

func TestOrdererDuplicateDropped(t *testing.T) {
	o := NewOrderer()
	o.Add(Record{Node: 0, Kind: KindUser}, 0)
	if out := o.Add(Record{Node: 0, Kind: KindUser}, 0); len(out) != 0 {
		t.Fatalf("duplicate dispatched: %v", out)
	}
	if o.Dispatched() != 1 {
		t.Fatalf("dispatched %d", o.Dispatched())
	}
}

func TestOrdererMultipleSources(t *testing.T) {
	o := NewOrderer()
	var all []Record
	all = append(all, o.Add(Record{Node: 0, Kind: KindUser}, 0)...)
	all = append(all, o.Add(Record{Node: 1, Kind: KindUser}, 0)...)
	all = append(all, o.Add(Record{Node: 0, Process: 1, Kind: KindUser}, 0)...)
	if len(all) != 3 {
		t.Fatalf("dispatched %d", len(all))
	}
	if err := CheckCausal(all); err != nil {
		t.Fatal(err)
	}
}

func TestOrdererChainAcrossSources(t *testing.T) {
	o := NewOrderer()
	// Node 1: recv(seq 0) then user(seq 1); both held until node 0's send.
	if out := o.Add(Record{Node: 1, Kind: KindRecv, Tag: 5, Payload: 0}, 0); len(out) != 0 {
		t.Fatal("early dispatch")
	}
	if out := o.Add(Record{Node: 1, Kind: KindUser}, 1); len(out) != 0 {
		t.Fatal("program-order violation")
	}
	out := o.Add(Record{Node: 0, Kind: KindSend, Tag: 5, Payload: 1}, 0)
	if len(out) != 3 {
		t.Fatalf("expected full release, got %v", out)
	}
	if err := CheckCausal(out); err != nil {
		t.Fatal(err)
	}
}

// TestOrdererRandomizedDeliveries shuffles a causally valid execution
// and checks the orderer always reconstructs a causally valid stream
// containing every event.
func TestOrdererRandomizedDeliveries(t *testing.T) {
	st := rng.New(404)
	for trial := 0; trial < 50; trial++ {
		// Build an execution: P processes, each sends to the next and
		// receives from the previous, with user events interleaved.
		const P = 4
		type item struct {
			rec Record
			seq uint64
		}
		var items []item
		seqs := make([]uint64, P)
		add := func(node int, r Record) {
			r.Node = int32(node)
			items = append(items, item{rec: r, seq: seqs[node]})
			seqs[node]++
		}
		// Round-based sends: every round, node i sends tag=round*P+i
		// to node (i+1)%P, which receives it in a later position.
		for round := 0; round < 3; round++ {
			for i := 0; i < P; i++ {
				add(i, Record{Kind: KindUser})
				tag := uint16(round*P + i)
				add(i, Record{Kind: KindSend, Tag: tag, Payload: int64((i + 1) % P)})
			}
			for i := 0; i < P; i++ {
				tag := uint16(round*P + (i+P-1)%P)
				add(i, Record{Kind: KindRecv, Tag: tag, Payload: int64((i + P - 1) % P)})
			}
		}
		// Shuffle delivery order.
		st.Shuffle(len(items), func(a, b int) { items[a], items[b] = items[b], items[a] })
		o := NewOrderer()
		var out []Record
		for _, it := range items {
			out = append(out, o.Add(it.rec, it.seq)...)
		}
		if len(out) != len(items) {
			t.Fatalf("trial %d: dispatched %d of %d (held %d)", trial, len(out), len(items), o.Held())
		}
		if err := CheckCausal(out); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if o.Held() != 0 {
			t.Fatalf("trial %d: %d events stuck", trial, o.Held())
		}
	}
}

func TestCheckCausalDetectsViolations(t *testing.T) {
	// Non-increasing logical stamps.
	bad := []Record{{Logical: 2}, {Logical: 2}}
	if CheckCausal(bad) == nil {
		t.Fatal("non-increasing logical accepted")
	}
	// Receive before send.
	bad2 := []Record{
		{Logical: 1, Node: 1, Kind: KindRecv, Tag: 3, Payload: 0},
		{Logical: 2, Node: 0, Kind: KindSend, Tag: 3, Payload: 1},
	}
	if CheckCausal(bad2) == nil {
		t.Fatal("recv-before-send accepted")
	}
}

func TestOrdererResumeAdoptsMidStreamSource(t *testing.T) {
	o := NewOrderer()
	o.Resume()
	// A restarted manager first sees this source at capture seq 40 —
	// the prefix died with the previous incarnation. Resume mode
	// dispatches from there instead of holding forever.
	out := o.Add(Record{Node: 3, Kind: KindUser, Tag: 40}, 40)
	if len(out) != 1 || out[0].Tag != 40 {
		t.Fatalf("mid-stream source not adopted: %v", out)
	}
	out = o.Add(Record{Node: 3, Kind: KindUser, Tag: 41}, 41)
	if len(out) != 1 || out[0].Tag != 41 {
		t.Fatalf("post-adoption program order broken: %v", out)
	}
	// Once adopted, reordering within the source still holds back.
	if out := o.Add(Record{Node: 3, Kind: KindUser, Tag: 43}, 43); len(out) != 0 {
		t.Fatalf("gap dispatched early: %v", out)
	}
	out = o.Add(Record{Node: 3, Kind: KindUser, Tag: 42}, 42)
	if len(out) != 2 || out[0].Tag != 42 || out[1].Tag != 43 {
		t.Fatalf("release chain after adoption: %v", out)
	}
	// A second source starting at zero is unaffected.
	if out := o.Add(Record{Node: 4, Kind: KindUser}, 0); len(out) != 1 {
		t.Fatalf("fresh source blocked: %v", out)
	}
	// Without Resume, the same mid-stream arrival is held.
	plain := NewOrderer()
	if out := plain.Add(Record{Node: 3, Kind: KindUser, Tag: 40}, 40); len(out) != 0 {
		t.Fatalf("plain orderer adopted mid-stream: %v", out)
	}
	if plain.Held() != 1 {
		t.Fatalf("held %d", plain.Held())
	}
}

func TestSequencerProgramOrderOnly(t *testing.T) {
	s := NewSequencer()
	// Gap: seq 1 held until 0 arrives; Logical is left untouched.
	if out := s.AddTo(nil, Record{Node: 2, Kind: KindUser, Tag: 1, Logical: 77}, 1); len(out) != 0 {
		t.Fatalf("gap released early: %v", out)
	}
	if s.Held() != 1 || s.MaxHeld() != 1 {
		t.Fatalf("held %d maxHeld %d", s.Held(), s.MaxHeld())
	}
	out := s.AddTo(nil, Record{Node: 2, Kind: KindUser, Tag: 0}, 0)
	if len(out) != 2 || out[0].Tag != 0 || out[1].Tag != 1 {
		t.Fatalf("release chain: %v", out)
	}
	if out[1].Logical != 77 {
		t.Fatalf("sequencer must not touch Logical: %v", out[1])
	}
	// Receives are NOT held for their sends — that is the merger's job.
	out = s.AddTo(out[:0], Record{Node: 2, Kind: KindRecv, Tag: 9, Payload: 0}, 2)
	if len(out) != 1 {
		t.Fatalf("sequencer held a recv: %v", out)
	}
	// Duplicate dropped.
	if out := s.AddTo(nil, Record{Node: 2, Kind: KindUser}, 1); len(out) != 0 {
		t.Fatalf("duplicate released: %v", out)
	}
	if s.Sequenced() != 3 || s.Held() != 0 {
		t.Fatalf("sequenced %d held %d", s.Sequenced(), s.Held())
	}
}

func TestCausalMergerStallsSourceBehindRecv(t *testing.T) {
	m := NewCausalMerger()
	// Node 1's recv arrives (program-ordered) before node 0's send; the
	// user event behind it must queue, not overtake.
	if out := m.AddTo(nil, Record{Node: 1, Kind: KindRecv, Tag: 7, Payload: 0}); len(out) != 0 {
		t.Fatal("recv released before send")
	}
	if out := m.AddTo(nil, Record{Node: 1, Kind: KindUser, Tag: 1}); len(out) != 0 {
		t.Fatal("successor overtook stalled recv")
	}
	if m.Held() != 2 || m.MaxHeld() != 2 {
		t.Fatalf("held %d maxHeld %d", m.Held(), m.MaxHeld())
	}
	out := m.AddTo(nil, Record{Node: 0, Kind: KindSend, Tag: 7, Payload: 1})
	if len(out) != 3 {
		t.Fatalf("send should release the chain: %v", out)
	}
	if out[0].Kind != KindSend || out[1].Kind != KindRecv || out[2].Tag != 1 {
		t.Fatalf("release order: %v", out)
	}
	for i, r := range out {
		if r.Logical != uint64(i+1) {
			t.Fatalf("lamport stamps: %v", out)
		}
	}
	if m.Held() != 0 || m.Dispatched() != 3 || m.Clock() != 3 {
		t.Fatalf("held %d dispatched %d clock %d", m.Held(), m.Dispatched(), m.Clock())
	}
	if err := CheckCausal(out); err != nil {
		t.Fatal(err)
	}
}

// TestCausalMergerDeterministic feeds the same per-source-ordered
// interleaving twice and requires byte-identical output — the property
// the ISM's sharded-vs-single equivalence tests lean on.
func TestCausalMergerDeterministic(t *testing.T) {
	st := rng.New(99)
	const P = 4
	run := func(input []Record) []Record {
		m := NewCausalMerger()
		var out []Record
		for _, r := range input {
			out = m.AddTo(out, r)
		}
		if m.Held() != 0 {
			t.Fatalf("%d records stuck", m.Held())
		}
		return out
	}
	for trial := 0; trial < 20; trial++ {
		// Per-source streams with a ring of sends/recvs, interleaved by
		// random round-robin — program order preserved per source.
		streams := make([][]Record, P)
		for i := 0; i < P; i++ {
			tag := uint16(i)
			streams[i] = []Record{
				{Node: int32(i), Kind: KindUser},
				{Node: int32(i), Kind: KindSend, Tag: tag, Payload: int64((i + 1) % P)},
				{Node: int32(i), Kind: KindRecv, Tag: uint16((i + P - 1) % P), Payload: int64((i + P - 1) % P)},
				{Node: int32(i), Kind: KindUser, Tag: 100},
			}
		}
		var input []Record
		cursors := make([]int, P)
		remaining := 4 * P
		for remaining > 0 {
			i := st.Intn(P)
			if cursors[i] == len(streams[i]) {
				continue
			}
			input = append(input, streams[i][cursors[i]])
			cursors[i]++
			remaining--
		}
		a, b := run(input), run(input)
		if len(a) != len(input) {
			t.Fatalf("trial %d: released %d of %d", trial, len(a), len(input))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: nondeterministic at %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
		if err := CheckCausal(a); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestSequencerSetNextRestoresCursor pins the spool-restore contract:
// a seeded cursor drops the replayed prefix by sequence match and
// releases exactly the unseen suffix, in order.
func TestSequencerSetNextRestoresCursor(t *testing.T) {
	s := NewSequencer()
	key := SourceKey{Node: 7, Process: 0}
	s.SetNext(key, 3)
	var got []Record
	// An at-least-once replay resends the whole batch: sequences 1..5,
	// of which 1 and 2 were already emitted before the crash.
	for seq := uint64(1); seq <= 5; seq++ {
		got = s.AddTo(got, Record{Node: 7, Tag: uint16(seq)}, seq)
	}
	if len(got) != 3 {
		t.Fatalf("released %d records, want 3 (the unseen suffix)", len(got))
	}
	for i, r := range got {
		if r.Tag != uint16(3+i) {
			t.Fatalf("release %d has tag %d, want %d", i, r.Tag, 3+i)
		}
	}
	if held := s.Held(); held != 0 {
		t.Fatalf("%d records held after contiguous replay", held)
	}
}

// TestSequencerSetNextOverridesResume: an explicitly seeded cursor must
// win over Resume's first-seen adoption, or a restore followed by a
// replay starting mid-batch would adopt the wrong start and emit
// duplicates.
func TestSequencerSetNextOverridesResume(t *testing.T) {
	s := NewSequencer()
	s.Resume()
	key := SourceKey{Node: 1, Process: 2}
	s.SetNext(key, 4)
	var got []Record
	got = s.AddTo(got, Record{Node: 1, Process: 2, Tag: 2}, 2) // replayed duplicate
	if len(got) != 0 {
		t.Fatalf("duplicate below the seeded cursor released: %v", got)
	}
	got = s.AddTo(got, Record{Node: 1, Process: 2, Tag: 4}, 4)
	if len(got) != 1 || got[0].Tag != 4 {
		t.Fatalf("seeded cursor record not released: %v", got)
	}
}

// TestCausalMergerObserveRestores replays an emitted trace prefix into
// a fresh merger and checks the restored state behaves exactly like
// the original: the Lamport clock continues past the prefix, an
// observed-but-unconsumed send still satisfies a late receive, and a
// consumed send does not double-match.
func TestCausalMergerObserveRestores(t *testing.T) {
	send := func(node, peer int32, tag uint16) Record {
		return Record{Node: node, Kind: KindSend, Tag: tag, Payload: int64(peer)}
	}
	recv := func(node, peer int32, tag uint16) Record {
		return Record{Node: node, Kind: KindRecv, Tag: tag, Payload: int64(peer)}
	}
	live := NewCausalMerger()
	var prefix []Record
	prefix = live.AddTo(prefix, send(1, 2, 10)) // consumed by the recv below
	prefix = live.AddTo(prefix, recv(2, 1, 10))
	prefix = live.AddTo(prefix, send(1, 3, 11)) // still unconsumed at "crash"

	restored := NewCausalMerger()
	for _, r := range prefix {
		restored.Observe(r)
	}
	if restored.Clock() != live.Clock() {
		t.Fatalf("restored clock %d, live clock %d", restored.Clock(), live.Clock())
	}
	if restored.Dispatched() != uint64(len(prefix)) {
		t.Fatalf("restored dispatched %d, want %d", restored.Dispatched(), len(prefix))
	}

	// Both mergers must now treat the continuation identically.
	cont := []Record{recv(3, 1, 11), recv(2, 1, 10)}
	var gotLive, gotRest []Record
	for _, r := range cont {
		gotLive = live.AddTo(gotLive, r)
		gotRest = restored.AddTo(gotRest, r)
	}
	if len(gotRest) != len(gotLive) {
		t.Fatalf("restored released %d, live released %d", len(gotRest), len(gotLive))
	}
	for i := range gotLive {
		if gotRest[i] != gotLive[i] {
			t.Fatalf("restored diverges at %d: %v vs %v", i, gotRest[i], gotLive[i])
		}
	}
	// The tag-10 send was consumed before the crash, so its replayed
	// receive must park, not dispatch.
	if len(gotRest) != 1 || gotRest[0].Tag != 11 {
		t.Fatalf("consumed send double-matched: released %v", gotRest)
	}
	if restored.Held() != 1 {
		t.Fatalf("restored held %d, want the parked tag-10 receive", restored.Held())
	}
}

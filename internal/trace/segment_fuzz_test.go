package trace

import (
	"math/rand"
	"testing"
)

// FuzzSegmentDecode drives the columnar decoder with arbitrary bytes:
// whatever the input, Parse and the decode paths must return an error
// or a valid batch — never panic, never run away. A re-encode of
// whatever decoded must round-trip, pinning encoder/decoder agreement
// on fuzz-discovered shapes.
func FuzzSegmentDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(1337))
	empty := AppendSegment(nil, nil)
	small := AppendSegment(nil, []Record{
		{Node: 1, Process: 2, Kind: KindSend, Tag: 9, Time: 100, Logical: 5, Payload: -7},
	})
	big := AppendSegment(nil, randomBatch(rng, 300))
	two := AppendSegment(append([]byte(nil), small...), randomBatch(rng, 40))
	f.Add(empty)
	f.Add(small)
	f.Add(big)
	f.Add(two)
	f.Add(big[:len(big)/2])
	f.Add([]byte{})
	f.Add([]byte("PSEG"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var seg Segment
		rest := data
		for hops := 0; hops < 64; hops++ {
			var err error
			rest, err = seg.Parse(rest)
			if err != nil {
				return
			}
			out, err := seg.AppendRecords(nil)
			if err != nil {
				// A checksum-valid segment that fails the column decode
				// would be an encoder/decoder disagreement — possible
				// only for fuzz-crafted bytes whose crc happens to
				// hold, so an error return (not a panic) is all that is
				// required here.
				return
			}
			if len(out) != seg.Count() {
				t.Fatalf("decoded %d records, footer says %d", len(out), seg.Count())
			}
			if _, err := seg.AppendRange(nil, seg.MinTime(), seg.MaxTime()); err != nil {
				t.Fatalf("range decode failed after full decode: %v", err)
			}
			// Round-trip: re-encoding the decoded batch must parse and
			// decode back to the same records.
			re := AppendSegment(nil, out)
			var seg2 Segment
			if _, err := seg2.Parse(re); err != nil {
				t.Fatalf("re-encode failed to parse: %v", err)
			}
			back, err := seg2.AppendRecords(nil)
			if err != nil {
				t.Fatalf("re-encode failed to decode: %v", err)
			}
			if len(back) != len(out) {
				t.Fatalf("re-encode count %d, want %d", len(back), len(out))
			}
			for i := range out {
				if back[i] != out[i] {
					t.Fatalf("re-encode record %d drifted", i)
				}
			}
			if len(rest) == 0 {
				return
			}
		}
	})
}

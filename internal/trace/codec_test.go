package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"prism/internal/rng"
)

func sampleRecords() []Record {
	return []Record{
		{Node: 0, Process: 0, Kind: KindMark, Tag: 1, Time: 10, Payload: 0},
		{Node: 1, Process: 2, Kind: KindSend, Tag: 7, Time: 20, Payload: 3},
		{Node: 3, Process: 0, Kind: KindRecv, Tag: 7, Time: 25, Logical: 9, Payload: 1},
		{Node: 2, Process: 1, Kind: KindSample, Tag: 400, Time: 30, Payload: -12345},
		{Node: 0, Process: 0, Kind: KindFlush, Tag: 0, Time: 99, Payload: 5_000_000},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rs := sampleRecords()
	if err := w.WriteAll(rs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(rs) {
		t.Fatalf("count %d", w.Count())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range rs {
		if got[i] != rs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], rs[i])
		}
	}
}

// TestAppendWriterContinuesStream covers the restart path: a second
// Writer appending to a stream the first one started must not emit a
// second header mid-file (a reader would misparse it as record bytes),
// and the combined stream must read back as one trace.
func TestAppendWriterContinuesStream(t *testing.T) {
	var buf bytes.Buffer
	rs := sampleRecords()
	w := NewWriter(&buf)
	if err := w.WriteAll(rs[:2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	aw := NewAppendWriter(&buf)
	if err := aw.WriteAll(rs[2:]); err != nil {
		t.Fatal(err)
	}
	if err := aw.Flush(); err != nil {
		t.Fatal(err)
	}
	if want := 8 + len(rs)*RecordSize; buf.Len() != want {
		t.Fatalf("stream is %d bytes, want %d (one header)", buf.Len(), want)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("read %d records, want %d", len(got), len(rs))
	}
	for i := range rs {
		if got[i] != rs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], rs[i])
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	st := rng.New(55)
	check := func() bool {
		n := st.Intn(50) + 1
		rs := make([]Record, n)
		for i := range rs {
			rs[i] = Record{
				Node:    int32(st.Intn(1024)),
				Process: int32(st.Intn(64)),
				Kind:    Kind(st.Intn(int(numKinds))),
				Tag:     uint16(st.Intn(65536)),
				Time:    int64(st.Uint64() >> 2),
				Logical: st.Uint64() >> 1,
				Payload: int64(st.Uint64()),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.WriteAll(rs) != nil || w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil || len(got) != n {
			return false
		}
		for i := range rs {
			if got[i] != rs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTraceHeaderOnly(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8 {
		t.Fatalf("header-only trace is %d bytes", buf.Len())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace read: %v %v", got, err)
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("XXXXYYYY")
	_, err := NewReader(buf).Read()
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	buf := bytes.NewBufferString("PR")
	if _, err := NewReader(buf).Read(); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteAll(sampleRecords()[:2]); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first record should read: %v", err)
	}
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("truncated tail gave %v", err)
	}
}

func TestInvalidKindRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	r := sampleRecords()[0]
	r.Kind = Kind(77)
	if err := w.Write(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(&buf).Read(); err == nil {
		t.Fatal("invalid kind accepted on read")
	}
}

func TestTextRoundTrip(t *testing.T) {
	rs := sampleRecords()
	var buf bytes.Buffer
	if err := MarshalText(&buf, rs); err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range rs {
		if got[i] != rs[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], rs[i])
		}
	}
}

func TestTextCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\n0 0 user 1 5 0 0\n   \n"
	got, err := UnmarshalText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kind != KindUser || got[0].Time != 5 {
		t.Fatalf("parsed %v", got)
	}
}

func TestParseRecordErrors(t *testing.T) {
	bad := []string{
		"1 2 3",
		"x 0 user 1 5 0 0",
		"0 x user 1 5 0 0",
		"0 0 bogus 1 5 0 0",
		"0 0 user x 5 0 0",
		"0 0 user 1 x 0 0",
		"0 0 user 1 5 x 0",
		"0 0 user 1 5 0 x",
	}
	for _, s := range bad {
		if _, err := ParseRecord(s); err == nil {
			t.Fatalf("%q accepted", s)
		}
	}
}

func TestUnmarshalTextLineNumberInError(t *testing.T) {
	in := "0 0 user 1 5 0 0\nbroken line\n"
	_, err := UnmarshalText(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestEncodeDecodeRecordDirect(t *testing.T) {
	r := Record{Node: -1, Process: -2, Kind: KindRecv, Tag: 65535,
		Time: -9999, Logical: 1 << 60, Payload: -1}
	var buf [RecordSize]byte
	EncodeRecord(&buf, r)
	if got := DecodeRecord(&buf); got != r {
		t.Fatalf("direct round trip: %+v != %+v", got, r)
	}
}

package trace

import (
	"testing"
	"testing/quick"

	"prism/internal/rng"
)

func TestKindString(t *testing.T) {
	if KindSend.String() != "send" || KindFlush.String() != "flush" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() == "" {
		t.Fatal("unknown kind should render")
	}
	if !KindSample.Valid() || Kind(numKinds).Valid() {
		t.Fatal("Valid wrong")
	}
}

func TestRecordString(t *testing.T) {
	r := Record{Node: 2, Process: 1, Kind: KindSend, Tag: 9, Time: 100, Logical: 5, Payload: 3}
	want := "2 1 send 9 100 5 3"
	if r.String() != want {
		t.Fatalf("String() = %q, want %q", r.String(), want)
	}
}

func TestBeforeOrdering(t *testing.T) {
	a := Record{Time: 1, Node: 5, Process: 9}
	b := Record{Time: 2, Node: 0, Process: 0}
	if !a.Before(b) || b.Before(a) {
		t.Fatal("time ordering wrong")
	}
	c := Record{Time: 1, Node: 4}
	if !c.Before(a) {
		t.Fatal("node tiebreak wrong")
	}
	d := Record{Time: 1, Node: 5, Process: 3}
	if !d.Before(a) {
		t.Fatal("process tiebreak wrong")
	}
}

func TestSortByTime(t *testing.T) {
	rs := []Record{
		{Time: 30}, {Time: 10}, {Time: 20, Node: 1}, {Time: 20, Node: 0},
	}
	SortByTime(rs)
	if rs[0].Time != 10 || rs[1].Time != 20 || rs[1].Node != 0 || rs[3].Time != 30 {
		t.Fatalf("sorted %v", rs)
	}
}

func TestSortByLogical(t *testing.T) {
	rs := []Record{
		{Logical: 3}, {Logical: 1}, {Logical: 2, Node: 1}, {Logical: 2, Node: 0},
	}
	SortByLogical(rs)
	if rs[0].Logical != 1 || rs[1].Node != 0 || rs[2].Node != 1 || rs[3].Logical != 3 {
		t.Fatalf("sorted %v", rs)
	}
}

func TestMergeTwoTraces(t *testing.T) {
	a := []Record{{Time: 1, Node: 0}, {Time: 5, Node: 0}, {Time: 9, Node: 0}}
	b := []Record{{Time: 2, Node: 1}, {Time: 3, Node: 1}}
	m := Merge(a, b)
	if len(m) != 5 {
		t.Fatalf("merged %d", len(m))
	}
	times := []int64{1, 2, 3, 5, 9}
	for i, r := range m {
		if r.Time != times[i] {
			t.Fatalf("merge order %v", m)
		}
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	if got := Merge(); len(got) != 0 {
		t.Fatal("empty merge")
	}
	if got := Merge(nil, nil); len(got) != 0 {
		t.Fatal("nil traces")
	}
	a := []Record{{Time: 4}}
	if got := Merge(a, nil); len(got) != 1 || got[0].Time != 4 {
		t.Fatal("single merge")
	}
}

func TestMergePropertySorted(t *testing.T) {
	st := rng.New(31)
	check := func(nTraces uint8) bool {
		k := int(nTraces%6) + 1
		var traces [][]Record
		total := 0
		for i := 0; i < k; i++ {
			n := st.Intn(40)
			tr := make([]Record, n)
			tm := int64(0)
			for j := range tr {
				tm += int64(st.Intn(100))
				tr[j] = Record{Node: int32(i), Time: tm}
			}
			traces = append(traces, tr)
			total += n
		}
		m := Merge(traces...)
		if len(m) != total {
			return false
		}
		for i := 1; i < len(m); i++ {
			if m[i].Before(m[i-1]) {
				return false
			}
		}
		// Per-node subsequences preserved.
		pos := map[int32]int64{}
		for _, r := range m {
			if r.Time < pos[r.Node] {
				return false
			}
			pos[r.Node] = r.Time
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateGood(t *testing.T) {
	rs := []Record{
		{Time: 1, Kind: KindBlockIn},
		{Time: 2, Kind: KindUser},
		{Time: 3, Kind: KindBlockOut},
	}
	if err := Validate(rs); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		rs   []Record
	}{
		{"time reversal", []Record{{Time: 5}, {Time: 3}}},
		{"bad kind", []Record{{Time: 1, Kind: Kind(99)}}},
		{"unmatched out", []Record{{Time: 1, Kind: KindBlockOut}}},
		{"unclosed in", []Record{{Time: 1, Kind: KindBlockIn}}},
	}
	for _, c := range cases {
		if err := Validate(c.rs); err == nil {
			t.Fatalf("%s: no error", c.name)
		}
	}
}

func TestValidatePerProcessNesting(t *testing.T) {
	// Interleaved blocks on different processes are fine.
	rs := []Record{
		{Time: 1, Process: 0, Kind: KindBlockIn},
		{Time: 2, Process: 1, Kind: KindBlockIn},
		{Time: 3, Process: 0, Kind: KindBlockOut},
		{Time: 4, Process: 1, Kind: KindBlockOut},
	}
	if err := Validate(rs); err != nil {
		t.Fatal(err)
	}
}

package trace

// Selection utilities for off-line analysis tools: slicing merged
// traces by node, kind and time window, the primitive queries beneath
// profile and animation views.

// Filter returns the records for which keep reports true, preserving
// order. The input is not modified.
func Filter(rs []Record, keep func(Record) bool) []Record {
	var out []Record
	for _, r := range rs {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// ByNode returns the records of one node.
func ByNode(rs []Record, node int32) []Record {
	return Filter(rs, func(r Record) bool { return r.Node == node })
}

// ByKind returns the records of one kind.
func ByKind(rs []Record, kind Kind) []Record {
	return Filter(rs, func(r Record) bool { return r.Kind == kind })
}

// TimeWindow returns records with from <= Time < to.
func TimeWindow(rs []Record, from, to int64) []Record {
	return Filter(rs, func(r Record) bool { return r.Time >= from && r.Time < to })
}

// Split partitions a merged trace into per-node traces, preserving
// each node's record order. The resulting map's slices share no
// backing with the input.
func Split(rs []Record) map[int32][]Record {
	out := map[int32][]Record{}
	for _, r := range rs {
		out[r.Node] = append(out[r.Node], r)
	}
	return out
}

// Nodes returns the distinct node ids present, in ascending order.
func Nodes(rs []Record) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, r := range rs {
		if !seen[r.Node] {
			seen[r.Node] = true
			out = append(out, r.Node)
		}
	}
	// Insertion sort: node sets are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Span returns the first and last timestamps of a trace; ok is false
// for an empty trace.
func Span(rs []Record) (first, last int64, ok bool) {
	if len(rs) == 0 {
		return 0, 0, false
	}
	first, last = rs[0].Time, rs[0].Time
	for _, r := range rs[1:] {
		if r.Time < first {
			first = r.Time
		}
		if r.Time > last {
			last = r.Time
		}
	}
	return first, last, true
}

// CountByKind tallies records per kind.
func CountByKind(rs []Record) map[Kind]int {
	out := map[Kind]int{}
	for _, r := range rs {
		out[r.Kind]++
	}
	return out
}

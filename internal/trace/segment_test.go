package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"prism/internal/raceflag"
)

// randomBatch builds a batch whose field distributions cover both the
// friendly shapes segments optimize for (constant runs, near-monotone
// times) and hostile ones (sign flips, full-range payloads).
func randomBatch(rng *rand.Rand, n int) []Record {
	rs := make([]Record, n)
	tm := rng.Int63n(1 << 40)
	logical := rng.Uint64() >> 8
	for i := range rs {
		switch rng.Intn(4) {
		case 0: // monotone drift, the common case
			tm += rng.Int63n(1000)
			logical++
		case 1: // jitter backwards
			tm -= rng.Int63n(500)
			logical += uint64(rng.Intn(3))
		case 2: // wild jump
			tm = rng.Int63() - rng.Int63()
			logical = rng.Uint64()
		default: // hold
		}
		rs[i] = Record{
			Node:    int32(rng.Intn(8)) - 2, // includes negative synthetic nodes
			Process: int32(rng.Intn(4)),
			Kind:    Kind(rng.Intn(int(numKinds))),
			Tag:     uint16(rng.Intn(1 << 16)),
			Time:    tm,
			Logical: logical,
			Payload: rng.Int63() - rng.Int63(),
		}
	}
	return rs
}

// TestSegmentRoundTripProperty is the property test the format is
// judged by: random record batches must come back byte-identical
// through encode → Parse → AppendRecords.
func TestSegmentRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7311))
	var seg Segment
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(700)
		if iter == 0 {
			n = 0 // the empty segment is valid
		}
		in := randomBatch(rng, n)
		buf := AppendSegment(nil, in)
		rest, err := seg.Parse(buf)
		if err != nil {
			t.Fatalf("iter %d: parse: %v", iter, err)
		}
		if len(rest) != 0 {
			t.Fatalf("iter %d: %d trailing bytes", iter, len(rest))
		}
		if seg.Count() != n {
			t.Fatalf("iter %d: count %d, want %d", iter, seg.Count(), n)
		}
		out, err := seg.AppendRecords(nil)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", iter, err)
		}
		if len(out) != len(in) {
			t.Fatalf("iter %d: decoded %d of %d", iter, len(out), len(in))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("iter %d: record %d corrupted:\n in  %+v\n out %+v", iter, i, in[i], out[i])
			}
		}
	}
}

func TestSegmentFooterIndex(t *testing.T) {
	in := []Record{
		{Node: 3, Time: 50, Kind: KindUser},
		{Node: 1, Time: 10, Kind: KindSend, Payload: 3},
		{Node: 1, Time: 90, Kind: KindUser},
		{Node: 7, Time: 40, Kind: KindMark},
	}
	var seg Segment
	if _, err := seg.Parse(AppendSegment(nil, in)); err != nil {
		t.Fatal(err)
	}
	if seg.MinTime() != 10 || seg.MaxTime() != 90 {
		t.Fatalf("time range [%d, %d]", seg.MinTime(), seg.MaxTime())
	}
	want := []SourceRange{
		{Node: 1, Count: 2, MinTime: 10, MaxTime: 90},
		{Node: 3, Count: 1, MinTime: 50, MaxTime: 50},
		{Node: 7, Count: 1, MinTime: 40, MaxTime: 40},
	}
	got := seg.Sources()
	if len(got) != len(want) {
		t.Fatalf("sources %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("source %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if !seg.HasSource(7) || seg.HasSource(2) {
		t.Fatal("HasSource wrong")
	}
	if !seg.Overlaps(85, 200) || seg.Overlaps(91, 200) || seg.Overlaps(0, 9) {
		t.Fatal("Overlaps wrong")
	}
}

func TestSegmentFilteredReads(t *testing.T) {
	var in []Record
	for i := 0; i < 100; i++ {
		in = append(in, Record{Node: int32(i % 3), Time: int64(i * 10), Kind: KindUser, Tag: uint16(i)})
	}
	var seg Segment
	if _, err := seg.Parse(AppendSegment(nil, in)); err != nil {
		t.Fatal(err)
	}
	got, err := seg.AppendRange(nil, 200, 290)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("range read %d records", len(got))
	}
	for i, r := range got {
		if r.Time != int64(200+10*i) {
			t.Fatalf("range record %d has time %d", i, r.Time)
		}
	}
	// A disjoint range is skipped via the footer alone.
	if got, err := seg.AppendRange(nil, 5000, 6000); err != nil || len(got) != 0 {
		t.Fatalf("disjoint range: %d records, %v", len(got), err)
	}
	bySrc, err := seg.AppendSource(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bySrc) != 33 {
		t.Fatalf("source read %d records", len(bySrc))
	}
	for _, r := range bySrc {
		if r.Node != 2 {
			t.Fatalf("source read leaked node %d", r.Node)
		}
	}
	if got, err := seg.AppendSource(nil, 99); err != nil || len(got) != 0 {
		t.Fatalf("absent source: %d records, %v", len(got), err)
	}
}

// TestSegmentTruncation checks that every proper prefix of a valid
// segment is rejected with an error, never a panic.
func TestSegmentTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	buf := AppendSegment(nil, randomBatch(rng, 64))
	var seg Segment
	for n := 0; n < len(buf); n++ {
		if _, err := seg.Parse(buf[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(buf))
		} else if !errors.Is(err, ErrBadSegment) {
			t.Fatalf("prefix of %d bytes: error %v is not ErrBadSegment", n, err)
		}
	}
}

// TestSegmentCorruption flips every byte of a valid segment in turn.
// Bytes under the checksum (everything between the header and the crc
// field) must fail Parse; the trailing framing bytes must at minimum
// never decode into a panic.
func TestSegmentCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	orig := AppendSegment(nil, randomBatch(rng, 32))
	buf := make([]byte, len(orig))
	var seg Segment
	for i := 0; i < len(orig); i++ {
		copy(buf, orig)
		buf[i] ^= 0x5a
		rest, err := seg.Parse(buf)
		if err != nil {
			if !errors.Is(err, ErrBadSegment) {
				t.Fatalf("byte %d: error %v is not ErrBadSegment", i, err)
			}
			continue
		}
		if i >= segHeaderSize && i < len(orig)-12 {
			t.Fatalf("byte %d under the checksum flipped yet parsed cleanly", i)
		}
		if len(rest) != 0 {
			t.Fatalf("byte %d: corrupt parse left %d trailing bytes", i, len(rest))
		}
		// Decoding after a surviving parse must not panic.
		_, _ = seg.AppendRecords(nil)
	}
}

func TestSegmentWriterReaderStream(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var disk bytes.Buffer
	sw := NewSegmentWriter(&disk)
	var want []Record
	for i := 0; i < 5; i++ {
		rs := randomBatch(rng, 100+i)
		want = append(want, rs...)
		n, err := sw.WriteSegment(rs)
		if err != nil {
			t.Fatal(err)
		}
		if n < segMinSize {
			t.Fatalf("segment %d impossibly small: %d bytes", i, n)
		}
	}
	if sw.Segments() != 5 || sw.Offset() != int64(disk.Len()) {
		t.Fatalf("writer accounting: %d segments, offset %d of %d bytes", sw.Segments(), sw.Offset(), disk.Len())
	}
	got, err := NewSegmentReader(bytes.NewReader(disk.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream read %d of %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream record %d corrupted", i)
		}
	}
	// A torn tail (partial final segment) errors instead of decoding.
	torn := disk.Bytes()[:disk.Len()-7]
	_, err = NewSegmentReader(bytes.NewReader(torn)).ReadAll()
	if !errors.Is(err, ErrBadSegment) {
		t.Fatalf("torn tail: %v", err)
	}
}

// TestSegmentScanAllocs pins the bulk decoder's steady state at zero
// allocations per segment scan.
func TestSegmentScanAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	rng := rand.New(rand.NewSource(1))
	rs := randomBatch(rng, 512)
	buf := AppendSegment(nil, rs)
	var seg Segment
	dst := make([]Record, 0, len(rs))
	// Warm the reusable scratch (sources slice) once.
	if _, err := seg.Parse(buf); err != nil {
		t.Fatal(err)
	}
	if _, err := seg.AppendRecords(dst[:0]); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := seg.Parse(buf); err != nil {
			t.Fatal(err)
		}
		var err error
		dst, err = seg.AppendRecords(dst[:0])
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("segment scan allocates %.1f per run, want 0", allocs)
	}
}

// TestSegmentCompressionRatio pins the acceptance bar: on the
// pipeline-benchmark spill workload (per-source 256-record LIS
// flushes), segments must be at least 4x smaller than the flat
// 36-byte-per-record encoding.
func TestSegmentCompressionRatio(t *testing.T) {
	var rs []Record
	seqs := make([]uint64, 4)
	tm := int64(0)
	for batch := 0; batch < 32; batch++ {
		src := batch % 4
		for j := 0; j < 256; j++ {
			tm += 120
			rs = append(rs, Record{
				Node:    int32(src),
				Kind:    KindUser,
				Tag:     uint16(j),
				Time:    tm,
				Logical: seqs[src],
			})
			seqs[src]++
		}
	}
	buf := AppendSegment(nil, rs)
	flat := len(rs) * RecordSize
	ratio := float64(flat) / float64(len(buf))
	t.Logf("columnar %.2f B/rec vs flat %d B/rec: %.1fx", float64(len(buf))/float64(len(rs)), RecordSize, ratio)
	if ratio < 4 {
		t.Fatalf("compression ratio %.2fx below the 4x bar (%d bytes for %d records)", ratio, len(buf), len(rs))
	}
}

func TestSegmentReaderRejectsOversizeClaim(t *testing.T) {
	buf := AppendSegment(nil, []Record{{Kind: KindUser}})
	// Claim a segment length beyond MaxSegmentBytes: the stream reader
	// must reject the claim before allocating for it.
	huge := make([]byte, len(buf))
	copy(huge, buf)
	huge[8], huge[9], huge[10], huge[11] = 0xff, 0xff, 0xff, 0x7f
	_, err := NewSegmentReader(bytes.NewReader(huge)).ReadAll()
	if !errors.Is(err, ErrBadSegment) {
		t.Fatalf("oversize claim: %v", err)
	}
}

func TestSegmentWriterShortWrite(t *testing.T) {
	sw := NewSegmentWriter(shortWriter{})
	if _, err := sw.WriteSegment([]Record{{Kind: KindUser}}); err != io.ErrShortWrite {
		t.Fatalf("short write: %v", err)
	}
}

type shortWriter struct{}

func (shortWriter) Write(p []byte) (int, error) { return len(p) - 1, nil }

package trace

import (
	"fmt"
)

// Causal ordering. "To avoid problems due to the lack of a global
// clock, we use the technique of assigning logical time-stamps, as
// implemented by VIZIR. If an arriving event is in correct causal
// order, it is assigned a logical time-stamp and stored in an output
// buffer ... If the arriving event is not in causal order, it is added
// in one (or multiple) input buffer(s) to reconstruct the causal order
// of the data before dispatch to a tool." (§3.3)
//
// Orderer implements exactly that: per-source sequence tracking plus
// send/recv matching with Lamport clock assignment. Events arrive in
// arbitrary network order; Add returns every event that became
// dispatchable (in causal order, stamped with Logical timestamps).

// SourceKey identifies an event source (node, process).
type SourceKey struct {
	Node, Process int32
}

// seqRecord is a Record plus the per-source sequence number assigned
// at capture time; the LIS stamps Tag-independent sequence numbers
// into Payload for kinds that do not use it, but to stay general the
// Orderer takes the sequence explicitly.
type seqRecord struct {
	rec Record
	seq uint64
}

// Orderer reconstructs causal order from out-of-order event arrivals
// and assigns Lamport logical timestamps.
//
// Causality model:
//   - events from the same source are ordered by their capture
//     sequence numbers (program order);
//   - a KindRecv event additionally happens-after the matching
//     KindSend (matched by Tag: send and recv carry the same message
//     tag, with Payload holding the peer node).
//
// An event is dispatchable when its program-order predecessor has been
// dispatched and, for receives, the matching send has been dispatched.
type Orderer struct {
	clock      uint64
	resume     bool
	nextSeq    map[SourceKey]uint64
	held       map[SourceKey][]seqRecord // out-of-order input buffers
	sendSeen   map[msgKey]int            // multiset of dispatched sends
	recvsHeld  map[msgKey][]seqRecord    // receives waiting for sends
	heldCount  int
	maxHeld    int
	dispatched uint64
}

type msgKey struct {
	from, to int32
	tag      uint16
}

// NewOrderer returns an empty Orderer whose Lamport clock starts at 1.
func NewOrderer() *Orderer {
	return &Orderer{
		nextSeq:   map[SourceKey]uint64{},
		held:      map[SourceKey][]seqRecord{},
		sendSeen:  map[msgKey]int{},
		recvsHeld: map[msgKey][]seqRecord{},
	}
}

// Held returns the number of events currently held back out of order —
// the instantaneous input-buffer length of §3.3's "average buffer
// length" metric.
func (o *Orderer) Held() int { return o.heldCount }

// MaxHeld returns the maximum number of simultaneously held events.
func (o *Orderer) MaxHeld() int { return o.maxHeld }

// Dispatched returns the total number of events released in causal
// order.
func (o *Orderer) Dispatched() uint64 { return o.dispatched }

// Resume makes the orderer adopt an unseen source's first capture
// sequence as that source's starting point instead of holding it back
// waiting for sequence zero. A manager that (re)starts against sources
// already mid-stream — a crashed ISM re-served by resilient LIS
// sessions replaying their unacked windows — would otherwise hold
// every event forever: the prefix went to the dead incarnation and
// will never be resent. Only sound when each source's events arrive in
// program order until its first dispatch (the session protocol's
// in-order replay guarantees this); a reordering transport could
// present sequence n before 0 for a brand-new source and lose the
// prefix to dedup. Sources already seen are unaffected.
func (o *Orderer) Resume() { o.resume = true }

// Add offers an event with its per-source capture sequence number
// (0-based, contiguous per source). It returns the events that became
// dispatchable, in causal order, each stamped with a Lamport logical
// timestamp.
func (o *Orderer) Add(rec Record, seq uint64) []Record {
	return o.AddTo(nil, rec, seq)
}

// AddTo is Add appending into a caller-provided buffer, so a processor
// offering a whole batch can reuse one dispatch slice across records
// instead of allocating per Add.
func (o *Orderer) AddTo(dst []Record, rec Record, seq uint64) []Record {
	out := dst
	o.offer(seqRecord{rec: rec, seq: seq}, &out)
	// Releasing one event can unblock chains across sources; offer
	// held events repeatedly until a fixed point. The data volumes
	// here are ISM input buffers, small by construction. The in-order
	// common case holds nothing and skips the loop entirely.
	for len(o.held) > 0 {
		progressed := false
		for key, buf := range o.held {
			want := o.nextSeq[key]
			for len(buf) > 0 {
				idx := -1
				for i, h := range buf {
					if h.seq == want {
						idx = i
						break
					}
				}
				if idx < 0 {
					break
				}
				h := buf[idx]
				buf = append(buf[:idx], buf[idx+1:]...)
				o.heldCount--
				if o.tryDispatch(h, &out) {
					want = o.nextSeq[key]
					progressed = true
				} else {
					// Re-held as a receive waiting for its send;
					// program order is satisfied so do not requeue here.
					break
				}
			}
			if len(buf) == 0 {
				delete(o.held, key)
			} else {
				o.held[key] = buf
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

func (o *Orderer) offer(h seqRecord, out *[]Record) {
	key := SourceKey{h.rec.Node, h.rec.Process}
	if o.resume {
		if _, seen := o.nextSeq[key]; !seen {
			o.nextSeq[key] = h.seq
		}
	}
	if h.seq != o.nextSeq[key] {
		if h.seq < o.nextSeq[key] {
			// Duplicate or replayed event; drop.
			return
		}
		o.held[key] = append(o.held[key], h)
		o.heldCount++
		if o.heldCount > o.maxHeld {
			o.maxHeld = o.heldCount
		}
		return
	}
	o.tryDispatch(h, out)
}

// tryDispatch dispatches h if its message dependency is satisfied.
// Program order must already hold. It reports whether h was
// dispatched.
func (o *Orderer) tryDispatch(h seqRecord, out *[]Record) bool {
	if h.rec.Kind == KindRecv {
		mk := msgKey{from: int32(h.rec.Payload), to: h.rec.Node, tag: h.rec.Tag}
		if o.sendSeen[mk] == 0 {
			o.recvsHeld[mk] = append(o.recvsHeld[mk], h)
			o.heldCount++
			if o.heldCount > o.maxHeld {
				o.maxHeld = o.heldCount
			}
			return false
		}
		o.sendSeen[mk]--
	}
	o.release(h, out)
	return true
}

func (o *Orderer) release(h seqRecord, out *[]Record) {
	key := SourceKey{h.rec.Node, h.rec.Process}
	o.clock++
	h.rec.Logical = o.clock
	*out = append(*out, h.rec)
	o.dispatched++
	o.nextSeq[key] = h.seq + 1

	if h.rec.Kind == KindSend {
		mk := msgKey{from: h.rec.Node, to: int32(h.rec.Payload), tag: h.rec.Tag}
		o.sendSeen[mk]++
		// Unblock any receive waiting on this send.
		if waiting := o.recvsHeld[mk]; len(waiting) > 0 {
			r := waiting[0]
			o.recvsHeld[mk] = waiting[1:]
			if len(o.recvsHeld[mk]) == 0 {
				delete(o.recvsHeld, mk)
			}
			o.heldCount--
			o.sendSeen[mk]--
			o.release(r, out)
		}
	}
}

// CheckCausal verifies that a dispatched stream is causally
// consistent: logical timestamps strictly increase, per-source
// sequence respects program order, and no receive precedes its send.
func CheckCausal(rs []Record) error {
	var lastLogical uint64
	sends := map[msgKey]int{}
	for i, r := range rs {
		if r.Logical <= lastLogical {
			return fmt.Errorf("trace: record %d logical %d not increasing", i, r.Logical)
		}
		lastLogical = r.Logical
		switch r.Kind {
		case KindSend:
			sends[msgKey{from: r.Node, to: int32(r.Payload), tag: r.Tag}]++
		case KindRecv:
			mk := msgKey{from: int32(r.Payload), to: r.Node, tag: r.Tag}
			if sends[mk] == 0 {
				return fmt.Errorf("trace: record %d receive before matching send", i)
			}
			sends[mk]--
		}
	}
	return nil
}

package trace

import (
	"fmt"
)

// Causal ordering. "To avoid problems due to the lack of a global
// clock, we use the technique of assigning logical time-stamps, as
// implemented by VIZIR. If an arriving event is in correct causal
// order, it is assigned a logical time-stamp and stored in an output
// buffer ... If the arriving event is not in causal order, it is added
// in one (or multiple) input buffer(s) to reconstruct the causal order
// of the data before dispatch to a tool." (§3.3)
//
// The implementation is split into two independently usable stages so
// a sharded ISM can run the first stage per ingest shard and the
// second once at the merge point:
//
//   - Sequencer repairs program order within each source from the
//     per-source capture sequence numbers. It needs no cross-source
//     state, so one Sequencer per shard is sound as long as each
//     source's records all land on the same shard (the ISM's
//     source-affinity hash guarantees this).
//   - CausalMerger matches receives to sends across sources and
//     assigns Lamport logical timestamps. It is inherently global and
//     runs single-threaded at the merge point. Its input must be
//     program-ordered per source; it never reorders within a source.
//
// Orderer composes the two for callers that want the original
// single-stage behavior.

// SourceKey identifies an event source (node, process).
type SourceKey struct {
	Node, Process int32
}

// seqRecord is a Record plus the per-source sequence number assigned
// at capture time; the LIS stamps Tag-independent sequence numbers
// into Payload for kinds that do not use it, but to stay general the
// Sequencer takes the sequence explicitly.
type seqRecord struct {
	rec Record
	seq uint64
}

type msgKey struct {
	from, to int32
	tag      uint16
}

// Sequencer reconstructs per-source program order from out-of-order
// arrivals. Records released by AddTo are in capture-sequence order
// within each source; duplicates (sequence below the source's cursor)
// are dropped. The Sequencer does not look at record kinds and does
// not assign logical timestamps — that is the CausalMerger's job.
type Sequencer struct {
	resume    bool
	nextSeq   map[SourceKey]uint64
	held      map[SourceKey][]seqRecord // out-of-order input buffers
	heldCount int
	maxHeld   int
	sequenced uint64
}

// NewSequencer returns an empty Sequencer.
func NewSequencer() *Sequencer {
	return &Sequencer{
		nextSeq: map[SourceKey]uint64{},
		held:    map[SourceKey][]seqRecord{},
	}
}

// Held returns the number of records currently held back waiting for a
// program-order predecessor.
func (s *Sequencer) Held() int { return s.heldCount }

// MaxHeld returns the maximum number of simultaneously held records.
func (s *Sequencer) MaxHeld() int { return s.maxHeld }

// Sequenced returns the total number of records released in program
// order.
func (s *Sequencer) Sequenced() uint64 { return s.sequenced }

// Resume makes the sequencer adopt an unseen source's first capture
// sequence as that source's starting point instead of holding it back
// waiting for sequence zero. A manager that (re)starts against sources
// already mid-stream — a crashed ISM re-served by resilient LIS
// sessions replaying their unacked windows — would otherwise hold
// every event forever: the prefix went to the dead incarnation and
// will never be resent. Only sound when each source's events arrive in
// program order until its first dispatch (the session protocol's
// in-order replay guarantees this); a reordering transport could
// present sequence n before 0 for a brand-new source and lose the
// prefix to dedup. Sources already seen are unaffected.
func (s *Sequencer) Resume() { s.resume = true }

// SetNext seeds a source's program-order cursor: the next fresh record
// accepted from the source must carry exactly seq, and anything below
// it is dropped as a duplicate. It is the record-granular restore hook
// for a manager rebuilt from its own durable output — a relay that
// re-reads its spool knows exactly how many records of each source it
// already emitted, and seeding the cursor there makes a sender's
// at-least-once replay (which resends whole unacked batches, including
// the already-emitted prefix of a partially dispatched one) dedupe by
// sequence match instead of re-delivering. Call before the source's
// records arrive; it overrides any Resume adoption for the key.
func (s *Sequencer) SetNext(key SourceKey, seq uint64) {
	s.nextSeq[key] = seq
}

// AddTo offers a record with its per-source capture sequence number
// (0-based, contiguous per source) and appends every record that
// became releasable — the record itself plus any held successors it
// unblocks — to dst in program order.
func (s *Sequencer) AddTo(dst []Record, rec Record, seq uint64) []Record {
	key := SourceKey{rec.Node, rec.Process}
	if s.resume {
		if _, seen := s.nextSeq[key]; !seen {
			s.nextSeq[key] = seq
		}
	}
	want := s.nextSeq[key]
	if seq != want {
		if seq < want {
			// Duplicate or replayed record; drop.
			return dst
		}
		s.held[key] = append(s.held[key], seqRecord{rec: rec, seq: seq})
		s.heldCount++
		if s.heldCount > s.maxHeld {
			s.maxHeld = s.heldCount
		}
		return dst
	}
	dst = append(dst, rec)
	s.sequenced++
	s.nextSeq[key] = seq + 1
	// Drain held successors now contiguous with the cursor. Gaps are
	// rare and buffers small; the linear scan per release matches the
	// original Orderer.
	buf := s.held[key]
	for len(buf) > 0 {
		next := s.nextSeq[key]
		idx := -1
		for i, h := range buf {
			if h.seq == next {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		h := buf[idx]
		buf = append(buf[:idx], buf[idx+1:]...)
		s.heldCount--
		dst = append(dst, h.rec)
		s.sequenced++
		s.nextSeq[key] = h.seq + 1
	}
	if len(buf) == 0 {
		delete(s.held, key)
	} else {
		s.held[key] = buf
	}
	return dst
}

// CausalMerger enforces the cross-source happens-before edges (a
// KindRecv happens-after its matching KindSend, matched by Tag with
// Payload holding the peer node) and assigns Lamport logical
// timestamps. Input must already be in program order per source;
// within that constraint sources may interleave arbitrarily, which is
// exactly what the ISM's k-way shard merge produces.
//
// When a receive arrives before its send, the receive is parked and
// its whole source stalls: later records from that source queue behind
// it (program order must survive the wait). The matching send releases
// the receive and drains the queue, recursively unblocking any chains.
// Release order is deterministic — it depends only on the input
// sequence, never on map iteration order — which is what makes
// sharded-vs-single-orderer runs byte-comparable.
type CausalMerger struct {
	clock      uint64
	sendSeen   map[msgKey]int      // multiset of dispatched sends
	recvsHeld  map[msgKey][]Record // receives waiting for sends
	pending    map[SourceKey]*pendQueue
	stalled    map[SourceKey]bool
	heldCount  int
	maxHeld    int
	dispatched uint64
}

// pendQueue is a head-indexed FIFO of program-order successors parked
// behind a stalled receive; popping advances head instead of
// reslicing so drained queues recycle their backing arrays.
type pendQueue struct {
	buf  []Record
	head int
}

// NewCausalMerger returns an empty CausalMerger whose Lamport clock
// starts at 1.
func NewCausalMerger() *CausalMerger {
	return &CausalMerger{
		sendSeen:  map[msgKey]int{},
		recvsHeld: map[msgKey][]Record{},
		pending:   map[SourceKey]*pendQueue{},
		stalled:   map[SourceKey]bool{},
	}
}

// Held returns the number of records currently held back waiting for a
// message dependency (parked receives plus their queued successors).
func (m *CausalMerger) Held() int { return m.heldCount }

// MaxHeld returns the maximum number of simultaneously held records.
func (m *CausalMerger) MaxHeld() int { return m.maxHeld }

// Dispatched returns the total number of records released in causal
// order.
func (m *CausalMerger) Dispatched() uint64 { return m.dispatched }

// Clock returns the current Lamport clock value — the logical
// timestamp of the most recently dispatched record.
func (m *CausalMerger) Clock() uint64 { return m.clock }

func (m *CausalMerger) hold() {
	m.heldCount++
	if m.heldCount > m.maxHeld {
		m.maxHeld = m.heldCount
	}
}

// Observe replays one already-dispatched record back into the merger's
// bookkeeping without re-emitting it: the Lamport clock adopts the
// record's stamp, and send/recv matching state is rebuilt exactly as
// the original dispatch left it (a send deposits a match, a receive
// consumes one). Feeding a previously emitted trace through Observe in
// order therefore reconstructs the merger a crash destroyed — the
// restart hook a relay uses to resume from its spooled root trace with
// Lamport continuity and without double-matching receives against
// sends that were consumed before the crash.
func (m *CausalMerger) Observe(rec Record) {
	if rec.Logical > m.clock {
		m.clock = rec.Logical
	}
	m.dispatched++
	switch rec.Kind {
	case KindSend:
		m.sendSeen[msgKey{from: rec.Node, to: int32(rec.Payload), tag: rec.Tag}]++
	case KindRecv:
		mk := msgKey{from: int32(rec.Payload), to: rec.Node, tag: rec.Tag}
		// A causally valid trace never emits a receive before its send,
		// so the guard only matters for hand-built inputs.
		if m.sendSeen[mk] > 0 {
			m.sendSeen[mk]--
		}
	}
}

// AddTo offers the next record of its source's program-ordered stream
// and appends every record that became dispatchable — stamped with
// Lamport timestamps, in causal order — to dst.
func (m *CausalMerger) AddTo(dst []Record, rec Record) []Record {
	key := SourceKey{rec.Node, rec.Process}
	if m.stalled[key] {
		// A receive from this source is parked; program order forces
		// everything behind it to wait too.
		q := m.pending[key]
		if q == nil {
			q = &pendQueue{}
			m.pending[key] = q
		}
		q.buf = append(q.buf, rec)
		m.hold()
		return dst
	}
	return m.offer(dst, rec, key)
}

func (m *CausalMerger) offer(dst []Record, rec Record, key SourceKey) []Record {
	if rec.Kind == KindRecv {
		mk := msgKey{from: int32(rec.Payload), to: rec.Node, tag: rec.Tag}
		if m.sendSeen[mk] == 0 {
			m.recvsHeld[mk] = append(m.recvsHeld[mk], rec)
			m.stalled[key] = true
			m.hold()
			return dst
		}
		m.sendSeen[mk]--
	}
	return m.release(dst, rec)
}

func (m *CausalMerger) release(dst []Record, rec Record) []Record {
	m.clock++
	rec.Logical = m.clock
	dst = append(dst, rec)
	m.dispatched++
	if rec.Kind == KindSend {
		mk := msgKey{from: rec.Node, to: int32(rec.Payload), tag: rec.Tag}
		m.sendSeen[mk]++
		// Unblock the oldest receive waiting on this send, then drain
		// the successors queued behind it.
		if waiting := m.recvsHeld[mk]; len(waiting) > 0 {
			r := waiting[0]
			m.recvsHeld[mk] = waiting[1:]
			if len(m.recvsHeld[mk]) == 0 {
				delete(m.recvsHeld, mk)
			}
			m.heldCount--
			m.sendSeen[mk]--
			dst = m.release(dst, r)
			rk := SourceKey{r.Node, r.Process}
			delete(m.stalled, rk)
			dst = m.drainPending(dst, rk)
		}
	}
	return dst
}

func (m *CausalMerger) drainPending(dst []Record, key SourceKey) []Record {
	q := m.pending[key]
	if q == nil {
		return dst
	}
	for q.head < len(q.buf) && !m.stalled[key] {
		rec := q.buf[q.head]
		q.buf[q.head] = Record{}
		q.head++
		m.heldCount--
		// May re-park (another receive with a missing send) — the loop
		// condition stops the drain and the remainder stays queued.
		dst = m.offer(dst, rec, key)
	}
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return dst
}

// Orderer reconstructs causal order from out-of-order event arrivals
// and assigns Lamport logical timestamps. It is the single-stage
// composition of a Sequencer and a CausalMerger.
//
// Causality model:
//   - events from the same source are ordered by their capture
//     sequence numbers (program order);
//   - a KindRecv event additionally happens-after the matching
//     KindSend (matched by Tag: send and recv carry the same message
//     tag, with Payload holding the peer node).
//
// An event is dispatchable when its program-order predecessor has been
// dispatched and, for receives, the matching send has been dispatched.
type Orderer struct {
	seq    *Sequencer
	merge  *CausalMerger
	seqBuf []Record // reused program-order staging buffer
}

// NewOrderer returns an empty Orderer whose Lamport clock starts at 1.
func NewOrderer() *Orderer {
	return &Orderer{seq: NewSequencer(), merge: NewCausalMerger()}
}

// Held returns the number of events currently held back out of order —
// the instantaneous input-buffer length of §3.3's "average buffer
// length" metric — across both stages.
func (o *Orderer) Held() int { return o.seq.Held() + o.merge.Held() }

// MaxHeld returns an upper bound on the maximum number of
// simultaneously held events (the per-stage maxima can peak at
// different times).
func (o *Orderer) MaxHeld() int { return o.seq.MaxHeld() + o.merge.MaxHeld() }

// Dispatched returns the total number of events released in causal
// order.
func (o *Orderer) Dispatched() uint64 { return o.merge.Dispatched() }

// Resume makes the orderer adopt an unseen source's first capture
// sequence as that source's starting point; see Sequencer.Resume.
func (o *Orderer) Resume() { o.seq.Resume() }

// Add offers an event with its per-source capture sequence number
// (0-based, contiguous per source). It returns the events that became
// dispatchable, in causal order, each stamped with a Lamport logical
// timestamp.
func (o *Orderer) Add(rec Record, seq uint64) []Record {
	return o.AddTo(nil, rec, seq)
}

// AddTo is Add appending into a caller-provided buffer, so a processor
// offering a whole batch can reuse one dispatch slice across records
// instead of allocating per Add.
func (o *Orderer) AddTo(dst []Record, rec Record, seq uint64) []Record {
	o.seqBuf = o.seq.AddTo(o.seqBuf[:0], rec, seq)
	for _, r := range o.seqBuf {
		dst = o.merge.AddTo(dst, r)
	}
	return dst
}

// CheckCausal verifies that a dispatched stream is causally
// consistent: logical timestamps strictly increase, per-source
// sequence respects program order, and no receive precedes its send.
func CheckCausal(rs []Record) error {
	var lastLogical uint64
	sends := map[msgKey]int{}
	for i, r := range rs {
		if r.Logical <= lastLogical {
			return fmt.Errorf("trace: record %d logical %d not increasing", i, r.Logical)
		}
		lastLogical = r.Logical
		switch r.Kind {
		case KindSend:
			sends[msgKey{from: r.Node, to: int32(r.Payload), tag: r.Tag}]++
		case KindRecv:
			mk := msgKey{from: int32(r.Payload), to: r.Node, tag: r.Tag}
			if sends[mk] == 0 {
				return fmt.Errorf("trace: record %d receive before matching send", i)
			}
			sends[mk]--
		}
	}
	return nil
}

package trace

import (
	"errors"
	"slices"
)

// Perturbation compensation, after Malony, Reed and Wijshoff
// ("Performance Measurement Intrusion and Perturbation Analysis", the
// paper's reference [16], discussed in §4): "The goal of perturbation
// compensation is to reconstruct the actual program behavior from the
// perturbed behavior as it may be recorded by the IS."
//
// The model implemented here is the standard time-based one: every
// captured event carries a fixed per-event instrumentation overhead,
// and every IS flush inserts a known stall (recorded as KindFlush
// markers whose Payload is the stall duration in ns). Compensation
// subtracts, per process timeline, the accumulated overhead from each
// event's timestamp, then re-establishes cross-process consistency by
// delaying receives to not precede their matching (compensated) sends.

// CompensateOptions parameterizes perturbation compensation.
type CompensateOptions struct {
	// PerEventOverheadNs is the capture cost charged to every
	// non-flush record.
	PerEventOverheadNs int64
	// MinMessageLatencyNs is the minimum send->recv latency enforced
	// when re-aligning messages (models wire time).
	MinMessageLatencyNs int64
	// DropFlushRecords removes KindFlush markers from the output.
	DropFlushRecords bool
}

// Compensate returns a new trace with instrumentation perturbation
// removed under the given model. The input must be time-sorted; the
// output is time-sorted. Records are copied, not mutated in place.
func Compensate(rs []Record, opt CompensateOptions) ([]Record, error) {
	if opt.PerEventOverheadNs < 0 || opt.MinMessageLatencyNs < 0 {
		return nil, errors.New("trace: negative compensation parameters")
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Time < rs[i-1].Time {
			return nil, errors.New("trace: compensate requires time-sorted input")
		}
	}
	out := make([]Record, 0, len(rs))
	// Accumulated removed time per process timeline.
	removed := map[SourceKey]int64{}
	for _, r := range rs {
		key := SourceKey{r.Node, r.Process}
		switch r.Kind {
		case KindFlush:
			// The whole stall is IS artifact: remove it from this
			// timeline's future.
			removed[key] += r.Payload
			if !opt.DropFlushRecords {
				c := r
				c.Time -= removed[key] - r.Payload // flush starts before its own stall
				out = append(out, c)
			}
		default:
			c := r
			c.Time -= removed[key]
			out = append(out, c)
			removed[key] += opt.PerEventOverheadNs
		}
	}

	// Re-align messages: a receive may now precede its send; push it
	// (and transitively later events of its timeline) forward.
	pending := map[msgKey][]int64{} // send times by message key, FIFO
	shift := map[SourceKey]int64{}  // forward shift per timeline
	for i := range out {
		key := SourceKey{out[i].Node, out[i].Process}
		out[i].Time += shift[key]
		switch out[i].Kind {
		case KindSend:
			mk := msgKey{from: out[i].Node, to: int32(out[i].Payload), tag: out[i].Tag}
			pending[mk] = append(pending[mk], out[i].Time)
		case KindRecv:
			mk := msgKey{from: int32(out[i].Payload), to: out[i].Node, tag: out[i].Tag}
			q := pending[mk]
			if len(q) == 0 {
				return nil, errors.New("trace: receive without matching send during compensation")
			}
			sendT := q[0]
			pending[mk] = q[1:]
			if earliest := sendT + opt.MinMessageLatencyNs; out[i].Time < earliest {
				delta := earliest - out[i].Time
				out[i].Time = earliest
				shift[key] += delta
			}
		}
	}
	slices.SortStableFunc(out, compareByTime)
	return out, nil
}

// OverheadReport quantifies IS perturbation present in a trace.
type OverheadReport struct {
	Events        int
	FlushCount    int
	FlushStallNs  int64 // total stall time recorded by flush markers
	SpanNs        int64 // last - first timestamp
	FlushFraction float64
}

// MeasureOverhead scans a trace for IS-induced overhead markers.
func MeasureOverhead(rs []Record) OverheadReport {
	var rep OverheadReport
	if len(rs) == 0 {
		return rep
	}
	minT, maxT := rs[0].Time, rs[0].Time
	for _, r := range rs {
		if r.Time < minT {
			minT = r.Time
		}
		if r.Time > maxT {
			maxT = r.Time
		}
		if r.Kind == KindFlush {
			rep.FlushCount++
			rep.FlushStallNs += r.Payload
		} else {
			rep.Events++
		}
	}
	rep.SpanNs = maxT - minT
	if rep.SpanNs > 0 {
		rep.FlushFraction = float64(rep.FlushStallNs) / float64(rep.SpanNs)
	}
	return rep
}

// Package trace implements instrumentation-data management: the event
// record format shared by all LIS implementations, binary and text
// codecs, trace files, multi-node merging, Lamport logical clocks for
// causal ordering (the technique "of assigning logical time-stamps, as
// implemented by VIZIR", §3.3), and perturbation compensation in the
// spirit of Malony, Reed and Wijshoff (the paper's reference [16]).
//
// The paper's term "instrumentation data" covers both execution
// information (messages, I/O) and program information (variables,
// metric samples); Record carries either through the Kind and Payload
// fields.
package trace

import (
	"fmt"
	"slices"
	"strconv"
)

// Kind identifies what a Record describes, in the spirit of the PICL
// event-record vocabulary.
type Kind uint8

// Record kinds. The numbering is part of the binary trace format and
// must not be reordered.
const (
	KindUser    Kind = iota // user-defined event
	KindSend                // message send; Payload = destination node
	KindRecv                // message receive; Payload = source node
	KindBlockIn             // enter instrumented block; Payload = block id
	KindBlockOut
	KindSample // metric sample; Payload = raw metric value
	KindFlush  // IS buffer flush marker (IS-internal perturbation)
	KindMark   // phase marker
	numKinds
)

var kindNames = [...]string{
	KindUser: "user", KindSend: "send", KindRecv: "recv",
	KindBlockIn: "block-in", KindBlockOut: "block-out",
	KindSample: "sample", KindFlush: "flush", KindMark: "mark",
}

// String returns the record kind's canonical lowercase name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined record kind.
func (k Kind) Valid() bool { return k < numKinds }

// Record is one instrumentation event record. Timestamps are
// nanoseconds of virtual or physical time; Logical is the Lamport
// timestamp assigned at ordering time (zero until assigned).
type Record struct {
	Node    int32 // concurrent-system node that generated the event
	Process int32 // process id on that node
	Kind    Kind
	Tag     uint16 // user event tag / metric id
	Time    int64  // capture timestamp, ns
	Logical uint64 // Lamport timestamp (assigned by the ISM)
	Payload int64  // kind-specific datum
}

// String renders the record in the stable single-line text form used
// by trace dumps and the text codec.
func (r Record) String() string { return string(r.AppendText(nil)) }

// AppendText appends the record's single-line text form (no trailing
// newline) to dst and returns the extended slice. MarshalText renders
// through one reused buffer this way instead of allocating a string
// per record.
func (r Record) AppendText(dst []byte) []byte {
	dst = strconv.AppendInt(dst, int64(r.Node), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(r.Process), 10)
	dst = append(dst, ' ')
	dst = append(dst, r.Kind.String()...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, uint64(r.Tag), 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, r.Time, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, r.Logical, 10)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, r.Payload, 10)
	return dst
}

// Before reports whether r precedes o in (Time, Node, Process) order,
// the total order used for merged off-line traces.
func (r Record) Before(o Record) bool {
	if r.Time != o.Time {
		return r.Time < o.Time
	}
	if r.Node != o.Node {
		return r.Node < o.Node
	}
	return r.Process < o.Process
}

// compareByTime is the merged-trace total order as a three-way
// comparison, shared by the stable sorts here and in perturbation
// compensation. slices.SortStableFunc with a concrete comparator
// avoids the reflection-based swapping of sort.SliceStable on this
// hot path.
func compareByTime(a, b Record) int {
	if a.Time != b.Time {
		if a.Time < b.Time {
			return -1
		}
		return 1
	}
	if a.Node != b.Node {
		return int(a.Node) - int(b.Node)
	}
	return int(a.Process) - int(b.Process)
}

// SortByTime sorts records in the merged-trace total order.
func SortByTime(rs []Record) {
	slices.SortStableFunc(rs, compareByTime)
}

// SortByLogical sorts records by assigned Lamport timestamp, breaking
// ties by node then process, the order used for on-line dispatch.
func SortByLogical(rs []Record) {
	slices.SortStableFunc(rs, func(a, b Record) int {
		if a.Logical != b.Logical {
			if a.Logical < b.Logical {
				return -1
			}
			return 1
		}
		if a.Node != b.Node {
			return int(a.Node) - int(b.Node)
		}
		return int(a.Process) - int(b.Process)
	})
}

// Merge merges per-node traces, each already sorted by time, into one
// trace in the merged-trace total order (the PICL ISM's "merging
// distributed buffers as a trace file", Table 1). It runs a k-way
// merge, O(n log k).
func Merge(traces ...[]Record) []Record {
	type cursor struct {
		rs []Record
		i  int
	}
	var heap []cursor
	total := 0
	for _, tr := range traces {
		if len(tr) > 0 {
			heap = append(heap, cursor{rs: tr})
			total += len(tr)
		}
	}
	less := func(a, b cursor) bool { return a.rs[a.i].Before(b.rs[b.i]) }
	// Build binary heap.
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && less(heap[l], heap[small]) {
				small = l
			}
			if r < len(heap) && less(heap[r], heap[small]) {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for i := len(heap)/2 - 1; i >= 0; i-- {
		down(i)
	}
	out := make([]Record, 0, total)
	for len(heap) > 0 {
		c := &heap[0]
		out = append(out, c.rs[c.i])
		c.i++
		if c.i == len(c.rs) {
			heap[0] = heap[len(heap)-1]
			heap = heap[:len(heap)-1]
		}
		if len(heap) > 0 {
			down(0)
		}
	}
	return out
}

// Validate checks a merged trace for structural sanity: non-decreasing
// time, valid kinds, and matched block in/out nesting per process.
func Validate(rs []Record) error {
	depth := map[[2]int32]int{}
	var last int64
	for i, r := range rs {
		if !r.Kind.Valid() {
			return fmt.Errorf("trace: record %d has invalid kind %d", i, r.Kind)
		}
		if r.Time < last {
			return fmt.Errorf("trace: record %d goes back in time (%d < %d)", i, r.Time, last)
		}
		last = r.Time
		key := [2]int32{r.Node, r.Process}
		switch r.Kind {
		case KindBlockIn:
			depth[key]++
		case KindBlockOut:
			depth[key]--
			if depth[key] < 0 {
				return fmt.Errorf("trace: record %d closes unopened block on node %d process %d", i, r.Node, r.Process)
			}
		}
	}
	for key, d := range depth {
		if d != 0 {
			return fmt.Errorf("trace: node %d process %d ends with %d unclosed blocks", key[0], key[1], d)
		}
	}
	return nil
}

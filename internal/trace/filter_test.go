package trace

import (
	"testing"
)

func filterFixture() []Record {
	return []Record{
		{Node: 0, Kind: KindUser, Time: 10},
		{Node: 1, Kind: KindSend, Time: 20, Tag: 1, Payload: 0},
		{Node: 0, Kind: KindRecv, Time: 30, Tag: 1, Payload: 1},
		{Node: 2, Kind: KindUser, Time: 40},
		{Node: 1, Kind: KindSample, Time: 50},
	}
}

func TestFilterAndByNode(t *testing.T) {
	rs := filterFixture()
	got := ByNode(rs, 1)
	if len(got) != 2 || got[0].Kind != KindSend || got[1].Kind != KindSample {
		t.Fatalf("ByNode %v", got)
	}
	if len(ByNode(rs, 9)) != 0 {
		t.Fatal("phantom node")
	}
	// Input untouched.
	if len(rs) != 5 {
		t.Fatal("input modified")
	}
}

func TestByKind(t *testing.T) {
	rs := filterFixture()
	if got := ByKind(rs, KindUser); len(got) != 2 {
		t.Fatalf("ByKind %v", got)
	}
}

func TestTimeWindow(t *testing.T) {
	rs := filterFixture()
	got := TimeWindow(rs, 20, 40)
	if len(got) != 2 || got[0].Time != 20 || got[1].Time != 30 {
		t.Fatalf("window %v", got)
	}
	if len(TimeWindow(rs, 100, 200)) != 0 {
		t.Fatal("empty window not empty")
	}
}

func TestSplitRoundTripsThroughMerge(t *testing.T) {
	rs := filterFixture()
	SortByTime(rs)
	parts := Split(rs)
	if len(parts) != 3 {
		t.Fatalf("parts %v", parts)
	}
	var traces [][]Record
	for _, node := range Nodes(rs) {
		traces = append(traces, parts[node])
	}
	merged := Merge(traces...)
	if len(merged) != len(rs) {
		t.Fatalf("merge lost records")
	}
	for i := range rs {
		if merged[i] != rs[i] {
			t.Fatalf("split/merge not identity at %d", i)
		}
	}
}

func TestNodesSorted(t *testing.T) {
	rs := []Record{{Node: 5}, {Node: 1}, {Node: 5}, {Node: 3}}
	got := Nodes(rs)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("nodes %v", got)
	}
	if Nodes(nil) != nil {
		t.Fatal("empty nodes")
	}
}

func TestSpan(t *testing.T) {
	first, last, ok := Span(filterFixture())
	if !ok || first != 10 || last != 50 {
		t.Fatalf("span %d %d %v", first, last, ok)
	}
	if _, _, ok := Span(nil); ok {
		t.Fatal("empty span ok")
	}
}

func TestCountByKind(t *testing.T) {
	counts := CountByKind(filterFixture())
	if counts[KindUser] != 2 || counts[KindSend] != 1 || counts[KindFlush] != 0 {
		t.Fatalf("counts %v", counts)
	}
}

package trace

// Columnar trace segments. A segment is the unit of compressed trace
// retention: one run of records stored column-by-column, each column
// under the encoding its distribution favors, with a footer index that
// lets a reader answer "does this segment matter to my query?" from a
// handful of bytes instead of a full decode.
//
//	┌ header ──────────────────────────────────────────────────┐
//	│ magic u32 │ version u32 │ segLen u32 │ count u32          │
//	├ columns (concatenated, offsets in the footer) ───────────┤
//	│ 0 time     delta-of-delta zigzag varints                  │
//	│ 1 logical  delta-of-delta zigzag varints (ingest ticks)   │
//	│ 2 node     run-length (len uvarint, value zigzag varint)  │
//	│ 3 process  run-length (len uvarint, value zigzag varint)  │
//	│ 4 kind     dictionary (size uvarint, kinds) + RLE indexes │
//	│ 5 tag      delta zigzag varints                           │
//	│ 6 payload  delta zigzag varints                           │
//	├ footer ──────────────────────────────────────────────────┤
//	│ colOff[7] u32 │ colEnd u32                                │
//	│ minTime i64 │ maxTime i64                                 │
//	│ nSources u32 │ nSources × {node i32, count u32,           │
//	│                            minTime i64, maxTime i64}      │
//	│ crc32c u32 │ footerLen u32 │ footerMagic u32              │
//	└──────────────────────────────────────────────────────────┘
//
// The crc32c covers every byte between the header and the crc field
// itself — columns and footer index alike.
//
// Timestamps and ingest ticks are near-monotone, so their second
// differences are near zero and encode in one byte; node and process
// ids arrive in long constant runs (a spill run is a sequence of
// per-source batches); kinds draw from a tiny alphabet. The flat codec
// spends a fixed RecordSize = 36 bytes per record; a segment of the
// pipeline-benchmark workload spends well under 9.
//
// All fixed-width integers are little-endian. Signed varint values use
// zigzag encoding. Delta arithmetic is two's-complement wrapping in
// both directions, so every int64/uint64 bit pattern round-trips
// exactly.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"
)

const (
	segMagic     = 0x47455350 // "PSEG"
	segFootMagic = 0x50455347 // "GSEP"
	segVersion   = 1

	segHeaderSize = 16
	// segFooterBase is the footer size with zero sources; each source
	// range adds segSourceSize bytes.
	segFooterBase = 64
	segSourceSize = 24
	// segMinSize is the smallest well-formed segment (empty, no
	// sources).
	segMinSize = segHeaderSize + segFooterBase
	// MaxSegmentBytes bounds a single segment's encoded size. The
	// stream reader refuses larger length claims before allocating.
	MaxSegmentBytes = 1 << 30
)

// ErrBadSegment is returned for structurally invalid or corrupt
// segment bytes. Decoders never panic on hostile input; they wrap this
// sentinel with a description of what failed.
var ErrBadSegment = errors.New("trace: bad segment")

var segCRC = crc32.MakeTable(crc32.Castagnoli)

// SegmentHeaderSize is the fixed 16-byte prefix every encoded segment
// starts with: magic, version, encoded length, record count.
const SegmentHeaderSize = segHeaderSize

// ParseSegmentHeader validates a segment's fixed header prefix and
// returns its record count and total encoded length (header through
// footer). Callers use it to frame segments inside a larger file
// without touching column bytes; Parse re-validates the full framing.
func ParseSegmentHeader(hdr []byte) (count, segLen int, err error) {
	if len(hdr) < SegmentHeaderSize {
		return 0, 0, fmt.Errorf("%w: %d bytes is shorter than a header", ErrBadSegment, len(hdr))
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != segMagic {
		return 0, 0, fmt.Errorf("%w: bad magic %#x", ErrBadSegment, m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != segVersion {
		return 0, 0, fmt.Errorf("%w: unsupported version %d", ErrBadSegment, v)
	}
	segLen = int(binary.LittleEndian.Uint32(hdr[8:]))
	if segLen < segMinSize || segLen > MaxSegmentBytes {
		return 0, 0, fmt.Errorf("%w: segment length %d outside [%d, %d]", ErrBadSegment, segLen, segMinSize, MaxSegmentBytes)
	}
	return int(binary.LittleEndian.Uint32(hdr[12:])), segLen, nil
}

// SourceRange is one per-source entry in a segment's footer index: how
// many of the segment's records a node contributed and the time span
// they cover.
type SourceRange struct {
	Node    int32
	Count   int
	MinTime int64
	MaxTime int64
}

// segScratch holds the per-encoder reusable state so steady-state
// segment encoding performs no allocation beyond output growth. The
// column encoders themselves live in colcodec.go, shared with the wire
// frame codec.
type segScratch struct {
	sources []SourceRange
	kinds   []byte
}

// AppendSegment appends the columnar segment encoding of rs to dst and
// returns the extended slice. The records are stored in the given
// order and decode byte-identically. Encoding scratch is allocated per
// call; hot paths should hold a SegmentWriter, which reuses it.
func AppendSegment(dst []byte, rs []Record) []byte {
	var sc segScratch
	return appendSegment(dst, rs, &sc)
}

func appendSegment(dst []byte, rs []Record, sc *segScratch) []byte {
	base := len(dst)
	// Header; segLen is patched once the total is known.
	dst = binary.LittleEndian.AppendUint32(dst, segMagic)
	dst = binary.LittleEndian.AppendUint32(dst, segVersion)
	dst = binary.LittleEndian.AppendUint32(dst, 0)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rs)))

	var colOff [numColumns + 1]uint32
	col := func(i int) { colOff[i] = uint32(len(dst) - base) }

	// Column 0: capture time, delta-of-delta.
	col(0)
	dst = appendDoD(dst, rs, func(r *Record) int64 { return r.Time })
	// Column 1: logical/ingest ticks, delta-of-delta over the uint64
	// bits.
	col(1)
	dst = appendDoD(dst, rs, func(r *Record) int64 { return int64(r.Logical) })
	// Column 2: node ids, run-length encoded.
	col(2)
	dst = appendRLE(dst, rs, func(r *Record) int64 { return int64(r.Node) })
	// Column 3: process ids, run-length encoded.
	col(3)
	dst = appendRLE(dst, rs, func(r *Record) int64 { return int64(r.Process) })
	// Column 4: kinds, dictionary + run-length indexes.
	col(4)
	dst, sc.kinds = appendKindsCol(dst, rs, sc.kinds)
	// Column 5: tags, delta.
	col(5)
	dst = appendDelta(dst, rs, func(r *Record) int64 { return int64(r.Tag) })
	// Column 6: payloads, delta.
	col(6)
	dst = appendDelta(dst, rs, func(r *Record) int64 { return r.Payload })
	col(7)
	colEnd := uint32(len(dst) - base)

	// Footer.
	for i := 0; i < numColumns; i++ {
		dst = binary.LittleEndian.AppendUint32(dst, colOff[i])
	}
	dst = binary.LittleEndian.AppendUint32(dst, colEnd)
	minT, maxT := timeRange(rs)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(minT))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(maxT))
	sc.sources = collectSources(sc.sources[:0], rs)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(sc.sources)))
	for _, s := range sc.sources {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Node))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Count))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(s.MinTime))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(s.MaxTime))
	}
	// The checksum covers the columns AND the footer index (everything
	// between the header and the crc field itself): a flipped index
	// byte must fail loudly, not silently misdirect range queries.
	crc := crc32.Checksum(dst[base+segHeaderSize:], segCRC)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	footerLen := uint32(segFooterBase + segSourceSize*len(sc.sources))
	dst = binary.LittleEndian.AppendUint32(dst, footerLen)
	dst = binary.LittleEndian.AppendUint32(dst, segFootMagic)

	binary.LittleEndian.PutUint32(dst[base+8:], uint32(len(dst)-base))
	return dst
}

// timeRange returns the min and max capture time over rs (zeros for an
// empty run).
func timeRange(rs []Record) (int64, int64) {
	if len(rs) == 0 {
		return 0, 0
	}
	minT, maxT := rs[0].Time, rs[0].Time
	for i := 1; i < len(rs); i++ {
		if t := rs[i].Time; t < minT {
			minT = t
		} else if t > maxT {
			maxT = t
		}
	}
	return minT, maxT
}

// collectSources accumulates per-node counts and time spans into dst
// (reused backing storage), returned sorted by node.
func collectSources(dst []SourceRange, rs []Record) []SourceRange {
	for i := range rs {
		r := &rs[i]
		found := false
		for j := range dst {
			if dst[j].Node == r.Node {
				dst[j].Count++
				if r.Time < dst[j].MinTime {
					dst[j].MinTime = r.Time
				}
				if r.Time > dst[j].MaxTime {
					dst[j].MaxTime = r.Time
				}
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, SourceRange{Node: r.Node, Count: 1, MinTime: r.Time, MaxTime: r.Time})
		}
	}
	slices.SortFunc(dst, func(a, b SourceRange) int { return int(a.Node) - int(b.Node) })
	return dst
}

// Segment is a parsed columnar segment: the footer index is decoded,
// the columns stay lazy until a decode call. The zero value is ready;
// Parse may be called repeatedly to reuse the index and decode scratch
// across segments.
type Segment struct {
	buf      []byte
	count    int
	minTime  int64
	maxTime  int64
	sources  []SourceRange
	colOff   [numColumns + 1]int
	filtered []Record // reused scratch for filtered decodes
}

// Parse reads the segment at the start of buf, returning the bytes
// following it. It validates framing, the footer index and the column
// checksum; the per-column decode work is deferred to the Append*
// methods. The Segment aliases buf, which must stay immutable while
// the Segment is in use.
func (s *Segment) Parse(buf []byte) ([]byte, error) {
	if len(buf) < segHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than a header", ErrBadSegment, len(buf))
	}
	if m := binary.LittleEndian.Uint32(buf[0:]); m != segMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadSegment, m)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != segVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSegment, v)
	}
	segLen := int(binary.LittleEndian.Uint32(buf[8:]))
	if segLen < segMinSize || segLen > len(buf) {
		return nil, fmt.Errorf("%w: segment length %d outside [%d, %d]", ErrBadSegment, segLen, segMinSize, len(buf))
	}
	count := int(binary.LittleEndian.Uint32(buf[12:]))
	b := buf[:segLen]

	if m := binary.LittleEndian.Uint32(b[segLen-4:]); m != segFootMagic {
		return nil, fmt.Errorf("%w: bad footer magic %#x", ErrBadSegment, m)
	}
	footerLen := int(binary.LittleEndian.Uint32(b[segLen-8:]))
	if footerLen < segFooterBase || footerLen > segLen-segHeaderSize {
		return nil, fmt.Errorf("%w: footer length %d outside [%d, %d]", ErrBadSegment, footerLen, segFooterBase, segLen-segHeaderSize)
	}
	foot := b[segLen-footerLen:]
	var colOff [numColumns + 1]int
	for i := 0; i < numColumns; i++ {
		colOff[i] = int(binary.LittleEndian.Uint32(foot[4*i:]))
	}
	colEnd := int(binary.LittleEndian.Uint32(foot[4*numColumns:]))
	colOff[numColumns] = colEnd
	if colEnd != segLen-footerLen {
		return nil, fmt.Errorf("%w: column end %d does not meet footer start %d", ErrBadSegment, colEnd, segLen-footerLen)
	}
	prev := segHeaderSize
	for i := 0; i <= numColumns; i++ {
		if colOff[i] < prev || colOff[i] > colEnd {
			return nil, fmt.Errorf("%w: column %d offset %d outside [%d, %d]", ErrBadSegment, i, colOff[i], prev, colEnd)
		}
		prev = colOff[i]
	}
	if colOff[0] != segHeaderSize {
		return nil, fmt.Errorf("%w: first column starts at %d, want %d", ErrBadSegment, colOff[0], segHeaderSize)
	}
	// Every varint column spends at least one byte per record, so an
	// absurd count claim is caught before any decode buffer is sized
	// by it.
	for _, c := range [...]int{0, 1, 5, 6} {
		if colOff[c+1]-colOff[c] < count {
			return nil, fmt.Errorf("%w: column %d has %d bytes for %d records", ErrBadSegment, c, colOff[c+1]-colOff[c], count)
		}
	}
	minTime := int64(binary.LittleEndian.Uint64(foot[32:]))
	maxTime := int64(binary.LittleEndian.Uint64(foot[40:]))
	nSources := int(binary.LittleEndian.Uint32(foot[48:]))
	if footerLen != segFooterBase+segSourceSize*nSources {
		return nil, fmt.Errorf("%w: footer length %d does not fit %d sources", ErrBadSegment, footerLen, nSources)
	}
	sources := s.sources[:0]
	total := 0
	prevNode := int64(math.MinInt64)
	for i := 0; i < nSources; i++ {
		off := 52 + segSourceSize*i
		sr := SourceRange{
			Node:    int32(binary.LittleEndian.Uint32(foot[off:])),
			Count:   int(binary.LittleEndian.Uint32(foot[off+4:])),
			MinTime: int64(binary.LittleEndian.Uint64(foot[off+8:])),
			MaxTime: int64(binary.LittleEndian.Uint64(foot[off+16:])),
		}
		if int64(sr.Node) <= prevNode {
			return nil, fmt.Errorf("%w: source index not strictly ascending at node %d", ErrBadSegment, sr.Node)
		}
		prevNode = int64(sr.Node)
		total += sr.Count
		sources = append(sources, sr)
	}
	if total != count {
		return nil, fmt.Errorf("%w: source counts sum to %d, segment claims %d records", ErrBadSegment, total, count)
	}
	if want := binary.LittleEndian.Uint32(foot[52+segSourceSize*nSources:]); crc32.Checksum(b[segHeaderSize:segLen-12], segCRC) != want {
		return nil, fmt.Errorf("%w: segment checksum mismatch", ErrBadSegment)
	}

	s.buf = b
	s.count = count
	s.minTime, s.maxTime = minTime, maxTime
	s.sources = sources
	s.colOff = colOff
	return buf[segLen:], nil
}

// Count returns the number of records in the segment.
func (s *Segment) Count() int { return s.count }

// Len returns the segment's encoded length in bytes.
func (s *Segment) Len() int { return len(s.buf) }

// MinTime returns the earliest capture time in the segment.
func (s *Segment) MinTime() int64 { return s.minTime }

// MaxTime returns the latest capture time in the segment.
func (s *Segment) MaxTime() int64 { return s.maxTime }

// Sources returns the per-source footer index, sorted by node. The
// slice is owned by the Segment and valid until the next Parse.
func (s *Segment) Sources() []SourceRange { return s.sources }

// Overlaps reports whether any record's time could fall in
// [minT, maxT] — the segment-skipping test for time-range reads.
func (s *Segment) Overlaps(minT, maxT int64) bool {
	return s.count > 0 && s.minTime <= maxT && s.maxTime >= minT
}

// HasSource reports whether the segment holds records from node — the
// segment-skipping test for per-source reads.
func (s *Segment) HasSource(node int32) bool {
	_, ok := slices.BinarySearchFunc(s.sources, node, func(sr SourceRange, n int32) int {
		return int(sr.Node) - int(n)
	})
	return ok
}

// column returns column i's encoded bytes.
func (s *Segment) column(i int) []byte { return s.buf[s.colOff[i]:s.colOff[i+1]] }

// AppendRecords decodes every record in the segment, appending to dst.
// On error dst is returned at its original length. With sufficient
// capacity in dst the decode performs no allocation.
func (s *Segment) AppendRecords(dst []Record) ([]Record, error) {
	base := len(dst)
	dst = slices.Grow(dst, s.count)[:base+s.count]
	out := dst[base:]

	if err := s.decodeDoD(0, out, func(r *Record, v int64) { r.Time = v }); err != nil {
		return dst[:base], err
	}
	if err := s.decodeDoD(1, out, func(r *Record, v int64) { r.Logical = uint64(v) }); err != nil {
		return dst[:base], err
	}
	if err := s.decodeRLE(2, out, func(r *Record, v int64) { r.Node = int32(v) }); err != nil {
		return dst[:base], err
	}
	if err := s.decodeRLE(3, out, func(r *Record, v int64) { r.Process = int32(v) }); err != nil {
		return dst[:base], err
	}
	if err := s.decodeKinds(out); err != nil {
		return dst[:base], err
	}
	if err := s.decodeDelta(5, out, func(r *Record, v int64) { r.Tag = uint16(v) }); err != nil {
		return dst[:base], err
	}
	if err := s.decodeDelta(6, out, func(r *Record, v int64) { r.Payload = v }); err != nil {
		return dst[:base], err
	}
	return dst, nil
}

// AppendRange decodes the records whose capture time falls in
// [minT, maxT], appending to dst. Segments whose footer excludes the
// range are skipped without touching the columns.
func (s *Segment) AppendRange(dst []Record, minT, maxT int64) ([]Record, error) {
	if !s.Overlaps(minT, maxT) {
		return dst, nil
	}
	var err error
	s.filtered, err = s.AppendRecords(s.filtered[:0])
	if err != nil {
		return dst, err
	}
	for _, r := range s.filtered {
		if r.Time >= minT && r.Time <= maxT {
			dst = append(dst, r)
		}
	}
	return dst, nil
}

// AppendSource decodes the records contributed by node, appending to
// dst. Segments without that source are skipped via the footer index.
func (s *Segment) AppendSource(dst []Record, node int32) ([]Record, error) {
	if !s.HasSource(node) {
		return dst, nil
	}
	var err error
	s.filtered, err = s.AppendRecords(s.filtered[:0])
	if err != nil {
		return dst, err
	}
	for _, r := range s.filtered {
		if r.Node == node {
			dst = append(dst, r)
		}
	}
	return dst, nil
}

// consumed enforces a segment column's exact-length contract: the
// shared stream decoders (colcodec.go) return the bytes they did not
// consume, and a footer-framed column must be consumed exactly.
func consumed(rest []byte, name string, err error) error {
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in %s column", ErrBadSegment, len(rest), name)
	}
	return nil
}

func (s *Segment) decodeDoD(ci int, out []Record, set func(*Record, int64)) error {
	rest, err := decodeDoDCol(s.column(ci), colNames[ci], out, set)
	return consumed(rest, colNames[ci], err)
}

func (s *Segment) decodeDelta(ci int, out []Record, set func(*Record, int64)) error {
	rest, err := decodeDeltaCol(s.column(ci), colNames[ci], out, set)
	return consumed(rest, colNames[ci], err)
}

func (s *Segment) decodeRLE(ci int, out []Record, set func(*Record, int64)) error {
	rest, err := decodeRLECol(s.column(ci), colNames[ci], out, set)
	return consumed(rest, colNames[ci], err)
}

func (s *Segment) decodeKinds(out []Record) error {
	rest, err := decodeKindsCol(s.column(4), out)
	return consumed(rest, colNames[4], err)
}

// SegmentWriter encodes record runs as consecutive segments on an
// io.Writer. Each WriteSegment is a single Write of one self-framed
// segment, so a segment file is an append-only concatenation — and a
// torn tail is detected by the next reader, not silently decoded.
// Encode scratch is reused across calls.
type SegmentWriter struct {
	w        io.Writer
	buf      []byte
	sc       segScratch
	wrote    int64
	segments int
}

// NewSegmentWriter creates a segment writer on w.
func NewSegmentWriter(w io.Writer) *SegmentWriter {
	return &SegmentWriter{w: w}
}

// WriteSegment encodes rs as one segment and writes it, returning the
// encoded size.
func (sw *SegmentWriter) WriteSegment(rs []Record) (int, error) {
	sw.buf = appendSegment(sw.buf[:0], rs, &sw.sc)
	n, err := sw.w.Write(sw.buf)
	sw.wrote += int64(n)
	if err != nil {
		return n, err
	}
	if n != len(sw.buf) {
		return n, io.ErrShortWrite
	}
	sw.segments++
	return n, nil
}

// Offset returns the total bytes written — the next segment's start
// offset.
func (sw *SegmentWriter) Offset() int64 { return sw.wrote }

// Segments returns the number of segments written.
func (sw *SegmentWriter) Segments() int { return sw.segments }

// SegmentReader is the bulk decoder over a stream of segments: it
// frames segments out of an io.Reader, exposes each one's footer index
// for skipping, and reconstructs records into caller-owned batches
// with no steady-state allocation (the segment buffer and index
// scratch are reused across segments).
type SegmentReader struct {
	r   io.Reader
	seg Segment
	buf []byte
}

// NewSegmentReader creates a segment reader on r.
func NewSegmentReader(r io.Reader) *SegmentReader {
	return &SegmentReader{r: r}
}

// Next frames and parses the next segment, returning its index view.
// The returned Segment is reused by the following Next call. It
// returns io.EOF cleanly at end of stream.
func (sr *SegmentReader) Next() (*Segment, error) {
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(sr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: truncated header: %v", ErrBadSegment, err)
	}
	_, segLen, err := ParseSegmentHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if cap(sr.buf) < segLen {
		sr.buf = make([]byte, segLen)
	}
	buf := sr.buf[:segLen]
	copy(buf, hdr[:])
	if _, err := io.ReadFull(sr.r, buf[segHeaderSize:]); err != nil {
		return nil, fmt.Errorf("%w: truncated segment body: %v", ErrBadSegment, err)
	}
	if _, err := sr.seg.Parse(buf); err != nil {
		return nil, err
	}
	return &sr.seg, nil
}

// ReadAll decodes every record from every remaining segment.
func (sr *SegmentReader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		seg, err := sr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out, err = seg.AppendRecords(out)
		if err != nil {
			return out, err
		}
	}
}

package trace

import (
	"testing"
)

func TestCompensateRemovesPerEventOverhead(t *testing.T) {
	// True events at 0, 100, 200 perturbed by 10ns per capture:
	// recorded at 0, 110, 220.
	rs := []Record{
		{Node: 0, Kind: KindUser, Time: 0},
		{Node: 0, Kind: KindUser, Time: 110},
		{Node: 0, Kind: KindUser, Time: 220},
	}
	out, err := Compensate(rs, CompensateOptions{PerEventOverheadNs: 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 100, 200}
	for i, r := range out {
		if r.Time != want[i] {
			t.Fatalf("compensated times %v", out)
		}
	}
}

func TestCompensateRemovesFlushStalls(t *testing.T) {
	// Event, flush stall of 1000, event that was pushed 1000 late.
	rs := []Record{
		{Node: 0, Kind: KindUser, Time: 100},
		{Node: 0, Kind: KindFlush, Time: 150, Payload: 1000},
		{Node: 0, Kind: KindUser, Time: 1200},
	}
	out, err := Compensate(rs, CompensateOptions{DropFlushRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("flush marker not dropped: %v", out)
	}
	if out[0].Time != 100 || out[1].Time != 200 {
		t.Fatalf("compensated %v", out)
	}
}

func TestCompensateKeepsFlushWhenAsked(t *testing.T) {
	rs := []Record{
		{Node: 0, Kind: KindFlush, Time: 50, Payload: 500},
		{Node: 0, Kind: KindUser, Time: 600},
	}
	out, err := Compensate(rs, CompensateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("records %v", out)
	}
	if out[1].Time != 100 {
		t.Fatalf("post-flush event at %d, want 100", out[1].Time)
	}
}

func TestCompensateRealignsMessages(t *testing.T) {
	// Node 0 sends at 100 (no overheads); node 1's timeline had a big
	// flush stall so after compensation its recv would land before
	// the send; compensation must push it to send+latency.
	rs := []Record{
		{Node: 1, Kind: KindFlush, Time: 10, Payload: 500},
		{Node: 0, Kind: KindSend, Tag: 1, Payload: 1, Time: 100},
		{Node: 1, Kind: KindRecv, Tag: 1, Payload: 0, Time: 550},
		{Node: 1, Kind: KindUser, Time: 560},
	}
	out, err := Compensate(rs, CompensateOptions{MinMessageLatencyNs: 20, DropFlushRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	byKind := map[Kind]Record{}
	for _, r := range out {
		byKind[r.Kind] = r
	}
	if byKind[KindRecv].Time != 120 {
		t.Fatalf("recv at %d, want 120", byKind[KindRecv].Time)
	}
	// The follower event shifts by the same delta (raw 560-500=60 -> +70 = 130).
	if byKind[KindUser].Time != 130 {
		t.Fatalf("follower at %d, want 130", byKind[KindUser].Time)
	}
}

func TestCompensateErrors(t *testing.T) {
	if _, err := Compensate([]Record{{Time: 5}, {Time: 1}}, CompensateOptions{}); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if _, err := Compensate(nil, CompensateOptions{PerEventOverheadNs: -1}); err == nil {
		t.Fatal("negative overhead accepted")
	}
	orphan := []Record{{Node: 1, Kind: KindRecv, Tag: 9, Payload: 0, Time: 5}}
	if _, err := Compensate(orphan, CompensateOptions{}); err == nil {
		t.Fatal("orphan receive accepted")
	}
}

func TestCompensateOutputSorted(t *testing.T) {
	rs := []Record{
		{Node: 0, Kind: KindUser, Time: 0},
		{Node: 1, Kind: KindFlush, Time: 1, Payload: 100},
		{Node: 0, Kind: KindUser, Time: 50},
		{Node: 1, Kind: KindUser, Time: 150},
	}
	out, err := Compensate(rs, CompensateOptions{DropFlushRecords: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Before(out[i-1]) {
			t.Fatalf("output unsorted: %v", out)
		}
	}
}

func TestMeasureOverhead(t *testing.T) {
	rs := []Record{
		{Kind: KindUser, Time: 0},
		{Kind: KindFlush, Time: 100, Payload: 300},
		{Kind: KindFlush, Time: 500, Payload: 200},
		{Kind: KindUser, Time: 1000},
	}
	rep := MeasureOverhead(rs)
	if rep.Events != 2 || rep.FlushCount != 2 {
		t.Fatalf("report %+v", rep)
	}
	if rep.FlushStallNs != 500 || rep.SpanNs != 1000 {
		t.Fatalf("report %+v", rep)
	}
	if rep.FlushFraction != 0.5 {
		t.Fatalf("flush fraction %v", rep.FlushFraction)
	}
}

func TestMeasureOverheadEmpty(t *testing.T) {
	rep := MeasureOverhead(nil)
	if rep.Events != 0 || rep.FlushFraction != 0 {
		t.Fatalf("empty report %+v", rep)
	}
}

func TestCompensateRoundTripInvariant(t *testing.T) {
	// Compensating a trace with zero parameters is the identity (for
	// sorted traces without flush markers).
	rs := []Record{
		{Node: 0, Kind: KindUser, Time: 1},
		{Node: 1, Kind: KindSend, Tag: 2, Payload: 0, Time: 3},
		{Node: 0, Kind: KindRecv, Tag: 2, Payload: 1, Time: 9},
	}
	out, err := Compensate(rs, CompensateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if out[i] != rs[i] {
			t.Fatalf("identity violated: %v", out)
		}
	}
}

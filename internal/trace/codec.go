package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary trace format. Each file starts with a magic/version header;
// records are fixed-width little-endian, chosen so a flush of l
// records is a single contiguous write — the property the PICL flush
// cost model f(l) = c0 + c1·l depends on.

const (
	magic         = 0x50524953 // "PRIS"
	formatVersion = 1
	// RecordSize is the encoded size of one record in bytes.
	RecordSize = 4 + 4 + 1 + 2 + 8 + 8 + 8 + 1 // +1 pad to 36
)

// ErrBadHeader is returned when a trace header is malformed.
var ErrBadHeader = errors.New("trace: bad header")

// Writer encodes records to an io.Writer in the binary trace format.
type Writer struct {
	w       *bufio.Writer
	wrote   int
	started bool
	// buf is the per-record encode scratch; keeping it on the struct
	// rather than the stack stops it escaping into a fresh heap
	// allocation at every Write (the slice is passed through the
	// io.Writer interface).
	buf [RecordSize]byte
	// batch is the WriteAll coalescing scratch: a chunk of records is
	// encoded here and handed to the underlying writer as one write,
	// so a flush of l records costs O(l/chunk) writes instead of l.
	batch []byte
}

// NewWriter creates a trace Writer on w. The header is written lazily
// on the first record (or by Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// NewAppendWriter creates a Writer that continues an existing trace
// stream: no header is emitted, because the stream's original header
// already covers the appended records. Use it when w is positioned at
// the end of a file a previous Writer started — writing a fresh header
// there would corrupt the stream for every subsequent reader.
func NewAppendWriter(w io.Writer) *Writer {
	tw := NewWriter(w)
	tw.started = true
	return tw
}

func (tw *Writer) writeHeader() error {
	if tw.started {
		return nil
	}
	tw.started = true
	var h [8]byte
	binary.LittleEndian.PutUint32(h[0:], magic)
	binary.LittleEndian.PutUint32(h[4:], formatVersion)
	_, err := tw.w.Write(h[:])
	return err
}

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	if err := tw.writeHeader(); err != nil {
		return err
	}
	EncodeRecord(&tw.buf, r)
	if _, err := tw.w.Write(tw.buf[:]); err != nil {
		return err
	}
	tw.wrote++
	return nil
}

// writeAllChunk bounds the WriteAll coalescing scratch (records per
// encoded chunk): large enough to amortize the per-write overhead,
// small enough that the scratch stays cache- and pool-friendly.
const writeAllChunk = 512

// WriteAll appends all records, coalescing the encode into chunked
// bulk writes instead of one buffered write per record.
func (tw *Writer) WriteAll(rs []Record) error {
	if err := tw.writeHeader(); err != nil {
		return err
	}
	for len(rs) > 0 {
		n := len(rs)
		if n > writeAllChunk {
			n = writeAllChunk
		}
		need := n * RecordSize
		if cap(tw.batch) < need {
			tw.batch = make([]byte, need)
		}
		buf := tw.batch[:need]
		for i, r := range rs[:n] {
			PutRecord(buf[i*RecordSize:], r)
		}
		if _, err := tw.w.Write(buf); err != nil {
			return err
		}
		tw.wrote += n
		rs = rs[n:]
	}
	return nil
}

// Count returns the number of records written so far.
func (tw *Writer) Count() int { return tw.wrote }

// Flush writes the header if needed and flushes buffered output.
func (tw *Writer) Flush() error {
	if err := tw.writeHeader(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// PutRecord encodes r into the first RecordSize bytes of buf. It is
// the in-place building block the batch wire path uses to encode a
// whole frame after a single slice grow; EncodeRecord wraps it for
// fixed-array callers.
func PutRecord(buf []byte, r Record) {
	_ = buf[RecordSize-1] // one bounds check for the whole record
	binary.LittleEndian.PutUint32(buf[0:], uint32(r.Node))
	binary.LittleEndian.PutUint32(buf[4:], uint32(r.Process))
	buf[8] = byte(r.Kind)
	binary.LittleEndian.PutUint16(buf[9:], r.Tag)
	binary.LittleEndian.PutUint64(buf[11:], uint64(r.Time))
	binary.LittleEndian.PutUint64(buf[19:], r.Logical)
	binary.LittleEndian.PutUint64(buf[27:], uint64(r.Payload))
	buf[35] = 0
}

// GetRecord decodes a record from the first RecordSize bytes of buf —
// the zero-copy dual of PutRecord, letting readers decode straight out
// of a frame body without a per-record staging copy.
func GetRecord(buf []byte) Record {
	_ = buf[RecordSize-1]
	return Record{
		Node:    int32(binary.LittleEndian.Uint32(buf[0:])),
		Process: int32(binary.LittleEndian.Uint32(buf[4:])),
		Kind:    Kind(buf[8]),
		Tag:     binary.LittleEndian.Uint16(buf[9:]),
		Time:    int64(binary.LittleEndian.Uint64(buf[11:])),
		Logical: binary.LittleEndian.Uint64(buf[19:]),
		Payload: int64(binary.LittleEndian.Uint64(buf[27:])),
	}
}

// EncodeRecord encodes r into buf.
func EncodeRecord(buf *[RecordSize]byte, r Record) { PutRecord(buf[:], r) }

// DecodeRecord decodes a record from buf.
func DecodeRecord(buf *[RecordSize]byte) Record { return GetRecord(buf[:]) }

// Reader decodes records from an io.Reader.
type Reader struct {
	r       *bufio.Reader
	started bool
	buf     [RecordSize]byte // per-record decode scratch, see Writer.buf
}

// NewReader creates a trace Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (tr *Reader) readHeader() error {
	if tr.started {
		return nil
	}
	tr.started = true
	var h [8]byte
	if _, err := io.ReadFull(tr.r, h[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if binary.LittleEndian.Uint32(h[0:]) != magic {
		return fmt.Errorf("%w: bad magic", ErrBadHeader)
	}
	if v := binary.LittleEndian.Uint32(h[4:]); v != formatVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadHeader, v)
	}
	return nil
}

// Read returns the next record, or io.EOF at end of trace.
func (tr *Reader) Read() (Record, error) {
	if err := tr.readHeader(); err != nil {
		return Record{}, err
	}
	if _, err := io.ReadFull(tr.r, tr.buf[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	r := DecodeRecord(&tr.buf)
	if !r.Kind.Valid() {
		return Record{}, fmt.Errorf("trace: invalid kind %d", r.Kind)
	}
	return r, nil
}

// ReadAll reads records until EOF.
func (tr *Reader) ReadAll() ([]Record, error) { return tr.ReadAllHint(0) }

// ReadAllHint reads records until EOF, pre-sizing the result for n
// records. Callers that know the encoded size (spool bytes divided by
// RecordSize) avoid the append regrowth copies of a cold ReadAll.
func (tr *Reader) ReadAllHint(n int) ([]Record, error) {
	out := make([]Record, 0, n)
	for {
		r, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// MarshalText renders records in the line-oriented text form, one
// record per line, suitable for diffing and for ParaGraph-style
// off-line consumers.
func MarshalText(w io.Writer, rs []Record) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 64)
	for _, r := range rs {
		buf = r.AppendText(buf[:0])
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// UnmarshalText parses the line-oriented text form.
func UnmarshalText(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rec, err := ParseRecord(text)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// ParseRecord parses a single text-form record line.
func ParseRecord(s string) (Record, error) {
	f := strings.Fields(s)
	if len(f) != 7 {
		return Record{}, fmt.Errorf("want 7 fields, got %d", len(f))
	}
	var r Record
	node, err := strconv.ParseInt(f[0], 10, 32)
	if err != nil {
		return r, err
	}
	proc, err := strconv.ParseInt(f[1], 10, 32)
	if err != nil {
		return r, err
	}
	kind, ok := kindFromName(f[2])
	if !ok {
		return r, fmt.Errorf("unknown kind %q", f[2])
	}
	tag, err := strconv.ParseUint(f[3], 10, 16)
	if err != nil {
		return r, err
	}
	tm, err := strconv.ParseInt(f[4], 10, 64)
	if err != nil {
		return r, err
	}
	logical, err := strconv.ParseUint(f[5], 10, 64)
	if err != nil {
		return r, err
	}
	payload, err := strconv.ParseInt(f[6], 10, 64)
	if err != nil {
		return r, err
	}
	r = Record{Node: int32(node), Process: int32(proc), Kind: kind,
		Tag: uint16(tag), Time: tm, Logical: logical, Payload: payload}
	return r, nil
}

func kindFromName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

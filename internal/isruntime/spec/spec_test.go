package spec

import (
	"strings"
	"testing"
	"time"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/ism"
	"prism/internal/trace"
)

const fullSpec = `
# application-specific instrumentation for the solver
sensor cpu_queue metric=1 every=50ms
sensor msg_backlog metric=2 every=200ms

threshold cpu_queue above=40 alpha=0.4 hits=3
threshold msg_backlog above=100

buffer capacity=128 policy=faof
ism input=miso ordered=true
`

func TestParseFull(t *testing.T) {
	s, err := Parse(strings.NewReader(fullSpec))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sensors) != 2 {
		t.Fatalf("sensors %v", s.Sensors)
	}
	if s.Sensors[0].Name != "cpu_queue" || s.Sensors[0].Metric != 1 ||
		s.Sensors[0].Every != 50*time.Millisecond {
		t.Fatalf("sensor 0 %+v", s.Sensors[0])
	}
	if len(s.Thresholds) != 2 {
		t.Fatalf("thresholds %v", s.Thresholds)
	}
	th := s.Thresholds[0]
	if th.Sensor != "cpu_queue" || th.Above != 40 || th.Alpha != 0.4 || th.Hits != 3 {
		t.Fatalf("threshold %+v", th)
	}
	if s.Thresholds[1].Hits != 1 || s.Thresholds[1].Alpha != 0.5 {
		t.Fatalf("threshold defaults %+v", s.Thresholds[1])
	}
	if s.Buffer.Capacity != 128 || s.Buffer.Policy != "faof" {
		t.Fatalf("buffer %+v", s.Buffer)
	}
	if s.ISM.Input != "miso" || !s.ISM.Ordered {
		t.Fatalf("ism %+v", s.ISM)
	}
}

func TestParseDefaults(t *testing.T) {
	s, err := Parse(strings.NewReader("sensor a metric=1 every=1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if s.Buffer.Capacity != 64 || s.Buffer.Policy != "fof" {
		t.Fatalf("buffer defaults %+v", s.Buffer)
	}
	if s.ISM.Input != "siso" || !s.ISM.Ordered {
		t.Fatalf("ism defaults %+v", s.ISM)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"sensor metric=1 every=1s",                                // missing name
		"sensor a metric=1 every=1s\nsensor a metric=2 every=1s",  // duplicate
		"sensor a every=1s",                                       // missing metric
		"sensor a metric=1",                                       // missing period
		"sensor a metric=1 every=-5ms",                            // negative period
		"sensor a metric=99999999 every=1s",                       // metric overflow
		"threshold a above=1",                                     // unknown sensor
		"sensor a metric=1 every=1s\nthreshold a",                 // missing above
		"sensor a metric=1 every=1s\nthreshold a above=1 alpha=2", // bad alpha
		"sensor a metric=1 every=1s\nthreshold a above=1 hits=0",  // bad hits
		"buffer capacity=0",                                       // bad capacity
		"buffer policy=magic",                                     // unknown policy
		"ism input=weird",                                         // unknown input
		"ism ordered=maybe",                                       // bad bool
		"bogus directive",                                         // unknown directive
		"sensor a metric=1 every=1s extra",                        // malformed arg
		"sensor a metric=1 metric=2 every=1s",                     // duplicate arg
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	in := "\n# comment only\n\n  # indented comment\n"
	s, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sensors) != 0 {
		t.Fatal("phantom sensors")
	}
}

func TestISMConfig(t *testing.T) {
	s, _ := Parse(strings.NewReader("ism input=miso ordered=false"))
	cfg := s.ISMConfig()
	if cfg.Buffering != ism.MISO || cfg.Ordered {
		t.Fatalf("config %+v", cfg)
	}
	s2, _ := Parse(strings.NewReader(""))
	cfg2 := s2.ISMConfig()
	if cfg2.Buffering != ism.SISO || !cfg2.Ordered {
		t.Fatalf("default config %+v", cfg2)
	}
}

func TestBottleneckToolCompilation(t *testing.T) {
	s, err := Parse(strings.NewReader(fullSpec))
	if err != nil {
		t.Fatal(err)
	}
	tool, minHits, err := s.BottleneckTool("auto")
	if err != nil {
		t.Fatal(err)
	}
	if minHits != 3 {
		t.Fatalf("minHits %d", minHits)
	}
	// Drive metric 1 above its threshold repeatedly.
	for i := 0; i < 5; i++ {
		tool.Consume(trace.Record{Node: 0, Kind: trace.KindSample, Tag: 1, Payload: 90})
	}
	if len(tool.Hypotheses(minHits)) != 1 {
		t.Fatal("compiled thresholds not active")
	}
	// Metric 2 below threshold stays quiet.
	for i := 0; i < 5; i++ {
		tool.Consume(trace.Record{Node: 0, Kind: trace.KindSample, Tag: 2, Payload: 10})
	}
	if len(tool.Hypotheses(minHits)) != 1 {
		t.Fatal("quiet metric flagged")
	}
}

func TestProbesCompilation(t *testing.T) {
	s, err := Parse(strings.NewReader(fullSpec))
	if err != nil {
		t.Fatal(err)
	}
	var clock event.VirtualClock
	var captured []trace.Record
	sensor := event.NewSensor(0, 0, &clock, event.SinkFunc(func(r trace.Record) {
		captured = append(captured, r)
	}))
	var q, b event.Gauge
	q.Set(7)
	b.Set(9)
	probes, err := s.Probes(sensor, map[string]func() int64{
		"cpu_queue":   q.Value,
		"msg_backlog": b.Value,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != 2 {
		t.Fatalf("probes %d", len(probes))
	}
	if probes[0].Interval() != 50*time.Millisecond {
		t.Fatalf("interval %v", probes[0].Interval())
	}
	probes[0].SampleOnce()
	probes[1].SampleOnce()
	if len(captured) != 2 || captured[0].Tag != 1 || captured[0].Payload != 7 ||
		captured[1].Tag != 2 || captured[1].Payload != 9 {
		t.Fatalf("captured %v", captured)
	}
	// Missing reader is an error.
	if _, err := s.Probes(sensor, map[string]func() int64{"cpu_queue": q.Value}); err == nil {
		t.Fatal("missing reader accepted")
	}
}

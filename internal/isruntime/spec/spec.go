// Package spec implements a small sensor-specification language in the
// spirit of the application-specific instrumentation systems the paper
// classifies (§4): Falcon's "low-level sensor specification language"
// and SPI's "event specification language". A specification declares
// which metrics to sample, how often, what thresholds the automated
// analysis should watch, and how the IS should be configured — and
// compiles into live probes, a bottleneck tool and LIS/ISM settings,
// the "customizable application-specific module" synthesis path of §1.
//
// Grammar (line oriented, '#' comments):
//
//	sensor <name> metric=<id> every=<duration>
//	threshold <sensor> above=<value> alpha=<0..1> hits=<n>
//	buffer capacity=<records> policy=<fof|faof|forwarding|daemon>
//	ism input=<siso|miso> ordered=<true|false>
package spec

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"prism/internal/isruntime/env"
	"prism/internal/isruntime/event"
	"prism/internal/isruntime/ism"
)

// SensorSpec declares one sampled metric.
type SensorSpec struct {
	Name   string
	Metric uint16
	Every  time.Duration
}

// ThresholdSpec declares one automated-analysis watch.
type ThresholdSpec struct {
	Sensor string
	Above  float64
	Alpha  float64
	Hits   uint64
}

// BufferSpec declares the LIS configuration.
type BufferSpec struct {
	Capacity int
	Policy   string // fof, faof, forwarding, daemon
}

// ISMSpec declares the manager configuration.
type ISMSpec struct {
	Input   string // siso or miso
	Ordered bool
}

// Spec is a parsed specification.
type Spec struct {
	Sensors    []SensorSpec
	Thresholds []ThresholdSpec
	Buffer     BufferSpec
	ISM        ISMSpec
}

// Defaults applied when a section is omitted.
func defaultSpec() *Spec {
	return &Spec{
		Buffer: BufferSpec{Capacity: 64, Policy: "fof"},
		ISM:    ISMSpec{Input: "siso", Ordered: true},
	}
}

// Parse reads a specification.
func Parse(r io.Reader) (*Spec, error) {
	s := defaultSpec()
	sc := bufio.NewScanner(r)
	line := 0
	seen := map[string]bool{}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "sensor":
			if len(fields) < 2 || strings.Contains(fields[1], "=") {
				return nil, fmt.Errorf("spec: line %d: sensor needs a name", line)
			}
			name := fields[1]
			if seen[name] {
				return nil, fmt.Errorf("spec: line %d: duplicate sensor %q", line, name)
			}
			seen[name] = true
			args, err := parseArgs(fields[2:])
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", line, err)
			}
			metric, err := args.uint16("metric")
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", line, err)
			}
			every, err := args.duration("every")
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", line, err)
			}
			if every <= 0 {
				return nil, fmt.Errorf("spec: line %d: non-positive sampling period", line)
			}
			s.Sensors = append(s.Sensors, SensorSpec{Name: name, Metric: metric, Every: every})
		case "threshold":
			if len(fields) < 2 || strings.Contains(fields[1], "=") {
				return nil, fmt.Errorf("spec: line %d: threshold needs a sensor name", line)
			}
			args, err := parseArgs(fields[2:])
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", line, err)
			}
			above, err := args.float("above")
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", line, err)
			}
			alpha := 0.5
			if args.has("alpha") {
				if alpha, err = args.float("alpha"); err != nil {
					return nil, fmt.Errorf("spec: line %d: %w", line, err)
				}
			}
			if alpha <= 0 || alpha > 1 {
				return nil, fmt.Errorf("spec: line %d: alpha out of (0,1]", line)
			}
			hits := uint64(1)
			if args.has("hits") {
				h, err := args.float("hits")
				if err != nil || h < 1 {
					return nil, fmt.Errorf("spec: line %d: bad hits", line)
				}
				hits = uint64(h)
			}
			s.Thresholds = append(s.Thresholds, ThresholdSpec{
				Sensor: fields[1], Above: above, Alpha: alpha, Hits: hits,
			})
		case "buffer":
			args, err := parseArgs(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", line, err)
			}
			if args.has("capacity") {
				c, err := args.float("capacity")
				if err != nil || c < 1 {
					return nil, fmt.Errorf("spec: line %d: bad capacity", line)
				}
				s.Buffer.Capacity = int(c)
			}
			if args.has("policy") {
				p := args.str("policy")
				switch p {
				case "fof", "faof", "forwarding", "daemon":
					s.Buffer.Policy = p
				default:
					return nil, fmt.Errorf("spec: line %d: unknown policy %q", line, p)
				}
			}
		case "ism":
			args, err := parseArgs(fields[1:])
			if err != nil {
				return nil, fmt.Errorf("spec: line %d: %w", line, err)
			}
			if args.has("input") {
				in := args.str("input")
				if in != "siso" && in != "miso" {
					return nil, fmt.Errorf("spec: line %d: unknown input %q", line, in)
				}
				s.ISM.Input = in
			}
			if args.has("ordered") {
				b, err := strconv.ParseBool(args.str("ordered"))
				if err != nil {
					return nil, fmt.Errorf("spec: line %d: bad ordered flag", line)
				}
				s.ISM.Ordered = b
			}
		default:
			return nil, fmt.Errorf("spec: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, s.Validate()
}

// Validate cross-checks the specification.
func (s *Spec) Validate() error {
	names := map[string]uint16{}
	for _, sn := range s.Sensors {
		names[sn.Name] = sn.Metric
	}
	for _, th := range s.Thresholds {
		if _, ok := names[th.Sensor]; !ok {
			return fmt.Errorf("spec: threshold references unknown sensor %q", th.Sensor)
		}
	}
	if s.Buffer.Capacity < 1 {
		return errors.New("spec: buffer capacity must be >= 1")
	}
	return nil
}

// ISMConfig compiles the manager section.
func (s *Spec) ISMConfig() ism.Config {
	cfg := ism.Config{Ordered: s.ISM.Ordered}
	if s.ISM.Input == "miso" {
		cfg.Buffering = ism.MISO
	}
	return cfg
}

// BottleneckTool compiles the threshold section into a configured
// automated-analysis tool.
func (s *Spec) BottleneckTool(name string) (*env.BottleneckTool, uint64, error) {
	byName := map[string]uint16{}
	for _, sn := range s.Sensors {
		byName[sn.Name] = sn.Metric
	}
	thresholds := map[uint16]float64{}
	alpha := 0.5
	minHits := uint64(1)
	for _, th := range s.Thresholds {
		thresholds[byName[th.Sensor]] = th.Above
		alpha = th.Alpha
		if th.Hits > minHits {
			minHits = th.Hits
		}
	}
	tool, err := env.NewBottleneckTool(name, thresholds, alpha)
	return tool, minHits, err
}

// Probes compiles the sensor section into live probes for one
// instrumented process: readers maps sensor name to the metric reader.
// Every declared sensor must have a reader.
func (s *Spec) Probes(sensor *event.Sensor, readers map[string]func() int64) ([]*event.Probe, error) {
	probes := make([]*event.Probe, 0, len(s.Sensors))
	for _, sn := range s.Sensors {
		read, ok := readers[sn.Name]
		if !ok {
			return nil, fmt.Errorf("spec: no reader bound for sensor %q", sn.Name)
		}
		probes = append(probes, event.NewProbe(sn.Metric, read, sensor, sn.Every))
	}
	return probes, nil
}

// args is a parsed key=value argument list.
type args map[string]string

func parseArgs(fields []string) (args, error) {
	a := args{}
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("malformed argument %q (want key=value)", f)
		}
		if _, dup := a[k]; dup {
			return nil, fmt.Errorf("duplicate argument %q", k)
		}
		a[k] = v
	}
	return a, nil
}

func (a args) has(k string) bool   { return a[k] != "" }
func (a args) str(k string) string { return a[k] }

func (a args) float(k string) (float64, error) {
	v, ok := a[k]
	if !ok {
		return 0, fmt.Errorf("missing argument %q", k)
	}
	return strconv.ParseFloat(v, 64)
}

func (a args) uint16(k string) (uint16, error) {
	v, ok := a[k]
	if !ok {
		return 0, fmt.Errorf("missing argument %q", k)
	}
	n, err := strconv.ParseUint(v, 10, 16)
	return uint16(n), err
}

func (a args) duration(k string) (time.Duration, error) {
	v, ok := a[k]
	if !ok {
		return 0, fmt.Errorf("missing argument %q", k)
	}
	return time.ParseDuration(v)
}

package storage

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

// Tiered must be usable wherever the flow stages expect a spill.
var _ flow.Spill = (*Tiered)(nil)

// tierRecs builds n records with distinguishable fields spread over
// four sources.
func tierRecs(n, base int) []trace.Record {
	out := make([]trace.Record, n)
	for i := range out {
		k := base + i
		out[i] = trace.Record{
			Node:    int32(k % 4),
			Kind:    trace.KindUser,
			Tag:     uint16(k),
			Time:    int64(k * 10),
			Logical: uint64(k),
		}
	}
	return out
}

// waitCompactions polls until the store has completed at least n
// compaction rounds or the deadline passes.
func waitCompactions(t *testing.T, ts *Tiered, n uint64) TierStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := ts.Stats()
		if st.Compactions >= n {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("compactor never reached %d rounds: %+v", n, st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTieredConfigValidation(t *testing.T) {
	if _, err := NewTiered(TieredConfig{HotCapacity: 8, SegmentRecords: 16}); err == nil {
		t.Fatal("SegmentRecords > HotCapacity accepted")
	}
	if _, err := NewTiered(TieredConfig{CompactBudget: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestTieredFlow drives records through all three tiers and checks the
// full read-back is byte-identical and in append order.
func TestTieredFlow(t *testing.T) {
	ts, err := NewTiered(TieredConfig{HotCapacity: 64, SegmentRecords: 32, WarmLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	const total = 1000
	var in []trace.Record
	for off := 0; off < total; off += 100 {
		batch := tierRecs(100, off)
		in = append(in, batch...)
		if err := ts.Append(batch...); err != nil {
			t.Fatal(err)
		}
	}
	st := waitCompactions(t, ts, 1)
	if st.ColdSegments == 0 || st.Compacted < 3 {
		t.Fatalf("no cold tier after %d records: %+v", total, st)
	}
	if st.HotResident >= 64 {
		t.Fatalf("hot window never sealed: %+v", st)
	}
	got, err := ts.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("read back %d of %d", len(got), total)
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("record %d reordered or corrupted across tiers:\n in  %+v\n out %+v", i, in[i], got[i])
		}
	}
}

func TestTieredFilteredReads(t *testing.T) {
	ts, err := NewTiered(TieredConfig{HotCapacity: 64, SegmentRecords: 32, WarmLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	in := tierRecs(500, 0)
	if err := ts.Append(in...); err != nil {
		t.Fatal(err)
	}
	waitCompactions(t, ts, 1)

	got, err := ts.ReadRange(1000, 1990)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("range read %d records", len(got))
	}
	for _, r := range got {
		if r.Time < 1000 || r.Time > 1990 {
			t.Fatalf("range leaked time %d", r.Time)
		}
	}

	bySrc, err := ts.ReadSource(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bySrc) != 125 {
		t.Fatalf("source read %d records", len(bySrc))
	}
	for _, r := range bySrc {
		if r.Node != 2 {
			t.Fatalf("source read leaked node %d", r.Node)
		}
	}
	if got, err := ts.ReadSource(99); err != nil || len(got) != 0 {
		t.Fatalf("absent source: %d records, %v", len(got), err)
	}
}

// TestTieredFiles exercises the file-backed mode: warm files appear
// under Dir, compaction folds them into a cold file and deletes the
// warm inputs, and the read path decodes from disk.
func TestTieredFiles(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	ts, err := NewTiered(TieredConfig{
		HotCapacity: 32, SegmentRecords: 16, WarmLimit: 2,
		Dir: dir, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	in := tierRecs(300, 0)
	if err := ts.Append(in...); err != nil {
		t.Fatal(err)
	}
	st := waitCompactions(t, ts, 1)
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var warm, cold int
	for _, e := range ents {
		switch {
		case strings.HasPrefix(e.Name(), "warm-"):
			warm++
		case strings.HasPrefix(e.Name(), "cold-"):
			cold++
		default:
			t.Fatalf("unexpected file %s", e.Name())
		}
	}
	if cold == 0 {
		t.Fatalf("no cold files after %d compactions", st.Compactions)
	}
	final := ts.Stats()
	if warm != final.WarmSegments || cold != final.ColdSegments {
		t.Fatalf("disk holds %d warm / %d cold, stats say %d / %d", warm, cold, final.WarmSegments, final.ColdSegments)
	}

	// Reads remain valid after Close.
	got, err := ts.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("file-backed read %d of %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("file-backed record %d corrupted", i)
		}
	}

	// Every cold file is a valid standalone segment stream.
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "cold-") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var seg trace.Segment
		if _, err := seg.Parse(data); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
	}

	snap := reg.Snapshot()
	if snap.Value("storage.tier.appended") != float64(len(in)) {
		t.Fatalf("appended metric %v", snap.Value("storage.tier.appended"))
	}
	if snap.Value("storage.tier.bytes_disk") != float64(final.BytesToDisk) {
		t.Fatalf("bytes_disk metric %v, stats %d", snap.Value("storage.tier.bytes_disk"), final.BytesToDisk)
	}
	if final.BytesToDisk == 0 || final.Compacted == 0 {
		t.Fatalf("final stats %+v", final)
	}
}

// TestTieredFlushSealsEverything checks Flush drains the hot window so
// all records are durable in segment form.
func TestTieredFlushSealsEverything(t *testing.T) {
	ts, err := NewTiered(TieredConfig{HotCapacity: 1 << 10, SegmentRecords: 64, WarmLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if err := ts.Append(tierRecs(100, 0)...); err != nil {
		t.Fatal(err)
	}
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	st := ts.Stats()
	if st.HotResident != 0 || st.Sealed != 100 || st.RecordsStored != 100 {
		t.Fatalf("flush left %+v", st)
	}
	if len(ts.Recent()) != 0 {
		t.Fatal("recent window survived flush")
	}
}

func TestTieredAppendAfterClose(t *testing.T) {
	ts, err := NewTiered(TieredConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Append(trace.Record{Kind: trace.KindUser}); err == nil {
		t.Fatal("append after close accepted")
	}
	if err := ts.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

// TestTieredCompactBudget checks the compactor accounts throttle time
// when a budget is set.
func TestTieredCompactBudget(t *testing.T) {
	ts, err := NewTiered(TieredConfig{
		HotCapacity: 32, SegmentRecords: 16, WarmLimit: 2,
		CompactBudget: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if err := ts.Append(tierRecs(200, 0)...); err != nil {
		t.Fatal(err)
	}
	st := waitCompactions(t, ts, 1)
	if st.ThrottleNs == 0 {
		t.Fatalf("budgeted compaction never throttled: %+v", st)
	}
}

// TestTieredConcurrent hammers appends and reads while the compactor
// runs — the -race tier-1 gate for the new store.
func TestTieredConcurrent(t *testing.T) {
	ts, err := NewTiered(TieredConfig{HotCapacity: 128, SegmentRecords: 64, WarmLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const each = 600
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i += 50 {
				if err := ts.Append(tierRecs(50, w*each+i)...); err != nil {
					t.Error(err)
					return
				}
				if i%200 == 0 {
					if _, err := ts.ReadAll(); err != nil {
						t.Error(err)
						return
					}
					if _, err := ts.ReadSource(1); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ts.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*each {
		t.Fatalf("retained %d of %d", len(got), writers*each)
	}
	st := ts.Stats()
	if st.HotResident != 0 {
		t.Fatalf("close left hot records: %+v", st)
	}
}

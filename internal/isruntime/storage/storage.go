// Package storage implements the trace-data storage hierarchy of the
// paper's Figure 4: local LIS buffers feed a "main instrumentation
// data buffer" in host memory, which "in turn, may be flushed to the
// next level of the storage hierarchy, for example, a disk. The
// storage capacity is assumed to increase with each level."
//
// Two main-buffer disciplines are provided:
//
//   - Spill: when the main buffer fills it is flushed wholesale to the
//     next level (the off-line path — nothing is lost);
//   - Ring: the main buffer keeps only the most recent records,
//     overwriting the oldest (a flight-recorder for on-line tools that
//     care about the recent past).
package storage

import (
	"errors"
	"io"
	"sync"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

// A Hierarchy is a valid spill target for every flow stage
// (lis.WithOverflow, ism.Config.OverflowSpill, tp pipe spills).
var _ flow.Spill = (*Hierarchy)(nil)

// Discipline selects the main-buffer management policy.
type Discipline int

// Main-buffer disciplines.
const (
	Spill Discipline = iota
	Ring
)

// String returns the discipline name.
func (d Discipline) String() string {
	if d == Spill {
		return "spill"
	}
	return "ring"
}

// Stats summarizes hierarchy activity.
type Stats struct {
	Appended    uint64 // records accepted
	Spills      uint64 // main-buffer flushes to the next level
	ToDisk      uint64 // records written to the next level
	Overwritten uint64 // records displaced in ring mode
	Resident    int    // records currently in the main buffer
	Peak        int    // maximum main-buffer occupancy
}

// Option configures a Hierarchy at construction time.
type Option func(*Hierarchy)

// WithMetrics mirrors the hierarchy's activity into the given registry
// under the "storage" scope (storage.appended, storage.spills,
// storage.to_disk, storage.overwritten, storage.resident).
func WithMetrics(reg *metrics.Registry) Option {
	return func(h *Hierarchy) {
		s := reg.Scope("storage")
		h.m = &hierMetrics{
			appended: s.Counter("appended"), spills: s.Counter("spills"),
			toDisk: s.Counter("to_disk"), overwritten: s.Counter("overwritten"),
			resident: s.Gauge("resident"),
		}
	}
}

// hierMetrics is the optional registry-backed counter set.
type hierMetrics struct {
	appended, spills, toDisk, overwritten *metrics.Counter
	resident                              *metrics.Gauge
}

// Hierarchy is a two-level store: a bounded in-memory main buffer over
// an optional next level (any io.Writer; typically a file, receiving
// the binary trace format). It is safe for concurrent use.
type Hierarchy struct {
	mu         sync.Mutex
	discipline Discipline
	capacity   int
	main       []trace.Record
	next       *trace.Writer
	stats      Stats
	m          *hierMetrics
	closed     bool
}

// New creates a hierarchy with the given main-buffer capacity. next
// may be nil only in Ring mode (a pure flight recorder); Spill mode
// requires a next level to spill into.
func New(d Discipline, capacity int, next io.Writer, opts ...Option) (*Hierarchy, error) {
	if capacity < 1 {
		return nil, errors.New("storage: capacity must be >= 1")
	}
	if d == Spill && next == nil {
		return nil, errors.New("storage: spill discipline needs a next level")
	}
	h := &Hierarchy{discipline: d, capacity: capacity}
	if next != nil {
		h.next = trace.NewWriter(next)
	}
	for _, opt := range opts {
		opt(h)
	}
	return h, nil
}

// Append stores records, spilling or overwriting per the discipline.
// The whole batch is admitted under one lock hold, chunked only at
// capacity boundaries: a spill-mode append copies capacity-sized runs
// between flushes, and a ring-mode append computes the displacement
// arithmetically instead of shifting the buffer once per record.
func (h *Hierarchy) Append(rs ...trace.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return errors.New("storage: closed")
	}
	h.stats.Appended += uint64(len(rs))
	if h.m != nil {
		h.m.appended.Add(uint64(len(rs)))
	}
	switch h.discipline {
	case Spill:
		for len(rs) > 0 {
			if len(h.main) >= h.capacity {
				if err := h.spillLocked(); err != nil {
					return err
				}
			}
			room := h.capacity - len(h.main)
			if room > len(rs) {
				room = len(rs)
			}
			h.main = append(h.main, rs[:room]...)
			rs = rs[room:]
			if len(h.main) > h.stats.Peak {
				h.stats.Peak = len(h.main)
			}
		}
	case Ring:
		if k := len(rs); k >= h.capacity {
			// The batch alone overwrites everything resident.
			displaced := len(h.main) + k - h.capacity
			h.main = append(h.main[:0], rs[k-h.capacity:]...)
			h.stats.Overwritten += uint64(displaced)
			if h.m != nil {
				h.m.overwritten.Add(uint64(displaced))
			}
			h.stats.Peak = h.capacity
		} else {
			if drop := len(h.main) + k - h.capacity; drop > 0 {
				h.main = append(h.main[:0], h.main[drop:]...)
				h.stats.Overwritten += uint64(drop)
				if h.m != nil {
					h.m.overwritten.Add(uint64(drop))
				}
			}
			h.main = append(h.main, rs...)
			if len(h.main) > h.stats.Peak {
				h.stats.Peak = len(h.main)
			}
		}
	}
	h.stats.Resident = len(h.main)
	if h.m != nil {
		h.m.resident.Set(int64(len(h.main)))
	}
	return nil
}

// spillLocked writes the whole main buffer to the next level as one
// coalesced bulk write.
func (h *Hierarchy) spillLocked() error {
	if h.next == nil || len(h.main) == 0 {
		return nil
	}
	if err := h.next.WriteAll(h.main); err != nil {
		return err
	}
	h.stats.Spills++
	h.stats.ToDisk += uint64(len(h.main))
	if h.m != nil {
		h.m.spills.Inc()
		h.m.toDisk.Add(uint64(len(h.main)))
	}
	h.main = h.main[:0]
	return nil
}

// Flush forces the main buffer down to the next level (no-op without
// one) and flushes the level's writer.
func (h *Hierarchy) Flush() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.spillLocked(); err != nil {
		return err
	}
	h.stats.Resident = len(h.main)
	if h.next != nil {
		return h.next.Flush()
	}
	return nil
}

// Recent returns a copy of the main buffer's current contents in
// arrival order — the on-line tool's window onto the recent past.
func (h *Hierarchy) Recent() []trace.Record {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]trace.Record(nil), h.main...)
}

// Stats returns an activity snapshot.
func (h *Hierarchy) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stats
	st.Resident = len(h.main)
	return st
}

// Close flushes (in Spill mode) and marks the hierarchy closed.
func (h *Hierarchy) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	if h.discipline == Spill {
		if err := h.spillLocked(); err != nil {
			return err
		}
	}
	if h.next != nil {
		return h.next.Flush()
	}
	return nil
}

// Package storage implements the trace-data storage hierarchy of the
// paper's Figure 4: local LIS buffers feed a "main instrumentation
// data buffer" in host memory, which "in turn, may be flushed to the
// next level of the storage hierarchy, for example, a disk. The
// storage capacity is assumed to increase with each level."
//
// Two main-buffer disciplines are provided:
//
//   - Spill: when the main buffer fills it is flushed wholesale to the
//     next level (the off-line path — nothing is lost);
//   - Ring: the main buffer keeps only the most recent records,
//     overwriting the oldest (a flight-recorder for on-line tools that
//     care about the recent past).
package storage

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

// A Hierarchy is a valid spill target for every flow stage
// (lis.WithOverflow, ism.Config.OverflowSpill, tp pipe spills).
var _ flow.Spill = (*Hierarchy)(nil)

// Discipline selects the main-buffer management policy.
type Discipline int

// Main-buffer disciplines.
const (
	Spill Discipline = iota
	Ring
)

// String returns the discipline name.
func (d Discipline) String() string {
	if d == Spill {
		return "spill"
	}
	return "ring"
}

// Stats summarizes hierarchy activity.
type Stats struct {
	Appended    uint64 // records accepted
	Spills      uint64 // main-buffer flushes to the next level
	ToDisk      uint64 // records written to the next level
	BytesToDisk uint64 // bytes handed to the next level (post-buffering)
	Overwritten uint64 // records displaced in ring mode
	Resident    int    // records currently in the main buffer
	Peak        int    // maximum main-buffer occupancy
}

// Option configures a Hierarchy at construction time.
type Option func(*Hierarchy)

// WithMetrics mirrors the hierarchy's activity into the given registry
// under the "storage" scope (storage.appended, storage.spills,
// storage.to_disk, storage.bytes_disk, storage.overwritten,
// storage.resident).
func WithMetrics(reg *metrics.Registry) Option {
	return func(h *Hierarchy) {
		s := reg.Scope("storage")
		h.m = &hierMetrics{
			appended: s.Counter("appended"), spills: s.Counter("spills"),
			toDisk: s.Counter("to_disk"), bytesDisk: s.Counter("bytes_disk"),
			overwritten: s.Counter("overwritten"),
			resident:    s.Gauge("resident"),
		}
	}
}

// WithSegments makes the hierarchy spill columnar compressed segments
// (trace.AppendSegment) instead of the flat fixed-width encoding: each
// spill run becomes one self-framed segment readable with
// trace.SegmentReader. On the batched spill workloads the segments are
// several times smaller than RecordSize bytes per record.
func WithSegments() Option {
	return func(h *Hierarchy) { h.columnar = true }
}

// WithName attaches a diagnostic name — typically the next level's
// file path — used in spill error messages to locate torn segments.
func WithName(name string) Option {
	return func(h *Hierarchy) { h.name = name }
}

// hierMetrics is the optional registry-backed counter set.
type hierMetrics struct {
	appended, spills, toDisk, bytesDisk, overwritten *metrics.Counter
	resident                                         *metrics.Gauge
}

// countingWriter counts the bytes reaching the next storage level —
// the denominator of the spill path's on-disk bandwidth.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// Hierarchy is a two-level store: a bounded in-memory main buffer over
// an optional next level (any io.Writer; typically a file, receiving
// the binary trace format — or columnar segments under WithSegments).
// It is safe for concurrent use.
type Hierarchy struct {
	mu         sync.Mutex
	discipline Discipline
	capacity   int
	main       []trace.Record
	next       *trace.Writer        // flat next-level encoder (nil under WithSegments)
	seg        *trace.SegmentWriter // columnar next-level encoder (nil unless WithSegments)
	cw         *countingWriter
	lastBytes  int64 // bytes_disk counter watermark
	name       string
	columnar   bool
	stats      Stats
	m          *hierMetrics
	closed     bool
}

// New creates a hierarchy with the given main-buffer capacity. next
// may be nil only in Ring mode (a pure flight recorder); Spill mode
// requires a next level to spill into.
func New(d Discipline, capacity int, next io.Writer, opts ...Option) (*Hierarchy, error) {
	if capacity < 1 {
		return nil, errors.New("storage: capacity must be >= 1")
	}
	if d == Spill && next == nil {
		return nil, errors.New("storage: spill discipline needs a next level")
	}
	h := &Hierarchy{discipline: d, capacity: capacity, name: "next-level"}
	for _, opt := range opts {
		opt(h)
	}
	if next != nil {
		h.cw = &countingWriter{w: next}
		if h.columnar {
			h.seg = trace.NewSegmentWriter(h.cw)
		} else {
			h.next = trace.NewWriter(h.cw)
		}
	}
	return h, nil
}

// Append stores records, spilling or overwriting per the discipline.
// The whole batch is admitted under one lock hold, chunked only at
// capacity boundaries: a spill-mode append copies capacity-sized runs
// between flushes, and a ring-mode append computes the displacement
// arithmetically instead of shifting the buffer once per record.
func (h *Hierarchy) Append(rs ...trace.Record) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return errors.New("storage: closed")
	}
	h.stats.Appended += uint64(len(rs))
	if h.m != nil {
		h.m.appended.Add(uint64(len(rs)))
	}
	switch h.discipline {
	case Spill:
		for len(rs) > 0 {
			if len(h.main) >= h.capacity {
				if err := h.spillLocked(); err != nil {
					return err
				}
			}
			room := h.capacity - len(h.main)
			if room > len(rs) {
				room = len(rs)
			}
			h.main = append(h.main, rs[:room]...)
			rs = rs[room:]
			if len(h.main) > h.stats.Peak {
				h.stats.Peak = len(h.main)
			}
		}
	case Ring:
		if k := len(rs); k >= h.capacity {
			// The batch alone overwrites everything resident.
			displaced := len(h.main) + k - h.capacity
			h.main = append(h.main[:0], rs[k-h.capacity:]...)
			h.stats.Overwritten += uint64(displaced)
			if h.m != nil {
				h.m.overwritten.Add(uint64(displaced))
			}
			h.stats.Peak = h.capacity
		} else {
			if drop := len(h.main) + k - h.capacity; drop > 0 {
				h.main = append(h.main[:0], h.main[drop:]...)
				h.stats.Overwritten += uint64(drop)
				if h.m != nil {
					h.m.overwritten.Add(uint64(drop))
				}
			}
			h.main = append(h.main, rs...)
			if len(h.main) > h.stats.Peak {
				h.stats.Peak = len(h.main)
			}
		}
	}
	h.stats.Resident = len(h.main)
	if h.m != nil {
		h.m.resident.Set(int64(len(h.main)))
	}
	return nil
}

// spillLocked writes the whole main buffer to the next level as one
// coalesced bulk write — one columnar segment under WithSegments, one
// chunked flat run otherwise. A failed write reports the segment's
// name and byte position so crash-restart diagnostics can locate the
// torn tail instead of guessing from a bare encoder error.
func (h *Hierarchy) spillLocked() error {
	if h.cw == nil || len(h.main) == 0 {
		return nil
	}
	start := h.cw.n
	var err error
	if h.seg != nil {
		_, err = h.seg.WriteSegment(h.main)
	} else {
		err = h.next.WriteAll(h.main)
	}
	if err != nil {
		h.syncBytesLocked()
		return fmt.Errorf("storage: spill of %d records to %s: segment at offset %d torn after %d bytes: %w",
			len(h.main), h.name, start, h.cw.n-start, err)
	}
	h.stats.Spills++
	h.stats.ToDisk += uint64(len(h.main))
	if h.m != nil {
		h.m.spills.Inc()
		h.m.toDisk.Add(uint64(len(h.main)))
	}
	h.syncBytesLocked()
	h.main = h.main[:0]
	return nil
}

// syncBytesLocked folds the counting writer's position into the stats
// and the bytes_disk counter. Under the flat encoding the position
// advances when the buffered writer flushes; segments write through.
func (h *Hierarchy) syncBytesLocked() {
	if h.cw == nil {
		return
	}
	h.stats.BytesToDisk = uint64(h.cw.n)
	if delta := h.cw.n - h.lastBytes; delta > 0 {
		h.lastBytes = h.cw.n
		if h.m != nil {
			h.m.bytesDisk.Add(uint64(delta))
		}
	}
}

// Flush forces the main buffer down to the next level (no-op without
// one) and flushes the level's writer.
func (h *Hierarchy) Flush() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.spillLocked(); err != nil {
		return err
	}
	h.stats.Resident = len(h.main)
	if h.next != nil {
		err := h.next.Flush()
		h.syncBytesLocked()
		return err
	}
	return nil
}

// Recent returns a copy of the main buffer's current contents in
// arrival order — the on-line tool's window onto the recent past.
func (h *Hierarchy) Recent() []trace.Record {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]trace.Record(nil), h.main...)
}

// Stats returns an activity snapshot.
func (h *Hierarchy) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.syncBytesLocked()
	st := h.stats
	st.Resident = len(h.main)
	return st
}

// Close flushes (in Spill mode) and marks the hierarchy closed.
func (h *Hierarchy) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	if h.discipline == Spill {
		if err := h.spillLocked(); err != nil {
			return err
		}
	}
	if h.next != nil {
		err := h.next.Flush()
		h.syncBytesLocked()
		return err
	}
	return nil
}

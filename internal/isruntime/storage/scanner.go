package storage

// The scan plane. Tiered's write path is sharded, batch-granular, and
// columnar; Scanner gives the read path the same shape. A scan
// snapshots segment *references* under the tier lock (slice headers,
// paths, footer-index fields — never column bytes), then a bounded
// worker pool decodes segments outside the lock, in parallel, with the
// footer index applied before any column is touched. Results stream
// back in strict append order through a flow.Reorder window as pooled
// flow batches, so a full-store scan holds the lock only for the
// snapshot, runs one segment per core, and allocates nothing per batch
// at steady state.
//
// Invariants the plane relies on:
//
//   - sealed segments are immutable: sealing appends to the warm tail
//     and a compaction commit is the only remover, so a snapshotted
//     in-memory ref stays valid forever;
//   - file-backed refs are pinned: a compaction commit that would
//     delete a pinned file defers the removal to the last unpin, so an
//     unlocked read never races os.Remove;
//   - the hot window is mutable (sealing shifts it in place), so the
//     snapshot copies matching hot records into a pooled batch under
//     the lock and emits them after the last segment.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"prism/internal/isruntime/flow"
	"prism/internal/trace"
)

// ScanFilter selects which records a scan yields. The zero value
// matches everything; FilterRange and FilterSource additionally let
// the segment footer index veto whole segments before decode.
type ScanFilter struct {
	kind       filterKind
	minT, maxT int64
	node       int32
}

type filterKind uint8

const (
	filterAll filterKind = iota
	filterRange
	filterSource
)

// FilterAll matches every record.
func FilterAll() ScanFilter { return ScanFilter{} }

// FilterRange matches records with capture time in [minT, maxT].
func FilterRange(minT, maxT int64) ScanFilter {
	return ScanFilter{kind: filterRange, minT: minT, maxT: maxT}
}

// FilterSource matches records contributed by node.
func FilterSource(node int32) ScanFilter {
	return ScanFilter{kind: filterSource, node: node}
}

// skipSeg reports whether the tier index proves a segment holds no
// matching records.
func (f ScanFilter) skipSeg(ts *tierSegment) bool {
	switch f.kind {
	case filterRange:
		return !ts.overlaps(f.minT, f.maxT)
	case filterSource:
		return !ts.hasSource(f.node)
	}
	return false
}

// matches tests one record — the hot window has no index.
func (f ScanFilter) matches(r *trace.Record) bool {
	switch f.kind {
	case filterRange:
		return r.Time >= f.minT && r.Time <= f.maxT
	case filterSource:
		return r.Node == f.node
	}
	return true
}

// appendSeg decodes a parsed segment through the filter's pushdown
// path.
func (f ScanFilter) appendSeg(seg *trace.Segment, dst []trace.Record) ([]trace.Record, error) {
	switch f.kind {
	case filterRange:
		return seg.AppendRange(dst, f.minT, f.maxT)
	case filterSource:
		return seg.AppendSource(dst, f.node)
	}
	return seg.AppendRecords(dst)
}

// ScanOptions tunes the scanner's decode pool.
type ScanOptions struct {
	// Parallel is the decode worker count. Zero means GOMAXPROCS; the
	// pool never exceeds the segment count.
	Parallel int
	// Window is the reorder window in segments — how far past the
	// consumer's position workers may decode ahead. Zero means
	// 2×Parallel.
	Window int
}

// segRef is one snapshotted segment: where its bytes live plus the
// sizing the decode worker needs. It never aliases mutable tier state.
type segRef struct {
	data  []byte // in-memory segment; nil in file mode
	path  string
	off   int64 // segment offset within path
	size  int   // encoded bytes
	count int   // record count, for batch sizing
}

type scanResult struct {
	batch flow.Batch
	err   error
}

var errScannerClosed = errors.New("storage: scanner closed")

// Scanner is a streaming, order-preserving cursor over a snapshot of
// segments plus an optional hot-window tail. One goroutine consumes it
// (Next/Close); the decode pool runs internally. Every scanner must be
// Closed, including after Next returned io.EOF or an error.
type Scanner struct {
	refs    []segRef
	filter  ScanFilter
	hot     flow.Batch // pre-filtered hot copy; emitted last, nil when absent
	win     *flow.Reorder[scanResult]
	wg      sync.WaitGroup
	release func() // unpins tier files; nil when nothing is pinned
	once    sync.Once

	// consumer-side state, single-goroutine by contract.
	err    error
	closed bool
}

func newScanner(refs []segRef, hot flow.Batch, f ScanFilter, opts ScanOptions, release func()) *Scanner {
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(refs) {
		workers = len(refs)
	}
	window := opts.Window
	if window <= 0 {
		window = 2 * workers
	}
	if window < 1 {
		window = 1
	}
	s := &Scanner{
		refs:    refs,
		filter:  f,
		hot:     hot,
		win:     flow.NewReorder[scanResult](window, len(refs)),
		release: release,
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker claims segment indexes from the reorder window, decodes them
// unlocked, and delivers the batches. Decode scratch (segment view,
// file handle, read buffer) is per-worker and reused across segments.
func (s *Scanner) worker() {
	defer s.wg.Done()
	var (
		seg   trace.Segment
		fbuf  []byte
		f     *os.File
		fpath string
	)
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for {
		i, ok := s.win.Claim()
		if !ok {
			return
		}
		batch, err := s.decode(&s.refs[i], &seg, &fbuf, &f, &fpath)
		if !s.win.Put(i, scanResult{batch: batch, err: err}) {
			flow.PutBatch(batch)
			return
		}
	}
}

func (s *Scanner) decode(ref *segRef, seg *trace.Segment, fbuf *[]byte, f **os.File, fpath *string) (flow.Batch, error) {
	data := ref.data
	if data == nil {
		if *f == nil || *fpath != ref.path {
			if *f != nil {
				(*f).Close()
				*f = nil
			}
			nf, err := os.Open(ref.path)
			if err != nil {
				return nil, fmt.Errorf("storage: read %s: %w", ref.path, err)
			}
			*f, *fpath = nf, ref.path
		}
		if cap(*fbuf) < ref.size {
			*fbuf = make([]byte, ref.size)
		}
		data = (*fbuf)[:ref.size]
		if _, err := (*f).ReadAt(data, ref.off); err != nil {
			return nil, fmt.Errorf("storage: read %s: %w", ref.path, err)
		}
	}
	if _, err := seg.Parse(data); err != nil {
		return nil, fmt.Errorf("storage: segment %s: %w", ref.path, err)
	}
	// Pushdown against the parsed footer. Tier scans already skipped
	// via the tier index; standalone-file scans have only this.
	switch s.filter.kind {
	case filterRange:
		if !seg.Overlaps(s.filter.minT, s.filter.maxT) {
			return nil, nil
		}
	case filterSource:
		if !seg.HasSource(s.filter.node) {
			return nil, nil
		}
	}
	batch := flow.GetBatch(seg.Count())
	batch, err := s.filter.appendSeg(seg, batch)
	if err != nil {
		flow.PutBatch(batch)
		return nil, fmt.Errorf("storage: segment %s: %w", ref.path, err)
	}
	return batch, nil
}

// Next returns the next non-empty batch of matching records in append
// order. The caller owns the batch and should recycle it with
// flow.PutBatch. io.EOF signals a clean end of stream; any other error
// is sticky. Close is still required after either.
func (s *Scanner) Next() (flow.Batch, error) {
	if s.closed {
		return nil, errScannerClosed
	}
	if s.err != nil {
		return nil, s.err
	}
	for {
		res, ok := s.win.Next()
		if !ok {
			break
		}
		if res.err != nil {
			s.err = res.err
			s.shutdown()
			return nil, res.err
		}
		if len(res.batch) == 0 {
			flow.PutBatch(res.batch)
			continue
		}
		return res.batch, nil
	}
	if h := s.hot; h != nil {
		s.hot = nil
		if len(h) > 0 {
			return h, nil
		}
		flow.PutBatch(h)
	}
	// Clean exhaustion: drop the pins now rather than waiting for
	// Close, so a long-lived-but-drained scanner holds nothing.
	s.releaseOnce()
	return nil, io.EOF
}

// Close stops the decode pool, recycles undelivered batches, and
// releases the scan's pins on tier segment files. Idempotent.
func (s *Scanner) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.shutdown()
}

func (s *Scanner) shutdown() {
	s.win.Close(func(r scanResult) { flow.PutBatch(r.batch) })
	s.wg.Wait()
	if s.hot != nil {
		flow.PutBatch(s.hot)
		s.hot = nil
	}
	s.releaseOnce()
}

func (s *Scanner) releaseOnce() {
	s.once.Do(func() {
		if s.release != nil {
			s.release()
		}
	})
}

// Scan returns a streaming scanner over a consistent snapshot of the
// store: every segment present at call time plus a copy of the hot
// window, in append order (cold, warm, hot). The snapshot is taken
// under the lock; all decode work happens outside it, so appends,
// sealing, and the compactor proceed while the scan runs. File-backed
// segments are pinned for the scanner's lifetime — a compaction commit
// that would delete a pinned file defers the removal to Close.
func (t *Tiered) Scan(f ScanFilter, opts ScanOptions) *Scanner {
	t.mu.Lock()
	refs := make([]segRef, 0, len(t.cold)+len(t.warm))
	var pinned []*tierSegment
	for _, tier := range [2][]*tierSegment{t.cold, t.warm} {
		for _, ts := range tier {
			if f.skipSeg(ts) {
				continue
			}
			refs = append(refs, segRef{data: ts.data, path: ts.path, size: ts.bytes, count: ts.count})
			if ts.path != "" {
				ts.pins++
				pinned = append(pinned, ts)
			}
		}
	}
	hot := flow.GetBatch(len(t.hot))
	for i := range t.hot {
		if f.matches(&t.hot[i]) {
			hot = append(hot, t.hot[i])
		}
	}
	t.mu.Unlock()
	var release func()
	if len(pinned) > 0 {
		release = func() { t.unpin(pinned) }
	}
	return newScanner(refs, hot, f, opts, release)
}

// unpin drops a scan's pins, completing any file removal a compaction
// commit deferred while the scan was reading.
func (t *Tiered) unpin(segs []*tierSegment) {
	t.mu.Lock()
	for _, s := range segs {
		s.pins--
		if s.pins == 0 && s.removeDeferred {
			s.removeDeferred = false
			_ = os.Remove(s.path)
		}
	}
	t.mu.Unlock()
}

// collect drains a scan into one materialized slice — the convenience
// form behind the legacy Read* methods; Scan is the streaming form.
func (t *Tiered) collect(f ScanFilter, hint int) ([]trace.Record, error) {
	sc := t.Scan(f, ScanOptions{})
	defer sc.Close()
	out := make([]trace.Record, 0, hint)
	for {
		b, err := sc.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, b...)
		flow.PutBatch(b)
	}
}

// ScanFiles streams the segments stored in the given files (each a
// concatenation of one or more segments, as written by
// trace.SegmentWriter or found in a Tiered directory) in argument
// order. Framing reads only the 16-byte header per segment; decode is
// deferred to the scan workers, so pushdown skips unmatching segments
// without reading their columns.
func ScanFiles(paths []string, f ScanFilter, opts ScanOptions) (*Scanner, error) {
	var refs []segRef
	var hdr [trace.SegmentHeaderSize]byte
	for _, path := range paths {
		fd, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("storage: scan %s: %w", path, err)
		}
		st, err := fd.Stat()
		if err != nil {
			fd.Close()
			return nil, fmt.Errorf("storage: scan %s: %w", path, err)
		}
		size := st.Size()
		var off int64
		for off < size {
			if _, err := fd.ReadAt(hdr[:], off); err != nil {
				fd.Close()
				return nil, fmt.Errorf("storage: scan %s at %d: %w", path, off, err)
			}
			count, segLen, err := trace.ParseSegmentHeader(hdr[:])
			if err != nil {
				fd.Close()
				return nil, fmt.Errorf("storage: scan %s at %d: %w", path, off, err)
			}
			if off+int64(segLen) > size {
				fd.Close()
				return nil, fmt.Errorf("storage: scan %s at %d: segment of %d bytes runs past end of file", path, off, segLen)
			}
			refs = append(refs, segRef{path: path, off: off, size: segLen, count: count})
			off += int64(segLen)
		}
		fd.Close()
	}
	return newScanner(refs, nil, f, opts, nil), nil
}

// ScanDir streams every *.seg file under dir in tier append order.
func ScanDir(dir string, f ScanFilter, opts ScanOptions) (*Scanner, error) {
	paths, err := SegmentFiles(dir)
	if err != nil {
		return nil, err
	}
	return ScanFiles(paths, f, opts)
}

// SegmentFiles lists dir's *.seg files in tier append order: cold
// segments first, then warm, each oldest-first (the shared tier
// sequence number embedded in the names makes lexical order age
// order); segment files with other names sort after both.
func SegmentFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: scan %s: %w", dir, err)
	}
	var cold, warm, other []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".seg") {
			continue
		}
		switch {
		case strings.HasPrefix(name, "cold-"):
			cold = append(cold, name)
		case strings.HasPrefix(name, "warm-"):
			warm = append(warm, name)
		default:
			other = append(other, name)
		}
	}
	var paths []string
	for _, group := range [][]string{cold, warm, other} {
		sort.Strings(group)
		for _, n := range group {
			paths = append(paths, filepath.Join(dir, n))
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("storage: no .seg files in %s", dir)
	}
	return paths, nil
}

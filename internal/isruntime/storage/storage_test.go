package storage

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

func recs(n int) []trace.Record {
	out := make([]trace.Record, n)
	for i := range out {
		out[i] = trace.Record{Kind: trace.KindUser, Tag: uint16(i), Time: int64(i)}
	}
	return out
}

func TestDisciplineString(t *testing.T) {
	if Spill.String() != "spill" || Ring.String() != "ring" {
		t.Fatal("names")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Spill, 0, &bytes.Buffer{}); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := New(Spill, 4, nil); err == nil {
		t.Fatal("spill without next level accepted")
	}
	if _, err := New(Ring, 4, nil); err != nil {
		t.Fatalf("pure ring rejected: %v", err)
	}
}

func TestSpillPreservesEverything(t *testing.T) {
	var disk bytes.Buffer
	h, err := New(Spill, 10, &disk)
	if err != nil {
		t.Fatal(err)
	}
	in := recs(55)
	if err := h.Append(in...); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.NewReader(&disk).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 55 {
		t.Fatalf("disk has %d of 55", len(got))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("record %d reordered or corrupted", i)
		}
	}
	st := h.Stats()
	if st.Appended != 55 || st.ToDisk != 55 || st.Spills < 5 {
		t.Fatalf("stats %+v", st)
	}
	if st.Overwritten != 0 {
		t.Fatal("spill mode overwrote")
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	h, err := New(Ring, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Append(recs(12)...); err != nil {
		t.Fatal(err)
	}
	recent := h.Recent()
	if len(recent) != 5 {
		t.Fatalf("resident %d", len(recent))
	}
	for i, r := range recent {
		if r.Tag != uint16(7+i) {
			t.Fatalf("ring kept wrong window: %v", recent)
		}
	}
	st := h.Stats()
	if st.Overwritten != 7 || st.Spills != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRingWithDiskNeverSpillsAutomatically(t *testing.T) {
	var disk bytes.Buffer
	h, _ := New(Ring, 3, &disk)
	_ = h.Append(recs(9)...)
	// Explicit Flush snapshots the window to disk.
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.NewReader(&disk).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("flushed %d", len(got))
	}
	if got[0].Tag != 6 {
		t.Fatalf("window start %d", got[0].Tag)
	}
}

func TestAppendAfterClose(t *testing.T) {
	var disk bytes.Buffer
	h, _ := New(Spill, 4, &disk)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Append(recs(1)...); err == nil {
		t.Fatal("append after close accepted")
	}
	if err := h.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

func TestPeakTracking(t *testing.T) {
	var disk bytes.Buffer
	h, _ := New(Spill, 8, &disk)
	_ = h.Append(recs(6)...)
	if st := h.Stats(); st.Peak != 6 || st.Resident != 6 {
		t.Fatalf("stats %+v", st)
	}
	_ = h.Flush()
	if st := h.Stats(); st.Resident != 0 || st.Peak != 6 {
		t.Fatalf("stats after flush %+v", st)
	}
}

func TestBytesToDiskAccounting(t *testing.T) {
	var disk bytes.Buffer
	reg := metrics.NewRegistry()
	h, err := New(Spill, 10, &disk, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Append(recs(55)...); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.BytesToDisk != uint64(disk.Len()) {
		t.Fatalf("BytesToDisk %d, disk holds %d", st.BytesToDisk, disk.Len())
	}
	if st.BytesToDisk == 0 {
		t.Fatal("no bytes accounted")
	}
	if got := reg.Snapshot().Value("storage.bytes_disk"); got != float64(st.BytesToDisk) {
		t.Fatalf("storage.bytes_disk metric %v, stats say %d", got, st.BytesToDisk)
	}
}

func TestSegmentSpillRoundTrip(t *testing.T) {
	var disk bytes.Buffer
	h, err := New(Spill, 16, &disk, WithSegments())
	if err != nil {
		t.Fatal(err)
	}
	in := recs(57)
	if err := h.Append(in...); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	diskBytes := disk.Len()
	got, err := trace.NewSegmentReader(&disk).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("segments hold %d of %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("record %d reordered or corrupted", i)
		}
	}
	st := h.Stats()
	if st.BytesToDisk != uint64(diskBytes) {
		t.Fatalf("BytesToDisk %d, disk holds %d", st.BytesToDisk, diskBytes)
	}
	// The segment spill must be denser than the flat encoding it
	// replaces.
	if int(st.BytesToDisk) >= len(in)*trace.RecordSize {
		t.Fatalf("columnar spill (%d bytes) is no smaller than flat (%d)", st.BytesToDisk, len(in)*trace.RecordSize)
	}
}

// failAfterWriter accepts the first n bytes, then fails mid-write.
type failAfterWriter struct {
	n    int
	seen int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.seen+len(p) <= w.n {
		w.seen += len(p)
		return len(p), nil
	}
	ok := w.n - w.seen
	if ok < 0 {
		ok = 0
	}
	w.seen += ok
	return ok, errors.New("disk full")
}

func TestSpillErrorReportsPosition(t *testing.T) {
	h, err := New(Spill, 8, &failAfterWriter{n: 10}, WithSegments(), WithName("/spool/seg.bin"))
	if err != nil {
		t.Fatal(err)
	}
	err = h.Append(recs(30)...)
	if err == nil {
		t.Fatal("spill onto a failing device succeeded")
	}
	msg := err.Error()
	for _, want := range []string{"/spool/seg.bin", "offset", "torn after"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("spill error %q missing %q", msg, want)
		}
	}
	if st := h.Stats(); st.BytesToDisk != 10 {
		t.Fatalf("BytesToDisk %d after partial write of 10", st.BytesToDisk)
	}
}

func TestConcurrentAppend(t *testing.T) {
	var disk bytes.Buffer
	h, _ := New(Spill, 64, &disk)
	var wg sync.WaitGroup
	const writers = 8
	const each = 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := h.Append(trace.Record{Kind: trace.KindUser}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.NewReader(&disk).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*each {
		t.Fatalf("disk has %d of %d", len(got), writers*each)
	}
}

package storage

// Tiered retention: the paper treats spill capacity as a first-class
// IS design parameter ("the storage capacity is assumed to increase
// with each level", §3.1). Tiered is that hierarchy made literal for
// production retention:
//
//	hot   — an in-memory window of the most recent records;
//	warm  — recently sealed columnar segments (memory or files);
//	cold  — background-compacted merges of aged warm segments,
//	        produced by a dedicated goroutine under a bounded I/O
//	        budget so compaction cannot steal the spill path's disk
//	        bandwidth.
//
// Records flow hot → warm → cold and are never lost: sealing moves the
// oldest hot run into one segment, compaction folds the oldest warm
// segments into one cold segment. Order is preserved end to end, so
// cold + warm + hot read back as the exact append-order stream — the
// property the trace-replay driver depends on.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

// Tiered is a valid spill target for every flow stage.
var _ flow.Spill = (*Tiered)(nil)

// TieredConfig parameterizes a tiered store.
type TieredConfig struct {
	// HotCapacity is the in-memory hot window in records. When the
	// window fills, the oldest SegmentRecords records seal into a warm
	// segment. Zero means 1<<14.
	HotCapacity int
	// SegmentRecords is the seal granularity — records per warm
	// segment. Zero means 1<<13; it must not exceed HotCapacity.
	SegmentRecords int
	// WarmLimit is the number of warm segments that triggers a
	// compaction round folding them into one cold segment. Zero means
	// 8.
	WarmLimit int
	// Dir, when non-empty, stores segments as files (warm-NNNNNN.seg,
	// cold-NNNNNN.seg) under this directory; empty keeps segments in
	// memory.
	Dir string
	// CompactBudget bounds the compactor's I/O rate in bytes/second
	// (reads plus writes). Zero is unbounded.
	CompactBudget int64
	// Metrics, when non-nil, mirrors tier activity under the
	// "storage.tier" scope.
	Metrics *metrics.Registry
}

// TierStats summarizes tiered-store activity.
type TierStats struct {
	Appended      uint64 // records accepted
	Sealed        uint64 // records sealed into warm segments
	HotResident   int    // records currently in the hot window
	WarmSegments  int    // current warm segment count
	ColdSegments  int    // current cold segment count
	RecordsStored uint64 // records currently in warm+cold segments
	BytesStored   int64  // current warm+cold segment bytes
	BytesToDisk   uint64 // cumulative segment bytes written (seal + compact)
	Compactions   uint64 // completed compaction rounds
	Compacted     uint64 // warm segments folded into cold
	CompactErrors uint64 // failed compaction rounds (segments retained)
	ThrottleNs    int64  // cumulative compactor budget sleep
}

// tierMetrics is the optional registry-backed counter set.
type tierMetrics struct {
	appended, sealed, bytesDisk, compactions, compactErrors *metrics.Counter
	hotResident, warmSegments, coldSegments, bytesStored    *metrics.Gauge
}

// tierSegment is one sealed segment in the warm or cold tier.
type tierSegment struct {
	data       []byte // in-memory mode
	path       string // file mode
	bytes      int
	count      int
	minTime    int64
	maxTime    int64
	sources    []int32 // distinct nodes, ascending — the file-skip index
	compacting bool    // claimed by the in-flight compaction round

	// Scan pinning (file mode, guarded by Tiered.mu): pins counts live
	// scanner snapshots referencing this segment's file;
	// removeDeferred marks a compaction commit that wanted the file
	// gone while pinned — the last unpin performs the removal.
	pins           int
	removeDeferred bool
}

// overlaps mirrors trace.Segment.Overlaps at the tier index level.
func (ts *tierSegment) overlaps(minT, maxT int64) bool {
	return ts.count > 0 && ts.minTime <= maxT && ts.maxTime >= minT
}

func (ts *tierSegment) hasSource(node int32) bool {
	for _, n := range ts.sources {
		if n == node {
			return true
		}
		if n > node {
			return false
		}
	}
	return false
}

// Tiered is a hot/warm/cold trace store. It is safe for concurrent
// use; one background goroutine runs compaction.
type Tiered struct {
	cfg TieredConfig

	mu     sync.Mutex
	hot    []trace.Record
	warm   []*tierSegment
	cold   []*tierSegment
	seq    int // segment file name counter
	stats  TierStats
	m      *tierMetrics
	closed bool

	encBuf []byte // seal-path encode scratch (under mu)

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	// compactor-goroutine-private scratch (no lock needed).
	compRecs []trace.Record
	compBuf  []byte
	compSeg  trace.Segment
}

// NewTiered creates and starts a tiered store.
func NewTiered(cfg TieredConfig) (*Tiered, error) {
	if cfg.HotCapacity <= 0 {
		cfg.HotCapacity = 1 << 14
	}
	if cfg.SegmentRecords <= 0 {
		cfg.SegmentRecords = 1 << 13
	}
	if cfg.WarmLimit <= 0 {
		cfg.WarmLimit = 8
	}
	if cfg.SegmentRecords > cfg.HotCapacity {
		return nil, fmt.Errorf("storage: SegmentRecords %d exceeds HotCapacity %d", cfg.SegmentRecords, cfg.HotCapacity)
	}
	if cfg.CompactBudget < 0 {
		return nil, errors.New("storage: negative CompactBudget")
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("storage: tier directory: %w", err)
		}
	}
	t := &Tiered{
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.Metrics != nil {
		s := cfg.Metrics.Scope("storage").Scope("tier")
		t.m = &tierMetrics{
			appended: s.Counter("appended"), sealed: s.Counter("sealed"),
			bytesDisk: s.Counter("bytes_disk"), compactions: s.Counter("compactions"),
			compactErrors: s.Counter("compact_errors"),
			hotResident:   s.Gauge("hot_resident"), warmSegments: s.Gauge("warm_segments"),
			coldSegments: s.Gauge("cold_segments"), bytesStored: s.Gauge("bytes_stored"),
		}
	}
	go t.compactLoop()
	return t, nil
}

// Append stores records — the flow.Spill entry point. The hot window
// absorbs them; overflow seals the oldest run into a warm segment.
func (t *Tiered) Append(rs ...trace.Record) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errors.New("storage: tiered store closed")
	}
	t.hot = append(t.hot, rs...)
	t.stats.Appended += uint64(len(rs))
	if t.m != nil {
		t.m.appended.Add(uint64(len(rs)))
	}
	for len(t.hot) >= t.cfg.HotCapacity {
		if err := t.sealLocked(t.cfg.SegmentRecords); err != nil {
			return err
		}
	}
	t.publishLocked()
	return nil
}

// sealLocked encodes the oldest n hot records as one warm segment.
func (t *Tiered) sealLocked(n int) error {
	if n > len(t.hot) {
		n = len(t.hot)
	}
	if n == 0 {
		return nil
	}
	run := t.hot[:n]
	t.encBuf = trace.AppendSegment(t.encBuf[:0], run)
	seg := &tierSegment{bytes: len(t.encBuf), count: n}
	seg.minTime, seg.maxTime = run[0].Time, run[0].Time
	for i := range run {
		if tm := run[i].Time; tm < seg.minTime {
			seg.minTime = tm
		} else if tm > seg.maxTime {
			seg.maxTime = tm
		}
		node := run[i].Node
		found := false
		for _, s := range seg.sources {
			if s == node {
				found = true
				break
			}
		}
		if !found {
			seg.sources = append(seg.sources, node)
		}
	}
	sortInt32(seg.sources)
	if t.cfg.Dir != "" {
		seg.path = filepath.Join(t.cfg.Dir, fmt.Sprintf("warm-%06d.seg", t.seq))
		t.seq++
		if err := writeSegmentFile(seg.path, t.encBuf); err != nil {
			return err
		}
	} else {
		seg.data = append([]byte(nil), t.encBuf...)
	}
	m := copy(t.hot, t.hot[n:])
	t.hot = t.hot[:m]
	t.warm = append(t.warm, seg)
	t.stats.Sealed += uint64(n)
	t.stats.BytesToDisk += uint64(seg.bytes)
	if t.m != nil {
		t.m.sealed.Add(uint64(n))
		t.m.bytesDisk.Add(uint64(seg.bytes))
	}
	if t.eligibleLocked() >= t.cfg.WarmLimit {
		select {
		case t.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// writeSegmentFile writes one segment to its own file, reporting the
// torn-write position on failure.
func writeSegmentFile(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: seal %s: %w", path, err)
	}
	n, err := f.Write(data)
	if err != nil {
		f.Close()
		return fmt.Errorf("storage: seal %s: segment torn after %d of %d bytes: %w", path, n, len(data), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: seal %s: %w", path, err)
	}
	return nil
}

// sortInt32 insertion-sorts the (short) per-segment source list.
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// eligibleLocked counts warm segments not claimed by the compactor.
func (t *Tiered) eligibleLocked() int {
	n := 0
	for _, s := range t.warm {
		if !s.compacting {
			n++
		}
	}
	return n
}

// publishLocked refreshes the gauge-backed stats.
func (t *Tiered) publishLocked() {
	t.stats.HotResident = len(t.hot)
	t.stats.WarmSegments = len(t.warm)
	t.stats.ColdSegments = len(t.cold)
	var bytes int64
	var recs uint64
	for _, s := range t.warm {
		bytes += int64(s.bytes)
		recs += uint64(s.count)
	}
	for _, s := range t.cold {
		bytes += int64(s.bytes)
		recs += uint64(s.count)
	}
	t.stats.BytesStored = bytes
	t.stats.RecordsStored = recs
	if t.m != nil {
		t.m.hotResident.Set(int64(len(t.hot)))
		t.m.warmSegments.Set(int64(len(t.warm)))
		t.m.coldSegments.Set(int64(len(t.cold)))
		t.m.bytesStored.Set(bytes)
	}
}

// compactLoop is the dedicated compaction goroutine: it waits for the
// warm tier to age past WarmLimit, then folds rounds until the backlog
// clears.
func (t *Tiered) compactLoop() {
	defer close(t.done)
	for {
		select {
		case <-t.stop:
			return
		case <-t.kick:
		}
		for t.compactOnce() {
			select {
			case <-t.stop:
				return
			default:
			}
		}
	}
}

// compactOnce folds the oldest WarmLimit warm segments into one cold
// segment. It claims the segments under the lock, performs the
// decode/merge/encode I/O outside it under the byte budget, then
// commits the swap. It reports whether a round ran.
func (t *Tiered) compactOnce() bool {
	t.mu.Lock()
	if t.eligibleLocked() < t.cfg.WarmLimit {
		t.mu.Unlock()
		return false
	}
	claimed := make([]*tierSegment, t.cfg.WarmLimit)
	copy(claimed, t.warm[:t.cfg.WarmLimit])
	for _, s := range claimed {
		s.compacting = true
	}
	t.mu.Unlock()

	// Decode every claimed segment, oldest first, outside the lock.
	// Claimed segments are immutable: sealing only appends to the warm
	// tail, and commit below is the only remover.
	t.compRecs = t.compRecs[:0]
	var readBytes int
	fail := func(err error) bool {
		t.mu.Lock()
		for _, s := range claimed {
			s.compacting = false
		}
		t.stats.CompactErrors++
		if t.m != nil {
			t.m.compactErrors.Inc()
		}
		t.mu.Unlock()
		_ = err // retained in stats; the next round retries
		return true
	}
	for _, s := range claimed {
		data := s.data
		if s.path != "" {
			var err error
			data, err = os.ReadFile(s.path)
			if err != nil {
				return fail(err)
			}
		}
		if _, err := t.compSeg.Parse(data); err != nil {
			return fail(fmt.Errorf("compact %s: %w", s.path, err))
		}
		var err error
		t.compRecs, err = t.compSeg.AppendRecords(t.compRecs)
		if err != nil {
			return fail(fmt.Errorf("compact %s: %w", s.path, err))
		}
		readBytes += len(data)
		t.throttle(len(data))
	}
	t.compBuf = trace.AppendSegment(t.compBuf[:0], t.compRecs)
	cold := &tierSegment{bytes: len(t.compBuf), count: len(t.compRecs)}
	cold.minTime, cold.maxTime = claimed[0].minTime, claimed[0].maxTime
	for _, s := range claimed {
		if s.minTime < cold.minTime {
			cold.minTime = s.minTime
		}
		if s.maxTime > cold.maxTime {
			cold.maxTime = s.maxTime
		}
		for _, n := range s.sources {
			if !cold.hasSource(n) {
				cold.sources = append(cold.sources, n)
				sortInt32(cold.sources)
			}
		}
	}
	if t.cfg.Dir != "" {
		t.mu.Lock()
		cold.path = filepath.Join(t.cfg.Dir, fmt.Sprintf("cold-%06d.seg", t.seq))
		t.seq++
		t.mu.Unlock()
		if err := writeSegmentFile(cold.path, t.compBuf); err != nil {
			return fail(err)
		}
	} else {
		cold.data = append([]byte(nil), t.compBuf...)
	}
	t.throttle(len(t.compBuf))

	// Commit: the claimed prefix leaves warm, the merged segment joins
	// the cold tail. Readers hold the same lock, so they see either
	// the old view or the new one — never a torn mix.
	t.mu.Lock()
	t.warm = append(t.warm[:0], t.warm[len(claimed):]...)
	t.cold = append(t.cold, cold)
	t.stats.Compactions++
	t.stats.Compacted += uint64(len(claimed))
	t.stats.BytesToDisk += uint64(cold.bytes)
	if t.m != nil {
		t.m.compactions.Inc()
		t.m.bytesDisk.Add(uint64(cold.bytes))
	}
	for _, s := range claimed {
		if s.path != "" {
			if s.pins > 0 {
				// A scanner snapshot is still reading this file; the
				// last unpin removes it.
				s.removeDeferred = true
			} else {
				_ = os.Remove(s.path)
			}
		}
	}
	t.publishLocked()
	t.mu.Unlock()
	return true
}

// throttle sleeps long enough to keep the compactor's I/O under the
// configured budget.
func (t *Tiered) throttle(n int) {
	if t.cfg.CompactBudget <= 0 || n <= 0 {
		return
	}
	d := time.Duration(float64(n) / float64(t.cfg.CompactBudget) * float64(time.Second))
	t.mu.Lock()
	t.stats.ThrottleNs += int64(d)
	t.mu.Unlock()
	select {
	case <-time.After(d):
	case <-t.stop:
	}
}

// ReadAll returns every retained record in append order: cold, then
// warm, then the hot window. Like every Read*, it is a collector over
// Scan: the tier lock is held only for the snapshot, never for the
// decode.
func (t *Tiered) ReadAll() ([]trace.Record, error) {
	t.mu.Lock()
	hint := int(t.stats.RecordsStored) + len(t.hot)
	t.mu.Unlock()
	return t.collect(FilterAll(), hint)
}

// ReadRange returns the retained records with capture time in
// [minT, maxT], skipping segments the footer index excludes.
func (t *Tiered) ReadRange(minT, maxT int64) ([]trace.Record, error) {
	return t.collect(FilterRange(minT, maxT), 0)
}

// ReadSource returns the retained records contributed by node,
// skipping segments whose source index excludes it.
func (t *Tiered) ReadSource(node int32) ([]trace.Record, error) {
	return t.collect(FilterSource(node), 0)
}

// Recent returns a copy of the hot window in arrival order.
func (t *Tiered) Recent() []trace.Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]trace.Record(nil), t.hot...)
}

// Flush seals the entire hot window into a final (possibly short) warm
// segment, making every appended record durable in segment form.
func (t *Tiered) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.hot) > 0 {
		if err := t.sealLocked(t.cfg.SegmentRecords); err != nil {
			return err
		}
	}
	t.publishLocked()
	return nil
}

// Stats returns an activity snapshot.
func (t *Tiered) Stats() TierStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.publishLocked()
	return t.stats
}

// Close flushes the hot window and stops the compactor. Reads remain
// valid after Close; appends fail.
func (t *Tiered) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		<-t.done
		return nil
	}
	t.closed = true
	var err error
	for len(t.hot) > 0 && err == nil {
		err = t.sealLocked(t.cfg.SegmentRecords)
	}
	t.publishLocked()
	t.mu.Unlock()
	close(t.stop)
	<-t.done
	return err
}

package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"prism/internal/isruntime/flow"
	"prism/internal/raceflag"
	"prism/internal/trace"
)

// drainScan collects a scanner to completion, recycling every batch.
func drainScan(t *testing.T, sc *Scanner) []trace.Record {
	t.Helper()
	defer sc.Close()
	var out []trace.Record
	for {
		b, err := sc.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		out = append(out, b...)
		flow.PutBatch(b)
	}
}

func recsEqual(t *testing.T, got, want []trace.Record, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d records, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %+v, want %+v", what, i, got[i], want[i])
		}
	}
}

// TestScannerMatchesReads checks that every filter and parallelism
// setting yields exactly the legacy Read* output, in both memory and
// file mode, with records split across hot, warm, and cold tiers.
func TestScannerMatchesReads(t *testing.T) {
	for _, mode := range []string{"memory", "file"} {
		t.Run(mode, func(t *testing.T) {
			cfg := TieredConfig{HotCapacity: 64, SegmentRecords: 32, WarmLimit: 4}
			if mode == "file" {
				cfg.Dir = t.TempDir()
			}
			ts, err := NewTiered(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer ts.Close()
			all := tierRecs(1000, 0)
			for i := 0; i < len(all); i += 100 {
				if err := ts.Append(all[i : i+100]...); err != nil {
					t.Fatal(err)
				}
			}
			waitCompactions(t, ts, 1)

			var wantRange, wantSource []trace.Record
			for _, r := range all {
				if r.Time >= 1000 && r.Time <= 5000 {
					wantRange = append(wantRange, r)
				}
				if r.Node == 2 {
					wantSource = append(wantSource, r)
				}
			}
			for _, par := range []int{1, 4} {
				opts := ScanOptions{Parallel: par}
				recsEqual(t, drainScan(t, ts.Scan(FilterAll(), opts)), all,
					fmt.Sprintf("all par=%d", par))
				recsEqual(t, drainScan(t, ts.Scan(FilterRange(1000, 5000), opts)), wantRange,
					fmt.Sprintf("range par=%d", par))
				recsEqual(t, drainScan(t, ts.Scan(FilterSource(2), opts)), wantSource,
					fmt.Sprintf("source par=%d", par))
			}
		})
	}
}

// TestScanFilesAndDir checks the standalone-file plane: a
// SegmentWriter stream scanned as one file, and a tier directory
// scanned cold-then-warm without a live store.
func TestScanFilesAndDir(t *testing.T) {
	dir := t.TempDir()
	all := tierRecs(600, 0)

	// One file holding several concatenated segments.
	path := filepath.Join(dir, "stream.seg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sw := trace.NewSegmentWriter(f)
	for i := 0; i < len(all); i += 150 {
		if _, err := sw.WriteSegment(all[i : i+150]); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := ScanFiles([]string{path}, FilterAll(), ScanOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	recsEqual(t, drainScan(t, sc), all, "segment stream")

	sc, err = ScanFiles([]string{path}, FilterSource(3), ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var want []trace.Record
	for _, r := range all {
		if r.Node == 3 {
			want = append(want, r)
		}
	}
	recsEqual(t, drainScan(t, sc), want, "segment stream source filter")

	// A tier directory read back cold-first after the store is gone.
	tierDir := filepath.Join(dir, "tier")
	ts, err := NewTiered(TieredConfig{HotCapacity: 64, SegmentRecords: 32, WarmLimit: 4, Dir: tierDir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(all); i += 100 {
		if err := ts.Append(all[i : i+100]...); err != nil {
			t.Fatal(err)
		}
	}
	waitCompactions(t, ts, 1)
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err = ScanDir(tierDir, FilterAll(), ScanOptions{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	recsEqual(t, drainScan(t, sc), all, "tier directory")

	if _, err := ScanDir(dir, FilterAll(), ScanOptions{}); err != nil {
		// dir itself holds stream.seg, so this succeeds; an empty dir
		// must not.
		t.Fatalf("ScanDir over %s: %v", dir, err)
	}
	if _, err := ScanDir(t.TempDir(), FilterAll(), ScanOptions{}); err == nil {
		t.Fatal("ScanDir over an empty directory should fail")
	}
}

// TestScannerAppendNotBlockedDuringScan pins the satellite bugfix: a
// paused mid-stream scan must not hold the tier lock, so concurrent
// appends complete immediately.
func TestScannerAppendNotBlockedDuringScan(t *testing.T) {
	ts, err := NewTiered(TieredConfig{HotCapacity: 64, SegmentRecords: 32, WarmLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	all := tierRecs(64*32, 0)
	for i := 0; i < len(all); i += 64 {
		if err := ts.Append(all[i : i+64]...); err != nil {
			t.Fatal(err)
		}
	}

	// Window 1 parks the decode pool after one segment; the consumer
	// then stalls without calling Next, exactly the shape that used to
	// hold t.mu for the whole materialized read.
	sc := ts.Scan(FilterAll(), ScanOptions{Parallel: 1, Window: 1})
	defer sc.Close()
	b, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	flow.PutBatch(b)

	done := make(chan error, 1)
	go func() { done <- ts.Append(tierRecs(64, 1<<20)...) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Append blocked while a scan was paused mid-stream")
	}

	// The paused scan still sees exactly its snapshot — segments plus
	// the hot window at Scan time, nothing from the later append.
	got := drainScan(t, sc)
	recsEqual(t, got, all[32:], "post-append drain") // first segment already consumed
}

// TestScanPinsDeferCompactorRemoval checks the pin protocol: a
// compaction commit must not delete segment files an open scanner
// snapshotted; the removal happens at Close instead.
func TestScanPinsDeferCompactorRemoval(t *testing.T) {
	dir := t.TempDir()
	ts, err := NewTiered(TieredConfig{HotCapacity: 8, SegmentRecords: 8, WarmLimit: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if err := ts.Append(tierRecs(24, 0)...); err != nil { // 3 warm segments
		t.Fatal(err)
	}
	pinnedFiles := []string{
		filepath.Join(dir, "warm-000000.seg"),
		filepath.Join(dir, "warm-000001.seg"),
		filepath.Join(dir, "warm-000002.seg"),
	}
	for _, p := range pinnedFiles {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("expected warm segment on disk: %v", err)
		}
	}

	sc := ts.Scan(FilterAll(), ScanOptions{Parallel: 1, Window: 1})
	if err := ts.Append(tierRecs(16, 24)...); err != nil { // 2 more → compaction folds 4
		t.Fatal(err)
	}
	waitCompactions(t, ts, 1)

	// The three pinned files survive the commit; the unpinned fourth
	// claimed segment is gone.
	for _, p := range pinnedFiles {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("compactor removed pinned file: %v", err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "warm-000003.seg")); !os.IsNotExist(err) {
		t.Fatalf("unpinned claimed segment should be removed, stat err = %v", err)
	}

	got := drainScan(t, sc) // drains and Closes → deferred removal runs
	recsEqual(t, got, tierRecs(24, 0), "pinned snapshot")
	for _, p := range pinnedFiles {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("deferred removal did not run for %s, stat err = %v", p, err)
		}
	}
}

// TestScannerErrorSticky corrupts a segment file and checks the error
// surfaces in order, stays sticky, and leaves Close safe.
func TestScannerErrorSticky(t *testing.T) {
	dir := t.TempDir()
	ts, err := NewTiered(TieredConfig{HotCapacity: 8, SegmentRecords: 8, WarmLimit: 1 << 20, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if err := ts.Append(tierRecs(24, 0)...); err != nil {
		t.Fatal(err)
	}
	// Corrupt column bytes in place, keeping the framing intact, so the
	// failure surfaces as a checksum mismatch at decode time.
	torn := filepath.Join(dir, "warm-000001.seg")
	data, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 24; i++ {
		data[i] ^= 0xff
	}
	if err := os.WriteFile(torn, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sc := ts.Scan(FilterAll(), ScanOptions{Parallel: 2})
	defer sc.Close()
	b, err := sc.Next() // segment 0 is intact
	if err != nil {
		t.Fatal(err)
	}
	flow.PutBatch(b)
	_, err = sc.Next()
	if err == nil || !errors.Is(err, trace.ErrBadSegment) {
		t.Fatalf("Next over torn segment = %v, want ErrBadSegment", err)
	}
	if _, err2 := sc.Next(); err2 != err {
		t.Fatalf("error not sticky: %v then %v", err, err2)
	}
	if _, err := ts.ReadAll(); err == nil {
		t.Fatal("ReadAll over torn segment should fail")
	}
}

// TestScanBatchAllocs pins the steady-state guarantee: once the batch
// pool is warm, a Next/PutBatch cycle performs zero allocations.
func TestScanBatchAllocs(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	ts, err := NewTiered(TieredConfig{HotCapacity: 1024, SegmentRecords: 512, WarmLimit: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	all := tierRecs(64*512, 0)
	for i := 0; i < len(all); i += 1024 {
		if err := ts.Append(all[i : i+1024]...); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the batch pool with one full pass.
	drainScan(t, ts.Scan(FilterAll(), ScanOptions{Parallel: 1}))

	sc := ts.Scan(FilterAll(), ScanOptions{Parallel: 1})
	defer sc.Close()
	for i := 0; i < 8; i++ { // let the worker's scratch reach steady state
		b, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		flow.PutBatch(b)
	}
	allocs := testing.AllocsPerRun(40, func() {
		b, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		flow.PutBatch(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state scan batch costs %.1f allocs, want 0", allocs)
	}
}

// Package event provides the capture side of the synthesized
// instrumentation system: clocks, sensors and probes. In the paper's
// vocabulary (after Ogle et al., cited in §2.2.1) sensors and probes
// are the LIS elements embedded in application code that turn program
// activity into instrumentation-data records.
//
// Every captured record carries a timestamp from a Clock. Production
// use takes the real monotonic clock; tests and simulations inject a
// virtual clock so runs are deterministic.
package event

import (
	"sync"
	"sync/atomic"
	"time"

	"prism/internal/trace"
)

// Clock supplies capture timestamps in nanoseconds.
type Clock interface {
	Now() int64
}

// RealClock reads the process monotonic clock.
type RealClock struct{ base time.Time }

// NewRealClock returns a RealClock anchored at construction time, so
// timestamps start near zero and traces from separate runs align.
func NewRealClock() *RealClock { return &RealClock{base: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() int64 { return int64(time.Since(c.base)) }

// VirtualClock is a settable clock for tests and simulation-coupled
// runs. It is safe for concurrent use.
type VirtualClock struct{ ns atomic.Int64 }

// Now implements Clock.
func (c *VirtualClock) Now() int64 { return c.ns.Load() }

// Set moves the clock to the given nanosecond timestamp.
func (c *VirtualClock) Set(ns int64) { c.ns.Store(ns) }

// Advance moves the clock forward by d nanoseconds and returns the new
// time.
func (c *VirtualClock) Advance(d int64) int64 { return c.ns.Add(d) }

// Sink consumes captured records; the LIS implementations in package
// lis are the sinks of this package's sensors.
type Sink interface {
	// Capture accepts one record. Implementations may block (e.g. a
	// full pipe under the daemon LIS, the blocking effect §3.2.3
	// describes) but must not retain the record beyond the call.
	Capture(trace.Record)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(trace.Record)

// Capture implements Sink.
func (f SinkFunc) Capture(r trace.Record) { f(r) }

// Sensor captures events for one (node, process) source and stamps
// them with capture time and a per-source sequence number (carried to
// the ISM for causal reconstruction). It is safe for concurrent use by
// the instrumented process's goroutines.
type Sensor struct {
	node, process int32
	clock         Clock
	sink          Sink
	seq           atomic.Uint64
	captured      atomic.Uint64
	enabled       atomic.Bool
}

// NewSensor creates a sensor for the given source feeding sink.
func NewSensor(node, process int32, clock Clock, sink Sink) *Sensor {
	s := &Sensor{node: node, process: process, clock: clock, sink: sink}
	s.enabled.Store(true)
	return s
}

// Enable turns capture on or off; disabled sensors drop events with
// near-zero cost, the mechanism behind dynamic instrumentation
// (Paradyn inserts and removes instrumentation at runtime, §3.2).
func (s *Sensor) Enable(on bool) { s.enabled.Store(on) }

// Enabled reports whether the sensor is capturing.
func (s *Sensor) Enabled() bool { return s.enabled.Load() }

// Captured returns the number of records captured (not dropped).
func (s *Sensor) Captured() uint64 { return s.captured.Load() }

// NextSeq returns the next per-source sequence number without
// consuming it.
func (s *Sensor) NextSeq() uint64 { return s.seq.Load() }

// Emit captures a record of the given kind. The record's Node,
// Process, Time and Logical fields are overwritten; Logical carries
// the capture sequence number until the ISM assigns Lamport stamps.
func (s *Sensor) Emit(kind trace.Kind, tag uint16, payload int64) {
	if !s.enabled.Load() {
		return
	}
	r := trace.Record{
		Node:    s.node,
		Process: s.process,
		Kind:    kind,
		Tag:     tag,
		Time:    s.clock.Now(),
		Logical: s.seq.Add(1) - 1,
		Payload: payload,
	}
	s.captured.Add(1)
	s.sink.Capture(r)
}

// User captures a user-defined event.
func (s *Sensor) User(tag uint16, payload int64) { s.Emit(trace.KindUser, tag, payload) }

// Send captures a message-send event to the given destination node.
func (s *Sensor) Send(tag uint16, dest int32) { s.Emit(trace.KindSend, tag, int64(dest)) }

// Recv captures a message-receive event from the given source node.
func (s *Sensor) Recv(tag uint16, src int32) { s.Emit(trace.KindRecv, tag, int64(src)) }

// BlockIn captures entry to an instrumented block.
func (s *Sensor) BlockIn(block uint16) { s.Emit(trace.KindBlockIn, block, 0) }

// BlockOut captures exit from an instrumented block.
func (s *Sensor) BlockOut(block uint16) { s.Emit(trace.KindBlockOut, block, 0) }

// Sample captures a metric sample.
func (s *Sensor) Sample(metric uint16, value int64) { s.Emit(trace.KindSample, metric, value) }

// Mark captures a phase marker.
func (s *Sensor) Mark(tag uint16) { s.Emit(trace.KindMark, tag, 0) }

// Counter is a monotonically increasing metric a probe can sample,
// e.g. bytes sent or procedure entry counts. It is safe for concurrent
// use.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable metric a probe can sample, e.g. queue depth.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Probe periodically samples a metric through a sensor — the Paradyn
// capture mechanism ("instrumentation is inserted dynamically in the
// program during runtime to generate samples of that metric value",
// §3.2). Run drives it from a ticker or simulated scheduler.
type Probe struct {
	Metric uint16
	Read   func() int64
	Sensor *Sensor

	mu       sync.Mutex
	interval time.Duration
	samples  uint64
}

// NewProbe creates a probe that samples read via sensor.
func NewProbe(metric uint16, read func() int64, sensor *Sensor, interval time.Duration) *Probe {
	return &Probe{Metric: metric, Read: read, Sensor: sensor, interval: interval}
}

// Interval returns the current sampling interval.
func (p *Probe) Interval() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.interval
}

// SetInterval changes the sampling interval; the Paradyn IS backs off
// sampling over time ("the rate of sampling of data progressively
// decreases over time", §3.2) via this hook.
func (p *Probe) SetInterval(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.interval = d
}

// SampleOnce reads the metric and emits one sample record.
func (p *Probe) SampleOnce() {
	p.mu.Lock()
	p.samples++
	p.mu.Unlock()
	p.Sensor.Sample(p.Metric, p.Read())
}

// Samples returns the number of samples taken.
func (p *Probe) Samples() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.samples
}

// Run samples until stop is closed, waiting Interval() between
// samples. It is the real-time driver; simulations call SampleOnce on
// their own schedule.
func (p *Probe) Run(stop <-chan struct{}) {
	for {
		d := p.Interval()
		select {
		case <-stop:
			return
		case <-time.After(d):
			p.SampleOnce()
		}
	}
}

package event

import (
	"sync"
	"testing"
	"time"

	"prism/internal/trace"
)

type captureSink struct {
	mu   sync.Mutex
	recs []trace.Record
}

func (c *captureSink) Capture(r trace.Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, r)
}

func (c *captureSink) all() []trace.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]trace.Record(nil), c.recs...)
}

func TestVirtualClock(t *testing.T) {
	var c VirtualClock
	if c.Now() != 0 {
		t.Fatal("fresh clock not at 0")
	}
	c.Set(100)
	if c.Now() != 100 {
		t.Fatal("Set failed")
	}
	if c.Advance(50) != 150 || c.Now() != 150 {
		t.Fatal("Advance failed")
	}
}

func TestRealClockMonotone(t *testing.T) {
	c := NewRealClock()
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("real clock not advancing: %d then %d", a, b)
	}
}

func TestSensorStampsAndSequences(t *testing.T) {
	var clock VirtualClock
	sink := &captureSink{}
	s := NewSensor(3, 7, &clock, sink)
	clock.Set(1000)
	s.User(1, 42)
	clock.Set(2000)
	s.Send(9, 5)
	clock.Set(3000)
	s.Recv(9, 5)
	recs := sink.all()
	if len(recs) != 3 {
		t.Fatalf("captured %d", len(recs))
	}
	for i, r := range recs {
		if r.Node != 3 || r.Process != 7 {
			t.Fatalf("source wrong: %+v", r)
		}
		if r.Logical != uint64(i) {
			t.Fatalf("sequence %d on record %d", r.Logical, i)
		}
	}
	if recs[0].Time != 1000 || recs[1].Time != 2000 || recs[2].Time != 3000 {
		t.Fatalf("timestamps %v", recs)
	}
	if recs[0].Kind != trace.KindUser || recs[0].Payload != 42 {
		t.Fatalf("user record %+v", recs[0])
	}
	if recs[1].Kind != trace.KindSend || recs[1].Payload != 5 || recs[1].Tag != 9 {
		t.Fatalf("send record %+v", recs[1])
	}
	if recs[2].Kind != trace.KindRecv {
		t.Fatalf("recv record %+v", recs[2])
	}
	if s.Captured() != 3 || s.NextSeq() != 3 {
		t.Fatalf("counters: captured %d nextseq %d", s.Captured(), s.NextSeq())
	}
}

func TestSensorDisable(t *testing.T) {
	var clock VirtualClock
	sink := &captureSink{}
	s := NewSensor(0, 0, &clock, sink)
	s.Enable(false)
	if s.Enabled() {
		t.Fatal("still enabled")
	}
	s.User(1, 1)
	s.Mark(2)
	if len(sink.all()) != 0 || s.Captured() != 0 {
		t.Fatal("disabled sensor captured")
	}
	s.Enable(true)
	s.BlockIn(4)
	s.BlockOut(4)
	recs := sink.all()
	if len(recs) != 2 || recs[0].Kind != trace.KindBlockIn || recs[1].Kind != trace.KindBlockOut {
		t.Fatalf("re-enabled capture: %v", recs)
	}
	// Sequence numbers must stay contiguous across the disabled gap.
	if recs[0].Logical != 0 || recs[1].Logical != 1 {
		t.Fatalf("sequence gap: %v", recs)
	}
}

func TestSensorConcurrentEmit(t *testing.T) {
	var clock VirtualClock
	sink := &captureSink{}
	s := NewSensor(0, 0, &clock, sink)
	var wg sync.WaitGroup
	const goroutines = 8
	const each = 500
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.User(1, 0)
			}
		}()
	}
	wg.Wait()
	recs := sink.all()
	if len(recs) != goroutines*each {
		t.Fatalf("captured %d", len(recs))
	}
	// All sequence numbers distinct and within range.
	seen := make([]bool, goroutines*each)
	for _, r := range recs {
		if r.Logical >= uint64(len(seen)) || seen[r.Logical] {
			t.Fatalf("bad sequence %d", r.Logical)
		}
		seen[r.Logical] = true
	}
}

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-2)
	if c.Value() != 3 {
		t.Fatalf("counter %d", c.Value())
	}
	var g Gauge
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("gauge %d", g.Value())
	}
}

func TestProbeSampling(t *testing.T) {
	var clock VirtualClock
	sink := &captureSink{}
	s := NewSensor(1, 0, &clock, sink)
	var cnt Counter
	p := NewProbe(99, cnt.Value, s, time.Millisecond)
	cnt.Add(7)
	p.SampleOnce()
	cnt.Add(3)
	p.SampleOnce()
	recs := sink.all()
	if len(recs) != 2 {
		t.Fatalf("samples %d", len(recs))
	}
	if recs[0].Kind != trace.KindSample || recs[0].Tag != 99 || recs[0].Payload != 7 {
		t.Fatalf("sample 0: %+v", recs[0])
	}
	if recs[1].Payload != 10 {
		t.Fatalf("sample 1: %+v", recs[1])
	}
	if p.Samples() != 2 {
		t.Fatalf("probe count %d", p.Samples())
	}
}

func TestProbeIntervalAdaptation(t *testing.T) {
	p := NewProbe(1, func() int64 { return 0 }, nil, 100*time.Millisecond)
	if p.Interval() != 100*time.Millisecond {
		t.Fatal("initial interval")
	}
	p.SetInterval(time.Second)
	if p.Interval() != time.Second {
		t.Fatal("SetInterval")
	}
}

func TestProbeRunStops(t *testing.T) {
	var clock VirtualClock
	sink := &captureSink{}
	s := NewSensor(0, 0, &clock, sink)
	p := NewProbe(1, func() int64 { return 1 }, s, 200*time.Microsecond)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		p.Run(stop)
		close(done)
	}()
	// Wait for a sample rather than sleeping a fixed interval: on an
	// oversubscribed host (race CI at GOMAXPROCS=4 on one core) the
	// probe goroutine may not get scheduled for several milliseconds.
	deadline := time.Now().Add(5 * time.Second)
	for p.Samples() == 0 {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("probe did not stop")
	}
	if p.Samples() == 0 {
		t.Fatal("probe never sampled")
	}
}

func TestSinkFunc(t *testing.T) {
	var got trace.Record
	SinkFunc(func(r trace.Record) { got = r }).Capture(trace.Record{Tag: 5})
	if got.Tag != 5 {
		t.Fatal("SinkFunc did not forward")
	}
}

package lis

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"prism/internal/trace"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/tp"
)

// Daemon is the Paradyn-style LIS: "a separate process for each node
// of the concurrent system, which handles instrumentation data
// management independent of the application processes" (§2.2.1).
// Application processes deposit samples into bounded per-process pipes
// (Unix pipes in Paradyn, §3.2.2); a daemon goroutine drains the pipes
// and forwards samples to the ISM.
//
// The pipes are flow.Queue stages, so their overflow discipline is
// pluggable. Under the default Block policy, when the daemon cannot
// keep up "the pipes become full and application processes, blocked"
// (§3.2.3); Capture on a full pipe blocks and the blocked time is
// accounted per pipe so the bottleneck effect is observable. The lossy
// and spilling policies (WithOverflow) trade that perturbation for
// data loss or demotion to storage instead.
type Daemon struct {
	node     int32
	conn     tp.Conn
	pipeCap  int
	batch    int
	policy   flow.OverflowPolicy
	spill    func(trace.Record) error
	unpooled bool
	ctr      lisCounters

	mu     sync.Mutex
	pipes  map[int32]*flow.Queue[trace.Record]
	paused bool

	wg   sync.WaitGroup
	once sync.Once
}

// NewDaemon creates a daemon LIS for node forwarding over conn.
// pipeCap is the bounded capacity of each application process's pipe;
// batch is the maximum number of records forwarded per data message.
func NewDaemon(node int32, conn tp.Conn, pipeCap, batch int, opts ...Option) (*Daemon, error) {
	if conn == nil {
		return nil, errors.New("lis: nil connection")
	}
	if pipeCap < 1 {
		return nil, errors.New("lis: pipe capacity must be >= 1")
	}
	if batch < 1 {
		return nil, errors.New("lis: batch must be >= 1")
	}
	var o options
	o.overflow = flow.Block
	for _, opt := range opts {
		opt(&o)
	}
	if !o.overflow.Valid() {
		return nil, fmt.Errorf("lis: invalid overflow policy %v", o.overflow)
	}
	d := &Daemon{
		node:     node,
		conn:     conn,
		pipeCap:  pipeCap,
		batch:    batch,
		policy:   o.overflow,
		unpooled: o.unpooled,
		ctr:      newLISCounters(node, o.registry),
		pipes:    map[int32]*flow.Queue[trace.Record]{},
	}
	if o.spill != nil {
		sp := flow.SpillRecord(o.spill)
		spilled := d.ctr.spilled
		d.spill = func(r trace.Record) error {
			err := sp(r)
			if err == nil {
				spilled.Inc()
			}
			return err
		}
	}
	return d, nil
}

// Metrics returns the registry this LIS reports through.
func (d *Daemon) Metrics() *metrics.Registry { return d.ctr.reg }

// AttachProcess creates (or returns) the pipe for an application
// process and starts its drainer. Call before the process emits.
func (d *Daemon) AttachProcess(process int32) *flow.Queue[trace.Record] {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.pipes[process]; ok {
		return p
	}
	p, err := flow.NewQueue[trace.Record](d.pipeCap, d.policy, d.spill)
	if err != nil {
		// Capacity and policy were validated in NewDaemon.
		panic(err)
	}
	dropped := d.ctr.dropped
	p.OnDrop(func(trace.Record) { dropped.Inc() })
	d.pipes[process] = p
	d.wg.Add(1)
	go d.drain(p)
	return p
}

// Capture implements event.Sink: it deposits the record into its
// process's pipe. Under the Block policy a full pipe blocks the
// capture (the §3.2.3 effect, accounted in BlockedTime); under lossy
// policies the overflow discipline decides which record is lost or
// spilled. Records from processes never attached are dropped and
// counted.
func (d *Daemon) Capture(r trace.Record) {
	d.mu.Lock()
	if d.paused {
		d.mu.Unlock()
		d.ctr.dropped.Inc()
		return
	}
	p, ok := d.pipes[r.Process]
	d.mu.Unlock()
	if !ok {
		d.ctr.dropped.Inc()
		return
	}
	if p.Push(r) {
		d.ctr.captured.Inc()
	}
	// Push failures (overflow or closed pipe) are counted by OnDrop.
}

// drain forwards records from one pipe in pooled batches until the
// pipe is closed and empty.
func (d *Daemon) drain(p *flow.Queue[trace.Record]) {
	defer d.wg.Done()
	buf := d.newBuf()
	flush := func() {
		if len(buf) == 0 {
			return
		}
		n := uint64(len(buf))
		var msg tp.Message
		if d.unpooled {
			msg = tp.DataMessage(d.node, buf)
		} else {
			msg = tp.PooledDataMessage(d.node, buf)
		}
		buf = d.newBuf()
		if d.conn.Send(msg) == nil {
			d.ctr.forwarded.Add(n)
			d.ctr.flushes.Inc()
		}
	}
	for {
		r, ok := p.PopWait()
		if !ok {
			flush()
			d.recycle(buf)
			return
		}
		buf = append(buf, r)
		// Opportunistically batch whatever is already queued.
		for len(buf) < d.batch {
			r, ok := p.TryPop()
			if !ok {
				break
			}
			buf = append(buf, r)
		}
		flush()
	}
}

// newBuf allocates or recycles an empty forwarding batch.
func (d *Daemon) newBuf() []trace.Record {
	if d.unpooled {
		return make([]trace.Record, 0, d.batch)
	}
	return flow.GetBatch(d.batch)
}

// recycle returns a batch to the pool unless pooling is disabled.
func (d *Daemon) recycle(batch flow.Batch) {
	if !d.unpooled {
		flow.PutBatch(batch)
	}
}

// Flush implements LIS. The daemon drains continuously; Flush is a
// no-op provided for interface symmetry.
func (d *Daemon) Flush() error { return nil }

// Pause implements Pauser: while paused, captures are dropped and
// counted (the daemon keeps draining whatever is already piped).
func (d *Daemon) Pause(on bool) {
	d.mu.Lock()
	d.paused = on
	d.mu.Unlock()
}

// Stats implements LIS.
func (d *Daemon) Stats() Stats { return d.ctr.stats() }

// BlockedTime returns the cumulative time application processes spent
// blocked on full pipes, and how many captures blocked — the direct
// observable of the daemon-bottleneck effect. Non-Block policies never
// block, so both values stay zero.
func (d *Daemon) BlockedTime() (time.Duration, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var ns int64
	var n uint64
	for _, p := range d.pipes {
		st := p.Stats()
		ns += st.BlockedNs
		n += st.Blocked
	}
	return time.Duration(ns), n
}

// PipeStats returns the flow statistics of every attached pipe, keyed
// by process id.
func (d *Daemon) PipeStats() map[int32]flow.QueueStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[int32]flow.QueueStats, len(d.pipes))
	for proc, p := range d.pipes {
		out[proc] = p.Stats()
	}
	return out
}

// Close stops the drainers after they empty their pipes.
func (d *Daemon) Close() error {
	d.once.Do(func() {
		d.mu.Lock()
		pipes := make([]*flow.Queue[trace.Record], 0, len(d.pipes))
		for _, p := range d.pipes {
			pipes = append(pipes, p)
		}
		d.mu.Unlock()
		for _, p := range pipes {
			p.Close()
		}
	})
	d.wg.Wait()
	return nil
}

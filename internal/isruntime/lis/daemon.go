package lis

import (
	"errors"
	"sync"
	"time"

	"prism/internal/trace"

	"prism/internal/isruntime/tp"
)

// Daemon is the Paradyn-style LIS: "a separate process for each node
// of the concurrent system, which handles instrumentation data
// management independent of the application processes" (§2.2.1).
// Application processes deposit samples into bounded per-process pipes
// (Unix pipes in Paradyn, §3.2.2); a daemon goroutine drains the pipes
// and forwards samples to the ISM.
//
// When the daemon cannot keep up "the pipes become full and
// application processes, blocked" (§3.2.3); Capture on a full pipe
// blocks and the blocked time is accounted in Stats-adjacent counters
// so the bottleneck effect is observable.
type Daemon struct {
	node    int32
	conn    tp.Conn
	pipeCap int
	batch   int

	mu       sync.Mutex
	pipes    map[int32]chan trace.Record
	stats    Stats
	paused   bool
	blocked  time.Duration // cumulative producer blocked time
	blockers uint64        // captures that had to block

	wg      sync.WaitGroup
	stopped chan struct{}
	once    sync.Once
}

// NewDaemon creates a daemon LIS for node forwarding over conn.
// pipeCap is the bounded capacity of each application process's pipe;
// batch is the maximum number of records forwarded per data message.
func NewDaemon(node int32, conn tp.Conn, pipeCap, batch int) (*Daemon, error) {
	if conn == nil {
		return nil, errors.New("lis: nil connection")
	}
	if pipeCap < 1 {
		return nil, errors.New("lis: pipe capacity must be >= 1")
	}
	if batch < 1 {
		return nil, errors.New("lis: batch must be >= 1")
	}
	return &Daemon{
		node:    node,
		conn:    conn,
		pipeCap: pipeCap,
		batch:   batch,
		pipes:   map[int32]chan trace.Record{},
		stopped: make(chan struct{}),
	}, nil
}

// AttachProcess creates (or returns) the pipe for an application
// process and starts its drainer. Call before the process emits.
func (d *Daemon) AttachProcess(process int32) chan<- trace.Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p, ok := d.pipes[process]; ok {
		return p
	}
	p := make(chan trace.Record, d.pipeCap)
	d.pipes[process] = p
	d.wg.Add(1)
	go d.drain(p)
	return p
}

// Capture implements event.Sink: it deposits the record into its
// process's pipe, blocking if the pipe is full. Records from processes
// never attached are dropped and counted.
func (d *Daemon) Capture(r trace.Record) {
	d.mu.Lock()
	if d.paused {
		d.stats.Dropped++
		d.mu.Unlock()
		return
	}
	p, ok := d.pipes[r.Process]
	d.mu.Unlock()
	if !ok {
		d.mu.Lock()
		d.stats.Dropped++
		d.mu.Unlock()
		return
	}
	select {
	case p <- r:
		d.mu.Lock()
		d.stats.Captured++
		d.mu.Unlock()
		return
	default:
	}
	// Pipe full: block, and account the stall (the §3.2.3 effect).
	start := time.Now()
	select {
	case p <- r:
		d.mu.Lock()
		d.stats.Captured++
		d.blocked += time.Since(start)
		d.blockers++
		d.mu.Unlock()
	case <-d.stopped:
		d.mu.Lock()
		d.stats.Dropped++
		d.mu.Unlock()
	}
}

// drain forwards records from one pipe in batches.
func (d *Daemon) drain(p <-chan trace.Record) {
	defer d.wg.Done()
	buf := make([]trace.Record, 0, d.batch)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		batch := make([]trace.Record, len(buf))
		copy(batch, buf)
		buf = buf[:0]
		if d.conn.Send(tp.DataMessage(d.node, batch)) == nil {
			d.mu.Lock()
			d.stats.Forwarded += uint64(len(batch))
			d.stats.Flushes++
			d.mu.Unlock()
		}
	}
	for {
		select {
		case r := <-p:
			buf = append(buf, r)
			// Opportunistically batch whatever is already queued.
			for len(buf) < d.batch {
				select {
				case r := <-p:
					buf = append(buf, r)
				default:
					goto send
				}
			}
		send:
			flush()
		case <-d.stopped:
			// Final drain of anything left in the pipe.
			for {
				select {
				case r := <-p:
					buf = append(buf, r)
					if len(buf) == d.batch {
						flush()
					}
				default:
					flush()
					return
				}
			}
		}
	}
}

// Flush implements LIS. The daemon drains continuously; Flush is a
// no-op provided for interface symmetry.
func (d *Daemon) Flush() error { return nil }

// Pause implements Pauser: while paused, captures are dropped and
// counted (the daemon keeps draining whatever is already piped).
func (d *Daemon) Pause(on bool) {
	d.mu.Lock()
	d.paused = on
	d.mu.Unlock()
}

// Stats implements LIS.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// BlockedTime returns the cumulative time application processes spent
// blocked on full pipes, and how many captures blocked — the direct
// observable of the daemon-bottleneck effect.
func (d *Daemon) BlockedTime() (time.Duration, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.blocked, d.blockers
}

// Close stops the drainers after they empty their pipes.
func (d *Daemon) Close() error {
	d.once.Do(func() { close(d.stopped) })
	d.wg.Wait()
	return nil
}

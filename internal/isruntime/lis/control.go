package lis

import (
	"errors"
	"io"
	"net"

	"prism/internal/isruntime/tp"
)

// Control-signal handling: "control messages may need to be passed
// between the ISM and concurrent application processes (directly or
// via the LIS) to control program execution as dictated by debugging
// and steering tools in the environment" (§2.2.3). The ISM broadcasts
// tp.Control messages down the same connections the LIS sends data up;
// ControlLoop is the LIS-side dispatcher.

// Pauser is implemented by LISes that can suspend capture (CtlStop /
// CtlStart).
type Pauser interface {
	Pause(on bool)
}

// ControlLoop reads messages from conn and applies control signals to
// server until the connection closes or a shutdown arrives:
//
//	CtlFlush    -> server.Flush(), then acknowledge with CtlFlushDone
//	CtlStop     -> server.Pause(true), if supported
//	CtlStart    -> server.Pause(false), if supported
//	CtlShutdown -> server.Close(), loop returns nil
//
// Data messages arriving on the connection (none are expected on the
// LIS side) are ignored. The returned error is nil on orderly shutdown
// or EOF, and the transport error otherwise.
func ControlLoop(conn tp.Conn, server LIS) error {
	for {
		msg, err := conn.Recv()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			// Control traffic is sporadic: a connection-level read
			// deadline firing on an idle wait is not a failure. The
			// typed check catches classified stream errors, the
			// net.Error one raw transports without classification.
			var ne net.Error
			if errors.Is(err, tp.ErrTimeout) || (errors.As(err, &ne) && ne.Timeout()) {
				continue
			}
			return err
		}
		if msg.Type != tp.MsgControl {
			tp.Recycle(&msg) // pooled data payloads go back to the pool
			continue
		}
		switch msg.Control {
		case tp.CtlFlush:
			if err := server.Flush(); err != nil {
				return err
			}
			_ = conn.Send(tp.ControlMessage(msg.Node, tp.CtlFlushDone, msg.Arg))
		case tp.CtlStop:
			if p, ok := server.(Pauser); ok {
				p.Pause(true)
			}
		case tp.CtlStart:
			if p, ok := server.(Pauser); ok {
				p.Pause(false)
			}
		case tp.CtlShutdown:
			return server.Close()
		}
	}
}

// Pause implements Pauser for the buffered LIS: while paused, captures
// are dropped and counted, the dynamic-instrumentation "off" state.
func (b *Buffered) Pause(on bool) {
	b.mu.Lock()
	b.stopped = on
	b.mu.Unlock()
}

// Pause implements Pauser for the forwarding LIS.
func (f *Forwarding) Pause(on bool) {
	f.mu.Lock()
	f.stopped = on
	f.mu.Unlock()
}

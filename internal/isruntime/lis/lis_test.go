package lis

import (
	"sync"
	"testing"
	"time"

	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// collectConn is a tp.Conn that records everything sent on it.
type collectConn struct {
	mu   sync.Mutex
	msgs []tp.Message
}

func (c *collectConn) Send(m tp.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.msgs = append(c.msgs, m)
	return nil
}
func (c *collectConn) Recv() (tp.Message, error) { select {} }
func (c *collectConn) Close() error              { return nil }

func (c *collectConn) messages() []tp.Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]tp.Message(nil), c.msgs...)
}

func (c *collectConn) records() int {
	n := 0
	for _, m := range c.messages() {
		n += len(m.Records)
	}
	return n
}

func rec(i int) trace.Record {
	return trace.Record{Node: 0, Kind: trace.KindUser, Tag: uint16(i)}
}

func TestBufferedValidation(t *testing.T) {
	if _, err := NewBuffered(0, 0, &collectConn{}); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewBuffered(0, 4, nil); err == nil {
		t.Fatal("nil conn accepted")
	}
}

func TestBufferedFOFFlushOnFill(t *testing.T) {
	conn := &collectConn{}
	b, err := NewBuffered(2, 3, conn)
	if err != nil {
		t.Fatal(err)
	}
	if b.Node() != 2 || b.Capacity() != 3 {
		t.Fatal("accessors")
	}
	b.Capture(rec(0))
	b.Capture(rec(1))
	if len(conn.messages()) != 0 {
		t.Fatal("flushed before full")
	}
	if b.Len() != 2 {
		t.Fatalf("len %d", b.Len())
	}
	b.Capture(rec(2)) // fills -> FOF flush
	msgs := conn.messages()
	if len(msgs) != 1 || len(msgs[0].Records) != 3 || msgs[0].Node != 2 {
		t.Fatalf("flush msg %+v", msgs)
	}
	if b.Len() != 0 {
		t.Fatalf("buffer not emptied: %d", b.Len())
	}
	st := b.Stats()
	if st.Captured != 3 || st.Forwarded != 3 || st.Flushes != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBufferedManualFlushAndClose(t *testing.T) {
	conn := &collectConn{}
	b, _ := NewBuffered(0, 10, conn)
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Flushes != 0 {
		t.Fatal("empty flush counted")
	}
	b.Capture(rec(1))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if conn.records() != 1 {
		t.Fatal("close did not flush")
	}
	b.Capture(rec(2)) // after close: dropped
	if st := b.Stats(); st.Dropped != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBufferedPreservesOrder(t *testing.T) {
	conn := &collectConn{}
	b, _ := NewBuffered(0, 4, conn)
	for i := 0; i < 8; i++ {
		b.Capture(rec(i))
	}
	msgs := conn.messages()
	if len(msgs) != 2 {
		t.Fatalf("flushes %d", len(msgs))
	}
	i := 0
	for _, m := range msgs {
		for _, r := range m.Records {
			if int(r.Tag) != i {
				t.Fatalf("order broken at %d: tag %d", i, r.Tag)
			}
			i++
		}
	}
}

func TestGangFAOFFlushesAll(t *testing.T) {
	connA, connB := &collectConn{}, &collectConn{}
	a, _ := NewBuffered(0, 3, connA)
	b, _ := NewBuffered(1, 3, connB)
	g := NewGang(a, b)

	// Partially fill b, then fill a: both must flush.
	b.Capture(rec(0))
	a.Capture(rec(0))
	a.Capture(rec(1))
	a.Capture(rec(2)) // fills a -> gang flush
	if got := connA.records(); got != 3 {
		t.Fatalf("a flushed %d records", got)
	}
	if got := connB.records(); got != 1 {
		t.Fatalf("b flushed %d records (gang flush missed member)", got)
	}
	if g.GangFlushes() != 1 {
		t.Fatalf("gang flushes %d", g.GangFlushes())
	}
	if a.Len() != 0 || b.Len() != 0 {
		t.Fatal("buffers not emptied")
	}
}

func TestGangFlushFrequencyLowerThanFOF(t *testing.T) {
	// With identical arrivals round-robin across P nodes, FAOF must
	// flush fewer times in total than FOF (the §3.1.3 conclusion).
	const P = 4
	const capacity = 8
	const events = 800

	// FOF.
	fofConns := make([]*collectConn, P)
	fof := make([]*Buffered, P)
	for i := range fof {
		fofConns[i] = &collectConn{}
		fof[i], _ = NewBuffered(int32(i), capacity, fofConns[i])
	}
	for e := 0; e < events; e++ {
		fof[e%P].Capture(rec(e))
	}
	var fofFlushes uint64
	for _, l := range fof {
		fofFlushes += l.Stats().Flushes
	}

	// FAOF.
	faofConns := make([]*collectConn, P)
	faof := make([]*Buffered, P)
	for i := range faof {
		faofConns[i] = &collectConn{}
		faof[i], _ = NewBuffered(int32(i), capacity, faofConns[i])
	}
	g := NewGang(faof...)
	for e := 0; e < events; e++ {
		faof[e%P].Capture(rec(e))
	}
	if g.GangFlushes() >= fofFlushes {
		t.Fatalf("gang sweeps %d not below FOF flushes %d", g.GangFlushes(), fofFlushes)
	}
	// No data lost under either policy (modulo tail still buffered).
	var faofRecords int
	for _, c := range faofConns {
		faofRecords += c.records()
	}
	var tail int
	for _, l := range faof {
		tail += l.Len()
	}
	if faofRecords+tail != events {
		t.Fatalf("FAOF lost records: %d forwarded + %d buffered != %d", faofRecords, tail, events)
	}
}

func TestBufferedConcurrentCapture(t *testing.T) {
	conn := &collectConn{}
	b, _ := NewBuffered(0, 16, conn)
	var wg sync.WaitGroup
	const writers = 8
	const each = 400
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Capture(rec(i))
			}
		}()
	}
	wg.Wait()
	_ = b.Flush()
	if got := conn.records(); got != writers*each {
		t.Fatalf("forwarded %d of %d", got, writers*each)
	}
}

func TestForwardingLIS(t *testing.T) {
	conn := &collectConn{}
	f, err := NewForwarding(7, conn)
	if err != nil {
		t.Fatal(err)
	}
	f.Capture(rec(0))
	f.Capture(rec(1))
	msgs := conn.messages()
	if len(msgs) != 2 {
		t.Fatalf("forwarding batched: %d msgs", len(msgs))
	}
	for _, m := range msgs {
		if len(m.Records) != 1 || m.Node != 7 {
			t.Fatalf("msg %+v", m)
		}
	}
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Captured != 2 || st.Forwarded != 2 {
		t.Fatalf("stats %+v", st)
	}
	_ = f.Close()
	f.Capture(rec(2))
	if st := f.Stats(); st.Dropped != 1 {
		t.Fatalf("closed forwarding accepted data: %+v", st)
	}
	if _, err := NewForwarding(0, nil); err == nil {
		t.Fatal("nil conn accepted")
	}
}

func TestDaemonValidation(t *testing.T) {
	if _, err := NewDaemon(0, nil, 4, 4); err == nil {
		t.Fatal("nil conn")
	}
	if _, err := NewDaemon(0, &collectConn{}, 0, 4); err == nil {
		t.Fatal("pipe cap 0")
	}
	if _, err := NewDaemon(0, &collectConn{}, 4, 0); err == nil {
		t.Fatal("batch 0")
	}
}

func TestDaemonForwardsSamples(t *testing.T) {
	conn := &collectConn{}
	d, err := NewDaemon(1, conn, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	d.AttachProcess(0)
	d.AttachProcess(1)
	const n = 200
	for i := 0; i < n; i++ {
		d.Capture(trace.Record{Process: int32(i % 2), Kind: trace.KindSample, Tag: 1, Payload: int64(i)})
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if got := conn.records(); got != n {
		t.Fatalf("forwarded %d of %d", got, n)
	}
	st := d.Stats()
	if st.Captured != n || st.Forwarded != n {
		t.Fatalf("stats %+v", st)
	}
}

func TestDaemonDropsUnattachedProcess(t *testing.T) {
	conn := &collectConn{}
	d, _ := NewDaemon(0, conn, 4, 4)
	d.Capture(trace.Record{Process: 42})
	if st := d.Stats(); st.Dropped != 1 {
		t.Fatalf("stats %+v", st)
	}
	_ = d.Close()
}

func TestDaemonAttachIdempotent(t *testing.T) {
	conn := &collectConn{}
	d, _ := NewDaemon(0, conn, 4, 4)
	p1 := d.AttachProcess(3)
	p2 := d.AttachProcess(3)
	if p1 != p2 {
		t.Fatal("re-attach created a second pipe")
	}
	_ = d.Close()
}

// slowConn delays each send, forcing the daemon to fall behind so
// producer pipes fill and Capture blocks — the §3.2.3 effect.
type slowConn struct {
	collectConn
	delay time.Duration
}

func (c *slowConn) Send(m tp.Message) error {
	time.Sleep(c.delay)
	return c.collectConn.Send(m)
}

func TestDaemonBlockingUnderLoad(t *testing.T) {
	conn := &slowConn{delay: 2 * time.Millisecond}
	d, _ := NewDaemon(0, conn, 2, 1) // tiny pipes, no batching
	d.AttachProcess(0)
	const n = 30
	start := time.Now()
	for i := 0; i < n; i++ {
		d.Capture(trace.Record{Process: 0, Kind: trace.KindSample})
	}
	elapsed := time.Since(start)
	_ = d.Close()
	blocked, blockers := d.BlockedTime()
	if blockers == 0 {
		t.Fatal("no captures blocked despite slow daemon")
	}
	if blocked <= 0 || blocked > elapsed+time.Second {
		t.Fatalf("blocked time implausible: %v of %v", blocked, elapsed)
	}
	if got := conn.records(); got != n {
		t.Fatalf("daemon lost records: %d of %d", got, n)
	}
}

func TestDaemonPause(t *testing.T) {
	conn := &collectConn{}
	d, _ := NewDaemon(0, conn, 8, 4)
	d.AttachProcess(0)
	d.Pause(true)
	d.Capture(trace.Record{Process: 0, Kind: trace.KindSample})
	if st := d.Stats(); st.Dropped != 1 || st.Captured != 0 {
		t.Fatalf("paused stats %+v", st)
	}
	d.Pause(false)
	d.Capture(trace.Record{Process: 0, Kind: trace.KindSample})
	_ = d.Close()
	if st := d.Stats(); st.Captured != 1 || st.Forwarded != 1 {
		t.Fatalf("resumed stats %+v", st)
	}
}

func TestPolicyString(t *testing.T) {
	if FOF.String() != "FOF" || FAOF.String() != "FAOF" {
		t.Fatal("policy names")
	}
}

package lis

import (
	"testing"
	"time"

	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

func TestControlLoopFlushAndAck(t *testing.T) {
	lisSide, ismSide := tp.Pipe(16)
	b, err := NewBuffered(0, 100, lisSide)
	if err != nil {
		t.Fatal(err)
	}
	b.Capture(rec(1))
	b.Capture(rec(2))

	done := make(chan error, 1)
	go func() { done <- ControlLoop(lisSide, b) }()

	if err := ismSide.Send(tp.ControlMessage(0, tp.CtlFlush, 7)); err != nil {
		t.Fatal(err)
	}
	// Expect the data message then the flush-done ack.
	var sawData, sawAck bool
	for i := 0; i < 2; i++ {
		msg, err := ismSide.Recv()
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case msg.Type == tp.MsgData:
			sawData = true
			if len(msg.Records) != 2 {
				t.Fatalf("flushed %d records", len(msg.Records))
			}
		case msg.Control == tp.CtlFlushDone:
			sawAck = true
			if msg.Arg != 7 {
				t.Fatalf("ack arg %d", msg.Arg)
			}
		}
	}
	if !sawData || !sawAck {
		t.Fatalf("data %v ack %v", sawData, sawAck)
	}

	// Shutdown terminates the loop cleanly.
	if err := ismSide.Send(tp.ControlMessage(0, tp.CtlShutdown, 0)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("control loop: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("control loop did not exit")
	}
}

func TestControlLoopPauseResume(t *testing.T) {
	lisSide, ismSide := tp.Pipe(16)
	b, _ := NewBuffered(0, 100, lisSide)
	done := make(chan error, 1)
	go func() { done <- ControlLoop(lisSide, b) }()

	send := func(c tp.Control) {
		t.Helper()
		if err := ismSide.Send(tp.ControlMessage(0, c, 0)); err != nil {
			t.Fatal(err)
		}
	}
	send(tp.CtlStop)
	waitFor(t, func() bool {
		b.Capture(rec(0))
		return b.Stats().Dropped > 0
	})
	send(tp.CtlStart)
	waitFor(t, func() bool {
		before := b.Stats().Captured
		b.Capture(rec(1))
		return b.Stats().Captured > before
	})
	send(tp.CtlShutdown)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatal("condition never met")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestControlLoopEOF(t *testing.T) {
	lisSide, ismSide := tp.Pipe(4)
	b, _ := NewBuffered(0, 10, lisSide)
	done := make(chan error, 1)
	go func() { done <- ControlLoop(lisSide, b) }()
	ismSide.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("EOF should be clean: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("loop did not exit on close")
	}
}

func TestControlLoopIgnoresData(t *testing.T) {
	lisSide, ismSide := tp.Pipe(4)
	b, _ := NewBuffered(0, 10, lisSide)
	done := make(chan error, 1)
	go func() { done <- ControlLoop(lisSide, b) }()
	_ = ismSide.Send(tp.DataMessage(0, []trace.Record{rec(0)}))
	_ = ismSide.Send(tp.ControlMessage(0, tp.CtlShutdown, 0))
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestForwardingPause(t *testing.T) {
	conn := &collectConn{}
	f, _ := NewForwarding(0, conn)
	f.Pause(true)
	f.Capture(rec(0))
	if st := f.Stats(); st.Dropped != 1 || st.Captured != 0 {
		t.Fatalf("paused stats %+v", st)
	}
	f.Pause(false)
	f.Capture(rec(1))
	if st := f.Stats(); st.Captured != 1 {
		t.Fatalf("resumed stats %+v", st)
	}
}

// TestNetworkedGangFlush exercises the FAOF gang over the transfer
// protocol end-to-end: the ISM-side broadcasts CtlFlush and every
// node's control loop flushes and acknowledges — the Figure 2 control
// path in the direction the paper draws it.
func TestNetworkedGangFlush(t *testing.T) {
	const nodes = 3
	lisSides := make([]tp.Conn, nodes)
	ismSides := make([]tp.Conn, nodes)
	buffers := make([]*Buffered, nodes)
	for i := 0; i < nodes; i++ {
		lisSides[i], ismSides[i] = tp.Pipe(16)
		b, err := NewBuffered(int32(i), 100, lisSides[i])
		if err != nil {
			t.Fatal(err)
		}
		buffers[i] = b
		go func(c tp.Conn, b *Buffered) { _ = ControlLoop(c, b) }(lisSides[i], b)
		// Partially fill each buffer.
		for e := 0; e <= i; e++ {
			b.Capture(rec(e))
		}
	}
	// Broadcast flush.
	for _, c := range ismSides {
		if err := c.Send(tp.ControlMessage(-1, tp.CtlFlush, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Collect per connection: one data message (i+1 records) + ack.
	for i, c := range ismSides {
		gotRecords, gotAck := 0, false
		for n := 0; n < 2; n++ {
			msg, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if msg.Type == tp.MsgData {
				gotRecords += len(msg.Records)
			} else if msg.Control == tp.CtlFlushDone {
				gotAck = true
			}
		}
		if gotRecords != i+1 || !gotAck {
			t.Fatalf("node %d: records %d ack %v", i, gotRecords, gotAck)
		}
	}
	for i := range ismSides {
		_ = ismSides[i].Send(tp.ControlMessage(0, tp.CtlShutdown, 0))
	}
}

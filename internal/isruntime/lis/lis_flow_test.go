package lis

import (
	"sync"
	"testing"
	"time"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/storage"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

func TestPolicyStringUnknown(t *testing.T) {
	if got := Policy(7).String(); got != "policy(7)" {
		t.Fatalf("unknown policy renders %q", got)
	}
	if got := Policy(-1).String(); got != "policy(-1)" {
		t.Fatalf("negative policy renders %q", got)
	}
}

// TestBufferedConcurrentCaptureSlowConn stresses Capture from many
// goroutines while a slow connection stalls every flush — the flush
// path and the capture path race over the pooled buffers. Run with
// -race; conservation must hold.
func TestBufferedConcurrentCaptureSlowConn(t *testing.T) {
	conn := &slowConn{delay: 500 * time.Microsecond}
	b, err := NewBuffered(0, 8, conn)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const each = 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Capture(rec(i))
			}
		}()
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := conn.records(); got != writers*each {
		t.Fatalf("forwarded %d of %d", got, writers*each)
	}
	st := b.Stats()
	if st.Captured != writers*each || st.Forwarded != writers*each || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// blockableConn blocks every Send until released — a wedged transport.
type blockableConn struct {
	collectConn
	gate chan struct{}
}

func (c *blockableConn) Send(m tp.Message) error {
	<-c.gate
	return c.collectConn.Send(m)
}

// TestAsyncFlushPolicies exercises every overflow policy on the
// buffered LIS's async pending stage while the transport is wedged,
// then releases the transport and checks the policy's accounting.
func TestAsyncFlushPolicies(t *testing.T) {
	const capacity = 4
	const pending = 2
	fill := func(b *Buffered, batches int) {
		for i := 0; i < batches*capacity; i++ {
			b.Capture(rec(i))
		}
	}

	t.Run("drop-newest", func(t *testing.T) {
		conn := &blockableConn{gate: make(chan struct{})}
		b, err := NewBuffered(0, capacity, conn,
			WithAsyncFlush(pending, flow.DropNewest, nil))
		if err != nil {
			t.Fatal(err)
		}
		fill(b, 5) // sender takes 1, pending holds 2, 2 batches dropped
		time.Sleep(5 * time.Millisecond)
		close(conn.gate)
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		st := b.Stats()
		if st.Dropped == 0 {
			t.Fatalf("no drops under wedged conn: %+v", st)
		}
		if st.Forwarded+st.Dropped != st.Captured {
			t.Fatalf("records unaccounted: %+v", st)
		}
	})

	t.Run("drop-oldest", func(t *testing.T) {
		conn := &blockableConn{gate: make(chan struct{})}
		b, err := NewBuffered(0, capacity, conn,
			WithAsyncFlush(pending, flow.DropOldest, nil))
		if err != nil {
			t.Fatal(err)
		}
		fill(b, 5)
		time.Sleep(5 * time.Millisecond)
		close(conn.gate)
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		st := b.Stats()
		if st.Dropped == 0 || st.Forwarded+st.Dropped != st.Captured {
			t.Fatalf("stats %+v", st)
		}
	})

	t.Run("spill-to-storage", func(t *testing.T) {
		hier, err := storage.New(storage.Ring, 1024, nil)
		if err != nil {
			t.Fatal(err)
		}
		conn := &blockableConn{gate: make(chan struct{})}
		b, err := NewBuffered(0, capacity, conn,
			WithAsyncFlush(pending, flow.SpillToStorage, hier))
		if err != nil {
			t.Fatal(err)
		}
		fill(b, 5)
		time.Sleep(5 * time.Millisecond)
		close(conn.gate)
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		st := b.Stats()
		if st.Spilled == 0 {
			t.Fatalf("nothing spilled: %+v", st)
		}
		if got := hier.Stats().Appended; got != st.Spilled {
			t.Fatalf("hierarchy holds %d, LIS spilled %d", got, st.Spilled)
		}
		if st.Forwarded+st.Dropped+st.Spilled != st.Captured {
			t.Fatalf("records unaccounted: %+v", st)
		}
	})

	t.Run("block", func(t *testing.T) {
		conn := &blockableConn{gate: make(chan struct{})}
		b, err := NewBuffered(0, capacity, conn,
			WithAsyncFlush(pending, flow.Block, nil))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			fill(b, 5) // must stall once the pending stage fills
			close(done)
		}()
		select {
		case <-done:
			t.Fatal("capture never blocked on wedged transport")
		case <-time.After(10 * time.Millisecond):
		}
		close(conn.gate)
		<-done
		if err := b.Close(); err != nil {
			t.Fatal(err)
		}
		st := b.Stats()
		if st.Dropped != 0 || st.Forwarded != st.Captured {
			t.Fatalf("Block lost records: %+v", st)
		}
	})
}

func TestAsyncFlushValidation(t *testing.T) {
	if _, err := NewBuffered(0, 4, &collectConn{}, WithAsyncFlush(0, flow.Block, nil)); err == nil {
		t.Fatal("pending 0 accepted")
	}
	if _, err := NewBuffered(0, 4, &collectConn{}, WithAsyncFlush(2, flow.OverflowPolicy(9), nil)); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if _, err := NewDaemon(0, &collectConn{}, 4, 4, WithOverflow(flow.OverflowPolicy(9), nil)); err == nil {
		t.Fatal("daemon invalid policy accepted")
	}
}

// TestDaemonOverflowPolicies runs the daemon's pipes under each lossy
// policy with a wedged transport: Capture must never block, and the
// losses must be accounted.
func TestDaemonOverflowPolicies(t *testing.T) {
	for _, policy := range []flow.OverflowPolicy{flow.DropNewest, flow.DropOldest} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			conn := &blockableConn{gate: make(chan struct{})}
			d, err := NewDaemon(0, conn, 2, 2, WithOverflow(policy, nil))
			if err != nil {
				t.Fatal(err)
			}
			d.AttachProcess(0)
			const n = 50
			captureDone := make(chan struct{})
			go func() {
				for i := 0; i < n; i++ {
					d.Capture(trace.Record{Process: 0, Kind: trace.KindSample})
				}
				close(captureDone)
			}()
			select {
			case <-captureDone:
			case <-time.After(2 * time.Second):
				t.Fatalf("%v capture blocked", policy)
			}
			close(conn.gate)
			_ = d.Close()
			st := d.Stats()
			if st.Dropped == 0 {
				t.Fatalf("no drops under wedged conn: %+v", st)
			}
			// Both lossy policies conserve records: every capture is
			// either forwarded or dropped (as the arrival itself under
			// DropNewest, as a displaced victim under DropOldest).
			if st.Forwarded+st.Dropped != n {
				t.Fatalf("records unaccounted: %+v", st)
			}
			if blocked, blockers := d.BlockedTime(); blocked != 0 || blockers != 0 {
				t.Fatalf("lossy policy blocked: %v/%d", blocked, blockers)
			}
		})
	}
}

// TestDaemonSpillToStorage wires a daemon pipe to a storage hierarchy:
// displaced records are demoted, not lost.
func TestDaemonSpillToStorage(t *testing.T) {
	hier, err := storage.New(storage.Ring, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	conn := &blockableConn{gate: make(chan struct{})}
	d, err := NewDaemon(0, conn, 2, 2, WithOverflow(flow.SpillToStorage, hier))
	if err != nil {
		t.Fatal(err)
	}
	d.AttachProcess(0)
	const n = 50
	for i := 0; i < n; i++ {
		d.Capture(trace.Record{Process: 0, Kind: trace.KindSample, Tag: uint16(i)})
	}
	close(conn.gate)
	_ = d.Close()
	st := d.Stats()
	if st.Spilled == 0 {
		t.Fatalf("nothing spilled: %+v", st)
	}
	if got := hier.Stats().Appended; got != st.Spilled {
		t.Fatalf("hierarchy holds %d, daemon spilled %d", got, st.Spilled)
	}
	if st.Forwarded+st.Spilled+st.Dropped != n {
		t.Fatalf("records unaccounted: %+v", st)
	}
}

// TestSharedRegistryAcrossLISes checks the metrics tentpole end to
// end at this layer: several LISes report into one registry under
// per-node scopes, and Stats() views agree with the snapshot.
func TestSharedRegistryAcrossLISes(t *testing.T) {
	reg := metrics.NewRegistry()
	connA, connB := &collectConn{}, &collectConn{}
	a, _ := NewBuffered(0, 4, connA, WithMetrics(reg))
	f, _ := NewForwarding(1, connB, WithMetrics(reg))
	for i := 0; i < 6; i++ {
		a.Capture(rec(i))
		f.Capture(rec(i))
	}
	_ = a.Close()
	_ = f.Close()
	snap := reg.Snapshot()
	if got := snap.Value("lis.node0.captured"); got != 6 {
		t.Fatalf("node0 captured %g", got)
	}
	if got := snap.Value("lis.node1.forwarded"); got != 6 {
		t.Fatalf("node1 forwarded %g", got)
	}
	if a.Metrics() != reg || f.Metrics() != reg {
		t.Fatal("Metrics() accessor")
	}
	if a.Stats().Captured != 6 || f.Stats().Forwarded != 6 {
		t.Fatal("Stats view disagrees with registry")
	}
}

// TestBufferedPooledFlushReuse checks that with a quiet conn the flush
// path recycles batches: after a flush's records are recycled by the
// consumer, the next flush reuses the same backing array.
func TestBufferedPooledFlushReuse(t *testing.T) {
	recycleConn := recycleConnT{}
	b, _ := NewBuffered(0, 4, &recycleConn)
	for i := 0; i < 16; i++ {
		b.Capture(rec(i))
	}
	_ = b.Close()
	if recycleConn.n != 16 {
		t.Fatalf("consumed %d", recycleConn.n)
	}
}

// recycleConnT consumes messages and recycles pooled batches, like the
// ISM does.
type recycleConnT struct {
	n int
}

func (c *recycleConnT) Send(m tp.Message) error {
	c.n += len(m.Records)
	tp.Recycle(&m)
	return nil
}
func (c *recycleConnT) Recv() (tp.Message, error) { select {} }
func (c *recycleConnT) Close() error              { return nil }

// Package lis implements Local Instrumentation Servers: "the LIS
// captures instrumentation data of interest from the concurrent
// application processes and forwards the data to other IS modules ...
// Typically, the LIS uses local buffers and a management policy to
// accomplish data capturing and forwarding functions" (§2.2.1).
//
// Three LIS families cover the paper's case studies:
//
//   - Buffered: PICL-style instrumentation-library LIS with local
//     trace buffers and the FOF / FAOF flush policies of §3.1;
//   - Daemon: Paradyn-style per-node daemon that drains bounded pipes
//     filled by application processes (§3.2);
//   - Forwarding: Vista-style bufferless event forwarding, "only one
//     system call per event" (§3.3).
package lis

import (
	"errors"
	"sync"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// Policy names a buffered-LIS flush policy.
type Policy int

// Flush policies for the Buffered LIS.
const (
	// FOF flushes one buffer when it fills (§3.1: "Flush One buffer
	// when it Fills").
	FOF Policy = iota
	// FAOF flushes all buffers when one fills ("Flush All the
	// buffers when One Fills"); requires a Gang coordinator.
	FAOF
)

// String returns the policy mnemonic.
func (p Policy) String() string {
	if p == FOF {
		return "FOF"
	}
	return "FAOF"
}

// Stats summarizes a LIS's activity.
type Stats struct {
	Captured  uint64 // records accepted from sensors
	Forwarded uint64 // records sent to the ISM
	Flushes   uint64 // flush operations performed
	Dropped   uint64 // records dropped (capture disabled or overflow policy)
}

// LIS is the common surface of all local instrumentation servers.
type LIS interface {
	event.Sink
	// Flush forces any buffered data to the ISM.
	Flush() error
	// Stats returns a snapshot of activity counters.
	Stats() Stats
	// Close flushes and releases the LIS.
	Close() error
}

// Buffered is the PICL-style LIS: a fixed-capacity local record buffer
// flushed to the ISM as one data message. The zero value is not
// usable; construct with NewBuffered.
type Buffered struct {
	node     int32
	capacity int
	conn     tp.Conn
	onFull   func(*Buffered) // policy hook; nil means flush self (FOF)

	mu      sync.Mutex
	buf     []trace.Record
	stats   Stats
	stopped bool
}

// NewBuffered creates a buffered LIS for node with the given local
// buffer capacity (the paper's l), forwarding over conn. The returned
// LIS implements the FOF policy; attach it to a Gang for FAOF.
func NewBuffered(node int32, capacity int, conn tp.Conn) (*Buffered, error) {
	if capacity < 1 {
		return nil, errors.New("lis: buffer capacity must be >= 1")
	}
	if conn == nil {
		return nil, errors.New("lis: nil connection")
	}
	return &Buffered{
		node:     node,
		capacity: capacity,
		conn:     conn,
		buf:      make([]trace.Record, 0, capacity),
	}, nil
}

// Node returns the node id this LIS serves.
func (b *Buffered) Node() int32 { return b.node }

// Capacity returns the local buffer capacity l.
func (b *Buffered) Capacity() int { return b.capacity }

// Capture implements event.Sink. When the buffer reaches capacity the
// policy hook runs: plain FOF flushes this buffer; under a Gang the
// coordinator flushes every member (FAOF).
func (b *Buffered) Capture(r trace.Record) {
	b.mu.Lock()
	if b.stopped {
		b.stats.Dropped++
		b.mu.Unlock()
		return
	}
	b.buf = append(b.buf, r)
	b.stats.Captured++
	full := len(b.buf) >= b.capacity
	onFull := b.onFull
	b.mu.Unlock()

	if !full {
		return
	}
	if onFull != nil {
		onFull(b)
		return
	}
	_ = b.Flush()
}

// Len returns the current buffer occupancy.
func (b *Buffered) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Flush sends the buffered records to the ISM as one data message.
// An empty buffer is a no-op (and not counted as a flush).
func (b *Buffered) Flush() error {
	b.mu.Lock()
	if len(b.buf) == 0 {
		b.mu.Unlock()
		return nil
	}
	batch := b.buf
	b.buf = make([]trace.Record, 0, b.capacity)
	b.stats.Flushes++
	b.stats.Forwarded += uint64(len(batch))
	conn := b.conn
	b.mu.Unlock()

	return conn.Send(tp.DataMessage(b.node, batch))
}

// Stats implements LIS.
func (b *Buffered) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Close flushes remaining records and marks the LIS stopped. The
// connection is left open for the caller to close (it may be shared).
func (b *Buffered) Close() error {
	err := b.Flush()
	b.mu.Lock()
	b.stopped = true
	b.mu.Unlock()
	return err
}

// Gang coordinates the FAOF policy across the buffered LISes of all
// nodes: when any member fills, every member flushes. This is the
// gang-scheduled context-switch flush the paper attributes to Pablo on
// the CM-5 and ParAide's TAM on the Paragon (§3.1.3).
type Gang struct {
	mu      sync.Mutex
	members []*Buffered
	flushes uint64
}

// NewGang wires the members together under FAOF and returns the
// coordinator.
func NewGang(members ...*Buffered) *Gang {
	g := &Gang{members: members}
	for _, m := range members {
		m.mu.Lock()
		m.onFull = func(*Buffered) { g.FlushAll() }
		m.mu.Unlock()
	}
	return g
}

// FlushAll flushes every member buffer. Concurrent triggers are
// serialized; a member that filled while another flush was in flight
// is simply flushed by the next sweep.
func (g *Gang) FlushAll() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flushes++
	for _, m := range g.members {
		_ = m.Flush()
	}
}

// GangFlushes returns the number of gang flush sweeps performed.
func (g *Gang) GangFlushes() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.flushes
}

// Forwarding is the Vista-style LIS: no local buffer, every event is
// sent to the ISM immediately ("event forwarding involves only one
// system call per event", §3.3).
type Forwarding struct {
	node int32
	conn tp.Conn

	mu      sync.Mutex
	stats   Stats
	stopped bool
}

// NewForwarding creates a forwarding LIS.
func NewForwarding(node int32, conn tp.Conn) (*Forwarding, error) {
	if conn == nil {
		return nil, errors.New("lis: nil connection")
	}
	return &Forwarding{node: node, conn: conn}, nil
}

// Capture implements event.Sink.
func (f *Forwarding) Capture(r trace.Record) {
	f.mu.Lock()
	if f.stopped {
		f.stats.Dropped++
		f.mu.Unlock()
		return
	}
	f.stats.Captured++
	f.stats.Forwarded++
	f.mu.Unlock()
	_ = f.conn.Send(tp.DataMessage(f.node, []trace.Record{r}))
}

// Flush implements LIS; a forwarding LIS holds nothing back.
func (f *Forwarding) Flush() error { return nil }

// Stats implements LIS.
func (f *Forwarding) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Close implements LIS.
func (f *Forwarding) Close() error {
	f.mu.Lock()
	f.stopped = true
	f.mu.Unlock()
	return nil
}

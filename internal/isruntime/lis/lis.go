// Package lis implements Local Instrumentation Servers: "the LIS
// captures instrumentation data of interest from the concurrent
// application processes and forwards the data to other IS modules ...
// Typically, the LIS uses local buffers and a management policy to
// accomplish data capturing and forwarding functions" (§2.2.1).
//
// Three LIS families cover the paper's case studies:
//
//   - Buffered: PICL-style instrumentation-library LIS with local
//     trace buffers and the FOF / FAOF flush policies of §3.1;
//   - Daemon: Paradyn-style per-node daemon that drains bounded pipes
//     filled by application processes (§3.2);
//   - Forwarding: Vista-style bufferless event forwarding, "only one
//     system call per event" (§3.3).
//
// All three are built on the shared flow core: batches travel through
// the flow batch pool (no per-flush allocation), bounded stages apply
// flow.OverflowPolicy uniformly, and every activity counter lives in a
// metrics.Registry (lis.node<N>.captured, .forwarded, .flushes,
// .dropped), of which the legacy Stats() snapshot is a thin view.
package lis

import (
	"errors"
	"fmt"
	"sync"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// Policy names a buffered-LIS flush policy.
type Policy int

// Flush policies for the Buffered LIS.
const (
	// FOF flushes one buffer when it fills (§3.1: "Flush One buffer
	// when it Fills").
	FOF Policy = iota
	// FAOF flushes all buffers when one fills ("Flush All the
	// buffers when One Fills"); requires a Gang coordinator.
	FAOF
	numPolicies
)

// String returns the policy mnemonic, or policy(N) for unknown values.
func (p Policy) String() string {
	switch p {
	case FOF:
		return "FOF"
	case FAOF:
		return "FAOF"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Stats summarizes a LIS's activity. It is a point-in-time view over
// the LIS's metrics registry.
type Stats struct {
	Captured  uint64 // records accepted from sensors
	Forwarded uint64 // records sent to the ISM
	Flushes   uint64 // flush operations performed
	Dropped   uint64 // records dropped (capture disabled or overflow policy)
	Spilled   uint64 // records demoted to the spill target (SpillToStorage)
}

// LIS is the common surface of all local instrumentation servers.
type LIS interface {
	event.Sink
	// Flush forces any buffered data to the ISM.
	Flush() error
	// Stats returns a snapshot of activity counters.
	Stats() Stats
	// Close flushes and releases the LIS.
	Close() error
}

// Option configures a LIS at construction time.
type Option func(*options)

type options struct {
	registry *metrics.Registry
	unpooled bool
	pending  int
	overflow flow.OverflowPolicy
	spill    flow.Spill
	async    bool
}

// WithMetrics reports the LIS's activity through the given registry
// under the lis.node<N> scope. Without it each LIS keeps a private
// registry.
func WithMetrics(reg *metrics.Registry) Option {
	return func(o *options) { o.registry = reg }
}

// WithUnpooledBatches disables the flow batch pool for this LIS, so
// every flush allocates a fresh record slice — the pre-pooling
// behaviour, kept for benchmark comparison.
func WithUnpooledBatches() Option {
	return func(o *options) { o.unpooled = true }
}

// WithOverflow selects the overflow policy (and optional spill target)
// for the LIS's bounded stages — the Daemon's per-process pipes. The
// default is flow.Block, the paper's §3.2.3 backpressure behaviour.
func WithOverflow(policy flow.OverflowPolicy, spill flow.Spill) Option {
	return func(o *options) {
		o.overflow = policy
		o.spill = spill
	}
}

// WithAsyncFlush decouples capture from transfer: flushed batches are
// handed to a bounded pending stage (depth pending) drained by a
// sender goroutine, and the overflow policy governs what happens when
// the connection cannot keep up — Block applies backpressure to the
// capturing goroutine, DropNewest/DropOldest shed batches, and
// SpillToStorage demotes the displaced batch to spill. Without this
// option flushes run synchronously on the capturing goroutine (the
// paper's direct-flush perturbation).
func WithAsyncFlush(pending int, policy flow.OverflowPolicy, spill flow.Spill) Option {
	return func(o *options) {
		o.async = true
		o.pending = pending
		o.overflow = policy
		o.spill = spill
	}
}

// lisCounters is the metric set every LIS family reports.
type lisCounters struct {
	captured  *metrics.Counter
	forwarded *metrics.Counter
	flushes   *metrics.Counter
	dropped   *metrics.Counter
	spilled   *metrics.Counter
	occupancy *metrics.Gauge
	reg       *metrics.Registry
}

func newLISCounters(node int32, reg *metrics.Registry) lisCounters {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := reg.Scope(fmt.Sprintf("lis.node%d", node))
	return lisCounters{
		captured:  s.Counter("captured"),
		forwarded: s.Counter("forwarded"),
		flushes:   s.Counter("flushes"),
		dropped:   s.Counter("dropped"),
		spilled:   s.Counter("spilled"),
		occupancy: s.Gauge("occupancy"),
		reg:       reg,
	}
}

func (c lisCounters) stats() Stats {
	return Stats{
		Captured:  c.captured.Value(),
		Forwarded: c.forwarded.Value(),
		Flushes:   c.flushes.Value(),
		Dropped:   c.dropped.Value(),
		Spilled:   c.spilled.Value(),
	}
}

// Buffered is the PICL-style LIS: a fixed-capacity local record buffer
// flushed to the ISM as one data message. The zero value is not
// usable; construct with NewBuffered.
type Buffered struct {
	node     int32
	capacity int
	conn     tp.Conn
	onFull   func(*Buffered) // policy hook; nil means flush self (FOF)
	unpooled bool
	ctr      lisCounters

	mu      sync.Mutex
	buf     []trace.Record
	stopped bool

	// Async-flush mode (WithAsyncFlush): full batches queue here and
	// the sender goroutine drains them to the conn.
	pending    *flow.Queue[flow.Batch]
	senderDone chan struct{}
}

// NewBuffered creates a buffered LIS for node with the given local
// buffer capacity (the paper's l), forwarding over conn. The returned
// LIS implements the FOF policy; attach it to a Gang for FAOF.
func NewBuffered(node int32, capacity int, conn tp.Conn, opts ...Option) (*Buffered, error) {
	if capacity < 1 {
		return nil, errors.New("lis: buffer capacity must be >= 1")
	}
	if conn == nil {
		return nil, errors.New("lis: nil connection")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	b := &Buffered{
		node:     node,
		capacity: capacity,
		conn:     conn,
		unpooled: o.unpooled,
		ctr:      newLISCounters(node, o.registry),
	}
	b.buf = b.newBuf()
	if o.async {
		if o.pending < 1 {
			return nil, errors.New("lis: async pending depth must be >= 1")
		}
		var spill func(flow.Batch) error
		if o.spill != nil {
			sp := o.spill
			spilled := b.ctr.spilled
			spill = func(batch flow.Batch) error {
				err := sp.Append(batch...)
				if err == nil {
					spilled.Add(uint64(len(batch)))
					b.recycle(batch)
				}
				return err
			}
		}
		q, err := flow.NewQueue[flow.Batch](o.pending, o.overflow, spill)
		if err != nil {
			return nil, err
		}
		dropped := b.ctr.dropped
		q.OnDrop(func(batch flow.Batch) {
			dropped.Add(uint64(len(batch)))
			b.recycle(batch)
		})
		b.pending = q
		b.senderDone = make(chan struct{})
		go b.sender()
	}
	return b, nil
}

// newBuf allocates or recycles an empty capture buffer.
func (b *Buffered) newBuf() []trace.Record {
	if b.unpooled {
		return make([]trace.Record, 0, b.capacity)
	}
	return flow.GetBatch(b.capacity)
}

// recycle returns a batch to the pool unless pooling is disabled.
func (b *Buffered) recycle(batch flow.Batch) {
	if !b.unpooled {
		flow.PutBatch(batch)
	}
}

// msg wraps a batch as a data message, marking pool ownership.
func (b *Buffered) msg(batch []trace.Record) tp.Message {
	if b.unpooled {
		return tp.DataMessage(b.node, batch)
	}
	return tp.PooledDataMessage(b.node, batch)
}

// senderBurst caps how many pending batches one send coalesces, so a
// deep backlog still yields the connection periodically.
const senderBurst = 32

// sender drains pending batches to the connection (async mode). When a
// backlog has built up behind a slow connection, the queued batches are
// coalesced into a single tp.SendAll — one writev on a TCP transport —
// instead of paying a flush round-trip per batch. The conn takes
// ownership of every pooled batch.
func (b *Buffered) sender() {
	defer close(b.senderDone)
	msgs := make([]tp.Message, 0, senderBurst)
	for {
		batch, ok := b.pending.PopWait()
		if !ok {
			return
		}
		msgs = append(msgs[:0], b.msg(batch))
		total := uint64(len(batch))
		for len(msgs) < senderBurst {
			more, ok := b.pending.TryPop()
			if !ok {
				break
			}
			total += uint64(len(more))
			msgs = append(msgs, b.msg(more))
		}
		if tp.SendAll(b.conn, msgs) == nil {
			b.ctr.forwarded.Add(total)
		}
	}
}

// Node returns the node id this LIS serves.
func (b *Buffered) Node() int32 { return b.node }

// Capacity returns the local buffer capacity l.
func (b *Buffered) Capacity() int { return b.capacity }

// Metrics returns the registry this LIS reports through.
func (b *Buffered) Metrics() *metrics.Registry { return b.ctr.reg }

// Capture implements event.Sink. When the buffer reaches capacity the
// policy hook runs: plain FOF flushes this buffer; under a Gang the
// coordinator flushes every member (FAOF).
func (b *Buffered) Capture(r trace.Record) {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		b.ctr.dropped.Inc()
		return
	}
	b.buf = append(b.buf, r)
	full := len(b.buf) >= b.capacity
	onFull := b.onFull
	b.ctr.occupancy.Set(int64(len(b.buf)))
	b.mu.Unlock()
	b.ctr.captured.Inc()

	if !full {
		return
	}
	if onFull != nil {
		onFull(b)
		return
	}
	_ = b.Flush()
}

// Len returns the current buffer occupancy.
func (b *Buffered) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// Flush sends the buffered records to the ISM as one data message.
// An empty buffer is a no-op (and not counted as a flush). In async
// mode the batch is enqueued for the sender goroutine and the overflow
// policy applies when the pending stage is full.
func (b *Buffered) Flush() error {
	b.mu.Lock()
	if len(b.buf) == 0 {
		b.mu.Unlock()
		return nil
	}
	batch := b.buf
	b.buf = b.newBuf()
	b.ctr.occupancy.Set(0)
	conn := b.conn
	b.mu.Unlock()
	b.ctr.flushes.Inc()

	if b.pending != nil {
		b.pending.Push(batch) // drops/spills are accounted by the hooks
		return nil
	}
	n := uint64(len(batch))
	err := conn.Send(b.msg(batch))
	b.ctr.forwarded.Add(n)
	return err
}

// Stats implements LIS.
func (b *Buffered) Stats() Stats { return b.ctr.stats() }

// Close flushes remaining records and marks the LIS stopped. The
// connection is left open for the caller to close (it may be shared).
func (b *Buffered) Close() error {
	err := b.Flush()
	b.mu.Lock()
	alreadyStopped := b.stopped
	b.stopped = true
	b.mu.Unlock()
	if b.pending != nil && !alreadyStopped {
		b.pending.Close()
		<-b.senderDone
	}
	return err
}

// Gang coordinates the FAOF policy across the buffered LISes of all
// nodes: when any member fills, every member flushes. This is the
// gang-scheduled context-switch flush the paper attributes to Pablo on
// the CM-5 and ParAide's TAM on the Paragon (§3.1.3).
type Gang struct {
	mu      sync.Mutex
	members []*Buffered
	flushes uint64
}

// NewGang wires the members together under FAOF and returns the
// coordinator.
func NewGang(members ...*Buffered) *Gang {
	g := &Gang{members: members}
	for _, m := range members {
		m.mu.Lock()
		m.onFull = func(*Buffered) { g.FlushAll() }
		m.mu.Unlock()
	}
	return g
}

// FlushAll flushes every member buffer. Concurrent triggers are
// serialized; a member that filled while another flush was in flight
// is simply flushed by the next sweep.
func (g *Gang) FlushAll() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flushes++
	for _, m := range g.members {
		_ = m.Flush()
	}
}

// GangFlushes returns the number of gang flush sweeps performed.
func (g *Gang) GangFlushes() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.flushes
}

// Forwarding is the Vista-style LIS: no local buffer, every event is
// sent to the ISM immediately ("event forwarding involves only one
// system call per event", §3.3).
type Forwarding struct {
	node     int32
	conn     tp.Conn
	unpooled bool
	ctr      lisCounters

	mu      sync.Mutex
	stopped bool
}

// NewForwarding creates a forwarding LIS.
func NewForwarding(node int32, conn tp.Conn, opts ...Option) (*Forwarding, error) {
	if conn == nil {
		return nil, errors.New("lis: nil connection")
	}
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return &Forwarding{
		node: node, conn: conn, unpooled: o.unpooled,
		ctr: newLISCounters(node, o.registry),
	}, nil
}

// Metrics returns the registry this LIS reports through.
func (f *Forwarding) Metrics() *metrics.Registry { return f.ctr.reg }

// Capture implements event.Sink.
func (f *Forwarding) Capture(r trace.Record) {
	f.mu.Lock()
	stopped := f.stopped
	f.mu.Unlock()
	if stopped {
		f.ctr.dropped.Inc()
		return
	}
	f.ctr.captured.Inc()
	f.ctr.forwarded.Inc()
	var msg tp.Message
	if f.unpooled {
		msg = tp.DataMessage(f.node, []trace.Record{r})
	} else {
		batch := flow.GetBatch(1)
		batch = append(batch, r)
		msg = tp.PooledDataMessage(f.node, batch)
	}
	_ = f.conn.Send(msg)
}

// Flush implements LIS; a forwarding LIS holds nothing back.
func (f *Forwarding) Flush() error { return nil }

// Stats implements LIS.
func (f *Forwarding) Stats() Stats { return f.ctr.stats() }

// Close implements LIS.
func (f *Forwarding) Close() error {
	f.mu.Lock()
	f.stopped = true
	f.mu.Unlock()
	return nil
}

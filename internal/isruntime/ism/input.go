package ism

import "sync"

// Input buffer stages. The SISO stage is one FIFO shared by all
// sources; the MISO stage keeps one FIFO per source and scans sources
// round-robin on pop — the per-buffer maintenance work that makes MISO
// "incur more overhead, especially in accessing memory ... under high
// arrival rate conditions" (§3.3.2).
type inputStage interface {
	// push enqueues an envelope from the given source node. When the
	// stage is at capacity the oldest record of the target buffer is
	// dropped (monitoring favors fresh data over stale backlog).
	push(node int32, e envelope)
	// pop dequeues the next envelope, reporting false when empty.
	pop() (envelope, bool)
	// empty reports whether no envelopes are queued.
	empty() bool
	// dropped returns the number of records displaced by overflow.
	dropped() uint64
}

type sisoStage struct {
	mu    sync.Mutex
	buf   []envelope
	cap   int
	drops uint64
}

func newSISOStage(capacity int) *sisoStage {
	return &sisoStage{cap: capacity}
}

func (s *sisoStage) push(_ int32, e envelope) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) >= s.cap {
		s.buf = s.buf[1:]
		s.drops++
	}
	s.buf = append(s.buf, e)
}

func (s *sisoStage) pop() (envelope, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.buf) == 0 {
		return envelope{}, false
	}
	e := s.buf[0]
	s.buf = s.buf[1:]
	return e, true
}

func (s *sisoStage) empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf) == 0
}

func (s *sisoStage) dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

type misoStage struct {
	mu     sync.Mutex
	order  []int32
	queues map[int32][]envelope
	cap    int
	next   int // round-robin cursor
	total  int
	drops  uint64
}

func newMISOStage(capacityPerSource int) *misoStage {
	return &misoStage{queues: map[int32][]envelope{}, cap: capacityPerSource}
}

func (s *misoStage) push(node int32, e envelope) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[node]
	if !ok {
		s.order = append(s.order, node)
	}
	if len(q) >= s.cap {
		q = q[1:]
		s.drops++
		s.total--
	}
	s.queues[node] = append(q, e)
	s.total++
}

func (s *misoStage) pop() (envelope, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.total == 0 {
		return envelope{}, false
	}
	// Round-robin scan across per-source buffers.
	n := len(s.order)
	for i := 0; i < n; i++ {
		node := s.order[(s.next+i)%n]
		q := s.queues[node]
		if len(q) > 0 {
			e := q[0]
			s.queues[node] = q[1:]
			s.total--
			s.next = (s.next + i + 1) % n
			return e, true
		}
	}
	return envelope{}, false
}

func (s *misoStage) empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total == 0
}

func (s *misoStage) dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drops
}

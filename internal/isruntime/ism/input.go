package ism

import (
	"sync"
	"sync/atomic"

	"prism/internal/isruntime/flow"
)

// Input buffer stages, built on flow.Queue so the overflow discipline
// is pluggable and uniform with the LIS and TP layers. The unit of
// transfer is a whole batch envelope — one LIS flush — not a single
// record: DeWiz-style pipelines only scale when every stage moves
// blocks of events. The SISO stage is one bounded FIFO shared by all
// sources; the MISO stage keeps one FIFO per source and scans sources
// round-robin on pop — the per-buffer maintenance work that makes MISO
// "incur more overhead, especially in accessing memory ... under high
// arrival rate conditions" (§3.3.2).
//
// Because queue elements are batches, the loss accounting the ISM
// exposes stays record-granular: every stage counts dropped and
// spilled records (not batches) through its OnDrop and spill hooks,
// which also return pooled slices to the batch pool so a policy drop
// cannot leak pool capacity.
type inputStage interface {
	// push enqueues a batch envelope from the given source node,
	// applying the stage's overflow policy when the target buffer is
	// full.
	push(node int32, e batchEnv)
	// pop dequeues the next envelope, reporting false when empty. It
	// never blocks.
	pop() (batchEnv, bool)
	// dropped returns the number of records lost to overflow or close.
	dropped() uint64
	// spilled returns the number of records demoted to the spill
	// target under SpillToStorage.
	spilled() uint64
	// close rejects further pushes (counted as drops); queued
	// envelopes remain poppable.
	close()
}

// stageAccounting is the record-granular drop/spill bookkeeping both
// stages share.
type stageAccounting struct {
	droppedRecs atomic.Uint64
	spilledRecs atomic.Uint64
}

// onDropEnv builds the OnDrop hook: count the batch's records as
// dropped and recycle the pooled slice. extra runs afterwards (the
// MISO stage uses it to maintain its occupancy hints); settle tells
// the owning lane the batch left the stage without being popped, so
// the merger stops waiting for its ingest tick.
func (a *stageAccounting) onDropEnv(extra func(), settle func(batchEnv)) func(batchEnv) {
	return func(e batchEnv) {
		a.droppedRecs.Add(uint64(len(e.recs)))
		if e.pooled {
			flow.PutBatch(e.recs)
		}
		if extra != nil {
			extra()
		}
		if settle != nil {
			settle(e)
		}
	}
}

// spillEnv adapts a storage spill target to batch envelopes: the whole
// batch is appended as one bulk write, counted per record, and the
// pooled slice recycled. extra runs after a successful spill; settle
// as in onDropEnv.
func (a *stageAccounting) spillEnv(s flow.Spill, extra func(), settle func(batchEnv)) func(batchEnv) error {
	if s == nil {
		return nil
	}
	return func(e batchEnv) error {
		if err := s.Append(e.recs...); err != nil {
			return err
		}
		a.spilledRecs.Add(uint64(len(e.recs)))
		if e.pooled {
			flow.PutBatch(e.recs)
		}
		if extra != nil {
			extra()
		}
		if settle != nil {
			settle(e)
		}
		return nil
	}
}

type sisoStage struct {
	stageAccounting
	q *flow.Queue[batchEnv]
}

// newSISOStage builds the shared-FIFO stage. The policy must be valid
// (the ISM constructor checks). capacity counts queued batches; settle
// (may be nil) is notified when a batch is dropped or spilled.
func newSISOStage(capacity int, policy flow.OverflowPolicy, spill flow.Spill, settle func(batchEnv)) *sisoStage {
	s := &sisoStage{}
	q, err := flow.NewQueue[batchEnv](capacity, policy, s.spillEnv(spill, nil, settle))
	if err != nil {
		panic(err)
	}
	q.OnDrop(s.onDropEnv(nil, settle))
	s.q = q
	return s
}

func (s *sisoStage) push(_ int32, e batchEnv) { s.q.Push(e) }

func (s *sisoStage) pop() (batchEnv, bool) { return s.q.TryPop() }

func (s *sisoStage) dropped() uint64 { return s.droppedRecs.Load() }

func (s *sisoStage) spilled() uint64 { return s.spilledRecs.Load() }

func (s *sisoStage) close() { s.q.Close() }

// misoSource is one source's buffer plus an occupancy hint. The hint
// is a safe upper bound on the queue's length: producers increment it
// BEFORE pushing and every path that removes an element (pop, policy
// drop, spill) decrements it after. It can transiently overcount —
// never undercount — so pop may skip a queue only when the hint is
// zero, and the round-robin scan touches just the sources that might
// hold data instead of walking the whole ring when most are idle.
type misoSource struct {
	q    *flow.Queue[batchEnv]
	hint atomic.Int64
}

type misoStage struct {
	stageAccounting
	cap    int
	policy flow.OverflowPolicy
	spill  flow.Spill
	settle func(batchEnv)

	// total upper-bounds the stage-wide occupancy for an O(1) empty
	// fast path on pop.
	total atomic.Int64

	mu     sync.Mutex
	order  []int32
	queues map[int32]*misoSource
	next   int // round-robin cursor
	closed bool
}

func newMISOStage(capacityPerSource int, policy flow.OverflowPolicy, spill flow.Spill, settle func(batchEnv)) *misoStage {
	if !policy.Valid() {
		panic("ism: invalid overflow policy")
	}
	return &misoStage{
		cap:    capacityPerSource,
		policy: policy,
		spill:  spill,
		settle: settle,
		queues: map[int32]*misoSource{},
	}
}

// push enqueues into the source's own buffer, creating it on first
// arrival. The queue push runs outside the stage lock so a Block
// policy stalls only this producer, not the stage. The occupancy hints
// are raised before the push: a consumer that observes the hint but
// loses the race to the push simply retries via the availability
// signal that follows every push.
func (s *misoStage) push(node int32, e batchEnv) {
	s.mu.Lock()
	src, ok := s.queues[node]
	if !ok {
		src = &misoSource{}
		dec := func() {
			src.hint.Add(-1)
			s.total.Add(-1)
		}
		q, err := flow.NewQueue[batchEnv](s.cap, s.policy, s.spillEnv(s.spill, dec, s.settle))
		if err != nil {
			s.mu.Unlock()
			panic(err)
		}
		q.OnDrop(s.onDropEnv(dec, s.settle))
		src.q = q
		if s.closed {
			q.Close()
		}
		s.queues[node] = src
		s.order = append(s.order, node)
	}
	s.mu.Unlock()
	src.hint.Add(1)
	s.total.Add(1)
	src.q.Push(e)
}

func (s *misoStage) pop() (batchEnv, bool) {
	if s.total.Load() <= 0 {
		return batchEnv{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Round-robin scan across per-source buffers, skipping sources
	// whose hint says they cannot hold data.
	n := len(s.order)
	for i := 0; i < n; i++ {
		src := s.queues[s.order[(s.next+i)%n]]
		if src.hint.Load() <= 0 {
			continue
		}
		if e, ok := src.q.TryPop(); ok {
			src.hint.Add(-1)
			s.total.Add(-1)
			s.next = (s.next + i + 1) % n
			return e, true
		}
	}
	return batchEnv{}, false
}

func (s *misoStage) dropped() uint64 { return s.droppedRecs.Load() }

func (s *misoStage) spilled() uint64 { return s.spilledRecs.Load() }

func (s *misoStage) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, src := range s.queues {
		src.q.Close()
	}
}

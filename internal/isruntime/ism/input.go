package ism

import (
	"sync"

	"prism/internal/isruntime/flow"
)

// Input buffer stages, built on flow.Queue so the overflow discipline
// is pluggable and uniform with the LIS and TP layers. The SISO stage
// is one bounded FIFO shared by all sources; the MISO stage keeps one
// FIFO per source and scans sources round-robin on pop — the
// per-buffer maintenance work that makes MISO "incur more overhead,
// especially in accessing memory ... under high arrival rate
// conditions" (§3.3.2).
type inputStage interface {
	// push enqueues an envelope from the given source node, applying
	// the stage's overflow policy when the target buffer is full.
	push(node int32, e envelope)
	// pop dequeues the next envelope, reporting false when empty. It
	// never blocks.
	pop() (envelope, bool)
	// empty reports whether no envelopes are queued.
	empty() bool
	// dropped returns the number of records lost to overflow or close.
	dropped() uint64
	// spilled returns the number of records demoted to the spill
	// target under SpillToStorage.
	spilled() uint64
	// close rejects further pushes (counted as drops); queued
	// envelopes remain poppable.
	close()
}

// spillEnvelope adapts a storage spill target to envelope elements.
func spillEnvelope(s flow.Spill) func(envelope) error {
	if s == nil {
		return nil
	}
	return func(e envelope) error { return s.Append(e.rec) }
}

type sisoStage struct {
	q *flow.Queue[envelope]
}

// newSISOStage builds the shared-FIFO stage. The policy must be valid
// (the ISM constructor checks).
func newSISOStage(capacity int, policy flow.OverflowPolicy, spill flow.Spill) *sisoStage {
	q, err := flow.NewQueue[envelope](capacity, policy, spillEnvelope(spill))
	if err != nil {
		panic(err)
	}
	return &sisoStage{q: q}
}

func (s *sisoStage) push(_ int32, e envelope) { s.q.Push(e) }

func (s *sisoStage) pop() (envelope, bool) { return s.q.TryPop() }

func (s *sisoStage) empty() bool { return s.q.Len() == 0 }

func (s *sisoStage) dropped() uint64 { return s.q.Stats().Dropped }

func (s *sisoStage) spilled() uint64 { return s.q.Stats().Spilled }

func (s *sisoStage) close() { s.q.Close() }

type misoStage struct {
	cap    int
	policy flow.OverflowPolicy
	spill  func(envelope) error

	mu     sync.Mutex
	order  []int32
	queues map[int32]*flow.Queue[envelope]
	next   int // round-robin cursor
	closed bool
}

func newMISOStage(capacityPerSource int, policy flow.OverflowPolicy, spill flow.Spill) *misoStage {
	if !policy.Valid() {
		panic("ism: invalid overflow policy")
	}
	return &misoStage{
		cap:    capacityPerSource,
		policy: policy,
		spill:  spillEnvelope(spill),
		queues: map[int32]*flow.Queue[envelope]{},
	}
}

// push enqueues into the source's own buffer, creating it on first
// arrival. The queue push runs outside the stage lock so a Block
// policy stalls only this producer, not the stage.
func (s *misoStage) push(node int32, e envelope) {
	s.mu.Lock()
	q, ok := s.queues[node]
	if !ok {
		var err error
		q, err = flow.NewQueue[envelope](s.cap, s.policy, s.spill)
		if err != nil {
			s.mu.Unlock()
			panic(err)
		}
		if s.closed {
			q.Close()
		}
		s.queues[node] = q
		s.order = append(s.order, node)
	}
	s.mu.Unlock()
	q.Push(e)
}

func (s *misoStage) pop() (envelope, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Round-robin scan across per-source buffers.
	n := len(s.order)
	for i := 0; i < n; i++ {
		node := s.order[(s.next+i)%n]
		if e, ok := s.queues[node].TryPop(); ok {
			s.next = (s.next + i + 1) % n
			return e, true
		}
	}
	return envelope{}, false
}

func (s *misoStage) empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, q := range s.queues {
		if q.Len() > 0 {
			return false
		}
	}
	return true
}

func (s *misoStage) dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, q := range s.queues {
		n += q.Stats().Dropped
	}
	return n
}

func (s *misoStage) spilled() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, q := range s.queues {
		n += q.Stats().Spilled
	}
	return n
}

func (s *misoStage) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for _, q := range s.queues {
		q.Close()
	}
}

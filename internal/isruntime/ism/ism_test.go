package ism

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/lis"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

func dataMsg(node int32, rs ...trace.Record) tp.Message {
	return tp.DataMessage(node, rs)
}

// seqRec builds a record carrying its capture sequence in Logical, as
// sensors do.
func seqRec(node int32, kind trace.Kind, tag uint16, seq uint64, payload int64) trace.Record {
	return trace.Record{Node: node, Kind: kind, Tag: tag, Logical: seq, Payload: payload}
}

func TestBufferingString(t *testing.T) {
	if SISO.String() != "SISO" || MISO.String() != "MISO" {
		t.Fatal("buffering names")
	}
}

func TestUnorderedPassThrough(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO}, &clock)
	defer m.Close()

	var mu sync.Mutex
	var got []trace.Record
	m.Subscribe("t", func(r trace.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	m.Inject(dataMsg(0, seqRec(0, trace.KindUser, 1, 0, 0), seqRec(0, trace.KindUser, 2, 1, 0)))
	m.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Tag != 1 || got[1].Tag != 2 {
		t.Fatalf("got %v", got)
	}
	st := m.Stats()
	if st.Arrived != 2 || st.Dispatched != 2 || st.OutOfOrder != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOrderedReassemblesCausalOrder(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO, Ordered: true}, &clock)
	defer m.Close()

	var mu sync.Mutex
	var got []trace.Record
	m.Subscribe("t", func(r trace.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	// Deliver seq 1 before seq 0.
	m.Inject(dataMsg(0, seqRec(0, trace.KindUser, 11, 1, 0)))
	m.Inject(dataMsg(0, seqRec(0, trace.KindUser, 10, 0, 0)))
	m.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Tag != 10 || got[1].Tag != 11 {
		t.Fatalf("causal order not restored: %v", got)
	}
	if err := trace.CheckCausal(got); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.OutOfOrder != 1 {
		t.Fatalf("out-of-order count %d", st.OutOfOrder)
	}
	if st.HoldBackRatio != 0.5 {
		t.Fatalf("hold-back ratio %v", st.HoldBackRatio)
	}
	if st.MaxHeld != 1 {
		t.Fatalf("max held %d", st.MaxHeld)
	}
}

func TestOrderedMatchesSendRecvAcrossNodes(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: MISO, Ordered: true}, &clock)
	defer m.Close()

	var mu sync.Mutex
	var got []trace.Record
	m.Subscribe("t", func(r trace.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	// Recv (node 1) arrives before its send (node 0).
	m.Inject(dataMsg(1, seqRec(1, trace.KindRecv, 3, 0, 0)))
	m.Inject(dataMsg(0, seqRec(0, trace.KindSend, 3, 0, 1)))
	m.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0].Kind != trace.KindSend || got[1].Kind != trace.KindRecv {
		t.Fatalf("got %v", got)
	}
	if err := trace.CheckCausal(got); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyMeasurement(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO}, &clock)
	defer m.Close()
	block := make(chan struct{})
	m.Subscribe("slow", func(r trace.Record) {
		if r.Tag == 0 {
			<-block // stall the processor on the first record
		}
	})
	m.Inject(dataMsg(0, seqRec(0, trace.KindUser, 0, 0, 0)))
	m.Inject(dataMsg(0, seqRec(0, trace.KindUser, 1, 1, 0)))
	// The second record queues at clock 0; advance the clock before
	// the processor can reach it, so its measured latency is 5000ns.
	time.Sleep(2 * time.Millisecond)
	clock.Advance(5000)
	close(block)
	m.Drain()
	st := m.Stats()
	if st.MeanLatencyNs <= 0 || st.MaxLatencyNs < 5000 {
		t.Fatalf("latency not measured: %+v", st)
	}
}

func TestSpooling(t *testing.T) {
	var clock event.VirtualClock
	var buf bytes.Buffer
	m := New(Config{Buffering: SISO, Spool: &buf}, &clock)
	m.Inject(dataMsg(0, seqRec(0, trace.KindUser, 1, 0, 0), seqRec(0, trace.KindUser, 2, 1, 0)))
	m.Drain()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := trace.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Tag != 1 {
		t.Fatalf("spooled %v", rs)
	}
}

func TestServeAndBroadcast(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO}, &clock)
	defer m.Close()

	var mu sync.Mutex
	count := 0
	m.Subscribe("t", func(trace.Record) {
		mu.Lock()
		count++
		mu.Unlock()
	})

	lisSide, ismSide := tp.Pipe(16)
	m.Serve(ismSide)
	if err := lisSide.Send(dataMsg(0, seqRec(0, trace.KindUser, 0, 0, 0))); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("served record never dispatched")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	m.Broadcast(tp.CtlFlush, 0)
	msg, err := lisSide.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != tp.MsgControl || msg.Control != tp.CtlFlush {
		t.Fatalf("broadcast %+v", msg)
	}
	lisSide.Close()
}

func TestGangFlushOverTP(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO}, &clock)
	defer m.Close()

	var mu sync.Mutex
	received := 0
	m.Subscribe("t", func(trace.Record) {
		mu.Lock()
		received++
		mu.Unlock()
	})

	// Three LISes behind control loops, each with buffered records.
	const nodes = 3
	var conns []tp.Conn
	for i := 0; i < nodes; i++ {
		lisSide, ismSide := tp.Pipe(32)
		m.Serve(ismSide)
		conns = append(conns, lisSide)
		b, err := lis.NewBuffered(int32(i), 32, lisSide)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e <= i; e++ {
			b.Capture(trace.Record{Node: int32(i), Kind: trace.KindUser, Logical: uint64(e)})
		}
		go func() { _ = lis.ControlLoop(lisSide, b) }()
	}

	acks := m.GangFlush(2 * time.Second)
	if acks != nodes {
		t.Fatalf("acks %d of %d", acks, nodes)
	}
	// All buffered records (1+2+3 = 6) must arrive.
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := received
		mu.Unlock()
		if n == 6 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("received %d of 6", n)
		default:
			time.Sleep(time.Millisecond)
			m.Drain()
		}
	}
	for _, c := range conns {
		c.Close()
	}
}

func TestGangFlushTimeout(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO}, &clock)
	defer m.Close()
	// A served connection whose LIS never acknowledges.
	lisSide, ismSide := tp.Pipe(4)
	m.Serve(ismSide)
	defer lisSide.Close()
	if acks := m.GangFlush(20 * time.Millisecond); acks != 0 {
		t.Fatalf("phantom acks %d", acks)
	}
}

func TestControlCounted(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO}, &clock)
	defer m.Close()
	m.Inject(tp.ControlMessage(0, tp.CtlStart, 0))
	m.Inject(tp.ControlMessage(0, tp.CtlStop, 0))
	// Controls are handled synchronously.
	if st := m.Stats(); st.ControlsSeen != 2 {
		t.Fatalf("controls %d", st.ControlsSeen)
	}
}

func TestCloseIdempotentAndDrains(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO}, &clock)
	var mu sync.Mutex
	n := 0
	m.Subscribe("t", func(trace.Record) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	for i := 0; i < 100; i++ {
		m.Inject(dataMsg(0, seqRec(0, trace.KindUser, uint16(i), uint64(i), 0)))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if n != 100 {
		t.Fatalf("close dropped records: %d", n)
	}
}

func TestMISORoundRobinFairness(t *testing.T) {
	// The unit of transfer is a batch envelope, so MISO fairness is
	// batch-granular: with two batches queued per source, pop must
	// alternate sources instead of draining one source's queue first.
	var clock event.VirtualClock
	m := New(Config{Buffering: MISO}, &clock)
	defer m.Close()
	var mu sync.Mutex
	var order []int32
	gate := make(chan struct{})
	first := true
	m.Subscribe("t", func(r trace.Record) {
		if first {
			// Stall the processor on the very first record so every
			// remaining batch is queued before the next pop.
			first = false
			<-gate
		}
		mu.Lock()
		order = append(order, r.Node)
		mu.Unlock()
	})
	batch := func(node int32, base uint64) []trace.Record {
		rs := make([]trace.Record, 2)
		for i := range rs {
			rs[i] = seqRec(node, trace.KindUser, uint16(base)+uint16(i), base+uint64(i), 0)
		}
		return rs
	}
	m.Inject(tp.DataMessage(0, batch(0, 0)))
	m.Inject(tp.DataMessage(0, batch(0, 2)))
	m.Inject(tp.DataMessage(1, batch(1, 0)))
	m.Inject(tp.DataMessage(1, batch(1, 2)))
	close(gate)
	m.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 8 {
		t.Fatalf("dispatched %d", len(order))
	}
	// The first batch popped is source 0's (it may have been popped
	// before source 1 arrived — the gate holds it mid-dispatch). The
	// remaining pops must round-robin: B, A, B — not A, B, B.
	want := []int32{0, 0, 1, 1, 0, 0, 1, 1}
	for i, n := range want {
		if order[i] != n {
			t.Fatalf("MISO did not interleave batches: %v", order)
		}
	}
}

func TestOutputBufferDelivery(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO, OutputCapacity: 8}, &clock)
	defer m.Close()
	var mu sync.Mutex
	var got []uint16
	m.Subscribe("t", func(r trace.Record) {
		mu.Lock()
		got = append(got, r.Tag)
		mu.Unlock()
	})
	const n = 100
	for i := 0; i < n; i++ {
		m.Inject(dataMsg(0, seqRec(0, trace.KindUser, uint16(i), uint64(i), 0)))
	}
	m.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for i, tag := range got {
		if tag != uint16(i) {
			t.Fatalf("output order broken at %d", i)
		}
	}
	st := m.Stats()
	if st.Delivered != n || st.OutputQueued != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOutputBufferBackpressure(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO, OutputCapacity: 2}, &clock)
	block := make(chan struct{})
	m.Subscribe("slow", func(r trace.Record) {
		if r.Tag == 0 {
			<-block
		}
	})
	for i := 0; i < 20; i++ {
		m.Inject(dataMsg(0, seqRec(0, trace.KindUser, uint16(i), uint64(i), 0)))
	}
	// With the dispatcher stalled, the output buffer fills and the
	// processor blocks; only a few records can be past the input.
	time.Sleep(5 * time.Millisecond)
	if st := m.Stats(); st.OutputQueued == 0 {
		t.Fatalf("no backpressure visible: %+v", st)
	}
	close(block)
	m.Drain()
	if st := m.Stats(); st.Delivered != 20 {
		t.Fatalf("delivered %d", st.Delivered)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOutputBufferSpoolOrder(t *testing.T) {
	var clock event.VirtualClock
	var buf bytes.Buffer
	m := New(Config{Buffering: SISO, OutputCapacity: 4, Spool: &buf, Ordered: true}, &clock)
	// Deliver out of order; spool must be causal.
	m.Inject(dataMsg(0, seqRec(0, trace.KindUser, 11, 1, 0)))
	m.Inject(dataMsg(0, seqRec(0, trace.KindUser, 10, 0, 0)))
	m.Drain()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	rs, err := trace.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Tag != 10 || rs[1].Tag != 11 {
		t.Fatalf("spool %v", rs)
	}
}

func TestDrainTerminatesUnderOverflow(t *testing.T) {
	// A tiny input stage guarantees drops under a burst; Drain must
	// account for them and terminate, and the drops must be counted.
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO, InputCapacity: 4}, &clock)
	defer m.Close()
	block := make(chan struct{})
	m.Subscribe("slow", func(r trace.Record) {
		if r.Tag == 0 {
			<-block // stall the processor so the burst overflows
		}
	})
	for i := 0; i < 200; i++ {
		m.Inject(dataMsg(0, seqRec(0, trace.KindUser, uint16(i), uint64(i), 0)))
	}
	close(block)
	done := make(chan struct{})
	go func() {
		m.Drain()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain hung under input overflow")
	}
	st := m.Stats()
	if st.InputDropped == 0 {
		t.Fatal("overflow not counted")
	}
	if st.Dispatched+st.InputDropped < 200 {
		t.Fatalf("records unaccounted: dispatched %d + dropped %d", st.Dispatched, st.InputDropped)
	}
}

// env wraps records as an unpooled batch envelope for white-box stage
// tests.
func env(tags ...uint16) batchEnv {
	rs := make([]trace.Record, len(tags))
	for i, tag := range tags {
		rs[i] = trace.Record{Tag: tag}
	}
	return batchEnv{recs: rs}
}

func TestStageOverflowDrops(t *testing.T) {
	// Queue capacity counts batch envelopes; drop accounting counts the
	// records inside the displaced batches.
	s := newSISOStage(2, flow.DropOldest, nil, nil)
	s.push(0, env(1, 2))
	s.push(0, env(3))
	s.push(0, env(4)) // displaces the 2-record batch {1,2}
	if s.dropped() != 2 {
		t.Fatalf("drops %d", s.dropped())
	}
	e, ok := s.pop()
	if !ok || len(e.recs) != 1 || e.recs[0].Tag != 3 {
		t.Fatalf("head %+v", e)
	}
	m := newMISOStage(1, flow.DropOldest, nil, nil)
	m.push(0, env(1, 2))
	m.push(0, env(3))
	if m.dropped() != 2 {
		t.Fatalf("miso drops %d", m.dropped())
	}
	e, ok = m.pop()
	if !ok || len(e.recs) != 1 || e.recs[0].Tag != 3 {
		t.Fatalf("miso head %+v", e)
	}
	if _, ok := m.pop(); ok {
		t.Fatal("miso should be empty")
	}
	if e, ok := s.pop(); !ok || e.recs[0].Tag != 4 {
		t.Fatalf("siso tail %+v", e)
	}
	if _, ok := m.pop(); ok {
		t.Fatal("miso should stay empty")
	}
	if _, ok := s.pop(); ok {
		t.Fatal("siso should be empty")
	}
}

// flushSpill records whether the manager flushed its spill target on
// Close — the hook that makes demoted records durable at shutdown.
type flushSpill struct {
	mu      sync.Mutex
	recs    []trace.Record
	flushed bool
}

func (f *flushSpill) Append(rs ...trace.Record) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recs = append(f.recs, rs...)
	return nil
}

func (f *flushSpill) Flush() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flushed = true
	return nil
}

func TestCloseFlushesOverflowSpill(t *testing.T) {
	var clock event.VirtualClock
	spill := &flushSpill{}
	m := New(Config{
		Buffering: SISO, InputCapacity: 2,
		Overflow: flow.SpillToStorage, OverflowSpill: spill,
	}, &clock)
	block := make(chan struct{})
	m.Subscribe("slow", func(r trace.Record) {
		if r.Tag == 0 {
			<-block // stall the processor so the burst demotes
		}
	})
	for i := 0; i < 100; i++ {
		m.Inject(dataMsg(0, seqRec(0, trace.KindUser, uint16(i), uint64(i), 0)))
	}
	close(block)
	m.Drain()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	spill.mu.Lock()
	defer spill.mu.Unlock()
	if !spill.flushed {
		t.Fatal("Close did not flush the overflow spill")
	}
	st := m.Stats()
	if st.InputSpilled == 0 || uint64(len(spill.recs)) != st.InputSpilled {
		t.Fatalf("spill holds %d records, stats say %d", len(spill.recs), st.InputSpilled)
	}
}

// TestDeferCausalRestampsUplinkSequences: a deferred-causal leaf must
// repair program order per source (sequencers still run) but emit raw
// records — no Lamport stamps, receives not matched — restamped with
// fresh contiguous per-source uplink sequences, even when the inbound
// capture sequences arrive shuffled and with duplicates.
func TestDeferCausalRestampsUplinkSequences(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO, Ordered: true, DeferCausal: true, Shards: 2}, &clock)

	var mu sync.Mutex
	var got []trace.Record
	m.Subscribe("t", func(r trace.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})

	// Node 5: capture sequences 0..3 injected as 1,0 then a duplicate 1,
	// then 3,2. A receive whose send lives on another leaf must pass
	// straight through — matching is the root relay's job.
	m.Inject(dataMsg(5, seqRec(5, trace.KindUser, 1, 1, 0)))
	m.Inject(dataMsg(5, seqRec(5, trace.KindUser, 0, 0, 0)))
	m.Inject(dataMsg(5, seqRec(5, trace.KindUser, 1, 1, 0))) // duplicate
	m.Inject(dataMsg(5, seqRec(5, trace.KindRecv, 9, 3, 77)))
	m.Inject(dataMsg(5, seqRec(5, trace.KindUser, 2, 2, 0)))
	// A second source interleaves; its uplink sequences are independent.
	m.Inject(dataMsg(6, seqRec(6, trace.KindUser, 0, 0, 0)))
	m.Drain()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 5 {
		t.Fatalf("dispatched %d records, want 5 (dup dropped, recv passed through)", len(got))
	}
	next := map[trace.SourceKey]uint64{}
	var tags5 []uint16
	for _, r := range got {
		key := trace.SourceKey{Node: r.Node, Process: r.Process}
		if r.Logical != next[key] {
			t.Fatalf("record %v: uplink seq %d, want contiguous %d", r, r.Logical, next[key])
		}
		next[key]++
		if r.Node == 5 {
			tags5 = append(tags5, r.Tag)
		}
	}
	// Program order per source: capture order 0,1,2,3 → tags 0,1,2,9.
	for i, tag := range []uint16{0, 1, 2, 9} {
		if tags5[i] != tag {
			t.Fatalf("node 5 dispatch order %v, want tags [0 1 2 9]", tags5)
		}
	}
}

// TestSubscribeBatchSeesDispatchBatches: batch sinks receive each
// dispatched batch as one slice whose contents match the record-
// granular subscriber stream.
func TestSubscribeBatchSeesDispatchBatches(t *testing.T) {
	var clock event.VirtualClock
	m := New(Config{Buffering: SISO, Ordered: true}, &clock)

	var mu sync.Mutex
	var single, batched []trace.Record
	var calls int
	m.Subscribe("rec", func(r trace.Record) {
		mu.Lock()
		single = append(single, r)
		mu.Unlock()
	})
	m.SubscribeBatch("batch", func(rs []trace.Record) {
		mu.Lock()
		batched = append(batched, rs...) // must copy: slice is pool-owned
		calls++
		mu.Unlock()
	})

	m.Inject(dataMsg(1,
		seqRec(1, trace.KindUser, 0, 0, 0),
		seqRec(1, trace.KindUser, 1, 1, 0),
		seqRec(1, trace.KindUser, 2, 2, 0)))
	m.Drain()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("batch sink called %d times, want 1 (one dispatch batch)", calls)
	}
	if len(batched) != len(single) {
		t.Fatalf("batch sink saw %d records, record sink %d", len(batched), len(single))
	}
	for i := range single {
		if batched[i] != single[i] {
			t.Fatalf("streams diverge at %d: %v vs %v", i, batched[i], single[i])
		}
	}
}

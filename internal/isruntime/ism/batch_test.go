package ism

import (
	"sync"
	"testing"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/tp"
	"prism/internal/raceflag"
	"prism/internal/trace"
)

func TestConcurrentPerSourceFIFO(t *testing.T) {
	// Sharded ingest must preserve each source's capture order: source
	// affinity pins every source to one shard, and the shard's stage is
	// FIFO per source, so even an unordered ISM (no causal orderer to
	// repair reorderings) must deliver each source's records in
	// sequence. Run with several producers per shard under -race.
	const (
		sources      = 8
		batches      = 50
		perBatch     = 16
		shardsConfig = 4
	)
	var clock event.VirtualClock
	m := New(Config{
		Buffering: MISO,
		Overflow:  flow.Block,
		Shards:    shardsConfig,
	}, &clock)
	defer m.Close()

	var mu sync.Mutex
	last := map[int32]int64{}
	counts := map[int32]int{}
	violations := 0
	m.Subscribe("fifo", func(r trace.Record) {
		mu.Lock()
		if prev, seen := last[r.Node]; seen && r.Payload <= prev {
			violations++
		}
		last[r.Node] = r.Payload
		counts[r.Node]++
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for src := 0; src < sources; src++ {
		wg.Add(1)
		go func(node int32) {
			defer wg.Done()
			seq := int64(0)
			for b := 0; b < batches; b++ {
				batch := flow.GetBatch(perBatch)
				for j := 0; j < perBatch; j++ {
					batch = append(batch, trace.Record{
						Node: node, Kind: trace.KindUser, Payload: seq,
					})
					seq++
				}
				m.Inject(tp.PooledDataMessage(node, batch))
			}
		}(int32(src))
	}
	wg.Wait()
	m.Drain()

	mu.Lock()
	defer mu.Unlock()
	if violations != 0 {
		t.Fatalf("%d per-source FIFO violations", violations)
	}
	for src := 0; src < sources; src++ {
		if got := counts[int32(src)]; got != batches*perBatch {
			t.Fatalf("source %d delivered %d of %d", src, got, batches*perBatch)
		}
	}
}

func TestShardedOrderedEquivalence(t *testing.T) {
	// Any shard count must yield the same causally ordered stream: the
	// shards merge at the single orderer, and per-source affinity keeps
	// program order intact on the way there.
	for _, shards := range []int{1, 3, 8} {
		var clock event.VirtualClock
		m := New(Config{Buffering: MISO, Ordered: true, Overflow: flow.Block, Shards: shards}, &clock)
		var mu sync.Mutex
		var got []trace.Record
		m.Subscribe("t", func(r trace.Record) {
			mu.Lock()
			got = append(got, r)
			mu.Unlock()
		})
		const sources, n = 4, 100
		for i := 0; i < n; i++ {
			for s := 0; s < sources; s++ {
				m.Inject(dataMsg(int32(s), seqRec(int32(s), trace.KindUser, uint16(i), uint64(i), 0)))
			}
		}
		m.Drain()
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		if len(got) != sources*n {
			t.Fatalf("shards=%d delivered %d of %d", shards, len(got), sources*n)
		}
		if err := trace.CheckCausal(got); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		mu.Unlock()
	}
}

func TestMergePathAllocFree(t *testing.T) {
	// The stage→sequence→ring→merge→dispatch hot path must not allocate
	// in steady state: the batch pool supplies the record slices, the
	// SPSC ring hands slots across by value, and the causal merger's
	// dispatch buffer is reused across slots. The lane and merger
	// stages run synchronously here — same code shape as sequenceBatch
	// plus merger.dispatch — because AllocsPerRun only observes the
	// calling goroutine.
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc budgets are meaningless")
	}
	seqr := trace.NewSequencer()
	cm := trace.NewCausalMerger()
	ring := flow.NewSPSC[mergeSlot](8)
	var orderBuf []trace.Record
	var delivered uint64

	const perBatch = 64
	seq := uint64(0)
	run := func() {
		// Lane side: batch in from the pool, sequenced into a pooled
		// slot, input batch recycled.
		batch := flow.GetBatch(perBatch)
		for j := 0; j < perBatch; j++ {
			batch = append(batch, trace.Record{
				Node: 1, Kind: trace.KindUser, Logical: seq,
			})
			seq++
		}
		out := flow.GetBatch(len(batch))
		for _, r := range batch {
			s := r.Logical
			r.Logical = 0
			out = seqr.AddTo(out, r, s)
		}
		flow.PutBatch(batch)
		if !ring.TryPush(mergeSlot{tick: seq, recs: out, pooled: true}) {
			t.Fatal("ring full")
		}
		// Merger side: pop, causally merge, dispatch, recycle.
		slot, ok := ring.TryPop()
		if !ok {
			t.Fatal("ring empty")
		}
		orderBuf = orderBuf[:0]
		for _, r := range slot.recs {
			orderBuf = cm.AddTo(orderBuf, r)
		}
		delivered += uint64(len(orderBuf))
		flow.PutBatch(slot.recs)
	}
	// Warm once outside the measurement so the dispatch buffer and maps
	// reach steady-state size.
	run()
	allocs := testing.AllocsPerRun(200, run)
	if allocs > 0 {
		t.Fatalf("merge path allocates %.1f times per op; want 0", allocs)
	}
	if delivered == 0 {
		t.Fatal("no records delivered")
	}
}

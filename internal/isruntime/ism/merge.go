package ism

import (
	"sync/atomic"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

// The merge point behind the sharded ingest. Each shard lane sequences
// its own sources (per-shard trace.Sequencer) and emits program-ordered
// sub-streams into a bounded SPSC ring; the merger goroutine below
// performs a k-way streaming merge over the lane heads — a 4-ary
// min-heap keyed by each head's global ingest tick — and feeds the
// merged stream through one trace.CausalMerger for cross-source
// send/recv matching and Lamport stamping before dispatch. This is the
// DeWiz shape: independent ordered sub-streams merged on a logical
// frontier, replacing the procMu global lock of the previous design.
//
// Liveness ("frontier-stall rule"): the minimum-tick head may only be
// dispatched once every other headless lane is provably unable to
// still emit a smaller tick — either it has settled every batch pushed
// to it, or its sequencing frontier has passed the candidate tick.
// A lane the merger stalls on always has outstanding batches, so it
// makes progress and eventually satisfies one of the two conditions;
// a lane blocked on a full ring has a head in the heap by definition
// and is therefore never stalled on.

// mergeSlot is one element of a shard's ordered sub-stream: the
// records one input batch released from the lane's sequencer, keyed by
// that batch's global ingest tick and carrying its arrival timestamp
// for the dispatch-latency metric.
type mergeSlot struct {
	tick    uint64
	arrival int64
	recs    []trace.Record
	pooled  bool
}

// merger is the dedicated merge/dispatch goroutine's state. All fields
// except merged are owned by that goroutine.
type merger struct {
	m *ISM

	heads []mergeSlot // current head slot per lane
	has   []bool
	heap  []int32 // lane ids, 4-ary min-heap by heads[id].tick

	cm       *trace.CausalMerger // nil unless Ordered without DeferCausal
	orderBuf []trace.Record      // reusable dispatch buffer
	lastHeld int                 // last held count folded into the gauge

	// uplinkSeq restamps dispatched records with fresh per-source
	// uplink sequence numbers under Config.DeferCausal: the leaf's
	// contribution to the cross-manager contract (contiguous per-source
	// sequences for the relay's lane sequencers).
	uplinkSeq map[trace.SourceKey]uint64

	stalledOn int  // lane blocking the last step, -1 if none
	retry     bool // a slot landed mid-step; re-step instead of parking

	wake chan struct{}
	stop chan struct{}
	done chan struct{}

	// merged counts records consumed from the rings and emitted; the
	// Drain watermark.
	merged atomic.Uint64

	slots   *metrics.Counter
	stalls  *metrics.Counter
	stallNs *metrics.Counter
}

func newMerger(m *ISM) *merger {
	g := &merger{
		m:         m,
		heads:     make([]mergeSlot, len(m.shards)),
		has:       make([]bool, len(m.shards)),
		heap:      make([]int32, 0, len(m.shards)),
		stalledOn: -1,
		wake:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if m.cfg.Ordered {
		if m.cfg.DeferCausal {
			g.uplinkSeq = make(map[trace.SourceKey]uint64)
		} else {
			g.cm = trace.NewCausalMerger()
		}
	}
	s := m.ctr.reg.Scope("ism").Scope("merge")
	g.slots = s.Counter("slots")
	g.stalls = s.Counter("stalls")
	g.stallNs = s.Counter("stall_ns")
	return g
}

// signal wakes the merger; safe from any goroutine, never blocks.
func (g *merger) signal() {
	select {
	case g.wake <- struct{}{}:
	default:
	}
}

// run is the merger goroutine: step until out of safe work, park on
// the wake signal, and on stop drain whatever the (already exited)
// lanes left behind.
func (g *merger) run() {
	defer close(g.done)
	for {
		if g.step() {
			continue
		}
		var t0 int64
		if g.stalledOn >= 0 {
			// Heads are waiting but the frontier rule blocks them:
			// that wait is merge stall, the price of ordering across
			// lanes, and is metered separately from plain idleness.
			g.stalls.Inc()
			t0 = g.m.clock.Now()
			s := g.m.shards[g.stalledOn]
			s.lagGauge.Set(int64(g.m.tick.Load() - s.frontier.Load()))
		}
		select {
		case <-g.wake:
			g.noteStallEnd(t0)
		case <-g.stop:
			g.noteStallEnd(t0)
			g.final()
			return
		}
	}
}

func (g *merger) noteStallEnd(t0 int64) {
	if g.stalledOn < 0 {
		return
	}
	if d := g.m.clock.Now() - t0; d > 0 {
		g.stallNs.Add(uint64(d))
	}
}

// refill pops one slot into the head position of every headless lane
// and returns a ring slot to any producer blocked on a full ring.
func (g *merger) refill() {
	for i, s := range g.m.shards {
		if g.has[i] {
			continue
		}
		if slot, ok := s.ring.TryPop(); ok {
			g.heads[i] = slot
			g.has[i] = true
			g.heapPush(int32(i))
			s.signalSpace()
			s.ringGauge.Set(int64(s.ring.Len()))
		}
	}
}

// step dispatches at most one slot and reports whether it made
// progress. No progress with stalledOn >= 0 means a frontier stall;
// with stalledOn < 0 it means the rings are simply empty.
func (g *merger) step() bool {
	g.stalledOn = -1
	g.refill()
	if len(g.heap) == 0 {
		return false
	}
	lane := int(g.heap[0])
	k := g.heads[lane].tick
	if len(g.m.shards) > 1 && !g.frontierClear(lane, k) {
		if g.retry {
			g.retry = false
			return true // a new head appeared mid-check; re-step
		}
		return false
	}
	g.heapPop()
	slot := g.heads[lane]
	g.heads[lane] = mergeSlot{}
	g.has[lane] = false
	g.dispatch(slot)
	return true
}

// frontierClear reports whether dispatching tick k from lane is safe:
// every other headless lane either has no batch outstanding (all
// pushed batches settled — any future tick postdates k, because ticks
// are drawn after the pushed count is raised) or has sequenced past k
// already (its frontier watermark is monotone, and with tick-sorted
// lane streams everything still queued is newer than the frontier).
func (g *merger) frontierClear(lane int, k uint64) bool {
	for i, s := range g.m.shards {
		if i == lane || g.has[i] {
			continue
		}
		// The done flag must be read BEFORE the ring length: done is
		// set after the lane's final ring push, so a true read here
		// guarantees the length check below sees the ring's final
		// contents.
		done := s.done.Load()
		if s.ring.Len() > 0 {
			// A slot landed after refill; it may carry a tick below k,
			// so pick it up before deciding.
			g.retry = true
			return false
		}
		if done {
			// The lane has exited with an empty ring: nothing it ever
			// sequenced remains, and late pushes are drops on the
			// closed stage whose ticks postdate k. Without this exit
			// the shutdown race livelocks: injectors hammering a
			// closing ISM keep an in-flight push outstanding at every
			// settled-count read, the frontier never clears, and a
			// sibling lane parked on a full ring is never refilled.
			continue
		}
		// pushed must be read BEFORE settled: a batch counted after the
		// read drew its tick after k existed, so its tick exceeds k and
		// cannot invalidate the dispatch. Reading the pair the other way
		// around livelocks under a steady stream of instantly-settling
		// batches (e.g. drops on a closing stage): settled would forever
		// trail the in-flight push between the two loads.
		p := s.pushedBatches.Load()
		if s.settledBatches.Load() >= p {
			continue
		}
		if s.frontier.Load() >= k {
			continue
		}
		g.stalledOn = i
		return false
	}
	return true
}

// final drains the rings without the frontier rule: the lanes have
// exited, so ring contents are complete and per-lane FIFO suffices.
func (g *merger) final() {
	for {
		g.refill()
		if len(g.heap) == 0 {
			return
		}
		lane := int(g.heapPop())
		slot := g.heads[lane]
		g.heads[lane] = mergeSlot{}
		g.has[lane] = false
		g.dispatch(slot)
	}
}

// dispatch runs one merged slot through causal merging (when ordered)
// and emission. All records in a slot share the arrival batch, so the
// latency observation and the batch-pool round trip stay per-slot.
func (g *merger) dispatch(slot mergeSlot) {
	m := g.m
	n := uint64(len(slot.recs))
	g.slots.Inc()
	if g.cm == nil {
		if g.uplinkSeq != nil {
			// Deferred causal mode: the record leaves this manager in
			// program order with a fresh per-source uplink sequence in
			// Logical — contiguous even when the inbound capture
			// sequence stream was not (dedup, resume adoption).
			for i := range slot.recs {
				key := trace.SourceKey{Node: slot.recs[i].Node, Process: slot.recs[i].Process}
				slot.recs[i].Logical = g.uplinkSeq[key]
				g.uplinkSeq[key]++
			}
		}
		m.ctr.latency.Observe(m.clock.Now() - slot.arrival)
		m.ctr.dispatched.Add(n)
		m.emitAll(slot.recs)
	} else {
		out := g.orderBuf[:0]
		for _, r := range slot.recs {
			prev := len(out)
			out = g.cm.AddTo(out, r)
			if len(out) == prev {
				m.ctr.outOfOrder.Inc()
			}
		}
		if h := g.cm.Held(); h != g.lastHeld {
			m.ctr.held.Add(int64(h - g.lastHeld))
			g.lastHeld = h
			m.ctr.maxHeld.SetMax(m.ctr.held.Value())
		}
		if len(out) > 0 {
			// Latency is attributed to the arriving batch that caused
			// dispatch; held records' latency is folded in when
			// released.
			m.ctr.latency.Observe(m.clock.Now() - slot.arrival)
			m.ctr.dispatched.Add(uint64(len(out)))
			m.emitAll(out)
		}
		g.orderBuf = out[:0]
	}
	if slot.pooled {
		flow.PutBatch(slot.recs)
	}
	g.merged.Add(n)
}

// 4-ary min-heap over lane ids keyed by head tick. Shard counts are
// small, so the shallow fan-out keeps the whole heap within a cache
// line or two (the PR-3 storage-heap idiom).

func (g *merger) heapLess(a, b int32) bool {
	return g.heads[a].tick < g.heads[b].tick
}

func (g *merger) heapPush(lane int32) {
	g.heap = append(g.heap, lane)
	i := len(g.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !g.heapLess(g.heap[i], g.heap[p]) {
			break
		}
		g.heap[i], g.heap[p] = g.heap[p], g.heap[i]
		i = p
	}
}

func (g *merger) heapPop() int32 {
	top := g.heap[0]
	last := len(g.heap) - 1
	g.heap[0] = g.heap[last]
	g.heap = g.heap[:last]
	i := 0
	for {
		min := i
		for c := 4*i + 1; c <= 4*i+4 && c < len(g.heap); c++ {
			if g.heapLess(g.heap[c], g.heap[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		g.heap[i], g.heap[min] = g.heap[min], g.heap[i]
		i = min
	}
	return top
}

package ism

// Merge-path property tests: the k-way frontier merge must be
// semantically invisible. A sharded ISM's output stream is required to
// be byte-identical to a single-lane run over the same injection
// sequence, and a crash-resume across the sharded merge must preserve
// exactly-once delivery per incarnation.
//
// Byte-identity holds for SISO lanes under serialized injection with a
// lossless policy: every lane's queue and ring are then tick-sorted,
// so the frontier rule makes the merger consume slots in global tick
// order — the same order a single lane produces — and the causal
// merger downstream is deterministic in its input sequence. (MISO's
// round-robin pop deliberately interleaves sources, so there the
// guarantee is causal validity, covered by TestShardedOrderedEquivalence.)

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/fault"
	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/tp"
	"prism/internal/rng"
	"prism/internal/trace"
)

// mergeTestBatch is one injected data message: a contiguous slice of a
// source's program-ordered stream, capture sequences in Logical.
type mergeTestBatch struct {
	node int32
	recs []trace.Record
}

// buildExecution builds a causally valid multi-source execution over
// the given node ids (ring of sends/recvs plus user events), cuts each
// source's stream into random-size batches, and shuffles the batch
// injection order — the network-level reordering the ordering layer
// exists to repair.
func buildExecution(st *rng.Stream, nodes []int32, rounds int) []mergeTestBatch {
	P := len(nodes)
	streams := make([][]trace.Record, P)
	add := func(i int, r trace.Record) {
		r.Node = nodes[i]
		r.Logical = uint64(len(streams[i])) // capture sequence
		streams[i] = append(streams[i], r)
	}
	for round := 0; round < rounds; round++ {
		for i := 0; i < P; i++ {
			add(i, trace.Record{Kind: trace.KindUser, Tag: uint16(round)})
			tag := uint16(round*P + i)
			add(i, trace.Record{Kind: trace.KindSend, Tag: tag, Payload: int64(nodes[(i+1)%P])})
		}
		for i := 0; i < P; i++ {
			tag := uint16(round*P + (i+P-1)%P)
			add(i, trace.Record{Kind: trace.KindRecv, Tag: tag, Payload: int64(nodes[(i+P-1)%P])})
		}
	}
	var batches []mergeTestBatch
	for i := 0; i < P; i++ {
		rest := streams[i]
		for len(rest) > 0 {
			n := 1 + st.Intn(4)
			if n > len(rest) {
				n = len(rest)
			}
			batches = append(batches, mergeTestBatch{node: nodes[i], recs: rest[:n]})
			rest = rest[n:]
		}
	}
	st.Shuffle(len(batches), func(a, b int) { batches[a], batches[b] = batches[b], batches[a] })
	return batches
}

// collidingNodes returns count node ids that all hash to shard 0 of a
// shards-way split — the worst-case skewed source→shard assignment.
func collidingNodes(count, shards int) []int32 {
	var out []int32
	for id := int32(1); len(out) < count; id++ {
		if uint32(id)*2654435761%uint32(shards) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// runMergeInput drives one ISM over the injection sequence and returns
// its dispatched stream.
func runMergeInput(t *testing.T, shards int, batches []mergeTestBatch) []trace.Record {
	t.Helper()
	var clock event.VirtualClock
	m := New(Config{
		Buffering: SISO,
		Ordered:   true,
		Overflow:  flow.Block,
		Shards:    shards,
		// A small ring forces the backpressure path to run too.
		MergeRingCapacity: 4,
	}, &clock)
	var mu sync.Mutex
	var got []trace.Record
	m.Subscribe("collect", func(r trace.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	for _, b := range batches {
		m.Inject(dataMsg(b.node, b.recs...))
	}
	m.Drain()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestMergeEquivalenceProperty(t *testing.T) {
	st := rng.New(777)
	total := func(batches []mergeTestBatch) int {
		n := 0
		for _, b := range batches {
			n += len(b.recs)
		}
		return n
	}
	for trial := 0; trial < 12; trial++ {
		shards := 2 + st.Intn(7) // 2..8
		sources := 2 + st.Intn(5)
		rounds := 1 + st.Intn(3)
		var nodes []int32
		skewed := trial%3 == 2
		if skewed {
			// All sources collide into one lane: the merge degenerates
			// to single-lane FIFO and must still match.
			nodes = collidingNodes(sources, shards)
		} else {
			for i := 0; i < sources; i++ {
				nodes = append(nodes, int32(st.Intn(1000)))
				for j := 0; j < i; j++ {
					if nodes[j] == nodes[i] {
						nodes[i]++ // keep ids distinct
						j = -1
					}
				}
			}
		}
		batches := buildExecution(st, nodes, rounds)
		want := runMergeInput(t, 1, batches)
		got := runMergeInput(t, shards, batches)
		if len(want) != total(batches) {
			t.Fatalf("trial %d: reference dispatched %d of %d", trial, len(want), total(batches))
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (shards=%d skewed=%v): dispatched %d, reference %d",
				trial, shards, skewed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (shards=%d skewed=%v): stream diverges at %d:\n sharded   %v\n reference %v",
					trial, shards, skewed, i, got[i], want[i])
			}
		}
		if err := trace.CheckCausal(got); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestCloseRacingInject pins the shutdown liveness of the merge path:
// an Inject racing Close has already raised its lane's pushed count,
// and if its stage push landed after that lane's final drain the batch
// would never settle — the merger then stalled forever on
// settled < pushed while another lane sat parked on a full ring, and
// Close deadlocked in its lane wait. Closing the input stages before
// stopping the lanes settles late pushes through the drop hook; this
// test hammers the window with tiny rings and concurrent injectors.
//
// InputCapacity is kept small so the Block policy parks the injectors
// once the stage fills: the watchdog then times a bounded drain and
// trips only on a genuine stall. With the default 1<<16 capacity the
// injectors bank tens of thousands of envelopes before Close's stage
// close lands, and on a single-CPU race-detector run draining that
// backlog against four spinning injectors can exceed any fixed
// timeout without any liveness bug. The small bound also covers the
// producer-parked-in-Push-at-close path the large default never hits.
func TestCloseRacingInject(t *testing.T) {
	deadline := time.Now().Add(60 * time.Second)
	for iter := 0; iter < 150 && time.Now().Before(deadline); iter++ {
		var clock event.VirtualClock
		m := New(Config{
			Buffering: MISO, Ordered: true, Overflow: flow.Block,
			Shards: 2, MergeRingCapacity: 2, InputCapacity: 64,
		}, &clock)
		m.Subscribe("sink", func(trace.Record) {})
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for n := 0; n < 4; n++ {
			wg.Add(1)
			go func(node int32) {
				defer wg.Done()
				for seq := uint64(0); ; seq++ {
					select {
					case <-stop:
						return
					default:
					}
					m.Inject(dataMsg(node, seqRec(node, trace.KindUser, 0, seq, 0)))
				}
			}(int32(n))
		}
		done := make(chan error, 1)
		go func() { done <- m.Close() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(20 * time.Second):
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("iter %d: Close deadlocked against concurrent Inject\n%s", iter, buf)
		}
		close(stop)
		wg.Wait()
	}
}

// ismIncarnation is one manager lifetime in the crash-resume test: a
// sharded ordered ISM fronted by a resilient-session receiver, with
// per-payload delivery accounting.
type ismIncarnation struct {
	m    *ISM
	recv *fault.Receiver

	mu    sync.Mutex
	seen  map[int64]int
	recs  []trace.Record
	conns []tp.Conn
}

func newIncarnation(resume bool) *ismIncarnation {
	var clock event.VirtualClock
	inc := &ismIncarnation{
		recv: fault.NewReceiver(fault.ReceiverConfig{AckEvery: 1}),
		seen: map[int64]int{},
	}
	inc.m = New(Config{
		Buffering:     MISO,
		Ordered:       true,
		Overflow:      flow.Block,
		Shards:        3,
		ResumeSources: resume,
	}, &clock)
	inc.m.Subscribe("account", func(r trace.Record) {
		inc.mu.Lock()
		inc.seen[r.Payload]++
		inc.recs = append(inc.recs, r)
		inc.mu.Unlock()
	})
	return inc
}

func (inc *ismIncarnation) attach(c tp.Conn) {
	inc.mu.Lock()
	inc.conns = append(inc.conns, c)
	inc.mu.Unlock()
	inc.m.ServeFiltered(c, inc.recv.Filter)
}

func (inc *ismIncarnation) delivered() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return len(inc.recs)
}

// crash severs every served connection and shuts the manager down —
// the previous incarnation's state dies with it.
func (inc *ismIncarnation) crash(t *testing.T) {
	inc.mu.Lock()
	conns := append([]tp.Conn(nil), inc.conns...)
	inc.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
	if err := inc.m.Close(); err != nil {
		t.Fatal(err)
	}
}

func waitDelivered(t *testing.T, inc *ismIncarnation, want int, what string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for inc.delivered() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s: delivered %d of %d", what, inc.delivered(), want)
		}
		time.Sleep(time.Millisecond)
	}
	inc.m.Drain()
}

// TestMergeCrashResumeExactlyOnce kills a sharded ordered ISM
// mid-stream and resumes against the same resilient sessions: the
// second incarnation's per-shard sequencers must adopt each source
// mid-stream (ResumeSources through the lane path) and deliver the
// second phase exactly once, with send-direction faults forcing
// session replay and batch reordering through the merge.
func TestMergeCrashResumeExactlyOnce(t *testing.T) {
	const (
		nodes    = 3
		batchesA = 30
		batchesB = 30
		perBatch = 6
	)
	payloadID := func(node int32, phase, batch, i int) int64 {
		return int64(node)*1_000_000 + int64(phase)*100_000 + int64(batch)*1_000 + int64(i)
	}

	inc1 := newIncarnation(false)
	inc2 := newIncarnation(true)
	var curMu sync.Mutex
	cur := inc1
	current := func() *ismIncarnation {
		curMu.Lock()
		defer curMu.Unlock()
		return cur
	}

	type nodeDriver struct {
		sess    *fault.Session
		ackDone chan struct{}
		seq     uint64
	}
	drivers := make([]*nodeDriver, nodes)
	for n := range drivers {
		node := int32(n)
		inj, err := fault.NewInjector(4200+uint64(n), fault.Plan{PDrop: 0.05, PDisconnect: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		rd, err := tp.NewRedial(tp.RedialConfig{
			Dial: func() (tp.Conn, error) {
				a, b := tp.Pipe(256)
				current().attach(b)
				return inj.WrapConn(a), nil
			},
			Backoff:    100 * time.Microsecond,
			MaxBackoff: 2 * time.Millisecond,
			Jitter:     0.2,
			Seed:       uint64(n),
		})
		if err != nil {
			t.Fatal(err)
		}
		d := &nodeDriver{sess: fault.NewSession(node, rd, fault.SessionConfig{Window: 64}), ackDone: make(chan struct{})}
		go func() {
			defer close(d.ackDone)
			for {
				if _, err := d.sess.Recv(); err != nil {
					return
				}
			}
		}()
		drivers[n] = d
	}

	drain := func(d *nodeDriver, node int32) {
		deadline := time.Now().Add(20 * time.Second)
		for d.sess.Pending() > 0 {
			if time.Now().After(deadline) {
				t.Fatalf("node %d: %d batches never acked", node, d.sess.Pending())
			}
			_ = d.sess.Resend()
			d.sess.WaitAcked(20 * time.Millisecond)
		}
	}
	batch0Seen := func(inc *ismIncarnation, node int32, phase int) bool {
		inc.mu.Lock()
		defer inc.mu.Unlock()
		for i := 0; i < perBatch; i++ {
			if inc.seen[payloadID(node, phase, 0, i)] == 0 {
				return false
			}
		}
		return true
	}
	sendPhase := func(phase, batches int) {
		for n, d := range drivers {
			node := int32(n)
			for b := 0; b < batches; b++ {
				rs := make([]trace.Record, perBatch)
				for i := range rs {
					rs[i] = trace.Record{
						Node: node, Kind: trace.KindUser,
						Logical: d.seq, Payload: payloadID(node, phase, b, i),
					}
					d.seq++
				}
				if err := d.sess.Send(tp.DataMessage(node, rs)); err != nil {
					t.Fatalf("node %d phase %d batch %d: %v", node, phase, b, err)
				}
				if b == 0 {
					// Quiesce the phase's first batch all the way to
					// delivery, not just to its ack: sequence adoption
					// (and phase-1 sequence zero) is established when the
					// lane's sequencer first *pops* a record for this
					// source, and MISO lanes pop round-robin across
					// connection queues — after a mid-blast redial a later
					// batch could reach the sequencer first and adoption
					// would drop batch 0 as duplicates. Delivery proves
					// adoption happened at batch 0; every later batch then
					// has a higher capture sequence and reordering is
					// gap-held, never dropped.
					drain(d, node)
					deadline := time.Now().Add(20 * time.Second)
					for !batch0Seen(current(), node, phase) {
						if time.Now().After(deadline) {
							t.Fatalf("node %d phase %d: first batch never delivered", node, phase)
						}
						time.Sleep(time.Millisecond)
					}
				}
			}
			drain(d, node)
		}
	}
	checkExactlyOnce := func(inc *ismIncarnation, phase, batches int, what string) {
		inc.mu.Lock()
		defer inc.mu.Unlock()
		missing, dup := 0, 0
		for n := 0; n < nodes; n++ {
			for b := 0; b < batches; b++ {
				for i := 0; i < perBatch; i++ {
					switch c := inc.seen[payloadID(int32(n), phase, b, i)]; {
					case c == 0:
						missing++
					case c > 1:
						dup++
					}
				}
			}
		}
		if missing != 0 || dup != 0 {
			t.Fatalf("%s: %d missing, %d duplicated of %d", what, missing, dup, nodes*batches*perBatch)
		}
		if err := trace.CheckCausal(inc.recs); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	}

	// Phase 1 into the first incarnation.
	sendPhase(1, batchesA)
	waitDelivered(t, inc1, nodes*batchesA*perBatch, "incarnation 1")
	checkExactlyOnce(inc1, 1, batchesA, "incarnation 1")

	// Crash mid-stream and point new dials at the successor.
	curMu.Lock()
	cur = inc2
	curMu.Unlock()
	inc1.crash(t)

	// Phase 2: the sessions redial, hello against a fresh receiver, and
	// continue mid-stream capture sequences into fresh sequencers.
	sendPhase(2, batchesB)
	waitDelivered(t, inc2, nodes*batchesB*perBatch, "incarnation 2")
	checkExactlyOnce(inc2, 2, batchesB, "incarnation 2")
	if got := inc2.delivered(); got != nodes*batchesB*perBatch {
		t.Fatalf("incarnation 2 delivered %d, want exactly %d (phase-1 records must not replay)", got, nodes*batchesB*perBatch)
	}
	if held := inc2.m.Stats().Held; held != 0 {
		t.Fatalf("incarnation 2 still holds %d records", held)
	}

	for n, d := range drivers {
		_ = d.sess.Close()
		select {
		case <-d.ackDone:
		case <-time.After(5 * time.Second):
			t.Fatalf("node %d ack loop stuck", n)
		}
	}
	if err := inc2.m.Close(); err != nil {
		t.Fatal(err)
	}
}

// Package ism implements the Instrumentation System Manager: "the LIS
// forwards instrumentation data from the concurrent system nodes to a
// logically centralized location called the Instrumentation System
// Manager, which manages the data in real-time. The functions of the
// ISM include temporary buffering of data, storing of data on a
// mass-storage device, and pre-processing of data for analysis and/or
// visualization tools (e.g., causal ordering)." (§2.2.2)
//
// The manager supports the two input-buffer configurations the Vista
// case study evaluates (§3.3.2): SISO (single input buffer shared by
// all sources) and MISO (one input buffer per source), a pluggable
// data processor performing causal ordering with logical timestamps,
// an output buffer dispatching to subscribed tools, and optional
// spooling to a trace file for off-line use.
//
// Ingest is sharded: each shard lane owns an input stage and a
// trace.Sequencer restoring per-source program order, and hands its
// ordered sub-stream through a bounded SPSC ring to one merger
// goroutine (merge.go) that k-way merges the lanes on their ingest-
// tick frontiers, applies cross-source causal ordering, and
// dispatches. There is no lock on the record hot path.
//
// The input stage is a bounded flow.Queue with a pluggable overflow
// policy (Config.Overflow); activity is reported through an
// ism-scoped metrics.Registry of which Stats() is a snapshot view.
package ism

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// Buffering selects the ISM input-buffer configuration.
type Buffering int

// Input-buffer configurations of §3.3.2.
const (
	// SISO uses a single input buffer for all sources ("Single
	// Input buffer, Single Output buffer").
	SISO Buffering = iota
	// MISO uses one input buffer per source ("Multiple Input
	// buffers, Single Output buffer"), the Falcon arrangement.
	MISO
)

// String returns the configuration mnemonic.
func (b Buffering) String() string {
	if b == SISO {
		return "SISO"
	}
	return "MISO"
}

// Config parameterizes an ISM.
type Config struct {
	// Buffering selects SISO or MISO input buffers.
	Buffering Buffering
	// InputCapacity bounds each input buffer in queued batch
	// envelopes (the unit of transfer is one LIS flush, not one
	// record). Zero means a generous default.
	InputCapacity int
	// Shards fans ingest out across N lanes, each with its own input
	// stage, sequencer and drain goroutine, with source-affinity
	// hashing: a given node always lands in the same shard, so
	// per-source FIFO order — the causal orderer's contract — is
	// preserved, while independent sources decode, stage and sequence
	// in parallel. The lanes' ordered sub-streams are k-way merged by
	// a dedicated merger goroutine before dispatch. Zero or one keeps
	// a single lane.
	Shards int
	// MergeRingCapacity bounds each lane's SPSC hand-off ring to the
	// merger, in batch slots (rounded up to a power of two). A full
	// ring backpressures the lane, which in turn backpressures the
	// input stage under its overflow policy. Zero means a generous
	// default.
	MergeRingCapacity int
	// Overflow selects what the input stage does when a buffer is
	// full. The zero value, flow.DropOldest, keeps the monitoring
	// default: displace stale backlog to admit fresh data. Block
	// applies backpressure to the LIS readers; SpillToStorage demotes
	// the displaced records to OverflowSpill.
	Overflow flow.OverflowPolicy
	// OverflowSpill receives records displaced under SpillToStorage
	// (e.g. an isruntime/storage.Hierarchy).
	OverflowSpill flow.Spill
	// Metrics, when non-nil, is the registry the ISM reports through
	// (under the "ism" scope). Nil gets a private registry.
	Metrics *metrics.Registry
	// Spool, when non-nil, receives every dispatched record in the
	// binary trace format (the off-line storage path of Figure 2).
	Spool io.Writer
	// Ordered enables the causal-ordering data processor. When
	// false, records are dispatched in arrival order (a pure
	// merge-only off-line ISM, as in the PICL Table 1 spec).
	Ordered bool
	// DeferCausal keeps the per-shard sequencers (program order per
	// source is restored exactly as under Ordered) but skips the
	// cross-source causal merge: dispatched records are restamped with
	// fresh per-source uplink sequence numbers in Logical (contiguous
	// from 0 per source) instead of Lamport timestamps. This is the
	// leaf half of the federated tier — a leaf's sends may pair with
	// receives captured on other leaves, so send/recv matching must
	// wait for the root relay; the restamp hands the relay's per-lane
	// sequencers the same per-source contract the LIS capture sequence
	// gives this manager, surviving dedup and resume adoption (the
	// restamped stream is always contiguous even when the input was
	// not). Ignored unless Ordered.
	DeferCausal bool
	// ResumeSources makes the ordered processor adopt a source's
	// first-seen capture sequence as its start instead of holding for
	// sequence zero — required when this manager can (re)start against
	// LIS nodes already mid-stream (the resilient session replays only
	// the unacked suffix; the prefix died with the previous
	// incarnation). Needs an in-order per-source feed, which the
	// session protocol provides. Ignored unless Ordered.
	ResumeSources bool
	// OutputCapacity, when positive, interposes a bounded output
	// buffer between the data processor and the tools (the "Single
	// Output buffer" of the SISO/MISO configurations, §3.3.2): a
	// dispatcher goroutine drains it, so slow tools exert
	// backpressure on the merger only when the buffer fills.
	// Zero keeps synchronous dispatch on the merger goroutine.
	OutputCapacity int
}

// Stats is a snapshot of ISM activity and performance, read from the
// ISM's metrics registry.
type Stats struct {
	Arrived       uint64  // records received from LISes
	Dispatched    uint64  // records delivered to the output buffer
	OutOfOrder    uint64  // arrivals that had to be held back
	Held          int     // currently held records
	MaxHeld       int     // maximum simultaneously held records
	HoldBackRatio float64 // OutOfOrder / Arrived (Falcon's metric, §3.3.2)
	MeanLatencyNs float64 // mean arrival->output-buffer latency
	MaxLatencyNs  int64
	ControlsSeen  uint64 // control messages processed
	// OutputQueued is the current output-buffer occupancy (0 with
	// synchronous dispatch).
	OutputQueued int
	// Delivered counts records handed to subscribers.
	Delivered uint64
	// InputDropped counts records lost to input-stage overflow.
	InputDropped uint64
	// InputSpilled counts records demoted to OverflowSpill.
	InputSpilled uint64
	// MergeStalls counts merger waits imposed by the frontier rule.
	MergeStalls uint64
}

// batchEnv is the unit flowing through the input stage: one data
// message's records (a whole LIS flush) plus its arrival timestamp and
// the global ingest tick the merger orders lanes by. The slice is
// always pool-owned by the time it enters a stage — pooled injections
// transfer ownership zero-copy, unpooled ones are copied into a pooled
// batch — and the merger recycles it after dispatch.
type batchEnv struct {
	node    int32
	recs    []trace.Record
	arrival int64
	tick    uint64
	pooled  bool
}

// ismCounters is the metric set the manager reports under the "ism"
// scope.
type ismCounters struct {
	arrived      *metrics.Counter
	dispatched   *metrics.Counter
	outOfOrder   *metrics.Counter
	controlsSeen *metrics.Counter
	delivered    *metrics.Counter
	held         *metrics.Gauge
	maxHeld      *metrics.Gauge
	latency      *metrics.Histogram
	reg          *metrics.Registry
}

func newISMCounters(reg *metrics.Registry) ismCounters {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := reg.Scope("ism")
	return ismCounters{
		arrived:      s.Counter("arrived"),
		dispatched:   s.Counter("dispatched"),
		outOfOrder:   s.Counter("out_of_order"),
		controlsSeen: s.Counter("controls_seen"),
		delivered:    s.Counter("delivered"),
		held:         s.Gauge("held"),
		maxHeld:      s.Gauge("max_held"),
		latency:      s.Histogram("latency_ns"),
		reg:          reg,
	}
}

// ismShard is one ingest lane: an input stage drained by its own
// goroutine, a per-lane sequencer restoring program order for the
// sources hashed to it, and an SPSC ring handing the ordered
// sub-stream to the merger. Source-affinity hashing keeps each node's
// batches in one lane, so per-source FIFO order survives the fan-out.
type ismShard struct {
	id    int
	input inputStage
	avail chan struct{}

	seq      *trace.Sequencer // nil unless Ordered
	lastHeld int              // last held count folded into the gauge

	ring  *flow.SPSC[mergeSlot]
	space chan struct{} // merger -> lane: a ring slot freed

	// pushedBatches counts batches bound for this lane, raised before
	// the batch's tick is drawn; settledBatches counts batches that
	// left the lane (sequenced, dropped or spilled). Equality means no
	// tick is outstanding — the merger's drained-lane test.
	pushedBatches  atomic.Uint64
	settledBatches atomic.Uint64
	// frontier is the highest tick the lane has finished sequencing
	// (monotone watermark).
	frontier atomic.Uint64
	// done flips when the lane goroutine exits: the stage is drained,
	// the ring holds its final contents, and any still-unsettled push
	// is a drop on the closed stage whose tick postdates every ring
	// slot.
	done atomic.Bool
	// ringRecs counts records pushed into the ring; with the merger's
	// merged counter it forms the Drain watermark.
	ringRecs atomic.Uint64

	ringGauge *metrics.Gauge
	lagGauge  *metrics.Gauge
}

func (s *ismShard) signal() {
	select {
	case s.avail <- struct{}{}:
	default:
	}
}

// signalSpace tells a lane blocked on a full ring that the merger
// freed a slot.
func (s *ismShard) signalSpace() {
	select {
	case s.space <- struct{}{}:
	default:
	}
}

// maxTick raises an atomic tick watermark monotonically.
func maxTick(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ISM is a running instrumentation system manager. Create with New,
// feed it by serving LIS connections (Serve) or direct injection
// (Inject), and consume via Subscribe or the spool.
type ISM struct {
	cfg   Config
	clock event.Clock
	ctr   ismCounters

	shards []*ismShard
	merge  *merger
	tick   atomic.Uint64 // global ingest tick, drawn per batch
	stop   chan struct{}
	runWG  sync.WaitGroup

	pushed    atomic.Uint64
	processed atomic.Uint64

	out       chan trace.Record
	outDone   chan struct{}
	outPushed atomic.Uint64

	mu        sync.Mutex
	subs      []subscriber
	spool     *trace.Writer
	closed    bool
	serveWG   sync.WaitGroup
	lisConns  []tp.Conn
	flushAcks chan struct{}
}

type subscriber struct {
	name  string
	fn    func(trace.Record)
	batch func([]trace.Record)
}

// New creates and starts an ISM. It panics on an invalid overflow
// policy (a configuration, not runtime, error).
func New(cfg Config, clock event.Clock) *ISM {
	if cfg.InputCapacity <= 0 {
		cfg.InputCapacity = 1 << 16
	}
	if cfg.MergeRingCapacity <= 0 {
		cfg.MergeRingCapacity = 256
	}
	if !cfg.Overflow.Valid() {
		panic(fmt.Sprintf("ism: invalid overflow policy %v", cfg.Overflow))
	}
	if clock == nil {
		clock = event.NewRealClock()
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	m := &ISM{
		cfg:   cfg,
		clock: clock,
		ctr:   newISMCounters(cfg.Metrics),
		stop:  make(chan struct{}),
	}
	scope := m.ctr.reg.Scope("ism")
	m.shards = make([]*ismShard, shards)
	for i := range m.shards {
		sh := &ismShard{
			id:    i,
			avail: make(chan struct{}, 1),
			ring:  flow.NewSPSC[mergeSlot](cfg.MergeRingCapacity),
			space: make(chan struct{}, 1),
		}
		// Dropped and spilled batches still settle, or the merger would
		// wait forever for their ticks. They advance the frontier too:
		// a lane absorbing a stream of drops (a lossy policy under
		// overload, or late injections against a closing stage) must
		// clear the frontier rule by watermark, not only by the drained
		// check — the drained check alone livelocks while drops are in
		// flight. Lossy policies carry no cross-lane determinism
		// contract, so the overshoot is harmless.
		settle := func(e batchEnv) {
			maxTick(&sh.frontier, e.tick)
			sh.settledBatches.Add(1)
			m.merge.signal()
		}
		if cfg.Buffering == SISO {
			sh.input = newSISOStage(cfg.InputCapacity, cfg.Overflow, cfg.OverflowSpill, settle)
		} else {
			sh.input = newMISOStage(cfg.InputCapacity, cfg.Overflow, cfg.OverflowSpill, settle)
		}
		if cfg.Ordered {
			sh.seq = trace.NewSequencer()
			if cfg.ResumeSources {
				sh.seq.Resume()
			}
		}
		ss := scope.Scope(fmt.Sprintf("shard%d", i))
		sh.ringGauge = ss.Gauge("ring_occupancy")
		sh.lagGauge = ss.Gauge("frontier_lag")
		m.shards[i] = sh
	}
	m.merge = newMerger(m)
	// Effective configuration, exposed so sweep results stay
	// attributable from a metrics snapshot alone.
	scope.Gauge("shards").Set(int64(shards))
	scope.Gauge("merge_ring_capacity").Set(int64(m.shards[0].ring.Cap()))
	if cfg.Spool != nil {
		m.spool = trace.NewWriter(cfg.Spool)
	}
	if cfg.OutputCapacity > 0 {
		m.out = make(chan trace.Record, cfg.OutputCapacity)
		m.outDone = make(chan struct{})
		go m.dispatchOutput()
	}
	go m.merge.run()
	m.runWG.Add(len(m.shards))
	for _, s := range m.shards {
		go m.runShard(s)
	}
	return m
}

// shardFor maps a source node to its ingest shard. The multiplicative
// hash spreads adjacent node ids across shards while keeping the
// mapping stable — the source-affinity invariant per-source FIFO
// depends on.
func (m *ISM) shardFor(node int32) *ismShard {
	if len(m.shards) == 1 {
		return m.shards[0]
	}
	h := uint32(node) * 2654435761 // Knuth multiplicative hash
	return m.shards[h%uint32(len(m.shards))]
}

// Metrics returns the registry the ISM reports through.
func (m *ISM) Metrics() *metrics.Registry { return m.ctr.reg }

// dispatchOutput drains the output buffer to the subscribed tools.
func (m *ISM) dispatchOutput() {
	defer close(m.outDone)
	for r := range m.out {
		m.emit(r)
	}
}

// emit hands one record to the spool and every subscriber.
func (m *ISM) emit(r trace.Record) {
	m.mu.Lock()
	spool := m.spool
	subs := m.subs
	m.mu.Unlock()
	if spool != nil {
		m.mu.Lock()
		_ = spool.Write(r)
		m.mu.Unlock()
	}
	for _, s := range subs {
		if s.batch != nil {
			one := [1]trace.Record{r}
			s.batch(one[:])
			continue
		}
		s.fn(r)
	}
	m.ctr.delivered.Inc()
}

// Subscribe registers a tool sink; every dispatched record is passed
// to fn in causal (or arrival) order on the merger goroutine.
// Subscribers must be registered before data flows for complete
// streams; late subscribers see only subsequent records.
func (m *ISM) Subscribe(name string, fn func(trace.Record)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, subscriber{name: name, fn: fn})
}

// SubscribeBatch registers a batch-granular tool sink: every dispatched
// batch is passed to fn as one slice, in dispatch order, on the merger
// goroutine (or in single-record slices on the dispatcher goroutine
// when an output buffer is configured). The slice is only valid for
// the duration of the call — the ISM recycles it into the batch pool
// afterwards — so sinks that keep records must copy. This is the
// uplink hook of the federated tier: forwarding a leaf's merged output
// batch-at-a-time keeps the wire path batch-granular end to end.
func (m *ISM) SubscribeBatch(name string, fn func([]trace.Record)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.subs = append(m.subs, subscriber{name: name, batch: fn})
}

// Serve reads messages from a LIS connection until EOF, feeding the
// input stage. It returns immediately; readers run on their own
// goroutines. The connection is remembered so Broadcast can reach it.
func (m *ISM) Serve(conn tp.Conn) { m.ServeFiltered(conn, nil) }

// ServeFiltered is Serve with a message filter interposed before the
// input stage. A filter returning true consumes the message (it never
// reaches Inject) — the hook the resilience layer uses to run its
// session protocol (hello/ack/dedup, fault.Receiver.Filter) in front
// of the manager without the ISM knowing the wire details. A nil
// filter is plain Serve.
func (m *ISM) ServeFiltered(conn tp.Conn, filter func(tp.Conn, tp.Message) bool) {
	m.mu.Lock()
	m.lisConns = append(m.lisConns, conn)
	m.mu.Unlock()
	m.serveWG.Add(1)
	go func() {
		defer m.serveWG.Done()
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			if filter != nil && filter(conn, msg) {
				continue
			}
			m.Inject(msg)
		}
	}()
}

// Broadcast sends a control signal to every served LIS connection —
// the ISM-to-LIS control path of Figure 2 (e.g. CtlFlush for a gang
// flush, CtlShutdown for orderly termination).
func (m *ISM) Broadcast(ctl tp.Control, arg int64) {
	m.mu.Lock()
	conns := append([]tp.Conn(nil), m.lisConns...)
	m.mu.Unlock()
	for _, c := range conns {
		_ = c.Send(tp.ControlMessage(-1, ctl, arg))
	}
}

// GangFlush broadcasts CtlFlush to every served LIS and waits (up to
// timeout) for each connection to acknowledge with CtlFlushDone — the
// ISM-coordinated FAOF sweep over the transfer protocol. It returns
// the number of acknowledgements received.
func (m *ISM) GangFlush(timeout time.Duration) int {
	m.mu.Lock()
	want := len(m.lisConns)
	m.flushAcks = make(chan struct{}, want)
	m.mu.Unlock()
	m.Broadcast(tp.CtlFlush, 0)
	got := 0
	deadline := time.After(timeout)
	for got < want {
		select {
		case <-m.flushAcks:
			got++
		case <-deadline:
			return got
		}
	}
	return got
}

// Inject feeds one message directly into the ISM (used by in-process
// deployments and tests). Pooled data messages transfer their record
// slice into the input stage zero-copy — the ISM takes over the
// batch's ownership chain and recycles after dispatch. Unpooled
// messages are copied into a pooled batch, so the caller retains its
// slice either way.
func (m *ISM) Inject(msg tp.Message) {
	switch msg.Type {
	case tp.MsgControl:
		m.ctr.controlsSeen.Inc()
		m.mu.Lock()
		acks := m.flushAcks
		m.mu.Unlock()
		if msg.Control == tp.CtlFlushDone && acks != nil {
			select {
			case acks <- struct{}{}:
			default:
			}
		}
	case tp.MsgData:
		n := len(msg.Records)
		if n == 0 {
			tp.Recycle(&msg)
			return
		}
		s := m.shardFor(msg.Node)
		// The batch must be visible in pushedBatches before its tick
		// is drawn: the merger reads settled==pushed as "no tick
		// outstanding", which must imply no smaller tick is still in
		// flight toward this lane.
		s.pushedBatches.Add(1)
		env := batchEnv{
			node:    msg.Node,
			arrival: m.clock.Now(),
			tick:    m.tick.Add(1),
			pooled:  true,
		}
		if msg.Pooled {
			env.recs = msg.Records
			msg.Records, msg.Pooled = nil, false // ownership moved
		} else {
			env.recs = flow.GetBatch(n)[:n]
			copy(env.recs, msg.Records)
		}
		m.pushed.Add(uint64(n))
		s.input.push(msg.Node, env)
		s.signal()
	}
}

// runShard drains one ingest lane through its sequencer into the
// merge ring.
func (m *ISM) runShard(s *ismShard) {
	defer m.runWG.Done()
	// Mark the lane done before releasing the wait: a merger parked on
	// this lane's settled count re-evaluates against the done flag
	// instead of chasing in-flight drops forever.
	defer func() {
		s.done.Store(true)
		m.merge.signal()
	}()
	for {
		env, ok := s.input.pop()
		if !ok {
			select {
			case <-s.avail:
				continue
			case <-m.stop:
				// Final drain.
				for {
					env, ok := s.input.pop()
					if !ok {
						return
					}
					m.sequenceBatch(s, env)
				}
			}
		}
		m.sequenceBatch(s, env)
	}
}

// sequenceBatch runs one batch envelope through the lane's sequencer
// and hands the program-ordered releases to the merger as one ring
// slot. The whole batch is sequenced in one pass — one batch-pool
// round trip, one ring push, one frontier update per LIS flush instead
// of per record. A full ring parks the lane on the space signal, which
// backpressures the input stage under its overflow policy.
func (m *ISM) sequenceBatch(s *ismShard, env batchEnv) {
	n := uint64(len(env.recs))
	m.ctr.arrived.Add(n)
	out, pooled := env.recs, env.pooled
	if s.seq != nil {
		buf := flow.GetBatch(len(env.recs))
		for _, r := range env.recs {
			// The sensor carried the capture sequence in Logical; the
			// merger reassigns Logical as a Lamport stamp on dispatch.
			seq := r.Logical
			r.Logical = 0
			prev := len(buf)
			buf = s.seq.AddTo(buf, r, seq)
			if len(buf) == prev {
				m.ctr.outOfOrder.Inc()
			}
		}
		if env.pooled {
			flow.PutBatch(env.recs)
		}
		// The held gauge sums per-lane and merger contributions;
		// publishing the delta keeps concurrent lanes from clobbering
		// each other's counts.
		if h := s.seq.Held(); h != s.lastHeld {
			m.ctr.held.Add(int64(h - s.lastHeld))
			s.lastHeld = h
			m.ctr.maxHeld.SetMax(m.ctr.held.Value())
		}
		out, pooled = buf, true
	}
	if len(out) > 0 {
		slot := mergeSlot{tick: env.tick, arrival: env.arrival, recs: out, pooled: pooled}
		for !s.ring.TryPush(slot) {
			<-s.space
		}
		s.ringRecs.Add(uint64(len(out)))
		s.ringGauge.Set(int64(s.ring.Len()))
	} else if pooled {
		flow.PutBatch(out)
	}
	// Settle order matters: the frontier must cover the tick before
	// the batch counts as settled, and processed moves last so the
	// Drain watermark implies the ring push above is visible.
	maxTick(&s.frontier, env.tick)
	s.settledBatches.Add(1)
	m.processed.Add(n)
	m.merge.signal()
}

// emitAll hands a dispatched batch to the output buffer or directly to
// the spool and subscribers. It runs on the merger goroutine — the
// single dispatch point behind the parallel lanes.
func (m *ISM) emitAll(rs []trace.Record) {
	if len(rs) == 0 {
		return
	}
	if m.out != nil {
		m.outPushed.Add(uint64(len(rs)))
		for _, r := range rs {
			m.out <- r // backpressure when the output buffer is full
		}
		return
	}
	m.mu.Lock()
	spool := m.spool
	subs := m.subs
	m.mu.Unlock()
	if spool != nil {
		m.mu.Lock()
		_ = spool.WriteAll(rs)
		m.mu.Unlock()
	}
	for _, s := range subs {
		if s.batch != nil {
			s.batch(rs)
		}
	}
	for _, r := range rs {
		for _, s := range subs {
			if s.fn != nil {
				s.fn(r)
			}
		}
	}
	m.ctr.delivered.Add(uint64(len(rs)))
}

// ShardCount reports the effective number of ingest lanes.
func (m *ISM) ShardCount() int { return len(m.shards) }

// MergeRingCap reports the effective per-lane merge ring capacity
// after the power-of-two rounding the ring applies.
func (m *ISM) MergeRingCap() int { return m.shards[0].ring.Cap() }

// Stats returns a snapshot of ISM statistics — a view over the
// metrics registry plus input-stage accounting.
func (m *ISM) Stats() Stats {
	st := Stats{
		Arrived:       m.ctr.arrived.Value(),
		Dispatched:    m.ctr.dispatched.Value(),
		OutOfOrder:    m.ctr.outOfOrder.Value(),
		Held:          int(m.ctr.held.Value()),
		MaxHeld:       int(m.ctr.maxHeld.Value()),
		MeanLatencyNs: m.ctr.latency.Mean(),
		MaxLatencyNs:  m.ctr.latency.Max(),
		ControlsSeen:  m.ctr.controlsSeen.Value(),
		Delivered:     m.ctr.delivered.Value(),
		InputDropped:  m.stageDropped(),
		InputSpilled:  m.stageSpilled(),
		MergeStalls:   m.merge.stalls.Value(),
	}
	if st.Arrived > 0 {
		st.HoldBackRatio = float64(st.OutOfOrder) / float64(st.Arrived)
	}
	if m.out != nil {
		st.OutputQueued = int(m.outPushed.Load() - st.Delivered)
	}
	return st
}

// stageDropped sums record-granular overflow losses across shards.
func (m *ISM) stageDropped() uint64 {
	var n uint64
	for _, s := range m.shards {
		n += s.input.dropped()
	}
	return n
}

// stageSpilled sums records demoted to spill storage across shards.
func (m *ISM) stageSpilled() uint64 {
	var n uint64
	for _, s := range m.shards {
		n += s.input.spilled()
	}
	return n
}

// ringRecsTotal sums records handed into the merge rings.
func (m *ISM) ringRecsTotal() uint64 {
	var n uint64
	for _, s := range m.shards {
		n += s.ringRecs.Load()
	}
	return n
}

// Drain blocks until every record injected so far has been processed
// and merged. It is a test and shutdown aid; production tools consume
// the live stream. Records injected concurrently with Drain may or may
// not be covered.
func (m *ISM) Drain() {
	target := m.pushed.Load()
	// Records displaced by input-stage overflow are never processed —
	// whether dropped or spilled to storage, they count against the
	// target or overload would hang Drain.
	for m.processed.Load()+m.stageDropped()+m.stageSpilled() < target {
		for _, s := range m.shards {
			s.signal()
		}
		time.Sleep(50 * time.Microsecond)
	}
	// Sequenced records sit in the SPSC rings until the merger consumes
	// them; every lane publishes its ring count before processed, so
	// the ring watermark is final once the loop above exits.
	ringTarget := m.ringRecsTotal()
	for m.merge.merged.Load() < ringTarget {
		m.merge.signal()
		time.Sleep(50 * time.Microsecond)
	}
	if m.out != nil {
		outTarget := m.outPushed.Load()
		for m.ctr.delivered.Value() < outTarget {
			time.Sleep(50 * time.Microsecond)
		}
	}
}

// Close stops the lanes after draining buffered input, lets the merger
// drain the rings, flushes the spool, and returns. Serve goroutines
// exit when their connections close (the caller owns the connections).
func (m *ISM) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	// The input stages must close BEFORE the lanes stop: an Inject racing
	// Close has already raised its lane's pushed count, and if its stage
	// push landed after that lane's final drain the batch would never
	// settle — the merger would then stall forever on settled < pushed
	// while another lane sits parked on a full ring, deadlocking the
	// runWG wait below. A closed stage rejects the late push as a drop,
	// and the drop hook settles the batch. Envelopes already queued
	// remain poppable, so the lanes' final drain still processes them.
	for _, s := range m.shards {
		s.input.close()
	}
	close(m.stop)
	m.runWG.Wait()
	// Lanes are done: every slot is in the rings. Stop the merger,
	// which final-drains them without the frontier rule.
	close(m.merge.stop)
	<-m.merge.done
	if m.out != nil {
		close(m.out)
		<-m.outDone
	}
	var err error
	m.mu.Lock()
	if m.spool != nil {
		err = m.spool.Flush()
	}
	m.mu.Unlock()
	// Records demoted to spill storage are part of the off-line record:
	// a spill target with buffered state (a storage.Hierarchy main
	// buffer, a Tiered hot window) is flushed so shutdown leaves every
	// demoted record durable, not parked in memory.
	if f, ok := m.cfg.OverflowSpill.(interface{ Flush() error }); ok {
		if ferr := f.Flush(); err == nil {
			err = ferr
		}
	}
	return err
}

package env

import (
	"bytes"
	"testing"
	"time"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/ism"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

func newISM(t *testing.T) *ism.ISM {
	t.Helper()
	var clock event.VirtualClock
	m := ism.New(ism.Config{Buffering: ism.SISO}, &clock)
	t.Cleanup(func() { m.Close() })
	return m
}

func inject(m *ism.ISM, rs ...trace.Record) {
	for i := range rs {
		rs[i].Logical = uint64(i)
	}
	m.Inject(tp.DataMessage(0, rs))
	m.Drain()
}

func TestAttachAndDuplicate(t *testing.T) {
	m := newISM(t)
	e := New(m)
	st := NewStatsTool("stats")
	if err := e.Attach(st); err != nil {
		t.Fatal(err)
	}
	if err := e.Attach(NewStatsTool("stats")); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := e.Attach(NewStatsTool("other")); err != nil {
		t.Fatal(err)
	}
	names := e.Tools()
	if len(names) != 2 || names[0] != "other" || names[1] != "stats" {
		t.Fatalf("tools %v", names)
	}
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceWriterTool(t *testing.T) {
	m := newISM(t)
	e := New(m)
	var buf bytes.Buffer
	tw := NewTraceWriter("trace", &buf)
	if err := e.Attach(tw); err != nil {
		t.Fatal(err)
	}
	inject(m,
		trace.Record{Node: 0, Kind: trace.KindUser, Tag: 1},
		trace.Record{Node: 0, Kind: trace.KindUser, Tag: 2},
	)
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
	if tw.Records() != 2 {
		t.Fatalf("wrote %d", tw.Records())
	}
	rs, err := trace.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[1].Tag != 2 {
		t.Fatalf("round trip %v", rs)
	}
}

func TestStatsTool(t *testing.T) {
	m := newISM(t)
	e := New(m)
	st := NewStatsTool("stats")
	if err := e.Attach(st); err != nil {
		t.Fatal(err)
	}
	inject(m,
		trace.Record{Node: 1, Kind: trace.KindSend, Tag: 1},
		trace.Record{Node: 1, Kind: trace.KindSend, Tag: 2},
		trace.Record{Node: 1, Kind: trace.KindSample, Tag: 7, Payload: 10},
		trace.Record{Node: 1, Kind: trace.KindSample, Tag: 7, Payload: 30},
	)
	if st.Count(1, trace.KindSend) != 2 {
		t.Fatalf("send count %d", st.Count(1, trace.KindSend))
	}
	if st.Count(2, trace.KindSend) != 0 {
		t.Fatal("phantom node count")
	}
	n, mean, min, max := st.MetricSummary(7)
	if n != 2 || mean != 20 || min != 10 || max != 30 {
		t.Fatalf("summary %d %v %d %d", n, mean, min, max)
	}
	if n, _, _, _ := st.MetricSummary(99); n != 0 {
		t.Fatal("phantom metric")
	}
}

func TestBottleneckTool(t *testing.T) {
	if _, err := NewBottleneckTool("b", nil, 0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	bt, err := NewBottleneckTool("bottleneck", map[uint16]float64{1: 50}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	m := newISM(t)
	e := New(m)
	if err := e.Attach(bt); err != nil {
		t.Fatal(err)
	}
	// Node 0 metric 1 persistently high; node 1 low; metric 2 unwatched.
	var rs []trace.Record
	for i := 0; i < 5; i++ {
		rs = append(rs,
			trace.Record{Node: 0, Kind: trace.KindSample, Tag: 1, Payload: 100},
			trace.Record{Node: 1, Kind: trace.KindSample, Tag: 1, Payload: 5},
			trace.Record{Node: 0, Kind: trace.KindSample, Tag: 2, Payload: 1000},
		)
	}
	inject(m, rs...)
	hyps := bt.Hypotheses(3)
	if len(hyps) != 1 {
		t.Fatalf("hypotheses %v", hyps)
	}
	h := hyps[0]
	if h.Node != 0 || h.Metric != 1 || h.Hits < 3 || h.Value <= 50 {
		t.Fatalf("hypothesis %+v", h)
	}
	// A dip below threshold resets the streak.
	inject(m, trace.Record{Node: 0, Kind: trace.KindSample, Tag: 1, Payload: -1000})
	if got := bt.Hypotheses(1); len(got) != 0 {
		t.Fatalf("streak not reset: %v", got)
	}
}

func TestAnimationFeed(t *testing.T) {
	feed := NewAnimationFeed("anim", 2)
	feed.Consume(trace.Record{Tag: 1})
	feed.Consume(trace.Record{Tag: 2})
	feed.Consume(trace.Record{Tag: 3}) // dropped
	if feed.Dropped() != 1 {
		t.Fatalf("dropped %d", feed.Dropped())
	}
	if err := feed.Finish(); err != nil {
		t.Fatal(err)
	}
	var got []uint16
	for r := range feed.Frames() {
		got = append(got, r.Tag)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("frames %v", got)
	}
	if NewAnimationFeed("x", 0) == nil {
		t.Fatal("zero capacity should clamp")
	}
}

func TestEndToEndPipeline(t *testing.T) {
	// Sensor -> forwarding conn -> ISM -> environment tools.
	var clock event.VirtualClock
	m := ism.New(ism.Config{Buffering: ism.MISO, Ordered: true}, &clock)
	defer m.Close()
	e := New(m)
	st := NewStatsTool("stats")
	if err := e.Attach(st); err != nil {
		t.Fatal(err)
	}

	lisSide, ismSide := tp.Pipe(64)
	m.Serve(ismSide)
	sensor := event.NewSensor(0, 0, &clock, event.SinkFunc(func(r trace.Record) {
		_ = lisSide.Send(tp.DataMessage(r.Node, []trace.Record{r}))
	}))
	for i := 0; i < 20; i++ {
		clock.Advance(1000)
		sensor.User(uint16(i), 0)
	}
	// Wait for all 20 to arrive through the pipe and be processed.
	deadline := time.After(2 * time.Second)
	for st.Count(0, trace.KindUser) < 20 {
		select {
		case <-deadline:
			t.Fatalf("timed out at %d records", st.Count(0, trace.KindUser))
		default:
			time.Sleep(time.Millisecond)
			m.Drain()
		}
	}
	if got := st.Count(0, trace.KindUser); got != 20 {
		t.Fatalf("end-to-end count %d", got)
	}
	lisSide.Close()
}

package env

import (
	"errors"
	"sync"

	"prism/internal/trace"
)

// SteeringTool is a program-steering consumer in the Falcon mould
// ("on-line monitoring and steering system for parallel programs",
// §4): it watches one sampled metric with exponential smoothing and
// drives an actuator when the smoothed value crosses a high watermark,
// releasing it again below a low watermark (hysteresis, so the
// actuator does not flap). The actuator typically tightens an
// application knob or sends a control message back through the ISM —
// the §2.2.3 control path "to control program execution as dictated by
// debugging and steering tools".
type SteeringTool struct {
	name   string
	metric uint16
	high   float64
	low    float64
	alpha  float64
	onHigh func(node int32, smoothed float64)
	onLow  func(node int32, smoothed float64)

	mu      sync.Mutex
	ewma    map[int32]float64
	seen    map[int32]bool
	engaged map[int32]bool
	actions uint64
}

// NewSteeringTool creates a steering tool. onHigh fires when a node's
// smoothed metric rises above high; onLow fires when an engaged node
// falls back below low. Either callback may be nil.
func NewSteeringTool(name string, metric uint16, high, low, alpha float64,
	onHigh, onLow func(node int32, smoothed float64)) (*SteeringTool, error) {
	if high <= low {
		return nil, errors.New("env: steering needs high > low watermark")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, errors.New("env: alpha must be in (0,1]")
	}
	return &SteeringTool{
		name: name, metric: metric, high: high, low: low, alpha: alpha,
		onHigh: onHigh, onLow: onLow,
		ewma: map[int32]float64{}, seen: map[int32]bool{}, engaged: map[int32]bool{},
	}, nil
}

// Name implements Tool.
func (t *SteeringTool) Name() string { return t.name }

// Consume implements Tool.
func (t *SteeringTool) Consume(r trace.Record) {
	if r.Kind != trace.KindSample || r.Tag != t.metric {
		return
	}
	t.mu.Lock()
	prev := t.ewma[r.Node]
	if !t.seen[r.Node] {
		prev = float64(r.Payload)
		t.seen[r.Node] = true
	}
	s := t.alpha*float64(r.Payload) + (1-t.alpha)*prev
	t.ewma[r.Node] = s
	var fire func(int32, float64)
	switch {
	case !t.engaged[r.Node] && s > t.high:
		t.engaged[r.Node] = true
		t.actions++
		fire = t.onHigh
	case t.engaged[r.Node] && s < t.low:
		t.engaged[r.Node] = false
		t.actions++
		fire = t.onLow
	}
	node := r.Node
	t.mu.Unlock()
	if fire != nil {
		fire(node, s)
	}
}

// Engaged reports whether the actuator is currently engaged for node.
func (t *SteeringTool) Engaged(node int32) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.engaged[node]
}

// Smoothed returns the current smoothed metric value for node.
func (t *SteeringTool) Smoothed(node int32) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ewma[node]
}

// Actions returns the total number of steering transitions fired.
func (t *SteeringTool) Actions() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.actions
}

// Finish implements Tool.
func (t *SteeringTool) Finish() error { return nil }

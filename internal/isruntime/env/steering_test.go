package env

import (
	"sync"
	"testing"

	"prism/internal/trace"
)

func sample(node int32, metric uint16, v int64) trace.Record {
	return trace.Record{Node: node, Kind: trace.KindSample, Tag: metric, Payload: v}
}

func TestSteeringValidation(t *testing.T) {
	if _, err := NewSteeringTool("s", 1, 5, 10, 0.5, nil, nil); err == nil {
		t.Fatal("high <= low accepted")
	}
	if _, err := NewSteeringTool("s", 1, 10, 5, 0, nil, nil); err == nil {
		t.Fatal("alpha 0 accepted")
	}
}

func TestSteeringHysteresis(t *testing.T) {
	var mu sync.Mutex
	var events []string
	onHigh := func(node int32, v float64) {
		mu.Lock()
		events = append(events, "high")
		mu.Unlock()
	}
	onLow := func(node int32, v float64) {
		mu.Lock()
		events = append(events, "low")
		mu.Unlock()
	}
	st, err := NewSteeringTool("steer", 7, 50, 20, 1.0, onHigh, onLow)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name() != "steer" {
		t.Fatal("name")
	}
	// Rise above high: engage once.
	st.Consume(sample(0, 7, 60))
	st.Consume(sample(0, 7, 70)) // still high: no second fire
	if !st.Engaged(0) {
		t.Fatal("not engaged")
	}
	// In the dead band (between low and high): stays engaged.
	st.Consume(sample(0, 7, 30))
	if !st.Engaged(0) {
		t.Fatal("disengaged in dead band")
	}
	// Below low: release once.
	st.Consume(sample(0, 7, 10))
	st.Consume(sample(0, 7, 5))
	if st.Engaged(0) {
		t.Fatal("still engaged")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || events[0] != "high" || events[1] != "low" {
		t.Fatalf("events %v", events)
	}
	if st.Actions() != 2 {
		t.Fatalf("actions %d", st.Actions())
	}
}

func TestSteeringPerNodeState(t *testing.T) {
	st, err := NewSteeringTool("steer", 1, 50, 20, 1.0, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	st.Consume(sample(0, 1, 100))
	st.Consume(sample(1, 1, 10))
	if !st.Engaged(0) || st.Engaged(1) {
		t.Fatal("per-node state crossed")
	}
	if st.Smoothed(0) != 100 || st.Smoothed(1) != 10 {
		t.Fatalf("smoothed %v %v", st.Smoothed(0), st.Smoothed(1))
	}
}

func TestSteeringIgnoresOtherRecords(t *testing.T) {
	st, _ := NewSteeringTool("steer", 1, 50, 20, 1.0, nil, nil)
	st.Consume(trace.Record{Node: 0, Kind: trace.KindUser, Tag: 1, Payload: 1000})
	st.Consume(sample(0, 2, 1000)) // wrong metric
	if st.Engaged(0) || st.Actions() != 0 {
		t.Fatal("reacted to irrelevant records")
	}
	if err := st.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestSteeringSmoothingDamps(t *testing.T) {
	// With small alpha, one spike must not engage.
	st, _ := NewSteeringTool("steer", 1, 50, 20, 0.1, nil, nil)
	st.Consume(sample(0, 1, 10)) // seed EWMA at 10
	st.Consume(sample(0, 1, 350))
	if st.Engaged(0) {
		t.Fatalf("single spike engaged actuator (smoothed %v)", st.Smoothed(0))
	}
	// Persistent load eventually engages.
	for i := 0; i < 50; i++ {
		st.Consume(sample(0, 1, 350))
	}
	if !st.Engaged(0) {
		t.Fatal("persistent load never engaged")
	}
}

// TestSteeringClosedLoopWithISM wires the steering tool into a live
// environment: the actuator throttles the synthetic "application",
// whose metric then falls, releasing the actuator — one full steering
// cycle through the IS.
func TestSteeringClosedLoopWithISM(t *testing.T) {
	m := newISM(t)
	e := New(m)
	var mu sync.Mutex
	throttled := false
	st, err := NewSteeringTool("steer", 3, 40, 15, 1.0,
		func(int32, float64) { mu.Lock(); throttled = true; mu.Unlock() },
		func(int32, float64) { mu.Lock(); throttled = false; mu.Unlock() })
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Attach(st); err != nil {
		t.Fatal(err)
	}
	load := int64(10)
	for step := 0; step < 100; step++ {
		mu.Lock()
		isThrottled := throttled
		mu.Unlock()
		if isThrottled {
			load -= 5 // the steering action works
		} else {
			load += 3 // unthrottled load climbs
		}
		if load < 0 {
			load = 0
		}
		inject(m, sample(0, 3, load))
	}
	if st.Actions() < 2 {
		t.Fatalf("closed loop never cycled: %d actions", st.Actions())
	}
}

package env

// Steering across a mid-run disconnect: the §2.2.3 control loop only
// steers correctly if the sample stream it smooths is neither lossy
// nor duplicated, so this test runs a SteeringTool behind the full
// resilient pipeline — session/replay sender, reconnecting transport,
// ISM-side dedup — kills the connection mid-run, and asserts the
// steering state machine ends exactly where an undisturbed run would.

import (
	"sync"
	"testing"
	"time"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/fault"
	"prism/internal/isruntime/ism"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSteeringSurvivesMidRunDisconnect(t *testing.T) {
	var clock event.VirtualClock
	m := ism.New(ism.Config{Buffering: ism.SISO}, &clock)
	defer m.Close()
	e := New(m)
	st, err := NewSteeringTool("steer", 7, 80, 20, 0.5, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Attach(st); err != nil {
		t.Fatal(err)
	}

	recv := fault.NewReceiver(fault.ReceiverConfig{})
	serveCh := make(chan tp.Conn, 8)
	dispatchDone := make(chan struct{})
	go func() {
		defer close(dispatchDone)
		for c := range serveCh {
			m.ServeFiltered(c, recv.Filter)
		}
	}()

	// Each dial is a fresh in-process pipe whose server end the ISM
	// serves; lastSrv lets the test cut the live connection.
	var mu sync.Mutex
	var lastSrv tp.Conn
	rd, err := tp.NewRedial(tp.RedialConfig{
		Dial: func() (tp.Conn, error) {
			a, b := tp.Pipe(128)
			mu.Lock()
			lastSrv = b
			mu.Unlock()
			serveCh <- b
			return a, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := fault.NewSession(5, rd, fault.SessionConfig{})
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			if _, err := sess.Recv(); err != nil {
				return
			}
		}
	}()

	sent := 0
	send := func(vals ...int64) {
		t.Helper()
		for _, v := range vals {
			r := trace.Record{Node: 5, Kind: trace.KindSample, Tag: 7, Payload: v,
				Logical: uint64(sent)}
			if err := sess.Send(tp.DataMessage(5, []trace.Record{r})); err != nil {
				t.Fatalf("send: %v", err)
			}
			sent++
		}
	}

	// Drive the smoothed metric over the high watermark: engage.
	send(100, 100, 100)
	waitUntil(t, "steering to engage", func() bool { return st.Engaged(5) })

	// Network fault mid-run: cut the live connection under the sender.
	mu.Lock()
	_ = lastSrv.Close()
	mu.Unlock()

	// Keep steering through the outage: the session absorbs the send
	// failure, redials, replays, and the receiver dedupes — so the
	// EWMA sees each sample exactly once, in order, and the tool
	// disengages exactly as it would on a healthy connection.
	send(0, 0, 0, 0, 0, 0)
	waitUntil(t, "window to drain", func() bool {
		if sess.Pending() == 0 {
			return true
		}
		_ = sess.Resend()
		return false
	})
	waitUntil(t, "all records dispatched", func() bool {
		return int(m.Stats().Dispatched) == sent
	})
	m.Drain()

	if st.Engaged(5) {
		t.Fatal("steering still engaged after low samples crossed the watermark")
	}
	if got := st.Actions(); got != 2 {
		t.Fatalf("steering actions = %d, want exactly 2 (engage, release) despite disconnect", got)
	}
	if got := int(m.Stats().Dispatched); got != sent {
		t.Fatalf("ISM dispatched %d records, want exactly %d (no loss, no dups)", got, sent)
	}
	if rd.Redials() == 0 {
		t.Fatal("disconnect never exercised the redial path")
	}

	_ = sess.Close()
	<-ackDone
	close(serveCh)
	<-dispatchDone
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}
}

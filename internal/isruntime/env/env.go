// Package env implements the integrated parallel tool environment of
// §2.3: "an integrated parallel tool environment supports the use of
// multiple, possibly heterogeneous, tools that cooperate for carrying
// out one or more analyses of the same parallel program."
//
// The Environment wires an ISM to a set of Tools and carries the
// control-signal traffic between them ("data transfer to the tools is
// typically accompanied by an exchange of control signals between the
// ISM and a tool", §2.2.3). Four concrete tools cover the tool classes
// Malony's taxonomy lists (§2.3): a trace writer (trace-based), a
// statistics tool (profile-based), a bottleneck searcher (automated),
// and an animation feed (visualization).
package env

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"prism/internal/isruntime/ism"
	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

// Tool is an analysis/visualization consumer of instrumentation data.
type Tool interface {
	// Name identifies the tool in the environment.
	Name() string
	// Consume receives one record in dispatch order. It runs on the
	// ISM processor goroutine and must be quick; heavyweight tools
	// should queue internally.
	Consume(trace.Record)
	// Finish tells the tool no more data will arrive.
	Finish() error
}

// Option configures an Environment at construction time.
type Option func(*Environment)

// WithMetrics counts per-tool consumption through the given registry:
// each attached tool gets an env.<name>.consumed counter.
func WithMetrics(reg *metrics.Registry) Option {
	return func(e *Environment) { e.reg = reg }
}

// Environment binds tools to an ISM.
type Environment struct {
	ism *ism.ISM
	reg *metrics.Registry

	mu    sync.Mutex
	tools map[string]Tool
}

// New creates an environment around a running ISM.
func New(m *ism.ISM, opts ...Option) *Environment {
	e := &Environment{ism: m, tools: map[string]Tool{}}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Attach registers a tool and subscribes it to the ISM stream.
// Attaching two tools with one name is an error.
func (e *Environment) Attach(t Tool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.tools[t.Name()]; dup {
		return fmt.Errorf("env: duplicate tool %q", t.Name())
	}
	e.tools[t.Name()] = t
	consume := t.Consume
	if e.reg != nil {
		consumed := e.reg.Scope("env").Scope(t.Name()).Counter("consumed")
		consume = func(r trace.Record) {
			consumed.Inc()
			t.Consume(r)
		}
	}
	e.ism.Subscribe(t.Name(), consume)
	return nil
}

// Tools returns the attached tool names, sorted.
func (e *Environment) Tools() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.tools))
	for n := range e.tools {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Finish finishes every tool, collecting the first error.
func (e *Environment) Finish() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var first error
	for _, t := range e.tools {
		if err := t.Finish(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TraceWriter is a trace-based off-line tool: it spools every record
// to a binary trace stream (the ParaGraph-feeding path of §3.1).
type TraceWriter struct {
	name string
	mu   sync.Mutex
	w    *trace.Writer
	n    int
}

// NewTraceWriter creates a trace writer tool writing to w.
func NewTraceWriter(name string, w io.Writer) *TraceWriter {
	return &TraceWriter{name: name, w: trace.NewWriter(w)}
}

// Name implements Tool.
func (t *TraceWriter) Name() string { return t.name }

// Consume implements Tool.
func (t *TraceWriter) Consume(r trace.Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	_ = t.w.Write(r)
	t.n++
}

// Records returns the number of records written.
func (t *TraceWriter) Records() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Finish implements Tool.
func (t *TraceWriter) Finish() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.w.Flush()
}

// StatsTool is a profile-based tool: per (node, kind) event counts and
// per-metric sample summaries.
type StatsTool struct {
	name string

	mu      sync.Mutex
	counts  map[statKey]uint64
	samples map[uint16]*metricAgg
}

type statKey struct {
	Node int32
	Kind trace.Kind
}

type metricAgg struct {
	n          uint64
	sum        float64
	min, max   int64
	haveMinMax bool
}

// NewStatsTool creates a statistics tool.
func NewStatsTool(name string) *StatsTool {
	return &StatsTool{name: name, counts: map[statKey]uint64{}, samples: map[uint16]*metricAgg{}}
}

// Name implements Tool.
func (t *StatsTool) Name() string { return t.name }

// Consume implements Tool.
func (t *StatsTool) Consume(r trace.Record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[statKey{r.Node, r.Kind}]++
	if r.Kind == trace.KindSample {
		a := t.samples[r.Tag]
		if a == nil {
			a = &metricAgg{}
			t.samples[r.Tag] = a
		}
		a.n++
		a.sum += float64(r.Payload)
		if !a.haveMinMax || r.Payload < a.min {
			a.min = r.Payload
		}
		if !a.haveMinMax || r.Payload > a.max {
			a.max = r.Payload
		}
		a.haveMinMax = true
	}
}

// Count returns the number of records of the given kind seen from the
// given node.
func (t *StatsTool) Count(node int32, kind trace.Kind) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[statKey{node, kind}]
}

// MetricSummary returns (n, mean, min, max) for a sampled metric.
func (t *StatsTool) MetricSummary(metric uint16) (n uint64, mean float64, min, max int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.samples[metric]
	if a == nil || a.n == 0 {
		return 0, 0, 0, 0
	}
	return a.n, a.sum / float64(a.n), a.min, a.max
}

// Finish implements Tool.
func (t *StatsTool) Finish() error { return nil }

// BottleneckTool is a minimal automated-analysis tool in the spirit of
// Paradyn's W3 search (§3.2): it watches sampled metrics against
// thresholds and records hypotheses ("metric m on node n exceeds its
// threshold") with simple exponential smoothing.
type BottleneckTool struct {
	name      string
	threshold map[uint16]float64
	alpha     float64

	mu    sync.Mutex
	ewma  map[bnKey]float64
	hits  map[bnKey]uint64
	total uint64
}

type bnKey struct {
	Node   int32
	Metric uint16
}

// Hypothesis is a bottleneck finding.
type Hypothesis struct {
	Node   int32
	Metric uint16
	Value  float64 // smoothed metric value at detection
	Hits   uint64  // consecutive confirmations
}

// NewBottleneckTool creates a bottleneck searcher. thresholds maps
// metric id to the smoothed-value threshold that flags a bottleneck;
// alpha in (0,1] is the EWMA smoothing weight.
func NewBottleneckTool(name string, thresholds map[uint16]float64, alpha float64) (*BottleneckTool, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, errors.New("env: alpha must be in (0,1]")
	}
	th := make(map[uint16]float64, len(thresholds))
	for k, v := range thresholds {
		th[k] = v
	}
	return &BottleneckTool{
		name: name, threshold: th, alpha: alpha,
		ewma: map[bnKey]float64{}, hits: map[bnKey]uint64{},
	}, nil
}

// Name implements Tool.
func (t *BottleneckTool) Name() string { return t.name }

// Consume implements Tool.
func (t *BottleneckTool) Consume(r trace.Record) {
	if r.Kind != trace.KindSample {
		return
	}
	th, watched := t.threshold[r.Tag]
	if !watched {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := bnKey{r.Node, r.Tag}
	prev, seen := t.ewma[key]
	v := float64(r.Payload)
	if !seen {
		prev = v
	}
	s := t.alpha*v + (1-t.alpha)*prev
	t.ewma[key] = s
	if s > th {
		t.hits[key]++
		t.total++
	} else {
		t.hits[key] = 0
	}
}

// Hypotheses returns current findings with at least minHits
// consecutive confirmations, ordered by (node, metric).
func (t *BottleneckTool) Hypotheses(minHits uint64) []Hypothesis {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Hypothesis
	for key, hits := range t.hits {
		if hits >= minHits && minHits > 0 {
			out = append(out, Hypothesis{Node: key.Node, Metric: key.Metric, Value: t.ewma[key], Hits: hits})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// Finish implements Tool.
func (t *BottleneckTool) Finish() error { return nil }

// AnimationFeed is a visualization-class tool: it forwards records to
// a bounded feed channel, dropping (and counting) when the consumer
// lags — the behaviour of a display that favors liveness over
// completeness.
type AnimationFeed struct {
	name string
	ch   chan trace.Record

	mu      sync.Mutex
	dropped uint64
}

// NewAnimationFeed creates a feed with the given channel capacity.
func NewAnimationFeed(name string, capacity int) *AnimationFeed {
	if capacity < 1 {
		capacity = 1
	}
	return &AnimationFeed{name: name, ch: make(chan trace.Record, capacity)}
}

// Name implements Tool.
func (t *AnimationFeed) Name() string { return t.name }

// Consume implements Tool.
func (t *AnimationFeed) Consume(r trace.Record) {
	select {
	case t.ch <- r:
	default:
		t.mu.Lock()
		t.dropped++
		t.mu.Unlock()
	}
}

// Frames returns the consumer side of the feed.
func (t *AnimationFeed) Frames() <-chan trace.Record { return t.ch }

// Dropped returns how many frames were discarded because the consumer
// lagged.
func (t *AnimationFeed) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Finish implements Tool; it closes the feed.
func (t *AnimationFeed) Finish() error {
	close(t.ch)
	return nil
}

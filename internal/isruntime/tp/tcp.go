package tp

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

// ConnOption configures a stream connection (timeouts, metrics, wire
// encoding policy).
type ConnOption func(*connOptions)

type connOptions struct {
	readTimeout  time.Duration
	writeTimeout time.Duration
	registry     *metrics.Registry
	wireMode     WireMode
}

// WithReadTimeout bounds each Recv: a peer that stops sending for
// longer than d causes Recv to fail with a timeout error instead of
// wedging the reader forever.
func WithReadTimeout(d time.Duration) ConnOption {
	return func(o *connOptions) { o.readTimeout = d }
}

// WithWriteTimeout bounds each Send: a peer that stops draining causes
// Send to fail with a timeout error instead of blocking the LIS.
func WithWriteTimeout(d time.Duration) ConnOption {
	return func(o *connOptions) { o.writeTimeout = d }
}

// WithConnMetrics reports transport activity (tp.msgs_sent,
// tp.bytes_tx, tp.recs_tx, tp.msgs_recv, tp.bytes_rx, tp.recs_rx,
// tp.send_errors) through the given registry. The byte counters record
// actual encoded wire bytes, so bytes_tx/recs_tx is the live
// per-record wire footprint — the observable compression ratio of the
// columnar encoding.
func WithConnMetrics(reg *metrics.Registry) ConnOption {
	return func(o *connOptions) { o.registry = reg }
}

// connMetrics is the per-connection counter set under the tp scope.
type connMetrics struct {
	msgsSent, bytesSent, recsSent *metrics.Counter
	msgsRecv, bytesRecv, recsRecv *metrics.Counter
	sendErrors                    *metrics.Counter
}

func newConnMetrics(reg *metrics.Registry) *connMetrics {
	if reg == nil {
		return nil
	}
	s := reg.Scope("tp")
	return &connMetrics{
		msgsSent: s.Counter("msgs_sent"), bytesSent: s.Counter("bytes_tx"),
		recsSent: s.Counter("recs_tx"),
		msgsRecv: s.Counter("msgs_recv"), bytesRecv: s.Counter("bytes_rx"),
		recsRecv:   s.Counter("recs_rx"),
		sendErrors: s.Counter("send_errors"),
	}
}

// TCP transport: the socket-based TP variant. A streamConn adapts a
// net.Conn to the Conn interface with buffered framing. Writes are
// serialized with a mutex so multiple producer goroutines can share
// one connection; reads are expected from a single consumer (the usual
// LIS->ISM arrangement).
type streamConn struct {
	nc   net.Conn
	r    *bufio.Reader
	opts connOptions
	m    *connMetrics

	// peerColumnar flips once the peer's capability advert arrives on
	// the Recv side; it gates whether data frames are sent columnar.
	peerColumnar atomic.Bool
	// recvState arbitrates ownership of the read side (c.r) between
	// Recv and Close's pre-close drain: 0 = untouched, 1 = a Recv has
	// run (Close must leave c.r alone), 2 = Close claimed it for the
	// drain (a late first Recv fails with net.ErrClosed instead of
	// racing the drain). Both transitions are one-way CASes from 0.
	recvState atomic.Int32

	wmu          sync.Mutex
	w            *bufio.Writer
	advertQueued bool              // capability advert written into w
	codec        trace.ColumnCodec // columnar encode scratch, under wmu

	closeOnce sync.Once
	closeErr  error
}

// NewStreamConn wraps a net.Conn (or any equivalent) as a message
// Conn.
func NewStreamConn(nc net.Conn, opts ...ConnOption) Conn {
	var o connOptions
	for _, opt := range opts {
		opt(&o)
	}
	return &streamConn{
		nc:   nc,
		r:    bufio.NewReaderSize(nc, 64<<10),
		w:    bufio.NewWriterSize(nc, 64<<10),
		opts: o,
		m:    newConnMetrics(o.registry),
	}
}

// ColumnarActive implements ColumnarSender: data frames toward the
// peer currently travel columnar-encoded.
func (c *streamConn) ColumnarActive() bool {
	return c.opts.wireMode != WireFlat && c.peerColumnar.Load()
}

// queueAdvertLocked writes the columnar capability advert into the
// write buffer once, ahead of the first frame. It is not flushed on
// its own: on the dial side it piggybacks on the first frame's flush,
// which avoids a blocking rendezvous against in-memory net.Conns whose
// peer is not reading yet.
func (c *streamConn) queueAdvertLocked() error {
	if c.advertQueued || c.opts.wireMode == WireFlat {
		return nil
	}
	c.advertQueued = true
	return WriteMessage(c.w, ControlMessage(0, CtlHello, capsHelloArg))
}

// Advertise queues the capability advert and flushes it immediately.
// Listeners call it on accept: a pure-receiver endpoint never sends a
// frame of its own, so a piggybacked advert would never reach the
// sending peer and every inbound frame would stay flat.
func (c *streamConn) Advertise() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.queueAdvertLocked(); err != nil {
		return Classify(err)
	}
	return Classify(c.w.Flush())
}

// appendWireLocked appends m's wire encoding to buf — columnar when
// the connection has negotiated it and the message carries data, flat
// otherwise — and returns the extended slice plus the record count
// shipped. A pre-encoded columnar body on a flat connection is decoded
// back to records first (rare: a session replaying its encoded window
// after a reconnect negotiated down).
func (c *streamConn) appendWireLocked(buf []byte, m *Message) ([]byte, int, error) {
	if m.Type == MsgData && (m.Enc != nil || len(m.Records) > 0) &&
		c.opts.wireMode != WireFlat && c.peerColumnar.Load() {
		out, err := AppendColumnarMessage(buf, *m, &c.codec)
		n := len(m.Records)
		if m.Enc != nil {
			n = m.EncCount
		}
		return out, n, err
	}
	if m.Enc != nil && m.Records == nil {
		rs := flow.GetBatch(m.EncCount)[:m.EncCount]
		if err := trace.DecodeColumns(m.Enc, rs); err != nil {
			flow.PutBatch(rs)
			return buf, 0, fmt.Errorf("tp: pre-encoded body: %v: %w", err, ErrCorruptFrame)
		}
		out, err := AppendMessage(buf, Message{Type: m.Type, Node: m.Node, Records: rs})
		flow.PutBatch(rs)
		return out, m.EncCount, err
	}
	out, err := AppendMessage(buf, *m)
	return out, len(m.Records), err
}

// Send implements Conn. Each message is flushed immediately: the IS
// trades throughput for the bounded dispatch latency that on-line
// tools require. Failures are classified (Classify) so callers can
// errors.Is against ErrConnClosed / ErrTimeout and decide whether a
// redial can cure them.
func (c *streamConn) Send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.opts.writeTimeout > 0 {
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.opts.writeTimeout))
	}
	err := c.queueAdvertLocked()
	var n, recs int
	if err == nil {
		eb := encodePool.Get().(*encodeBuffer)
		var buf []byte
		buf, recs, err = c.appendWireLocked(eb.b[:0], &m)
		eb.b = buf[:0]
		n = len(buf)
		if err == nil {
			if _, err = c.w.Write(buf); err == nil {
				err = c.w.Flush()
			}
		}
		encodePool.Put(eb)
	}
	Recycle(&m)
	if err != nil {
		if c.m != nil {
			c.m.sendErrors.Inc()
		}
		return Classify(err)
	}
	if c.m != nil {
		c.m.msgsSent.Inc()
		c.m.bytesSent.Add(uint64(n))
		c.m.recsSent.Add(uint64(recs))
	}
	return nil
}

// batchFrames carries the reusable per-batch encode state of
// SendBatch: one pooled buffer per frame plus the net.Buffers vector
// handed to writev. Pooling the holder keeps the steady-state batch
// send allocation-free.
type batchFrames struct {
	ebs  []*encodeBuffer
	bufs net.Buffers
}

var batchFramesPool = sync.Pool{New: func() any { return new(batchFrames) }}

// SendBatch implements BatchSender: every queued frame is encoded into
// its own pooled buffer and the set is transmitted as one coalesced
// write — a single writev on TCP, a single buffered write+flush on
// other stream transports. Ownership matches Send: the connection owns
// every message once called.
func (c *streamConn) SendBatch(ms []Message) error {
	if len(ms) == 0 {
		return nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.opts.writeTimeout > 0 {
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.opts.writeTimeout))
	}
	err := c.queueAdvertLocked()
	bf := batchFramesPool.Get().(*batchFrames)
	total, recs := 0, 0
	if err == nil {
		for i := range ms {
			eb := encodePool.Get().(*encodeBuffer)
			var buf []byte
			var n int
			buf, n, err = c.appendWireLocked(eb.b[:0], &ms[i])
			eb.b = buf[:0]
			if err != nil {
				encodePool.Put(eb)
				break
			}
			bf.ebs = append(bf.ebs, eb)
			bf.bufs = append(bf.bufs, buf)
			total += len(buf)
			recs += n
		}
	}
	sent := len(bf.bufs)
	for i := range ms {
		Recycle(&ms[i])
	}
	if err == nil {
		if tc, ok := c.nc.(*net.TCPConn); ok {
			// Pending buffered bytes (a queued advert, or residue of a
			// partial earlier failure) must precede the batch in stream
			// order.
			if err = c.w.Flush(); err == nil {
				// WriteTo consumes its vector in place, so hand it a
				// copy of the slice header and keep bf.bufs intact for
				// reuse.
				vec := bf.bufs
				_, err = vec.WriteTo(tc)
			}
		} else {
			for _, b := range bf.bufs {
				if _, err = c.w.Write(b); err != nil {
					break
				}
			}
			if err == nil {
				err = c.w.Flush()
			}
		}
	}
	for _, eb := range bf.ebs {
		encodePool.Put(eb)
	}
	bf.ebs = bf.ebs[:0]
	bf.bufs = bf.bufs[:0]
	batchFramesPool.Put(bf)
	if err != nil {
		if c.m != nil {
			c.m.sendErrors.Inc()
		}
		return Classify(err)
	}
	if c.m != nil {
		c.m.msgsSent.Add(uint64(sent))
		c.m.bytesSent.Add(uint64(total))
		c.m.recsSent.Add(uint64(recs))
	}
	return nil
}

// Recv implements Conn. Orderly shutdown surfaces as plain io.EOF;
// every other failure is classified into the typed taxonomy. The
// peer's capability advert is consumed here — it is transport
// bookkeeping, not application traffic, and is excluded from the
// message and byte counters.
func (c *streamConn) Recv() (Message, error) {
	if !c.recvState.CompareAndSwap(0, 1) && c.recvState.Load() == 2 {
		return Message{}, Classify(net.ErrClosed)
	}
	for {
		if c.opts.readTimeout > 0 {
			_ = c.nc.SetReadDeadline(time.Now().Add(c.opts.readTimeout))
		}
		m, n, err := readMessage(c.r)
		if err != nil {
			return m, Classify(err)
		}
		if m.Type == MsgControl && m.Control == CtlHello && m.Arg == capsHelloArg {
			c.peerColumnar.Store(true)
			continue
		}
		if c.m != nil {
			c.m.msgsRecv.Inc()
			c.m.bytesRecv.Add(uint64(n))
			c.m.recsRecv.Add(uint64(len(m.Records)))
		}
		return m, nil
	}
}

// Close implements Conn. A fire-and-forget sender that never called
// Recv closes with the peer's capability advert still unread, and on
// TCP an unread receive queue turns the close into an RST — which
// discards the peer's receive queue too, losing data frames still in
// flight. For such conns Close briefly drains inbound bytes first so
// the close degrades to an orderly FIN; conns with a reader (everything
// running a control loop) skip this, their Recv side owns the buffer.
func (c *streamConn) Close() error {
	c.closeOnce.Do(func() {
		if c.recvState.CompareAndSwap(0, 2) {
			_ = c.nc.SetReadDeadline(time.Now().Add(5 * time.Millisecond))
			var scratch [1 << 10]byte
			for {
				if _, err := c.r.Read(scratch[:]); err != nil {
					break
				}
			}
		}
		c.closeErr = c.nc.Close()
	})
	return c.closeErr
}

// Listener accepts TCP message connections for an ISM endpoint.
// Options given to Listen apply to every accepted connection.
type Listener struct {
	l    net.Listener
	opts []ConnOption

	closeOnce sync.Once
	closeErr  error
}

// Listen starts a TCP listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string, opts ...ConnOption) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l, opts: opts}, nil
}

// Addr returns the bound address, useful with port 0.
func (ln *Listener) Addr() string { return ln.l.Addr().String() }

// Accept waits for the next connection. The columnar capability
// advert is flushed to the dialer immediately: accepted connections
// are typically pure receivers with no outbound frame for a lazy
// advert to piggyback on.
func (ln *Listener) Accept() (Conn, error) {
	nc, err := ln.l.Accept()
	if err != nil {
		return nil, err
	}
	c := NewStreamConn(nc, ln.opts...)
	if sc, ok := c.(*streamConn); ok {
		// An advert flush failure means the dialer already hung up; the
		// connection is returned anyway (Accept errors are treated as
		// listener-fatal by accept loops) and the caller's first
		// operation surfaces the death.
		_ = sc.Advertise()
	}
	return c, nil
}

// Close stops the listener. It is idempotent: the second and later
// calls return the first call's result instead of a spurious
// use-of-closed error.
func (ln *Listener) Close() error {
	ln.closeOnce.Do(func() { ln.closeErr = ln.l.Close() })
	return ln.closeErr
}

// Dial connects to an ISM TCP endpoint.
func Dial(addr string, opts ...ConnOption) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewStreamConn(nc, opts...), nil
}

// DialTimeout connects to an ISM TCP endpoint, failing after timeout
// instead of hanging an LIS on an unreachable manager.
func DialTimeout(addr string, timeout time.Duration, opts ...ConnOption) (Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewStreamConn(nc, opts...), nil
}

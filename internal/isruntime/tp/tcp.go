package tp

import (
	"bufio"
	"net"
	"sync"
	"time"

	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

// ConnOption configures a stream connection (timeouts, metrics).
type ConnOption func(*connOptions)

type connOptions struct {
	readTimeout  time.Duration
	writeTimeout time.Duration
	registry     *metrics.Registry
}

// WithReadTimeout bounds each Recv: a peer that stops sending for
// longer than d causes Recv to fail with a timeout error instead of
// wedging the reader forever.
func WithReadTimeout(d time.Duration) ConnOption {
	return func(o *connOptions) { o.readTimeout = d }
}

// WithWriteTimeout bounds each Send: a peer that stops draining causes
// Send to fail with a timeout error instead of blocking the LIS.
func WithWriteTimeout(d time.Duration) ConnOption {
	return func(o *connOptions) { o.writeTimeout = d }
}

// WithConnMetrics reports transport activity (tp.msgs_sent,
// tp.bytes_sent, tp.msgs_recv, tp.bytes_recv, tp.send_errors) through
// the given registry.
func WithConnMetrics(reg *metrics.Registry) ConnOption {
	return func(o *connOptions) { o.registry = reg }
}

// connMetrics is the per-connection counter set under the tp scope.
type connMetrics struct {
	msgsSent, bytesSent *metrics.Counter
	msgsRecv, bytesRecv *metrics.Counter
	sendErrors          *metrics.Counter
}

func newConnMetrics(reg *metrics.Registry) *connMetrics {
	if reg == nil {
		return nil
	}
	s := reg.Scope("tp")
	return &connMetrics{
		msgsSent: s.Counter("msgs_sent"), bytesSent: s.Counter("bytes_sent"),
		msgsRecv: s.Counter("msgs_recv"), bytesRecv: s.Counter("bytes_recv"),
		sendErrors: s.Counter("send_errors"),
	}
}

// TCP transport: the socket-based TP variant. A streamConn adapts a
// net.Conn to the Conn interface with buffered framing. Writes are
// serialized with a mutex so multiple producer goroutines can share
// one connection; reads are expected from a single consumer (the usual
// LIS->ISM arrangement).
type streamConn struct {
	nc   net.Conn
	r    *bufio.Reader
	opts connOptions
	m    *connMetrics

	wmu sync.Mutex
	w   *bufio.Writer

	closeOnce sync.Once
	closeErr  error
}

// NewStreamConn wraps a net.Conn (or any equivalent) as a message
// Conn.
func NewStreamConn(nc net.Conn, opts ...ConnOption) Conn {
	var o connOptions
	for _, opt := range opts {
		opt(&o)
	}
	return &streamConn{
		nc:   nc,
		r:    bufio.NewReaderSize(nc, 64<<10),
		w:    bufio.NewWriterSize(nc, 64<<10),
		opts: o,
		m:    newConnMetrics(o.registry),
	}
}

// Send implements Conn. Each message is flushed immediately: the IS
// trades throughput for the bounded dispatch latency that on-line
// tools require. Failures are classified (Classify) so callers can
// errors.Is against ErrConnClosed / ErrTimeout and decide whether a
// redial can cure them.
func (c *streamConn) Send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.opts.writeTimeout > 0 {
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.opts.writeTimeout))
	}
	n := frameHeaderSize + len(m.Records)*trace.RecordSize
	if err := WriteMessage(c.w, m); err != nil {
		if c.m != nil {
			c.m.sendErrors.Inc()
		}
		return Classify(err)
	}
	if err := c.w.Flush(); err != nil {
		if c.m != nil {
			c.m.sendErrors.Inc()
		}
		return Classify(err)
	}
	if c.m != nil {
		c.m.msgsSent.Inc()
		c.m.bytesSent.Add(uint64(n))
	}
	return nil
}

// batchFrames carries the reusable per-batch encode state of
// SendBatch: one pooled buffer per frame plus the net.Buffers vector
// handed to writev. Pooling the holder keeps the steady-state batch
// send allocation-free.
type batchFrames struct {
	ebs  []*encodeBuffer
	bufs net.Buffers
}

var batchFramesPool = sync.Pool{New: func() any { return new(batchFrames) }}

// SendBatch implements BatchSender: every queued frame is encoded into
// its own pooled buffer and the set is transmitted as one coalesced
// write — a single writev on TCP, a single buffered write+flush on
// other stream transports. Ownership matches Send: the connection owns
// every message once called.
func (c *streamConn) SendBatch(ms []Message) error {
	if len(ms) == 0 {
		return nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.opts.writeTimeout > 0 {
		_ = c.nc.SetWriteDeadline(time.Now().Add(c.opts.writeTimeout))
	}
	bf := batchFramesPool.Get().(*batchFrames)
	var err error
	total := 0
	for i := range ms {
		eb := encodePool.Get().(*encodeBuffer)
		var buf []byte
		buf, err = AppendMessage(eb.b[:0], ms[i])
		eb.b = buf[:0]
		if err != nil {
			encodePool.Put(eb)
			break
		}
		bf.ebs = append(bf.ebs, eb)
		bf.bufs = append(bf.bufs, buf)
		total += len(buf)
	}
	sent := len(bf.bufs)
	for i := range ms {
		Recycle(&ms[i])
	}
	if err == nil {
		if tc, ok := c.nc.(*net.TCPConn); ok {
			// Pending buffered bytes must precede the batch in stream
			// order (only present after a partial earlier failure).
			if err = c.w.Flush(); err == nil {
				// WriteTo consumes its vector in place, so hand it a
				// copy of the slice header and keep bf.bufs intact for
				// reuse.
				vec := bf.bufs
				_, err = vec.WriteTo(tc)
			}
		} else {
			for _, b := range bf.bufs {
				if _, err = c.w.Write(b); err != nil {
					break
				}
			}
			if err == nil {
				err = c.w.Flush()
			}
		}
	}
	for _, eb := range bf.ebs {
		encodePool.Put(eb)
	}
	bf.ebs = bf.ebs[:0]
	bf.bufs = bf.bufs[:0]
	batchFramesPool.Put(bf)
	if err != nil {
		if c.m != nil {
			c.m.sendErrors.Inc()
		}
		return Classify(err)
	}
	if c.m != nil {
		c.m.msgsSent.Add(uint64(sent))
		c.m.bytesSent.Add(uint64(total))
	}
	return nil
}

// Recv implements Conn. Orderly shutdown surfaces as plain io.EOF;
// every other failure is classified into the typed taxonomy.
func (c *streamConn) Recv() (Message, error) {
	if c.opts.readTimeout > 0 {
		_ = c.nc.SetReadDeadline(time.Now().Add(c.opts.readTimeout))
	}
	m, err := ReadMessage(c.r)
	if err == nil && c.m != nil {
		c.m.msgsRecv.Inc()
		c.m.bytesRecv.Add(uint64(frameHeaderSize + len(m.Records)*trace.RecordSize))
	}
	return m, Classify(err)
}

// Close implements Conn.
func (c *streamConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

// Listener accepts TCP message connections for an ISM endpoint.
// Options given to Listen apply to every accepted connection.
type Listener struct {
	l    net.Listener
	opts []ConnOption

	closeOnce sync.Once
	closeErr  error
}

// Listen starts a TCP listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string, opts ...ConnOption) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l, opts: opts}, nil
}

// Addr returns the bound address, useful with port 0.
func (ln *Listener) Addr() string { return ln.l.Addr().String() }

// Accept waits for the next connection.
func (ln *Listener) Accept() (Conn, error) {
	nc, err := ln.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewStreamConn(nc, ln.opts...), nil
}

// Close stops the listener. It is idempotent: the second and later
// calls return the first call's result instead of a spurious
// use-of-closed error.
func (ln *Listener) Close() error {
	ln.closeOnce.Do(func() { ln.closeErr = ln.l.Close() })
	return ln.closeErr
}

// Dial connects to an ISM TCP endpoint.
func Dial(addr string, opts ...ConnOption) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewStreamConn(nc, opts...), nil
}

// DialTimeout connects to an ISM TCP endpoint, failing after timeout
// instead of hanging an LIS on an unreachable manager.
func DialTimeout(addr string, timeout time.Duration, opts ...ConnOption) (Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewStreamConn(nc, opts...), nil
}

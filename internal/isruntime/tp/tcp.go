package tp

import (
	"bufio"
	"net"
	"sync"
)

// TCP transport: the socket-based TP variant. A streamConn adapts a
// net.Conn to the Conn interface with buffered framing. Writes are
// serialized with a mutex so multiple producer goroutines can share
// one connection; reads are expected from a single consumer (the usual
// LIS->ISM arrangement).
type streamConn struct {
	nc net.Conn
	r  *bufio.Reader

	wmu sync.Mutex
	w   *bufio.Writer

	closeOnce sync.Once
	closeErr  error
}

// NewStreamConn wraps a net.Conn (or any equivalent) as a message
// Conn.
func NewStreamConn(nc net.Conn) Conn {
	return &streamConn{
		nc: nc,
		r:  bufio.NewReaderSize(nc, 64<<10),
		w:  bufio.NewWriterSize(nc, 64<<10),
	}
}

// Send implements Conn. Each message is flushed immediately: the IS
// trades throughput for the bounded dispatch latency that on-line
// tools require.
func (c *streamConn) Send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := WriteMessage(c.w, m); err != nil {
		return err
	}
	return c.w.Flush()
}

// Recv implements Conn.
func (c *streamConn) Recv() (Message, error) {
	return ReadMessage(c.r)
}

// Close implements Conn.
func (c *streamConn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.nc.Close() })
	return c.closeErr
}

// Listener accepts TCP message connections for an ISM endpoint.
type Listener struct {
	l net.Listener
}

// Listen starts a TCP listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address, useful with port 0.
func (ln *Listener) Addr() string { return ln.l.Addr().String() }

// Accept waits for the next connection.
func (ln *Listener) Accept() (Conn, error) {
	nc, err := ln.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewStreamConn(nc), nil
}

// Close stops the listener.
func (ln *Listener) Close() error { return ln.l.Close() }

// Dial connects to an ISM TCP endpoint.
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewStreamConn(nc), nil
}

package tp

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

// colRecs builds a batch with realistic column structure: monotone
// times, constant node/process, few kinds, small tag deltas.
func colRecs(n int) []trace.Record {
	rs := make([]trace.Record, n)
	for i := range rs {
		rs[i] = trace.Record{
			Time: int64(1000 + 7*i), Logical: uint64(i),
			Node: 3, Process: 2,
			Kind: trace.KindUser, Tag: uint16(i % 5),
			Payload: int64(i * 11),
		}
	}
	return rs
}

// TestColumnarFrameRoundTrip checks the columnar wire frame end to
// end: AppendColumnarMessage bytes decode through ReadMessage into the
// original records, with node and sequence preserved.
func TestColumnarFrameRoundTrip(t *testing.T) {
	rs := colRecs(32)
	var cc trace.ColumnCodec
	m := DataMessage(7, rs)
	m.Arg = 42
	buf, err := AppendColumnarMessage(nil, m, &cc)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(buf) - frameHeaderSize - columnarExtSize; got >= len(rs)*trace.RecordSize {
		t.Fatalf("columnar body %d bytes is not smaller than flat %d", got, len(rs)*trace.RecordSize)
	}
	dec, err := ReadMessage(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Type != MsgData || dec.Node != 7 || dec.Arg != 42 {
		t.Fatalf("header fields: %+v", dec)
	}
	if !dec.Pooled {
		t.Fatal("decoded records not marked pooled")
	}
	if len(dec.Records) != len(rs) {
		t.Fatalf("decoded %d records, want %d", len(dec.Records), len(rs))
	}
	for i := range rs {
		if dec.Records[i] != rs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, dec.Records[i], rs[i])
		}
	}
	Recycle(&dec)
}

// TestColumnarFrameFromEnc checks that a pre-encoded body (the session
// replay-window form) frames identically to encoding from records.
func TestColumnarFrameFromEnc(t *testing.T) {
	rs := colRecs(16)
	var cc trace.ColumnCodec
	direct := DataMessage(1, rs)
	direct.Arg = 9
	want, err := AppendColumnarMessage(nil, direct, &cc)
	if err != nil {
		t.Fatal(err)
	}
	body, crc := EncodeColumnarBody(nil, rs, &cc)
	pre := Message{Type: MsgData, Node: 1, Arg: 9, Enc: body, EncCount: len(rs), EncCRC: crc}
	got, err := AppendColumnarMessage(nil, pre, &cc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("pre-encoded frame differs from direct encoding:\n got %x\nwant %x", got, want)
	}
}

// TestColumnarFrameCorruption flips, truncates and inflates columnar
// frames: every mutation must fail decode with a classified
// ErrCorruptFrame (or a truncation error) and never panic.
func TestColumnarFrameCorruption(t *testing.T) {
	rs := colRecs(8)
	var cc trace.ColumnCodec
	m := DataMessage(2, rs)
	m.Arg = 5
	frame, err := AppendColumnarMessage(nil, m, &cc)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("body-bit-flip", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[len(bad)-1] ^= 0xff
		if _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("err = %v, want ErrCorruptFrame", err)
		}
	})
	t.Run("crc-flip", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[frameHeaderSize+4] ^= 1
		if _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("err = %v, want ErrCorruptFrame", err)
		}
	})
	t.Run("zero-count", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[14], bad[15], bad[16], bad[17] = 0, 0, 0, 0
		if _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("err = %v, want ErrCorruptFrame", err)
		}
	})
	t.Run("absurd-bodylen", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[frameHeaderSize] = 0xff
		bad[frameHeaderSize+1] = 0xff
		bad[frameHeaderSize+2] = 0xff
		if _, err := ReadMessage(bytes.NewReader(bad)); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("err = %v, want ErrCorruptFrame", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := ReadMessage(bytes.NewReader(frame[:len(frame)-3])); err == nil {
			t.Fatal("truncated frame decoded")
		}
	})
}

// startEchoServer accepts one conn and runs a Recv loop that counts
// data records and echoes a CtlAck per data message.
func startEchoServer(t *testing.T, opts ...ConnOption) (*Listener, chan Message) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	got := make(chan Message, 64)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			got <- m
			if m.Type == MsgData {
				_ = conn.Send(ControlMessage(m.Node, CtlAck, m.Arg))
			}
		}
	}()
	return ln, got
}

// recvData pulls the next data message, failing on timeout.
func recvData(t *testing.T, got chan Message) Message {
	t.Helper()
	select {
	case m := <-got:
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("server never received")
		return Message{}
	}
}

// drainAck consumes the echo server's per-batch ack on the client; the
// server's capability advert precedes it on the wire, so after this
// returns the client has negotiated columnar.
func drainAck(t *testing.T, c Conn) {
	t.Helper()
	m, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgControl || m.Control != CtlAck {
		t.Fatalf("expected ack, got %+v", m)
	}
}

// TestColumnarNegotiation drives a live TCP conn through negotiation:
// before the peer advert is seen frames go flat, after it they go
// columnar, and the transferred records are identical either way.
func TestColumnarNegotiation(t *testing.T) {
	reg := metrics.NewRegistry()
	ln, got := startEchoServer(t)
	client, err := Dial(ln.Addr(), WithConnMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// First send races the advert: either encoding is legal, but the
	// records must arrive intact.
	rs := colRecs(16)
	if err := client.Send(DataMessage(1, rs)); err != nil {
		t.Fatal(err)
	}
	m := recvData(t, got)
	if len(m.Records) != 16 || m.Records[3] != rs[3] {
		t.Fatalf("first batch mangled: %+v", m)
	}
	Recycle(&m)

	// Drain the ack so the advert (which precedes it) is processed.
	drainAck(t, client)
	if !ColumnarActive(client) {
		t.Fatal("advert consumed but columnar not active")
	}
	before := reg.Snapshot().Value("tp.bytes_tx")
	if err := client.Send(DataMessage(1, rs)); err != nil {
		t.Fatal(err)
	}
	m = recvData(t, got)
	if len(m.Records) != 16 || m.Records[7] != rs[7] {
		t.Fatalf("columnar batch mangled: %+v", m)
	}
	Recycle(&m)
	sent := reg.Snapshot().Value("tp.bytes_tx") - before
	if flat := float64(frameHeaderSize + 16*trace.RecordSize); sent >= flat/2 {
		t.Fatalf("negotiated frame took %v bytes, want well under flat %v", sent, flat)
	}
}

// TestColumnarFlatReceiver pins the mixed-version downgrade: a
// columnar-capable sender facing a receiver that never advertises
// (WireFlat) must keep every frame flat.
func TestColumnarFlatReceiver(t *testing.T) {
	reg := metrics.NewRegistry()
	ln, got := startEchoServer(t, WithWireMode(WireFlat))
	client, err := Dial(ln.Addr(), WithConnMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rs := colRecs(8)
	for i := 0; i < 3; i++ {
		if err := client.Send(DataMessage(1, rs)); err != nil {
			t.Fatal(err)
		}
		m := recvData(t, got)
		if len(m.Records) != 8 {
			t.Fatalf("batch %d mangled", i)
		}
		Recycle(&m)
		time.Sleep(5 * time.Millisecond) // ample time for a (wrong) advert
	}
	if ColumnarActive(client) {
		t.Fatal("client negotiated columnar against a flat-only receiver")
	}
	want := 3 * float64(frameHeaderSize+8*trace.RecordSize)
	if got := reg.Snapshot().Value("tp.bytes_tx"); got != want {
		t.Fatalf("bytes_tx = %v, want flat %v", got, want)
	}
}

// TestFlatSenderColumnarReceiver pins the other direction: a WireFlat
// sender against a columnar-capable receiver stays flat and still
// interoperates.
func TestFlatSenderColumnarReceiver(t *testing.T) {
	ln, got := startEchoServer(t)
	client, err := Dial(ln.Addr(), WithWireMode(WireFlat))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	rs := colRecs(8)
	if err := client.Send(DataMessage(1, rs)); err != nil {
		t.Fatal(err)
	}
	m := recvData(t, got)
	if len(m.Records) != 8 || m.Records[2] != rs[2] {
		t.Fatalf("batch mangled: %+v", m)
	}
	Recycle(&m)
	if ColumnarActive(client) {
		t.Fatal("WireFlat client reports columnar active")
	}
}

// TestSendBatchColumnar checks the writev coalescing path ships
// columnar frames once negotiated.
func TestSendBatchColumnar(t *testing.T) {
	reg := metrics.NewRegistry()
	ln, got := startEchoServer(t)
	client, err := Dial(ln.Addr(), WithConnMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Send(DataMessage(1, colRecs(4))); err != nil {
		t.Fatal(err)
	}
	first := recvData(t, got)
	Recycle(&first)
	drainAck(t, client)

	before := reg.Snapshot().Value("tp.bytes_tx")
	ms := make([]Message, 4)
	for i := range ms {
		ms[i] = DataMessage(1, colRecs(64))
		ms[i].Arg = int64(i)
	}
	if err := SendAll(client, ms); err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := 0; i < 4; i++ {
		m := recvData(t, got)
		total += len(m.Records)
		Recycle(&m)
	}
	if total != 4*64 {
		t.Fatalf("received %d records, want %d", total, 4*64)
	}
	sent := reg.Snapshot().Value("tp.bytes_tx") - before
	if flat := float64(4 * (frameHeaderSize + 64*trace.RecordSize)); sent >= flat/4 {
		t.Fatalf("batch send took %v bytes, want well under flat %v", sent, flat)
	}
}

// TestParseWireMode is the table-driven flag-value check.
func TestParseWireMode(t *testing.T) {
	cases := []struct {
		in      string
		want    WireMode
		wantErr bool
	}{
		{"columnar", WireColumnar, false},
		{"flat", WireFlat, false},
		{"", WireColumnar, true},
		{"Columnar", WireColumnar, true},
		{"zstd", WireColumnar, true},
	}
	for _, c := range cases {
		got, err := ParseWireMode(c.in)
		if (err != nil) != c.wantErr || got != c.want {
			t.Errorf("ParseWireMode(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.wantErr)
		}
	}
}

// FuzzColumnarFrameDecode feeds arbitrary bytes through the columnar
// frame reader: decode must never panic, and a frame that decodes must
// re-encode to an equivalent record batch (parse / decode / re-encode
// round trip).
func FuzzColumnarFrameDecode(f *testing.F) {
	var cc trace.ColumnCodec
	seedRecs := colRecs(12)
	m := DataMessage(3, seedRecs)
	m.Arg = 1
	seed, _ := AppendColumnarMessage(nil, m, &cc)
	f.Add(seed)
	f.Add(seed[:len(seed)-4])
	mut := append([]byte(nil), seed...)
	mut[20] ^= 0x40
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := ReadMessage(bytes.NewReader(data))
		if err != nil {
			return
		}
		if dec.Type != MsgData || len(dec.Records) == 0 {
			Recycle(&dec)
			return
		}
		var cc trace.ColumnCodec
		re, err := AppendColumnarMessage(nil, DataMessage(dec.Node, dec.Records), &cc)
		if err != nil {
			t.Fatalf("decoded frame failed re-encode: %v", err)
		}
		back, err := ReadMessage(bytes.NewReader(re))
		if err != nil {
			t.Fatalf("re-encoded frame failed decode: %v", err)
		}
		if len(back.Records) != len(dec.Records) {
			t.Fatalf("round trip count %d != %d", len(back.Records), len(dec.Records))
		}
		for i := range back.Records {
			if back.Records[i] != dec.Records[i] {
				t.Fatalf("record %d drifted: %+v != %+v", i, back.Records[i], dec.Records[i])
			}
		}
		Recycle(&back)
		Recycle(&dec)
	})
}

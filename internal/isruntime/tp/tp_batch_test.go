package tp

import (
	"bytes"
	"testing"

	"prism/internal/isruntime/flow"
	"prism/internal/raceflag"
	"prism/internal/trace"
)

func TestRecycleDoubleRecycleGuard(t *testing.T) {
	batch := flow.GetBatch(4)
	batch = append(batch, trace.Record{Kind: trace.KindUser})
	m := PooledDataMessage(7, batch)
	Recycle(&m)
	if m.Records != nil || m.Pooled {
		t.Fatalf("first Recycle did not clear the message: %+v", m)
	}
	// The cleared message makes a second Recycle inert. Without the
	// guard the slice would enter the pool twice and the next two
	// GetBatch calls could hand the same backing array to two owners.
	Recycle(&m)
	a := flow.GetBatch(4)
	b := flow.GetBatch(4)
	a = append(a, trace.Record{Tag: 1})
	b = append(b, trace.Record{Tag: 2})
	if &a[0] == &b[0] {
		t.Fatal("double recycle handed one backing array to two owners")
	}
	flow.PutBatch(a)
	flow.PutBatch(b)
}

func TestRecycleUnpooledLeavesPoolAlone(t *testing.T) {
	rs := []trace.Record{{Kind: trace.KindUser}}
	m := DataMessage(1, rs)
	Recycle(&m)
	if m.Records != nil {
		t.Fatal("Recycle must clear unpooled messages too")
	}
	if rs[0].Kind != trace.KindUser {
		t.Fatal("caller's slice was touched")
	}
}

func TestSendBatchTCPRoundTrip(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- c
	}()
	c, err := Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv := <-accepted
	defer srv.Close()

	const nMsgs = 5
	ms := make([]Message, 0, nMsgs)
	for i := 0; i < nMsgs; i++ {
		batch := flow.GetBatch(3)
		for j := 0; j < 3; j++ {
			batch = append(batch, trace.Record{
				Node: int32(i), Kind: trace.KindUser, Tag: uint16(i*10 + j),
			})
		}
		ms = append(ms, PooledDataMessage(int32(i), batch))
	}
	ms = append(ms, ControlMessage(99, CtlFlush, 42))
	if err := SendAll(c, ms); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nMsgs; i++ {
		got, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Node != int32(i) || len(got.Records) != 3 {
			t.Fatalf("msg %d: %+v", i, got)
		}
		for j, r := range got.Records {
			if r.Tag != uint16(i*10+j) {
				t.Fatalf("msg %d rec %d tag %d", i, j, r.Tag)
			}
		}
		Recycle(&got)
	}
	got, err := srv.Recv()
	if err != nil || got.Type != MsgControl || got.Control != CtlFlush || got.Arg != 42 {
		t.Fatalf("control: %+v err %v", got, err)
	}
}

func TestSendAllFallbackOnPipe(t *testing.T) {
	// Pipes have no SendBatch; SendAll must fall back to per-message
	// Send and still deliver everything in order.
	a, b := Pipe(8)
	defer a.Close()
	ms := make([]Message, 0, 4)
	for i := 0; i < 4; i++ {
		ms = append(ms, DataMessage(int32(i), []trace.Record{{Kind: trace.KindUser, Tag: uint16(i)}}))
	}
	if err := SendAll(a, ms); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		got, err := b.Recv()
		if err != nil || got.Node != int32(i) {
			t.Fatalf("msg %d: %+v err %v", i, got, err)
		}
	}
}

func TestCodecRoundTripAllocFree(t *testing.T) {
	// The zero-copy wire path: encode appends in place after one grow,
	// decode reads straight from the pooled body into a pooled batch.
	// With buffers warm, a full encode/decode round trip must not
	// allocate.
	if raceflag.Enabled {
		t.Skip("race instrumentation allocates; alloc budgets are meaningless")
	}
	recs := make([]trace.Record, 64)
	for i := range recs {
		recs[i] = trace.Record{Node: 3, Kind: trace.KindUser, Tag: uint16(i), Logical: uint64(i)}
	}
	var buf []byte
	var rd bytes.Reader
	var fail string
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendMessage(buf[:0], DataMessage(3, recs))
		if err != nil {
			fail = err.Error()
			return
		}
		rd.Reset(buf)
		m, err := ReadMessage(&rd)
		if err != nil {
			fail = err.Error()
			return
		}
		if len(m.Records) != len(recs) || m.Records[17].Tag != 17 {
			fail = "round trip mangled records"
			return
		}
		Recycle(&m)
	})
	if fail != "" {
		t.Fatal(fail)
	}
	if allocs > 0 {
		t.Fatalf("codec round trip allocates %.1f times per op; want 0", allocs)
	}
}

// Package tp implements the instrumentation system's Transfer Protocol
// (TP): "a consistent instrumentation data and control transfer
// protocol is used for IS-related communications" (§2.2.3).
//
// Two transports are provided behind one Conn interface:
//
//   - an in-process transport built on Go channels, standing in for
//     the Unix pipes and shared-memory paths of the paper's systems;
//   - a TCP transport built on net.Conn with explicit framing,
//     standing in for the socket-based TPs of Pablo and Issos.
//
// Both carry the same Message type, which multiplexes instrumentation
// data batches and control signals (the ISM-to-tool and ISM-to-process
// control traffic of Figure 2).
package tp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"prism/internal/trace"
)

// MsgType discriminates the two message classes of the protocol.
type MsgType uint8

// Message classes.
const (
	MsgData    MsgType = iota // batch of instrumentation records
	MsgControl                // control signal
	numMsgTypes
)

// Control identifies a control signal.
type Control uint8

// Control signals exchanged between LIS, ISM and tools.
const (
	CtlNone      Control = iota
	CtlStart             // begin/resume capture
	CtlStop              // pause capture
	CtlFlush             // flush local buffers now (FAOF gang signal)
	CtlFlushDone         // LIS acknowledges a completed flush
	CtlConfigure         // reconfigure; Arg carries the parameter
	CtlShutdown          // orderly termination
	CtlAck               // generic acknowledgement
	numControls
)

var controlNames = [...]string{
	CtlNone: "none", CtlStart: "start", CtlStop: "stop",
	CtlFlush: "flush", CtlFlushDone: "flush-done",
	CtlConfigure: "configure", CtlShutdown: "shutdown", CtlAck: "ack",
}

// String returns the control signal's name.
func (c Control) String() string {
	if int(c) < len(controlNames) {
		return controlNames[c]
	}
	return fmt.Sprintf("control(%d)", uint8(c))
}

// Message is one protocol unit.
type Message struct {
	Type    MsgType
	Node    int32 // originating node (data) or target node (control)
	Control Control
	Arg     int64 // control argument
	Records []trace.Record
}

// DataMessage builds a data message from node with the given records.
func DataMessage(node int32, records []trace.Record) Message {
	return Message{Type: MsgData, Node: node, Records: records}
}

// ControlMessage builds a control message.
func ControlMessage(node int32, ctl Control, arg int64) Message {
	return Message{Type: MsgControl, Node: node, Control: ctl, Arg: arg}
}

// Conn is a bidirectional, ordered, reliable message connection —
// the abstraction all LIS/ISM/tool endpoints speak.
type Conn interface {
	// Send transmits one message. It may block for flow control.
	Send(Message) error
	// Recv returns the next message, or an error once the peer has
	// closed (io.EOF for orderly shutdown).
	Recv() (Message, error)
	// Close releases the connection. Pending Recv calls unblock.
	Close() error
}

// ErrClosed is returned for operations on a closed connection.
var ErrClosed = errors.New("tp: connection closed")

// chanConn is the in-process transport: one direction of a Pipe.
type chanConn struct {
	send chan<- Message
	recv <-chan Message
	stop chan struct{}
}

// Pipe returns the two ends of an in-process connection with the given
// buffering per direction. Buffer 0 gives rendezvous semantics; a
// positive buffer models a bounded kernel pipe, whose fill-up is the
// blocking effect of §3.2.3.
func Pipe(buffer int) (Conn, Conn) {
	ab := make(chan Message, buffer)
	ba := make(chan Message, buffer)
	stop := make(chan struct{})
	a := &chanConn{send: ab, recv: ba, stop: stop}
	b := &chanConn{send: ba, recv: ab, stop: stop}
	return a, b
}

// Send implements Conn.
func (c *chanConn) Send(m Message) error {
	select {
	case <-c.stop:
		return ErrClosed
	default:
	}
	select {
	case c.send <- m:
		return nil
	case <-c.stop:
		return ErrClosed
	}
}

// Recv implements Conn.
func (c *chanConn) Recv() (Message, error) {
	// Drain any queued messages even after close, then report EOF.
	select {
	case m := <-c.recv:
		return m, nil
	default:
	}
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.stop:
		// Raced with close: one more drain attempt.
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	}
}

// Close implements Conn. Closing either end closes the pipe.
func (c *chanConn) Close() error {
	select {
	case <-c.stop:
		return nil
	default:
		close(c.stop)
		return nil
	}
}

// Frame layout for the byte-stream transport:
//
//	type    uint8
//	control uint8
//	node    int32  (LE)
//	arg     int64  (LE)
//	count   uint32 (LE)   number of records
//	records count * trace.RecordSize bytes
const frameHeaderSize = 1 + 1 + 4 + 8 + 4

// maxFrameRecords bounds a frame to keep a malformed or hostile peer
// from forcing huge allocations.
const maxFrameRecords = 1 << 20

// WriteMessage encodes m onto w.
func WriteMessage(w io.Writer, m Message) error {
	if m.Type >= numMsgTypes {
		return fmt.Errorf("tp: invalid message type %d", m.Type)
	}
	if len(m.Records) > maxFrameRecords {
		return fmt.Errorf("tp: frame too large (%d records)", len(m.Records))
	}
	buf := make([]byte, frameHeaderSize+len(m.Records)*trace.RecordSize)
	buf[0] = byte(m.Type)
	buf[1] = byte(m.Control)
	binary.LittleEndian.PutUint32(buf[2:], uint32(m.Node))
	binary.LittleEndian.PutUint64(buf[6:], uint64(m.Arg))
	binary.LittleEndian.PutUint32(buf[14:], uint32(len(m.Records)))
	off := frameHeaderSize
	for _, r := range m.Records {
		var rb [trace.RecordSize]byte
		trace.EncodeRecord(&rb, r)
		copy(buf[off:], rb[:])
		off += trace.RecordSize
	}
	_, err := w.Write(buf)
	return err
}

// ReadMessage decodes one message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var h [frameHeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		if err == io.EOF {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("tp: truncated frame header: %w", err)
	}
	m := Message{
		Type:    MsgType(h[0]),
		Control: Control(h[1]),
		Node:    int32(binary.LittleEndian.Uint32(h[2:])),
		Arg:     int64(binary.LittleEndian.Uint64(h[6:])),
	}
	if m.Type >= numMsgTypes {
		return Message{}, fmt.Errorf("tp: invalid message type %d", m.Type)
	}
	if m.Control >= numControls {
		return Message{}, fmt.Errorf("tp: invalid control %d", m.Control)
	}
	count := binary.LittleEndian.Uint32(h[14:])
	if count > maxFrameRecords {
		return Message{}, fmt.Errorf("tp: oversized frame (%d records)", count)
	}
	if count > 0 {
		m.Records = make([]trace.Record, count)
		body := make([]byte, int(count)*trace.RecordSize)
		if _, err := io.ReadFull(r, body); err != nil {
			return Message{}, fmt.Errorf("tp: truncated frame body: %w", err)
		}
		for i := range m.Records {
			var rb [trace.RecordSize]byte
			copy(rb[:], body[i*trace.RecordSize:])
			m.Records[i] = trace.DecodeRecord(&rb)
			if !m.Records[i].Kind.Valid() {
				return Message{}, fmt.Errorf("tp: record %d has invalid kind", i)
			}
		}
	}
	return m, nil
}

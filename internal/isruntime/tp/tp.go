// Package tp implements the instrumentation system's Transfer Protocol
// (TP): "a consistent instrumentation data and control transfer
// protocol is used for IS-related communications" (§2.2.3).
//
// Two transports are provided behind one Conn interface:
//
//   - an in-process transport built on Go channels, standing in for
//     the Unix pipes and shared-memory paths of the paper's systems;
//   - a TCP transport built on net.Conn with explicit framing,
//     standing in for the socket-based TPs of Pablo and Issos.
//
// Both carry the same Message type, which multiplexes instrumentation
// data batches and control signals (the ISM-to-tool and ISM-to-process
// control traffic of Figure 2).
//
// Record batches travel through the flow core's batch pool: a message
// built with PooledDataMessage marks its record slice pool-owned, and
// whichever layer finishes with the data (the wire encoder, a policy
// drop, or the ISM after copying into its input stage) recycles it
// with flow.PutBatch. After Send returns, the sender must not touch a
// pooled message's records.
package tp

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

// MsgType discriminates the two message classes of the protocol.
type MsgType uint8

// Message classes.
const (
	MsgData    MsgType = iota // batch of instrumentation records
	MsgControl                // control signal
	numMsgTypes
)

// Control identifies a control signal.
type Control uint8

// Control signals exchanged between LIS, ISM and tools.
const (
	CtlNone      Control = iota
	CtlStart             // begin/resume capture
	CtlStop              // pause capture
	CtlFlush             // flush local buffers now (FAOF gang signal)
	CtlFlushDone         // LIS acknowledges a completed flush
	CtlConfigure         // reconfigure; Arg carries the parameter
	CtlShutdown          // orderly termination
	CtlAck               // acknowledgement; for sessions, Arg is the cumulative batch seq
	CtlHello             // session (re)establishment; Arg is the sender's acked seq
	CtlHeartbeat         // liveness beacon from a LIS node
	numControls
)

var controlNames = [...]string{
	CtlNone: "none", CtlStart: "start", CtlStop: "stop",
	CtlFlush: "flush", CtlFlushDone: "flush-done",
	CtlConfigure: "configure", CtlShutdown: "shutdown", CtlAck: "ack",
	CtlHello: "hello", CtlHeartbeat: "heartbeat",
}

// String returns the control signal's name.
func (c Control) String() string {
	if int(c) < len(controlNames) {
		return controlNames[c]
	}
	return fmt.Sprintf("control(%d)", uint8(c))
}

// Message is one protocol unit.
type Message struct {
	Type    MsgType
	Node    int32 // originating node (data) or target node (control)
	Control Control
	Arg     int64 // control argument
	Records []trace.Record
	// Pooled marks Records as owned by the flow batch pool: the final
	// consumer must return the slice with flow.PutBatch. The flag is
	// transport-local and never encoded on the wire.
	Pooled bool
	// Enc, when non-nil, is the pre-encoded columnar wire body of this
	// data message: EncCount records, EncCRC the crc32c of the bytes
	// (see EncodeColumnarBody). The session layer holds replay-window
	// batches in this form so retransmits skip re-encoding; a
	// columnar-active stream transport frames Enc verbatim, and one
	// that negotiated flat encodes from Records when present or decodes
	// Enc when not. The bytes stay owned by the producer and must not
	// be mutated while the message is in flight; Recycle leaves them
	// alone.
	Enc      []byte
	EncCount int
	EncCRC   uint32
}

// DataMessage builds a data message from node with the given records.
// The caller retains ownership of the record slice.
func DataMessage(node int32, records []trace.Record) Message {
	return Message{Type: MsgData, Node: node, Records: records}
}

// PooledDataMessage builds a data message whose record slice came from
// flow.GetBatch; ownership transfers with the message and the final
// consumer recycles it.
func PooledDataMessage(node int32, records flow.Batch) Message {
	return Message{Type: MsgData, Node: node, Records: records, Pooled: true}
}

// ControlMessage builds a control message.
func ControlMessage(node int32, ctl Control, arg int64) Message {
	return Message{Type: MsgControl, Node: node, Control: ctl, Arg: arg}
}

// Recycle returns a message's record slice to the batch pool if it is
// pool-owned. Consumers call it once they have copied or discarded the
// records. The message is cleared on the first call, so an accidental
// second Recycle of the same message is inert instead of double-freeing
// the slice into the pool (which would hand the same backing array to
// two owners).
func Recycle(m *Message) {
	if m.Pooled && m.Records != nil {
		flow.PutBatch(m.Records)
	}
	m.Records = nil
	m.Pooled = false
}

// Conn is a bidirectional, ordered, reliable message connection —
// the abstraction all LIS/ISM/tool endpoints speak.
type Conn interface {
	// Send transmits one message. It may block for flow control.
	// Send takes ownership of pooled messages: after it returns
	// (success or error) the caller must not touch m.Records if
	// m.Pooled is set.
	Send(Message) error
	// Recv returns the next message, or an error once the peer has
	// closed (io.EOF for orderly shutdown).
	Recv() (Message, error)
	// Close releases the connection. Pending Recv calls unblock.
	Close() error
}

// BatchSender is implemented by transports that can transmit several
// queued messages as one coalesced write (one syscall per flush on the
// stream transport). Ownership follows Send: the connection owns every
// message in ms once SendBatch is called, success or error.
type BatchSender interface {
	SendBatch(ms []Message) error
}

// SendAll transmits every message in ms over c, using the transport's
// coalesced batch path when it has one and falling back to per-message
// Send otherwise. On a fallback error the remaining messages are still
// offered (the conn owns and accounts each); the first error is
// returned.
func SendAll(c Conn, ms []Message) error {
	if len(ms) == 0 {
		return nil
	}
	if len(ms) == 1 {
		return c.Send(ms[0])
	}
	if bs, ok := c.(BatchSender); ok {
		return bs.SendBatch(ms)
	}
	var first error
	for _, m := range ms {
		if err := c.Send(m); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DropCounter is implemented by lossy transports (pipes with a
// non-blocking overflow policy) that discard messages under pressure.
type DropCounter interface {
	DroppedMessages() uint64
}

// chanConn is the in-process transport: one direction of a Pipe.
type chanConn struct {
	send    chan Message
	recv    chan Message
	stop    chan struct{}
	policy  flow.OverflowPolicy
	spill   func(Message) error
	dropCtr *metrics.Counter // registry mirror of dropped (may be nil)

	mu      sync.Mutex
	dropped uint64
}

// Pipe returns the two ends of an in-process connection with the given
// buffering per direction. Buffer 0 gives rendezvous semantics; a
// positive buffer models a bounded kernel pipe, whose fill-up is the
// blocking effect of §3.2.3. Equivalent to PipePolicy with flow.Block.
func Pipe(buffer int) (Conn, Conn) { return PipePolicy(buffer, flow.Block, nil) }

// PipePolicy returns an in-process connection whose Send applies the
// given overflow policy when the pipe is full: Block waits (classic
// bounded-pipe backpressure), DropNewest discards the arriving
// message, DropOldest displaces the queued one, and SpillToStorage
// hands the displaced message to spill (falling back to dropping it
// when spill is nil or fails). Dropped messages are counted and
// reported via the DropCounter interface; with WithConnMetrics they
// are also mirrored into the registry as tp.pipe_dropped_msgs, so
// pipe losses show up next to the stream-transport counters.
func PipePolicy(buffer int, policy flow.OverflowPolicy, spill func(Message) error, opts ...ConnOption) (Conn, Conn) {
	var o connOptions
	for _, opt := range opts {
		opt(&o)
	}
	var dropCtr *metrics.Counter
	if o.registry != nil {
		dropCtr = o.registry.Scope("tp").Counter("pipe_dropped_msgs")
	}
	ab := make(chan Message, buffer)
	ba := make(chan Message, buffer)
	stop := make(chan struct{})
	a := &chanConn{send: ab, recv: ba, stop: stop, policy: policy, spill: spill, dropCtr: dropCtr}
	b := &chanConn{send: ba, recv: ab, stop: stop, policy: policy, spill: spill, dropCtr: dropCtr}
	return a, b
}

// Send implements Conn.
func (c *chanConn) Send(m Message) error {
	select {
	case <-c.stop:
		c.drop(m)
		return ErrClosed
	default:
	}
	if c.policy == flow.Block {
		select {
		case c.send <- m:
			return nil
		case <-c.stop:
			c.drop(m)
			return ErrClosed
		}
	}
	// Lossy policies: never block the producer.
	for {
		select {
		case c.send <- m:
			return nil
		default:
		}
		if c.policy == flow.DropNewest {
			c.drop(m)
			return nil
		}
		// DropOldest / SpillToStorage: displace the queued head.
		select {
		case old := <-c.send:
			if c.policy == flow.SpillToStorage && c.spill != nil {
				if err := c.spill(old); err == nil {
					Recycle(&old)
					continue
				}
			}
			c.drop(old)
		case <-c.stop:
			c.drop(m)
			return ErrClosed
		default:
			// Nothing queued to displace (unbuffered pipe, or the
			// consumer raced us): one last send attempt, then give
			// the message up rather than block a lossy producer.
			select {
			case c.send <- m:
				return nil
			default:
				c.drop(m)
				return nil
			}
		}
	}
}

// drop counts a lost message and recycles its pooled records.
func (c *chanConn) drop(m Message) {
	c.mu.Lock()
	c.dropped++
	c.mu.Unlock()
	if c.dropCtr != nil {
		c.dropCtr.Inc()
	}
	Recycle(&m)
}

// DroppedMessages implements DropCounter.
func (c *chanConn) DroppedMessages() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Recv implements Conn.
func (c *chanConn) Recv() (Message, error) {
	// Drain any queued messages even after close, then report EOF.
	select {
	case m := <-c.recv:
		return m, nil
	default:
	}
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.stop:
		// Raced with close: one more drain attempt.
		select {
		case m := <-c.recv:
			return m, nil
		default:
			return Message{}, io.EOF
		}
	}
}

// Close implements Conn. Closing either end closes the pipe.
func (c *chanConn) Close() error {
	select {
	case <-c.stop:
		return nil
	default:
		close(c.stop)
		return nil
	}
}

// Flat frame layout for the byte-stream transport:
//
//	type    uint8
//	control uint8
//	node    int32  (LE)
//	arg     int64  (LE)
//	count   uint32 (LE)   number of records
//	records count * trace.RecordSize bytes
//
// Data frames may instead travel columnar (type frameColumnar, see
// columnar.go): the same header prefix followed by a bodyLen/crc
// extension and a column-encoded body, negotiated per connection.
const frameHeaderSize = 1 + 1 + 4 + 8 + 4

// maxFrameRecords bounds a frame to keep a malformed or hostile peer
// from forcing huge allocations.
const maxFrameRecords = 1 << 20

// encodeBuffer is a pooled scratch buffer for wire encode/decode, so
// the per-message frame allocation disappears from the hot path.
type encodeBuffer struct{ b []byte }

var encodePool = sync.Pool{New: func() any { return new(encodeBuffer) }}

func (e *encodeBuffer) sized(n int) []byte {
	if cap(e.b) < n {
		e.b = make([]byte, n)
	}
	return e.b[:n]
}

// AppendMessage appends the wire encoding of m to buf and returns the
// extended slice. The frame is encoded in place after a single slice
// grow — no per-record staging array, no per-record append — so the
// encode cost is one bounds-checked store sequence per record.
func AppendMessage(buf []byte, m Message) ([]byte, error) {
	if m.Type >= numMsgTypes {
		return buf, fmt.Errorf("tp: invalid message type %d", m.Type)
	}
	if len(m.Records) > maxFrameRecords {
		return buf, fmt.Errorf("tp: frame too large (%d records)", len(m.Records))
	}
	start := len(buf)
	need := frameHeaderSize + len(m.Records)*trace.RecordSize
	if cap(buf)-start < need {
		grown := make([]byte, start, start+need)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:start+need]
	h := buf[start:]
	h[0] = byte(m.Type)
	h[1] = byte(m.Control)
	binary.LittleEndian.PutUint32(h[2:], uint32(m.Node))
	binary.LittleEndian.PutUint64(h[6:], uint64(m.Arg))
	binary.LittleEndian.PutUint32(h[14:], uint32(len(m.Records)))
	body := h[frameHeaderSize:]
	for i, r := range m.Records {
		trace.PutRecord(body[i*trace.RecordSize:], r)
	}
	return buf, nil
}

// WriteMessage encodes m onto w using a pooled frame buffer, then
// recycles m's record slice if it is pool-owned.
func WriteMessage(w io.Writer, m Message) error {
	eb := encodePool.Get().(*encodeBuffer)
	buf, err := AppendMessage(eb.b[:0], m)
	eb.b = buf[:0]
	if err == nil {
		_, err = w.Write(buf)
	}
	encodePool.Put(eb)
	Recycle(&m)
	return err
}

// ReadMessage decodes one message from r — flat or columnar framed.
// Record slices are drawn from the flow batch pool and marked Pooled,
// so pipeline consumers can recycle them once the records are copied
// out; callers that retain the records simply never recycle.
func ReadMessage(r io.Reader) (Message, error) {
	m, _, err := readMessage(r)
	return m, err
}

// readMessage is ReadMessage plus the frame's encoded size, which the
// stream transport's byte counters need (a columnar frame's wire size
// is not derivable from the decoded record count).
func readMessage(r io.Reader) (Message, int, error) {
	// The header reads into the pooled scratch buffer too: a local
	// array would escape through the io.ReadFull interface call and
	// cost one heap allocation per message.
	eb := encodePool.Get().(*encodeBuffer)
	defer encodePool.Put(eb)
	h := eb.sized(frameHeaderSize)
	if _, err := io.ReadFull(r, h); err != nil {
		if err == io.EOF {
			return Message{}, 0, io.EOF
		}
		return Message{}, 0, fmt.Errorf("tp: truncated frame header: %w", err)
	}
	m := Message{
		Type:    MsgType(h[0]),
		Control: Control(h[1]),
		Node:    int32(binary.LittleEndian.Uint32(h[2:])),
		Arg:     int64(binary.LittleEndian.Uint64(h[6:])),
	}
	count := binary.LittleEndian.Uint32(h[14:])
	if count > maxFrameRecords {
		return Message{}, 0, fmt.Errorf("tp: oversized frame (%d records): %w", count, ErrCorruptFrame)
	}
	if h[0] == frameColumnar {
		m.Type = MsgData
		m.Control = CtlNone
		m, bodyLen, err := readColumnarBody(r, eb, m, count)
		return m, frameHeaderSize + columnarExtSize + bodyLen, err
	}
	// Malformed header fields mean the byte stream desynchronized:
	// classify as ErrCorruptFrame so resilient readers abandon the
	// connection (and redial) instead of treating it as fatal.
	if m.Type >= numMsgTypes {
		return Message{}, 0, fmt.Errorf("tp: invalid message type %d: %w", m.Type, ErrCorruptFrame)
	}
	if m.Control >= numControls {
		return Message{}, 0, fmt.Errorf("tp: invalid control %d: %w", m.Control, ErrCorruptFrame)
	}
	if count > 0 {
		body := eb.sized(int(count) * trace.RecordSize)
		if _, err := io.ReadFull(r, body); err != nil {
			return Message{}, 0, fmt.Errorf("tp: truncated frame body: %w", err)
		}
		// Decode straight out of the pooled body buffer into a pooled
		// record batch — no per-record staging copy.
		rs := flow.GetBatch(int(count))[:count]
		for i := range rs {
			rs[i] = trace.GetRecord(body[i*trace.RecordSize:])
			if !rs[i].Kind.Valid() {
				flow.PutBatch(rs)
				return Message{}, 0, fmt.Errorf("tp: record %d has invalid kind: %w", i, ErrCorruptFrame)
			}
		}
		m.Records = rs
		m.Pooled = true
	}
	return m, frameHeaderSize + int(count)*trace.RecordSize, nil
}

package tp

// Columnar batch wire frames: the segment column codec
// (internal/trace, colcodec.go) applied to the transfer protocol. A
// flat data frame spends trace.RecordSize (36) bytes per record; the
// same record streams compress to a few bytes per record under the
// column encoders, and on the relay tier every record crosses two wire
// hops — so the wire format is where the codec pays twice.
//
// Frame layout (little-endian), alongside the flat layout in tp.go:
//
//	type    uint8  = frameColumnar (2)
//	control uint8  (always 0 — columnar frames carry data only)
//	node    int32
//	arg     int64  (session batch sequence, as in flat frames)
//	count   uint32 (records in the batch; never zero)
//	bodyLen uint32 (encoded column bytes that follow)
//	crc     uint32 (crc32c of the body)
//	body    bodyLen bytes — the seven columns of trace.AppendColumns
//
// Negotiation: a frame type an old receiver rejects as corrupt cannot
// be sent blind. A columnar-capable endpoint therefore advertises with
// a CtlHello whose Arg is capsHelloArg — a negative value no session
// hello ever carries, ignored harmlessly by every legacy consumer —
// and a sender emits columnar frames only after it has seen the peer's
// advert. Receivers always accept both frame kinds; the negotiation
// only gates what a sender dares to emit. Against an old peer (no
// advert) every frame stays flat.
//
// The capability hello is transport bookkeeping, not application
// traffic: streamConn.Recv consumes it and it is excluded from the
// tp.msgs/bytes counters.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"prism/internal/isruntime/flow"
	"prism/internal/trace"
)

// frameColumnar is the wire type byte of a columnar data frame. It is
// deliberately outside the MsgType enum: on the wire it marks an
// alternate encoding of MsgData, and ReadMessage decodes it back to a
// plain data message.
const frameColumnar = 2

// columnarExtSize is the columnar frame's header extension past the
// shared frameHeaderSize prefix: bodyLen u32 + crc u32.
const columnarExtSize = 4 + 4

// capsHelloArg is the CtlHello argument advertising columnar decode
// capability. Session hellos carry the sender's acked sequence, which
// is never negative, so the advert can share the control value without
// colliding: legacy receivers track liveness and ignore a hello that
// does not advance their frontier.
const capsHelloArg int64 = -2

var wireCRC = crc32.MakeTable(crc32.Castagnoli)

// WireMode selects the data-frame encoding policy of a stream
// connection.
type WireMode uint8

const (
	// WireColumnar (the default) negotiates the columnar encoding:
	// advertise capability, emit columnar data frames once the peer has
	// advertised too, fall back to flat frames otherwise.
	WireColumnar WireMode = iota
	// WireFlat disables the columnar encoding entirely: no advert, all
	// data frames flat. Inbound columnar frames are still decoded — the
	// mode gates sending, not receiving.
	WireFlat
)

// ParseWireMode maps the -wire flag values of ismd/lisnode onto a
// WireMode.
func ParseWireMode(s string) (WireMode, error) {
	switch s {
	case "columnar":
		return WireColumnar, nil
	case "flat":
		return WireFlat, nil
	}
	return WireColumnar, fmt.Errorf("tp: unknown wire mode %q (want columnar or flat)", s)
}

// WithWireMode selects the connection's data-frame encoding policy.
// The default is WireColumnar.
func WithWireMode(m WireMode) ConnOption {
	return func(o *connOptions) { o.wireMode = m }
}

// ColumnarSender is implemented by connections that can report whether
// the columnar encoding is active toward the peer (capability
// advertised by both sides). The session layer uses it to decide
// whether to hold replay-window batches in encoded form.
type ColumnarSender interface {
	ColumnarActive() bool
}

// ColumnarActive reports whether c currently sends data frames
// columnar-encoded. Connections without the concept (pipes) report
// false.
func ColumnarActive(c Conn) bool {
	cs, ok := c.(ColumnarSender)
	return ok && cs.ColumnarActive()
}

// EncodeColumnarBody appends the columnar body encoding of rs to dst,
// returning the extended slice and the body's crc32c. The session
// layer uses it to fill replay windows with the encoded form
// (Message.Enc/EncCount/EncCRC) so retransmits skip re-encoding.
func EncodeColumnarBody(dst []byte, rs []trace.Record, cc *trace.ColumnCodec) ([]byte, uint32) {
	start := len(dst)
	dst = cc.AppendColumns(dst, rs)
	return dst, crc32.Checksum(dst[start:], wireCRC)
}

// AppendColumnarMessage appends the columnar wire encoding of data
// message m to buf and returns the extended slice. A pre-encoded body
// (m.Enc) is framed verbatim; otherwise m.Records is encoded with cc.
// The message must carry at least one record — empty data frames and
// controls always travel flat.
func AppendColumnarMessage(buf []byte, m Message, cc *trace.ColumnCodec) ([]byte, error) {
	if m.Type != MsgData {
		return buf, fmt.Errorf("tp: columnar frame for non-data message type %d", m.Type)
	}
	count := len(m.Records)
	if m.Enc != nil {
		count = m.EncCount
	}
	if count == 0 {
		return buf, fmt.Errorf("tp: columnar frame with no records")
	}
	if count > maxFrameRecords {
		return buf, fmt.Errorf("tp: frame too large (%d records)", count)
	}
	buf = append(buf, frameColumnar, 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Node))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.Arg))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(count))
	extOff := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // bodyLen, patched below
	buf = binary.LittleEndian.AppendUint32(buf, 0) // crc, patched below
	bodyStart := len(buf)
	var crc uint32
	if m.Enc != nil {
		buf = append(buf, m.Enc...)
		crc = m.EncCRC
	} else {
		buf = cc.AppendColumns(buf, m.Records)
		crc = crc32.Checksum(buf[bodyStart:], wireCRC)
	}
	binary.LittleEndian.PutUint32(buf[extOff:], uint32(len(buf)-bodyStart))
	binary.LittleEndian.PutUint32(buf[extOff+4:], crc)
	return buf, nil
}

// readColumnarBody finishes decoding a columnar frame whose shared
// header prefix (type/control/node/arg/count) is already parsed into
// m. It reads the header extension and body from r using the pooled
// scratch eb, verifies the checksum, and decodes straight into a
// pooled record batch, returning the body length read. Every
// structural failure is ErrCorruptFrame: the stream is desynchronized
// and the connection must be abandoned.
func readColumnarBody(r io.Reader, eb *encodeBuffer, m Message, count uint32) (Message, int, error) {
	if count == 0 {
		return Message{}, 0, fmt.Errorf("tp: columnar frame with no records: %w", ErrCorruptFrame)
	}
	ext := eb.sized(columnarExtSize)
	if _, err := io.ReadFull(r, ext); err != nil {
		return Message{}, 0, fmt.Errorf("tp: truncated columnar header: %w", err)
	}
	bodyLen := binary.LittleEndian.Uint32(ext)
	crc := binary.LittleEndian.Uint32(ext[4:])
	if bodyLen == 0 || int64(bodyLen) > int64(trace.MaxColumnsSize(int(count))) {
		return Message{}, 0, fmt.Errorf("tp: columnar body of %d bytes for %d records: %w", bodyLen, count, ErrCorruptFrame)
	}
	body := eb.sized(int(bodyLen))
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, 0, fmt.Errorf("tp: truncated columnar body: %w", err)
	}
	if got := crc32.Checksum(body, wireCRC); got != crc {
		return Message{}, 0, fmt.Errorf("tp: columnar body checksum mismatch: %w", ErrCorruptFrame)
	}
	rs := flow.GetBatch(int(count))[:count]
	if err := trace.DecodeColumns(body, rs); err != nil {
		flow.PutBatch(rs)
		return Message{}, 0, fmt.Errorf("tp: columnar body: %v: %w", err, ErrCorruptFrame)
	}
	for i := range rs {
		if !rs[i].Kind.Valid() {
			flow.PutBatch(rs)
			return Message{}, 0, fmt.Errorf("tp: record %d has invalid kind: %w", i, ErrCorruptFrame)
		}
	}
	m.Records = rs
	m.Pooled = true
	return m, int(bodyLen), nil
}

package tp

// Typed transport-error taxonomy. The raw net / io errors a stream
// connection surfaces are useless to resilience code: a caller that
// wants to redial on a dead socket but give up on a protocol violation
// cannot tell "connection reset by peer" from "invalid message type 7"
// without string matching. Send/Recv therefore classify every failure
// into one of three errors.Is-able categories:
//
//   - ErrConnClosed: the connection is gone (orderly close, reset,
//     broken pipe, half-read frame). Retryable by redialing.
//   - ErrTimeout: a configured read/write deadline fired. The
//     connection may still be healthy; retryable.
//   - ErrCorruptFrame: the byte stream desynchronized (bad type,
//     truncated body, invalid record). The stream cannot be resumed,
//     but a fresh connection can; retryable by redialing.
//
// Everything else (protocol misuse by the local caller, listener
// errors) stays unclassified and is treated as fatal.

import (
	"errors"
	"io"
	"net"
	"syscall"
)

// Sentinel classifications for transport failures.
var (
	// ErrConnClosed reports operations on a closed or broken
	// connection. ErrClosed is its historical alias.
	ErrConnClosed = errors.New("tp: connection closed")
	// ErrTimeout reports a read/write deadline firing.
	ErrTimeout = errors.New("tp: i/o timeout")
	// ErrCorruptFrame reports a mangled or truncated frame: the byte
	// stream has desynchronized and the connection must be abandoned.
	ErrCorruptFrame = errors.New("tp: corrupt frame")
	// ErrGiveUp reports that a Redial connection exhausted its
	// reconnection budget; it is terminal, not retryable.
	ErrGiveUp = errors.New("tp: redial gave up")
)

// ErrClosed is the pre-classification name for ErrConnClosed, kept for
// callers that compare against it directly.
var ErrClosed = ErrConnClosed

// connError ties a classification sentinel to the underlying transport
// error so errors.Is matches both.
type connError struct {
	class error // one of the sentinels above
	err   error // the underlying net/io error
}

func (e *connError) Error() string { return e.class.Error() + ": " + e.err.Error() }

func (e *connError) Unwrap() []error { return []error{e.class, e.err} }

// Classify wraps a transport error with its typed category. io.EOF is
// passed through untouched — it is the orderly-shutdown signal callers
// already handle — and nil stays nil. Errors that already carry a
// classification are returned as-is.
func Classify(err error) error {
	if err == nil || err == io.EOF {
		return err
	}
	if errors.Is(err, ErrConnClosed) || errors.Is(err, ErrTimeout) ||
		errors.Is(err, ErrCorruptFrame) || errors.Is(err, ErrGiveUp) {
		return err
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return &connError{class: ErrTimeout, err: err}
	}
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) ||
		errors.Is(err, syscall.EPIPE) || errors.Is(err, syscall.ECONNRESET) {
		return &connError{class: ErrConnClosed, err: err}
	}
	// A frame that ends mid-read means the peer died between writes:
	// the stream is desynchronized and unrecoverable in place.
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return &connError{class: ErrConnClosed, err: err}
	}
	return err
}

// Retryable reports whether a Send/Recv failure can plausibly be cured
// by reconnecting and replaying: closed/reset connections, deadline
// timeouts, corrupt frames, and orderly EOF all qualify. ErrGiveUp and
// unclassified errors (protocol misuse) do not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if err == io.EOF {
		return true
	}
	if errors.Is(err, ErrGiveUp) {
		return false
	}
	return errors.Is(err, ErrConnClosed) || errors.Is(err, ErrTimeout) ||
		errors.Is(err, ErrCorruptFrame)
}

package tp

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"

	"prism/internal/rng"
	"prism/internal/trace"
)

func recs(n int) []trace.Record {
	out := make([]trace.Record, n)
	for i := range out {
		out[i] = trace.Record{Node: int32(i), Kind: trace.KindUser, Tag: uint16(i), Time: int64(i * 10)}
	}
	return out
}

func TestControlString(t *testing.T) {
	if CtlFlush.String() != "flush" || CtlShutdown.String() != "shutdown" {
		t.Fatal("control names")
	}
	if Control(99).String() == "" {
		t.Fatal("unknown control should render")
	}
}

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(4)
	msg := DataMessage(3, recs(5))
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgData || got.Node != 3 || len(got.Records) != 5 {
		t.Fatalf("got %+v", got)
	}
	// Reverse direction: control.
	if err := b.Send(ControlMessage(-1, CtlFlush, 7)); err != nil {
		t.Fatal(err)
	}
	ctl, err := a.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Type != MsgControl || ctl.Control != CtlFlush || ctl.Arg != 7 {
		t.Fatalf("control %+v", ctl)
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe(0)
	errCh := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errCh <- err
	}()
	time.Sleep(time.Millisecond)
	a.Close()
	select {
	case err := <-errCh:
		if err != io.EOF {
			t.Fatalf("recv err = %v, want EOF", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Recv did not unblock")
	}
	if err := a.Send(Message{}); err != ErrClosed {
		t.Fatalf("send on closed = %v", err)
	}
	// Double close is fine.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPipeDrainsQueuedAfterClose(t *testing.T) {
	a, b := Pipe(4)
	_ = a.Send(DataMessage(1, nil))
	_ = a.Send(DataMessage(2, nil))
	a.Close()
	m1, err := b.Recv()
	if err != nil || m1.Node != 1 {
		t.Fatalf("first drain: %v %v", m1, err)
	}
	m2, err := b.Recv()
	if err != nil || m2.Node != 2 {
		t.Fatalf("second drain: %v %v", m2, err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("after drain: %v", err)
	}
}

func TestPipeBlockingFlowControl(t *testing.T) {
	a, b := Pipe(1)
	if err := a.Send(DataMessage(0, nil)); err != nil {
		t.Fatal(err)
	}
	sent := make(chan struct{})
	go func() {
		_ = a.Send(DataMessage(1, nil)) // blocks until b receives
		close(sent)
	}()
	select {
	case <-sent:
		t.Fatal("send did not block on full pipe")
	case <-time.After(5 * time.Millisecond):
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sent:
	case <-time.After(time.Second):
		t.Fatal("send never unblocked")
	}
}

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		DataMessage(5, recs(3)),
		ControlMessage(2, CtlConfigure, -99),
		DataMessage(0, nil),
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if got.Type != want.Type || got.Node != want.Node || got.Control != want.Control ||
			got.Arg != want.Arg || len(got.Records) != len(want.Records) {
			t.Fatalf("msg %d: %+v != %+v", i, got, want)
		}
		for j := range want.Records {
			if got.Records[j] != want.Records[j] {
				t.Fatalf("msg %d record %d mismatch", i, j)
			}
		}
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Fatalf("EOF expected, got %v", err)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	// Invalid type byte.
	bad := make([]byte, frameHeaderSize)
	bad[0] = 0xFF
	if _, err := ReadMessage(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad type accepted")
	}
	// Invalid control byte.
	bad2 := make([]byte, frameHeaderSize)
	bad2[0] = byte(MsgControl)
	bad2[1] = 0xEE
	if _, err := ReadMessage(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad control accepted")
	}
	// Truncated header.
	if _, err := ReadMessage(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Truncated body.
	var buf bytes.Buffer
	if err := WriteMessage(&buf, DataMessage(0, recs(2))); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadMessage(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestWriteMessageValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, Message{Type: MsgType(9)}); err == nil {
		t.Fatal("invalid type accepted")
	}
}

// TestReadMessageNeverPanics feeds random byte soup to the frame
// decoder: it must return errors, not panic, and must never allocate
// absurd buffers for hostile length fields.
func TestReadMessageNeverPanics(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, seed := range seeds {
		st := rng.New(seed)
		for trial := 0; trial < 200; trial++ {
			n := st.Intn(200)
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(st.Intn(256))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on %x: %v", data, r)
					}
				}()
				_, _ = ReadMessage(bytes.NewReader(data))
			}()
		}
	}
	// Hostile count field: header claims 2^31 records but supplies none.
	var hostile [frameHeaderSize]byte
	hostile[0] = byte(MsgData)
	hostile[14] = 0xFF
	hostile[15] = 0xFF
	hostile[16] = 0xFF
	hostile[17] = 0x7F
	if _, err := ReadMessage(bytes.NewReader(hostile[:])); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestTCPTransport(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	serverDone := make(chan Message, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		m, err := conn.Recv()
		if err != nil {
			return
		}
		serverDone <- m
		_ = conn.Send(ControlMessage(m.Node, CtlAck, int64(len(m.Records))))
	}()

	client, err := Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Send(DataMessage(4, recs(10))); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-serverDone:
		if m.Node != 4 || len(m.Records) != 10 {
			t.Fatalf("server got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never received")
	}
	ack, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Control != CtlAck || ack.Arg != 10 {
		t.Fatalf("ack %+v", ack)
	}
}

func TestTCPConcurrentSenders(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const senders = 4
	const perSender = 50
	total := make(chan int, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		n := 0
		for n < senders*perSender {
			m, err := conn.Recv()
			if err != nil {
				break
			}
			n += len(m.Records)
		}
		total <- n
	}()

	client, err := Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var wg sync.WaitGroup
	for sIdx := 0; sIdx < senders; sIdx++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				_ = client.Send(DataMessage(int32(id), recs(1)))
			}
		}(sIdx)
	}
	wg.Wait()
	select {
	case n := <-total:
		if n != senders*perSender {
			t.Fatalf("server received %d records", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server timed out")
	}
}

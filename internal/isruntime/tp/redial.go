package tp

// Redial: a self-healing Conn. The paper's runtime layers assume the
// transfer protocol is "reliable" (§2.2.3), but a TCP conn dies with
// its peer; Redial restores the abstraction by re-establishing the
// underlying connection with exponential backoff whenever an operation
// fails retryably. It deliberately does NOT retransmit the failed
// message — Send may have handed a pooled batch to the wire encoder
// already — recovery of in-flight data is the session layer's job
// (internal/isruntime/fault), driven by the OnConnect hook that runs
// on every fresh connection before traffic resumes.

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"prism/internal/isruntime/metrics"
	"prism/internal/rng"
)

// RedialConfig parameterizes a reconnecting connection.
type RedialConfig struct {
	// Dial establishes one underlying connection. Required.
	Dial func() (Conn, error)
	// Backoff is the delay before the second connection attempt of an
	// outage (the first is immediate). Zero keeps retries back-to-back
	// (useful for in-process transports and deterministic drivers).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. Zero means 1s.
	MaxBackoff time.Duration
	// Multiplier scales the backoff between attempts. Values <= 1
	// mean 2.
	Multiplier float64
	// Jitter is the fraction of each backoff randomized symmetrically
	// around its nominal value, in [0,1). Zero disables jitter.
	Jitter float64
	// Seed drives the jitter stream, so backoff schedules replay
	// deterministically under a fixed seed.
	Seed uint64
	// GiveUp bounds the cumulative downtime of one outage: when an
	// outage's dial attempts have consumed this budget, the Redial
	// fails permanently with ErrGiveUp. Zero retries forever.
	GiveUp time.Duration
	// MaxAttempts bounds the dial attempts of one outage. Zero is
	// unlimited.
	MaxAttempts int
	// OnConnect runs on every established connection (including the
	// first) before it carries traffic — the session layer's replay
	// hook. An error discards the connection and counts as a failed
	// attempt.
	OnConnect func(Conn) error
	// Metrics, when non-nil, reports tp.redials, tp.dial_failures and
	// tp.redial_giveups through the registry.
	Metrics *metrics.Registry
	// Sleep replaces time.Sleep between attempts (deterministic
	// drivers pass a no-op). Nil means time.Sleep.
	Sleep func(time.Duration)
}

// Redial is a Conn that transparently re-establishes its underlying
// connection when operations fail retryably (Retryable). The failed
// operation itself still returns its error — callers that need
// delivery guarantees layer a replay session on top — but the next
// operation finds a fresh connection. Safe for one sender and one
// receiver goroutine, the usual LIS arrangement.
type Redial struct {
	cfg    RedialConfig
	jitter *rng.Stream

	redials      *metrics.Counter
	dialFailures *metrics.Counter
	giveups      *metrics.Counter

	mu        sync.Mutex
	cond      sync.Cond
	conn      Conn
	gen       uint64 // bumped on every established connection
	dials     uint64 // successful dials (first + redials)
	dialing   bool
	closed    bool
	gaveUp    bool
	onConnect func(Conn) error
}

// NewRedial creates a reconnecting connection. No connection is
// attempted until the first operation.
func NewRedial(cfg RedialConfig) (*Redial, error) {
	if cfg.Dial == nil {
		return nil, errors.New("tp: redial needs a Dial function")
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.Multiplier <= 1 {
		cfg.Multiplier = 2
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	r := &Redial{cfg: cfg, jitter: rng.New(cfg.Seed), onConnect: cfg.OnConnect}
	r.cond.L = &r.mu
	if cfg.Metrics != nil {
		s := cfg.Metrics.Scope("tp")
		r.redials = s.Counter("redials")
		r.dialFailures = s.Counter("dial_failures")
		r.giveups = s.Counter("redial_giveups")
	}
	return r, nil
}

// SetOnConnect installs the hook run on every fresh connection before
// it carries traffic, replacing any configured one. It must be called
// before the first operation; the session layer uses it to register
// replay without owning the RedialConfig.
func (r *Redial) SetOnConnect(fn func(Conn) error) {
	r.mu.Lock()
	r.onConnect = fn
	r.mu.Unlock()
}

// Redials returns the number of successful re-establishments (the
// first connection is not counted).
func (r *Redial) Redials() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.dials == 0 {
		return 0
	}
	return r.dials - 1
}

// current returns the live connection and its generation, dialing (or
// waiting for a concurrent dial) if necessary.
func (r *Redial) current() (Conn, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		switch {
		case r.closed:
			return nil, 0, ErrConnClosed
		case r.gaveUp:
			return nil, 0, ErrGiveUp
		case r.conn != nil:
			return r.conn, r.gen, nil
		case r.dialing:
			r.cond.Wait()
		default:
			r.dialing = true
			r.mu.Unlock()
			c, err := r.dialLoop()
			r.mu.Lock()
			r.dialing = false
			r.cond.Broadcast()
			if r.closed {
				if c != nil {
					_ = c.Close()
				}
				return nil, 0, ErrConnClosed
			}
			if err != nil {
				r.gaveUp = true
				return nil, 0, err
			}
			r.conn = c
			r.gen++
			r.dials++
			if r.dials > 1 && r.redials != nil {
				r.redials.Inc()
			}
			return r.conn, r.gen, nil
		}
	}
}

// dialLoop runs one outage's reconnection attempts: immediate first
// try, then exponential backoff with jitter, bounded by the GiveUp
// budget and MaxAttempts. Runs without the lock; only one goroutine is
// in here at a time (single-flight via r.dialing).
func (r *Redial) dialLoop() (Conn, error) {
	backoff := r.cfg.Backoff
	var downtime time.Duration
	for attempt := 1; ; attempt++ {
		c, err := r.cfg.Dial()
		if err == nil {
			hook := r.hook()
			if hook == nil {
				return c, nil
			}
			if err = hook(c); err == nil {
				return c, nil
			}
			_ = c.Close()
		}
		if r.dialFailures != nil {
			r.dialFailures.Inc()
		}
		if r.cfg.MaxAttempts > 0 && attempt >= r.cfg.MaxAttempts {
			return nil, r.giveUp(fmt.Errorf("%w after %d attempts: %v", ErrGiveUp, attempt, err))
		}
		if r.isClosed() {
			return nil, ErrConnClosed
		}
		sleep := r.withJitter(backoff)
		downtime += sleep
		if r.cfg.GiveUp > 0 && downtime > r.cfg.GiveUp {
			return nil, r.giveUp(fmt.Errorf("%w after %v down: %v", ErrGiveUp, r.cfg.GiveUp, err))
		}
		if sleep > 0 {
			r.cfg.Sleep(sleep)
		}
		if backoff == 0 {
			backoff = r.cfg.Backoff
		}
		backoff = time.Duration(float64(backoff) * r.cfg.Multiplier)
		if backoff > r.cfg.MaxBackoff {
			backoff = r.cfg.MaxBackoff
		}
	}
}

func (r *Redial) giveUp(err error) error {
	if r.giveups != nil {
		r.giveups.Inc()
	}
	return err
}

func (r *Redial) hook() func(Conn) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.onConnect
}

func (r *Redial) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// withJitter perturbs a backoff by ±Jitter fraction, deterministically
// under the configured seed.
func (r *Redial) withJitter(d time.Duration) time.Duration {
	if r.cfg.Jitter <= 0 || d <= 0 {
		return d
	}
	f := 1 + r.cfg.Jitter*(2*r.jitter.Float64()-1)
	return time.Duration(float64(d) * f)
}

// ColumnarActive implements ColumnarSender by deferring to the live
// underlying connection. Between connections (an outage, or before the
// first dial) it reports false: a fresh connection renegotiates from
// scratch, so callers must not assume the capability survives a
// redial.
func (r *Redial) ColumnarActive() bool {
	r.mu.Lock()
	c := r.conn
	r.mu.Unlock()
	if c == nil {
		return false
	}
	return ColumnarActive(c)
}

// markBroken discards the connection of the given generation so the
// next operation redials. A stale generation (another goroutine
// already replaced the conn) is a no-op.
func (r *Redial) markBroken(gen uint64) {
	r.mu.Lock()
	if r.gen == gen && r.conn != nil {
		_ = r.conn.Close()
		r.conn = nil
	}
	r.mu.Unlock()
}

// Send implements Conn. On a retryable failure the connection is torn
// down (the next operation redials) and the error is returned: the
// message is NOT retransmitted, because ownership of pooled records
// passed to the failed connection. Layer a fault.Session on top for
// replay.
func (r *Redial) Send(m Message) error {
	c, gen, err := r.current()
	if err != nil {
		Recycle(&m)
		return err
	}
	if err = c.Send(m); err != nil && Retryable(err) {
		r.markBroken(gen)
	}
	return err
}

// Recv implements Conn. Retryable receive failures (peer death,
// timeouts, corrupt frames) tear the connection down and transparently
// continue on the re-established one; Recv only returns an error once
// the Redial is closed or has given up.
func (r *Redial) Recv() (Message, error) {
	for {
		c, gen, err := r.current()
		if err != nil {
			if errors.Is(err, ErrConnClosed) {
				return Message{}, io.EOF
			}
			return Message{}, err
		}
		m, err := c.Recv()
		if err == nil {
			return m, nil
		}
		if !Retryable(err) {
			return Message{}, err
		}
		r.markBroken(gen)
		if r.isClosed() {
			return Message{}, io.EOF
		}
	}
}

// Close implements Conn: closes the underlying connection and stops
// all future redials.
func (r *Redial) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	c := r.conn
	r.conn = nil
	r.cond.Broadcast()
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

package tp

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/trace"
)

// TestPipeSendAfterClose pins the send-after-close contract: ErrClosed,
// the message counted as dropped, and pooled payloads recycled rather
// than leaked.
func TestPipeSendAfterClose(t *testing.T) {
	a, b := Pipe(2)
	_ = b
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	batch := flow.GetBatch(4)
	batch = append(batch, trace.Record{Kind: trace.KindUser})
	if err := a.Send(PooledDataMessage(0, batch)); err != ErrClosed {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	dc, ok := a.(DropCounter)
	if !ok {
		t.Fatal("pipe conn should count drops")
	}
	if dc.DroppedMessages() != 1 {
		t.Fatalf("dropped %d", dc.DroppedMessages())
	}
	// Both ends fail after either closes.
	if err := b.Send(DataMessage(0, nil)); err != ErrClosed {
		t.Fatalf("peer send after close = %v", err)
	}
}

func TestPipePolicyDropNewest(t *testing.T) {
	a, _ := PipePolicy(1, flow.DropNewest, nil)
	if err := a.Send(DataMessage(1, nil)); err != nil {
		t.Fatal(err)
	}
	// Queue full, no consumer: the arriving message is shed, Send does
	// not block and does not error.
	if err := a.Send(DataMessage(2, nil)); err != nil {
		t.Fatal(err)
	}
	if n := a.(DropCounter).DroppedMessages(); n != 1 {
		t.Fatalf("dropped %d", n)
	}
}

func TestPipePolicyDropOldest(t *testing.T) {
	a, b := PipePolicy(1, flow.DropOldest, nil)
	_ = a.Send(DataMessage(1, nil))
	_ = a.Send(DataMessage(2, nil)) // displaces 1
	got, err := b.Recv()
	if err != nil || got.Node != 2 {
		t.Fatalf("recv %+v %v", got, err)
	}
	if n := a.(DropCounter).DroppedMessages(); n != 1 {
		t.Fatalf("dropped %d", n)
	}
}

func TestPipePolicySpill(t *testing.T) {
	var mu sync.Mutex
	var spilled []Message
	a, b := PipePolicy(1, flow.SpillToStorage, func(m Message) error {
		mu.Lock()
		spilled = append(spilled, m)
		mu.Unlock()
		return nil
	})
	_ = a.Send(DataMessage(1, nil))
	_ = a.Send(DataMessage(2, nil)) // spills 1
	got, err := b.Recv()
	if err != nil || got.Node != 2 {
		t.Fatalf("recv %+v %v", got, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(spilled) != 1 || spilled[0].Node != 1 {
		t.Fatalf("spilled %+v", spilled)
	}
	if n := a.(DropCounter).DroppedMessages(); n != 0 {
		t.Fatalf("spill counted as drop: %d", n)
	}
}

// TestPipePolicyLossyNeverBlocks floods an unbuffered lossy pipe with
// no consumer: Send must return promptly every time.
func TestPipePolicyLossyNeverBlocks(t *testing.T) {
	a, _ := PipePolicy(0, flow.DropOldest, nil)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			_ = a.Send(DataMessage(int32(i), nil))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("lossy send blocked")
	}
}

func TestDialTimeout(t *testing.T) {
	// Success path against a live listener.
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		m, err := conn.Recv()
		if err == nil {
			_ = conn.Send(ControlMessage(m.Node, CtlAck, 0))
		}
		conn.Close()
	}()
	conn, err := DialTimeout(ln.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(DataMessage(1, recs(2))); err != nil {
		t.Fatal(err)
	}
	if ack, err := conn.Recv(); err != nil || ack.Control != CtlAck {
		t.Fatalf("ack %+v %v", ack, err)
	}

	// Failure path: nobody listens on a freshly released port.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := dead.Addr().String()
	dead.Close()
	if _, err := DialTimeout(addr, 250*time.Millisecond); err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

// TestReadTimeout wedges a connection: with WithReadTimeout set, Recv
// must fail with a timeout instead of hanging forever.
func TestReadTimeout(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", WithReadTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()
	client, err := Dial(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-accepted
	defer server.Close()

	errCh := make(chan error, 1)
	go func() {
		_, err := server.Recv() // client sends nothing
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Recv succeeded on silent peer")
		}
		ne, ok := err.(net.Error)
		if ok && !ne.Timeout() {
			t.Fatalf("not a timeout: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv ignored read timeout")
	}
}

// TestConnMetrics checks the transport's registry counters across a
// round trip.
func TestConnMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	ln, err := Listen("127.0.0.1:0", tpOpt(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan Message, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		m, err := conn.Recv()
		if err == nil {
			got <- m
		}
	}()
	client, err := Dial(ln.Addr(), WithConnMetrics(reg), WithWriteTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.Send(DataMessage(0, recs(3))); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("server never received")
	}
	snap := reg.Snapshot()
	wantBytes := float64(frameHeaderSize + 3*trace.RecordSize)
	if snap.Value("tp.msgs_sent") != 1 || snap.Value("tp.bytes_tx") != wantBytes {
		t.Fatalf("send metrics %+v", snap)
	}
	if snap.Value("tp.msgs_recv") != 1 || snap.Value("tp.bytes_rx") != wantBytes {
		t.Fatalf("recv metrics %+v", snap)
	}
	if snap.Value("tp.recs_tx") != 3 || snap.Value("tp.recs_rx") != 3 {
		t.Fatalf("record metrics %+v", snap)
	}
}

// tpOpt is a helper so the server side shares the registry.
func tpOpt(reg *metrics.Registry) ConnOption { return WithConnMetrics(reg) }

// TestPooledWireRoundTrip checks ownership across the wire: writing a
// pooled message recycles it, and reading marks the decoded records
// pooled for the downstream consumer.
func TestPooledWireRoundTrip(t *testing.T) {
	var buf writableBuffer
	batch := flow.GetBatch(4)
	for i := 0; i < 3; i++ {
		batch = append(batch, trace.Record{Kind: trace.KindUser, Tag: uint16(i)})
	}
	if err := WriteMessage(&buf, PooledDataMessage(2, batch)); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Pooled {
		t.Fatal("decoded records not marked pooled")
	}
	if len(m.Records) != 3 || m.Records[1].Tag != 1 {
		t.Fatalf("decoded %+v", m)
	}
	Recycle(&m)
}

// writableBuffer adapts a byte slice as an io.ReadWriter without the
// bytes.Buffer's internal growth heuristics getting in the way.
type writableBuffer struct {
	b []byte
}

func (w *writableBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *writableBuffer) Read(p []byte) (int, error) {
	if len(w.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, w.b)
	w.b = w.b[n:]
	return n, nil
}

package tp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"
)

// --- classification -------------------------------------------------

type fakeTimeout struct{}

func (fakeTimeout) Error() string   { return "deadline exceeded" }
func (fakeTimeout) Timeout() bool   { return true }
func (fakeTimeout) Temporary() bool { return true }

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		in   error
		want error // sentinel errors.Is should match; nil = passthrough
	}{
		{"nil", nil, nil},
		{"eof passthrough", io.EOF, nil},
		{"net closed", net.ErrClosed, ErrConnClosed},
		{"closed pipe", io.ErrClosedPipe, ErrConnClosed},
		{"epipe", syscall.EPIPE, ErrConnClosed},
		{"econnreset", syscall.ECONNRESET, ErrConnClosed},
		{"half frame", io.ErrUnexpectedEOF, ErrConnClosed},
		{"net timeout", fakeTimeout{}, ErrTimeout},
		{"wrapped reset", fmt.Errorf("read: %w", syscall.ECONNRESET), ErrConnClosed},
	}
	for _, c := range cases {
		got := Classify(c.in)
		if c.want == nil {
			if got != c.in {
				t.Errorf("%s: Classify changed %v to %v", c.name, c.in, got)
			}
			continue
		}
		if !errors.Is(got, c.want) {
			t.Errorf("%s: Classify(%v) = %v, not Is(%v)", c.name, c.in, got, c.want)
		}
		// The original error must remain reachable through the wrap.
		if !errors.Is(got, c.in) && !errors.As(got, new(net.Error)) {
			t.Errorf("%s: underlying error lost: %v", c.name, got)
		}
		// Idempotent: re-classifying is a no-op.
		if again := Classify(got); again != got {
			t.Errorf("%s: Classify not idempotent", c.name)
		}
	}
	// Unrelated errors stay unclassified.
	odd := errors.New("protocol misuse")
	if got := Classify(odd); got != odd {
		t.Errorf("unrelated error rewritten: %v", got)
	}
}

func TestRetryable(t *testing.T) {
	if Retryable(nil) {
		t.Error("nil retryable")
	}
	if !Retryable(io.EOF) {
		t.Error("EOF must be retryable (peer restart)")
	}
	for _, e := range []error{ErrConnClosed, ErrTimeout, ErrCorruptFrame} {
		if !Retryable(e) || !Retryable(fmt.Errorf("op: %w", e)) {
			t.Errorf("%v must be retryable", e)
		}
	}
	if Retryable(ErrGiveUp) || Retryable(errors.New("bad call")) {
		t.Error("terminal errors must not be retryable")
	}
}

func TestErrClosedAliasesConnClosed(t *testing.T) {
	if ErrClosed != ErrConnClosed {
		t.Fatal("historical ErrClosed must alias ErrConnClosed")
	}
}

func TestStreamConnRecvClassification(t *testing.T) {
	// A read deadline firing surfaces as ErrTimeout.
	c1, c2 := net.Pipe()
	defer c2.Close()
	sc := NewStreamConn(c1, WithReadTimeout(5*time.Millisecond))
	if _, err := sc.Recv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("idle deadline: %v, want ErrTimeout", err)
	}
	// Reading our own closed connection surfaces as ErrConnClosed.
	_ = sc.Close()
	if _, err := sc.Recv(); !errors.Is(err, ErrConnClosed) {
		t.Fatalf("recv on closed conn: %v, want ErrConnClosed", err)
	}
}

// --- double close ---------------------------------------------------

func TestStreamConnDoubleClose(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	sc := NewStreamConn(c1)
	first := sc.Close()
	if second := sc.Close(); second != first {
		t.Fatalf("second Close = %v, want first result %v", second, first)
	}
}

func TestListenerDoubleClose(t *testing.T) {
	ln, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	first := ln.Close()
	if second := ln.Close(); second != first {
		t.Fatalf("second Close = %v, want first result %v", second, first)
	}
	if first != nil {
		t.Fatalf("first Close failed: %v", first)
	}
}

// --- redial ---------------------------------------------------------

func TestRedialReconnects(t *testing.T) {
	var mu sync.Mutex
	var serverEnds []Conn
	dials := 0
	rd, err := NewRedial(RedialConfig{
		Dial: func() (Conn, error) {
			a, b := Pipe(8)
			mu.Lock()
			dials++
			serverEnds = append(serverEnds, b)
			mu.Unlock()
			return a, nil
		},
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.Send(DataMessage(0, nil)); err != nil {
		t.Fatal(err)
	}
	// Cut the connection: the failed Send surfaces its error (no
	// silent retransmit — replay is the session layer's job), and the
	// next operation heals by redialing.
	mu.Lock()
	first := serverEnds[0]
	mu.Unlock()
	_ = first.Close()
	if err := rd.Send(DataMessage(0, nil)); !Retryable(err) {
		t.Fatalf("send on dead conn: %v, want retryable", err)
	}
	if err := rd.Send(DataMessage(0, nil)); err != nil {
		t.Fatalf("send after redial: %v", err)
	}
	mu.Lock()
	gotDials, second := dials, serverEnds[1]
	mu.Unlock()
	if gotDials != 2 || rd.Redials() != 1 {
		t.Fatalf("dials=%d redials=%d, want 2/1", gotDials, rd.Redials())
	}
	if m, err := second.Recv(); err != nil || m.Type != MsgData {
		t.Fatalf("fresh conn did not carry traffic: %v %v", m, err)
	}
	_ = rd.Close()
}

func TestRedialGivesUp(t *testing.T) {
	rd, err := NewRedial(RedialConfig{
		Dial:        func() (Conn, error) { return nil, errors.New("refused") },
		MaxAttempts: 3,
		Sleep:       func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rd.Send(DataMessage(0, nil)); !errors.Is(err, ErrGiveUp) {
		t.Fatalf("exhausted attempts: %v, want ErrGiveUp", err)
	}
	// Give-up is terminal: later operations fail the same way without
	// dialing again.
	if err := rd.Send(DataMessage(0, nil)); !errors.Is(err, ErrGiveUp) {
		t.Fatalf("post-give-up send: %v, want ErrGiveUp", err)
	}
}

func TestRedialRecvAcrossReconnect(t *testing.T) {
	var mu sync.Mutex
	var ends []Conn
	end := func(i int) Conn {
		mu.Lock()
		defer mu.Unlock()
		if i >= len(ends) {
			return nil
		}
		return ends[i]
	}
	rd, err := NewRedial(RedialConfig{
		Dial: func() (Conn, error) {
			a, b := Pipe(8)
			mu.Lock()
			ends = append(ends, b)
			mu.Unlock()
			return a, nil
		},
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prime the first connection with one message, then kill it.
	done := make(chan Message, 2)
	go func() {
		for {
			m, err := rd.Recv()
			if err != nil {
				close(done)
				return
			}
			done <- m
		}
	}()
	deadline := time.After(5 * time.Second)
	wait := func() Message {
		select {
		case m := <-done:
			return m
		case <-deadline:
			t.Fatal("Recv never delivered")
			return Message{}
		}
	}
	for end(0) == nil {
		time.Sleep(time.Millisecond)
	}
	_ = end(0).Send(ControlMessage(1, CtlAck, 7))
	if m := wait(); m.Arg != 7 {
		t.Fatalf("first conn message: %+v", m)
	}
	_ = end(0).Close()
	// Recv transparently continues on the re-established connection.
	for end(1) == nil {
		time.Sleep(time.Millisecond)
	}
	_ = end(1).Send(ControlMessage(1, CtlAck, 8))
	if m := wait(); m.Arg != 8 {
		t.Fatalf("second conn message: %+v", m)
	}
	_ = rd.Close()
	if _, ok := <-done; ok {
		t.Fatal("Recv loop did not terminate on Close")
	}
}

func TestRedialOnConnectRunsFirst(t *testing.T) {
	var mu sync.Mutex
	var srv Conn
	rd, err := NewRedial(RedialConfig{
		Dial: func() (Conn, error) {
			a, b := Pipe(8)
			mu.Lock()
			srv = b
			mu.Unlock()
			return a, nil
		},
		Sleep: func(time.Duration) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	rd.SetOnConnect(func(raw Conn) error {
		return raw.Send(ControlMessage(3, CtlHello, 42))
	})
	if err := rd.Send(DataMessage(3, nil)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	server := srv
	mu.Unlock()
	// The hook's hello must precede the first data message.
	if m, err := server.Recv(); err != nil || m.Control != CtlHello || m.Arg != 42 {
		t.Fatalf("first message %+v %v, want hello(42)", m, err)
	}
	if m, err := server.Recv(); err != nil || m.Type != MsgData {
		t.Fatalf("second message %+v %v, want data", m, err)
	}
	_ = rd.Close()
}

package relay

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/fault"
	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/ism"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// genExecution builds a deterministic distributed execution over the
// given node count: user events, matched send/recv pairs across nodes,
// strictly increasing global capture Times (every record has a unique
// Time — the federation's determinism contract) and contiguous
// per-source capture sequences in Logical. Records are returned in
// global Time order.
func genExecution(nodes, events int, seed int64) []trace.Record {
	rng := rand.New(rand.NewSource(seed))
	type pend struct {
		from, to int32
		tag      uint16
	}
	var pending []pend
	seqs := make([]uint64, nodes)
	all := make([]trace.Record, 0, events)
	var now int64
	tag := uint16(1)
	for len(all) < events {
		now++
		switch {
		case len(pending) > 0 && rng.Intn(3) == 0:
			p := pending[0]
			pending = pending[1:]
			all = append(all, trace.Record{
				Node: p.to, Kind: trace.KindRecv, Tag: p.tag,
				Time: now, Payload: int64(p.from), Logical: seqs[p.to],
			})
			seqs[p.to]++
		case rng.Intn(3) == 0 && tag < 65000:
			from := int32(rng.Intn(nodes))
			to := int32(rng.Intn(nodes))
			if to == from {
				to = (from + 1) % int32(nodes)
			}
			all = append(all, trace.Record{
				Node: from, Kind: trace.KindSend, Tag: tag,
				Time: now, Payload: int64(to), Logical: seqs[from],
			})
			seqs[from]++
			pending = append(pending, pend{from: from, to: to, tag: tag})
			tag++
		default:
			n := int32(rng.Intn(nodes))
			all = append(all, trace.Record{
				Node: n, Kind: trace.KindUser,
				Time: now, Payload: now, Logical: seqs[n],
			})
			seqs[n]++
		}
	}
	return all
}

// predictRoot is the deterministic in-process federation model: the
// root trace a flat single manager produces from the whole capture in
// global Time order — sequence repair per source, then causal merging
// with Lamport stamps. Any federation topology over the same capture
// must emit exactly this.
func predictRoot(all []trace.Record) []trace.Record {
	sorted := append([]trace.Record(nil), all...)
	trace.SortByTime(sorted)
	seq := trace.NewSequencer()
	cm := trace.NewCausalMerger()
	out := make([]trace.Record, 0, len(all))
	var buf []trace.Record
	for _, r := range sorted {
		s := r.Logical
		r.Logical = 0
		buf = seq.AddTo(buf[:0], r, s)
		for _, rr := range buf {
			out = cm.AddTo(out, rr)
		}
	}
	return out
}

// traceBytes serializes records through the binary trace codec — the
// byte-identity yardstick.
func traceBytes(t *testing.T, rs []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	if err := w.WriteAll(rs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readTrace(t *testing.T, data []byte) []trace.Record {
	t.Helper()
	rs, err := trace.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// fedLeaf is one leaf manager with its uplink: an ordered DeferCausal
// ISM whose dispatch stream feeds an Uplink batch sink. SISO staging
// is load-bearing: the uplink watermark contract needs the leaf to
// dispatch in nondecreasing capture-Time order, and MISO's per-source
// round-robin pop reorders arrival order across sources.
type fedLeaf struct {
	m  *ism.ISM
	up *Uplink
}

func newFedLeaf(node int32, conn tp.Conn, batch int) *fedLeaf {
	var clock event.VirtualClock
	m := ism.New(ism.Config{
		Buffering:   ism.SISO,
		Ordered:     true,
		DeferCausal: true,
		Shards:      2,
		Overflow:    flow.Block,
	}, &clock)
	up := NewUplink(node, conn, UplinkConfig{BatchSize: batch, Window: 512})
	m.SubscribeBatch("uplink", up.Push)
	return &fedLeaf{m: m, up: up}
}

// feed injects records one message at a time — per-leaf Time order,
// the leaf half of the determinism contract — beaconing the watermark
// every beaconEvery records.
func (lf *fedLeaf) feed(recs []trace.Record, beaconEvery int) {
	for i, r := range recs {
		lf.m.Inject(tp.DataMessage(r.Node, []trace.Record{r}))
		if beaconEvery > 0 && i%beaconEvery == beaconEvery-1 {
			lf.up.Beacon()
		}
	}
}

// finish drains the leaf and seals its lane with a final mark at (or
// beyond) the global maximum Time so the leaf never stalls the merge
// again.
func (lf *fedLeaf) finish(finalMark int64) {
	lf.m.Drain()
	lf.up.Flush()
	lf.up.Mark(finalMark)
}

func (lf *fedLeaf) close(t *testing.T) {
	t.Helper()
	if err := lf.m.Close(); err != nil {
		t.Fatal(err)
	}
	_ = lf.up.Close()
}

// drainAll drives a set of replay windows empty together, resending
// across all of them each round. With dispatch-gated acks, one
// uplink's dropped final mark stalls the merge for every other lane,
// so resends must be driven collectively — draining one uplink to
// completion before touching the next can deadlock. Empty windows
// everywhere mean everything ever sent is merged into the root trace.
func drainAll(t *testing.T, ups []*Uplink, what string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		pending := 0
		for _, up := range ups {
			pending += up.Pending()
		}
		if pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d batches never acked", what, pending)
		}
		for _, up := range ups {
			_ = up.Resend()
		}
		for _, up := range ups {
			up.WaitAcked(5 * time.Millisecond)
		}
	}
}

// skewPartition maps node -> leaf with a deliberately uneven spread:
// half the nodes on leaf 0, then halving shares — the skewed source
// partitioning of the acceptance property.
func skewPartition(nodes, leaves int) []int {
	part := make([]int, nodes)
	leaf, share, used := 0, (nodes+1)/2, 0
	for n := range part {
		part[n] = leaf
		used++
		if used >= share && leaf < leaves-1 {
			leaf++
			used = 0
			if share > 1 {
				share = (share + 1) / 2
			}
		}
	}
	return part
}

func TestMarkRecordRoundTrip(t *testing.T) {
	m := markRecord(42)
	if !isMarkBatch([]trace.Record{m}) {
		t.Fatal("mark record not recognized")
	}
	if isMarkBatch([]trace.Record{m, m}) {
		t.Fatal("two-record batch misread as mark")
	}
	if isMarkBatch([]trace.Record{{Kind: trace.KindMark, Time: 42}}) {
		t.Fatal("user-process mark record misread as in-band watermark")
	}
}

// TestRelayAdmissionOrderAndGatedAcks drives raw sequenced batches at
// a relay: an above-hole batch must be parked (not merged early), the
// hole-filling batch releases both in order, an in-band mark advances
// the ack frontier without emitting anything, and acks never run ahead
// of dispatch.
func TestRelayAdmissionOrderAndGatedAcks(t *testing.T) {
	rel := New(Config{Root: true, AckEvery: 1})
	var mu sync.Mutex
	var got []trace.Record
	rel.Subscribe("collect", func(r trace.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	a, b := tp.Pipe(64)
	rel.Serve(b)
	go func() { // drain acks so the pipe never backs up
		for {
			if _, err := a.Recv(); err != nil {
				return
			}
		}
	}()

	batch := func(seq int64, rs ...trace.Record) {
		m := tp.DataMessage(7, rs)
		m.Arg = seq
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	rec := func(seq uint64, tm int64) trace.Record {
		return trace.Record{Node: 3, Kind: trace.KindUser, Time: tm, Payload: tm, Logical: seq}
	}
	// Batch 2 first: delivered by the receiver, parked by the lane.
	batch(2, rec(2, 30), rec(3, 40))
	time.Sleep(10 * time.Millisecond)
	if n := len(got); n != 0 {
		t.Fatalf("above-hole batch leaked %d records into the merge", n)
	}
	if f := rel.ackFrontier(7); f != 0 {
		t.Fatalf("acked %d before the hole closed", f)
	}
	batch(1, rec(0, 10), rec(1, 20))
	rel.Drain()
	if f := rel.ackFrontier(7); f != 2 {
		t.Fatalf("ack frontier = %d, want 2 after both batches dispatched", f)
	}
	// An in-band mark occupies seq 3 and is trivially satisfied.
	batch(3, markRecord(99))
	rel.Drain()
	if f := rel.ackFrontier(7); f != 3 {
		t.Fatalf("ack frontier = %d, want 3 after mark", f)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 4 {
		t.Fatalf("emitted %d records, want 4", len(got))
	}
	for i, r := range got {
		if r.Payload != int64((i+1)*10) {
			t.Fatalf("record %d out of order: payload %d", i, r.Payload)
		}
		if r.Logical != uint64(i+1) {
			t.Fatalf("record %d: Lamport stamp %d, want %d", i, r.Logical, i+1)
		}
	}
	st := rel.Stats()
	if st.Marks != 1 || st.Lanes != 1 || st.OrderBreaks != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := rel.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRelayPartitionRejects verifies source-partitioned admission: a
// source that already entered through one lane is refused on another.
func TestRelayPartitionRejects(t *testing.T) {
	rel := New(Config{Root: true})
	a1, b1 := tp.Pipe(16)
	a2, b2 := tp.Pipe(16)
	rel.Serve(b1)
	rel.Serve(b2)
	send := func(conn tp.Conn, node int32, seq int64, rs ...trace.Record) {
		m := tp.DataMessage(node, rs)
		m.Arg = seq
		if err := conn.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	send(a1, 100, 1, trace.Record{Node: 5, Kind: trace.KindUser, Time: 1, Logical: 0})
	rel.Drain()
	send(a2, 101, 1, trace.Record{Node: 5, Kind: trace.KindUser, Time: 2, Logical: 1})
	rel.Drain()
	deadline := time.Now().Add(5 * time.Second)
	for rel.Stats().PartitionRejects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cross-lane source was never rejected")
		}
		time.Sleep(time.Millisecond)
	}
	st := rel.Stats()
	if st.Dispatched != 1 {
		t.Fatalf("dispatched %d, want only the owning lane's record", st.Dispatched)
	}
	// The rejected record does not gate the ack: lane 101's batch has
	// no surviving needs and acks as soon as the merger next parks.
	for rel.ackFrontier(101) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("rejecting lane ack frontier = %d, want 1", rel.ackFrontier(101))
		}
		time.Sleep(time.Millisecond)
	}
	if err := rel.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRelayMaxStallForcesProgress: a lane that goes silent without a
// watermark stalls the merge; MaxStall bounds the damage by forcing
// the minimum head through, counted as an order break.
func TestRelayMaxStallForcesProgress(t *testing.T) {
	rel := New(Config{Root: true, MaxStall: 2 * time.Millisecond})
	var mu sync.Mutex
	var got []trace.Record
	rel.Subscribe("collect", func(r trace.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	a1, b1 := tp.Pipe(16)
	a2, b2 := tp.Pipe(16)
	rel.Serve(b1)
	rel.Serve(b2)
	// Lane 101 exists (hello) but never sends data or marks.
	if err := a2.Send(tp.ControlMessage(101, tp.CtlHello, 0)); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := a2.Recv(); err != nil {
				return
			}
		}
	}()
	laneDeadline := time.Now().Add(5 * time.Second)
	for rel.Stats().Lanes == 0 {
		if time.Now().After(laneDeadline) {
			t.Fatal("silent lane never registered")
		}
		time.Sleep(time.Millisecond)
	}
	m := tp.DataMessage(100, []trace.Record{{Node: 1, Kind: trace.KindUser, Time: 10, Logical: 0}})
	m.Arg = 1
	if err := a1.Send(m); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("record never force-dispatched past the silent lane")
		}
		time.Sleep(time.Millisecond)
	}
	if st := rel.Stats(); st.OrderBreaks == 0 {
		t.Fatalf("stats = %+v, want an order break", st)
	}
	if err := rel.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRelayDrainForStalledTail reproduces the deployed two-leaf
// shutdown hazard: leaf clocks are independent, so one lane's final
// mark can trail another lane's tail records. An unbounded Drain can
// never finish there (the watermark rule holds the tail forever);
// DrainFor must report the stall instead of hanging, and Close's final
// drain must still dispatch the held records.
func TestRelayDrainForStalledTail(t *testing.T) {
	rel := New(Config{Root: true, Downstreams: 2, AckEvery: 1})
	var mu sync.Mutex
	var got []trace.Record
	rel.Subscribe("collect", func(r trace.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})
	a1, b1 := tp.Pipe(16)
	a2, b2 := tp.Pipe(16)
	rel.Serve(b1)
	rel.Serve(b2)
	for _, c := range []tp.Conn{a1, a2} {
		go func(c tp.Conn) { // drain acks so the pipes never back up
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		}(c)
	}
	send := func(c tp.Conn, node int32, seq int64, rs ...trace.Record) {
		m := tp.DataMessage(node, rs)
		m.Arg = seq
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	// Lane 100: three tail records stamped past lane 101's final mark,
	// sealed with its own final mark.
	send(a1, 100, 1,
		trace.Record{Node: 1, Kind: trace.KindUser, Time: 100, Logical: 0},
		trace.Record{Node: 1, Kind: trace.KindUser, Time: 101, Logical: 1},
		trace.Record{Node: 1, Kind: trace.KindUser, Time: 102, Logical: 2})
	send(a1, 100, 2, markRecord(103))
	// Lane 101 seals with a final mark BELOW the other lane's tail —
	// its clock simply runs behind, and it has nothing more to send.
	send(a2, 101, 1, markRecord(50))
	deadline := time.Now().Add(5 * time.Second)
	for rel.Stats().Marks != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("marks = %d, want 2", rel.Stats().Marks)
		}
		time.Sleep(time.Millisecond)
	}
	if rel.DrainFor(100 * time.Millisecond) {
		t.Fatal("DrainFor reported quiet while the watermark rule held the tail")
	}
	if err := rel.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("final drain dispatched %d records, want 3", len(got))
	}
}

// TestFederationMergeEquivalence is the acceptance property: a 2-level
// tree of 4 leaf managers over a skewed source partition emits a
// byte-identical causally ordered root trace to a single flat manager
// (modeled by predictRoot) over the same capture.
func TestFederationMergeEquivalence(t *testing.T) {
	const (
		nodes  = 8
		events = 4000
		leaves = 4
	)
	all := genExecution(nodes, events, 7)
	part := skewPartition(nodes, leaves)
	finalMark := int64(len(all)) + 2

	rel := New(Config{Root: true, AckEvery: 1, Downstreams: leaves})
	var mu sync.Mutex
	var got []trace.Record
	rel.Subscribe("collect", func(r trace.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})

	cells := make([]*fedLeaf, leaves)
	ups := make([]*Uplink, leaves)
	for i := range cells {
		a, b := tp.Pipe(256)
		rel.Serve(b)
		cells[i] = newFedLeaf(int32(100+i), a, 64)
		ups[i] = cells[i].up
	}
	var wg sync.WaitGroup
	for i := range cells {
		sub := make([]trace.Record, 0, events/2)
		for _, r := range all {
			if part[r.Node] == i {
				sub = append(sub, r)
			}
		}
		wg.Add(1)
		go func(lf *fedLeaf, sub []trace.Record) {
			defer wg.Done()
			lf.feed(sub, 512)
			lf.finish(finalMark)
		}(cells[i], sub)
	}
	wg.Wait()
	drainAll(t, ups, "leaves")

	want := predictRoot(all)
	mu.Lock()
	gotCopy := append([]trace.Record(nil), got...)
	mu.Unlock()
	if len(gotCopy) != len(want) {
		t.Fatalf("root emitted %d records, want %d", len(gotCopy), len(want))
	}
	if !bytes.Equal(traceBytes(t, gotCopy), traceBytes(t, want)) {
		for i := range want {
			if gotCopy[i] != want[i] {
				t.Fatalf("divergence at %d: got %+v want %+v", i, gotCopy[i], want[i])
			}
		}
		t.Fatal("traces differ")
	}
	if err := trace.CheckCausal(gotCopy); err != nil {
		t.Fatal(err)
	}
	st := rel.Stats()
	if st.OrderBreaks != 0 || st.PartitionRejects != 0 || st.Lanes != leaves {
		t.Fatalf("stats = %+v", st)
	}
	for _, lf := range cells {
		lf.close(t)
	}
	if err := rel.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFederationThreeLevelTree proves the tiers compose: leaves feed
// two inner (non-root) relays whose pass-through output feeds the
// root, and the root trace is still byte-identical to the flat model.
func TestFederationThreeLevelTree(t *testing.T) {
	const (
		nodes  = 8
		events = 2000
		leaves = 4
	)
	all := genExecution(nodes, events, 11)
	part := skewPartition(nodes, leaves)
	finalMark := int64(len(all)) + 2

	root := New(Config{Root: true, AckEvery: 1, Downstreams: 2})
	var mu sync.Mutex
	var got []trace.Record
	root.Subscribe("collect", func(r trace.Record) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
	})

	inners := make([]*Relay, 2)
	innerUps := make([]*Uplink, 2)
	for i := range inners {
		a, b := tp.Pipe(256)
		root.Serve(b)
		inners[i] = New(Config{AckEvery: 1, Downstreams: 2}) // non-root: pass-through tier
		innerUps[i] = NewUplink(int32(200+i), a, UplinkConfig{BatchSize: 64, Window: 512})
		inners[i].SubscribeBatch("uplink", innerUps[i].Push)
	}
	cells := make([]*fedLeaf, leaves)
	for i := range cells {
		a, b := tp.Pipe(256)
		inners[i/2].Serve(b)
		cells[i] = newFedLeaf(int32(100+i), a, 64)
	}
	var wg sync.WaitGroup
	for i := range cells {
		sub := make([]trace.Record, 0, events/2)
		for _, r := range all {
			if part[r.Node] == i {
				sub = append(sub, r)
			}
		}
		wg.Add(1)
		go func(lf *fedLeaf, sub []trace.Record) {
			defer wg.Done()
			lf.feed(sub, 256)
			lf.finish(finalMark)
		}(cells[i], sub)
	}
	wg.Wait()
	leafUps := make([]*Uplink, leaves)
	for i, lf := range cells {
		leafUps[i] = lf.up
	}
	drainAll(t, leafUps, "leaves")
	// The inner tiers have emitted everything their leaves sent; seal
	// both inner lanes at the root before draining either — the root
	// merge cannot release one inner's tail past the other's silence.
	for i, in := range inners {
		in.Drain()
		innerUps[i].Flush()
		innerUps[i].Mark(finalMark)
	}
	drainAll(t, innerUps, "inners")

	want := predictRoot(all)
	mu.Lock()
	gotCopy := append([]trace.Record(nil), got...)
	mu.Unlock()
	if len(gotCopy) != len(want) {
		t.Fatalf("root emitted %d records, want %d", len(gotCopy), len(want))
	}
	if !bytes.Equal(traceBytes(t, gotCopy), traceBytes(t, want)) {
		t.Fatal("three-level root trace differs from flat model")
	}
	if err := trace.CheckCausal(gotCopy); err != nil {
		t.Fatal(err)
	}
	for _, lf := range cells {
		lf.close(t)
	}
	for i, in := range inners {
		if err := in.Close(); err != nil {
			t.Fatal(err)
		}
		_ = innerUps[i].Close()
	}
	if err := root.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFederationCrashResumeExactlyOnce is the chaos property: a
// 2-level tree under fault-injected leaf→relay links (drops and
// disconnects forcing session replay) survives two relay crashes.
// Each crash abandons in-flight records (Kill), and each successor is
// rebuilt from the durable root trace alone; the concatenated output
// across all three incarnations must still be byte-identical to the
// flat model — exactly-once at the root, Lamport continuity included.
func TestFederationCrashResumeExactlyOnce(t *testing.T) {
	const (
		nodes  = 8
		events = 3000
		leaves = 4
		phases = 3
	)
	all := genExecution(nodes, events, 23)
	part := skewPartition(nodes, leaves)
	finalMark := int64(len(all)) + 2

	spools := make([]*bytes.Buffer, 0, phases)
	var curMu sync.Mutex
	var cur *Relay
	var down bool
	current := func() *Relay {
		curMu.Lock()
		defer curMu.Unlock()
		return cur
	}
	setDown := func(v bool) {
		curMu.Lock()
		down = v
		curMu.Unlock()
	}
	isDown := func() bool {
		curMu.Lock()
		defer curMu.Unlock()
		return down
	}
	newIncarnation := func(resume []trace.Record) *Relay {
		spool := &bytes.Buffer{}
		spools = append(spools, spool)
		rel := New(Config{Root: true, AckEvery: 1, Downstreams: leaves, Resume: resume, Spool: spool})
		curMu.Lock()
		cur = rel
		curMu.Unlock()
		return rel
	}
	newIncarnation(nil)

	cells := make([]*fedLeaf, leaves)
	for i := range cells {
		inj, err := fault.NewInjector(9100+uint64(i), fault.Plan{PDrop: 0.05, PDisconnect: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		rd, err := tp.NewRedial(tp.RedialConfig{
			Dial: func() (tp.Conn, error) {
				if isDown() {
					return nil, tp.ErrConnClosed
				}
				a, b := tp.Pipe(256)
				current().Serve(b)
				return inj.WrapConn(a), nil
			},
			Backoff:    100 * time.Microsecond,
			MaxBackoff: 2 * time.Millisecond,
			Jitter:     0.2,
			Seed:       uint64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		cells[i] = newFedLeaf(int32(100+i), rd, 32)
	}

	subs := make([][]trace.Record, leaves)
	for i := range subs {
		for _, r := range all {
			if part[r.Node] == i {
				subs[i] = append(subs[i], r)
			}
		}
	}
	feedPhase := func(phase int, last bool) {
		var wg sync.WaitGroup
		for i := range cells {
			sub := subs[i]
			lo, hi := len(sub)*phase/phases, len(sub)*(phase+1)/phases
			wg.Add(1)
			go func(lf *fedLeaf, chunk []trace.Record) {
				defer wg.Done()
				lf.feed(chunk, 128)
				if last {
					lf.finish(finalMark)
				} else {
					lf.m.Drain()
					lf.up.Flush()
				}
			}(cells[i], sub[lo:hi])
		}
		wg.Wait()
		if last {
			ups := make([]*Uplink, leaves)
			for i, lf := range cells {
				ups[i] = lf.up
			}
			drainAll(t, ups, "leaves")
			return
		}
		// Best-effort settle: some batches ack, injected drops and the
		// unmarked Time-tail keep others genuinely in flight — the state
		// the crash must not lose.
		for round := 0; round < 3; round++ {
			for _, lf := range cells {
				_ = lf.up.Resend()
				lf.up.WaitAcked(10 * time.Millisecond)
			}
		}
	}

	var emitted []trace.Record
	for phase := 0; phase < phases; phase++ {
		feedPhase(phase, phase == phases-1)
		if phase == phases-1 {
			break
		}
		// Crash: abandon everything admitted but unemitted, then rebuild
		// the next incarnation from the durable root trace alone.
		setDown(true)
		rel := current()
		if err := rel.Kill(); err != nil {
			t.Fatal(err)
		}
		emitted = append(emitted, readTrace(t, spools[len(spools)-1].Bytes())...)
		newIncarnation(append([]trace.Record(nil), emitted...))
		setDown(false)
	}
	final := current()
	final.Drain()
	emitted = append(emitted, readTrace(t, spools[len(spools)-1].Bytes())...)

	want := predictRoot(all)
	if len(emitted) != len(want) {
		t.Fatalf("federation emitted %d records across %d incarnations, want %d",
			len(emitted), phases, len(want))
	}
	if !bytes.Equal(traceBytes(t, emitted), traceBytes(t, want)) {
		for i := range want {
			if emitted[i] != want[i] {
				t.Fatalf("divergence at %d: got %+v want %+v", i, emitted[i], want[i])
			}
		}
		t.Fatal("traces differ")
	}
	if err := trace.CheckCausal(emitted); err != nil {
		t.Fatal(err)
	}
	// Exactly-once, independently of ordering: every unique capture
	// Time appears exactly once.
	seen := make(map[int64]int, len(emitted))
	for _, r := range emitted {
		seen[r.Time]++
	}
	for _, r := range all {
		if seen[r.Time] != 1 {
			t.Fatalf("record at time %d emitted %d times", r.Time, seen[r.Time])
		}
	}
	if st := final.Stats(); st.OrderBreaks != 0 {
		t.Fatalf("final incarnation stats = %+v, want no order breaks", st)
	}
	for _, lf := range cells {
		lf.close(t)
	}
	if err := final.Close(); err != nil {
		t.Fatal(err)
	}
}

// Package relay implements the federated ISM tier: relay managers
// that aggregate N downstream managers (leaves or other relays) into
// one causally ordered root trace — the "logically centralized" ISM of
// §2.2.2 made literal at a scale one manager cannot serve alone. The
// topology is the GIPSY manager-of-managers tree; the ordering
// discipline is DeWiz's: every tier forwards an already-ordered
// sub-stream and causality is kept intact across tier boundaries
// instead of being re-derived at the root.
//
// The tier has two halves:
//
//   - Uplink (this file): attached to a leaf ISM running in
//     Config.DeferCausal mode (or to a non-root Relay), it batches the
//     manager's merged output and forwards it through a fault.Session,
//     so the relay link inherits the exact guarantees LIS links have —
//     at-least-once wire delivery, exactly-once accounting,
//     crash-restart resume via hello-frontier adoption.
//
//   - Relay (relay.go): accepts N downstream sessions, runs one
//     bounded SPSC lane per downstream, and k-way merges the lane
//     streams record-granularly on the (Time, Node, Process) total
//     order under a per-lane watermark rule, feeding a
//     trace.CausalMerger that matches sends/recvs across managers.
//
// Watermarks travel in-band: Mark sends a single KindMark record with
// Process == -1 as a normal sequenced data batch, so watermark
// delivery inherits the session's ordering, dedup and replay — a mark
// can never overtake the data it vouches for, even across drops and
// reconnects.
//
// The determinism contract a downstream must honor: its forwarded
// stream is nondecreasing in capture Time (globally unique Times make
// the (Time, Node, Process) order total and the root trace
// reproducible). A leaf satisfies it by injecting in capture order
// with SISO input staging — MISO's per-source round-robin pop
// preserves program order per source but reorders across sources, and
// would let a leaf's own watermark overclaim.
package relay

import (
	"sync"
	"time"

	"prism/internal/isruntime/fault"
	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// markProcess is the reserved Process id of in-band watermark records.
// Real sources use non-negative process ids; a mark batch is exactly
// one KindMark record with this process, and is consumed by the lane
// it arrives on rather than admitted into the stream.
const markProcess int32 = -1

// markRecord builds the sequenced watermark record: Time carries the
// watermark — a promise that every record this uplink will ever send
// after this point has a capture Time of at least w.
func markRecord(w int64) trace.Record {
	return trace.Record{Process: markProcess, Kind: trace.KindMark, Time: w}
}

// isMarkBatch reports whether a delivered batch is an in-band
// watermark rather than stream data.
func isMarkBatch(rs []trace.Record) bool {
	return len(rs) == 1 && rs[0].Process == markProcess && rs[0].Kind == trace.KindMark
}

// UplinkConfig parameterizes an Uplink.
type UplinkConfig struct {
	// BatchSize is the flush threshold in records. Zero means 512.
	BatchSize int
	// Window bounds the session replay window in unacked batches.
	// Zero means the fault.Session default.
	Window int
	// Spill receives batches demoted from the replay window (overflow,
	// terminal send failure). Nil drops (and counts) them.
	Spill flow.Spill
	// Metrics, when non-nil, reports uplink and session counters.
	Metrics *metrics.Registry
}

// Uplink forwards a manager's merged output upstream as sequenced
// batches through a fault.Session. Attach it with ISM.SubscribeBatch
// (or Relay.SubscribeBatch for deeper trees): Push runs on the
// manager's dispatch goroutine, everything else may run elsewhere.
type Uplink struct {
	node int32
	sess *fault.Session

	recvDone chan struct{}

	mRecords *metrics.Counter
	mFlushes *metrics.Counter
	mMarks   *metrics.Counter

	mu      sync.Mutex
	buf     []trace.Record
	batch   int
	maxTime int64 // highest capture Time pushed: the data-driven watermark
	marked  int64 // highest watermark sent, so marks stay monotone
	sendErr error // first terminal send failure
}

// NewUplink wraps conn (typically a *tp.Redial dialing the relay) with
// a replay session for the given downstream node id and starts the ack
// loop. The node id names this manager on the relay — it must be
// unique among the relay's downstreams and is unrelated to the Node
// ids inside the records it forwards.
func NewUplink(node int32, conn tp.Conn, cfg UplinkConfig) *Uplink {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	u := &Uplink{
		node: node,
		sess: fault.NewSession(node, conn, fault.SessionConfig{
			Window: cfg.Window, Spill: cfg.Spill, Metrics: cfg.Metrics,
		}),
		recvDone: make(chan struct{}),
		batch:    cfg.BatchSize,
	}
	if cfg.Metrics != nil {
		s := cfg.Metrics.Scope("uplink")
		u.mRecords = s.Counter("records")
		u.mFlushes = s.Counter("flushes")
		u.mMarks = s.Counter("marks")
	}
	// The ack loop: the session filters CtlAck out of the inbound
	// stream; anything else from the relay is drained and ignored (the
	// relay has no downstream-bound control traffic today).
	go func() {
		defer close(u.recvDone)
		for {
			m, err := u.sess.Recv()
			if err != nil {
				return
			}
			tp.Recycle(&m)
		}
	}()
	return u
}

// Push appends a dispatched batch to the outbound buffer, flushing
// when the batch threshold is reached. The slice is copied — Push is
// safe to use directly as an ISM.SubscribeBatch sink whose slices are
// pool-owned.
func (u *Uplink) Push(rs []trace.Record) {
	if len(rs) == 0 {
		return
	}
	u.mu.Lock()
	for _, r := range rs {
		if r.Time > u.maxTime {
			u.maxTime = r.Time
		}
	}
	u.buf = append(u.buf, rs...)
	if len(u.buf) >= u.batch {
		u.sendLocked(u.takeLocked())
	}
	u.mu.Unlock()
	if u.mRecords != nil {
		u.mRecords.Add(uint64(len(rs)))
	}
}

// takeLocked moves the buffered records into a pooled batch whose
// ownership transfers to the wire. Called with u.mu held.
func (u *Uplink) takeLocked() []trace.Record {
	n := len(u.buf)
	if n == 0 {
		return nil
	}
	out := flow.GetBatch(n)[:n]
	copy(out, u.buf)
	u.buf = u.buf[:0]
	return out
}

// sendLocked forwards one pooled batch through the session, which
// copies it into the replay window before transmission; retryable
// transport failures are absorbed (the batch replays on reconnect).
// Called with u.mu held: the session stamps sequence numbers under its
// own lock but transmits outside it, so the uplink's lock is what
// keeps a concurrent Mark from putting a watermark on the wire ahead
// of data it covers.
func (u *Uplink) sendLocked(out []trace.Record) {
	if out == nil {
		return
	}
	err := u.sess.Send(tp.PooledDataMessage(u.node, out))
	if u.mFlushes != nil {
		u.mFlushes.Inc()
	}
	if err != nil && u.sendErr == nil {
		u.sendErr = err
	}
}

// Flush sends any buffered records immediately.
func (u *Uplink) Flush() {
	u.mu.Lock()
	u.sendLocked(u.takeLocked())
	u.mu.Unlock()
}

// Mark flushes and then advances the relay's watermark for this lane
// to at least w (clamped up to the highest Time already pushed, and
// kept monotone). The mark is a sequenced single-record data batch, so
// it can never overtake the data it covers. Send marks on a beacon
// cadence and once after the final Flush at shutdown — a lane whose
// watermark lags only stalls the relay's merge up to its MaxStall
// budget, but a drained tree needs the final marks to release the last
// records deterministically.
func (u *Uplink) Mark(w int64) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.sendLocked(u.takeLocked())
	if u.maxTime > w {
		w = u.maxTime
	}
	if w <= u.marked {
		return
	}
	u.marked = w
	mb := flow.GetBatch(1)[:1]
	mb[0] = markRecord(w)
	u.sendLocked(mb)
	if u.mMarks != nil {
		u.mMarks.Inc()
	}
}

// Beacon sends a mark at the highest capture Time forwarded so far —
// the safe live watermark (the manager dispatches in nondecreasing
// Time order, so nothing older can still be in flight behind it).
func (u *Uplink) Beacon() { u.Mark(0) }

// Heartbeat sends a liveness beacon for the relay's degradation
// tracking.
func (u *Uplink) Heartbeat() error { return u.sess.Heartbeat() }

// Resend retransmits the unacked window — the recovery step for
// batches lost to silent drops that never broke the connection.
func (u *Uplink) Resend() error { return u.sess.Resend() }

// Pending returns the unacked batches in the replay window.
func (u *Uplink) Pending() int { return u.sess.Pending() }

// WaitAcked blocks until the replay window is empty or the timeout
// expires. Because the relay's acks are dispatch-gated, an empty
// window means every forwarded record has been merged into the root
// trace — end-to-end drain, not just wire delivery.
func (u *Uplink) WaitAcked(timeout time.Duration) bool {
	return u.sess.WaitAcked(timeout)
}

// Err returns the first terminal send failure, if any.
func (u *Uplink) Err() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.sendErr
}

// Close closes the underlying connection and waits for the ack loop
// to exit. Buffered but unflushed records are dropped — callers drain
// with Flush/Mark/WaitAcked first for an orderly shutdown.
func (u *Uplink) Close() error {
	err := u.sess.Close()
	<-u.recvDone
	return err
}

package relay

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/fault"
	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// Config parameterizes a Relay.
type Config struct {
	// Root marks this relay as the top of the tree: the merged stream
	// runs through a trace.CausalMerger matching sends to receives
	// across managers and assigning Lamport stamps. A non-root relay
	// forwards the merged stream with the per-source uplink sequences
	// in Logical untouched, preserving the downstream contract for the
	// next tier's lane sequencers.
	Root bool
	// Downstreams, when positive, is the expected downstream count.
	// The merger holds dispatch until that many lanes have attached: a
	// downstream that has not connected yet is a silent lane with no
	// watermark at all, and dispatching around it would break the
	// global Time order the moment it appears. Zero trusts whoever is
	// connected — correct only when downstreams attach before data
	// flows.
	Downstreams int
	// LaneRing bounds each downstream lane's SPSC hand-off ring to the
	// merger, in batch slots. A full ring backpressures the lane's
	// serve goroutine, which backpressures the session sender. Zero
	// means a generous default.
	LaneRing int
	// MaxStall bounds how long the merger waits for a silent lane's
	// watermark before force-dispatching the minimum head out of order
	// (counted in Stats.OrderBreaks). Zero means wait forever — strict
	// ordering, at the mercy of the slowest downstream's marks.
	MaxStall time.Duration
	// AckEvery is the receipt-ack cadence handed to the session
	// receiver; the dispatch-gated acks advance independently of it.
	AckEvery int
	// FlushBatch bounds the dispatch buffer in records before it is
	// flushed to the spool and subscribers. Zero means 512.
	FlushBatch int
	// Resume seeds a restarted relay from its own durable output: the
	// records the previous incarnation emitted (its spool, re-read).
	// Emission counts, causal-merge state and per-source dedup cursors
	// are rebuilt from it, so downstream at-least-once replays dedupe
	// record-granularly instead of re-emitting.
	Resume []trace.Record
	// Spool, when non-nil, receives every emitted record in the binary
	// trace format — at the root, the federation's single causally
	// ordered trace.
	Spool io.Writer
	// SpoolContinue marks Spool as the continuation of an existing
	// trace stream (a restarted relay appending to the spool it resumed
	// from): the stream header is suppressed, because the file's
	// original header already covers the appended records.
	SpoolContinue bool
	// Metrics, when non-nil, is the registry the relay reports through
	// (under the "ism.relay" scope). Nil gets a private registry.
	Metrics *metrics.Registry
	// Clock supplies arrival timestamps for degradation tracking. Nil
	// means a real clock.
	Clock event.Clock
}

// Stats is a snapshot of relay activity.
type Stats struct {
	Lanes            int    // downstream lanes created
	Dispatched       uint64 // records emitted from the merge
	Resumes          uint64 // hello-frontier adoptions (downstream resumed us)
	Stalls           uint64 // merger waits imposed by the watermark rule
	OrderBreaks      uint64 // records force-dispatched past a stalled lane
	DupRecords       uint64 // record-granular replays absorbed by lane sequencers
	PartitionRejects uint64 // records refused for arriving via a second lane
	Marks            uint64 // watermark records consumed
	Held             int    // records parked in the cross-manager causal merge
	SessionDups      uint64 // batch-granular replays absorbed by the session layer
}

// laneSlot is one ordered sub-batch handed from a lane to the merger.
type laneSlot struct {
	recs   []trace.Record
	pooled bool
}

// heldBatch is a session batch delivered above a contiguity hole,
// parked until the hole closes.
type heldBatch struct {
	recs   []trace.Record
	pooled bool
}

// sourceNeed is one source's contribution to a batch's ack condition:
// the batch may be acknowledged once the relay has emitted past seq
// (the highest uplink sequence the batch carried for the source).
type sourceNeed struct {
	key trace.SourceKey
	seq uint64
}

// ackEntry gates one session batch's acknowledgement on dispatch: the
// entry is satisfied once every need is emitted. Entries form a FIFO
// per lane (session sequences are admitted contiguously), so the
// satisfied prefix is exactly the cumulative ack frontier.
type ackEntry struct {
	seq   int64
	needs []sourceNeed
}

// lane is one downstream manager's ingest path: contiguous session
// admission, record-granular dedup, a bounded hand-off ring to the
// merger, and the dispatch-gated ack queue.
type lane struct {
	node int32
	idx  int // position in the relay's lane snapshot

	// admitMu serializes admission. The SPSC ring's single-producer
	// contract must survive a reconnect moving the downstream to a new
	// serve goroutine; the mutex is uncontended in steady state (one
	// live connection per downstream).
	admitMu   sync.Mutex
	nextBatch int64 // highest contiguously admitted session seq
	held      map[int64]heldBatch
	seq       *trace.Sequencer
	scratch   map[trace.SourceKey]uint64 // per-batch ack-need accumulator

	ring  *flow.SPSC[laneSlot]
	space chan struct{}

	// watermark is the lane's Time frontier: the downstream promises
	// every future record carries at least this capture Time. Advanced
	// by admitted data (after it is in the ring) and by mark records.
	watermark atomic.Int64

	connMu sync.Mutex
	conn   tp.Conn

	ackMu    sync.Mutex
	ackSent  int64 // highest dispatch-gated ack advertised
	pendAcks []ackEntry

	admittedRecs atomic.Uint64
	consumedRecs atomic.Uint64

	ringGauge *metrics.Gauge
	wmGauge   *metrics.Gauge
	lagGauge  *metrics.Gauge
}

// signalSpace tells a lane blocked on a full ring that the merger
// freed a slot.
func (ln *lane) signalSpace() {
	select {
	case ln.space <- struct{}{}:
	default:
	}
}

// raiseWatermark advances the lane's Time frontier monotonically.
func (ln *lane) raiseWatermark(w int64) {
	for {
		cur := ln.watermark.Load()
		if w <= cur || ln.watermark.CompareAndSwap(cur, w) {
			return
		}
	}
}

// laneHead is the merger's cursor into a lane's current slot.
type laneHead struct {
	recs   []trace.Record
	pos    int
	pooled bool
}

// sink mirrors the ISM subscriber shape: record- or batch-granular.
type sink struct {
	name  string
	fn    func(trace.Record)
	batch func([]trace.Record)
}

// Relay is a running relay ISM: it accepts downstream manager sessions
// (Serve), merges their ordered sub-streams into one causally ordered
// trace, and acknowledges each downstream batch only once every record
// in it has been emitted — so a downstream's empty replay window means
// its data is merged at the root, not merely received.
type Relay struct {
	cfg  Config
	recv *fault.Receiver

	lanesMu sync.Mutex
	lanes   atomic.Pointer[[]*lane]

	// owner enforces source-partitioned admission: a source enters the
	// federation through exactly one lane. restoreNext carries the
	// per-source dedup cursors rebuilt from Config.Resume, applied to a
	// lane's sequencer when it first claims the source.
	ownMu       sync.Mutex
	owner       map[trace.SourceKey]*lane
	restoreNext map[trace.SourceKey]uint64

	// Merger-goroutine state.
	heads   []laneHead
	has     []bool
	heap    []int32
	cm      *trace.CausalMerger // non-nil at the root
	emitted map[trace.SourceKey]uint64
	outBuf  []trace.Record
	stalled int
	retry   bool
	force   bool

	frontier atomic.Int64 // merge frontier: no future emission below this Time
	closing  atomic.Bool
	killed   atomic.Bool
	parks    atomic.Uint64
	wake     chan struct{}
	stop     chan struct{}
	runDone  chan struct{}

	reg        *metrics.Registry
	laneScope  metrics.Scope
	mLanes     *metrics.Gauge
	mDispatch  *metrics.Counter
	mResumes   *metrics.Counter
	mStalls    *metrics.Counter
	mBreaks    *metrics.Counter
	mDups      *metrics.Counter
	mRejects   *metrics.Counter
	mMarks     *metrics.Counter
	mHeld      *metrics.Gauge
	mUnseq     *metrics.Counter
	mAcksGated *metrics.Counter

	mu      sync.Mutex
	subs    []sink
	spool   *trace.Writer
	conns   []tp.Conn
	closed  bool
	serveWG sync.WaitGroup
}

// New creates and starts a relay. Resume records, if any, are absorbed
// before any downstream is served.
func New(cfg Config) *Relay {
	if cfg.LaneRing <= 0 {
		cfg.LaneRing = 256
	}
	if cfg.FlushBatch <= 0 {
		cfg.FlushBatch = 512
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	r := &Relay{
		cfg:         cfg,
		owner:       make(map[trace.SourceKey]*lane),
		restoreNext: make(map[trace.SourceKey]uint64),
		emitted:     make(map[trace.SourceKey]uint64),
		stalled:     -1,
		wake:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		runDone:     make(chan struct{}),
		reg:         reg,
	}
	empty := make([]*lane, 0)
	r.lanes.Store(&empty)
	r.frontier.Store(math.MinInt64)
	s := reg.Scope("ism").Scope("relay")
	r.laneScope = s
	r.mLanes = s.Gauge("lanes")
	r.mDispatch = s.Counter("dispatched")
	r.mResumes = s.Counter("resumes")
	r.mStalls = s.Counter("stalls")
	r.mBreaks = s.Counter("order_breaks")
	r.mDups = s.Counter("dup_records")
	r.mRejects = s.Counter("partition_rejects")
	r.mMarks = s.Counter("marks")
	r.mHeld = s.Gauge("held")
	r.mUnseq = s.Counter("unsequenced_drops")
	r.mAcksGated = s.Counter("acks_gated")
	if cfg.Root {
		r.cm = trace.NewCausalMerger()
	}
	// Restore: replay the previous incarnation's emitted output through
	// the accounting (and, at the root, the causal-merge state) so
	// at-least-once replays from downstreams dedupe by sequence match.
	// The emitted counts double as the per-source restore cursors —
	// emission preserves per-source order, so "n records of key seen"
	// means exactly uplink sequences [0, n).
	for _, rec := range cfg.Resume {
		key := trace.SourceKey{Node: rec.Node, Process: rec.Process}
		r.restoreNext[key]++
		r.emitted[key]++
		if r.cm != nil {
			r.cm.Observe(rec)
		}
	}
	if cfg.Spool != nil {
		if cfg.SpoolContinue {
			r.spool = trace.NewAppendWriter(cfg.Spool)
		} else {
			r.spool = trace.NewWriter(cfg.Spool)
		}
	}
	r.recv = fault.NewReceiver(fault.ReceiverConfig{
		AckEvery:    cfg.AckEvery,
		Clock:       cfg.Clock,
		Metrics:     reg,
		AckFrontier: r.ackFrontier,
		OnHello:     r.onHello,
	})
	go r.run()
	return r
}

// Metrics returns the registry the relay reports through.
func (r *Relay) Metrics() *metrics.Registry { return r.reg }

// Subscribe registers a record-granular sink for the merged root
// stream; fn runs on the merger goroutine in emission order.
func (r *Relay) Subscribe(name string, fn func(trace.Record)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs = append(r.subs, sink{name: name, fn: fn})
}

// SubscribeBatch registers a batch-granular sink: the slice is only
// valid for the duration of the call. An Uplink's Push makes a non-root
// relay's output the next tier's input: relay trees compose.
func (r *Relay) SubscribeBatch(name string, fn func([]trace.Record)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs = append(r.subs, sink{name: name, batch: fn})
}

// Serve reads messages from a downstream connection until EOF. The
// session layer (hello/ack/dedup) is interposed automatically.
func (r *Relay) Serve(conn tp.Conn) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.conns = append(r.conns, conn)
	r.mu.Unlock()
	r.serveWG.Add(1)
	go func() {
		defer r.serveWG.Done()
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			if r.recv.Filter(conn, m) {
				continue
			}
			r.inject(conn, m)
		}
	}()
}

// Degraded reports downstreams not heard from within the silence
// budget.
func (r *Relay) Degraded(silence time.Duration) []int32 {
	return r.recv.Degraded(silence)
}

// inject routes one post-filter message. Only sequenced data batches
// feed the merge; a relay's inputs are managers, which always speak
// the session protocol.
func (r *Relay) inject(conn tp.Conn, m tp.Message) {
	if m.Type != tp.MsgData {
		return
	}
	if m.Arg == 0 {
		r.mUnseq.Inc()
		tp.Recycle(&m)
		return
	}
	recs, pooled := m.Records, m.Pooled
	if !pooled {
		recs = flow.GetBatch(len(m.Records))[:len(m.Records)]
		copy(recs, m.Records)
		pooled = true
	}
	ln := r.laneFor(m.Node)
	ln.connMu.Lock()
	ln.conn = conn
	ln.connMu.Unlock()
	r.admit(ln, m.Arg, recs, pooled)
}

// lookupLane finds an existing lane without creating one.
func (r *Relay) lookupLane(node int32) *lane {
	for _, ln := range *r.lanes.Load() {
		if ln.node == node {
			return ln
		}
	}
	return nil
}

// laneFor returns (creating if needed) the downstream's lane. The lane
// snapshot is copy-on-append behind an atomic pointer so the merger
// iterates it without locks.
func (r *Relay) laneFor(node int32) *lane {
	if ln := r.lookupLane(node); ln != nil {
		return ln
	}
	r.lanesMu.Lock()
	defer r.lanesMu.Unlock()
	if ln := r.lookupLane(node); ln != nil {
		return ln
	}
	cur := *r.lanes.Load()
	ln := &lane{
		node:    node,
		idx:     len(cur),
		held:    make(map[int64]heldBatch),
		seq:     trace.NewSequencer(),
		scratch: make(map[trace.SourceKey]uint64),
		ring:    flow.NewSPSC[laneSlot](r.cfg.LaneRing),
		space:   make(chan struct{}, 1),
	}
	// A relay can (re)start against downstreams already mid-stream; the
	// restore cursors override adoption per source as they are claimed.
	ln.seq.Resume()
	ln.watermark.Store(math.MinInt64)
	ls := r.laneScope.Scope(fmt.Sprintf("lane%d", node))
	ln.ringGauge = ls.Gauge("ring_occupancy")
	ln.wmGauge = ls.Gauge("watermark")
	ln.lagGauge = ls.Gauge("lag_ticks")
	next := make([]*lane, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = ln
	r.lanes.Store(&next)
	r.mLanes.Set(int64(len(next)))
	return r.lookupLane(node) // return the published instance
}

// onHello adopts a reconnecting downstream's acked frontier: batches
// at or below it were claimed by a previous incarnation of this relay
// and will never be resent, so the lane's contiguity cursor and ack
// floor both start there.
func (r *Relay) onHello(node int32, acked int64) {
	ln := r.laneFor(node)
	ln.admitMu.Lock()
	if acked > ln.nextBatch {
		ln.nextBatch = acked
		for s, hb := range ln.held {
			if s <= acked {
				if hb.pooled {
					flow.PutBatch(hb.recs)
				}
				delete(ln.held, s)
			}
		}
		r.mResumes.Inc()
	}
	ln.admitMu.Unlock()
	ln.ackMu.Lock()
	if acked > ln.ackSent {
		ln.ackSent = acked
	}
	ln.ackMu.Unlock()
}

// ackFrontier supplies the dispatch-gated ack value the session layer
// rides back to a downstream in place of the receipt frontier.
func (r *Relay) ackFrontier(node int32) int64 {
	ln := r.lookupLane(node)
	if ln == nil {
		return 0
	}
	ln.ackMu.Lock()
	defer ln.ackMu.Unlock()
	return ln.ackSent
}

// admit applies contiguous session ordering to one delivered batch.
// The fault.Receiver delivers above-hole batches immediately (its job
// is dedup, not ordering); the lane parks them until the hole closes
// so the per-lane stream stays in uplink order — the merge's per-lane
// FIFO contract.
func (r *Relay) admit(ln *lane, seq int64, recs []trace.Record, pooled bool) {
	ln.admitMu.Lock()
	if seq <= ln.nextBatch {
		// Below the admission floor: a replay that raced the receiver's
		// own dedup window (fresh receiver after restart).
		ln.admitMu.Unlock()
		if pooled {
			flow.PutBatch(recs)
		}
		return
	}
	if seq != ln.nextBatch+1 {
		ln.held[seq] = heldBatch{recs: recs, pooled: pooled}
		ln.admitMu.Unlock()
		return
	}
	r.process(ln, seq, recs, pooled)
	ln.nextBatch = seq
	for {
		hb, ok := ln.held[ln.nextBatch+1]
		if !ok {
			break
		}
		delete(ln.held, ln.nextBatch+1)
		ln.nextBatch++
		r.process(ln, ln.nextBatch, hb.recs, hb.pooled)
	}
	ln.admitMu.Unlock()
}

// process runs one contiguously admitted batch: watermark application
// for marks; ownership check, record-granular dedup, ring hand-off and
// ack gating for data. Runs with ln.admitMu held.
func (r *Relay) process(ln *lane, seq int64, recs []trace.Record, pooled bool) {
	if isMarkBatch(recs) {
		w := recs[0].Time
		ln.ackMu.Lock()
		ln.pendAcks = append(ln.pendAcks, ackEntry{seq: seq})
		ln.ackMu.Unlock()
		if pooled {
			flow.PutBatch(recs)
		}
		ln.raiseWatermark(w)
		ln.wmGauge.Set(ln.watermark.Load())
		r.mMarks.Inc()
		r.signal()
		return
	}
	for k := range ln.scratch {
		delete(ln.scratch, k)
	}
	out := flow.GetBatch(len(recs))
	held0 := ln.seq.Held()
	maxT := int64(math.MinInt64)
	rejects := 0
	for _, rec := range recs {
		key := trace.SourceKey{Node: rec.Node, Process: rec.Process}
		if !r.claim(key, ln) {
			rejects++
			continue
		}
		if rec.Time > maxT {
			maxT = rec.Time
		}
		if s, ok := ln.scratch[key]; !ok || rec.Logical > s {
			ln.scratch[key] = rec.Logical
		}
		out = ln.seq.AddTo(out, rec, rec.Logical)
	}
	if rejects > 0 {
		r.mRejects.Add(uint64(rejects))
	}
	// Accepted records either came out (len(out) may exceed the batch
	// when releases unblock held successors), went on hold (a gap the
	// dedup cursors open is impossible on an in-order lane, but a
	// buggy downstream is not), or were absorbed as sequence-matched
	// duplicates — the replayed prefix of a partially dispatched batch.
	heldDelta := ln.seq.Held() - held0
	if absorbed := len(recs) - rejects - len(out) - heldDelta; absorbed > 0 {
		r.mDups.Add(uint64(absorbed))
	}
	var needs []sourceNeed
	if len(ln.scratch) > 0 {
		needs = make([]sourceNeed, 0, len(ln.scratch))
		for k, s := range ln.scratch {
			needs = append(needs, sourceNeed{key: k, seq: s})
		}
	}
	ln.ackMu.Lock()
	ln.pendAcks = append(ln.pendAcks, ackEntry{seq: seq, needs: needs})
	ln.ackMu.Unlock()
	if pooled {
		flow.PutBatch(recs)
	}
	if len(out) > 0 {
		slot := laneSlot{recs: out, pooled: true}
		for !ln.ring.TryPush(slot) {
			<-ln.space
		}
		ln.admittedRecs.Add(uint64(len(out)))
		ln.ringGauge.Set(int64(ln.ring.Len()))
	} else {
		flow.PutBatch(out)
	}
	// The watermark must not advance until the records it covers are in
	// the ring: the merger's clear rule reads "ring empty, watermark
	// past t" as "this lane cannot contribute below t".
	if maxT != math.MinInt64 {
		ln.raiseWatermark(maxT)
		ln.wmGauge.Set(ln.watermark.Load())
	}
	r.signal()
}

// claim enforces source partitioning: a source's first lane owns it
// for the relay's lifetime, and the first claim installs the restore
// cursor rebuilt from Config.Resume into the owning lane's sequencer.
func (r *Relay) claim(key trace.SourceKey, ln *lane) bool {
	r.ownMu.Lock()
	owner, ok := r.owner[key]
	if !ok {
		r.owner[key] = ln
		if n, ok := r.restoreNext[key]; ok {
			ln.seq.SetNext(key, n)
		}
		r.ownMu.Unlock()
		return true
	}
	r.ownMu.Unlock()
	return owner == ln
}

// signal wakes the merger; safe from any goroutine, never blocks.
func (r *Relay) signal() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// run is the merger goroutine: a record-granular k-way merge over the
// lane rings on the (Time, Node, Process) total order, gated by the
// per-lane watermark rule, feeding the causal merger (root) or the
// pass-through dispatch (inner tier). Acknowledgements advance only
// here, after emission — the dispatch gate.
func (r *Relay) run() {
	defer close(r.runDone)
	for {
		if r.step() {
			continue
		}
		r.flushOut()
		r.updateFrontier()
		r.advanceAcks()
		r.parks.Add(1)
		stalled := r.stalled >= 0 && !r.closing.Load()
		if stalled {
			r.mStalls.Inc()
		}
		if stalled && r.cfg.MaxStall > 0 {
			t := time.NewTimer(r.cfg.MaxStall)
			select {
			case <-r.wake:
				t.Stop()
			case <-t.C:
				// The watermark rule has held the merge past its stall
				// budget; escape it for one record. step re-checks first —
				// if the stall cleared while we slept, no break happens.
				r.force = true
			case <-r.stop:
				t.Stop()
				r.finalDrain()
				return
			}
			continue
		}
		select {
		case <-r.wake:
		case <-r.stop:
			r.finalDrain()
			return
		}
	}
}

// grow extends the merger's per-lane state to cover a snapshot of n
// lanes (the snapshot is append-only).
func (r *Relay) grow(n int) {
	for len(r.heads) < n {
		r.heads = append(r.heads, laneHead{})
		r.has = append(r.has, false)
	}
}

// refill pops a slot into the head position of every headless lane.
func (r *Relay) refill(lanes []*lane) {
	for i, ln := range lanes {
		if r.has[i] {
			continue
		}
		if slot, ok := ln.ring.TryPop(); ok {
			r.heads[i] = laneHead{recs: slot.recs, pooled: slot.pooled}
			r.has[i] = true
			r.heapPush(int32(i))
			ln.signalSpace()
			ln.ringGauge.Set(int64(ln.ring.Len()))
		}
	}
}

// step dispatches at most one record and reports whether it made
// progress. No progress with stalled >= 0 is a watermark stall.
func (r *Relay) step() bool {
	r.stalled = -1
	lanes := *r.lanes.Load()
	r.grow(len(lanes))
	r.refill(lanes)
	if len(r.heap) == 0 {
		r.force = false
		return false
	}
	li := int(r.heap[0])
	h := &r.heads[li]
	rec := h.recs[h.pos]
	if !r.closing.Load() && !r.clearFor(lanes, li, rec.Time) {
		if r.retry {
			r.retry = false
			return true
		}
		if !r.force {
			return false
		}
		r.force = false
		r.mBreaks.Inc()
	} else {
		r.force = false
	}
	r.heapPop()
	h.pos++
	if h.pos == len(h.recs) {
		lanes[li].consumedRecs.Add(uint64(len(h.recs)))
		if h.pooled {
			flow.PutBatch(h.recs)
		}
		r.heads[li] = laneHead{}
		r.has[li] = false
	} else {
		r.heapPush(int32(li))
	}
	if !r.killed.Load() {
		r.dispatch(rec)
	}
	return true
}

// clearFor reports whether dispatching a record with capture Time t
// from lane min is safe: every other headless lane either has ring
// backlog (pick it up first — it may sort below t) or a watermark at
// or past t (it has promised nothing older is coming). Equal Times
// across lanes are arbitrated by (Node, Process); the federation's
// determinism contract stamps distinct Times, so the >= is exact
// there and best-effort otherwise.
func (r *Relay) clearFor(lanes []*lane, min int, t int64) bool {
	if len(lanes) < r.cfg.Downstreams {
		// An expected downstream has never attached: a silent lane
		// whose watermark is unboundedly low. Hold everything (up to
		// MaxStall, which escapes this gate like any other stall).
		r.stalled = min
		return false
	}
	for i, ln := range lanes {
		if i == min || r.has[i] {
			continue
		}
		// The watermark must be loaded BEFORE the ring is inspected: the
		// lane pushes covered data first and raises the watermark second,
		// so reading the pair the other way around opens a window where a
		// batch lands between the two loads and its own watermark passes
		// for a promise about an empty ring — releasing another lane's
		// newer record past data already admitted here. With this order,
		// anything pushed after the watermark read carries a Time above
		// the value read (lane streams are Time-ordered), so a stale
		// watermark is only ever conservative. The ism frontier rule's
		// pushed-before-settled discipline, at the federation tier.
		w := ln.watermark.Load()
		if ln.ring.Len() > 0 {
			r.retry = true
			return false
		}
		if w >= t {
			continue
		}
		ln.lagGauge.Set(t - w)
		r.stalled = i
		return false
	}
	return true
}

// finalDrain empties the rings without the watermark rule (every
// serve goroutine has exited; ring contents are complete) and settles
// the last acks.
func (r *Relay) finalDrain() {
	for r.step() {
	}
	r.flushOut()
	r.updateFrontier()
	r.advanceAcks()
}

// dispatch runs one merged record through the root causal merge or the
// inner-tier pass-through, and counts emission per source — the
// currency the ack gate trades in. At the root, a record parked by the
// causal merger (a receive whose send is still in flight on another
// lane) stays unemitted and therefore keeps its batch unacked; the
// downstream's replay window covers it across a relay crash.
func (r *Relay) dispatch(rec trace.Record) {
	if r.cm != nil {
		prev := len(r.outBuf)
		r.outBuf = r.cm.AddTo(r.outBuf, rec)
		for _, e := range r.outBuf[prev:] {
			r.emitted[trace.SourceKey{Node: e.Node, Process: e.Process}]++
		}
		r.mHeld.Set(int64(r.cm.Held()))
	} else {
		r.emitted[trace.SourceKey{Node: rec.Node, Process: rec.Process}]++
		r.outBuf = append(r.outBuf, rec)
	}
	if len(r.outBuf) >= r.cfg.FlushBatch {
		r.flushOut()
	}
}

// flushOut hands the dispatch buffer to the spool and subscribers.
// Runs on the merger goroutine; always called before acks advance, so
// an acked record is visible in the durable output.
func (r *Relay) flushOut() {
	if len(r.outBuf) == 0 {
		return
	}
	r.mu.Lock()
	spool := r.spool
	subs := r.subs
	r.mu.Unlock()
	if spool != nil {
		// Flush eagerly: acks advance right after this, and an acked
		// batch's records must already be durable — a crashed relay is
		// rebuilt from the spool, and anything acked but lost would be
		// trimmed from the downstream replay window and gone for good.
		r.mu.Lock()
		_ = spool.WriteAll(r.outBuf)
		_ = spool.Flush()
		r.mu.Unlock()
	}
	for _, s := range subs {
		if s.batch != nil {
			s.batch(r.outBuf)
		}
	}
	for _, rec := range r.outBuf {
		for _, s := range subs {
			if s.fn != nil {
				s.fn(rec)
			}
		}
	}
	r.mDispatch.Add(uint64(len(r.outBuf)))
	r.outBuf = r.outBuf[:0]
}

// satisfied reports whether every record a batch carried has been
// emitted. Reads the merger-owned emitted map — advanceAcks (its only
// caller) runs on the merger goroutine.
func (r *Relay) satisfied(e ackEntry) bool {
	for _, n := range e.needs {
		if r.emitted[n.key] <= n.seq {
			return false
		}
	}
	return true
}

// advanceAcks walks each lane's gated-ack FIFO, advances the frontier
// across the satisfied prefix, and tells the downstream. Runs on the
// merger goroutine at its park points and during final drain.
func (r *Relay) advanceAcks() {
	for _, ln := range *r.lanes.Load() {
		changed := false
		ln.ackMu.Lock()
		for len(ln.pendAcks) > 0 && r.satisfied(ln.pendAcks[0]) {
			if s := ln.pendAcks[0].seq; s > ln.ackSent {
				ln.ackSent = s
				changed = true
			}
			ln.pendAcks = ln.pendAcks[1:]
		}
		v := ln.ackSent
		ln.ackMu.Unlock()
		if !changed {
			continue
		}
		ln.connMu.Lock()
		c := ln.conn
		ln.connMu.Unlock()
		if c != nil {
			if err := c.Send(tp.ControlMessage(ln.node, tp.CtlAck, v)); err == nil {
				r.mAcksGated.Inc()
			}
		}
	}
}

// updateFrontier recomputes the merge frontier: the Time below which
// no future record can be emitted. A lane's contribution is its head's
// Time when it has one, its watermark when idle; an un-refilled ring
// leaves the frontier where it was (unknown backlog). A non-root relay
// reads Watermark() to drive its own uplink marks.
func (r *Relay) updateFrontier() {
	lanes := *r.lanes.Load()
	if len(lanes) == 0 || len(lanes) < r.cfg.Downstreams {
		return
	}
	// This snapshot is loaded fresh, so a lane attached since the last
	// step() may not be covered by heads/has yet.
	r.grow(len(lanes))
	low := int64(math.MaxInt64)
	for i, ln := range lanes {
		var f int64
		if r.has[i] {
			h := &r.heads[i]
			f = h.recs[h.pos].Time
		} else {
			// Watermark before ring, for the same reason as clearFor: a
			// batch landing between the loads must not let its watermark
			// vouch for an empty ring.
			w := ln.watermark.Load()
			if ln.ring.Len() > 0 {
				return
			}
			f = w
		}
		if f < low {
			low = f
		}
	}
	if low > r.frontier.Load() {
		r.frontier.Store(low)
	}
}

// Watermark returns the relay's merge frontier: every record it will
// ever emit from now on carries at least this capture Time. An inner
// tier forwards it upstream via its Uplink's Mark.
func (r *Relay) Watermark() int64 { return r.frontier.Load() }

// quiet reports whether every admitted record has been consumed by the
// merger.
func (r *Relay) quiet() bool {
	for _, ln := range *r.lanes.Load() {
		if ln.admittedRecs.Load() != ln.consumedRecs.Load() {
			return false
		}
	}
	return true
}

// Drain blocks until every record admitted so far has been merged,
// flushed and acked. It needs the downstream watermarks to have
// released everything admitted — a merge stalled waiting for a silent
// lane does not drain (send final marks, or bound the wait with
// MaxStall). End-to-end tests prefer Uplink.WaitAcked, which adds the
// wire to the guarantee.
func (r *Relay) Drain() {
	r.drainUntil(time.Time{})
}

// DrainFor is Drain with a deadline: it reports whether the relay went
// quiet within d. A false return means the watermark rule is still
// holding admitted records — typically because downstream clocks are
// not comparable, so one leaf's final mark trails another leaf's tail,
// or because a downstream went silent without sealing. The caller
// decides what a stalled drain means; Close's final drain will still
// dispatch everything held, and anything left unacked stays covered by
// the downstream replay windows.
func (r *Relay) DrainFor(d time.Duration) bool {
	return r.drainUntil(time.Now().Add(d))
}

func (r *Relay) drainUntil(deadline time.Time) bool {
	expired := func() bool {
		return !deadline.IsZero() && time.Now().After(deadline)
	}
	for {
		if r.quiet() {
			p := r.parks.Load()
			r.signal()
			for r.parks.Load() == p && r.quiet() {
				if expired() {
					return false
				}
				time.Sleep(50 * time.Microsecond)
			}
			if r.parks.Load() > p && r.quiet() {
				return true
			}
			continue
		}
		if expired() {
			return false
		}
		r.signal()
		time.Sleep(50 * time.Microsecond)
	}
}

// Stats returns a snapshot of relay activity.
func (r *Relay) Stats() Stats {
	st := Stats{
		Lanes:            len(*r.lanes.Load()),
		Dispatched:       r.mDispatch.Value(),
		Resumes:          r.mResumes.Value(),
		Stalls:           r.mStalls.Value(),
		OrderBreaks:      r.mBreaks.Value(),
		DupRecords:       r.mDups.Value(),
		PartitionRejects: r.mRejects.Value(),
		Marks:            r.mMarks.Value(),
		Held:             int(r.mHeld.Value()),
		SessionDups:      r.recv.TotalDups(),
	}
	return st
}

// Kill shuts the relay down crash-consistently: records admitted but
// not yet emitted are abandoned (drained from the rings and discarded,
// never dispatched or acked), exactly as a real crash would lose them,
// and the spool flushes only what was emitted — the durable state a
// successor rebuilds from via Config.Resume. Every abandoned record is
// still covered by its downstream's replay window, because the
// dispatch gate never acknowledged it. This is the failover path (and
// the crash half of the crash-restart equivalence tests); Close is the
// orderly one.
func (r *Relay) Kill() error {
	r.killed.Store(true)
	return r.Close()
}

// Close shuts the relay down: the merger switches to closing mode
// (drains stall-free so no admission can deadlock on a full ring), the
// downstream connections close, the serve goroutines exit, the merger
// final-drains, and the spool flushes. Records still parked in the
// root causal merge at that point are intentionally NOT emitted or
// acked — their sends never arrived, and the downstream replay windows
// redeliver them to the next incarnation. Callers wanting a clean
// drain quiesce first (final marks + WaitAcked on every uplink).
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	conns := append([]tp.Conn(nil), r.conns...)
	r.mu.Unlock()
	r.closing.Store(true)
	r.signal()
	for _, c := range conns {
		_ = c.Close()
	}
	r.serveWG.Wait()
	close(r.stop)
	<-r.runDone
	var err error
	r.mu.Lock()
	if r.spool != nil {
		err = r.spool.Flush()
	}
	r.mu.Unlock()
	return err
}

// 4-ary min-heap over lane indices keyed by each head record's
// (Time, Node, Process) order — the ism merge-heap idiom at record
// granularity.

func (r *Relay) heapLess(a, b int32) bool {
	ha, hb := &r.heads[a], &r.heads[b]
	return ha.recs[ha.pos].Before(hb.recs[hb.pos])
}

func (r *Relay) heapPush(lane int32) {
	r.heap = append(r.heap, lane)
	i := len(r.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !r.heapLess(r.heap[i], r.heap[p]) {
			break
		}
		r.heap[i], r.heap[p] = r.heap[p], r.heap[i]
		i = p
	}
}

func (r *Relay) heapPop() int32 {
	top := r.heap[0]
	last := len(r.heap) - 1
	r.heap[0] = r.heap[last]
	r.heap = r.heap[:last]
	i := 0
	for {
		min := i
		for c := 4*i + 1; c <= 4*i+4 && c < len(r.heap); c++ {
			if r.heapLess(r.heap[c], r.heap[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		r.heap[i], r.heap[min] = r.heap[min], r.heap[i]
		i = min
	}
	return top
}

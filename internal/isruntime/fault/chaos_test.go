package fault

// Chaos soak: the concurrent counterpart of the lockstep Simulate
// tests. Real goroutines, real transports (in-process pipes and TCP
// sockets), injected disconnects/corruption/latency — run under
// -race by make check. The assertions are the delivery guarantees, not
// bit-identical counts (scheduling decides how many redials happen):
//
//   - Block transport + session replay: every captured record reaches
//     the ISM side exactly once, proven by per-record accounting.
//   - Lossy drop policy without replay: loss happens but is exactly
//     counted by the transport's drop counters — never silent.

import (
	"sync"
	"testing"
	"time"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// soakServer is the ISM side of a soak: a shared session table and
// per-record delivery accounting.
type soakServer struct {
	recv *Receiver

	mu   sync.Mutex
	seen map[int64]int
}

func newSoakServer() *soakServer {
	return &soakServer{
		recv: NewReceiver(ReceiverConfig{AckEvery: 1}),
		seen: make(map[int64]int),
	}
}

// serve drains one connection until it dies, filtering through the
// session table and accounting accepted records.
func (s *soakServer) serve(c tp.Conn) {
	for {
		m, err := c.Recv()
		if err != nil {
			_ = c.Close()
			return
		}
		if s.recv.Filter(c, m) {
			continue
		}
		if m.Type == tp.MsgData {
			s.mu.Lock()
			for _, r := range m.Records {
				s.seen[r.Payload]++
			}
			s.mu.Unlock()
		}
		tp.Recycle(&m)
	}
}

// check asserts exactly-once delivery of captured payload ids.
func (s *soakServer) check(t *testing.T, nodes, batches, recs int) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	missing, dup := 0, 0
	for n := 0; n < nodes; n++ {
		for b := 0; b < batches; b++ {
			for i := 0; i < recs; i++ {
				id := int64(n)*1_000_000 + int64(b)*1_000 + int64(i)
				switch c := s.seen[id]; {
				case c == 0:
					missing++
				case c > 1:
					dup++
				}
			}
		}
	}
	if missing != 0 || dup != 0 {
		t.Fatalf("delivery guarantee violated: %d records missing, %d duplicated (of %d)",
			missing, dup, nodes*batches*recs)
	}
}

// runSoakNode drives one LIS node: a session over an injector-wrapped
// redial, a concurrent ack-consuming Recv loop, then a bounded drain.
func runSoakNode(t *testing.T, node int32, dial func() (tp.Conn, error),
	batches, recs, window int, plan Plan, seed uint64) (faults, redials uint64) {
	t.Helper()
	inj, err := NewInjector(seed, plan)
	if err != nil {
		t.Error(err)
		return 0, 0
	}
	rd, err := tp.NewRedial(tp.RedialConfig{
		Dial: func() (tp.Conn, error) {
			c, err := dial()
			if err != nil {
				return nil, err
			}
			return inj.WrapConn(c), nil
		},
		Backoff:    100 * time.Microsecond,
		MaxBackoff: 2 * time.Millisecond,
		Jitter:     0.2,
		Seed:       seed,
	})
	if err != nil {
		t.Error(err)
		return 0, 0
	}
	sess := NewSession(node, rd, SessionConfig{Window: window})

	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			if _, err := sess.Recv(); err != nil {
				return
			}
		}
	}()

	for b := 0; b < batches; b++ {
		rs := make([]trace.Record, recs)
		for i := range rs {
			id := int64(node)*1_000_000 + int64(b)*1_000 + int64(i)
			rs[i] = trace.Record{Node: node, Kind: trace.KindUser, Time: id, Payload: id}
		}
		if err := sess.Send(tp.DataMessage(node, rs)); err != nil {
			t.Errorf("node %d batch %d: %v", node, b, err)
		}
		if b%64 == 0 {
			_ = sess.Heartbeat()
		}
	}

	// Drain: resend until the window empties (silently dropped frames
	// only heal through resend; the receiver dedupes the rest).
	deadline := time.Now().Add(20 * time.Second)
	for sess.Pending() > 0 {
		if time.Now().After(deadline) {
			t.Errorf("node %d: %d batches never acked", node, sess.Pending())
			break
		}
		_ = sess.Resend()
		sess.WaitAcked(20 * time.Millisecond)
	}
	faults, redials = inj.Total(), rd.Redials()
	_ = sess.Close()
	<-ackDone
	return faults, redials
}

func TestChaosSoakPipeExactlyOnce(t *testing.T) {
	const nodes, batches, recs = 4, 250, 8
	srv := newSoakServer()

	// Each dial builds a fresh blocking pipe and hands the server end
	// to a serving goroutine — the accept loop of the in-process world.
	var wgServe sync.WaitGroup
	serveCh := make(chan tp.Conn, 64)
	dispatchDone := make(chan struct{})
	go func() {
		defer close(dispatchDone)
		for c := range serveCh {
			wgServe.Add(1)
			go func(c tp.Conn) { defer wgServe.Done(); srv.serve(c) }(c)
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var faults, redials uint64
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			// The pipe must be deeper than the session window: a
			// reconnect replay runs while the sender's ack-draining
			// goroutine is parked on the dial, so the window's worth
			// of replayed batches plus their acks must fit in the
			// pipe or the replay wedges against its own ack traffic.
			dial := func() (tp.Conn, error) {
				a, b := tp.Pipe(256)
				serveCh <- b
				return a, nil
			}
			f, r := runSoakNode(t, int32(n), dial, batches, recs, 64, soakPlan(), 9000+uint64(n))
			mu.Lock()
			faults += f
			redials += r
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	close(serveCh)
	<-dispatchDone
	wgServe.Wait()

	if faults == 0 || redials == 0 {
		t.Fatalf("soak too quiet: faults=%d redials=%d", faults, redials)
	}
	srv.check(t, nodes, batches, recs)
}

func TestChaosSoakTCPExactlyOnce(t *testing.T) {
	const nodes, batches, recs = 3, 150, 8
	srv := newSoakServer()

	ln, err := tp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wgServe sync.WaitGroup
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wgServe.Add(1)
			go func() { defer wgServe.Done(); srv.serve(c) }()
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var faults, redials uint64
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			dial := func() (tp.Conn, error) { return tp.Dial(ln.Addr()) }
			// The replay window must cover the whole blast. A conn death
			// discards everything in the socket buffers (the client's
			// close RSTs when unread acks are queued), and columnar
			// frames pack several times more batches into those buffers
			// than flat ones — a window sized below the in-flight volume
			// demotes lost batches before replay can heal them, and with
			// no Spill configured a demoted batch is counted loss, not
			// recoverable state.
			f, r := runSoakNode(t, int32(n), dial, batches, recs, batches+8, soakPlan(), 7700+uint64(n))
			mu.Lock()
			faults += f
			redials += r
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	_ = ln.Close()
	<-acceptDone
	wgServe.Wait()

	if faults == 0 {
		t.Fatal("soak injected no faults")
	}
	srv.check(t, nodes, batches, recs)
}

func TestChaosSoakDropPolicyCountedLoss(t *testing.T) {
	const batches, recs = 3000, 4
	a, b := tp.PipePolicy(8, flow.DropNewest, nil)

	var mu sync.Mutex
	delivered := 0
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			m, err := b.Recv()
			if err != nil {
				return
			}
			mu.Lock()
			delivered += len(m.Records)
			mu.Unlock()
			tp.Recycle(&m)
		}
	}()

	for i := 0; i < batches; i++ {
		rs := make([]trace.Record, recs)
		for j := range rs {
			rs[j] = trace.Record{Kind: trace.KindUser, Payload: int64(i*recs + j)}
		}
		if err := a.Send(tp.DataMessage(0, rs)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}

	// Loss under a drop policy must be exactly counted: wait for the
	// consumer to drain, then the books must balance to the record.
	dc := a.(tp.DropCounter)
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		got := delivered
		mu.Unlock()
		dropped := int(dc.DroppedMessages()) * recs
		if got+dropped == batches*recs {
			if dropped == 0 {
				t.Fatal("tiny pipe lost nothing; drop path unexercised")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting leak: delivered=%d dropped=%d captured=%d",
				got, dropped, batches*recs)
		}
		time.Sleep(time.Millisecond)
	}
	_ = a.Close()
	<-recvDone
}

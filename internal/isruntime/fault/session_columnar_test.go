package fault

// Session × columnar wire: once the transport negotiates columnar
// framing, the session encodes each batch once at Send and replays the
// stored body verbatim — Resend and reconnect replay must not change
// what the receiver decodes, and the replayed frames must stay
// columnar-sized.

import (
	"testing"
	"time"

	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// sessRecs builds a batch with compressible columns and distinct
// payloads so delivery accounting can tell batches apart.
func sessRecs(base, n int) []trace.Record {
	rs := make([]trace.Record, n)
	for i := range rs {
		rs[i] = trace.Record{
			Node: 3, Process: 1, Kind: trace.KindUser,
			Time: int64(base + i), Logical: uint64(base + i),
			Payload: int64(base + i),
		}
	}
	return rs
}

func TestSessionColumnarEncodedReplay(t *testing.T) {
	ln, err := tp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type got struct {
		seq  int64
		recs []trace.Record
	}
	gotCh := make(chan got, 64)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		for {
			m, err := c.Recv()
			if err != nil {
				_ = c.Close()
				return
			}
			if m.Type != tp.MsgData {
				continue
			}
			recs := append([]trace.Record(nil), m.Records...)
			seq := m.Arg
			tp.Recycle(&m)
			gotCh <- got{seq, recs}
			// No acks: every batch stays in the replay window so Resend
			// retransmits all of them.
		}
	}()

	reg := metrics.NewRegistry()
	conn, err := tp.Dial(ln.Addr(), tp.WithConnMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(3, conn, SessionConfig{Window: 16})

	// A background Recv loop consumes the server's capability advert
	// (negotiation only advances inside Recv); it then parks until the
	// session is closed.
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			if _, err := sess.Recv(); err != nil {
				return
			}
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !tp.ColumnarActive(conn) {
		if time.Now().After(deadline) {
			t.Fatal("columnar never negotiated")
		}
		time.Sleep(time.Millisecond)
	}

	const batches, recs = 4, 32
	want := make(map[int64][]trace.Record)
	for b := 0; b < batches; b++ {
		rs := sessRecs(b*1000, recs)
		want[int64(b+1)] = rs
		if err := sess.Send(tp.DataMessage(3, rs)); err != nil {
			t.Fatalf("send %d: %v", b, err)
		}
	}
	if err := sess.Resend(); err != nil {
		t.Fatalf("resend: %v", err)
	}

	// Expect each batch twice — original and replay — byte-identical.
	counts := make(map[int64]int)
	for i := 0; i < 2*batches; i++ {
		select {
		case g := <-gotCh:
			counts[g.seq]++
			wantRecs, ok := want[g.seq]
			if !ok {
				t.Fatalf("unexpected seq %d", g.seq)
			}
			if len(g.recs) != len(wantRecs) {
				t.Fatalf("seq %d: got %d records, want %d", g.seq, len(g.recs), len(wantRecs))
			}
			for j := range g.recs {
				if g.recs[j] != wantRecs[j] {
					t.Fatalf("seq %d record %d: got %+v want %+v", g.seq, j, g.recs[j], wantRecs[j])
				}
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d deliveries (counts %v)", i, counts)
		}
	}
	for seq, c := range counts {
		if c != 2 {
			t.Errorf("seq %d delivered %d times, want 2", seq, c)
		}
	}

	// The whole exchange — 8 data frames of 32 records plus control
	// chatter — must reflect columnar framing: well under the flat
	// cost of the data alone.
	tx := uint64(reg.Snapshot().Value("tp.bytes_tx"))
	flat := uint64(2 * batches * recs * trace.RecordSize)
	if tx >= flat/2 {
		t.Errorf("bytes_tx = %d, want < %d (half the flat record bytes)", tx, flat/2)
	}
	_ = sess.Close()
	<-recvDone
}

// Package fault is the instrumentation runtime's deterministic
// fault-injection and resilience subsystem. The paper's structured
// approach demands that an IS be *evaluated*, not just built (§2.1,
// Figure 1) — and an IS that feeds on-line tools must keep delivering
// data while the concurrent system it observes misbehaves. This
// package supplies both halves of that loop:
//
//   - Injection: an Injector wraps any tp.Conn and perturbs its
//     operations with connection drops, frame corruption/truncation,
//     latency spikes and consumer stalls. Decisions are drawn from a
//     seeded stream indexed by per-direction operation count, so a
//     fault plan replays bit-for-bit under the same seed — chaos runs
//     are experiments, not luck.
//
//   - Resilience: a Session (sender side) stamps every data batch with
//     a per-node monotonic sequence number, retains unacked batches in
//     a bounded replay window (demoting overflow to the flow spill
//     path), and replays them on every reconnect of a tp.Redial
//     connection; a Receiver (ISM side) keeps a per-node session
//     table that acknowledges, deduplicates replays and counts gaps —
//     at-least-once delivery on the wire, exactly-once accounting at
//     the manager — and flags nodes degraded on heartbeat silence.
//
// Simulate drives a whole sender/receiver population through a fault
// plan in deterministic lockstep, producing the delivered / duplicated
// / lost / redials table of the availability experiment (ext-avail).
package fault

import (
	"fmt"
	"sync"
	"time"

	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/tp"
	"prism/internal/rng"
)

// Kind identifies an injected fault.
type Kind uint8

// Fault kinds. Drop, Disconnect, Corrupt, Truncate and Delay apply to
// the send direction of a wrapped connection; Stall and Delay apply to
// the receive direction.
const (
	None       Kind = iota
	Drop            // frame silently lost in transit
	Disconnect      // connection cut before the frame is sent
	Corrupt         // frame mangled: lost, and the stream desynchronizes
	Truncate        // frame cut short: lost, and the stream desynchronizes
	Delay           // frame delivery delayed (latency spike)
	Stall           // consumer stalls before reading (slow-consumer)
	numKinds
)

var kindNames = [...]string{
	None: "none", Drop: "drop", Disconnect: "disconnect",
	Corrupt: "corrupt", Truncate: "truncate", Delay: "delay", Stall: "stall",
}

// String returns the fault-kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Dir is the connection direction an operation (and its fault)
// belongs to.
type Dir uint8

// Directions.
const (
	Send Dir = iota
	Recv
	numDirs
)

// String returns the direction name.
func (d Dir) String() string {
	if d == Send {
		return "send"
	}
	return "recv"
}

// Plan is a fault schedule: per-operation probabilities and the
// magnitudes of the timing faults. The zero Plan injects nothing.
type Plan struct {
	// Send-direction frame faults.
	PDrop       float64 // silent loss
	PCorrupt    float64 // loss + stream desync (connection must be abandoned)
	PTruncate   float64 // loss + stream desync
	PDisconnect float64 // connection cut under the frame

	// Timing faults.
	PDelay float64       // latency spike on either direction
	Delay  time.Duration // spike magnitude
	PStall float64       // consumer stall before a receive
	Stall  time.Duration // stall magnitude
}

// total returns the summed probability mass of a direction, for
// validation.
func (p Plan) total(d Dir) float64 {
	if d == Send {
		return p.PDrop + p.PCorrupt + p.PTruncate + p.PDisconnect + p.PDelay
	}
	return p.PStall + p.PDelay
}

// Scale returns the plan with every probability multiplied by f —
// the availability experiment's fault-rate knob.
func (p Plan) Scale(f float64) Plan {
	p.PDrop *= f
	p.PCorrupt *= f
	p.PTruncate *= f
	p.PDisconnect *= f
	p.PDelay *= f
	p.PStall *= f
	return p
}

// Event is one injected fault in the deterministic trace.
type Event struct {
	Dir  Dir
	Op   uint64 // per-direction operation index the fault applied to
	Kind Kind
}

// String renders the event compactly (send#17:disconnect).
func (e Event) String() string { return fmt.Sprintf("%s#%d:%s", e.Dir, e.Op, e.Kind) }

// dirState is one direction's decision stream: its own rng and op
// counter, so concurrent send/recv goroutines draw deterministic,
// independent sequences.
type dirState struct {
	rng *rng.Stream
	op  uint64
}

// InjectorOption configures an Injector.
type InjectorOption func(*Injector)

// WithMetrics reports injected-fault counts through the registry as
// fault.injected.<kind> counters.
func WithMetrics(reg *metrics.Registry) InjectorOption {
	return func(in *Injector) {
		s := reg.Scope("fault").Scope("injected")
		for k := Kind(1); k < numKinds; k++ {
			in.ctr[k] = s.Counter(k.String())
		}
	}
}

// WithSleep replaces the injector's time.Sleep for Delay/Stall faults;
// deterministic drivers pass a no-op.
func WithSleep(fn func(time.Duration)) InjectorOption {
	return func(in *Injector) { in.sleep = fn }
}

// Injector draws per-operation fault decisions from a seeded plan and
// applies them to wrapped connections. One injector may wrap several
// connections in sequence (a Redial's successive connections share the
// injector, so the fault schedule spans reconnects); the decision
// streams are per-direction, keyed by operation index, which makes the
// injection trace a pure function of (seed, plan, per-direction op
// sequence).
type Injector struct {
	plan  Plan
	sleep func(time.Duration)
	ctr   [numKinds]*metrics.Counter

	mu     sync.Mutex
	dirs   [numDirs]dirState
	trace  []Event
	counts [numKinds]uint64
}

// NewInjector creates an injector for the given plan. Per-direction
// probability mass must not exceed 1.
func NewInjector(seed uint64, plan Plan, opts ...InjectorOption) (*Injector, error) {
	for _, d := range [...]Dir{Send, Recv} {
		if t := plan.total(d); t > 1 {
			return nil, fmt.Errorf("fault: %s probability mass %.3f exceeds 1", d, t)
		}
	}
	root := rng.New(seed)
	in := &Injector{plan: plan, sleep: time.Sleep}
	in.dirs[Send] = dirState{rng: root.Split()}
	in.dirs[Recv] = dirState{rng: root.Split()}
	for _, opt := range opts {
		opt(in)
	}
	return in, nil
}

// decide draws the fault for the next operation in the given
// direction. Exactly one uniform variate is consumed per operation, so
// the decision for op i never depends on the fate of earlier ops.
func (in *Injector) decide(d Dir) Kind {
	in.mu.Lock()
	st := &in.dirs[d]
	u := st.rng.Float64()
	op := st.op
	st.op++
	k := None
	if d == Send {
		switch {
		case u < in.plan.PDrop:
			k = Drop
		case u < in.plan.PDrop+in.plan.PCorrupt:
			k = Corrupt
		case u < in.plan.PDrop+in.plan.PCorrupt+in.plan.PTruncate:
			k = Truncate
		case u < in.plan.PDrop+in.plan.PCorrupt+in.plan.PTruncate+in.plan.PDisconnect:
			k = Disconnect
		case u < in.plan.total(Send):
			k = Delay
		}
	} else {
		switch {
		case u < in.plan.PStall:
			k = Stall
		case u < in.plan.total(Recv):
			k = Delay
		}
	}
	if k != None {
		in.trace = append(in.trace, Event{Dir: d, Op: op, Kind: k})
		in.counts[k]++
		if in.ctr[k] != nil {
			in.ctr[k].Inc()
		}
	}
	in.mu.Unlock()
	return k
}

// Trace returns a copy of the injection trace so far, in decision
// order per direction (interleaving across directions follows the
// wrapped connection's call order).
func (in *Injector) Trace() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.trace))
	copy(out, in.trace)
	return out
}

// Injected returns how many faults of the given kind have fired.
func (in *Injector) Injected(k Kind) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[k]
}

// Total returns the total number of injected faults.
func (in *Injector) Total() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, c := range in.counts {
		n += c
	}
	return n
}

// WrapConn interposes the injector on a connection. The wrapped
// connection applies send-direction faults to outgoing messages and
// recv-direction faults to incoming ones; Corrupt, Truncate and
// Disconnect additionally close the underlying connection, modeling a
// desynchronized byte stream that both ends must abandon.
func (in *Injector) WrapConn(c tp.Conn) tp.Conn { return &faultConn{in: in, c: c} }

// faultConn is a tp.Conn with an Injector interposed.
type faultConn struct {
	in *Injector
	c  tp.Conn
}

// Send implements tp.Conn, applying the injector's send-direction
// decision for this operation.
func (f *faultConn) Send(m tp.Message) error {
	switch f.in.decide(Send) {
	case Drop:
		// The frame vanishes in transit: the sender believes it sent.
		tp.Recycle(&m)
		return nil
	case Disconnect:
		tp.Recycle(&m)
		_ = f.c.Close()
		return fmt.Errorf("fault: injected disconnect: %w", tp.ErrConnClosed)
	case Corrupt:
		tp.Recycle(&m)
		_ = f.c.Close()
		return fmt.Errorf("fault: injected frame corruption: %w", tp.ErrCorruptFrame)
	case Truncate:
		tp.Recycle(&m)
		_ = f.c.Close()
		return fmt.Errorf("fault: injected frame truncation: %w", tp.ErrCorruptFrame)
	case Delay:
		f.in.sleep(f.in.plan.Delay)
	}
	return f.c.Send(m)
}

// Recv implements tp.Conn, applying the injector's recv-direction
// decision for this operation.
func (f *faultConn) Recv() (tp.Message, error) {
	switch f.in.decide(Recv) {
	case Stall:
		f.in.sleep(f.in.plan.Stall)
	case Delay:
		f.in.sleep(f.in.plan.Delay)
	}
	return f.c.Recv()
}

// Close implements tp.Conn.
func (f *faultConn) Close() error { return f.c.Close() }

package fault

// Session: the sender half of the resilience protocol. A raw tp.Redial
// heals the *connection* but cannot heal the *data* — Send hands
// pooled batches to the wire encoder, so a frame lost under a fault is
// gone at the transport layer. The Session restores delivery by
// sequencing and retaining: every data batch gets a per-node monotonic
// sequence number (Message.Arg, starting at 1; Arg==0 marks legacy
// unsequenced traffic), and a private copy of its records stays in a
// bounded replay window until the receiver's cumulative CtlAck covers
// it. On every reconnect the session introduces itself with CtlHello
// (Arg = last ack it has seen) and replays the still-unacked suffix of
// the window in sequence order. The receiver dedupes, so the wire
// guarantee is at-least-once and the accounting guarantee exactly-once.
//
// Window overflow and give-up demote batches to the flow spill path —
// the same escape hatch the LIS queues use — so bounded memory never
// silently discards records: demoted batches are recoverable from
// storage even though they leave the replay protocol.

import (
	"sort"
	"sync"
	"time"

	"prism/internal/isruntime/flow"
	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// SessionConfig parameterizes a sender session.
type SessionConfig struct {
	// Window bounds the unacked batches retained for replay. When a
	// new batch would exceed it, the oldest is demoted to Spill. Zero
	// means 256.
	Window int
	// Spill receives demoted batches (window overflow, give-up). Nil
	// means demoted records are dropped (and counted lost).
	Spill flow.Spill
	// Metrics, when non-nil, reports session counters under
	// session.node<N>.
	Metrics *metrics.Registry
}

// Session is a tp.Conn wrapper implementing the sender side of the
// sequencing/replay protocol. Wrap it around a *tp.Redial (its
// OnConnect hook is claimed automatically) or any Conn. One goroutine
// may call Send and another Recv, matching the usual LIS arrangement.
type Session struct {
	node int32
	conn tp.Conn
	cfg  SessionConfig

	mSent     *metrics.Counter
	mReplayed *metrics.Counter
	mSpilled  *metrics.Counter
	mLost     *metrics.Counter

	mu      sync.Mutex
	nextSeq int64
	acked   int64
	low     int64 // no window entry has a sequence below this
	window  map[int64]windowBatch
	codec   trace.ColumnCodec
	scratch []byte // encode staging so window copies are exact-sized
	spilled uint64
	lost    uint64
}

// windowBatch is one retained batch. When the transport has negotiated
// columnar framing, the batch is column-encoded once at Send and the
// encoded body rides in the window alongside the records, so every
// replay (reconnect, resend) retransmits the bytes verbatim instead of
// re-running the encoder. The records stay authoritative: they feed
// the spill path on demotion and the flat fallback when a reconnect
// lands on a peer without columnar support.
type windowBatch struct {
	recs  []trace.Record
	enc   []byte
	count int
	crc   uint32
}

// attach copies the pre-encoded body, if any, onto an outgoing message
// so the transport frames it without re-encoding.
func (wb windowBatch) attach(m *tp.Message) {
	if wb.enc != nil {
		m.Enc, m.EncCount, m.EncCRC = wb.enc, wb.count, wb.crc
	}
}

// onConnectSetter is how the session claims a Redial's replay hook
// without depending on the concrete type.
type onConnectSetter interface {
	SetOnConnect(func(tp.Conn) error)
}

// NewSession wraps conn with a replay session for the given node. If
// conn supports SetOnConnect (tp.Redial does), the session installs
// its hello+replay hook so every reconnect resynchronizes before
// traffic resumes.
func NewSession(node int32, conn tp.Conn, cfg SessionConfig) *Session {
	if cfg.Window <= 0 {
		cfg.Window = 256
	}
	s := &Session{
		node:    node,
		conn:    conn,
		cfg:     cfg,
		nextSeq: 1,
		low:     1,
		window:  make(map[int64]windowBatch),
	}
	if cfg.Metrics != nil {
		sc := cfg.Metrics.Scope("session").Scope("node" + itoa(int(node)))
		s.mSent = sc.Counter("batches_sent")
		s.mReplayed = sc.Counter("batches_replayed")
		s.mSpilled = sc.Counter("batches_spilled")
		s.mLost = sc.Counter("batches_lost")
	}
	if rc, ok := conn.(onConnectSetter); ok {
		rc.SetOnConnect(s.onConnect)
	}
	return s
}

// itoa avoids strconv for the tiny node ids used in metric scopes.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [24]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// Send implements tp.Conn. Data messages are stamped with the next
// sequence number and their records copied into the replay window
// before transmission; a retryable transport failure is therefore
// absorbed (the batch replays on reconnect) and Send reports success.
// Control messages pass through unsequenced. A terminal failure
// (ErrGiveUp, unclassified) demotes the whole window to the spill path
// and surfaces the error.
func (s *Session) Send(m tp.Message) error {
	if m.Type != tp.MsgData {
		return s.conn.Send(m)
	}
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	kept := make([]trace.Record, len(m.Records))
	copy(kept, m.Records)
	wb := windowBatch{recs: kept}
	if len(kept) > 0 && tp.ColumnarActive(s.conn) {
		// Stage in the reusable scratch, then copy exact-sized: the
		// window retains the copy until acked, so encoding straight
		// into a fresh slice would pay the append growth chain on
		// every batch.
		s.scratch = s.scratch[:0]
		s.scratch, wb.crc = tp.EncodeColumnarBody(s.scratch, kept, &s.codec)
		wb.enc = append(make([]byte, 0, len(s.scratch)), s.scratch...)
		wb.count = len(kept)
	}
	s.window[seq] = wb
	for len(s.window) > s.cfg.Window {
		s.demoteOldestLocked()
	}
	s.mu.Unlock()
	if s.mSent != nil {
		s.mSent.Inc()
	}

	m.Arg = seq
	wb.attach(&m)
	err := s.conn.Send(m)
	if err == nil || tp.Retryable(err) {
		// Retryable: the copy in the window replays on reconnect, so
		// from the caller's perspective the batch is on its way.
		return nil
	}
	s.mu.Lock()
	for len(s.window) > 0 {
		s.demoteOldestLocked()
	}
	s.mu.Unlock()
	return err
}

// demoteOldestLocked moves the lowest-sequence window entry to the
// spill path. Called with s.mu held. Sequences are monotonic and
// removal only ever happens at the low end (cumulative acks, this
// demotion), so the low watermark finds the oldest entry in amortized
// constant time instead of scanning the map.
func (s *Session) demoteOldestLocked() {
	for s.low < s.nextSeq {
		if _, ok := s.window[s.low]; ok {
			break
		}
		s.low++
	}
	if _, ok := s.window[s.low]; !ok {
		return
	}
	rs := s.window[s.low].recs
	delete(s.window, s.low)
	s.low++
	if s.cfg.Spill != nil {
		if err := s.cfg.Spill.Append(rs...); err == nil {
			s.spilled++
			if s.mSpilled != nil {
				s.mSpilled.Inc()
			}
			return
		}
	}
	s.lost++
	if s.mLost != nil {
		s.mLost.Inc()
	}
}

// onConnect runs on the raw connection of every (re)establishment:
// hello with the last seen ack, then the unacked window suffix in
// sequence order. Window slices are sent by reference and never
// mutated, so replay does not race the window bookkeeping.
func (s *Session) onConnect(raw tp.Conn) error {
	s.mu.Lock()
	acked := s.acked
	seqs := make([]int64, 0, len(s.window))
	for seq := range s.window {
		if seq > acked {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	batches := make([]windowBatch, len(seqs))
	for i, seq := range seqs {
		batches[i] = s.window[seq]
	}
	s.mu.Unlock()

	hello := tp.ControlMessage(s.node, tp.CtlHello, acked)
	if err := raw.Send(hello); err != nil {
		return err
	}
	for i, seq := range seqs {
		m := tp.DataMessage(s.node, batches[i].recs)
		m.Arg = seq
		batches[i].attach(&m)
		if err := raw.Send(m); err != nil {
			return err
		}
		if s.mReplayed != nil {
			s.mReplayed.Inc()
		}
	}
	return nil
}

// Deliver consumes session-protocol messages addressed to the sender:
// a cumulative CtlAck trims the replay window. It returns true when
// the message was consumed and false when it belongs to the caller
// (flush/stop/start control traffic).
func (s *Session) Deliver(m tp.Message) bool {
	if m.Type != tp.MsgControl || m.Control != tp.CtlAck {
		return false
	}
	s.mu.Lock()
	if m.Arg > s.acked {
		s.acked = m.Arg
	}
	for s.low <= s.acked {
		delete(s.window, s.low)
		s.low++
	}
	s.mu.Unlock()
	return true
}

// Recv implements tp.Conn, filtering session-protocol messages out of
// the inbound stream so callers only see their own control traffic.
func (s *Session) Recv() (tp.Message, error) {
	for {
		m, err := s.conn.Recv()
		if err != nil {
			return m, err
		}
		if !s.Deliver(m) {
			return m, nil
		}
	}
}

// Close implements tp.Conn.
func (s *Session) Close() error { return s.conn.Close() }

// Heartbeat sends a liveness beacon; the receiver uses its arrival
// time to decide node degradation.
func (s *Session) Heartbeat() error {
	return s.conn.Send(tp.ControlMessage(s.node, tp.CtlHeartbeat, 0))
}

// Resend retransmits the unacked window in sequence order on the
// current connection. Safe at any time — the receiver deduplicates —
// it is the recovery step for batches lost to silent faults that never
// broke the connection (and so never triggered the reconnect replay).
func (s *Session) Resend() error {
	s.mu.Lock()
	seqs := make([]int64, 0, len(s.window))
	for seq := range s.window {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	batches := make([]windowBatch, len(seqs))
	for i, seq := range seqs {
		batches[i] = s.window[seq]
	}
	s.mu.Unlock()
	for i, seq := range seqs {
		m := tp.DataMessage(s.node, batches[i].recs)
		m.Arg = seq
		batches[i].attach(&m)
		if err := s.conn.Send(m); err != nil {
			return err
		}
		if s.mReplayed != nil {
			s.mReplayed.Inc()
		}
	}
	return nil
}

// Pending returns the number of unacked batches in the replay window.
func (s *Session) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.window)
}

// Acked returns the highest cumulative ack seen.
func (s *Session) Acked() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked
}

// Spilled returns the number of batches demoted to the spill path.
func (s *Session) Spilled() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilled
}

// LostBatches returns batches demoted with no spill target available.
func (s *Session) LostBatches() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lost
}

// WaitAcked blocks until the replay window is empty or the timeout
// expires, reporting whether everything was acknowledged. Callers must
// keep a Recv loop (or Deliver calls) running for acks to arrive.
func (s *Session) WaitAcked(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if s.Pending() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

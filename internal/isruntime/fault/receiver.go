package fault

// Receiver: the ISM half of the resilience protocol. It keeps one
// session entry per LIS node — highest contiguous sequence accepted,
// the set of batches delivered above a hole, duplicate and gap counts,
// last time the node was heard from — and is meant to sit in front of
// the manager's input path (ism.ServeFiltered uses Filter as its
// message filter). Replayed duplicates are absorbed before they reach
// the input stage (exactly-once accounting on top of the sender's
// at-least-once wire behavior), and nodes that fall silent past a
// deadline are reported degraded rather than silently absent — the
// evaluation loop needs to know the difference between "no events" and
// "no instrumentation".
//
// Acks are cumulative but strictly contiguous: CtlAck{Arg: high}
// claims every batch up to and including high, so high only advances
// across a closed prefix. A batch that arrives above a hole (its
// predecessor was silently dropped on a lossy link) is delivered and
// remembered in a pending set for dedup, but NOT acked — otherwise the
// sender would trim the dropped batch from its replay window as if it
// had been delivered, turning a recoverable drop into silent loss. The
// sender closes holes by resending its unacked window (on reconnect,
// on ack stall, or during shutdown drain); the pending set absorbs the
// re-deliveries of everything that already made it across.

import (
	"sync"
	"time"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/tp"
)

// ReceiverConfig parameterizes the ISM-side session table.
type ReceiverConfig struct {
	// AckEvery is the acknowledgement cadence in accepted batches; 1
	// (and 0) acks every batch, n acks every n-th. Duplicates are
	// always re-acked immediately so a replaying sender converges.
	AckEvery int
	// Clock supplies arrival timestamps for degradation tracking. Nil
	// means a real clock anchored at construction.
	Clock event.Clock
	// Metrics, when non-nil, reports dup_batches, gap_batches, hellos
	// and acks_sent under the session scope.
	Metrics *metrics.Registry
	// OnHello, when non-nil, observes every hello with the sender's
	// acked frontier. A dispatch-gated consumer (the relay tier) uses
	// it to adopt a reconnecting downstream's frontier into its own
	// admission and ack state.
	OnHello func(node int32, acked int64)
	// AckFrontier, when non-nil, overrides the sequence every ack
	// carries: instead of the receipt frontier, acknowledgements report
	// this caller-supplied value — a dispatch-gated frontier that only
	// advances once delivered batches have actually been consumed.
	AckFrontier func(node int32) int64
}

// nodeSession is the per-node sequencing state.
type nodeSession struct {
	high      int64              // highest contiguous sequence accepted (acked frontier)
	maxSeen   int64              // highest sequence ever accepted
	pending   map[int64]struct{} // accepted above a hole, awaiting the prefix to close
	sinceAck  int
	dups      uint64
	lastHeard int64
}

// missing is the number of open holes: batches in (high, maxSeen]
// neither contiguously accepted nor pending. Holes close when a
// resend fills them; under a lossy policy with no replay they are the
// counted loss.
func (ns *nodeSession) missing() uint64 {
	if ns.maxSeen <= ns.high {
		return 0
	}
	n := ns.maxSeen - ns.high
	for seq := range ns.pending {
		if seq > ns.high {
			n--
		}
	}
	return uint64(n)
}

// advanceLocked walks the frontier forward through the pending set and
// discards pending entries the frontier has overtaken.
func advanceLocked(ns *nodeSession) {
	for {
		if _, ok := ns.pending[ns.high+1]; !ok {
			break
		}
		delete(ns.pending, ns.high+1)
		ns.high++
	}
	for seq := range ns.pending {
		if seq <= ns.high {
			delete(ns.pending, seq)
		}
	}
	if ns.maxSeen < ns.high {
		ns.maxSeen = ns.high
	}
}

// Receiver tracks per-node sessions, deduplicates replays and
// acknowledges delivery. Safe for concurrent use by multiple
// connection-serving goroutines.
type Receiver struct {
	cfg ReceiverConfig

	mDups   *metrics.Counter
	mGaps   *metrics.Counter
	mHellos *metrics.Counter
	mAcks   *metrics.Counter

	mu    sync.Mutex
	nodes map[int32]*nodeSession
}

// NewReceiver creates an empty session table.
func NewReceiver(cfg ReceiverConfig) *Receiver {
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = event.NewRealClock()
	}
	r := &Receiver{cfg: cfg, nodes: make(map[int32]*nodeSession)}
	if cfg.Metrics != nil {
		s := cfg.Metrics.Scope("session")
		r.mDups = s.Counter("dup_batches")
		r.mGaps = s.Counter("gap_batches")
		r.mHellos = s.Counter("hellos")
		r.mAcks = s.Counter("acks_sent")
	}
	return r
}

// node returns (creating if needed) the session entry. Called with
// r.mu held.
func (r *Receiver) nodeLocked(id int32) *nodeSession {
	ns := r.nodes[id]
	if ns == nil {
		ns = &nodeSession{}
		r.nodes[id] = ns
	}
	return ns
}

// Filter inspects one inbound message and returns true when it was
// consumed by the session protocol (hello, heartbeat, duplicate) and
// false when the caller should process it (fresh data, unrelated
// control traffic). Acks ride back on conn best-effort: a failed ack
// just means the sender replays and the duplicate path re-acks.
func (r *Receiver) Filter(conn tp.Conn, m tp.Message) bool {
	now := r.cfg.Clock.Now()
	if m.Type == tp.MsgControl {
		switch m.Control {
		case tp.CtlHello:
			r.mu.Lock()
			ns := r.nodeLocked(m.Node)
			ns.lastHeard = now
			// The hello's Arg is the sender's acked frontier. It can sit
			// above ours only when WE lost state (a restarted manager with
			// a fresh session table): the sender has already trimmed the
			// prefix below it, so nothing can ever close that hole — adopt
			// the frontier or no batch would ever be acked again. A hello
			// BELOW our frontier is the normal lost-ack case and must not
			// regress it (the replay it precedes dedupes instead).
			if m.Arg > ns.high {
				ns.high = m.Arg
				advanceLocked(ns)
			}
			high := ns.high
			r.mu.Unlock()
			if r.mHellos != nil {
				r.mHellos.Inc()
			}
			if r.cfg.OnHello != nil {
				r.cfg.OnHello(m.Node, m.Arg)
			}
			// Tell the (re)connecting sender where it stands so it can
			// trim everything we already accepted.
			r.ack(conn, m.Node, r.ackSeq(m.Node, high))
			return true
		case tp.CtlHeartbeat:
			r.mu.Lock()
			r.nodeLocked(m.Node).lastHeard = now
			r.mu.Unlock()
			return true
		}
		return false
	}
	// Data. Arg==0 is legacy unsequenced traffic: track liveness only.
	if m.Arg == 0 {
		r.mu.Lock()
		r.nodeLocked(m.Node).lastHeard = now
		r.mu.Unlock()
		return false
	}
	seq := m.Arg
	r.mu.Lock()
	ns := r.nodeLocked(m.Node)
	ns.lastHeard = now
	dup := seq <= ns.high
	if !dup {
		_, dup = ns.pending[seq]
	}
	if dup {
		ns.dups++
		high := ns.high
		r.mu.Unlock()
		if r.mDups != nil {
			r.mDups.Inc()
		}
		tp.Recycle(&m)
		r.ack(conn, m.Node, r.ackSeq(m.Node, high))
		return true
	}
	// Fresh batch. Count any holes it opens above the old frontier;
	// they close (and stop being reported by Gaps) when a resend fills
	// them, but the gap_batches metric is monotone: holes ever opened.
	if seq > ns.maxSeen {
		if opened := seq - max(ns.maxSeen, ns.high) - 1; opened > 0 && r.mGaps != nil {
			r.mGaps.Add(uint64(opened))
		}
		ns.maxSeen = seq
	}
	if seq == ns.high+1 {
		ns.high = seq
		advanceLocked(ns)
	} else {
		if ns.pending == nil {
			ns.pending = make(map[int64]struct{})
		}
		ns.pending[seq] = struct{}{}
	}
	ns.sinceAck++
	ackNow := ns.sinceAck >= r.cfg.AckEvery
	if ackNow {
		ns.sinceAck = 0
	}
	high := ns.high
	r.mu.Unlock()
	if ackNow {
		r.ack(conn, m.Node, r.ackSeq(m.Node, high))
	}
	return false
}

// ackSeq resolves the sequence to acknowledge: the receipt frontier by
// default, the AckFrontier override when a dispatch-gated caller
// installed one.
func (r *Receiver) ackSeq(node int32, high int64) int64 {
	if r.cfg.AckFrontier != nil {
		return r.cfg.AckFrontier(node)
	}
	return high
}

// ack sends a cumulative acknowledgement, ignoring transport errors.
func (r *Receiver) ack(conn tp.Conn, node int32, high int64) {
	if conn == nil {
		return
	}
	if err := conn.Send(tp.ControlMessage(node, tp.CtlAck, high)); err == nil {
		if r.mAcks != nil {
			r.mAcks.Inc()
		}
	}
}

// High returns the highest contiguously accepted (i.e. acked)
// sequence from a node.
func (r *Receiver) High(node int32) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ns := r.nodes[node]; ns != nil {
		return ns.high
	}
	return 0
}

// Dups returns the duplicate batches absorbed from a node.
func (r *Receiver) Dups(node int32) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ns := r.nodes[node]; ns != nil {
		return ns.dups
	}
	return 0
}

// Gaps returns the currently open holes for a node: batches below its
// delivery frontier that have never arrived. Zero once replay has
// healed everything; the counted loss under lossy policies.
func (r *Receiver) Gaps(node int32) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ns := r.nodes[node]; ns != nil {
		return ns.missing()
	}
	return 0
}

// TotalDups returns duplicates absorbed across all nodes.
func (r *Receiver) TotalDups() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n uint64
	for _, ns := range r.nodes {
		n += ns.dups
	}
	return n
}

// TotalGaps returns the currently open holes across all nodes.
func (r *Receiver) TotalGaps() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n uint64
	for _, ns := range r.nodes {
		n += ns.missing()
	}
	return n
}

// Degraded returns the nodes not heard from within the silence budget,
// judged against the receiver's clock. A node that has never spoken is
// not reported (it has no session yet).
func (r *Receiver) Degraded(silence time.Duration) []int32 {
	now := r.cfg.Clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int32
	for id, ns := range r.nodes {
		if now-ns.lastHeard > int64(silence) {
			out = append(out, id)
		}
	}
	return out
}

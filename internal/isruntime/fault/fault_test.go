package fault

import (
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"prism/internal/isruntime/event"
	"prism/internal/isruntime/metrics"
	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// scriptConn records sends and fails on demand.
type scriptConn struct {
	sent []tp.Message
	fail error // returned (once) by the next Send
}

func (c *scriptConn) Send(m tp.Message) error {
	if c.fail != nil {
		err := c.fail
		c.fail = nil
		return err
	}
	c.sent = append(c.sent, m)
	return nil
}

func (c *scriptConn) Recv() (tp.Message, error) { return tp.Message{}, io.EOF }
func (c *scriptConn) Close() error              { return nil }

// memSpill collects demoted records.
type memSpill struct{ rs []trace.Record }

func (s *memSpill) Append(rs ...trace.Record) error {
	s.rs = append(s.rs, rs...)
	return nil
}

func testPlan() Plan {
	return Plan{
		PDrop: 0.05, PCorrupt: 0.02, PTruncate: 0.02, PDisconnect: 0.05,
		PDelay: 0.05, Delay: time.Microsecond,
		PStall: 0.05, Stall: time.Microsecond,
	}
}

func TestInjectorDeterministicTrace(t *testing.T) {
	run := func(seed uint64) []Event {
		in, err := NewInjector(seed, testPlan(), WithSleep(func(time.Duration) {}))
		if err != nil {
			t.Fatal(err)
		}
		c := in.WrapConn(nopConn{})
		for i := 0; i < 2000; i++ {
			_ = c.Send(tp.DataMessage(0, nil))
			_, _ = c.Recv()
		}
		return in.Trace()
	}
	a, b := run(42), run(42)
	if len(a) == 0 {
		t.Fatal("no faults injected over 4000 ops")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different traces: %d vs %d events", len(a), len(b))
	}
	if c := run(43); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

// nopConn succeeds at everything, so the injector's own behavior is
// isolated.
type nopConn struct{}

func (nopConn) Send(m tp.Message) error   { tp.Recycle(&m); return nil }
func (nopConn) Recv() (tp.Message, error) { return tp.Message{}, nil }
func (nopConn) Close() error              { return nil }

func TestInjectorRejectsOverfullPlan(t *testing.T) {
	if _, err := NewInjector(1, Plan{PDrop: 0.7, PDisconnect: 0.4}); err == nil {
		t.Fatal("want error for probability mass > 1")
	}
}

func TestInjectorFaultErrorsAreTyped(t *testing.T) {
	// PDisconnect=1: every send fails with a retryable closed error.
	in, err := NewInjector(7, Plan{PDisconnect: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := in.WrapConn(nopConn{})
	if err := c.Send(tp.DataMessage(0, nil)); !errors.Is(err, tp.ErrConnClosed) {
		t.Fatalf("disconnect fault = %v, want ErrConnClosed", err)
	}
	in2, _ := NewInjector(7, Plan{PCorrupt: 1})
	c2 := in2.WrapConn(nopConn{})
	err2 := c2.Send(tp.DataMessage(0, nil))
	if !errors.Is(err2, tp.ErrCorruptFrame) {
		t.Fatalf("corrupt fault = %v, want ErrCorruptFrame", err2)
	}
	if !tp.Retryable(err2) {
		t.Fatal("injected faults must be retryable")
	}
}

func TestInjectorMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	in, err := NewInjector(3, Plan{PDrop: 1}, WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	c := in.WrapConn(nopConn{})
	for i := 0; i < 5; i++ {
		_ = c.Send(tp.DataMessage(0, nil))
	}
	if m, ok := reg.Snapshot().Get("fault.injected.drop"); !ok || m.Value != 5 {
		t.Fatalf("fault.injected.drop = %+v, want 5", m)
	}
}

func TestSessionSequencesAndTrims(t *testing.T) {
	sc := &scriptConn{}
	s := NewSession(3, sc, SessionConfig{})
	rs := []trace.Record{{Node: 3, Kind: trace.KindUser, Payload: 1}}
	if err := s.Send(tp.DataMessage(3, rs)); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(tp.DataMessage(3, rs)); err != nil {
		t.Fatal(err)
	}
	if len(sc.sent) != 2 || sc.sent[0].Arg != 1 || sc.sent[1].Arg != 2 {
		t.Fatalf("sequencing wrong: %+v", sc.sent)
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending())
	}
	// Cumulative ack trims everything at or below.
	if !s.Deliver(tp.ControlMessage(3, tp.CtlAck, 2)) {
		t.Fatal("ack not consumed")
	}
	if s.Pending() != 0 || s.Acked() != 2 {
		t.Fatalf("after ack: pending=%d acked=%d", s.Pending(), s.Acked())
	}
	// Non-session traffic passes through Deliver.
	if s.Deliver(tp.ControlMessage(3, tp.CtlFlush, 0)) {
		t.Fatal("flush control must not be consumed")
	}
}

func TestSessionAbsorbsRetryableFailureAndReplays(t *testing.T) {
	sc := &scriptConn{}
	s := NewSession(1, sc, SessionConfig{})
	if err := s.Send(tp.DataMessage(1, []trace.Record{{Payload: 10}})); err != nil {
		t.Fatal(err)
	}
	s.Deliver(tp.ControlMessage(1, tp.CtlAck, 1))

	sc.fail = tp.ErrConnClosed
	if err := s.Send(tp.DataMessage(1, []trace.Record{{Payload: 20}})); err != nil {
		t.Fatalf("retryable failure must be absorbed, got %v", err)
	}
	if s.Pending() != 1 {
		t.Fatalf("failed batch not retained: pending=%d", s.Pending())
	}

	// Reconnect: hello with the seen ack, then the unacked suffix.
	fresh := &scriptConn{}
	if err := s.onConnect(fresh); err != nil {
		t.Fatal(err)
	}
	if len(fresh.sent) != 2 {
		t.Fatalf("replay sent %d messages, want hello+1", len(fresh.sent))
	}
	h := fresh.sent[0]
	if h.Control != tp.CtlHello || h.Arg != 1 || h.Node != 1 {
		t.Fatalf("bad hello: %+v", h)
	}
	d := fresh.sent[1]
	if d.Type != tp.MsgData || d.Arg != 2 || d.Records[0].Payload != 20 {
		t.Fatalf("bad replay: %+v", d)
	}
}

func TestSessionWindowOverflowSpills(t *testing.T) {
	sp := &memSpill{}
	sc := &scriptConn{}
	s := NewSession(0, sc, SessionConfig{Window: 2, Spill: sp})
	for i := 0; i < 5; i++ {
		rs := []trace.Record{{Payload: int64(i)}}
		if err := s.Send(tp.DataMessage(0, rs)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != 2 {
		t.Fatalf("pending = %d, want window cap 2", s.Pending())
	}
	if s.Spilled() != 3 || len(sp.rs) != 3 {
		t.Fatalf("spilled = %d batches / %d records, want 3/3", s.Spilled(), len(sp.rs))
	}
	// Oldest demoted first.
	if sp.rs[0].Payload != 0 || sp.rs[2].Payload != 2 {
		t.Fatalf("wrong demotion order: %+v", sp.rs)
	}
}

func TestSessionTerminalFailureDemotesWindow(t *testing.T) {
	sp := &memSpill{}
	sc := &scriptConn{fail: tp.ErrGiveUp}
	s := NewSession(0, sc, SessionConfig{Spill: sp})
	err := s.Send(tp.DataMessage(0, []trace.Record{{Payload: 9}}))
	if !errors.Is(err, tp.ErrGiveUp) {
		t.Fatalf("terminal error not surfaced: %v", err)
	}
	if s.Pending() != 0 || len(sp.rs) != 1 {
		t.Fatalf("window not demoted: pending=%d spill=%d", s.Pending(), len(sp.rs))
	}
}

func TestReceiverDedupAckGap(t *testing.T) {
	reg := metrics.NewRegistry()
	r := NewReceiver(ReceiverConfig{Metrics: reg})
	ack := &scriptConn{}

	mk := func(seq int64) tp.Message {
		m := tp.DataMessage(2, []trace.Record{{Payload: seq}})
		m.Arg = seq
		return m
	}
	if r.Filter(ack, mk(1)) {
		t.Fatal("fresh batch must not be consumed")
	}
	if len(ack.sent) != 1 || ack.sent[0].Control != tp.CtlAck || ack.sent[0].Arg != 1 {
		t.Fatalf("bad ack: %+v", ack.sent)
	}
	// Replayed duplicate: consumed, re-acked.
	if !r.Filter(ack, mk(1)) {
		t.Fatal("duplicate must be consumed")
	}
	if r.Dups(2) != 1 {
		t.Fatalf("dups = %d", r.Dups(2))
	}
	if got := ack.sent[len(ack.sent)-1]; got.Control != tp.CtlAck || got.Arg != 1 {
		t.Fatalf("dup not re-acked: %+v", got)
	}
	// Sequence jump: batch accepted but NOT acked — the ack frontier
	// is contiguous, so the holes stay in the sender's replay window.
	if r.Filter(ack, mk(4)) {
		t.Fatal("post-gap batch must not be consumed")
	}
	if r.Gaps(2) != 2 || r.High(2) != 1 {
		t.Fatalf("gaps=%d high=%d, want 2/1", r.Gaps(2), r.High(2))
	}
	if got := ack.sent[len(ack.sent)-1]; got.Arg != 1 {
		t.Fatalf("ack advanced across a hole: %+v", got)
	}
	// A replay of the already-delivered out-of-order batch is a dup.
	if !r.Filter(ack, mk(4)) {
		t.Fatal("pending duplicate must be consumed")
	}
	// Resends close the holes: frontier jumps over the pending batch.
	if r.Filter(ack, mk(2)) || r.Filter(ack, mk(3)) {
		t.Fatal("hole-filling batches must not be consumed")
	}
	if r.Gaps(2) != 0 || r.High(2) != 4 {
		t.Fatalf("gaps=%d high=%d after healing, want 0/4", r.Gaps(2), r.High(2))
	}
	if got := ack.sent[len(ack.sent)-1]; got.Control != tp.CtlAck || got.Arg != 4 {
		t.Fatalf("healed frontier not acked: %+v", got)
	}
	snap := reg.Snapshot()
	if m, ok := snap.Get("session.dup_batches"); !ok || m.Value != 2 {
		t.Fatalf("session.dup_batches = %+v, want 2", m)
	}
	// The gap metric is monotone: holes ever opened, not holes open.
	if m, ok := snap.Get("session.gap_batches"); !ok || m.Value != 2 {
		t.Fatalf("session.gap_batches = %+v, want 2", m)
	}
}

func TestReceiverHelloAndDegraded(t *testing.T) {
	clk := &event.VirtualClock{}
	r := NewReceiver(ReceiverConfig{Clock: clk})
	ack := &scriptConn{}

	m := tp.DataMessage(1, nil)
	m.Arg = 1
	r.Filter(ack, m)
	// Hello replies with the accepted high so the sender trims.
	if !r.Filter(ack, tp.ControlMessage(1, tp.CtlHello, 0)) {
		t.Fatal("hello must be consumed")
	}
	if got := ack.sent[len(ack.sent)-1]; got.Control != tp.CtlAck || got.Arg != 1 {
		t.Fatalf("hello not answered with ack(high): %+v", got)
	}

	clk.Set(int64(10 * time.Second))
	if !r.Filter(ack, tp.ControlMessage(2, tp.CtlHeartbeat, 0)) {
		t.Fatal("heartbeat must be consumed")
	}
	deg := r.Degraded(5 * time.Second)
	if len(deg) != 1 || deg[0] != 1 {
		t.Fatalf("degraded = %v, want [1]", deg)
	}
}

func TestReceiverAdoptsHelloFrontier(t *testing.T) {
	// A restarted manager has a fresh session table while the sender
	// has already trimmed its acked prefix: the hello's frontier must
	// be adopted or the replayed suffix could never be acked.
	r := NewReceiver(ReceiverConfig{})
	ack := &scriptConn{}

	if !r.Filter(ack, tp.ControlMessage(9, tp.CtlHello, 50)) {
		t.Fatal("hello must be consumed")
	}
	if r.High(9) != 50 {
		t.Fatalf("frontier not adopted: high=%d, want 50", r.High(9))
	}
	if got := ack.sent[len(ack.sent)-1]; got.Control != tp.CtlAck || got.Arg != 50 {
		t.Fatalf("adopted frontier not acked: %+v", got)
	}
	// The replayed suffix advances normally from the adopted point.
	m := tp.DataMessage(9, []trace.Record{{Payload: 51}})
	m.Arg = 51
	if r.Filter(ack, m) {
		t.Fatal("first post-adoption batch must not be consumed")
	}
	if r.High(9) != 51 || r.Gaps(9) != 0 {
		t.Fatalf("high=%d gaps=%d after replay, want 51/0", r.High(9), r.Gaps(9))
	}
	// A later hello BELOW the frontier (lost-ack reconnect, not a
	// restart) must not regress it.
	if !r.Filter(ack, tp.ControlMessage(9, tp.CtlHello, 10)) {
		t.Fatal("hello must be consumed")
	}
	if r.High(9) != 51 {
		t.Fatalf("frontier regressed to %d", r.High(9))
	}
	if got := ack.sent[len(ack.sent)-1]; got.Arg != 51 {
		t.Fatalf("stale hello not re-acked with current frontier: %+v", got)
	}
}

// soakPlan is the zero-loss chaos schedule: connection faults and
// latency only — every lost frame breaks the connection, so the
// session replay path heals all of them.
func soakPlan() Plan {
	return Plan{
		PDisconnect: 0.03, PCorrupt: 0.01, PTruncate: 0.01,
		PDelay: 0.03, Delay: time.Microsecond,
		PStall: 0.02, Stall: time.Microsecond,
	}
}

func TestSimulateExactlyOnceUnderFaults(t *testing.T) {
	res, err := Simulate(SimConfig{
		Seed: 1234, Nodes: 4, Batches: 300, BatchRecords: 8,
		Plan: soakPlan(), Replay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 || res.Redials == 0 {
		t.Fatalf("chaos run too quiet: faults=%d redials=%d", res.Faults, res.Redials)
	}
	if res.Delivered != res.Captured || res.Lost != 0 {
		t.Fatalf("record loss: captured=%d delivered=%d lost=%d",
			res.Captured, res.Delivered, res.Lost)
	}
	if res.DupRecords != 0 {
		t.Fatalf("exactly-once violated: %d duplicate records reached the ISM", res.DupRecords)
	}
	if res.DupBatches == 0 {
		t.Fatal("expected wire duplicates from replay (dedupe path unexercised)")
	}
}

func TestSimulateCountedLossWithoutReplay(t *testing.T) {
	res, err := Simulate(SimConfig{
		Seed: 99, Nodes: 4, Batches: 300, BatchRecords: 8,
		Plan: Plan{PDrop: 0.05, PDisconnect: 0.03}, Replay: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 {
		t.Fatal("drop plan without replay must lose records")
	}
	// Every lost batch traces to an injected send fault: loss is
	// bounded and accounted, never silent.
	if max := int(res.Faults) * 8; res.Lost > max {
		t.Fatalf("lost %d records > %d explicable by %d faults", res.Lost, max, res.Faults)
	}
	if res.Delivered+res.Lost != res.Captured {
		t.Fatalf("accounting leak: %d+%d != %d", res.Delivered, res.Lost, res.Captured)
	}
}

func TestSimulateDeterministicReplay(t *testing.T) {
	cfg := SimConfig{
		Seed: 777, Nodes: 3, Batches: 200, BatchRecords: 4,
		Plan: soakPlan(), Replay: true,
	}
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config, different results:\n%+v\n%+v", a, b)
	}
	if len(a.Trace) == 0 {
		t.Fatal("empty injection trace")
	}
	cfg.Seed = 778
	c, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Trace, c.Trace) {
		t.Fatal("different seeds produced identical injection traces")
	}
}

// TestReceiverAckFrontierOverride: with an AckFrontier hook installed,
// every ack on the wire (fresh-data cadence, duplicate re-ack, hello
// reply) carries the hook's value while receipt bookkeeping — dedup,
// frontier, hole tracking — still runs on the receipt sequence. The
// OnHello hook must fire before the hello's ack so an adoption-seeded
// frontier is already visible to the first override call.
func TestReceiverAckFrontierOverride(t *testing.T) {
	gated := map[int32]int64{3: 0}
	var hellos []int64
	r := NewReceiver(ReceiverConfig{
		AckFrontier: func(node int32) int64 { return gated[node] },
		OnHello: func(node int32, acked int64) {
			hellos = append(hellos, acked)
			if acked > gated[node] {
				gated[node] = acked
			}
		},
	})
	ack := &scriptConn{}

	mk := func(seq int64) tp.Message {
		m := tp.DataMessage(3, []trace.Record{{Payload: seq}})
		m.Arg = seq
		return m
	}
	// Fresh batches: receipt frontier advances to 2, but the gated
	// frontier is still 0 and that is what the wire must carry.
	r.Filter(ack, mk(1))
	r.Filter(ack, mk(2))
	if r.High(3) != 2 {
		t.Fatalf("receipt frontier = %d, want 2", r.High(3))
	}
	for _, m := range ack.sent {
		if m.Control == tp.CtlAck && m.Arg != 0 {
			t.Fatalf("ack carried %d, want gated 0", m.Arg)
		}
	}
	// Dispatch catches up: the next ack (a duplicate re-ack) carries it.
	gated[3] = 2
	if !r.Filter(ack, mk(1)) {
		t.Fatal("duplicate must be consumed")
	}
	if got := ack.sent[len(ack.sent)-1]; got.Control != tp.CtlAck || got.Arg != 2 {
		t.Fatalf("dup re-ack = %+v, want gated 2", got)
	}
	// Hello after a receiver restart: OnHello sees the sender's acked
	// frontier before the reply ack is computed.
	if !r.Filter(ack, tp.ControlMessage(3, tp.CtlHello, 7)) {
		t.Fatal("hello must be consumed")
	}
	if len(hellos) != 1 || hellos[0] != 7 {
		t.Fatalf("OnHello saw %v, want [7]", hellos)
	}
	if got := ack.sent[len(ack.sent)-1]; got.Control != tp.CtlAck || got.Arg != 7 {
		t.Fatalf("hello reply = %+v, want the adopted gated frontier 7", got)
	}
}

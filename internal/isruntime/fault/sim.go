package fault

// Simulate: a deterministic lockstep chaos run. The availability
// experiment must replicate bit-for-bit under the replication engine
// (serial and parallel runs produce identical artifacts), which rules
// out wall-clock concurrency in the measured path. Simulate therefore
// drives a population of sender sessions and one receiver through a
// fault plan in a single goroutine: each step sends one batch per node
// through an injector-wrapped redial connection, then pumps the
// simulated links until quiet. Time does not pass — Delay/Stall faults
// are recorded in the trace but sleep through a no-op — so the result
// is a pure function of the config, including the full injection
// trace. The concurrent soak test (chaos_test.go) covers the
// real-goroutine, real-transport side of the same protocol.

import (
	"io"
	"time"

	"prism/internal/isruntime/tp"
	"prism/internal/trace"
)

// SimConfig parameterizes one lockstep chaos run.
type SimConfig struct {
	Seed         uint64
	Nodes        int
	Batches      int // batches per node
	BatchRecords int // records per batch
	Plan         Plan
	Window       int  // session replay window (batches); 0 = default
	Replay       bool // true: session protocol; false: raw redial (counted loss)
}

// SimResult is the delivery accounting of one run.
type SimResult struct {
	Captured       int    // records generated at the nodes
	Delivered      int    // unique records accepted at the ISM
	DupRecords     int    // records accepted more than once (0 = exactly-once held)
	Lost           int    // Captured - Delivered - SpilledRecords
	Spilled        uint64 // batches demoted to the spill path
	SpilledRecords int
	DupBatches     uint64  // duplicate batches absorbed on the wire
	GapBatches     uint64  // sequence gaps observed by the receiver
	Redials        uint64  // connection re-establishments
	Faults         uint64  // injected faults, all kinds
	Trace          []Event // per-node injection traces, concatenated in node order
}

// simLink is one sender<->receiver connection instance: two in-order
// queues. A closed link refuses new sends; already-queued messages may
// still be drained (they were in flight when the link broke) or
// abandoned when the link is replaced (lost in flight).
type simLink struct {
	closed bool
	toRecv []tp.Message // sender -> receiver
	toSend []tp.Message // receiver -> sender (acks)
}

// simEnd is one end of a simLink as a tp.Conn.
type simEnd struct {
	link   *simLink
	sender bool
}

// Send implements tp.Conn by queueing onto the link.
func (e *simEnd) Send(m tp.Message) error {
	if e.link.closed {
		tp.Recycle(&m)
		return tp.ErrConnClosed
	}
	if e.sender {
		e.link.toRecv = append(e.link.toRecv, m)
	} else {
		e.link.toSend = append(e.link.toSend, m)
	}
	return nil
}

// Recv implements tp.Conn; the lockstep driver pumps queues directly,
// so Recv only reports termination.
func (e *simEnd) Recv() (tp.Message, error) { return tp.Message{}, io.EOF }

// Close implements tp.Conn.
func (e *simEnd) Close() error {
	e.link.closed = true
	return nil
}

// simNode is one simulated LIS node.
type simNode struct {
	id     int32
	inj    *Injector
	redial *tp.Redial
	sess   *Session // nil when Replay is off
	conn   tp.Conn  // sess when replaying, redial otherwise
	link   *simLink // latest dialed link
	ackEnd *simEnd  // receiver's end of the latest link

	lastAcked int64 // ack progress, for stall detection
	stall     int   // batches sent since the ack frontier last moved
}

// Simulate runs one chaos run and returns its delivery accounting.
// Identical configs produce identical results, including Trace.
func Simulate(cfg SimConfig) (SimResult, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	recv := NewReceiver(ReceiverConfig{AckEvery: 1})

	seen := make(map[int64]int) // payload id -> times accepted
	res := SimResult{Captured: cfg.Nodes * cfg.Batches * cfg.BatchRecords}

	// pump drains a node's current link: data to the receiver (acks
	// ride back on the link), then acks to the session.
	pump := func(n *simNode) {
		for len(n.link.toRecv) > 0 || len(n.link.toSend) > 0 {
			for len(n.link.toRecv) > 0 {
				m := n.link.toRecv[0]
				n.link.toRecv = n.link.toRecv[1:]
				if recv.Filter(n.ackEnd, m) {
					continue
				}
				if m.Type == tp.MsgData {
					for _, r := range m.Records {
						seen[r.Payload]++
					}
				}
			}
			for len(n.link.toSend) > 0 {
				m := n.link.toSend[0]
				n.link.toSend = n.link.toSend[1:]
				if n.sess != nil {
					n.sess.Deliver(m)
				}
			}
		}
	}

	nodes := make([]*simNode, cfg.Nodes)
	for i := range nodes {
		n := &simNode{id: int32(i)}
		// Per-node fault stream: a SplitMix-style spread of the run
		// seed keeps node schedules independent but jointly seeded.
		seed := cfg.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
		inj, err := NewInjector(seed, cfg.Plan, WithSleep(func(time.Duration) {}))
		if err != nil {
			return SimResult{}, err
		}
		n.inj = inj
		rd, err := tp.NewRedial(tp.RedialConfig{
			Dial: func() (tp.Conn, error) {
				link := &simLink{}
				n.link = link
				n.ackEnd = &simEnd{link: link, sender: false}
				return n.inj.WrapConn(&simEnd{link: link, sender: true}), nil
			},
			Sleep: func(time.Duration) {},
		})
		if err != nil {
			return SimResult{}, err
		}
		n.redial = rd
		if cfg.Replay {
			n.sess = NewSession(n.id, rd, SessionConfig{Window: cfg.Window})
			n.conn = n.sess
		} else {
			n.conn = rd
		}
		nodes[i] = n
	}

	// Main lockstep: one batch per node per step, pumping after each
	// send so acks trim the replay windows promptly.
	for batch := 0; batch < cfg.Batches; batch++ {
		for _, n := range nodes {
			rs := make([]trace.Record, cfg.BatchRecords)
			for i := range rs {
				id := int64(n.id)*1_000_000 + int64(batch)*1_000 + int64(i)
				rs[i] = trace.Record{
					Node: n.id, Kind: trace.KindUser,
					Time: id, Payload: id,
				}
			}
			// Raw-redial mode surfaces send faults as errors (the
			// batch is simply lost); session mode absorbs them.
			_ = n.conn.Send(tp.DataMessage(n.id, rs))
			pump(n)
			if n.sess == nil {
				continue
			}
			// Acks are contiguous, so a silently dropped batch stalls
			// the frontier while the window fills behind it. Resend on
			// stall — the sender's retransmit timer in lockstep form —
			// before overflow demotes the dropped batch to loss.
			if acked := n.sess.Acked(); acked > n.lastAcked {
				n.lastAcked, n.stall = acked, 0
			} else if n.sess.Pending() > 0 {
				if n.stall++; n.stall >= 8 {
					n.stall = 0
					_ = n.sess.Resend()
					pump(n)
				}
			}
		}
	}

	// Recovery: resend unacked windows until every batch is acked or
	// the round budget runs out (leftovers count as lost). Resends go
	// through the injector too, so a round can fail and retry.
	if cfg.Replay {
		for round := 0; round < 100; round++ {
			pending := false
			for _, n := range nodes {
				if n.sess.Pending() == 0 {
					continue
				}
				pending = true
				_ = n.sess.Resend()
				pump(n)
			}
			if !pending {
				break
			}
		}
	}

	dupRecords := 0
	for _, c := range seen {
		dupRecords += c - 1
	}
	res.Delivered = len(seen)
	res.DupRecords = dupRecords
	res.DupBatches = recv.TotalDups()
	res.GapBatches = recv.TotalGaps()
	for _, n := range nodes {
		res.Redials += n.redial.Redials()
		res.Faults += n.inj.Total()
		res.Trace = append(res.Trace, n.inj.Trace()...)
		if n.sess != nil {
			res.Spilled += n.sess.Spilled()
		}
		_ = n.redial.Close()
	}
	res.SpilledRecords = int(res.Spilled) * cfg.BatchRecords
	res.Lost = res.Captured - res.Delivered - res.SpilledRecords
	return res, nil
}

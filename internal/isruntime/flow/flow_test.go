package flow

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prism/internal/trace"
)

func TestPolicyString(t *testing.T) {
	cases := map[OverflowPolicy]string{
		Block: "block", DropNewest: "drop-newest",
		DropOldest: "drop-oldest", SpillToStorage: "spill",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Fatalf("%d.String() = %q, want %q", p, p.String(), want)
		}
		if !p.Valid() {
			t.Fatalf("%v should be valid", p)
		}
	}
	if got := OverflowPolicy(42).String(); got != "policy(42)" {
		t.Fatalf("unknown policy renders %q", got)
	}
	if OverflowPolicy(42).Valid() || OverflowPolicy(-1).Valid() {
		t.Fatal("out-of-range policies should be invalid")
	}
}

func TestBatchPoolRoundTrip(t *testing.T) {
	b := GetBatch(8)
	if len(b) != 0 || cap(b) < 8 {
		t.Fatalf("fresh batch len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, trace.Record{Tag: 1}, trace.Record{Tag: 2})
	PutBatch(b)
	b2 := GetBatch(4)
	if len(b2) != 0 {
		t.Fatalf("recycled batch not empty: %d", len(b2))
	}
	// Zero-capacity puts are a no-op, larger requests fall through to
	// a fresh allocation.
	PutBatch(nil)
	big := GetBatch(1 << 12)
	if cap(big) < 1<<12 {
		t.Fatalf("cap %d", cap(big))
	}
	PutBatch(big)
}

func TestQueueValidation(t *testing.T) {
	if _, err := NewQueue[int](0, Block, nil); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := NewQueue[int](4, OverflowPolicy(9), nil); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestQueueFIFOAndStats(t *testing.T) {
	q, err := NewQueue[int](4, Block, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Len() != 4 || q.Cap() != 4 || q.Policy() != Block {
		t.Fatal("accessors")
	}
	for i := 1; i <= 4; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d got %d/%v", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty")
	}
	st := q.Stats()
	if st.Pushed != 4 || st.Dropped != 0 || st.Peak != 4 || st.Len != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueDropNewest(t *testing.T) {
	q, _ := NewQueue[int](2, DropNewest, nil)
	var lost []int
	q.OnDrop(func(v int) { lost = append(lost, v) })
	q.Push(1)
	q.Push(2)
	if q.Push(3) {
		t.Fatal("push into full DropNewest queue succeeded")
	}
	if v, _ := q.TryPop(); v != 1 {
		t.Fatalf("head %d", v)
	}
	if len(lost) != 1 || lost[0] != 3 {
		t.Fatalf("lost %v", lost)
	}
	if st := q.Stats(); st.Dropped != 1 || st.Pushed != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestQueueDropOldest(t *testing.T) {
	q, _ := NewQueue[int](2, DropOldest, nil)
	var lost []int
	q.OnDrop(func(v int) { lost = append(lost, v) })
	q.Push(1)
	q.Push(2)
	if !q.Push(3) { // displaces 1
		t.Fatal("DropOldest push failed")
	}
	if v, _ := q.TryPop(); v != 2 {
		t.Fatalf("head %d", v)
	}
	if v, _ := q.TryPop(); v != 3 {
		t.Fatalf("tail %d", v)
	}
	if len(lost) != 1 || lost[0] != 1 {
		t.Fatalf("lost %v", lost)
	}
}

func TestQueueSpillToStorage(t *testing.T) {
	var spilled []int
	q, _ := NewQueue[int](2, SpillToStorage, func(v int) error {
		spilled = append(spilled, v)
		return nil
	})
	q.Push(1)
	q.Push(2)
	q.Push(3) // spills 1
	if len(spilled) != 1 || spilled[0] != 1 {
		t.Fatalf("spilled %v", spilled)
	}
	st := q.Stats()
	if st.Spilled != 1 || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}

	// A failing spill target degrades to a drop.
	qf, _ := NewQueue[int](1, SpillToStorage, func(int) error { return errors.New("disk full") })
	qf.Push(1)
	qf.Push(2)
	if st := qf.Stats(); st.SpillErrors != 1 || st.Dropped != 1 {
		t.Fatalf("fail stats %+v", st)
	}

	// Nil spill degrades to DropOldest.
	qn, _ := NewQueue[int](1, SpillToStorage, nil)
	qn.Push(1)
	qn.Push(2)
	if st := qn.Stats(); st.Dropped != 1 || st.Spilled != 0 {
		t.Fatalf("nil-spill stats %+v", st)
	}
}

func TestQueueBlockBackpressure(t *testing.T) {
	q, _ := NewQueue[int](1, Block, nil)
	q.Push(1)
	pushed := make(chan struct{})
	go func() {
		q.Push(2) // must wait for the consumer
		close(pushed)
	}()
	select {
	case <-pushed:
		t.Fatal("push did not block on full queue")
	case <-time.After(5 * time.Millisecond):
	}
	if v, ok := q.PopWait(); !ok || v != 1 {
		t.Fatalf("pop %d/%v", v, ok)
	}
	select {
	case <-pushed:
	case <-time.After(time.Second):
		t.Fatal("push never unblocked")
	}
	st := q.Stats()
	if st.Blocked != 1 || st.BlockedNs <= 0 {
		t.Fatalf("blocked accounting %+v", st)
	}
}

func TestQueueCloseSemantics(t *testing.T) {
	q, _ := NewQueue[int](4, Block, nil)
	q.Push(1)
	q.Push(2)
	q.Close()
	q.Close() // idempotent
	if q.Push(3) {
		t.Fatal("push after close succeeded")
	}
	// Consumers drain what remains.
	if v, ok := q.PopWait(); !ok || v != 1 {
		t.Fatalf("drain %d/%v", v, ok)
	}
	if v, ok := q.PopWait(); !ok || v != 2 {
		t.Fatalf("drain %d/%v", v, ok)
	}
	if _, ok := q.PopWait(); ok {
		t.Fatal("PopWait after drain should fail")
	}
	if st := q.Stats(); st.Dropped != 1 {
		t.Fatalf("close-drop not counted: %+v", st)
	}

	// A producer blocked on a full queue is released by Close.
	qb, _ := NewQueue[int](1, Block, nil)
	qb.Push(1)
	released := make(chan bool, 1)
	go func() { released <- qb.Push(2) }()
	time.Sleep(2 * time.Millisecond)
	qb.Close()
	select {
	case ok := <-released:
		if ok {
			t.Fatal("blocked push reported success after close")
		}
	case <-time.After(time.Second):
		t.Fatal("close did not release blocked producer")
	}
}

// TestQueueConcurrentStress hammers each policy with concurrent
// producers and a consumer, checking conservation: every pushed
// element is popped, dropped, or spilled. Run with -race.
func TestQueueConcurrentStress(t *testing.T) {
	for _, policy := range []OverflowPolicy{Block, DropNewest, DropOldest, SpillToStorage} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			var spilled atomic.Uint64
			var spillFn func(int) error
			if policy == SpillToStorage {
				spillFn = func(int) error {
					spilled.Add(1)
					return nil
				}
			}
			q, err := NewQueue[int](8, policy, spillFn)
			if err != nil {
				t.Fatal(err)
			}
			const producers = 8
			const each = 500
			var consumed atomic.Uint64
			var wg sync.WaitGroup
			consumerDone := make(chan struct{})
			go func() {
				defer close(consumerDone)
				for {
					if _, ok := q.PopWait(); !ok {
						return
					}
					consumed.Add(1)
				}
			}()
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						q.Push(p*each + i)
					}
				}(p)
			}
			wg.Wait()
			q.Close()
			<-consumerDone
			st := q.Stats()
			total := consumed.Load() + st.Dropped + spilled.Load()
			if total != producers*each {
				t.Fatalf("%v: %d consumed + %d dropped + %d spilled != %d",
					policy, consumed.Load(), st.Dropped, spilled.Load(), producers*each)
			}
			if policy == Block && st.Dropped != 0 {
				t.Fatalf("Block dropped %d", st.Dropped)
			}
		})
	}
}

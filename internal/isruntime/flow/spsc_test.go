package flow

import (
	"runtime"
	"sync"
	"testing"
)

func TestSPSCFIFOAndWraparound(t *testing.T) {
	r := NewSPSC[int](4)
	if r.Cap() != 4 {
		t.Fatalf("cap %d", r.Cap())
	}
	if _, ok := r.TryPop(); ok {
		t.Fatal("pop from empty succeeded")
	}
	// Several full fill/drain cycles force the cursors to wrap the
	// index mask repeatedly.
	next := 0
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < r.Cap(); i++ {
			if !r.TryPush(next + i) {
				t.Fatalf("cycle %d: push %d failed", cycle, i)
			}
		}
		if r.TryPush(-1) {
			t.Fatal("push into full ring succeeded")
		}
		if r.Len() != r.Cap() {
			t.Fatalf("len %d", r.Len())
		}
		for i := 0; i < r.Cap(); i++ {
			v, ok := r.TryPop()
			if !ok || v != next+i {
				t.Fatalf("cycle %d: pop got %d,%v want %d", cycle, v, ok, next+i)
			}
		}
		next += r.Cap()
	}
	if r.Len() != 0 {
		t.Fatalf("len %d after drain", r.Len())
	}
}

func TestSPSCRoundsCapacityUp(t *testing.T) {
	if got := NewSPSC[int](5).Cap(); got != 8 {
		t.Fatalf("cap(5) -> %d", got)
	}
	if got := NewSPSC[int](0).Cap(); got != 2 {
		t.Fatalf("cap(0) -> %d", got)
	}
}

// TestSPSCConcurrentTransfer pushes a long monotone sequence through a
// small ring with a spinning producer and consumer; under -race this
// checks the happens-before edges around the slot writes. Gosched on
// the contended paths keeps the test honest on a single-CPU host.
func TestSPSCConcurrentTransfer(t *testing.T) {
	const total = 100000
	r := NewSPSC[uint64](8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.TryPush(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var sum uint64
	for n := uint64(0); n < total; {
		v, ok := r.TryPop()
		if !ok {
			runtime.Gosched()
			continue
		}
		if v != n {
			t.Fatalf("got %d want %d", v, n)
		}
		sum += v
		n++
	}
	wg.Wait()
	if want := uint64(total) * (total - 1) / 2; sum != want {
		t.Fatalf("sum %d want %d", sum, want)
	}
}
